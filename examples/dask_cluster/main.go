// Dask cluster: run the real distributed dataflow engine — a scheduler, six
// workers (one per simulated GPU, as on one Summit node), and a driving
// client — over actual TCP on localhost, exactly the deployment shape of
// Section 3.3:
//
//  1. the scheduler starts and writes a JSON scheduler file;
//  2. workers read the file and register;
//  3. the client submits the whole batch with one Map call, sorted
//     longest-first, and streams per-task statistics to a CSV.
//
// Run with: go run ./examples/dask_cluster
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/exec"
	"repro/internal/flow"
)

// inferencePayload is the toy task body: a target name and a length that
// determines how long the worker "computes".
type inferencePayload struct {
	Target string `json:"target"`
	Length int    `json:"length"`
}

func main() {
	dir, err := os.MkdirTemp("", "daskcluster")
	if err != nil {
		log.Fatal(err)
	}
	schedFile := filepath.Join(dir, "scheduler.json")
	statsFile := filepath.Join(dir, "task_stats.csv")

	// 1. Scheduler.
	sched := flow.NewScheduler()
	addr, err := sched.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer sched.Close()
	if err := sched.WriteSchedulerFile(schedFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler at %s (scheduler file: %s)\n", addr, schedFile)

	// 2. One worker per GPU.
	handler := func(task flow.Task) (json.RawMessage, error) {
		var p inferencePayload
		if err := json.Unmarshal(task.Payload, &p); err != nil {
			return nil, err
		}
		time.Sleep(time.Duration(p.Length) * 20 * time.Microsecond) // "inference"
		return json.Marshal(map[string]any{"target": p.Target, "plddt": 70 + p.Length%25})
	}
	for i := 0; i < 6; i++ {
		w := flow.NewWorker(fmt.Sprintf("gpu%d", i), handler)
		if err := w.ConnectFile(schedFile); err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	fmt.Println("6 workers registered (one per GPU)")

	// 3. Client: batch of (target, model) tasks, longest-first.
	client, err := flow.ConnectClientFile(schedFile)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var tasks []flow.Task
	for t := 0; t < 24; t++ {
		length := 80 + (t*137)%800
		for m := 0; m < 5; m++ {
			payload, _ := json.Marshal(inferencePayload{Target: fmt.Sprintf("P%03d", t), Length: length})
			tasks = append(tasks, flow.Task{
				ID:      fmt.Sprintf("P%03d/m%d", t, m),
				Weight:  float64(length),
				Payload: payload,
			})
		}
	}
	flow.SortByWeightDescending(tasks)

	stats, err := os.Create(statsFile)
	if err != nil {
		log.Fatal(err)
	}
	defer stats.Close()

	// Per-task telemetry streams through the result observer into the
	// processing-times CSV (the exec.Trace sink proteomectl uses).
	trace := &exec.Trace{}
	start := time.Now()
	results, err := client.Map(tasks, func(r *flow.Result) {
		trace.Record(exec.TaskStats{
			TaskID:       r.TaskID,
			Kernel:       "example/inference",
			WorkerID:     r.WorkerID,
			Enqueue:      r.EnqueuedAt(),
			Start:        r.Start,
			Finish:       r.End,
			PayloadBytes: len(r.Payload),
			Err:          r.Err,
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := trace.WriteCSV(stats); err != nil {
		log.Fatal(err)
	}

	perWorker := map[string]int{}
	failed := 0
	for _, r := range results {
		perWorker[r.WorkerID]++
		if r.Failed() {
			failed++
		}
	}
	fmt.Printf("completed %d tasks in %v (%d failed)\n", len(results), elapsed.Round(time.Millisecond), failed)
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("gpu%d", i)
		fmt.Printf("  %s processed %d tasks\n", id, perWorker[id])
	}
	fmt.Printf("per-task stats written to %s\n", statsFile)
}
