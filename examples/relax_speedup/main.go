// Relax speedup: compare the original AlphaFold relaxation protocol with
// the paper's optimized single-pass method, on CPU and GPU, over CASP14-like
// models of increasing size — the Sections 4.4/4.5 story in miniature.
//
// Run with: go run ./examples/relax_speedup
package main

import (
	"fmt"
	"log"

	"repro/internal/casp"
	"repro/internal/geom"
	"repro/internal/relax"
)

func main() {
	set := casp.NewSet(3)

	fmt.Println("relaxation protocol comparison (times from the calibrated platform models,")
	fmt.Println("violations from actually minimizing each structure):")
	fmt.Println()
	fmt.Printf("%-8s %6s %10s | %14s | %9s %9s %9s | %7s\n",
		"TARGET", "LEN", "HEAVYATOMS", "BUMPS pre/post", "AF2(s)", "CPU(s)", "GPU(s)", "SPEEDUP")

	shown := 0
	for _, tg := range set.Targets {
		if shown >= 8 {
			break
		}
		models := set.ModelsOf(tg.ID)
		if len(models) == 0 {
			continue
		}
		m := models[0]
		before := relax.CountViolations(m.CA)
		if before.Bumps == 0 && shown > 2 {
			continue // prefer structures with visible flaws for the demo
		}
		shown++

		// Run the actual optimized minimization once for the violations.
		opt := relax.DefaultOptions(relax.PlatformGPU)
		opt.HeavyAtoms = m.HeavyAtoms
		rr, err := relax.Relax(geom.Clone(m.CA), geom.Clone(m.SC), opt)
		if err != nil {
			log.Fatal(err)
		}

		af2 := relax.ModelTime(relax.PlatformAF2, m.HeavyAtoms, 1)
		cpu := relax.ModelTime(relax.PlatformCPU, m.HeavyAtoms, 1)
		gpu := relax.ModelTime(relax.PlatformGPU, m.HeavyAtoms, 1)
		fmt.Printf("%-8s %6d %10d | %6d / %5d | %9.0f %9.0f %9.0f | %6.1fx\n",
			tg.ID, tg.Length, m.HeavyAtoms, rr.Before.Bumps, rr.After.Bumps,
			af2, cpu, gpu, af2/gpu)
	}

	fmt.Println()
	fmt.Println("genome-scale projection (3205 structures, 48 GPU workers, as in Sec 4.5):")
	var totalGPU float64
	for i := 0; i < 3205; i++ {
		totalGPU += relax.ModelTime(relax.PlatformGPU, 2560, 1)
	}
	fmt.Printf("  total GPU-seconds %.0f -> wall %.1f min on 48 workers (paper: 22.89 min)\n",
		totalGPU, totalGPU/48/60)
}
