// Proteome sweep: deploy the S. divinum inference workflow at increasing
// Summit allocations — 32 to 1000 nodes (192 to 6000 Dask workers, the
// paper's largest deployment) — and report walltime, utilization and
// node-hour costs at each scale, plus the task-ordering ablation.
//
// Run with: go run ./examples/proteome_sweep
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/proteome"
)

func main() {
	env := experiments.NewEnv(experiments.DefaultSeed)
	sd := env.Proteome(proteome.SDivinum)
	proteins := sd.FilterMaxLen(2500)

	fmt.Printf("S. divinum: %d proteins -> %d inference tasks\n\n",
		len(proteins), len(proteins)*5)

	cfg := core.DefaultConfig()
	cfg.AndesNodes = 96
	feat, err := core.FeatureStage(proteins, env.FeatureGen(), env.FS, core.ReducedDatabase(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feature generation: %.0f Andes node-hours, wall %.1f h\n\n",
		feat.NodeHours, feat.WalltimeSec/3600)

	fmt.Printf("%-7s %-8s %-10s %-12s %-12s %-12s\n",
		"NODES", "WORKERS", "WALL(h)", "NODE-HOURS", "UTILIZATION", "SPREAD(min)")
	for _, nodes := range []int{32, 100, 200, 500, 1000} {
		c := cfg
		c.SummitNodes = nodes
		c.HighMemNodes = 4
		rep, err := core.InferenceStage(env.Engine, proteins, feat.Features, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %-8d %-10.2f %-12.0f %-11.1f%% %-12.1f\n",
			nodes, nodes*6, rep.WalltimeSec/3600, rep.NodeHours,
			100*rep.Sim.Utilization(), rep.Sim.FinishSpread()/60)
	}

	// Ordering ablation at the paper's Fig. 2 scale.
	fmt.Println("\ntask-ordering ablation at 200 nodes (1200 workers):")
	for _, order := range []cluster.OrderPolicy{cluster.LongestFirst, cluster.ShortestFirst, cluster.SubmissionOrder} {
		c := cfg
		c.SummitNodes = 200
		c.HighMemNodes = 4
		c.Order = order
		rep, err := core.InferenceStage(env.Engine, proteins, feat.Features, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s wall %6.2f h, finish spread %6.1f min\n",
			order, rep.WalltimeSec/3600, rep.Sim.FinishSpread()/60)
	}
}
