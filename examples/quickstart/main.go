// Quickstart: the full pipeline on a small synthetic proteome, using the
// real (non-surrogate) components end to end — sequence library search with
// the k-mer prefilter and Smith-Waterman, MSA feature extraction, surrogate
// AlphaFold inference with dynamic recycling, molecular-mechanics
// relaxation, and PDB export.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fold"
	"repro/internal/msa"
	"repro/internal/pdb"
	"repro/internal/proteome"
	"repro/internal/relax"
	"repro/internal/seqdb"
)

func main() {
	const seed = 7

	// A shared domain universe: proteome targets and database entries
	// descend from the same ancestral families.
	universe := proteome.NewUniverse(seed, 24, 60, 160)

	// A small bacterial proteome of 20 proteins.
	species := proteome.Species{
		Name: "Examplococcus minimus", Code: "EXM", Kingdom: proteome.Prokaryote,
		NumProteins: 20, LenShape: 2.4, LenScale: 90,
		MinLen: 50, MaxLen: 400, HypotheticalFrac: 0.2,
	}
	prot := proteome.Generate(species, universe, seed)

	// Sequence libraries and the real search pipeline (HHblits/HMMER role).
	libs := seqdb.StandardLibraries(universe, seed)
	gen := core.NewRealFeatureGen(libs, msa.DefaultSearchConfig())

	// Ground truth provider + inference engine (the AlphaFold2 surrogate).
	gt := core.NewGroundTruth(seed)
	gt.Register(prot)
	engine := fold.NewEngine(gt, seed)

	outDir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quickstart: %d proteins of %s; models land in %s\n\n",
		len(prot.Proteins), species.Name, outDir)
	fmt.Printf("%-10s %4s %6s %6s %8s %8s %6s\n",
		"ID", "LEN", "DEPTH", "Neff", "pLDDT", "pTMS", "BUMPS")

	for _, p := range prot.Proteins[:10] {
		feats, err := gen.Features(p)
		if err != nil {
			log.Fatal(err)
		}

		// Five models; keep the best by pTMS.
		var best *fold.Prediction
		for m := 0; m < fold.NumModels; m++ {
			pred, err := engine.Infer(fold.Task{
				ID: p.Seq.ID, Length: p.Seq.Len(), Features: feats,
				Model: m, Preset: fold.Genome, NodeMemGB: 16, WantCoords: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			if best == nil || pred.PTMS > best.PTMS {
				best = pred
			}
		}

		// Geometry optimization with the paper's single-pass GPU protocol.
		rr, err := relax.Relax(best.CA, best.SC, relax.DefaultOptions(relax.PlatformGPU))
		if err != nil {
			log.Fatal(err)
		}

		model, err := pdb.FromTrace(p.Seq.ID, p.Seq.Residues, rr.CA, rr.SC, best.PLDDT)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(filepath.Join(outDir, p.Seq.ID+".pdb"))
		if err != nil {
			log.Fatal(err)
		}
		if err := pdb.Write(f, model); err != nil {
			log.Fatal(err)
		}
		f.Close()

		fmt.Printf("%-10s %4d %6d %6.1f %8.1f %8.3f %6d\n",
			p.Seq.ID, p.Seq.Len(), feats.Depth, feats.Neff,
			best.MeanPLDDT, best.PTMS, rr.After.Bumps)
	}
	fmt.Println("\ndone; inspect the PDB files with any molecular viewer")
}
