// Annotate: the Section 4.6 analysis on a small scale — predict structures
// for hypothetical proteins, search them against the pdb70 stand-in, and
// transfer annotations through structure where sequence identity is far too
// low for sequence methods.
//
// Run with: go run ./examples/annotate
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fold"
	"repro/internal/proteome"
)

func main() {
	const seed = 11
	universe := proteome.NewUniverse(seed, 48, 70, 200)

	species := proteome.Species{
		Name: "Annotatobacter obscurus", Code: "ANO", Kingdom: proteome.Prokaryote,
		NumProteins: 60, LenShape: 2.2, LenScale: 100,
		MinLen: 60, MaxLen: 500, HypotheticalFrac: 0.5,
	}
	prot := proteome.Generate(species, universe, seed)
	gt := core.NewGroundTruth(seed)
	gt.Register(prot)
	engine := fold.NewEngine(gt, seed)
	gen := core.DefaultFastFeatureGen(seed)

	// The structural database covers ~80% of families; the remainder are
	// potential novel folds.
	var covered []int
	for f := 0; f < universe.NumFamilies(); f++ {
		if f%5 != 2 {
			covered = append(covered, f)
		}
	}
	db := analysis.BuildPDB70(universe, covered, seed)
	fmt.Printf("pdb70 stand-in: %d structures covering %d of %d families\n\n",
		len(db.Entries), len(covered), universe.NumFamilies())

	fmt.Printf("%-10s %5s %7s %7s %7s  %s\n", "ID", "pLDDT", "topTM", "seqID", "match", "verdict")
	var anns []*analysis.Annotation
	for _, p := range prot.Hypotheticals() {
		feats, err := gen.Features(p)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := engine.Infer(fold.Task{
			ID: p.Seq.ID, Length: p.Seq.Len(), Features: feats,
			Model: 0, Preset: fold.Genome, NodeMemGB: 64, WantCoords: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		ann, err := analysis.Annotate(db, p.Seq.ID, pred.CA, p.Seq.Residues, pred.MeanPLDDT)
		if err != nil {
			log.Fatal(err)
		}
		anns = append(anns, ann)
		verdict := "no transfer"
		if ann.StructuralMatch {
			verdict = fmt.Sprintf("annotate from %s", ann.Top.ID)
		}
		if ann.NovelFoldCandidate {
			verdict = "NOVEL FOLD CANDIDATE"
		}
		fmt.Printf("%-10s %5.1f %7.3f %7.1f%% %7v  %s\n",
			p.Seq.ID, pred.MeanPLDDT, ann.Top.TM, 100*ann.SeqIdentity,
			ann.StructuralMatch, verdict)
	}

	rep := analysis.Aggregate(anns)
	fmt.Printf("\nsummary: %d/%d matched structurally; %d below 20%% seq id, %d below 10%%; %d novel-fold candidates\n",
		rep.StructuralMatch, rep.Total, rep.MatchSeqIDBelow20, rep.MatchSeqIDBelow10, rep.NovelFolds)
}
