package repro_test

// The benchmark harness: one benchmark per table and figure of the paper.
// Each benchmark regenerates its experiment from scratch on every iteration
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation section. The same experiments are
// available interactively via `go run ./cmd/afbench <name>`.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/relax"
)

func newEnv(b *testing.B) *experiments.Env {
	b.Helper()
	return experiments.NewEnv(experiments.DefaultSeed)
}

// BenchmarkTable1Presets regenerates Table 1: the four presets on the
// 559-sequence D. vulgaris benchmark. Paper: mean pLDDT 78.4/79.5/80.7/78.6,
// mean pTMS 0.631/0.644/0.650/0.631, counts 559/559/559/551, walltimes
// 44/50/58/>150 min.
func BenchmarkTable1Presets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.Table1(env)
		if err != nil {
			b.Fatal(err)
		}
		for _, suffix := range []struct{ preset, metric string }{
			{"reduced_dbs", "plddt_reduced"}, {"genome", "plddt_genome"},
			{"super", "plddt_super"}, {"casp14", "plddt_casp14"},
		} {
			row, err := res.Row(suffix.preset)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(row.MeanPLDDT, suffix.metric)
		}
		g, _ := res.Row("genome")
		b.ReportMetric(g.MeanPTMS, "ptms_genome")
		b.ReportMetric(g.WalltimeMin, "wall_min_genome")
		c, _ := res.Row("casp14")
		b.ReportMetric(float64(c.Count), "count_casp14")
	}
}

// BenchmarkFig2WorkerTimeline regenerates Fig. 2: the 1200-worker dataflow
// run and its load balance. Paper: workers finish within minutes of one
// another under longest-first ordering.
func BenchmarkFig2WorkerTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.Fig2(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinishSpreadMin, "spread_min_sorted")
		b.ReportMetric(res.RandomFinishSpreadMin, "spread_min_random")
		b.ReportMetric(res.MakespanHours, "makespan_h")
		b.ReportMetric(100*res.Utilization, "utilization_pct")
	}
}

// BenchmarkFig3RelaxQuality regenerates Fig. 3: TM/SPECS before vs after
// relaxation. Paper: strong correlation, no decreases, slight SPECS gains.
func BenchmarkFig3RelaxQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.Fig3(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TMCorr[relax.PlatformGPU], "tm_corr_gpu")
		b.ReportMetric(res.SPECCorr[relax.PlatformGPU], "specs_corr_gpu")
		b.ReportMetric(res.MaxTMDrop, "max_tm_drop")
		b.ReportMetric(res.MeanSPECDelta[relax.PlatformGPU], "mean_specs_delta")
	}
}

// BenchmarkFig4RelaxSpeedup regenerates Fig. 4: relaxation time vs system
// size. Paper: up to 14x GPU speedup; T1080 took ~4.5 h with the original
// method.
func BenchmarkFig4RelaxSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.Fig4(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanGPUSpeedup, "gpu_speedup_mean")
		b.ReportMetric(res.MaxGPUSpeedup, "gpu_speedup_max")
		b.ReportMetric(res.T1080AF2Hours, "t1080_af2_hours")
	}
}

// BenchmarkFeatureGen regenerates Section 4.1: 240 Andes node-hours of
// feature generation vs ~400 Summit node-hours of inference for the
// D. vulgaris proteome.
func BenchmarkFeatureGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.FeatureGenExperiment(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AndesNodeHours, "andes_node_hours")
		b.ReportMetric(res.SummitNodeHours, "summit_node_hours")
		b.ReportMetric(res.FullDBNodeHours, "full_db_node_hours")
	}
}

// BenchmarkRecycleGains regenerates Section 4.2: the improvement tail.
// Paper: 45% of the super-preset gain from 5% of targets (Δ≥0.1); 74% from
// 12% (Δ≥0.05); improved targets recycle near the cap.
func BenchmarkRecycleGains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.RecycleGains(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FracGainFromBig, "gain_pct_from_big")
		b.ReportMetric(100*res.FracTargetsBig, "targets_pct_big")
		b.ReportMetric(res.MeanRecyclesOfBig, "recycles_of_big")
	}
}

// BenchmarkSDivinum regenerates Section 4.3.1: the plant proteome. Paper:
// 57% of top models above pLDDT 70, 36% of residues above 90, 53% above
// pTMS 0.6, ~2000 Andes + ~3000 Summit node-hours.
func BenchmarkSDivinum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.SDivinum(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FracPLDDTAbove70, "top_plddt70_pct")
		b.ReportMetric(100*res.ResidueCoverage90, "residues_plddt90_pct")
		b.ReportMetric(100*res.FracPTMSAbove06, "top_ptms06_pct")
		b.ReportMetric(res.AndesNodeHours, "andes_node_hours")
		b.ReportMetric(res.SummitNodeHours, "summit_node_hours")
	}
}

// BenchmarkViolationReduction regenerates Section 4.4: clash/bump removal.
// Paper: clashes 0.22±1.09 -> 0 for all methods; bumps 3.76±12.74 ->
// 2.12-2.71.
func BenchmarkViolationReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.Violations(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ClashesBefore.Mean, "clashes_before")
		b.ReportMetric(res.BumpsBefore.Mean, "bumps_before")
		b.ReportMetric(res.ClashesAfter[relax.PlatformGPU].Mean, "clashes_after_gpu")
		b.ReportMetric(res.BumpsAfter[relax.PlatformGPU].Mean, "bumps_after_gpu")
	}
}

// BenchmarkGenomeRelax regenerates Section 4.5: 3205 relaxations on 48 GPU
// workers. Paper: 22.89 minutes.
func BenchmarkGenomeRelax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.GenomeRelax(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WallMinutes, "wall_minutes")
		b.ReportMetric(float64(res.Structures), "structures")
	}
}

// BenchmarkAnnotation regenerates Section 4.6: structural annotation of the
// 559 hypothetical proteins. Paper: 239 matches at TM≥0.6, 215 below 20%
// sequence identity, 112 below 10%.
func BenchmarkAnnotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.Annotation(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Report.StructuralMatch), "matches_tm06")
		b.ReportMetric(float64(res.Report.MatchSeqIDBelow20), "matches_seqid_lt20")
		b.ReportMetric(float64(res.Report.MatchSeqIDBelow10), "matches_seqid_lt10")
		b.ReportMetric(float64(res.Report.NovelFolds), "novel_fold_candidates")
	}
}

// BenchmarkFullCampaign regenerates the headline scale result: all four
// proteomes (35,634 targets) in under 4,000 Summit node-hours.
func BenchmarkFullCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.Campaign(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Targets), "targets")
		b.ReportMetric(res.SummitNodeHours, "summit_node_hours")
		b.ReportMetric(res.AndesNodeHours, "andes_node_hours")
	}
}

// BenchmarkAblations runs the design-choice ablations of DESIGN.md §5:
// task ordering, task granularity, workers per node, replica count,
// dynamic-vs-fixed recycles, reduced-vs-full library.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.Ablations(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OrderWallHours["longest-first"], "wall_h_longest_first")
		b.ReportMetric(res.OrderWallHours["submission-order"], "wall_h_random")
		b.ReportMetric(res.ReplicaWallHours[1], "feat_wall_h_1copy")
		b.ReportMetric(res.ReplicaWallHours[24], "feat_wall_h_24copies")
		b.ReportMetric(res.DynamicPTMS-res.FixedPTMS, "ptms_gain_dynamic")
	}
}

// BenchmarkComplexScreen runs the AF2Complex extension: an all-vs-all
// interaction screen demonstrating the quadratic scaling the paper's
// conclusion highlights.
func BenchmarkComplexScreen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		res, err := experiments.ComplexScreen(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Pairs), "pairs")
		b.ReportMetric(float64(res.Interactions), "interactions")
		b.ReportMetric(res.ScreenGPUHours/res.MonomerGPUHours, "screen_vs_monomer_x")
	}
}
