// Package repro is a from-scratch Go reproduction of "Proteome-scale
// Deployment of Protein Structure Prediction Workflows on the Summit
// Supercomputer" (Gao et al., IPPS 2022, arXiv:2201.10024).
//
// The repository builds every system the paper depends on — a Dask-like
// distributed dataflow engine, a Summit/Andes cluster simulator with an
// LSF-like batch queue, sequence libraries with k-mer search and profile
// HMMs, an AlphaFold2 inference surrogate with the paper's four presets and
// dynamic recycling, a molecular-mechanics relaxation stage, and the
// structural-comparison metrics (Kabsch, TM-score, SPECS) — and reproduces
// every table and figure of the evaluation section.
//
// Every compute stage — feature generation, the (target x model)
// inference fan-out, the high-memory retry wave, the relaxation
// protocols, the all-vs-all complex screen, and the independent
// multi-wave dataflow simulations — fans out through the Executor
// abstraction in internal/exec, which unifies the repository's two
// execution back ends behind one deterministic contract: results are
// collected by submission index, never by completion order, and the
// lowest-index error surfaces exactly as the serial loop would.
//
// Three executors implement the contract. The pool executor wraps the
// bounded in-process worker pool of internal/parallel. The flow executor
// serializes every batch through the dataflow engine of internal/flow —
// the same scheduler/worker/client protocol the paper deploys Dask in —
// over loopback TCP, one flow task per work item, pulled by workers in
// dataflow fashion. The remote flow executor (exec.Connect) is a
// client dialed into a standalone scheduler whose workers run in other OS
// processes, possibly on other hosts: closures cannot cross process
// boundaries, so the three workflow stages ship serializable named-job
// specs (flow.JobSpec — a registered kernel name plus JSON arguments) and
// each worker rebuilds the deterministic campaign world from the spec's
// (seed, species) identity (internal/experiments.RegisterCampaignKernels).
// Because nothing observable depends on completion order or on where a
// kernel ran, the back ends are interchangeable: every table and figure
// is byte-identical across executors and worker counts (enforced by
// TestTable1CrossExecutor, TestCampaignCrossExecutor, and — across real
// scheduler/worker OS processes — TestCampaignMultiProcess, extending
// TestTable1ParallelMatchesSerial). Select the back end with
// afbench/proteomectl -executor=pool|flow (and the worker budget with
// -parallelism, 0 = GOMAXPROCS), or programmatically via Env.Executor and
// core.Config.Executor.
//
// The multi-process deployment itself is four proteomectl subcommands,
// one per terminal or host — the paper's Summit recipe (Section 3.3),
// plus a read-only monitor:
//
//	proteomectl sched -listen :8786 -scheduler-file sched.json -event-log events.jsonl
//	proteomectl worker -scheduler-file sched.json   # repeat per GPU
//	proteomectl submit -scheduler-file sched.json -species DVU
//	proteomectl monitor -scheduler-file sched.json  # optional, any time
//
// See examples/dask_cluster/README.md for the full recipe. Workers are
// disposable: the scheduler requeues in-flight tasks when one disconnects
// and the campaign completes with the identical report — and elastic: a
// worker that joins mid-campaign starts pulling queued tasks immediately
// (TestSubmitElasticWorkerJoin).
//
// Every executor also records first-class per-task telemetry: an
// exec.TaskStats row per work item ({task, kernel, worker placement,
// enqueue/start/finish, wire bytes}) delivered to a pluggable
// exec.TraceSink. The flow protocol carries the scheduler's enqueue stamp
// and the worker's timing bracket back in every Result, pool workers
// stamp the same fields in-process, and `proteomectl submit -stats
// tasks.csv` writes the paper's per-task processing-times CSV from a real
// multi-process campaign (exec.StatsHeader is the schema;
// internal/analysis.LoadBalance computes the per-worker busy fractions
// and task-time histogram from it). Tracing is observation only: reports
// are byte-identical with stats on or off. The opt-in `-summary` flag
// additionally keeps full per-protein feature and prediction payloads
// off the wire — feature kernels return a core.FeatureDigest and
// inference kernels a core.PredictionDigest instead — producing the
// byte-identical printed report with strictly fewer wire bytes
// (TestSubmitSummaryMode measures the reduction in the recorded trace).
//
// The scheduler side is observable through internal/events, the
// structured counterpart of Dask's per-task transition log: every task
// walks the typed state machine received → queued → assigned → running →
// done/failed (workers join and leave the same stream), stamped
// scheduler-side with monotonic times, persisted as JSONL (`sched
// -event-log`), rendered as the free-text placement log (now including
// completions), and streamed over the wire to read-only monitor clients
// — flow.ConnectMonitor / `proteomectl monitor` replays the full backlog
// and then follows live, so a monitor attaching mid-campaign observes
// the same sequence as the persisted log, with queue depth, per-worker
// in-flight counts, and throughput computed by events.Tracker.
// events.ReplayEvents reconstructs per-worker busy intervals and
// queue-depth-over-time from a log alone, and internal/svgplot renders
// the Fig-2-style worker-timeline + queue-depth figure as
// dependency-free, byte-deterministic SVG — with an overlay mode drawing
// a recorded campaign against cluster.SimulateDataflow's prediction for
// the same task set (`afbench -timeline`, `proteomectl run/submit
// -timeline`, analysis.ReplayTimeline for event logs). Monitoring and
// figure rendering are observation only: TestMonitorMidCampaign proves a
// campaign report byte-identical with and without a monitor attached,
// and that the event log's task set exactly matches the stats CSV.
//
// The same event stream makes campaigns crash-safe. Workers heartbeat
// from a dedicated goroutine (`worker -heartbeat`); a worker silent past
// `sched -heartbeat-timeout` is declared dead with a worker_lost event
// and its in-flight task requeued — catching frozen processes whose TCP
// connections never drop. Requeues are budgeted: the scheduler counts
// per-task delivery attempts, and a task whose worker died on every
// attempt (`sched -max-retries`) is quarantined — terminal failed +
// quarantined events with the attempt history, a failed result to the
// client — instead of cycling forever; a JobSpec's escalation payload is
// swapped in on the first redelivery (the high-memory retry wave,
// scheduler-side). Initial dials retry with backoff under a budget
// (flow.DialOptions.Retry, `-dial-retry`) so process start order is free, and
// the in-memory event backlog can be bounded (`sched -event-backlog`)
// with an explicit truncated marker for late subscribers. A killed
// scheduler resumes from its own log (`sched -resume-log` restores the
// stream, continues sequence numbers, and appends to the same file), and
// a killed campaign resumes event-sourced: `submit -resume events.jsonl`
// (and/or -resume-stats tasks.csv) replays what completed into an
// events.CompletedSet, and exec.MapSpecResume recomputes those tasks
// locally — every stage value is a pure function of (seed, species,
// task) — while dispatching only the remainder, so the report stays
// byte-identical to an uninterrupted run and the resumed stats CSV
// records strictly fewer dispatched tasks (TestResumeAfterSchedulerKill).
//
// One scheduler can also serve several campaigns at once — the paper's
// fleet is a shared resource, not one submitter's. Each client may name
// its campaign (`submit -campaign`, flow.Client.Campaign); the name rides
// every task, event, stats row, and report section, so `monitor
// -campaign` and the analysis layer attribute work per tenant. The
// handout queue is a pluggable policy (`sched -policy`): the default
// fifo keeps the wire and every report byte-identical to a
// single-tenant scheduler, while fair round-robins handout across
// campaigns (unnamed submitters get one lane per connection) so a small
// campaign is not starved behind a proteome-scale backlog, and `sched
// -quota N` caps each campaign's unfinished tasks, deferring admission
// — and the submit ack, for backpressure — until earlier tasks settle.
// Fairness is scheduling only: TestTwoCampaignsFairShare runs two
// contending campaigns on one fleet and requires each report
// byte-identical to its solo run, with overlapping completion windows.
//
// The wire format itself is pluggable (flow.Codec): the default JSON
// codec keeps the legacy newline-delimited wire byte-identical, and a
// length-prefixed binary codec with pooled buffers cuts per-task
// overhead for dispatch-bound campaigns. Codecs are negotiated per
// connection by a one-line hello — JSON peers send nothing, so old and
// new processes interoperate and mixed fleets (some workers `-wire
// binary`, some `-wire json`) produce byte-identical reports
// (TestCampaignCrossCodec). The scheduler can also hand out up to
// `sched -batch` tasks per frame, with workers acking in kind, so
// frame count stops scaling 1:1 with task count; the batch size is
// negotiated per worker at registration, and a legacy peer that
// advertises no batching capability keeps receiving the single-task
// form.
//
// Scheduler I/O is non-blocking end to end: every worker, client, and
// monitor connection gets a bounded outbound frame queue (an outbox)
// drained by a dedicated writer goroutine that coalesces queued frames
// into one flush and applies a per-write deadline, so the
// single-goroutine dispatch loop never parks on a peer's socket. A peer
// that stops draining — kernel buffers full past `sched
// -write-timeout`, or its queue overflowing `sched -outbox-depth` —
// is declared dead and disconnected; its in-flight tasks requeue
// through the ordinary retry budget and the campaign completes on the
// healthy fleet with the identical report (TestSlowPeerFaultInjection,
// across real processes). Size -outbox-depth at least as large as the
// biggest wave of results one client awaits; raise -write-timeout for
// genuinely slow links rather than unbounding the queue. Event
// persistence is off the dispatch path too: `sched -event-log` and the
// placement log write through events.AsyncSink, a bounded buffer with
// its own writer goroutine that preserves stream order, drains fully on
// clean shutdown (the persisted log is complete — what `-resume-log`
// and `submit -resume` rely on), and under sustained overload drops
// rather than stalls, recording the loss as an explicit truncated
// marker; a log with such a marker has non-contiguous sequence numbers
// and will not restore, which is the honest outcome after an overloaded
// crash. BenchmarkDispatchThroughput drives 256/1024/4096-worker
// in-process fleets through both codecs and reports tasks/sec and
// allocs/op; BenchmarkDispatchSlowPeer adds a wedged worker and a
// never-draining monitor to the 256-worker fleet and must stay at the
// all-healthy level — a slow peer costs its own connection, never fleet
// throughput.
//
// Live observability is a first-class subsystem (the terminal answer to
// the Dask dashboard the paper leans on). `sched -http localhost:6060`
// serves GET /metrics — every task transition, worker join/leave/lost,
// retry, quarantine, and async-sink drop folded into Prometheus text
// series (internal/obs, dependency-free) labeled by campaign and worker
// — plus /healthz (200 while serving, 503 from the moment shutdown
// begins) and the standard /debug/pprof/ endpoints; the bound address is
// advertised in the scheduler file. Workers piggyback runtime gauges
// (goroutines, live heap bytes, tasks executed, cumulative busy time) on
// their existing heartbeats — appended to the wire message under the
// append-last convention, so mixed fleets interoperate and a legacy
// worker's series are simply absent, never zero garbage. The metrics
// sink runs synchronously under the hub lock and is allocation-free at
// steady state; the gated dispatch benchmarks measure the path with
// metrics enabled. `proteomectl top` renders the same picture without
// HTTP — a refreshing terminal table (queue depth, per-campaign
// queued/running/done/failed, per-worker occupancy, dispatch rate) over
// the read-only monitor protocol, and `top -metrics-snapshot` prints one
// Prometheus scrape derived from the event stream for scripts and tests.
// The e2e contract: the /metrics counters after a real multi-worker
// campaign must exactly match the persisted event log's tallies
// (TestMetricsEndpointMatchesEventLog).
//
// CI enforces the perf + determinism contract: a bench-regression job
// gates the kernel microbenchmarks and the dispatch-throughput rows
// against BENCH_BASELINE.json through cmd/benchguard (allocs/op exactly
// where deterministic, within an explicit band for the
// scheduling-dependent dispatch rows, ns/op with generous tolerance),
// the execution-layer packages (internal/flow, internal/parallel,
// internal/exec, internal/obs) carry an 80% coverage floor that includes
// the remote-dispatch path, the multi-process e2e suite runs under -race, and
// the wire-protocol and FASTA decoders — including the binary framing —
// are continuously fuzzed (short budget per push; seed corpora under
// testdata/fuzz).
//
// Start with README.md, run experiments with cmd/afbench, and see
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate each experiment via `go test -bench`;
// BENCH_BASELINE.json records the kernel-level baselines the allocation
// diet (pooled alignment matrices, reusable relaxation scratch) is
// measured against.
package repro
