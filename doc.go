// Package repro is a from-scratch Go reproduction of "Proteome-scale
// Deployment of Protein Structure Prediction Workflows on the Summit
// Supercomputer" (Gao et al., IPPS 2022, arXiv:2201.10024).
//
// The repository builds every system the paper depends on — a Dask-like
// distributed dataflow engine, a Summit/Andes cluster simulator with an
// LSF-like batch queue, sequence libraries with k-mer search and profile
// HMMs, an AlphaFold2 inference surrogate with the paper's four presets and
// dynamic recycling, a molecular-mechanics relaxation stage, and the
// structural-comparison metrics (Kabsch, TM-score, SPECS) — and reproduces
// every table and figure of the evaluation section.
//
// Start with README.md, run experiments with cmd/afbench, and see
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate each experiment via `go test -bench`.
package repro
