// Package repro is a from-scratch Go reproduction of "Proteome-scale
// Deployment of Protein Structure Prediction Workflows on the Summit
// Supercomputer" (Gao et al., IPPS 2022, arXiv:2201.10024).
//
// The repository builds every system the paper depends on — a Dask-like
// distributed dataflow engine, a Summit/Andes cluster simulator with an
// LSF-like batch queue, sequence libraries with k-mer search and profile
// HMMs, an AlphaFold2 inference surrogate with the paper's four presets and
// dynamic recycling, a molecular-mechanics relaxation stage, and the
// structural-comparison metrics (Kabsch, TM-score, SPECS) — and reproduces
// every table and figure of the evaluation section.
//
// Every compute stage — feature generation, the (target x model)
// inference fan-out, the high-memory retry wave, the relaxation
// protocols, and the all-vs-all complex screen — executes on the
// deterministic parallel execution layer in internal/parallel: a bounded
// worker pool that collects results by submission index, never by
// completion order, and surfaces the lowest-index error exactly as the
// serial loop would. Parallelism therefore changes only wall-clock time:
// every table and figure is byte-identical at any worker count (enforced
// by TestTable1ParallelMatchesSerial), which keeps the reproduction's
// hard determinism requirement intact while the host pipeline exploits
// the same parallelism the paper's deployment is about. Set the pool
// size with afbench -parallelism or Env.Parallelism (0 = GOMAXPROCS).
//
// Start with README.md, run experiments with cmd/afbench, and see
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate each experiment via `go test -bench`;
// BENCH_BASELINE.json records the kernel-level baselines the allocation
// diet (pooled alignment matrices, reusable relaxation scratch) is
// measured against.
package repro
