// Package seqdb models the sequence libraries AlphaFold searches against
// (UniProt/UniRef90, BFD, MGnify, and the PDB seqres set) and the two
// database engineering steps the paper relies on:
//
//  1. the "reduced" dataset — removing identical and near-identical
//     sequences from the BFD with a greedy identity-clustering pass
//     (Section 3.2.1: 2.1 TB full → 420 GB reduced, with virtually
//     identical prediction accuracy), and
//  2. replication across the parallel filesystem — 24 identical copies with
//     4 concurrent jobs per copy to relieve metadata-server contention.
//
// Libraries are generated from the shared domain universe in
// internal/proteome, so proteome targets have genuine homologs here.
package seqdb

import (
	"fmt"
	"sort"

	"repro/internal/proteome"
	"repro/internal/rng"
	"repro/internal/seq"
)

// Library is one sequence database.
type Library struct {
	Name    string
	Entries []Entry
}

// Entry is one database sequence plus the ground-truth family it descends
// from (used only by tests and analyses, never by the search path).
type Entry struct {
	Seq    seq.Sequence
	Family int
}

// NumEntries returns the number of sequences.
func (l *Library) NumEntries() int { return len(l.Entries) }

// TotalResidues returns the summed sequence length, the proxy for on-disk
// size used by the filesystem model.
func (l *Library) TotalResidues() int {
	total := 0
	for i := range l.Entries {
		total += l.Entries[i].Seq.Len()
	}
	return total
}

// SizeBytes estimates the on-disk footprint. Real HH-suite/HMMER databases
// carry index and profile overheads of roughly 2x the raw residues.
func (l *Library) SizeBytes() int64 { return int64(l.TotalResidues()) * 2 }

// BuildSpec parameterizes library generation.
type BuildSpec struct {
	Name string
	// EntriesPerFamily controls depth: how many homologs each universe
	// family contributes.
	EntriesPerFamily int
	// MinDivergence and MaxDivergence bound how far entries wander from
	// their family ancestor.
	MinDivergence, MaxDivergence float64
	// DuplicateFrac is the fraction of additional near-identical copies
	// (divergence < 0.05) appended after the base entries; this is what the
	// reduction pass removes. The real BFD is dominated by such redundancy.
	DuplicateFrac float64
}

// Build generates a library from the universe.
func Build(u *proteome.Universe, spec BuildSpec, seed uint64) *Library {
	r := rng.New(seed).SplitNamed("seqdb:" + spec.Name)
	lib := &Library{Name: spec.Name}
	n := 0
	for f := 0; f < u.NumFamilies(); f++ {
		for k := 0; k < spec.EntriesPerFamily; k++ {
			div := spec.MinDivergence + (spec.MaxDivergence-spec.MinDivergence)*r.Float64()
			lib.Entries = append(lib.Entries, Entry{
				Seq: seq.Sequence{
					ID:          fmt.Sprintf("%s|%06d", spec.Name, n),
					Description: fmt.Sprintf("family-%04d homolog", f),
					Residues:    u.Mutate(f, div, r),
				},
				Family: f,
			})
			n++
		}
	}
	// Redundant near-duplicates of random base entries.
	nDup := int(float64(len(lib.Entries)) * spec.DuplicateFrac)
	base := len(lib.Entries)
	for k := 0; k < nDup; k++ {
		src := lib.Entries[r.Intn(base)]
		dup := src
		dup.Seq.ID = fmt.Sprintf("%s|%06d", spec.Name, n)
		n++
		// Sprinkle up to 4% point mutations so duplicates are "near"
		// identical, as in the real BFD.
		res := []byte(src.Seq.Residues)
		for i := range res {
			if r.Float64() < 0.04*r.Float64() {
				res[i] = seq.Alphabet[r.Intn(seq.NumAminoAcids)]
			}
		}
		dup.Seq.Residues = string(res)
		lib.Entries = append(lib.Entries, dup)
	}
	return lib
}

// StandardLibraries builds the four libraries of the AlphaFold pipeline with
// depth proportions resembling the real ones: BFD is by far the largest and
// the most redundant; the PDB seqres set is small.
func StandardLibraries(u *proteome.Universe, seed uint64) map[string]*Library {
	return map[string]*Library{
		"uniref90": Build(u, BuildSpec{
			Name: "uniref90", EntriesPerFamily: 20,
			MinDivergence: 0.05, MaxDivergence: 0.6, DuplicateFrac: 0.1,
		}, seed),
		"bfd": Build(u, BuildSpec{
			Name: "bfd", EntriesPerFamily: 60,
			MinDivergence: 0.05, MaxDivergence: 0.75, DuplicateFrac: 4.0,
		}, seed+1),
		"mgnify": Build(u, BuildSpec{
			Name: "mgnify", EntriesPerFamily: 30,
			MinDivergence: 0.1, MaxDivergence: 0.8, DuplicateFrac: 0.5,
		}, seed+2),
		"pdb_seqres": Build(u, BuildSpec{
			Name: "pdb_seqres", EntriesPerFamily: 2,
			MinDivergence: 0.02, MaxDivergence: 0.4, DuplicateFrac: 0,
		}, seed+3),
	}
}

// KmerIndex is an inverted index from k-mers to the entries containing
// them, the prefilter stage of the search pipeline (the role MMseqs2 or the
// HHblits prefilter plays).
type KmerIndex struct {
	K        int
	postings map[string][]int32
	lib      *Library
}

// NewKmerIndex indexes a library with word length k.
func NewKmerIndex(lib *Library, k int) *KmerIndex {
	if k < 2 || k > 8 {
		panic("seqdb: k-mer length out of supported range")
	}
	idx := &KmerIndex{K: k, postings: make(map[string][]int32), lib: lib}
	for e := range lib.Entries {
		res := lib.Entries[e].Seq.Residues
		seen := make(map[string]bool)
		for i := 0; i+k <= len(res); i++ {
			w := res[i : i+k]
			if !seen[w] {
				seen[w] = true
				idx.postings[w] = append(idx.postings[w], int32(e))
			}
		}
	}
	return idx
}

// Hit is one prefilter candidate: a library entry index and the number of
// distinct query k-mers it shares.
type Hit struct {
	Entry  int
	Shared int
}

// Query returns candidate entries sharing at least minShared distinct
// k-mers with the query, sorted by descending shared count (ties by entry
// index for determinism).
func (idx *KmerIndex) Query(query string, minShared int) []Hit {
	counts := make(map[int32]int)
	seen := make(map[string]bool)
	for i := 0; i+idx.K <= len(query); i++ {
		w := query[i : i+idx.K]
		if seen[w] {
			continue
		}
		seen[w] = true
		for _, e := range idx.postings[w] {
			counts[e]++
		}
	}
	hits := make([]Hit, 0, len(counts))
	for e, c := range counts {
		if c >= minShared {
			hits = append(hits, Hit{Entry: int(e), Shared: c})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Shared != hits[j].Shared {
			return hits[i].Shared > hits[j].Shared
		}
		return hits[i].Entry < hits[j].Entry
	})
	return hits
}

// Reduce performs greedy identity clustering (CD-HIT-style): entries are
// processed longest-first; an entry joins an existing cluster if it shares
// at least identityFrac of its k-mers with the representative, otherwise it
// founds a new cluster. The returned library holds only representatives.
// With identityFrac ≈ 0.9 this is the "remove identical and near-identical
// sequences from the BFD" step of Section 3.2.1.
func Reduce(lib *Library, k int, identityFrac float64) *Library {
	order := make([]int, len(lib.Entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la := lib.Entries[order[a]].Seq.Len()
		lb := lib.Entries[order[b]].Seq.Len()
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})

	reduced := &Library{Name: lib.Name + "_reduced"}
	// Index over accepted representatives only, built incrementally.
	repKmers := make(map[string][]int32)
	repSets := [][]string{}

	kmerSet := func(res string) []string {
		seen := make(map[string]bool)
		out := make([]string, 0, len(res))
		for i := 0; i+k <= len(res); i++ {
			w := res[i : i+k]
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
		return out
	}

	for _, e := range order {
		res := lib.Entries[e].Seq.Residues
		words := kmerSet(res)
		if len(words) == 0 {
			reduced.Entries = append(reduced.Entries, lib.Entries[e])
			continue
		}
		counts := make(map[int32]int)
		for _, w := range words {
			for _, rep := range repKmers[w] {
				counts[rep]++
			}
		}
		matched := false
		need := int(identityFrac * float64(len(words)))
		for _, c := range counts {
			if c >= need {
				matched = true
				break
			}
		}
		if matched {
			continue // redundant with an existing representative
		}
		repID := int32(len(repSets))
		repSets = append(repSets, words)
		for _, w := range words {
			repKmers[w] = append(repKmers[w], repID)
		}
		reduced.Entries = append(reduced.Entries, lib.Entries[e])
	}
	return reduced
}

// ReplicaSet is the filesystem replication layout of Section 3.2.1: N
// identical copies of the reduced libraries with a bounded number of
// concurrent jobs per copy.
type ReplicaSet struct {
	Copies      int
	JobsPerCopy int
}

// PaperReplicaSet returns the deployed layout (24 copies, 4 jobs per copy).
func PaperReplicaSet() ReplicaSet { return ReplicaSet{Copies: 24, JobsPerCopy: 4} }

// MaxConcurrentJobs returns the search concurrency the layout supports.
func (rs ReplicaSet) MaxConcurrentJobs() int { return rs.Copies * rs.JobsPerCopy }

// AssignCopy deterministically maps a job index to a replica copy.
func (rs ReplicaSet) AssignCopy(job int) int {
	if rs.Copies <= 0 {
		return 0
	}
	return job % rs.Copies
}
