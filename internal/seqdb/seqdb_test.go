package seqdb

import (
	"testing"

	"repro/internal/proteome"
)

func testUniverse() *proteome.Universe { return proteome.NewUniverse(1, 32, 60, 180) }

func TestBuildDeterminismAndValidity(t *testing.T) {
	u := testUniverse()
	spec := BuildSpec{Name: "t", EntriesPerFamily: 5, MinDivergence: 0.05, MaxDivergence: 0.5, DuplicateFrac: 0.5}
	a := Build(u, spec, 3)
	b := Build(u, spec, 3)
	if a.NumEntries() != b.NumEntries() {
		t.Fatal("same-seed builds differ in size")
	}
	for i := range a.Entries {
		if a.Entries[i].Seq.Residues != b.Entries[i].Seq.Residues {
			t.Fatalf("entry %d differs across same-seed builds", i)
		}
		if err := a.Entries[i].Seq.Validate(); err != nil {
			t.Fatalf("entry %d invalid: %v", i, err)
		}
	}
	wantBase := 32 * 5
	wantTotal := wantBase + wantBase/2
	if a.NumEntries() != wantTotal {
		t.Errorf("entries = %d, want %d", a.NumEntries(), wantTotal)
	}
}

func TestStandardLibrariesShape(t *testing.T) {
	u := testUniverse()
	libs := StandardLibraries(u, 7)
	for _, name := range []string{"uniref90", "bfd", "mgnify", "pdb_seqres"} {
		if libs[name] == nil {
			t.Fatalf("missing library %s", name)
		}
	}
	if libs["bfd"].NumEntries() <= libs["uniref90"].NumEntries() {
		t.Error("BFD must dominate uniref90 in size")
	}
	if libs["pdb_seqres"].NumEntries() >= libs["uniref90"].NumEntries() {
		t.Error("pdb_seqres must be the smallest")
	}
	if libs["bfd"].SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestKmerIndexFindsHomologs(t *testing.T) {
	u := testUniverse()
	lib := Build(u, BuildSpec{Name: "t", EntriesPerFamily: 8, MinDivergence: 0.05, MaxDivergence: 0.3}, 5)
	idx := NewKmerIndex(lib, 4)

	// Query with the ancestor of family 0: top hits must be family 0.
	hits := idx.Query(u.Domains[0], 3)
	if len(hits) == 0 {
		t.Fatal("no hits for a family ancestor")
	}
	top := hits[0]
	if lib.Entries[top.Entry].Family != 0 {
		t.Errorf("top hit family = %d, want 0", lib.Entries[top.Entry].Family)
	}
	// Hits must be sorted by descending shared count.
	for i := 1; i < len(hits); i++ {
		if hits[i].Shared > hits[i-1].Shared {
			t.Fatal("hits not sorted by shared count")
		}
	}
}

func TestKmerIndexMinShared(t *testing.T) {
	u := testUniverse()
	lib := Build(u, BuildSpec{Name: "t", EntriesPerFamily: 4, MinDivergence: 0.1, MaxDivergence: 0.4}, 6)
	idx := NewKmerIndex(lib, 4)
	loose := idx.Query(u.Domains[1], 1)
	strict := idx.Query(u.Domains[1], 10)
	if len(strict) > len(loose) {
		t.Error("higher minShared returned more hits")
	}
	for _, h := range strict {
		if h.Shared < 10 {
			t.Errorf("hit with shared=%d below threshold", h.Shared)
		}
	}
}

func TestKmerIndexRejectsBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=1")
		}
	}()
	NewKmerIndex(&Library{}, 1)
}

func TestReduceRemovesDuplicates(t *testing.T) {
	u := testUniverse()
	// Heavy duplication like the BFD.
	full := Build(u, BuildSpec{
		Name: "bfd", EntriesPerFamily: 10,
		MinDivergence: 0.1, MaxDivergence: 0.6, DuplicateFrac: 4.0,
	}, 9)
	reduced := Reduce(full, 4, 0.8)

	if reduced.NumEntries() >= full.NumEntries() {
		t.Fatalf("reduction did not shrink: %d -> %d", full.NumEntries(), reduced.NumEntries())
	}
	// The paper's reduction is roughly 5x by bytes (2.1 TB -> 420 GB); with
	// DuplicateFrac=4 the duplicate mass should mostly vanish.
	ratio := float64(full.SizeBytes()) / float64(reduced.SizeBytes())
	if ratio < 3 {
		t.Errorf("reduction ratio %.2f, want >= 3 with 80%% duplicates", ratio)
	}

	// Every family must still be represented: reduction must not lose
	// coverage (this is why accuracy is preserved).
	covered := map[int]bool{}
	for _, e := range reduced.Entries {
		covered[e.Family] = true
	}
	for f := 0; f < u.NumFamilies(); f++ {
		if !covered[f] {
			t.Errorf("family %d lost by reduction", f)
		}
	}
}

func TestReduceIdempotent(t *testing.T) {
	u := testUniverse()
	full := Build(u, BuildSpec{
		Name: "x", EntriesPerFamily: 6,
		MinDivergence: 0.1, MaxDivergence: 0.5, DuplicateFrac: 2.0,
	}, 10)
	once := Reduce(full, 4, 0.8)
	twice := Reduce(once, 4, 0.8)
	if twice.NumEntries() != once.NumEntries() {
		t.Errorf("reduce not idempotent: %d -> %d", once.NumEntries(), twice.NumEntries())
	}
}

func TestReplicaSet(t *testing.T) {
	rs := PaperReplicaSet()
	if rs.Copies != 24 || rs.JobsPerCopy != 4 {
		t.Errorf("paper replica set = %+v", rs)
	}
	if rs.MaxConcurrentJobs() != 96 {
		t.Errorf("max concurrent jobs = %d", rs.MaxConcurrentJobs())
	}
	seen := map[int]int{}
	for j := 0; j < 240; j++ {
		c := rs.AssignCopy(j)
		if c < 0 || c >= rs.Copies {
			t.Fatalf("copy %d out of range", c)
		}
		seen[c]++
	}
	for c, n := range seen {
		if n != 10 {
			t.Errorf("copy %d assigned %d jobs, want 10", c, n)
		}
	}
}
