package proteome

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/seq"
)

func testUniverse() *Universe { return NewUniverse(1, 64, 60, 220) }

func TestPaperSpeciesCounts(t *testing.T) {
	sp := PaperSpecies()
	if len(sp) != 4 {
		t.Fatalf("species count %d", len(sp))
	}
	want := map[string]int{"PMER": 3446, "RRU": 3849, "DVU": 3205, "SPDIV": 25134}
	total := 0
	for _, s := range sp {
		if want[s.Code] != s.NumProteins {
			t.Errorf("%s: %d proteins, want %d", s.Code, s.NumProteins, want[s.Code])
		}
		total += s.NumProteins
	}
	if total != 35634 {
		t.Errorf("total proteins = %d, abstract says 35634", total)
	}
}

func TestUniverseDeterminism(t *testing.T) {
	a := NewUniverse(7, 16, 50, 100)
	b := NewUniverse(7, 16, 50, 100)
	for i := range a.Domains {
		if a.Domains[i] != b.Domains[i] {
			t.Fatalf("universe domain %d differs across same-seed builds", i)
		}
	}
	c := NewUniverse(8, 16, 50, 100)
	if a.Domains[0] == c.Domains[0] {
		t.Error("different seeds produced identical first domain")
	}
}

func TestUniverseDomainValidity(t *testing.T) {
	u := testUniverse()
	for i, d := range u.Domains {
		s := seq.Sequence{ID: "d", Residues: d}
		if err := s.Validate(); err != nil {
			t.Fatalf("domain %d invalid: %v", i, err)
		}
		if len(d) < 60 || len(d) > 220 {
			t.Errorf("domain %d length %d out of range", i, len(d))
		}
	}
}

func TestMutateDivergence(t *testing.T) {
	u := testUniverse()
	r := rng.New(2)
	anc := u.Domains[0]

	if got := u.Mutate(0, 0, r); got != anc {
		t.Error("zero divergence must return the ancestor")
	}

	// Indels shift the frame, so similarity is measured by shared 4-mers
	// (alignment-free), not positional identity.
	child := u.Mutate(0, 0.1, r)
	if sim := kmerContainment(anc, child, 4); sim < 0.4 {
		t.Errorf("10%% divergence left only %v 4-mer containment", sim)
	}

	far := u.Mutate(0, 0.9, rng.New(3))
	if sim := kmerContainment(anc, far, 4); sim > 0.2 {
		t.Errorf("90%% divergence kept %v 4-mer containment", sim)
	}
}

// kmerContainment returns the fraction of a's k-mers present in b.
func kmerContainment(a, b string, k int) float64 {
	if len(a) < k || len(b) < k {
		return 0
	}
	set := map[string]bool{}
	for i := 0; i+k <= len(b); i++ {
		set[b[i:i+k]] = true
	}
	hits := 0
	total := 0
	for i := 0; i+k <= len(a); i++ {
		total++
		if set[a[i:i+k]] {
			hits++
		}
	}
	return float64(hits) / float64(total)
}

func TestGenerateSmallSpecies(t *testing.T) {
	sp := Species{
		Name: "test", Code: "TST", Kingdom: Prokaryote,
		NumProteins: 200, LenShape: 2.6, LenScale: 126,
		MinLen: 29, MaxLen: 2499, HypotheticalFrac: 0.2,
	}
	u := testUniverse()
	p := Generate(sp, u, 11)

	if len(p.Proteins) != 200 {
		t.Fatalf("generated %d proteins", len(p.Proteins))
	}
	hypo := p.Hypotheticals()
	if len(hypo) != 40 {
		t.Errorf("hypothetical count %d, want 40", len(hypo))
	}
	ids := map[string]bool{}
	for _, pr := range p.Proteins {
		if err := pr.Seq.Validate(); err != nil {
			t.Fatalf("invalid protein %s: %v", pr.Seq.ID, err)
		}
		if pr.Seq.Len() < sp.MinLen || pr.Seq.Len() > sp.MaxLen {
			t.Errorf("%s length %d out of bounds", pr.Seq.ID, pr.Seq.Len())
		}
		if ids[pr.Seq.ID] {
			t.Errorf("duplicate ID %s", pr.Seq.ID)
		}
		ids[pr.Seq.ID] = true
		if len(pr.Families) == 0 {
			t.Errorf("%s has no families", pr.Seq.ID)
		}
		for _, f := range pr.Families {
			if f < 0 || f >= u.NumFamilies() {
				t.Errorf("%s family %d out of range", pr.Seq.ID, f)
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	sp := Species{
		Name: "test", Code: "TST", Kingdom: Prokaryote,
		NumProteins: 50, LenShape: 2.6, LenScale: 126,
		MinLen: 29, MaxLen: 2499, HypotheticalFrac: 0.1,
	}
	u := testUniverse()
	a := Generate(sp, u, 5)
	b := Generate(sp, u, 5)
	for i := range a.Proteins {
		if a.Proteins[i].Seq.Residues != b.Proteins[i].Seq.Residues {
			t.Fatalf("protein %d differs across same-seed generations", i)
		}
	}
}

func TestHypotheticalLengthCalibration(t *testing.T) {
	// The hypothetical subset stands in for the paper's 559-sequence
	// benchmark: lengths within 29–1266 and mean near 202.
	sp := DVulgaris
	sp.NumProteins = 3205
	u := testUniverse()
	p := Generate(sp, u, 42)
	hypo := p.Hypotheticals()
	if len(hypo) != 559 {
		t.Fatalf("D. vulgaris hypothetical count = %d, want 559", len(hypo))
	}
	total := 0
	for _, h := range hypo {
		l := h.Seq.Len()
		if l < 29 || l > 1266 {
			t.Errorf("hypothetical %s length %d outside 29–1266", h.Seq.ID, l)
		}
		total += l
	}
	mean := float64(total) / float64(len(hypo))
	if math.Abs(mean-202) > 40 {
		t.Errorf("hypothetical mean length %v, paper benchmark mean is 202", mean)
	}
}

func TestDVulgarisMeanLength(t *testing.T) {
	u := testUniverse()
	p := Generate(DVulgaris, u, 42)
	mean := p.MeanLength()
	// Paper Section 4.1: 3205 sequences with a mean of 328 AA.
	if math.Abs(mean-328) > 45 {
		t.Errorf("D. vulgaris mean length %v, paper says ~328", mean)
	}
}

func TestEukaryoteLongerThanProkaryote(t *testing.T) {
	u := testUniverse()
	prok := DVulgaris
	prok.NumProteins = 1000
	euk := SDivinum
	euk.NumProteins = 1000
	pm := Generate(prok, u, 9).MeanLength()
	em := Generate(euk, u, 9).MeanLength()
	if em <= pm {
		t.Errorf("eukaryote mean %v not longer than prokaryote mean %v", em, pm)
	}
}

func TestFilterMaxLen(t *testing.T) {
	u := testUniverse()
	sp := SDivinum
	sp.NumProteins = 2000
	p := Generate(sp, u, 3)
	kept := p.FilterMaxLen(2500)
	for _, pr := range kept {
		if pr.Seq.Len() >= 2500 {
			t.Errorf("FilterMaxLen kept %d-residue protein", pr.Seq.Len())
		}
	}
	if len(kept) == 0 {
		t.Error("filter removed everything")
	}
}

func TestHypotheticalsHaveHighDivergence(t *testing.T) {
	u := testUniverse()
	sp := DVulgaris
	sp.NumProteins = 500
	p := Generate(sp, u, 21)
	for _, h := range p.Hypotheticals() {
		if h.Divergence < 0.72 {
			t.Errorf("hypothetical %s divergence %v < 0.72", h.Seq.ID, h.Divergence)
		}
	}
}
