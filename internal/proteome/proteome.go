// Package proteome generates the synthetic proteomes used by the
// reproduction. The paper predicts structures for four DOE-relevant species
// (three prokaryotes and one plant); the actual sequences are not available
// here, so this package produces deterministic stand-ins with the same
// workload shape: per-species protein counts matching the paper, realistic
// heavy-tailed length distributions, multi-domain architecture drawn from a
// shared "domain universe" (so database search finds genuine homologs), and
// a labelled subset of "hypothetical" proteins for the Section 4.6 analysis.
package proteome

import (
	"fmt"
	"strings"

	"repro/internal/rng"
	"repro/internal/seq"
)

// Kingdom distinguishes prokaryotic from eukaryotic proteomes; eukaryotes
// get longer, multi-domain proteins, which is what makes S. divinum the
// harder workload in the paper.
type Kingdom int

const (
	Prokaryote Kingdom = iota
	Eukaryote
)

func (k Kingdom) String() string {
	if k == Eukaryote {
		return "eukaryote"
	}
	return "prokaryote"
}

// Species describes one proteome to generate.
type Species struct {
	Name        string
	Code        string // locus-tag prefix, e.g. "DVU"
	Kingdom     Kingdom
	NumProteins int
	// Length distribution: gamma with shape K and scale Theta, clamped to
	// [MinLen, MaxLen].
	LenShape, LenScale float64
	MinLen, MaxLen     int
	// HypotheticalFrac is the fraction of proteins annotated only as
	// "hypothetical protein".
	HypotheticalFrac float64
}

// The four species of the paper, with protein counts from Section 4
// (3446, 3849, 3205 and 25134 final top models). Length parameters are
// calibrated so D. vulgaris has a ~328 AA mean (Sec 4.1) and its 559
// hypothetical proteins span 29–1266 AA with a ~202 AA mean (Sec 4.2),
// while the plant proteome is longer-tailed.
var (
	PMercurii = Species{
		Name: "Pseudodesulfovibrio mercurii", Code: "PMER", Kingdom: Prokaryote,
		NumProteins: 3446, LenShape: 2.4, LenScale: 137, MinLen: 29, MaxLen: 2499,
		HypotheticalFrac: 0.17,
	}
	RRubrum = Species{
		Name: "Rhodospirillum rubrum", Code: "RRU", Kingdom: Prokaryote,
		NumProteins: 3849, LenShape: 2.4, LenScale: 137, MinLen: 29, MaxLen: 2499,
		HypotheticalFrac: 0.16,
	}
	DVulgaris = Species{
		Name: "Desulfovibrio vulgaris Hildenborough", Code: "DVU", Kingdom: Prokaryote,
		NumProteins: 3205, LenShape: 2.6, LenScale: 126, MinLen: 29, MaxLen: 2499,
		HypotheticalFrac: 0.1744, // 559 of 3205, per Section 4.6
	}
	SDivinum = Species{
		Name: "Sphagnum divinum", Code: "SPDIV", Kingdom: Eukaryote,
		NumProteins: 25134, LenShape: 1.9, LenScale: 235, MinLen: 40, MaxLen: 2499,
		HypotheticalFrac: 0.35,
	}
)

// PaperSpecies returns the four proteomes of the paper in presentation
// order. The total (35,634) matches the abstract.
func PaperSpecies() []Species {
	return []Species{PMercurii, RRubrum, DVulgaris, SDivinum}
}

// Universe is the shared pool of ancestral protein domains. Proteome
// proteins and sequence-database entries are both derived from it by
// mutation, which gives database searches real homology structure to find.
type Universe struct {
	Domains []string
	// FamilyAnnotation[i] is the functional annotation carried by family i
	// (what a database match would reveal).
	FamilyAnnotation []string
}

// NewUniverse builds a deterministic universe of numFamilies ancestral
// domains with lengths uniform in [minLen, maxLen].
func NewUniverse(seed uint64, numFamilies, minLen, maxLen int) *Universe {
	if numFamilies <= 0 || minLen <= 0 || maxLen < minLen {
		panic("proteome: invalid universe parameters")
	}
	r := rng.New(seed).SplitNamed("universe")
	u := &Universe{
		Domains:          make([]string, numFamilies),
		FamilyAnnotation: make([]string, numFamilies),
	}
	weights := backgroundWeights()
	for f := 0; f < numFamilies; f++ {
		l := minLen + r.Intn(maxLen-minLen+1)
		u.Domains[f] = randomSequence(r, l, weights)
		u.FamilyAnnotation[f] = fmt.Sprintf("family-%04d domain protein", f)
	}
	return u
}

// NumFamilies returns the number of ancestral domain families.
func (u *Universe) NumFamilies() int { return len(u.Domains) }

// Mutate produces a descendant of family f at the given divergence
// (expected fraction of positions substituted; small indels are applied at
// divergence/10 rate). divergence 0 returns the ancestor verbatim.
func (u *Universe) Mutate(f int, divergence float64, r *rng.Source) string {
	anc := u.Domains[f]
	if divergence <= 0 {
		return anc
	}
	weights := backgroundWeights()
	var b strings.Builder
	b.Grow(len(anc) + 8)
	indelRate := divergence / 10
	for i := 0; i < len(anc); i++ {
		if r.Float64() < indelRate {
			if r.Float64() < 0.5 {
				continue // deletion
			}
			b.WriteByte(seq.Alphabet[r.Choice(weights)]) // insertion
		}
		if r.Float64() < divergence {
			b.WriteByte(seq.Alphabet[r.Choice(weights)])
		} else {
			b.WriteByte(anc[i])
		}
	}
	if b.Len() == 0 {
		return anc[:1]
	}
	return b.String()
}

// Protein is a generated proteome entry with its ground truth: which
// families it contains and how far it has diverged from each ancestor.
// Ground truth is never shown to the pipeline; it exists so tests and the
// annotation analysis can verify behaviour.
type Protein struct {
	Seq        seq.Sequence
	Families   []int
	Divergence float64
	Kingdom    Kingdom
}

// Proteome is a generated species proteome.
type Proteome struct {
	Species  Species
	Proteins []Protein
}

// Generate builds the proteome for one species deterministically from the
// seed and the shared universe.
func Generate(sp Species, u *Universe, seed uint64) *Proteome {
	r := rng.New(seed).SplitNamed("proteome:" + sp.Code)
	p := &Proteome{Species: sp, Proteins: make([]Protein, 0, sp.NumProteins)}
	weights := backgroundWeights()

	numHypo := int(float64(sp.NumProteins)*sp.HypotheticalFrac + 0.5)
	for i := 0; i < sp.NumProteins; i++ {
		hypothetical := i < numHypo
		targetLen := sp.sampleLength(r, hypothetical)

		// Eukaryotes carry more domains per protein on average.
		maxDomains := 1 + targetLen/250
		if sp.Kingdom == Eukaryote {
			maxDomains = 1 + targetLen/180
		}
		if maxDomains > 4 {
			maxDomains = 4
		}
		nDom := 1 + r.Intn(maxDomains)

		// Hypothetical proteins are the remote-homology class: they diverge
		// far from their ancestors (sequence identity to any database
		// relative often below 20%, per Section 4.6). Annotated proteins
		// stay close.
		var div float64
		if hypothetical {
			div = 0.72 + 0.23*r.Float64() // 72–95% substitution
		} else {
			div = 0.05 + 0.30*r.Float64()
		}

		var body strings.Builder
		families := make([]int, 0, nDom)
		for d := 0; d < nDom; d++ {
			f := r.Intn(u.NumFamilies())
			families = append(families, f)
			body.WriteString(u.Mutate(f, div, r))
			if d != nDom-1 {
				body.WriteString(randomSequence(r, 3+r.Intn(10), weights)) // linker
			}
		}
		res := fitLength(body.String(), targetLen, r, weights)

		desc := u.FamilyAnnotation[families[0]]
		if hypothetical {
			desc = "hypothetical protein"
		}
		p.Proteins = append(p.Proteins, Protein{
			Seq: seq.Sequence{
				ID:          fmt.Sprintf("%s_%05d", sp.Code, i+1),
				Description: desc,
				Residues:    res,
			},
			Families:   families,
			Divergence: div,
			Kingdom:    sp.Kingdom,
		})
	}
	return p
}

// sampleLength draws a protein length from the species distribution. The
// hypothetical subset uses a shorter distribution calibrated to the paper's
// 559-sequence benchmark (29–1266 AA, mean ~202).
func (sp Species) sampleLength(r *rng.Source, hypothetical bool) int {
	var l float64
	if hypothetical {
		l = r.Gamma(1.9, 106)
		if l > 1266 {
			l = 1266
		}
	} else {
		l = r.Gamma(sp.LenShape, sp.LenScale)
	}
	n := int(l + 0.5)
	if n < sp.MinLen {
		n = sp.MinLen
	}
	if n > sp.MaxLen {
		n = sp.MaxLen
	}
	return n
}

// fitLength pads or trims a sequence to exactly n residues.
func fitLength(s string, n int, r *rng.Source, weights []float64) string {
	if len(s) > n {
		return s[:n]
	}
	if len(s) == n {
		return s
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(s)
	for b.Len() < n {
		b.WriteByte(seq.Alphabet[r.Choice(weights)])
	}
	return b.String()
}

func randomSequence(r *rng.Source, n int, weights []float64) string {
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(seq.Alphabet[r.Choice(weights)])
	}
	return b.String()
}

func backgroundWeights() []float64 {
	w := make([]float64, seq.NumAminoAcids)
	for i := range w {
		w[i] = seq.BackgroundFreq[i]
	}
	return w
}

// Sequences returns just the seq.Sequence records of the proteome.
func (p *Proteome) Sequences() []seq.Sequence {
	out := make([]seq.Sequence, len(p.Proteins))
	for i := range p.Proteins {
		out[i] = p.Proteins[i].Seq
	}
	return out
}

// Hypotheticals returns the subset annotated as hypothetical proteins.
func (p *Proteome) Hypotheticals() []Protein {
	var out []Protein
	for _, pr := range p.Proteins {
		if pr.Seq.IsHypothetical() {
			out = append(out, pr)
		}
	}
	return out
}

// MeanLength returns the mean protein length in residues.
func (p *Proteome) MeanLength() float64 {
	if len(p.Proteins) == 0 {
		return 0
	}
	total := 0
	for _, pr := range p.Proteins {
		total += pr.Seq.Len()
	}
	return float64(total) / float64(len(p.Proteins))
}

// FilterMaxLen returns the proteins not exceeding maxLen residues; the paper
// excludes sequences of 2500 AA and above from the main runs.
func (p *Proteome) FilterMaxLen(maxLen int) []Protein {
	var out []Protein
	for _, pr := range p.Proteins {
		if pr.Seq.Len() < maxLen {
			out = append(out, pr)
		}
	}
	return out
}
