// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// Reproducibility is a hard requirement for this project: every table and
// figure reproduction must regenerate identical numbers on every run. The
// global generators in math/rand are therefore avoided entirely; instead
// each component receives an explicit *rng.Source seeded from a campaign
// seed, and parallel components derive independent streams with Split.
//
// The core generator is splitmix64 (Steele, Lea, Flood 2014), which has a
// 64-bit state, passes BigCrush, and is trivially splittable by deriving a
// new state from the current stream. It is not cryptographically secure,
// which is irrelevant here.
package rng

import "math"

// Source is a deterministic splitmix64 random number source.
// The zero value is a valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream from s. The child's sequence
// does not overlap with s's subsequent outputs in practice, because the
// child is seeded from a full 64-bit draw pushed through an extra mix.
func (s *Source) Split() *Source {
	v := s.Uint64()
	// Extra avalanche so Split(New(k)) differs from New(k).Uint64() streams.
	v ^= 0x9e3779b97f4a7c15
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 31
	return &Source{state: v}
}

// SplitNamed derives a child stream whose identity also depends on a string
// label, so independently named subsystems get decorrelated streams even if
// they split in the same order.
func (s *Source) SplitNamed(name string) *Source {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	v := s.Uint64() ^ h
	v *= 0x94d049bb133111eb
	v ^= v >> 29
	return &Source{state: v}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// modulo bias at n << 2^64 is negligible and simplicity wins here.
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate using the Marsaglia polar
// method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a log-normal deviate with the given location and scale
// parameters of the underlying normal.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Gamma returns a gamma deviate with the given shape k > 0 and scale theta,
// using the Marsaglia-Tsang method (with Johnk boost for k < 1).
func (s *Source) Gamma(k, theta float64) float64 {
	if k <= 0 || theta <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return s.Gamma(k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the provided swap
// function (Fisher-Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a pseudo-random index in [0, len(weights)) with probability
// proportional to weights[i]. All weights must be non-negative and at least
// one must be positive.
func (s *Source) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: all weights zero")
	}
	r := s.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Poisson returns a Poisson deviate with mean lambda (Knuth's algorithm for
// small lambda, normal approximation above 30).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*s.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
