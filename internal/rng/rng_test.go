package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must differ from the parent's continuing stream.
	matches := 0
	for i := 0; i < 256; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split child collided with parent %d times", matches)
	}
}

func TestSplitNamedDecorrelates(t *testing.T) {
	a := New(7).SplitNamed("alpha")
	b := New(7).SplitNamed("beta")
	if a.Uint64() == b.Uint64() {
		t.Fatal("differently named splits produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(4)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	s := New(8)
	const n = 100000
	for _, tc := range []struct{ k, theta float64 }{{2, 3}, {0.5, 1}, {9, 0.5}} {
		var sum float64
		for i := 0; i < n; i++ {
			sum += s.Gamma(tc.k, tc.theta)
		}
		mean := sum / n
		want := tc.k * tc.theta
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ~%v", tc.k, tc.theta, mean, want)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(9)
	for _, lambda := range []float64{0.5, 4, 50} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda)/lambda > 0.06 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	s := New(11)
	counts := make([]int, 3)
	const n = 100000
	w := []float64{1, 2, 7}
	for i := 0; i < n; i++ {
		counts[s.Choice(w)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		want := w[i] / 10
		if math.Abs(frac-want) > 0.01 {
			t.Errorf("choice %d frequency %v, want ~%v", i, frac, want)
		}
	}
}

func TestChoicePanicsOnZeroWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

// Property: Intn output is always within range for random n.
func TestQuickIntnBounds(t *testing.T) {
	s := New(12)
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := New(seed).Intn(n)
		_ = s
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds yield identical permutations.
func TestQuickPermDeterministic(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p1 := New(seed).Perm(n)
		p2 := New(seed).Perm(n)
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.NormFloat64()
	}
}
