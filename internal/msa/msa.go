package msa

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/seq"
	"repro/internal/seqdb"
)

// MSA is a query-anchored multiple sequence alignment: every row is the
// subject mapped into query coordinates (length = query length, '-' where
// the subject does not align). Row 0 is the query itself.
type MSA struct {
	Query seq.Sequence
	Rows  []Row
}

// Row is one aligned homolog.
type Row struct {
	ID       string
	Aligned  string  // query-coordinate aligned residues, '-' for gaps
	Identity float64 // identity to the query over aligned columns
	Coverage float64 // fraction of query columns covered
	Library  string  // which library the hit came from
}

// Depth returns the number of rows including the query.
func (m *MSA) Depth() int { return len(m.Rows) }

// Neff returns the effective number of sequences: rows are weighted by one
// over the count of rows within 80% identity of them (the standard
// position-independent sequence-weighting scheme). Deeper, more diverse
// alignments have higher Neff, which the folding surrogate uses as its main
// quality signal — exactly the "MSAs dictate the final quality of all
// predicted structures" dependence the paper describes.
func (m *MSA) Neff() float64 {
	n := len(m.Rows)
	if n == 0 {
		return 0
	}
	counts := make([]int, n)
	for i := range counts {
		counts[i] = 1 // self
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rowIdentity(m.Rows[i].Aligned, m.Rows[j].Aligned) >= 0.8 {
				counts[i]++
				counts[j]++
			}
		}
	}
	var neff float64
	for _, c := range counts {
		neff += 1 / float64(c)
	}
	return neff
}

func rowIdentity(a, b string) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	same, aligned := 0, 0
	for i := 0; i < n; i++ {
		if a[i] == '-' || b[i] == '-' {
			continue
		}
		aligned++
		if a[i] == b[i] {
			same++
		}
	}
	if aligned == 0 {
		return 0
	}
	return float64(same) / float64(aligned)
}

// ColumnProfile returns per-column amino-acid frequencies over the MSA
// (gaps excluded, Laplace-smoothed with the background distribution).
func (m *MSA) ColumnProfile() [][]float64 {
	l := m.Query.Len()
	prof := make([][]float64, l)
	for c := 0; c < l; c++ {
		counts := make([]float64, seq.NumAminoAcids)
		var total float64
		for a := 0; a < seq.NumAminoAcids; a++ {
			counts[a] = seq.BackgroundFreq[a]
			total += counts[a]
		}
		for _, row := range m.Rows {
			if c < len(row.Aligned) {
				if a := seq.Index(row.Aligned[c]); a >= 0 {
					counts[a]++
					total++
				}
			}
		}
		p := make([]float64, seq.NumAminoAcids)
		for a := range counts {
			p[a] = counts[a] / total
		}
		prof[c] = p
	}
	return prof
}

// ColumnCoverage returns, per query column, the fraction of rows with a
// residue there.
func (m *MSA) ColumnCoverage() []float64 {
	l := m.Query.Len()
	cov := make([]float64, l)
	if len(m.Rows) == 0 {
		return cov
	}
	for c := 0; c < l; c++ {
		n := 0
		for _, row := range m.Rows {
			if c < len(row.Aligned) && row.Aligned[c] != '-' {
				n++
			}
		}
		cov[c] = float64(n) / float64(len(m.Rows))
	}
	return cov
}

// TemplateHit is a structural-template hit from the PDB seqres search; the
// folding stage feeds these only to the two template-aware models.
type TemplateHit struct {
	ID       string
	Identity float64
	Coverage float64
	Family   int
}

// SearchConfig controls the search pipeline.
type SearchConfig struct {
	KmerK          int     // prefilter word length
	MinSharedKmers int     // prefilter threshold
	MaxHitsPerLib  int     // cap on accepted alignments per library
	MinIdentity    float64 // acceptance threshold on alignment identity
	MinCoverage    float64 // acceptance threshold on query coverage
	Gaps           GapParams
}

// DefaultSearchConfig mirrors a sensible HHblits-like operating point.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		KmerK:          4,
		MinSharedKmers: 3,
		MaxHitsPerLib:  128,
		MinIdentity:    0.18,
		MinCoverage:    0.35,
		Gaps:           DefaultGaps,
	}
}

// Searcher runs MSA construction against a set of libraries. Indexes are
// built once and shared by all queries (they are read-only after build, so
// concurrent Search calls are safe).
type Searcher struct {
	cfg     SearchConfig
	libs    map[string]*seqdb.Library
	indexes map[string]*seqdb.KmerIndex
}

// NewSearcher indexes the libraries.
func NewSearcher(libs map[string]*seqdb.Library, cfg SearchConfig) *Searcher {
	s := &Searcher{cfg: cfg, libs: libs, indexes: make(map[string]*seqdb.KmerIndex, len(libs))}
	for name, lib := range libs {
		s.indexes[name] = seqdb.NewKmerIndex(lib, cfg.KmerK)
	}
	return s
}

// Result is the output of feature generation for one query: the MSA and
// the structural template hits.
type Result struct {
	MSA       *MSA
	Templates []TemplateHit
	// WorkUnits approximates the CPU work done (cells of dynamic
	// programming), which the cluster simulator converts to time.
	WorkUnits int64
}

// Search builds the MSA and template set for one query across all
// libraries.
func (s *Searcher) Search(query seq.Sequence) (*Result, error) {
	if err := query.Validate(); err != nil {
		return nil, err
	}
	res := &Result{MSA: &MSA{Query: query}}
	res.MSA.Rows = append(res.MSA.Rows, Row{
		ID: query.ID, Aligned: query.Residues, Identity: 1, Coverage: 1, Library: "query",
	})

	names := make([]string, 0, len(s.libs))
	for name := range s.libs {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic library order

	for _, name := range names {
		lib := s.libs[name]
		hits := s.indexes[name].Query(query.Residues, s.cfg.MinSharedKmers)
		accepted := 0
		for _, h := range hits {
			if accepted >= s.cfg.MaxHitsPerLib {
				break
			}
			subject := lib.Entries[h.Entry].Seq
			aln, err := Local(query.Residues, subject.Residues, s.cfg.Gaps)
			if err != nil {
				return nil, fmt.Errorf("msa: aligning %s vs %s: %w", query.ID, subject.ID, err)
			}
			res.WorkUnits += int64(query.Len()) * int64(subject.Len())
			if aln.Score == 0 {
				continue
			}
			id := aln.Identity()
			cov := aln.Coverage(query.Len())
			if id < s.cfg.MinIdentity || cov < s.cfg.MinCoverage {
				continue
			}
			accepted++
			if name == "pdb_seqres" {
				res.Templates = append(res.Templates, TemplateHit{
					ID: subject.ID, Identity: id, Coverage: cov,
					Family: lib.Entries[h.Entry].Family,
				})
				continue
			}
			res.MSA.Rows = append(res.MSA.Rows, Row{
				ID:       subject.ID,
				Aligned:  projectToQuery(aln, query.Len()),
				Identity: id,
				Coverage: cov,
				Library:  name,
			})
		}
	}
	return res, nil
}

// projectToQuery maps the subject side of a local alignment into query
// coordinates, yielding a row of exactly queryLen characters.
func projectToQuery(aln *Alignment, queryLen int) string {
	row := make([]byte, queryLen)
	for i := range row {
		row[i] = '-'
	}
	q := aln.QueryStart
	for k := 0; k < len(aln.QueryAln); k++ {
		qc, sc := aln.QueryAln[k], aln.SubjectAln[k]
		switch {
		case qc != '-' && sc != '-':
			if q < queryLen {
				row[q] = sc
			}
			q++
		case qc != '-': // deletion in subject
			q++
		default: // insertion relative to query: not representable in query coords
		}
	}
	return string(row)
}

// Features is the feature bundle handed to the folding stage, the analogue
// of AlphaFold's input-feature pickle.
type Features struct {
	Query       seq.Sequence
	Profile     [][]float64
	Coverage    []float64
	Neff        float64
	Depth       int
	Templates   []TemplateHit
	MeanRowID   float64 // mean identity of MSA rows to the query
	SearchUnits int64
}

// ExtractFeatures converts a search result into folding features.
func ExtractFeatures(res *Result) *Features {
	m := res.MSA
	f := &Features{
		Query:       m.Query,
		Profile:     m.ColumnProfile(),
		Coverage:    m.ColumnCoverage(),
		Neff:        m.Neff(),
		Depth:       m.Depth(),
		Templates:   res.Templates,
		SearchUnits: res.WorkUnits,
	}
	if len(m.Rows) > 1 {
		var sum float64
		for _, r := range m.Rows[1:] {
			sum += r.Identity
		}
		f.MeanRowID = sum / float64(len(m.Rows)-1)
	}
	return f
}

// Entropy returns the mean per-column Shannon entropy of the profile in
// nats; low entropy means a well-constrained column.
func (f *Features) Entropy() float64 {
	if len(f.Profile) == 0 {
		return 0
	}
	var total float64
	for _, col := range f.Profile {
		var h float64
		for _, p := range col {
			if p > 0 {
				h -= p * math.Log(p)
			}
		}
		total += h
	}
	return total / float64(len(f.Profile))
}
