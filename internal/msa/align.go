package msa

import "fmt"

// Alignment is a pairwise alignment of a query and a subject, expressed as
// gapped strings of equal length plus summary statistics.
type Alignment struct {
	QueryAln   string // query with '-' gaps
	SubjectAln string // subject with '-' gaps
	Score      int
	// QueryStart/QueryEnd delimit the aligned query region (0-based,
	// half-open); likewise for the subject. For global alignments these
	// span the full sequences.
	QueryStart, QueryEnd     int
	SubjectStart, SubjectEnd int
}

// Identity returns the fraction of aligned (non-gap on both sides) columns
// with identical residues, measured over aligned columns.
func (a *Alignment) Identity() float64 {
	matched, aligned := 0, 0
	for i := 0; i < len(a.QueryAln); i++ {
		q, s := a.QueryAln[i], a.SubjectAln[i]
		if q == '-' || s == '-' {
			continue
		}
		aligned++
		if q == s {
			matched++
		}
	}
	if aligned == 0 {
		return 0
	}
	return float64(matched) / float64(aligned)
}

// MatchCount returns the number of identical aligned residue pairs.
func (a *Alignment) MatchCount() int {
	n := 0
	for i := 0; i < len(a.QueryAln); i++ {
		if a.QueryAln[i] != '-' && a.QueryAln[i] == a.SubjectAln[i] {
			n++
		}
	}
	return n
}

// IdentityOverShorter returns matches divided by the shorter sequence
// length — the convention used when reporting "sequence identity match" of
// remote homologs (robust against gappy alignments inflating per-column
// identity).
func (a *Alignment) IdentityOverShorter(queryLen, subjectLen int) float64 {
	den := queryLen
	if subjectLen < den {
		den = subjectLen
	}
	if den == 0 {
		return 0
	}
	return float64(a.MatchCount()) / float64(den)
}

// Coverage returns the fraction of the full query covered by the aligned
// region.
func (a *Alignment) Coverage(queryLen int) float64 {
	if queryLen == 0 {
		return 0
	}
	return float64(a.QueryEnd-a.QueryStart) / float64(queryLen)
}

// GapParams are affine gap penalties (positive numbers; a gap of length k
// costs Open + k*Extend).
type GapParams struct {
	Open   int
	Extend int
}

// DefaultGaps are BLOSUM62-appropriate penalties.
var DefaultGaps = GapParams{Open: 11, Extend: 1}

const negInf = int(-1) << 40

// Global computes a Needleman-Wunsch global alignment with affine gaps
// (Gotoh's algorithm).
func Global(query, subject string, gp GapParams) (*Alignment, error) {
	n, m := len(query), len(subject)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("msa: global alignment of empty sequence")
	}
	// M = match/mismatch ending, X = gap in subject (query consumed),
	// Y = gap in query (subject consumed).
	M := newMatrix(n+1, m+1)
	X := newMatrix(n+1, m+1)
	Y := newMatrix(n+1, m+1)
	M[0][0] = 0
	for i := 1; i <= n; i++ {
		M[i][0] = negInf
		X[i][0] = -(gp.Open + i*gp.Extend)
		Y[i][0] = negInf
	}
	for j := 1; j <= m; j++ {
		M[0][j] = negInf
		Y[0][j] = -(gp.Open + j*gp.Extend)
		X[0][j] = negInf
	}
	X[0][0], Y[0][0] = negInf, negInf

	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			s := Score(query[i-1], subject[j-1])
			M[i][j] = max3(M[i-1][j-1], X[i-1][j-1], Y[i-1][j-1]) + s
			X[i][j] = maxInt(M[i-1][j]-gp.Open-gp.Extend, X[i-1][j]-gp.Extend)
			Y[i][j] = maxInt(M[i][j-1]-gp.Open-gp.Extend, Y[i][j-1]-gp.Extend)
		}
	}

	// Traceback from the best of the three end states.
	state := 0
	best := M[n][m]
	if X[n][m] > best {
		best, state = X[n][m], 1
	}
	if Y[n][m] > best {
		best, state = Y[n][m], 2
	}
	qa, sa := make([]byte, 0, n+m), make([]byte, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case 0: // M
			qa = append(qa, query[i-1])
			sa = append(sa, subject[j-1])
			s := Score(query[i-1], subject[j-1])
			switch M[i][j] - s {
			case M[i-1][j-1]:
				state = 0
			case X[i-1][j-1]:
				state = 1
			default:
				state = 2
			}
			i--
			j--
		case 1: // X: gap in subject
			qa = append(qa, query[i-1])
			sa = append(sa, '-')
			if i > 1 || j > 0 {
				if X[i][j] == M[i-1][j]-gp.Open-gp.Extend {
					state = 0
				}
			}
			i--
		default: // Y: gap in query
			qa = append(qa, '-')
			sa = append(sa, subject[j-1])
			if j > 1 || i > 0 {
				if Y[i][j] == M[i][j-1]-gp.Open-gp.Extend {
					state = 0
				}
			}
			j--
		}
		// Borders force gap states.
		if i == 0 && j > 0 {
			state = 2
		} else if j == 0 && i > 0 {
			state = 1
		}
	}
	reverse(qa)
	reverse(sa)
	return &Alignment{
		QueryAln: string(qa), SubjectAln: string(sa), Score: best,
		QueryStart: 0, QueryEnd: n, SubjectStart: 0, SubjectEnd: m,
	}, nil
}

// Local computes a Smith-Waterman local alignment with affine gaps.
func Local(query, subject string, gp GapParams) (*Alignment, error) {
	n, m := len(query), len(subject)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("msa: local alignment of empty sequence")
	}
	M := newMatrix(n+1, m+1)
	X := newMatrix(n+1, m+1)
	Y := newMatrix(n+1, m+1)
	for i := 0; i <= n; i++ {
		X[i][0], Y[i][0] = negInf, negInf
	}
	for j := 0; j <= m; j++ {
		X[0][j], Y[0][j] = negInf, negInf
	}

	best, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			s := Score(query[i-1], subject[j-1])
			M[i][j] = max3(M[i-1][j-1], X[i-1][j-1], Y[i-1][j-1]) + s
			if M[i][j] < 0 {
				M[i][j] = 0
			}
			X[i][j] = maxInt(M[i-1][j]-gp.Open-gp.Extend, X[i-1][j]-gp.Extend)
			Y[i][j] = maxInt(M[i][j-1]-gp.Open-gp.Extend, Y[i][j-1]-gp.Extend)
			if M[i][j] > best {
				best, bi, bj = M[i][j], i, j
			}
		}
	}
	if best == 0 {
		return &Alignment{}, nil // no positive-scoring local alignment
	}

	qa, sa := make([]byte, 0, n), make([]byte, 0, n)
	i, j := bi, bj
	state := 0
	for i > 0 && j > 0 {
		if state == 0 && M[i][j] == 0 {
			break
		}
		switch state {
		case 0:
			qa = append(qa, query[i-1])
			sa = append(sa, subject[j-1])
			s := Score(query[i-1], subject[j-1])
			prev := M[i][j] - s
			switch prev {
			case M[i-1][j-1]:
				state = 0
			case X[i-1][j-1]:
				state = 1
			case Y[i-1][j-1]:
				state = 2
			default:
				state = 0 // reached a 0-clamped cell
			}
			i--
			j--
		case 1:
			qa = append(qa, query[i-1])
			sa = append(sa, '-')
			if X[i][j] == M[i-1][j]-gp.Open-gp.Extend {
				state = 0
			}
			i--
		default:
			qa = append(qa, '-')
			sa = append(sa, subject[j-1])
			if Y[i][j] == M[i][j-1]-gp.Open-gp.Extend {
				state = 0
			}
			j--
		}
	}
	reverse(qa)
	reverse(sa)
	return &Alignment{
		QueryAln: string(qa), SubjectAln: string(sa), Score: best,
		QueryStart: i, QueryEnd: bi, SubjectStart: j, SubjectEnd: bj,
	}, nil
}

func newMatrix(rows, cols int) [][]int {
	backing := make([]int, rows*cols)
	m := make([][]int, rows)
	for i := range m {
		m[i] = backing[i*cols : (i+1)*cols]
	}
	return m
}

func max3(a, b, c int) int { return maxInt(a, maxInt(b, c)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}
