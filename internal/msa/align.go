package msa

import (
	"fmt"
	"sync"
)

// Alignment is a pairwise alignment of a query and a subject, expressed as
// gapped strings of equal length plus summary statistics.
type Alignment struct {
	QueryAln   string // query with '-' gaps
	SubjectAln string // subject with '-' gaps
	Score      int
	// QueryStart/QueryEnd delimit the aligned query region (0-based,
	// half-open); likewise for the subject. For global alignments these
	// span the full sequences.
	QueryStart, QueryEnd     int
	SubjectStart, SubjectEnd int
}

// Identity returns the fraction of aligned (non-gap on both sides) columns
// with identical residues, measured over aligned columns.
func (a *Alignment) Identity() float64 {
	matched, aligned := 0, 0
	for i := 0; i < len(a.QueryAln); i++ {
		q, s := a.QueryAln[i], a.SubjectAln[i]
		if q == '-' || s == '-' {
			continue
		}
		aligned++
		if q == s {
			matched++
		}
	}
	if aligned == 0 {
		return 0
	}
	return float64(matched) / float64(aligned)
}

// MatchCount returns the number of identical aligned residue pairs.
func (a *Alignment) MatchCount() int {
	n := 0
	for i := 0; i < len(a.QueryAln); i++ {
		if a.QueryAln[i] != '-' && a.QueryAln[i] == a.SubjectAln[i] {
			n++
		}
	}
	return n
}

// IdentityOverShorter returns matches divided by the shorter sequence
// length — the convention used when reporting "sequence identity match" of
// remote homologs (robust against gappy alignments inflating per-column
// identity).
func (a *Alignment) IdentityOverShorter(queryLen, subjectLen int) float64 {
	den := queryLen
	if subjectLen < den {
		den = subjectLen
	}
	if den == 0 {
		return 0
	}
	return float64(a.MatchCount()) / float64(den)
}

// Coverage returns the fraction of the full query covered by the aligned
// region.
func (a *Alignment) Coverage(queryLen int) float64 {
	if queryLen == 0 {
		return 0
	}
	return float64(a.QueryEnd-a.QueryStart) / float64(queryLen)
}

// GapParams are affine gap penalties (positive numbers; a gap of length k
// costs Open + k*Extend).
type GapParams struct {
	Open   int
	Extend int
}

// DefaultGaps are BLOSUM62-appropriate penalties.
var DefaultGaps = GapParams{Open: 11, Extend: 1}

const negInf = int(-1) << 40

// dpScratch is the reusable working set of one alignment call: the three
// Gotoh matrices as one flat backing array plus the traceback byte buffer.
// Gotoh needs the full matrices for traceback, but not 3(n+1) separate row
// allocations per call — the alignment kernels run millions of times per
// campaign (every library-search candidate), so the backing arrays are
// pooled and reused across calls and goroutines.
type dpScratch struct {
	dp []int  // M, X, Y concatenated: 3 * rows * cols
	tb []byte // qa then sa, each up to rows+cols
}

var dpPool = sync.Pool{New: func() any { return new(dpScratch) }}

// matrices returns the three rows x cols matrices as flat slices (index
// with i*cols + j), growing the pooled backing array as needed.
func (s *dpScratch) matrices(rows, cols int) (M, X, Y []int) {
	rc := rows * cols
	if cap(s.dp) < 3*rc {
		s.dp = make([]int, 3*rc)
	}
	buf := s.dp[:3*rc]
	return buf[:rc], buf[rc : 2*rc], buf[2*rc : 3*rc]
}

// traceback returns two zero-length byte buffers with capacity n each.
func (s *dpScratch) traceback(n int) (qa, sa []byte) {
	if cap(s.tb) < 2*n {
		s.tb = make([]byte, 2*n)
	}
	buf := s.tb[:2*n]
	return buf[:0:n], buf[n : n : 2*n]
}

// Global computes a Needleman-Wunsch global alignment with affine gaps
// (Gotoh's algorithm).
func Global(query, subject string, gp GapParams) (*Alignment, error) {
	n, m := len(query), len(subject)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("msa: global alignment of empty sequence")
	}
	scratch := dpPool.Get().(*dpScratch)
	defer dpPool.Put(scratch)
	cols := m + 1
	// M = match/mismatch ending, X = gap in subject (query consumed),
	// Y = gap in query (subject consumed); cell (i, j) lives at i*cols+j.
	M, X, Y := scratch.matrices(n+1, cols)
	M[0] = 0
	for i := 1; i <= n; i++ {
		M[i*cols] = negInf
		X[i*cols] = -(gp.Open + i*gp.Extend)
		Y[i*cols] = negInf
	}
	for j := 1; j <= m; j++ {
		M[j] = negInf
		Y[j] = -(gp.Open + j*gp.Extend)
		X[j] = negInf
	}
	X[0], Y[0] = negInf, negInf

	for i := 1; i <= n; i++ {
		row := i * cols
		prev := row - cols
		qc := query[i-1]
		for j := 1; j <= m; j++ {
			s := Score(qc, subject[j-1])
			M[row+j] = max3(M[prev+j-1], X[prev+j-1], Y[prev+j-1]) + s
			X[row+j] = maxInt(M[prev+j]-gp.Open-gp.Extend, X[prev+j]-gp.Extend)
			Y[row+j] = maxInt(M[row+j-1]-gp.Open-gp.Extend, Y[row+j-1]-gp.Extend)
		}
	}

	// Traceback from the best of the three end states.
	state := 0
	best := M[n*cols+m]
	if X[n*cols+m] > best {
		best, state = X[n*cols+m], 1
	}
	if Y[n*cols+m] > best {
		best, state = Y[n*cols+m], 2
	}
	qa, sa := scratch.traceback(n + m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case 0: // M
			qa = append(qa, query[i-1])
			sa = append(sa, subject[j-1])
			s := Score(query[i-1], subject[j-1])
			switch M[i*cols+j] - s {
			case M[(i-1)*cols+j-1]:
				state = 0
			case X[(i-1)*cols+j-1]:
				state = 1
			default:
				state = 2
			}
			i--
			j--
		case 1: // X: gap in subject
			qa = append(qa, query[i-1])
			sa = append(sa, '-')
			if i > 1 || j > 0 {
				if X[i*cols+j] == M[(i-1)*cols+j]-gp.Open-gp.Extend {
					state = 0
				}
			}
			i--
		default: // Y: gap in query
			qa = append(qa, '-')
			sa = append(sa, subject[j-1])
			if j > 1 || i > 0 {
				if Y[i*cols+j] == M[i*cols+j-1]-gp.Open-gp.Extend {
					state = 0
				}
			}
			j--
		}
		// Borders force gap states.
		if i == 0 && j > 0 {
			state = 2
		} else if j == 0 && i > 0 {
			state = 1
		}
	}
	reverse(qa)
	reverse(sa)
	return &Alignment{
		QueryAln: string(qa), SubjectAln: string(sa), Score: best,
		QueryStart: 0, QueryEnd: n, SubjectStart: 0, SubjectEnd: m,
	}, nil
}

// Local computes a Smith-Waterman local alignment with affine gaps.
func Local(query, subject string, gp GapParams) (*Alignment, error) {
	n, m := len(query), len(subject)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("msa: local alignment of empty sequence")
	}
	scratch := dpPool.Get().(*dpScratch)
	defer dpPool.Put(scratch)
	cols := m + 1
	M, X, Y := scratch.matrices(n+1, cols)
	for i := 0; i <= n; i++ {
		M[i*cols] = 0
		X[i*cols], Y[i*cols] = negInf, negInf
	}
	for j := 0; j <= m; j++ {
		M[j] = 0
		X[j], Y[j] = negInf, negInf
	}

	best, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		row := i * cols
		prev := row - cols
		qc := query[i-1]
		for j := 1; j <= m; j++ {
			s := Score(qc, subject[j-1])
			v := max3(M[prev+j-1], X[prev+j-1], Y[prev+j-1]) + s
			if v < 0 {
				v = 0
			}
			M[row+j] = v
			X[row+j] = maxInt(M[prev+j]-gp.Open-gp.Extend, X[prev+j]-gp.Extend)
			Y[row+j] = maxInt(M[row+j-1]-gp.Open-gp.Extend, Y[row+j-1]-gp.Extend)
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best == 0 {
		return &Alignment{}, nil // no positive-scoring local alignment
	}

	qa, sa := scratch.traceback(n + m)
	i, j := bi, bj
	state := 0
	for i > 0 && j > 0 {
		if state == 0 && M[i*cols+j] == 0 {
			break
		}
		switch state {
		case 0:
			qa = append(qa, query[i-1])
			sa = append(sa, subject[j-1])
			s := Score(query[i-1], subject[j-1])
			prev := M[i*cols+j] - s
			switch prev {
			case M[(i-1)*cols+j-1]:
				state = 0
			case X[(i-1)*cols+j-1]:
				state = 1
			case Y[(i-1)*cols+j-1]:
				state = 2
			default:
				state = 0 // reached a 0-clamped cell
			}
			i--
			j--
		case 1:
			qa = append(qa, query[i-1])
			sa = append(sa, '-')
			if X[i*cols+j] == M[(i-1)*cols+j]-gp.Open-gp.Extend {
				state = 0
			}
			i--
		default:
			qa = append(qa, '-')
			sa = append(sa, subject[j-1])
			if Y[i*cols+j] == M[i*cols+j-1]-gp.Open-gp.Extend {
				state = 0
			}
			j--
		}
	}
	reverse(qa)
	reverse(sa)
	return &Alignment{
		QueryAln: string(qa), SubjectAln: string(sa), Score: best,
		QueryStart: i, QueryEnd: bi, SubjectStart: j, SubjectEnd: bj,
	}, nil
}

func max3(a, b, c int) int { return maxInt(a, maxInt(b, c)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}
