package msa

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/seq"
)

// benchSeq returns a deterministic pseudo-random protein sequence.
func benchSeq(seed uint64, n int) string {
	r := rng.New(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = seq.Alphabet[r.Intn(seq.NumAminoAcids)]
	}
	return string(b)
}

// BenchmarkGlobalAlign measures the Gotoh global-alignment kernel on a
// genome-typical pair (~300 x ~280 residues). Run with -benchmem: the
// allocation count per call is the quantity the pooled-matrix optimization
// targets.
func BenchmarkGlobalAlign(b *testing.B) {
	q := benchSeq(1, 300)
	s := benchSeq(2, 280)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Global(q, s, DefaultGaps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalAlign measures the Smith-Waterman kernel the library search
// path (Searcher.Search) calls for every candidate hit.
func BenchmarkLocalAlign(b *testing.B) {
	q := benchSeq(3, 300)
	s := benchSeq(4, 280)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Local(q, s, DefaultGaps); err != nil {
			b.Fatal(err)
		}
	}
}
