package msa

import (
	"math"
	"strings"
	"testing"

	"repro/internal/proteome"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

func TestScoreSymmetry(t *testing.T) {
	for i := 0; i < seq.NumAminoAcids; i++ {
		for j := 0; j < seq.NumAminoAcids; j++ {
			a, b := seq.Alphabet[i], seq.Alphabet[j]
			if Score(a, b) != Score(b, a) {
				t.Fatalf("BLOSUM62 not symmetric at %c,%c", a, b)
			}
		}
	}
	if Score('W', 'W') != 11 || Score('A', 'A') != 4 {
		t.Error("known diagonal values wrong")
	}
	if Score('X', 'A') != -1 {
		t.Error("non-canonical score should be -1")
	}
}

func TestGlobalIdenticalSequences(t *testing.T) {
	s := "ACDEFGHIKLMNPQRSTVWY"
	aln, err := Global(s, s, DefaultGaps)
	if err != nil {
		t.Fatal(err)
	}
	if aln.QueryAln != s || aln.SubjectAln != s {
		t.Errorf("alignment introduced gaps: %q / %q", aln.QueryAln, aln.SubjectAln)
	}
	if aln.Identity() != 1 {
		t.Errorf("identity = %v", aln.Identity())
	}
	want := 0
	for i := 0; i < len(s); i++ {
		want += Score(s[i], s[i])
	}
	if aln.Score != want {
		t.Errorf("score = %d, want %d", aln.Score, want)
	}
}

func TestGlobalWithDeletion(t *testing.T) {
	q := "ACDEFGHIKL"
	s := "ACDEIKL" // FGH deleted
	aln, err := Global(q, s, GapParams{Open: 5, Extend: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(aln.QueryAln) != len(aln.SubjectAln) {
		t.Fatal("gapped lengths differ")
	}
	// Query must appear ungapped-in-order when gaps removed.
	if strings.ReplaceAll(aln.QueryAln, "-", "") != q {
		t.Errorf("query corrupted: %q", aln.QueryAln)
	}
	if strings.ReplaceAll(aln.SubjectAln, "-", "") != s {
		t.Errorf("subject corrupted: %q", aln.SubjectAln)
	}
	if gaps := strings.Count(aln.SubjectAln, "-"); gaps != 3 {
		t.Errorf("expected 3 subject gaps, got %d (%q / %q)", gaps, aln.QueryAln, aln.SubjectAln)
	}
}

func TestGlobalEmptyRejected(t *testing.T) {
	if _, err := Global("", "A", DefaultGaps); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := Global("A", "", DefaultGaps); err == nil {
		t.Error("empty subject accepted")
	}
}

func TestLocalFindsEmbeddedMotif(t *testing.T) {
	motif := "WWCHHWKYWC" // rare residues, strongly scoring
	q := "AAAAAAAA" + motif + "GGGGGGGG"
	s := "TTTT" + motif + "SSSSSS"
	aln, err := Local(q, s, DefaultGaps)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ReplaceAll(aln.QueryAln, "-", ""), motif) {
		t.Errorf("local alignment missed motif: %q", aln.QueryAln)
	}
	if aln.Identity() < 0.9 {
		t.Errorf("motif identity = %v", aln.Identity())
	}
	if aln.QueryStart != 8 || aln.QueryEnd != 8+len(motif) {
		t.Errorf("query span [%d,%d), want [8,%d)", aln.QueryStart, aln.QueryEnd, 8+len(motif))
	}
}

func TestLocalUnrelatedSequencesLowScore(t *testing.T) {
	q := strings.Repeat("AG", 30)
	s := strings.Repeat("WC", 30)
	aln, err := Local(q, s, DefaultGaps)
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score > 8 {
		t.Errorf("unrelated local score = %d", aln.Score)
	}
}

func TestAlignmentCoverage(t *testing.T) {
	a := &Alignment{QueryStart: 10, QueryEnd: 60}
	if got := a.Coverage(100); got != 0.5 {
		t.Errorf("coverage = %v", got)
	}
	if a.Coverage(0) != 0 {
		t.Error("zero-length query coverage must be 0")
	}
}

func TestBuildHMMValidation(t *testing.T) {
	if _, err := BuildHMM(nil); err == nil {
		t.Error("empty MSA accepted")
	}
	if _, err := BuildHMM([]string{"AC", "ACD"}); err == nil {
		t.Error("ragged MSA accepted")
	}
	if _, err := BuildHMM([]string{"--", "AC"}); err == nil {
		t.Error("all-gap master accepted")
	}
}

func TestHMMEmissionsNormalized(t *testing.T) {
	aligned := []string{
		"ACDEFGHIKL",
		"ACDEFGHIKL",
		"ACDEYGHIKL",
		"SCDEFGHIKL",
	}
	h, err := BuildHMM(aligned)
	if err != nil {
		t.Fatal(err)
	}
	if h.Columns != 10 {
		t.Fatalf("columns = %d", h.Columns)
	}
	for c := 0; c < h.Columns; c++ {
		var sum float64
		for a := 0; a < seq.NumAminoAcids; a++ {
			sum += math.Exp(h.MatchEmit[c][a])
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("column %d emissions sum to %v", c, sum)
		}
		tsum := math.Exp(h.TMM[c]) + math.Exp(h.TMI[c]) + math.Exp(h.TMD[c])
		if math.Abs(tsum-1) > 1e-9 {
			t.Errorf("column %d transitions sum to %v", c, tsum)
		}
	}
}

func TestHMMDiscriminates(t *testing.T) {
	// Profile built from a conserved family; a family member must outscore
	// an unrelated sequence.
	family := []string{
		"WCHKYWDEFGHWKYWC",
		"WCHKYWDEFGHWKYWC",
		"WCHKYWDAFGHWKYWC",
		"WCHKYFDEFGHWKYWC",
	}
	h, err := BuildHMM(family)
	if err != nil {
		t.Fatal(err)
	}
	member := "WCHKYWDEFGHWKYWC"
	unrelated := "AAAAGGGGSSSSTTTT"
	sm := h.ViterbiScore(member)
	su := h.ViterbiScore(unrelated)
	if sm <= su {
		t.Errorf("member score %v <= unrelated score %v", sm, su)
	}
	if sm <= 0 {
		t.Errorf("member log-odds %v should be positive", sm)
	}
}

func buildTestSearcher(t *testing.T) (*Searcher, *proteome.Universe) {
	t.Helper()
	u := proteome.NewUniverse(1, 24, 60, 150)
	libs := map[string]*seqdb.Library{
		"uniref90": seqdb.Build(u, seqdb.BuildSpec{
			Name: "uniref90", EntriesPerFamily: 10,
			MinDivergence: 0.05, MaxDivergence: 0.45,
		}, 2),
		"pdb_seqres": seqdb.Build(u, seqdb.BuildSpec{
			Name: "pdb_seqres", EntriesPerFamily: 2,
			MinDivergence: 0.02, MaxDivergence: 0.3,
		}, 3),
	}
	return NewSearcher(libs, DefaultSearchConfig()), u
}

func TestSearchBuildsDeepMSAForFamilyMember(t *testing.T) {
	s, u := buildTestSearcher(t)
	query := seq.Sequence{ID: "q0", Residues: u.Domains[0]}
	res, err := s.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSA.Depth() < 5 {
		t.Errorf("MSA depth = %d, expected many homologs for a family ancestor", res.MSA.Depth())
	}
	if res.MSA.Rows[0].ID != "q0" {
		t.Error("row 0 must be the query")
	}
	for _, row := range res.MSA.Rows {
		if len(row.Aligned) != query.Len() {
			t.Fatalf("row %s length %d != query length %d", row.ID, len(row.Aligned), query.Len())
		}
	}
	if len(res.Templates) == 0 {
		t.Error("expected template hits from pdb_seqres")
	}
	if res.WorkUnits <= 0 {
		t.Error("work units not accounted")
	}
}

func TestSearchShallowForRandomSequence(t *testing.T) {
	s, _ := buildTestSearcher(t)
	// A low-complexity alien sequence: no family should match well.
	query := seq.Sequence{ID: "alien", Residues: strings.Repeat("AGSTAGPVLI", 12)}
	res, err := s.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSA.Depth() > 6 {
		t.Errorf("alien sequence MSA depth = %d, expected shallow", res.MSA.Depth())
	}
}

func TestSearchRejectsInvalidQuery(t *testing.T) {
	s, _ := buildTestSearcher(t)
	if _, err := s.Search(seq.Sequence{ID: "bad", Residues: "ACDZ"}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestNeffProperties(t *testing.T) {
	q := seq.Sequence{ID: "q", Residues: "ACDEFGHIKL"}
	identical := &MSA{Query: q, Rows: []Row{
		{ID: "a", Aligned: "ACDEFGHIKL"},
		{ID: "b", Aligned: "ACDEFGHIKL"},
		{ID: "c", Aligned: "ACDEFGHIKL"},
	}}
	diverse := &MSA{Query: q, Rows: []Row{
		{ID: "a", Aligned: "ACDEFGHIKL"},
		{ID: "b", Aligned: "WWWWWGHIKL"},
		{ID: "c", Aligned: "ACDEFYYYYY"},
	}}
	ni := identical.Neff()
	nd := diverse.Neff()
	if ni >= nd {
		t.Errorf("identical-rows Neff %v must be below diverse Neff %v", ni, nd)
	}
	if math.Abs(ni-1) > 1e-9 {
		t.Errorf("three identical rows should give Neff 1, got %v", ni)
	}
	if math.Abs(nd-3) > 1e-9 {
		t.Errorf("three fully diverse rows should give Neff 3, got %v", nd)
	}
	empty := &MSA{Query: q}
	if empty.Neff() != 0 {
		t.Error("empty MSA Neff should be 0")
	}
}

func TestColumnProfileNormalized(t *testing.T) {
	q := seq.Sequence{ID: "q", Residues: "ACD"}
	m := &MSA{Query: q, Rows: []Row{
		{ID: "q", Aligned: "ACD"},
		{ID: "h", Aligned: "AC-"},
	}}
	prof := m.ColumnProfile()
	if len(prof) != 3 {
		t.Fatalf("profile length %d", len(prof))
	}
	for c, col := range prof {
		var sum float64
		for _, p := range col {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("column %d sums to %v", c, sum)
		}
	}
	// Column 0 is all 'A': its A probability must dominate.
	if prof[0][seq.Index('A')] < 0.5 {
		t.Errorf("conserved column A prob = %v", prof[0][seq.Index('A')])
	}
}

func TestColumnCoverage(t *testing.T) {
	q := seq.Sequence{ID: "q", Residues: "ACD"}
	m := &MSA{Query: q, Rows: []Row{
		{ID: "q", Aligned: "ACD"},
		{ID: "h", Aligned: "A--"},
	}}
	cov := m.ColumnCoverage()
	if cov[0] != 1 || cov[1] != 0.5 || cov[2] != 0.5 {
		t.Errorf("coverage = %v", cov)
	}
}

func TestExtractFeatures(t *testing.T) {
	s, u := buildTestSearcher(t)
	query := seq.Sequence{ID: "q0", Residues: u.Domains[0]}
	res, err := s.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	f := ExtractFeatures(res)
	if f.Depth != res.MSA.Depth() {
		t.Error("depth mismatch")
	}
	if len(f.Profile) != query.Len() || len(f.Coverage) != query.Len() {
		t.Error("feature dimensions wrong")
	}
	if f.Neff <= 0 {
		t.Error("Neff must be positive")
	}
	if f.Entropy() <= 0 || f.Entropy() > math.Log(20)+0.01 {
		t.Errorf("entropy out of range: %v", f.Entropy())
	}
	if f.MeanRowID <= 0 || f.MeanRowID > 1 {
		t.Errorf("mean row identity = %v", f.MeanRowID)
	}
}

func TestDeepMSAHasHigherNeffThanShallow(t *testing.T) {
	s, u := buildTestSearcher(t)
	deep, err := s.Search(seq.Sequence{ID: "fam", Residues: u.Domains[3]})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := s.Search(seq.Sequence{ID: "alien", Residues: strings.Repeat("AGSTAGPVLI", 10)})
	if err != nil {
		t.Fatal(err)
	}
	if deep.MSA.Neff() <= shallow.MSA.Neff() {
		t.Errorf("deep Neff %v <= shallow Neff %v", deep.MSA.Neff(), shallow.MSA.Neff())
	}
}

func BenchmarkLocalAlign200(b *testing.B) {
	u := proteome.NewUniverse(1, 2, 200, 200)
	q, s := u.Domains[0], u.Domains[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Local(q, s, DefaultGaps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	u := proteome.NewUniverse(1, 24, 60, 150)
	libs := map[string]*seqdb.Library{
		"uniref90": seqdb.Build(u, seqdb.BuildSpec{
			Name: "uniref90", EntriesPerFamily: 10,
			MinDivergence: 0.05, MaxDivergence: 0.45,
		}, 2),
	}
	s := NewSearcher(libs, DefaultSearchConfig())
	query := seq.Sequence{ID: "q", Residues: u.Domains[0]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(query); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForwardScoreProperties(t *testing.T) {
	family := []string{
		"WCHKYWDEFGHWKYWC",
		"WCHKYWDEFGHWKYWC",
		"WCHKYWDAFGHWKYWC",
		"WCHKYFDEFGHWKYWC",
	}
	h, err := BuildHMM(family)
	if err != nil {
		t.Fatal(err)
	}
	member := "WCHKYWDEFGHWKYWC"
	unrelated := "AAAAGGGGSSSSTTTT"

	// Forward sums over all paths, so it is never below Viterbi.
	if fw, vit := h.ForwardScore(member), h.ViterbiScore(member); fw < vit-1e-9 {
		t.Errorf("forward %v < viterbi %v", fw, vit)
	}
	if fw, vit := h.ForwardScore(unrelated), h.ViterbiScore(unrelated); fw < vit-1e-9 {
		t.Errorf("forward %v < viterbi %v for unrelated", fw, vit)
	}
	// And it still discriminates family members from noise.
	if h.ForwardScore(member) <= h.ForwardScore(unrelated) {
		t.Error("forward score does not discriminate")
	}
	if h.ForwardScore("") != math.Inf(-1) {
		t.Error("empty sequence should score -Inf")
	}
}
