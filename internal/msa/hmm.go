package msa

import (
	"fmt"
	"math"

	"repro/internal/seq"
)

// ProfileHMM is a Plan7-style profile hidden Markov model with match,
// insert and delete states per column, built from a multiple sequence
// alignment. It plays the role HMMER/HHblits profiles play in the feature
// generation stage: scoring remote homologs more sensitively than pairwise
// alignment can.
type ProfileHMM struct {
	// Columns is the number of match states.
	Columns int
	// MatchEmit[c][a] is the log probability of emitting amino acid a from
	// match state c.
	MatchEmit [][]float64
	// InsertEmit[a] is the (shared) insert-state emission log probability,
	// equal to the background distribution.
	InsertEmit []float64
	// Transition log probabilities per column: M->M, M->I, M->D, I->M,
	// I->I, D->M, D->D.
	TMM, TMI, TMD, TIM, TII, TDM, TDD []float64
}

// BuildHMM estimates a profile HMM from gapped, equal-length aligned
// sequences. Columns where the first (query/master) sequence has a residue
// become match columns; weights use simple Laplace (+1) smoothing mixed
// with the background. The master-column convention matches how AlphaFold
// builds features in query coordinates.
func BuildHMM(aligned []string) (*ProfileHMM, error) {
	if len(aligned) == 0 {
		return nil, fmt.Errorf("msa: BuildHMM with no sequences")
	}
	width := len(aligned[0])
	for i, s := range aligned {
		if len(s) != width {
			return nil, fmt.Errorf("msa: aligned sequence %d has length %d, want %d", i, len(s), width)
		}
	}
	master := aligned[0]
	var matchCols []int
	for c := 0; c < width; c++ {
		if master[c] != '-' {
			matchCols = append(matchCols, c)
		}
	}
	if len(matchCols) == 0 {
		return nil, fmt.Errorf("msa: master sequence is all gaps")
	}

	h := &ProfileHMM{Columns: len(matchCols)}
	h.MatchEmit = make([][]float64, h.Columns)
	h.InsertEmit = make([]float64, seq.NumAminoAcids)
	for a := 0; a < seq.NumAminoAcids; a++ {
		h.InsertEmit[a] = math.Log(seq.BackgroundFreq[a])
	}
	n := len(matchCols)
	h.TMM = make([]float64, n)
	h.TMI = make([]float64, n)
	h.TMD = make([]float64, n)
	h.TIM = make([]float64, n)
	h.TII = make([]float64, n)
	h.TDM = make([]float64, n)
	h.TDD = make([]float64, n)

	for ci, c := range matchCols {
		counts := make([]float64, seq.NumAminoAcids)
		var mm, mi, md float64 = 1, 0.1, 0.1 // pseudocounts
		for _, s := range aligned {
			if a := seq.Index(s[c]); a >= 0 {
				counts[a]++
			}
			// Transition statistics: look at what follows this column for
			// this sequence (residue in next match column => M->M or D->M
			// depending on current, gap => deletion path, inter-column
			// residues => insertion).
			if ci+1 < len(matchCols) {
				next := matchCols[ci+1]
				hasIns := false
				for p := c + 1; p < next; p++ {
					if s[p] != '-' {
						hasIns = true
						break
					}
				}
				cur := s[c] != '-'
				nxt := s[next] != '-'
				switch {
				case hasIns:
					mi++
				case cur && nxt:
					mm++
				case cur && !nxt:
					md++
				}
			}
		}
		var total float64
		for a := range counts {
			counts[a] += seq.BackgroundFreq[a] * float64(seq.NumAminoAcids) // background pseudocount
			total += counts[a]
		}
		emit := make([]float64, seq.NumAminoAcids)
		for a := range counts {
			emit[a] = math.Log(counts[a] / total)
		}
		h.MatchEmit[ci] = emit

		tsum := mm + mi + md
		h.TMM[ci] = math.Log(mm / tsum)
		h.TMI[ci] = math.Log(mi / tsum)
		h.TMD[ci] = math.Log(md / tsum)
		h.TIM[ci] = math.Log(0.8)
		h.TII[ci] = math.Log(0.2)
		h.TDM[ci] = math.Log(0.7)
		h.TDD[ci] = math.Log(0.3)
	}
	return h, nil
}

// ViterbiScore returns the log-odds score (relative to the background
// model) of the best path of the sequence through the profile, using global
// (Needleman-Wunsch-style) profile alignment.
func (h *ProfileHMM) ViterbiScore(s string) float64 {
	n := len(s)
	if n == 0 {
		return math.Inf(-1)
	}
	cols := h.Columns
	ninf := math.Inf(-1)

	// vm[c], vi[c], vd[c] for the current sequence position; 1-based cols.
	vm := make([]float64, cols+1)
	vi := make([]float64, cols+1)
	vd := make([]float64, cols+1)
	nm := make([]float64, cols+1)
	ni := make([]float64, cols+1)
	nd := make([]float64, cols+1)

	for c := 0; c <= cols; c++ {
		vm[c], vi[c] = ninf, ninf
	}
	// Deletion chain along the top row (entering at column c by deletions).
	vd[0] = ninf
	vd[1] = h.TMD[0]
	for c := 2; c <= cols; c++ {
		vd[c] = vd[c-1] + h.TDD[c-1]
	}

	bg := make([]float64, 256)
	for a := 0; a < seq.NumAminoAcids; a++ {
		bg[seq.Alphabet[a]] = math.Log(seq.BackgroundFreq[a])
	}

	best := ninf
	for i := 1; i <= n; i++ {
		ch := s[i-1]
		a := seq.Index(ch)
		for c := 0; c <= cols; c++ {
			nm[c], ni[c], nd[c] = ninf, ninf, ninf
		}
		for c := 1; c <= cols; c++ {
			var emit float64
			if a >= 0 {
				emit = h.MatchEmit[c-1][a] - bg[ch]
			} else {
				emit = -1
			}
			// Match state c consumes residue i.
			prev := ninf
			if c == 1 {
				if i == 1 {
					prev = 0 // model entry
				} else {
					prev = vi[0]
				}
			} else {
				prev = math.Max(vm[c-1]+h.TMM[c-1], math.Max(vi[c-1]+h.TIM[c-1], vd[c-1]+h.TDM[c-1]))
			}
			nm[c] = prev + emit

			// Insert state after column c consumes residue i (score 0
			// emission odds: insert emissions equal background).
			ni[c] = math.Max(vm[c]+h.TMI[minIdx(c, cols-1)], vi[c]+h.TII[minIdx(c, cols-1)])

			// Delete state c consumes no residue; computed from this row's
			// match/delete at c-1.
			if c > 1 {
				nd[c] = math.Max(nm[c-1]+h.TMD[c-1], nd[c-1]+h.TDD[c-1])
			}
		}
		// Insert state 0 (N-terminal inserts).
		ni[0] = math.Max(vi[0], 0) // free-ish N-terminal padding
		copy(vm, nm)
		copy(vi, ni)
		copy(vd, nd)
		// Global-ish: model must end at last column, sequence may end here.
		if end := math.Max(vm[cols], vd[cols]); i == n && end > best {
			best = end
		}
	}
	return best
}

func minIdx(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ForwardScore returns the full-likelihood log-odds score of the sequence
// against the profile (the HMMER default): like ViterbiScore but summing
// over all paths instead of maximizing, which is more sensitive for remote
// homologs whose probability mass is spread over many near-optimal
// alignments.
func (h *ProfileHMM) ForwardScore(s string) float64 {
	n := len(s)
	if n == 0 {
		return math.Inf(-1)
	}
	cols := h.Columns
	ninf := math.Inf(-1)

	vm := make([]float64, cols+1)
	vi := make([]float64, cols+1)
	vd := make([]float64, cols+1)
	nm := make([]float64, cols+1)
	ni := make([]float64, cols+1)
	nd := make([]float64, cols+1)
	for c := 0; c <= cols; c++ {
		vm[c], vi[c] = ninf, ninf
	}
	vd[0] = ninf
	vd[1] = h.TMD[0]
	for c := 2; c <= cols; c++ {
		vd[c] = vd[c-1] + h.TDD[c-1]
	}

	bg := make([]float64, 256)
	for a := 0; a < seq.NumAminoAcids; a++ {
		bg[seq.Alphabet[a]] = math.Log(seq.BackgroundFreq[a])
	}

	best := ninf
	for i := 1; i <= n; i++ {
		ch := s[i-1]
		a := seq.Index(ch)
		for c := 0; c <= cols; c++ {
			nm[c], ni[c], nd[c] = ninf, ninf, ninf
		}
		for c := 1; c <= cols; c++ {
			var emit float64
			if a >= 0 {
				emit = h.MatchEmit[c-1][a] - bg[ch]
			} else {
				emit = -1
			}
			prev := ninf
			if c == 1 {
				if i == 1 {
					prev = 0
				} else {
					prev = vi[0]
				}
			} else {
				prev = logSumExp3(vm[c-1]+h.TMM[c-1], vi[c-1]+h.TIM[c-1], vd[c-1]+h.TDM[c-1])
			}
			nm[c] = prev + emit
			ni[c] = logSumExp2(vm[c]+h.TMI[minIdx(c, cols-1)], vi[c]+h.TII[minIdx(c, cols-1)])
			if c > 1 {
				nd[c] = logSumExp2(nm[c-1]+h.TMD[c-1], nd[c-1]+h.TDD[c-1])
			}
		}
		ni[0] = logSumExp2(vi[0], 0)
		copy(vm, nm)
		copy(vi, ni)
		copy(vd, nd)
		if i == n {
			if end := logSumExp2(vm[cols], vd[cols]); end > best {
				best = end
			}
		}
	}
	return best
}

func logSumExp2(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

func logSumExp3(a, b, c float64) float64 {
	return logSumExp2(logSumExp2(a, b), c)
}
