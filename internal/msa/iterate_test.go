package msa

import (
	"testing"

	"repro/internal/proteome"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// remoteHomologLibrary builds a library where family 0 has a mix of close
// and remote homologs; the remote ones sit beyond the pairwise-identity
// acceptance threshold but should be reachable via the profile.
func remoteHomologLibrary() (*proteome.Universe, map[string]*seqdb.Library) {
	u := proteome.NewUniverse(31, 12, 100, 160)
	libs := map[string]*seqdb.Library{
		// Close homologs establish the first-pass MSA.
		"uniref90": seqdb.Build(u, seqdb.BuildSpec{
			Name: "uniref90", EntriesPerFamily: 8,
			MinDivergence: 0.05, MaxDivergence: 0.25,
		}, 5),
		// Remote homologs: mostly past the pairwise threshold.
		"mgnify": seqdb.Build(u, seqdb.BuildSpec{
			Name: "mgnify", EntriesPerFamily: 12,
			MinDivergence: 0.45, MaxDivergence: 0.65,
		}, 6),
	}
	return u, libs
}

func TestIterativeSearchDeepensMSA(t *testing.T) {
	u, libs := remoteHomologLibrary()
	cfg := DefaultIterativeConfig()
	// Make pairwise acceptance strict so remote homologs need the profile.
	cfg.MinIdentity = 0.45
	s := NewSearcher(libs, cfg.SearchConfig)
	query := seq.Sequence{ID: "q", Residues: u.Domains[0]}

	one := cfg
	one.Iterations = 1
	resOne, err := s.SearchIterative(query, one)
	if err != nil {
		t.Fatal(err)
	}
	resTwo, err := s.SearchIterative(query, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resTwo.MSA.Depth() <= resOne.MSA.Depth() {
		t.Errorf("profile iteration did not deepen the MSA: %d -> %d",
			resOne.MSA.Depth(), resTwo.MSA.Depth())
	}
	// Profile-found rows are marked and bypass the identity threshold.
	profileRows := 0
	for _, row := range resTwo.MSA.Rows {
		if len(row.Library) > 8 && row.Library[len(row.Library)-8:] == "+profile" {
			profileRows++
			if row.Identity >= 0.9 {
				t.Errorf("profile row %s identity %v; should be a remote homolog", row.ID, row.Identity)
			}
		}
	}
	if profileRows == 0 {
		t.Error("no profile-accepted rows")
	}
	// Extra work must be accounted.
	if resTwo.WorkUnits <= resOne.WorkUnits {
		t.Error("profile pass did not account extra work")
	}
}

func TestIterativeSearchValidation(t *testing.T) {
	_, libs := remoteHomologLibrary()
	cfg := DefaultIterativeConfig()
	cfg.Iterations = 0
	s := NewSearcher(libs, cfg.SearchConfig)
	if _, err := s.SearchIterative(seq.Sequence{ID: "q", Residues: "ACDEFGHIKL"}, cfg); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestIterativeSearchConverges(t *testing.T) {
	// With many iterations the search must stop adding rows (no infinite
	// growth) and stay deterministic.
	u, libs := remoteHomologLibrary()
	cfg := DefaultIterativeConfig()
	cfg.Iterations = 5
	s := NewSearcher(libs, cfg.SearchConfig)
	query := seq.Sequence{ID: "q", Residues: u.Domains[1]}
	a, err := s.SearchIterative(query, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SearchIterative(query, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MSA.Depth() != b.MSA.Depth() {
		t.Error("iterative search not deterministic")
	}
	total := libs["uniref90"].NumEntries() + libs["mgnify"].NumEntries()
	if a.MSA.Depth() > total+1 {
		t.Errorf("MSA deeper (%d) than the library (%d)", a.MSA.Depth(), total)
	}
}

func TestProfilePassRespectsCap(t *testing.T) {
	u, libs := remoteHomologLibrary()
	cfg := DefaultIterativeConfig()
	cfg.MaxProfileHits = 2
	s := NewSearcher(libs, cfg.SearchConfig)
	query := seq.Sequence{ID: "q", Residues: u.Domains[0]}
	one := cfg
	one.Iterations = 1
	resOne, err := s.SearchIterative(query, one)
	if err != nil {
		t.Fatal(err)
	}
	resTwo, err := s.SearchIterative(query, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := resTwo.MSA.Depth() - resOne.MSA.Depth(); got > 2 {
		t.Errorf("profile pass added %d rows, cap was 2", got)
	}
}
