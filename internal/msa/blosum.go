// Package msa implements the sequence-search and feature-generation stage
// of the pipeline (Section 3.2.1 of the paper): pairwise alignment with
// affine gaps, profile HMM construction and scoring (the HMMER/HHblits
// role), multiple-sequence-alignment assembly against the sequence
// libraries, and extraction of the input features the folding stage
// consumes (column profiles, alignment depth/Neff, template hits).
package msa

import "repro/internal/seq"

// BLOSUM62 is the standard substitution matrix, indexed by the alphabet
// order of package seq ("ACDEFGHIKLMNPQRSTVWY").
var BLOSUM62 = [20][20]int8{
	//        A   C   D   E   F   G   H   I   K   L   M   N   P   Q   R   S   T   V   W   Y
	/* A */ {4, 0, -2, -1, -2, 0, -2, -1, -1, -1, -1, -2, -1, -1, -1, 1, 0, 0, -3, -2},
	/* C */ {0, 9, -3, -4, -2, -3, -3, -1, -3, -1, -1, -3, -3, -3, -3, -1, -1, -1, -2, -2},
	/* D */ {-2, -3, 6, 2, -3, -1, -1, -3, -1, -4, -3, 1, -1, 0, -2, 0, -1, -3, -4, -3},
	/* E */ {-1, -4, 2, 5, -3, -2, 0, -3, 1, -3, -2, 0, -1, 2, 0, 0, -1, -2, -3, -2},
	/* F */ {-2, -2, -3, -3, 6, -3, -1, 0, -3, 0, 0, -3, -4, -3, -3, -2, -2, -1, 1, 3},
	/* G */ {0, -3, -1, -2, -3, 6, -2, -4, -2, -4, -3, 0, -2, -2, -2, 0, -2, -3, -2, -3},
	/* H */ {-2, -3, -1, 0, -1, -2, 8, -3, -1, -3, -2, 1, -2, 0, 0, -1, -2, -3, -2, 2},
	/* I */ {-1, -1, -3, -3, 0, -4, -3, 4, -3, 2, 1, -3, -3, -3, -3, -2, -1, 3, -3, -1},
	/* K */ {-1, -3, -1, 1, -3, -2, -1, -3, 5, -2, -1, 0, -1, 1, 2, 0, -1, -2, -3, -2},
	/* L */ {-1, -1, -4, -3, 0, -4, -3, 2, -2, 4, 2, -3, -3, -2, -2, -2, -1, 1, -2, -1},
	/* M */ {-1, -1, -3, -2, 0, -3, -2, 1, -1, 2, 5, -2, -2, 0, -1, -1, -1, 1, -1, -1},
	/* N */ {-2, -3, 1, 0, -3, 0, 1, -3, 0, -3, -2, 6, -2, 0, 0, 1, 0, -3, -4, -2},
	/* P */ {-1, -3, -1, -1, -4, -2, -2, -3, -1, -3, -2, -2, 7, -1, -2, -1, -1, -2, -4, -3},
	/* Q */ {-1, -3, 0, 2, -3, -2, 0, -3, 1, -2, 0, 0, -1, 5, 1, 0, -1, -2, -2, -1},
	/* R */ {-1, -3, -2, 0, -3, -2, 0, -3, 2, -2, -1, 0, -2, 1, 5, -1, -1, -3, -3, -2},
	/* S */ {1, -1, 0, 0, -2, 0, -1, -2, 0, -2, -1, 1, -1, 0, -1, 4, 1, -2, -3, -2},
	/* T */ {0, -1, -1, -1, -2, -2, -2, -1, -1, -1, -1, 0, -1, -1, -1, 1, 5, 0, -2, -2},
	/* V */ {0, -1, -3, -2, -1, -3, -3, 3, -2, 1, 1, -3, -2, -2, -3, -2, 0, 4, -3, -1},
	/* W */ {-3, -2, -4, -3, 1, -2, -2, -3, -3, -2, -1, -4, -4, -2, -3, -3, -2, -3, 11, 2},
	/* Y */ {-2, -2, -3, -2, 3, -3, 2, -1, -2, -1, -1, -2, -3, -1, -2, -2, -2, -1, 2, 7},
}

// Score returns the BLOSUM62 score for two residue letters. Non-canonical
// letters score as a mild mismatch (-1).
func Score(a, b byte) int {
	ia, ib := seq.Index(a), seq.Index(b)
	if ia < 0 || ib < 0 {
		return -1
	}
	return int(BLOSUM62[ia][ib])
}
