package msa

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// Iterative search: the HHblits strategy of building a profile from the
// first-pass MSA and searching again with it, which finds remote homologs
// that pairwise alignment misses. The paper's feature-generation stage
// runs exactly this kind of iterated profile search (HHblits against the
// BFD), and MSA depth is the dominant driver of prediction quality.

// IterativeConfig extends SearchConfig with profile-search iterations.
type IterativeConfig struct {
	SearchConfig
	// Iterations ≥ 1; iteration 1 is the plain pairwise search, each
	// further iteration rebuilds the profile and rescans.
	Iterations int
	// ProfileScorePerColumn is the acceptance threshold for profile hits:
	// a candidate joins the MSA if its Viterbi log-odds per profile column
	// exceeds this (in nats).
	ProfileScorePerColumn float64
	// MaxProfileHits caps additions per iteration.
	MaxProfileHits int
}

// DefaultIterativeConfig mirrors a 2-iteration HHblits-like setup.
func DefaultIterativeConfig() IterativeConfig {
	return IterativeConfig{
		SearchConfig:          DefaultSearchConfig(),
		Iterations:            2,
		ProfileScorePerColumn: 0.22,
		MaxProfileHits:        64,
	}
}

// SearchIterative runs the iterated profile search against one library
// (profile iteration is only worthwhile on the deep metagenomic library,
// which is also what the real pipeline does).
func (s *Searcher) SearchIterative(query seq.Sequence, cfg IterativeConfig) (*Result, error) {
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("msa: iterations must be >= 1")
	}
	res, err := s.Search(query)
	if err != nil {
		return nil, err
	}
	for iter := 2; iter <= cfg.Iterations; iter++ {
		added, err := s.profilePass(query, res, cfg)
		if err != nil {
			return nil, err
		}
		if added == 0 {
			break // converged: no new homologs
		}
	}
	return res, nil
}

// profilePass builds a profile HMM from the current MSA and scans all
// libraries with a relaxed prefilter, adding profile-accepted homologs.
func (s *Searcher) profilePass(query seq.Sequence, res *Result, cfg IterativeConfig) (int, error) {
	aligned := make([]string, 0, len(res.MSA.Rows))
	for _, row := range res.MSA.Rows {
		aligned = append(aligned, row.Aligned)
	}
	hmm, err := BuildHMM(aligned)
	if err != nil {
		return 0, err
	}
	have := make(map[string]bool, len(res.MSA.Rows))
	for _, row := range res.MSA.Rows {
		have[row.ID] = true
	}

	names := make([]string, 0, len(s.libs))
	for name := range s.libs {
		names = append(names, name)
	}
	sort.Strings(names)

	added := 0
	for _, name := range names {
		if name == "pdb_seqres" {
			continue // templates stay pairwise-validated
		}
		lib := s.libs[name]
		// Relaxed prefilter: a single shared k-mer qualifies a candidate
		// for profile scoring.
		hits := s.indexes[name].Query(query.Residues, 1)
		for _, h := range hits {
			if added >= cfg.MaxProfileHits {
				return added, nil
			}
			subject := lib.Entries[h.Entry].Seq
			if have[subject.ID] {
				continue
			}
			score := hmm.ViterbiScore(subject.Residues)
			res.WorkUnits += int64(hmm.Columns) * int64(len(subject.Residues))
			if score < cfg.ProfileScorePerColumn*float64(hmm.Columns) {
				continue
			}
			// Accept: align for coordinates, but do NOT apply the pairwise
			// identity threshold — the profile has already vouched for it.
			aln, err := Local(query.Residues, subject.Residues, cfg.Gaps)
			if err != nil {
				return added, err
			}
			if aln.Score == 0 || aln.Coverage(query.Len()) < 0.25 {
				continue
			}
			res.MSA.Rows = append(res.MSA.Rows, Row{
				ID:       subject.ID,
				Aligned:  projectToQuery(aln, query.Len()),
				Identity: aln.Identity(),
				Coverage: aln.Coverage(query.Len()),
				Library:  name + "+profile",
			})
			have[subject.ID] = true
			added++
		}
	}
	return added, nil
}
