// Package parallel provides the deterministic parallel execution layer of
// the pipeline: a bounded worker pool whose results are collected by
// submission index, never by completion order.
//
// Determinism is the hard constraint of this repository — every table and
// figure must regenerate byte-identical numbers on every run — so the
// contract here is strict:
//
//   - fn(i, item) must be a pure function of its arguments (all compute
//     stages in this repo derive per-item randomness from stable keys, so
//     they qualify);
//   - results land in out[i] regardless of which worker finished first, so
//     a parallel run is indistinguishable from the serial loop;
//   - on error the pool cancels outstanding work and returns the error of
//     the *lowest* submission index that failed — exactly the error the
//     serial loop would have surfaced — not whichever failure happened to
//     complete first.
//
// Workers == 1 bypasses the pool entirely and runs the plain serial loop,
// which is what the parallel-vs-serial equivalence tests compare against.
//
// This package is the pool back end of the Executor abstraction in
// internal/exec; the generic Map over items lives there (exec.Map), so
// the contract has a single implementation shared by every back end.
package parallel

import (
	"math"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), and the count is clamped to n so tiny inputs do
// not spawn idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for i in [0, n) on up to `workers` goroutines
// (<= 0 means GOMAXPROCS). On failure it returns the error with the
// smallest index, matching serial semantics; items after a known failure
// are skipped cooperatively.
func ForEach(workers, n int, fn func(i int) error) error {
	return run(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the executing worker's identity: fn
// receives (worker, i) where worker is the stable index of the pool
// goroutine running the item, in [0, Workers(workers, n)). The worker
// index exists for telemetry (task → worker placement in a recorded
// trace) and must never influence fn's result — the determinism contract
// is unchanged.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	return run(workers, n, fn)
}

type indexedError struct {
	index int
	err   error
}

func run(workers, n int, fn func(worker, i int) error) error {
	if n == 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Serial reference path: the behaviour every parallel run must
		// reproduce exactly.
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu      sync.Mutex
		firstBy = indexedError{index: math.MaxInt}
		next    int
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				// Claim the next index and read the failure watermark in one
				// critical section. Cancellation is cooperative: items below
				// the first failing index still run, because the serial loop
				// would have run them too.
				mu.Lock()
				i := next
				next++
				skip := firstBy.index < i
				mu.Unlock()
				if i >= n {
					return
				}
				if skip {
					continue
				}
				if err := fn(worker, i); err != nil {
					mu.Lock()
					if i < firstBy.index {
						firstBy = indexedError{index: i, err: err}
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if firstBy.index < math.MaxInt {
		return firstBy.err
	}
	return nil
}
