package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachPreservesIndexing(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 7, 64} {
		got := make([]string, n)
		err := ForEach(workers, n, func(i int) error {
			got[i] = fmt.Sprintf("%d:%d", i, i*i)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			want := fmt.Sprintf("%d:%d", i, i*i)
			if got[i] != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want)
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	const n = 257
	run := func(workers int) ([]int, error) {
		out := make([]int, n)
		err := ForEach(workers, n, func(i int) error {
			v := 3*i + 1
			out[i] = v*v - i
			return nil
		})
		return out, err
	}
	serial, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel result differs from serial")
	}
}

func TestFirstErrorByIndexNotCompletion(t *testing.T) {
	// Two failing items: a slow one early and a fast one late. The serial
	// loop would report index 3; the pool must do the same even though
	// index 90 finishes failing first.
	n := 100
	errEarly := errors.New("early")
	errLate := errors.New("late")
	for trial := 0; trial < 20; trial++ {
		err := ForEach(8, n, func(i int) error {
			switch i {
			case 3:
				for j := 0; j < 1000; j++ {
					runtime.Gosched()
				}
				return errEarly
			case 90:
				return errLate
			}
			return nil
		})
		if !errors.Is(err, errEarly) {
			t.Fatalf("trial %d: got %v, want the lowest-index error", trial, err)
		}
	}
}

func TestErrorCancelsLaterWork(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(4, 100000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := ran.Load(); got == 100000 {
		t.Fatal("error did not cancel outstanding work")
	}
}

func TestWorkersClamp(t *testing.T) {
	if w := Workers(0, 10); w != runtime.GOMAXPROCS(0) && w != 10 {
		t.Fatalf("Workers(0,10) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8,3) = %d, want 3", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Fatalf("Workers(-1,0) = %d, want 1", w)
	}
}

func TestEmptyInput(t *testing.T) {
	if err := ForEach(8, 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
