package events

import (
	"fmt"
	"sort"
)

// Tracker is the incremental state machine a live consumer (the
// `proteomectl monitor` client) feeds events into, one at a time and in
// stream order. It maintains the aggregate counters of the paper's
// dashboard view: queue depth, per-worker in-flight tasks, completion
// counts, and the connected worker set.
type Tracker struct {
	// Received / Done / Failed / Dropped count task outcomes so far.
	Received, Done, Failed, Dropped int
	// Quarantined counts tasks removed from scheduling by the retry
	// budget (each also counted in Failed by its terminal failed event).
	Quarantined int
	// QueueDepth is the number of tasks currently queued (not assigned).
	QueueDepth int
	// InFlight maps an assigned task to the worker running it.
	InFlight map[string]string
	// Workers is the set of currently connected workers.
	Workers map[string]bool
	// LastNS is the monotonic stamp of the last observed event.
	LastNS int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{InFlight: make(map[string]string), Workers: make(map[string]bool)}
}

// Busy returns the number of tasks currently in flight across workers.
func (t *Tracker) Busy() int { return len(t.InFlight) }

// Observe advances the tracker by one event. Events must arrive in
// stream order; unknown transitions (a done for a task never assigned)
// still update the counters they can.
func (t *Tracker) Observe(e Event) {
	t.LastNS = e.TimeNS
	switch e.Type {
	case TaskReceived:
		t.Received++
	case TaskQueued:
		t.QueueDepth++
		// A requeue pulls the task back off its dead worker.
		delete(t.InFlight, e.Task)
	case TaskAssigned:
		if t.QueueDepth > 0 {
			t.QueueDepth--
		}
		t.InFlight[e.Task] = e.Worker
	case TaskRunning:
		// Informational refinement of assigned; placement is unchanged.
	case TaskDone:
		t.Done++
		delete(t.InFlight, e.Task)
	case TaskFailed:
		t.Failed++
		delete(t.InFlight, e.Task)
	case TaskDropped:
		t.Dropped++
		if t.QueueDepth > 0 {
			t.QueueDepth--
		}
	case TaskQuarantined:
		// The terminal failed event preceding it already counted the
		// failure and cleared the in-flight entry.
		t.Quarantined++
	case WorkerJoin:
		t.Workers[e.Worker] = true
	case WorkerLeave, WorkerLost:
		delete(t.Workers, e.Worker)
	}
}

// Interval is one task execution on one worker reconstructed from the
// stream: the busy block a Fig-2-style worker timeline plots. An
// interval whose worker died mid-task ends at the worker_leave stamp
// with Lost set; Failed marks a task error returned by the worker.
type Interval struct {
	Task   string
	Worker string
	// StartNS/EndNS are monotonic stamps: assignment (refined by the
	// running transition) to completion.
	StartNS, EndNS int64
	Failed         bool
	Lost           bool
}

// Seconds returns the interval bounds in seconds.
func (iv *Interval) Seconds() (start, end float64) {
	return float64(iv.StartNS) / 1e9, float64(iv.EndNS) / 1e9
}

// DepthPoint is one step of the queue-depth-over-time series.
type DepthPoint struct {
	TimeNS int64
	Depth  int
}

// Replay is the offline reconstruction of one recorded event stream —
// everything the live monitor shows, recomputed from a log alone: the
// per-worker busy intervals and the queue depth over time, with no
// client cooperation required.
type Replay struct {
	// Events is the number of events replayed.
	Events int
	// Tasks is the sorted set of task identities observed.
	Tasks []string
	// Workers is the sorted set of workers that ever joined.
	Workers []string
	// Intervals holds the reconstructed busy intervals, sorted by
	// (worker, start, task).
	Intervals []Interval
	// Depth is the queue-depth series: one point per change, starting at
	// the first event's stamp.
	Depth []DepthPoint
	// Done / Failed / Dropped / Quarantined count task outcomes.
	Done, Failed, Dropped, Quarantined int
	// SpanNS is the stamp of the last event.
	SpanNS int64
}

// MaxDepth returns the deepest queue observed.
func (r *Replay) MaxDepth() int {
	max := 0
	for _, d := range r.Depth {
		if d.Depth > max {
			max = d.Depth
		}
	}
	return max
}

// ReplayEvents reconstructs a Replay from an event stream in order (as
// returned by ReadLog or Hub.Snapshot). Every event is validated, and
// sequence numbers must be strictly increasing — a spliced or reordered
// log fails loudly rather than replaying nonsense.
func ReplayEvents(evs []Event) (*Replay, error) {
	type open struct {
		worker  string
		startNS int64
	}
	r := &Replay{Events: len(evs)}
	tr := NewTracker()
	inFlight := make(map[string]open)
	tasks := make(map[string]bool)
	workers := make(map[string]bool)
	lastSeq := uint64(0)
	depth := 0

	recordDepth := func(ns int64) {
		if tr.QueueDepth == depth {
			return
		}
		depth = tr.QueueDepth
		// Coalesce same-stamp changes into the final value.
		if n := len(r.Depth); n > 0 && r.Depth[n-1].TimeNS == ns {
			r.Depth[n-1].Depth = depth
			return
		}
		r.Depth = append(r.Depth, DepthPoint{TimeNS: ns, Depth: depth})
	}

	for i := range evs {
		e := &evs[i]
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("events: replaying event %d: %w", i+1, err)
		}
		if e.Seq <= lastSeq {
			return nil, fmt.Errorf("events: replaying event %d: sequence %d not after %d", i+1, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.TimeNS > r.SpanNS {
			r.SpanNS = e.TimeNS
		}
		if e.Type.TaskScoped() {
			tasks[e.Task] = true
		}

		// Interval bookkeeping rides on top of the tracker's counters.
		switch e.Type {
		case TaskAssigned:
			inFlight[e.Task] = open{worker: e.Worker, startNS: e.TimeNS}
		case TaskRunning:
			if o, ok := inFlight[e.Task]; ok {
				o.startNS = e.TimeNS
				inFlight[e.Task] = o
			}
		case TaskDone, TaskFailed:
			if o, ok := inFlight[e.Task]; ok {
				delete(inFlight, e.Task)
				r.Intervals = append(r.Intervals, Interval{
					Task: e.Task, Worker: o.worker,
					StartNS: o.startNS, EndNS: e.TimeNS,
					Failed: e.Type == TaskFailed,
				})
			}
		case WorkerJoin:
			workers[e.Worker] = true
		case WorkerLeave, WorkerLost:
			// The worker died (or its task send failed, or it fell silent
			// past the heartbeat deadline): close its open interval at the
			// leave stamp. The scheduler requeues the task right after, so
			// the tracker's depth stays consistent.
			for task, o := range inFlight {
				if o.worker == e.Worker {
					delete(inFlight, task)
					r.Intervals = append(r.Intervals, Interval{
						Task: task, Worker: o.worker,
						StartNS: o.startNS, EndNS: e.TimeNS,
						Lost: true,
					})
				}
			}
		}
		tr.Observe(*e)
		recordDepth(e.TimeNS)
	}

	r.Done, r.Failed, r.Dropped, r.Quarantined = tr.Done, tr.Failed, tr.Dropped, tr.Quarantined
	r.Tasks = sortedKeys(tasks)
	r.Workers = sortedKeys(workers)
	sort.SliceStable(r.Intervals, func(i, j int) bool {
		a, b := &r.Intervals[i], &r.Intervals[j]
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		return a.Task < b.Task
	})
	return r, nil
}

// WorkerBusyNS sums the reconstructed busy time of each worker.
func (r *Replay) WorkerBusyNS() map[string]int64 {
	busy := make(map[string]int64, len(r.Workers))
	for i := range r.Intervals {
		iv := &r.Intervals[i]
		busy[iv.Worker] += iv.EndNS - iv.StartNS
	}
	return busy
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
