// Package events is the scheduler's structured observability subsystem:
// a typed per-task state-machine event record (the transition log Dask's
// scheduler keeps), stamped scheduler-side with monotonic times, fanned
// out to synchronous views (the JSONL event log, the free-text placement
// log) and to live subscribers (the `proteomectl monitor` wire stream).
//
// The task state machine is
//
//	received → queued → assigned → running → done | failed
//
// with two re-entries: a task whose worker dies is queued again, and a
// task whose client disconnects before assignment is dropped. Worker
// membership changes are events too (worker_join / worker_leave), so a
// log alone reconstructs queue depth over time and per-worker busy
// intervals (see Replay) without any client cooperation.
//
// Events are an observation channel only, never an input: nothing in a
// campaign report depends on them, and emitting, logging, or streaming
// them must never change a result byte.
package events

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Type is the kind of one scheduler event.
type Type string

// Task-transition and worker-membership event types. The task types
// follow the scheduler's state machine in order; worker types bracket a
// worker's registration lifetime.
const (
	// TaskReceived: the scheduler accepted the task from a client.
	TaskReceived Type = "received"
	// TaskQueued: the task entered the queue (immediately after received,
	// and again when a dead worker's in-flight task is requeued).
	TaskQueued Type = "queued"
	// TaskAssigned: the scheduler picked a worker for the task.
	TaskAssigned Type = "assigned"
	// TaskRunning: the task was delivered and is running on the worker
	// (workers are single-slot and start the handler on receipt).
	TaskRunning Type = "running"
	// TaskDone: the worker returned a successful result.
	TaskDone Type = "done"
	// TaskFailed: the worker returned a task error.
	TaskFailed Type = "failed"
	// TaskDropped: the task was discarded before assignment (its client
	// disconnected).
	TaskDropped Type = "dropped"
	// TaskQuarantined: the task exhausted its retry budget (every attempt
	// ended with its worker dying mid-task) and was removed from
	// scheduling. Always immediately preceded by the terminal failed event
	// carrying the attempt history.
	TaskQuarantined Type = "quarantined"
	// WorkerJoin: a worker registered.
	WorkerJoin Type = "worker_join"
	// WorkerLeave: a worker disconnected (or failed a task send).
	WorkerLeave Type = "worker_leave"
	// WorkerLost: the scheduler declared a still-connected worker dead
	// because it fell silent past the heartbeat deadline (wedged process,
	// dead network path). Its in-flight task is requeued like worker_leave.
	WorkerLost Type = "worker_lost"
	// Truncated: a marker synthesized for a subscriber whose cursor points
	// before the oldest event retained by a bounded hub backlog; Err says
	// how many events were evicted. It is never emitted into a persisted
	// log — only cursors observe it.
	Truncated Type = "truncated"
)

// Valid reports whether t is a known event type.
func (t Type) Valid() bool {
	switch t {
	case TaskReceived, TaskQueued, TaskAssigned, TaskRunning,
		TaskDone, TaskFailed, TaskDropped, TaskQuarantined,
		WorkerJoin, WorkerLeave, WorkerLost, Truncated:
		return true
	}
	return false
}

// TaskScoped reports whether events of this type must name a task.
func (t Type) TaskScoped() bool {
	switch t {
	case TaskReceived, TaskQueued, TaskAssigned, TaskRunning,
		TaskDone, TaskFailed, TaskDropped, TaskQuarantined:
		return true
	}
	return false
}

// Event is one scheduler-side state transition. Seq and TimeNS are
// stamped by the Hub: Seq is the 1-based position in the stream and
// TimeNS the monotonic nanoseconds since the hub (scheduler) started, so
// an event log replays identically regardless of wall-clock adjustments.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNS int64  `json:"t_ns"`
	Type   Type   `json:"type"`
	// Task is the stable trace identity of the task (flow.Task.Label when
	// the submitting executor tagged it, else the wire task ID) — the same
	// identity the processing-times CSV keys its rows by.
	Task string `json:"task,omitempty"`
	// Worker identifies the placement for assigned/running/done/failed
	// and the subject of worker_join/worker_leave.
	Worker string `json:"worker,omitempty"`
	// Err carries the task error of a failed event.
	Err string `json:"error,omitempty"`
	// Attempt is the 1-based delivery attempt for requeue/failure events
	// under a scheduler retry budget (0 = first attempt / not tracked).
	Attempt int `json:"attempt,omitempty"`
	// Campaign is the multi-tenant namespace of the task on task-scoped
	// events — the submitting campaign (flow.Task.Campaign). Empty for
	// single-tenant submissions and worker-membership events, keeping the
	// JSONL log byte-identical to earlier releases in that case.
	Campaign string `json:"campaign,omitempty"`
}

// Seconds returns the monotonic stamp in seconds since the hub started.
func (e *Event) Seconds() float64 { return float64(e.TimeNS) / 1e9 }

// Validate checks the structural invariants a decoded event must hold:
// a known type, a task on task-scoped events, and a worker on
// worker-membership events.
func (e *Event) Validate() error {
	if !e.Type.Valid() {
		return fmt.Errorf("events: unknown event type %q", e.Type)
	}
	if e.Type.TaskScoped() && e.Task == "" {
		return fmt.Errorf("events: %s event names no task", e.Type)
	}
	if (e.Type == WorkerJoin || e.Type == WorkerLeave || e.Type == WorkerLost) && e.Worker == "" {
		return fmt.Errorf("events: %s event names no worker", e.Type)
	}
	return nil
}

// Hub is the scheduler-side event recorder: it stamps every emitted
// event with a sequence number and a monotonic time, retains the history
// (all of it by default, or a bounded tail under SetLimit — so a
// subscriber that attaches mid-campaign observes the same sequence as
// the persisted log), fans events out to synchronous sinks, and wakes
// blocking subscriber cursors.
//
// Emit is safe for concurrent use, though the scheduler calls it from
// its single event-loop goroutine; sinks run on the emitting goroutine
// under the hub lock, in stream order — they must be fast and must never
// block (RPCs and anything that can stall on I/O belong behind
// AddAsyncSink, which keeps stream order while moving the work to a
// dedicated writer goroutine). Sink errors are the sink's problem:
// recording must never stall scheduling.
type Hub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	start  time.Time
	hist   []Event
	sinks  []func(Event)
	closed bool

	// drains are the Close hooks of registered async sinks, run (outside
	// the lock) by Hub.Close so buffered events are flushed before it
	// returns.
	drains []func()

	// lastSeq is the sequence of the most recently stamped (or restored)
	// event; it keeps counting even when eviction shrinks hist.
	lastSeq uint64
	// limit bounds len(hist); 0 means unbounded.
	limit int
	// evictedNS is the TimeNS of the newest evicted event — the stamp the
	// synthesized Truncated marker carries.
	evictedNS int64
}

// NewHub creates a hub whose monotonic clock starts now.
func NewHub() *Hub {
	h := &Hub{start: time.Now()}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// AddSink registers a synchronous view of the stream. Register sinks
// before events flow; events emitted earlier are not replayed to sinks
// (subscribe with a Cursor for backlog semantics).
func (h *Hub) AddSink(fn func(Event)) {
	if fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sinks = append(h.sinks, fn)
}

// SetLimit bounds the in-memory backlog to at most n events, evicting
// oldest-first (the hub-scaling fix for proteome-sized campaigns: a
// 6,000-worker run emits millions of events and the hub must not hold
// them all). A cursor that falls behind the retained window receives a
// single synthesized Truncated marker and resumes at the oldest retained
// event. n <= 0 restores the default unbounded retention. Sinks (the
// persisted JSONL log) are unaffected — they observe every event as it
// is emitted.
func (h *Hub) SetLimit(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n <= 0 {
		h.limit = 0
		return
	}
	h.limit = n
	h.evict()
}

// evict drops history beyond the limit, oldest first. Caller holds mu.
func (h *Hub) evict() {
	if h.limit <= 0 || len(h.hist) <= h.limit {
		return
	}
	k := len(h.hist) - h.limit
	h.evictedNS = h.hist[k-1].TimeNS
	h.hist = h.hist[k:]
}

// Restore seeds a fresh hub with a previously recorded stream (a
// restarted `sched -event-log` replaying its own log), so sequence
// numbers and monotonic stamps continue where the crashed scheduler
// stopped and late subscribers still see the full campaign backlog.
// Events must be valid with contiguous sequences; the hub must not have
// emitted yet. The monotonic clock is rebased so the next Emit stamps a
// time after the last restored event.
func (h *Hub) Restore(evs []Event) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lastSeq != 0 {
		return fmt.Errorf("events: restore on a hub that already has events")
	}
	for i := range evs {
		e := &evs[i]
		if err := e.Validate(); err != nil {
			return fmt.Errorf("events: restoring event %d: %w", i+1, err)
		}
		want := uint64(i) + 1
		if i > 0 {
			want = evs[i-1].Seq + 1
		}
		if e.Seq != want {
			return fmt.Errorf("events: restoring event %d: sequence %d, want %d", i+1, e.Seq, want)
		}
	}
	if len(evs) == 0 {
		return nil
	}
	h.hist = append([]Event(nil), evs...)
	last := evs[len(evs)-1]
	h.lastSeq = last.Seq
	h.start = time.Now().Add(-time.Duration(last.TimeNS))
	h.evict()
	return nil
}

// Emit stamps e (Seq, TimeNS), appends it to the history, feeds the
// sinks, wakes subscribers, and returns the stamped event. Emitting on a
// closed hub is a no-op returning the zero event.
func (h *Hub) Emit(e Event) Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return Event{}
	}
	h.lastSeq++
	e.Seq = h.lastSeq
	e.TimeNS = time.Since(h.start).Nanoseconds()
	h.hist = append(h.hist, e)
	h.evict()
	for _, fn := range h.sinks {
		fn(e)
	}
	h.cond.Broadcast()
	return e
}

// Len reports the number of events emitted so far.
func (h *Hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.hist)
}

// Snapshot returns a copy of the full event history.
func (h *Hub) Snapshot() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.hist...)
}

// Close wakes every blocked cursor; once the backlog is drained their
// Next returns false. Registered async sinks are then drained and closed
// (outside the hub lock), so when Close returns every event emitted
// before it has been handed to every sink's underlying writer. Close is
// idempotent and does not discard history.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	drains := h.drains
	h.drains = nil
	h.cond.Broadcast()
	h.mu.Unlock()
	for _, d := range drains {
		d()
	}
}

// Subscribe returns a cursor positioned at the start of the stream, so
// a subscriber attaching mid-campaign first replays the backlog and then
// follows the live stream. On a bounded hub whose oldest events were
// already evicted, the cursor's first read yields a Truncated marker and
// resumes at the oldest retained event.
func (h *Hub) Subscribe() *Cursor {
	return &Cursor{h: h, nextSeq: 1}
}

// Cursor is one subscriber's position in the hub's stream, tracked by
// sequence number so oldest-first eviction cannot silently skip or
// re-deliver events.
type Cursor struct {
	h         *Hub
	nextSeq   uint64
	cancelled bool
}

// Next blocks until the next event is available and returns it. It
// returns ok=false once the hub is closed and the backlog is drained, or
// as soon as the cursor is cancelled. When the cursor's position was
// evicted from a bounded backlog, Next returns one synthesized Truncated
// marker (Err states how many events are gone) and continues from the
// oldest retained event.
func (c *Cursor) Next() (Event, bool) {
	h := c.h
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if c.cancelled {
			return Event{}, false
		}
		if c.nextSeq <= h.lastSeq && len(h.hist) > 0 {
			break
		}
		if h.closed {
			return Event{}, false
		}
		h.cond.Wait()
	}
	first := h.hist[0].Seq
	if c.nextSeq < first {
		// The events between the cursor and the retained window were
		// evicted: surface that explicitly instead of silently jumping.
		n := first - c.nextSeq
		marker := Event{
			Seq:    first - 1,
			TimeNS: h.evictedNS,
			Type:   Truncated,
			Err:    fmt.Sprintf("events: %d events evicted from bounded backlog", n),
		}
		c.nextSeq = first
		return marker, true
	}
	e := h.hist[c.nextSeq-first]
	c.nextSeq++
	return e, true
}

// Cancel unblocks a pending Next and makes every future Next return
// false — how a subscriber's pump is torn down when its consumer goes
// away with no events flowing (a detached monitor on an idle
// scheduler). Safe to call from any goroutine, idempotent.
func (c *Cursor) Cancel() {
	h := c.h
	h.mu.Lock()
	defer h.mu.Unlock()
	c.cancelled = true
	h.cond.Broadcast()
}

// LogSink returns a synchronous sink appending every event to w as one
// JSON document per line — the `sched -event-log` format ReadLog
// decodes. Write errors are ignored: logging must never stall the
// scheduler (the same contract as the free-text placement log).
func LogSink(w io.Writer) func(Event) {
	enc := json.NewEncoder(w)
	return func(e Event) { _ = enc.Encode(e) }
}
