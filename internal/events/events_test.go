package events

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTypeValidation(t *testing.T) {
	valid := []Type{TaskReceived, TaskQueued, TaskAssigned, TaskRunning,
		TaskDone, TaskFailed, TaskDropped, TaskQuarantined,
		WorkerJoin, WorkerLeave, WorkerLost, Truncated}
	for _, ty := range valid {
		if !ty.Valid() {
			t.Errorf("%q should be valid", ty)
		}
	}
	for _, ty := range []Type{"", "bogus", "RECEIVED", "worker"} {
		if ty.Valid() {
			t.Errorf("%q should be invalid", ty)
		}
	}
	taskScoped := map[Type]bool{
		TaskReceived: true, TaskQueued: true, TaskAssigned: true, TaskRunning: true,
		TaskDone: true, TaskFailed: true, TaskDropped: true, TaskQuarantined: true,
		WorkerJoin: false, WorkerLeave: false, WorkerLost: false, Truncated: false,
	}
	for ty, want := range taskScoped {
		if ty.TaskScoped() != want {
			t.Errorf("%q.TaskScoped() = %v, want %v", ty, ty.TaskScoped(), want)
		}
	}
}

func TestEventValidate(t *testing.T) {
	tests := []struct {
		name    string
		e       Event
		wantErr bool
	}{
		{"ok task", Event{Type: TaskQueued, Task: "a"}, false},
		{"ok worker", Event{Type: WorkerJoin, Worker: "w1"}, false},
		{"unknown type", Event{Type: "boom", Task: "a"}, true},
		{"task-scoped without task", Event{Type: TaskDone}, true},
		{"worker event without worker", Event{Type: WorkerLeave}, true},
		{"done with worker", Event{Type: TaskDone, Task: "a", Worker: "w1"}, false},
	}
	for _, tt := range tests {
		if err := tt.e.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tt.name, err, tt.wantErr)
		}
	}
}

func TestHubStampsAndRetains(t *testing.T) {
	h := NewHub()
	e1 := h.Emit(Event{Type: WorkerJoin, Worker: "w1"})
	e2 := h.Emit(Event{Type: TaskReceived, Task: "a"})
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("sequence = %d, %d, want 1, 2", e1.Seq, e2.Seq)
	}
	if e2.TimeNS < e1.TimeNS {
		t.Fatalf("stamps not monotonic: %d then %d", e1.TimeNS, e2.TimeNS)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	snap := h.Snapshot()
	if len(snap) != 2 || snap[0] != e1 || snap[1] != e2 {
		t.Fatalf("snapshot %+v does not match emitted events", snap)
	}
	// Snapshot is a copy: mutating it must not corrupt the history.
	snap[0].Task = "mutated"
	if h.Snapshot()[0].Task == "mutated" {
		t.Fatal("Snapshot aliases the hub history")
	}
}

func TestHubSinksRunInOrder(t *testing.T) {
	h := NewHub()
	var got []uint64
	h.AddSink(func(e Event) { got = append(got, e.Seq) })
	h.AddSink(nil) // must be ignored
	for i := 0; i < 5; i++ {
		h.Emit(Event{Type: TaskReceived, Task: "t"})
	}
	if len(got) != 5 {
		t.Fatalf("sink saw %d events, want 5", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("sink order %v", got)
		}
	}
}

// TestCursorBacklogThenLive is the monitor-attach contract: a subscriber
// that arrives mid-stream first replays the full backlog, then follows
// live events, and observes exactly the same sequence as the history.
func TestCursorBacklogThenLive(t *testing.T) {
	h := NewHub()
	for i := 0; i < 3; i++ {
		h.Emit(Event{Type: TaskReceived, Task: "early"})
	}
	cur := h.Subscribe()

	var mu sync.Mutex
	var seen []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			e, ok := cur.Next()
			if !ok {
				return
			}
			mu.Lock()
			seen = append(seen, e)
			mu.Unlock()
		}
	}()

	for i := 0; i < 3; i++ {
		h.Emit(Event{Type: TaskQueued, Task: "late"})
	}
	// Next blocks until Close once the stream is drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber saw %d/6 events", n)
		}
		time.Sleep(time.Millisecond)
	}
	h.Close()
	<-done

	want := h.Snapshot()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("subscriber saw %d events, history has %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("event %d: subscriber saw %+v, history has %+v", i, seen[i], want[i])
		}
	}
}

func TestHubCloseIdempotentAndEmitAfterClose(t *testing.T) {
	h := NewHub()
	h.Emit(Event{Type: TaskReceived, Task: "a"})
	h.Close()
	h.Close()
	if e := h.Emit(Event{Type: TaskReceived, Task: "b"}); e.Seq != 0 {
		t.Fatalf("Emit after Close stamped seq %d, want no-op", e.Seq)
	}
	if h.Len() != 1 {
		t.Fatalf("history grew after Close: %d", h.Len())
	}
	// A fresh cursor still drains the retained history, then stops.
	cur := h.Subscribe()
	if e, ok := cur.Next(); !ok || e.Task != "a" {
		t.Fatalf("cursor after Close: %+v, %v", e, ok)
	}
	if _, ok := cur.Next(); ok {
		t.Fatal("cursor returned an event past the closed history")
	}
}

// TestCursorCancel: cancelling unblocks a pending Next and pins every
// future Next to false — the teardown path of a detached subscriber on
// an idle hub.
func TestCursorCancel(t *testing.T) {
	h := NewHub()
	h.Emit(Event{Type: TaskReceived, Task: "a"})
	cur := h.Subscribe()
	if _, ok := cur.Next(); !ok {
		t.Fatal("backlog event not delivered")
	}

	unblocked := make(chan bool, 1)
	go func() {
		_, ok := cur.Next() // blocks: no more events
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	cur.Cancel()
	select {
	case ok := <-unblocked:
		if ok {
			t.Fatal("cancelled cursor returned an event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Cancel did not unblock Next")
	}
	cur.Cancel() // idempotent
	if _, ok := cur.Next(); ok {
		t.Fatal("Next after Cancel returned an event")
	}

	// Other cursors are unaffected: the hub is still live.
	other := h.Subscribe()
	if e, ok := other.Next(); !ok || e.Task != "a" {
		t.Fatalf("sibling cursor got %+v, %v", e, ok)
	}
	h.Emit(Event{Type: TaskQueued, Task: "a"})
	if e, ok := other.Next(); !ok || e.Type != TaskQueued {
		t.Fatalf("sibling cursor after emit got %+v, %v", e, ok)
	}
}

func TestLogSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := NewHub()
	h.AddSink(LogSink(&buf))
	h.Emit(Event{Type: WorkerJoin, Worker: "w1"})
	h.Emit(Event{Type: TaskReceived, Task: "a"})
	h.Emit(Event{Type: TaskFailed, Task: "a", Worker: "w1", Err: "boom"})

	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("log has %d lines, want 3:\n%s", lines, buf.String())
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := h.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d changed across the log round trip: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadLogErrors(t *testing.T) {
	// Malformed JSON fails with position, returning the intact prefix.
	in := `{"seq":1,"t_ns":10,"type":"received","task":"a"}
{"seq":2,"t_ns":20,"type":"queued","task":"a"}
{not json`
	got, err := ReadLog(strings.NewReader(in))
	if err == nil {
		t.Fatal("truncated log decoded without error")
	}
	if !strings.Contains(err.Error(), "record 3") {
		t.Errorf("error %q does not name record 3", err)
	}
	if len(got) != 2 {
		t.Errorf("intact prefix has %d events, want 2", len(got))
	}

	// Structurally invalid records are rejected too.
	if _, err := ReadLog(strings.NewReader(`{"seq":1,"t_ns":1,"type":"done"}`)); err == nil {
		t.Error("done event without task decoded without error")
	}
	if _, err := ReadLog(strings.NewReader(`{"seq":1,"t_ns":1,"type":"warp","task":"a"}`)); err == nil {
		t.Error("unknown event type decoded without error")
	}

	// Empty logs are fine.
	if got, err := ReadLog(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Errorf("empty log: %v, %v", got, err)
	}
}

func TestEventSeconds(t *testing.T) {
	e := Event{TimeNS: 2_500_000_000}
	if s := e.Seconds(); s != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", s)
	}
}
