package events

import "sort"

// CampaignTally is one campaign's live task counts — the per-tenant row of
// the paper's dashboard view (`proteomectl top`), maintained incrementally
// the way Tracker maintains the global counters.
type CampaignTally struct {
	// Received / Done / Failed / Dropped / Quarantined count outcomes.
	Received, Done, Failed, Dropped, Quarantined int
	// Queued is the campaign's current queue depth; Running its tasks
	// currently assigned to a worker.
	Queued, Running int
}

// Finished reports how many of the campaign's tasks reached a terminal
// state.
func (c CampaignTally) Finished() int { return c.Done + c.Failed + c.Dropped }

// CampaignView folds an event stream into per-campaign tallies, one event
// at a time and in stream order. Events without a campaign (single-tenant
// submitters) accumulate under the empty name, so the view always accounts
// for every task-scoped event it sees.
type CampaignView struct {
	tallies map[string]*CampaignTally
}

// NewCampaignView returns an empty view.
func NewCampaignView() *CampaignView {
	return &CampaignView{tallies: make(map[string]*CampaignTally)}
}

// Observe advances the view by one event. The counting rules mirror
// Tracker: a queued event with Attempt > 0 is a requeue pulling an
// in-flight task back onto the queue, assigned moves queued → running,
// done/failed retire a running task, dropped retires a queued one, and a
// quarantine's terminal failed arrives without a matching queued.
func (v *CampaignView) Observe(e Event) {
	if !e.Type.TaskScoped() {
		return
	}
	c := v.tallies[e.Campaign]
	if c == nil {
		c = &CampaignTally{}
		v.tallies[e.Campaign] = c
	}
	switch e.Type {
	case TaskReceived:
		c.Received++
	case TaskQueued:
		c.Queued++
		if e.Attempt > 0 && c.Running > 0 {
			c.Running--
		}
	case TaskAssigned:
		if c.Queued > 0 {
			c.Queued--
		}
		c.Running++
	case TaskDone:
		c.Done++
		if c.Running > 0 {
			c.Running--
		}
	case TaskFailed:
		c.Failed++
		if c.Running > 0 {
			c.Running--
		}
	case TaskDropped:
		c.Dropped++
		if c.Queued > 0 {
			c.Queued--
		}
	case TaskQuarantined:
		c.Quarantined++
	}
}

// Campaigns returns the campaign names seen so far, sorted, with the
// unnamed (empty) campaign first when present.
func (v *CampaignView) Campaigns() []string {
	names := make([]string, 0, len(v.tallies))
	for name := range v.tallies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Tally returns the counts for one campaign (zero value when unseen).
func (v *CampaignView) Tally(campaign string) CampaignTally {
	if c := v.tallies[campaign]; c != nil {
		return *c
	}
	return CampaignTally{}
}
