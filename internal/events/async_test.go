package events

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestAsyncSinkPreservesStreamOrder: the async stage changes where sink
// I/O runs, not what it observes — after a clean Close the wrapped sink
// has seen exactly the emit order, same as a synchronous sink.
func TestAsyncSinkPreservesStreamOrder(t *testing.T) {
	h := NewHub()
	var got []uint64
	h.AddAsyncSink(func(e Event) { got = append(got, e.Seq) }, 0)
	h.AddAsyncSink(nil, 0) // must be ignored
	const n = 1000
	for i := 0; i < n; i++ {
		h.Emit(Event{Type: TaskReceived, Task: "t"})
	}
	h.Close() // drains; also the happens-before edge for reading got
	if len(got) != n {
		t.Fatalf("sink saw %d events, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != uint64(i)+1 {
			t.Fatalf("event %d has seq %d, want %d (order not preserved)", i, seq, uint64(i)+1)
		}
	}
}

// TestAsyncSinkDrainOnClose: events buffered but unwritten when Close is
// called are flushed before Close returns — the clean-shutdown guarantee
// `sched -event-log` relies on.
func TestAsyncSinkDrainOnClose(t *testing.T) {
	h := NewHub()
	var buf bytes.Buffer
	gate := make(chan struct{})
	first := true
	h.AddAsyncSink(func(e Event) {
		if first {
			first = false
			<-gate // hold the writer so events pile up in the buffer
		}
		LogSink(&buf)(e)
	}, 64)
	for i := 0; i < 20; i++ {
		h.Emit(Event{Type: TaskReceived, Task: "t"})
	}
	close(gate)
	h.Close()
	logged, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) != 20 {
		t.Fatalf("drained log has %d events, want 20", len(logged))
	}
}

// TestAsyncSinkDropsAndMarker: a full buffer drops events (the emitter
// must never stall) and Close surfaces the loss as one synthesized
// Truncated marker carrying the count and the last offered stamp.
func TestAsyncSinkDropsAndMarker(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	gate := make(chan struct{})
	started := make(chan struct{})
	a := NewAsyncSink(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
		select {
		case <-started:
		default:
			close(started)
		}
		<-gate
	}, 2)
	// First event occupies the writer, two fill the buffer, the rest drop.
	a.Sink(Event{Seq: 1, TimeNS: 10, Type: TaskReceived, Task: "t"})
	<-started
	for seq := uint64(2); seq <= 6; seq++ {
		a.Sink(Event{Seq: seq, TimeNS: int64(seq * 10), Type: TaskReceived, Task: "t"})
	}
	if d := a.Dropped(); d == 0 {
		t.Fatal("no drops against a blocked writer and a 2-deep buffer")
	}
	close(gate)
	a.Close()
	a.Close() // idempotent

	mu.Lock()
	defer mu.Unlock()
	last := got[len(got)-1]
	if last.Type != Truncated {
		t.Fatalf("last event is %s, want a %s marker", last.Type, Truncated)
	}
	if last.Seq != 6 || last.TimeNS != 60 {
		t.Fatalf("marker stamped Seq=%d TimeNS=%d, want the last offered event's 6/60", last.Seq, last.TimeNS)
	}
	if !strings.Contains(last.Err, "dropped by async sink") {
		t.Fatalf("marker error %q does not state the loss", last.Err)
	}
	// Everything that was not dropped arrived, in order.
	var want uint64
	for _, e := range got[:len(got)-1] {
		if e.Seq <= want {
			t.Fatalf("out-of-order delivery: seq %d after %d", e.Seq, want)
		}
		want = e.Seq
	}
	if int(want) != 3+int(6-3-a.Dropped()) {
		// 1 in-flight + 2 buffered before drops began; exact survivors
		// depend on scheduling, so just require consistency.
		t.Logf("survivors end at seq %d with %d dropped", want, a.Dropped())
	}
}

// TestAsyncSinkNoDropsNoMarker: a clean run must not synthesize a marker
// — the persisted log stays decodable as a complete contiguous stream.
func TestAsyncSinkNoDropsNoMarker(t *testing.T) {
	h := NewHub()
	var buf bytes.Buffer
	a := h.AddAsyncSink(LogSink(&buf), 0)
	for i := 0; i < 50; i++ {
		h.Emit(Event{Type: TaskReceived, Task: "t"})
	}
	h.Close()
	if d := a.Dropped(); d != 0 {
		t.Fatalf("dropped %d events with a fast sink", d)
	}
	logged, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) != 50 {
		t.Fatalf("log has %d events, want 50", len(logged))
	}
	for _, e := range logged {
		if e.Type == Truncated {
			t.Fatal("clean stream contains a truncated marker")
		}
	}
	// Hub.Close already drained the sink; a later direct Close is a no-op.
	a.Close()
}

// TestAddAsyncSinkOnClosedHub: registering on a closed hub returns an
// already-closed sink instead of leaking its writer goroutine.
func TestAddAsyncSinkOnClosedHub(t *testing.T) {
	h := NewHub()
	h.Close()
	var called bool
	a := h.AddAsyncSink(func(Event) { called = true }, 4)
	a.Sink(Event{Seq: 1, Type: TaskReceived, Task: "t"}) // no-op after close
	a.Close()
	if called {
		t.Fatal("sink function ran on a closed hub")
	}
	if a.Dropped() != 0 {
		t.Fatalf("Dropped = %d on an unused sink", a.Dropped())
	}
}
