package events

import (
	"bytes"
	"testing"
)

// FuzzReadLog hardens the JSONL event-log decoder: `proteomectl` tools
// replay logs from disk, so arbitrary bytes must yield either valid
// events or an error — never a panic — and whatever decodes must survive
// a write/read round trip through the LogSink encoding.
func FuzzReadLog(f *testing.F) {
	f.Add([]byte(`{"seq":1,"t_ns":0,"type":"worker_join","worker":"w1"}
{"seq":2,"t_ns":100,"type":"received","task":"DVU_00001"}
{"seq":3,"t_ns":100,"type":"queued","task":"DVU_00001"}
{"seq":4,"t_ns":250,"type":"assigned","task":"DVU_00001","worker":"w1"}
{"seq":5,"t_ns":251,"type":"running","task":"DVU_00001","worker":"w1"}
{"seq":6,"t_ns":9000,"type":"done","task":"DVU_00001","worker":"w1"}
`))
	f.Add([]byte(`{"seq":1,"t_ns":5,"type":"failed","task":"a/m3","worker":"w2","error":"boom"}`))
	f.Add([]byte(`{"seq":1,"t_ns":5,"type":"dropped","task":"a"}`))
	f.Add([]byte(`{"seq":1,"t_ns":5,"type":"worker_leave","worker":"w9"}`))
	f.Add([]byte(`{"seq":1,"t_ns":5,"type":"worker_lost","worker":"w1","error":"silent for 300ms"}`))
	f.Add([]byte(`{"seq":1,"t_ns":5,"type":"quarantined","task":"DVU_00001","attempt":3}`))
	f.Add([]byte(`{"seq":1,"t_ns":5,"type":"truncated","error":"events: 6 events evicted from bounded backlog"}`))
	f.Add([]byte(`{"seq":1,"t_ns":5,"type":"failed","task":"a","error":"retry budget 2","attempt":3}
{"seq":2,"t_ns":6,"type":"quarantined","task":"a","attempt":3}`))
	f.Add([]byte(`{"seq":18446744073709551615,"t_ns":-1,"type":"queued","task":"x"}`))
	f.Add([]byte(`{"type":"done"}`))
	f.Add([]byte(`{"type":"warp","task":"a"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"seq\":1,\"t_ns\":1,\"type\":\"queued\",\"task\":\"a\"}\n{broken"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadLog(bytes.NewReader(data))
		for i := range evs {
			// Every returned event is structurally valid, error or not
			// (a failing log still returns its intact prefix).
			if verr := evs[i].Validate(); verr != nil {
				t.Fatalf("ReadLog returned invalid event %d: %v", i, verr)
			}
		}
		if err != nil {
			return
		}
		// Valid logs round-trip through the LogSink encoding.
		var buf bytes.Buffer
		sink := LogSink(&buf)
		for _, e := range evs {
			sink(e)
		}
		again, err := ReadLog(&buf)
		if err != nil {
			t.Fatalf("re-reading re-encoded log: %v", err)
		}
		if len(again) != len(evs) {
			t.Fatalf("round trip changed event count: %d != %d", len(again), len(evs))
		}
		for i := range evs {
			if again[i] != evs[i] {
				t.Fatalf("event %d changed across round trip: %+v != %+v", i, again[i], evs[i])
			}
		}
	})
}
