package events

import (
	"fmt"
	"sync"
)

// DefaultAsyncDepth is the buffer bound an AsyncSink gets when no depth
// is given — sized so a full campaign wave of transitions queues without
// drops while the file system absorbs a write stall.
const DefaultAsyncDepth = 1 << 15

// AsyncSink decouples a sink from the emitting goroutine: Sink enqueues
// onto a bounded buffer and returns immediately, and a dedicated writer
// goroutine invokes the wrapped function — so `sched -event-log` file
// I/O (or any slow view) never runs on the scheduler's dispatch path.
//
// Ordering: the Hub calls Sink under its lock in stream order, the
// buffer is FIFO, and one goroutine drains it — so the wrapped sink
// observes exactly the emit order, same as a synchronous sink. What
// changes is durability, not order: events an AsyncSink has buffered but
// not yet written are lost on a crash (a cleanly closed hub drains them,
// see Close), and under sustained overload the bounded buffer drops
// events rather than stall the emitter. Drops are counted and surfaced
// at Close as one synthesized Truncated marker, so a reader of the log
// can tell "complete" from "gapped" — but a gapped log no longer has
// contiguous sequences and cannot seed Hub.Restore.
type AsyncSink struct {
	fn   func(Event)
	ch   chan Event
	done chan struct{}

	closeOnce sync.Once

	mu      sync.Mutex
	closed  bool
	dropped uint64
	lastSeq uint64
	lastNS  int64
}

// NewAsyncSink wraps fn with a buffer of the given depth (<= 0 selects
// DefaultAsyncDepth) and starts the writer goroutine. Callers that do
// not route through Hub.AddAsyncSink must Close the sink themselves.
func NewAsyncSink(fn func(Event), depth int) *AsyncSink {
	if depth <= 0 {
		depth = DefaultAsyncDepth
	}
	a := &AsyncSink{
		fn:   fn,
		ch:   make(chan Event, depth),
		done: make(chan struct{}),
	}
	go a.run()
	return a
}

func (a *AsyncSink) run() {
	defer close(a.done)
	for e := range a.ch {
		a.fn(e)
	}
}

// Sink enqueues one event; it never blocks. When the buffer is full the
// event is dropped and counted — the emitter must not stall on a slow
// view. Safe for concurrent use; no-op after Close.
func (a *AsyncSink) Sink(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.lastSeq, a.lastNS = e.Seq, e.TimeNS
	select {
	case a.ch <- e:
	default:
		a.dropped++
	}
}

// Dropped reports how many events were discarded because the buffer was
// full when they arrived.
func (a *AsyncSink) Dropped() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// Close stops intake, blocks until every buffered event has been written
// (the flush-and-drain a clean shutdown relies on), and — when events
// were dropped — appends one synthesized Truncated marker stating how
// many, stamped with the Seq/TimeNS of the last event offered so the gap
// is attributable. Idempotent; concurrent callers block until the first
// Close completes.
func (a *AsyncSink) Close() {
	a.closeOnce.Do(func() {
		a.mu.Lock()
		a.closed = true
		dropped, seq, ns := a.dropped, a.lastSeq, a.lastNS
		a.mu.Unlock()
		close(a.ch)
		<-a.done
		if dropped > 0 {
			a.fn(Event{
				Seq:    seq,
				TimeNS: ns,
				Type:   Truncated,
				Err:    fmt.Sprintf("events: %d events dropped by async sink", dropped),
			})
		}
	})
}

// AddAsyncSink registers fn behind an AsyncSink (depth <= 0 selects
// DefaultAsyncDepth) and returns it. The hub drains and closes the sink
// inside Hub.Close, after waking subscribers — so a scheduler that shuts
// down cleanly persists its complete stream even though the writes were
// asynchronous. On an already-closed hub the sink is closed immediately.
func (h *Hub) AddAsyncSink(fn func(Event), depth int) *AsyncSink {
	if fn == nil {
		return nil
	}
	a := NewAsyncSink(fn, depth)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		a.Close()
		return a
	}
	h.sinks = append(h.sinks, a.Sink)
	h.drains = append(h.drains, a.Close)
	h.mu.Unlock()
	return a
}
