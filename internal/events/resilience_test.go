package events

import (
	"bytes"
	"strings"
	"testing"
)

// emitN emits n task events ("t001"...) and returns the hub.
func emitN(t *testing.T, h *Hub, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		h.Emit(Event{Type: TaskReceived, Task: taskName(i)})
	}
}

func taskName(i int) string {
	return "t" + string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func TestHubBoundedBacklogEvictsOldest(t *testing.T) {
	h := NewHub()
	h.SetLimit(5)
	emitN(t, h, 12)
	snap := h.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("retained %d events, want 5", len(snap))
	}
	if snap[0].Seq != 8 || snap[4].Seq != 12 {
		t.Fatalf("retained window [%d, %d], want [8, 12]", snap[0].Seq, snap[4].Seq)
	}
	// Sequence numbering keeps counting past eviction.
	e := h.Emit(Event{Type: TaskReceived, Task: "late"})
	if e.Seq != 13 {
		t.Fatalf("next Seq = %d, want 13", e.Seq)
	}
}

func TestHubBoundedBacklogSinksSeeEverything(t *testing.T) {
	h := NewHub()
	h.SetLimit(3)
	var buf bytes.Buffer
	h.AddSink(LogSink(&buf))
	emitN(t, h, 10)
	logged, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(logged) != 10 {
		t.Fatalf("sink recorded %d events, want all 10 despite limit 3", len(logged))
	}
}

func TestCursorTruncatedMarkerAfterEviction(t *testing.T) {
	h := NewHub()
	h.SetLimit(4)
	emitN(t, h, 10)
	h.Close()
	cur := h.Subscribe()
	first, ok := cur.Next()
	if !ok {
		t.Fatal("cursor returned no events")
	}
	if first.Type != Truncated {
		t.Fatalf("first event type %q, want truncated marker", first.Type)
	}
	if first.Seq != 6 {
		t.Fatalf("marker Seq = %d, want 6 (events 1-6 evicted)", first.Seq)
	}
	if !strings.Contains(first.Err, "6 events evicted") {
		t.Fatalf("marker Err = %q, want eviction count", first.Err)
	}
	var got []Event
	for {
		e, ok := cur.Next()
		if !ok {
			break
		}
		got = append(got, e)
	}
	if len(got) != 4 {
		t.Fatalf("cursor delivered %d events after marker, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d", i, e.Seq, want)
		}
	}
	// The marker + retained tail still replays as a valid stream
	// (strictly increasing sequences), so a monitor's JSONL capture that
	// starts with the marker remains replayable.
	if _, err := ReplayEvents(append([]Event{first}, got...)); err != nil {
		t.Fatalf("ReplayEvents on marker-prefixed stream: %v", err)
	}
}

func TestCursorNoMarkerWithoutEviction(t *testing.T) {
	h := NewHub()
	h.SetLimit(10)
	emitN(t, h, 5)
	h.Close()
	cur := h.Subscribe()
	e, ok := cur.Next()
	if !ok || e.Type == Truncated {
		t.Fatalf("first event = %v ok=%v, want plain first event", e, ok)
	}
	if e.Seq != 1 {
		t.Fatalf("first Seq = %d, want 1", e.Seq)
	}
}

func TestHubRestoreContinuesStream(t *testing.T) {
	// Record a stream on one hub (the crashed scheduler)...
	h1 := NewHub()
	h1.Emit(Event{Type: WorkerJoin, Worker: "w1"})
	h1.Emit(Event{Type: TaskReceived, Task: "a"})
	h1.Emit(Event{Type: TaskQueued, Task: "a"})
	recorded := h1.Snapshot()

	// ...and restore it into a fresh one (the restarted scheduler).
	h2 := NewHub()
	if err := h2.Restore(recorded); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	e := h2.Emit(Event{Type: TaskAssigned, Task: "a", Worker: "w1"})
	if e.Seq != 4 {
		t.Fatalf("post-restore Seq = %d, want 4", e.Seq)
	}
	if e.TimeNS < recorded[2].TimeNS {
		t.Fatalf("post-restore stamp %d went backwards (last restored %d)", e.TimeNS, recorded[2].TimeNS)
	}
	// A subscriber attaching after the restart replays the full stream.
	h2.Close()
	cur := h2.Subscribe()
	var seqs []uint64
	for {
		ev, ok := cur.Next()
		if !ok {
			break
		}
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != 4 || seqs[0] != 1 || seqs[3] != 4 {
		t.Fatalf("restored backlog seqs = %v, want [1 2 3 4]", seqs)
	}
	if _, err := ReplayEvents(h2.Snapshot()); err != nil {
		t.Fatalf("ReplayEvents across restore: %v", err)
	}
}

func TestHubRestoreRejectsBadStreams(t *testing.T) {
	h := NewHub()
	if err := h.Restore([]Event{{Seq: 2, Type: TaskReceived, Task: "a"}}); err == nil {
		t.Fatal("Restore accepted a stream not starting at seq 1")
	}
	h = NewHub()
	if err := h.Restore([]Event{
		{Seq: 1, Type: TaskReceived, Task: "a"},
		{Seq: 3, Type: TaskQueued, Task: "a"},
	}); err == nil {
		t.Fatal("Restore accepted a gapped stream")
	}
	h = NewHub()
	h.Emit(Event{Type: WorkerJoin, Worker: "w"})
	if err := h.Restore([]Event{{Seq: 1, Type: TaskReceived, Task: "a"}}); err == nil {
		t.Fatal("Restore accepted a hub that already emitted")
	}
}

func TestCompletedSet(t *testing.T) {
	evs := []Event{
		{Seq: 1, Type: TaskReceived, Task: "a"},
		{Seq: 2, Type: TaskQueued, Task: "a"},
		{Seq: 3, Type: TaskDone, Task: "a", Worker: "w1"},
		{Seq: 4, Type: TaskReceived, Task: "b"},
		{Seq: 5, Type: TaskFailed, Task: "b", Worker: "w1", Err: "boom"},
		{Seq: 6, Type: TaskReceived, Task: "c"},
		{Seq: 7, Type: TaskQuarantined, Task: "c", Attempt: 3},
		{Seq: 8, Type: TaskReceived, Task: "d"},
	}
	set := CompletedFromEvents(evs)
	if !set.Done("a") {
		t.Error("done task a not in completed set")
	}
	for _, task := range []string{"b", "c", "d", "nope", ""} {
		if set.Done(task) {
			t.Errorf("task %q should not be completed", task)
		}
	}
	if set.Len() != 1 {
		t.Errorf("Len = %d, want 1", set.Len())
	}
	set.AddAll([]string{"x", "y", ""})
	other := NewCompletedSet()
	other.Add("z")
	set.Merge(other)
	if set.Len() != 4 || !set.Done("x") || !set.Done("z") {
		t.Errorf("after AddAll+Merge: Len=%d x=%v z=%v", set.Len(), set.Done("x"), set.Done("z"))
	}
}

func TestCompletedFromLog(t *testing.T) {
	var buf bytes.Buffer
	h := NewHub()
	h.AddSink(LogSink(&buf))
	h.Emit(Event{Type: TaskReceived, Task: "a"})
	h.Emit(Event{Type: TaskDone, Task: "a", Worker: "w1"})
	h.Emit(Event{Type: TaskReceived, Task: "b"})
	// Simulate a kill mid-write: the final record is torn.
	data := buf.Bytes()
	torn := append(append([]byte(nil), data...), []byte(`{"seq":4,"t_ns":9,"type":"do`)...)

	set, err := CompletedFromLog(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("CompletedFromLog on torn log: %v", err)
	}
	if !set.Done("a") || set.Done("b") || set.Len() != 1 {
		t.Fatalf("torn log resume: a=%v b=%v len=%d", set.Done("a"), set.Done("b"), set.Len())
	}

	// A log yielding nothing at all fails loudly (wrong file).
	if _, err := CompletedFromLog(strings.NewReader("not a log\n")); err == nil {
		t.Fatal("CompletedFromLog accepted a non-log file")
	}
}

func TestTrackerAndReplayNewTypes(t *testing.T) {
	evs := []Event{
		{Seq: 1, Type: WorkerJoin, Worker: "w1"},
		{Seq: 2, Type: TaskReceived, Task: "a"},
		{Seq: 3, Type: TaskQueued, Task: "a"},
		{Seq: 4, Type: TaskAssigned, Task: "a", Worker: "w1", TimeNS: 10},
		{Seq: 5, Type: TaskRunning, Task: "a", Worker: "w1", TimeNS: 11},
		{Seq: 6, Type: WorkerLost, Worker: "w1", Err: "silent", TimeNS: 20},
		{Seq: 7, Type: TaskFailed, Task: "a", Err: "quarantined", Attempt: 1, TimeNS: 21},
		{Seq: 8, Type: TaskQuarantined, Task: "a", Attempt: 1, TimeNS: 21},
	}
	r, err := ReplayEvents(evs)
	if err != nil {
		t.Fatalf("ReplayEvents: %v", err)
	}
	if r.Quarantined != 1 || r.Failed != 1 {
		t.Fatalf("Quarantined=%d Failed=%d, want 1 and 1", r.Quarantined, r.Failed)
	}
	// The worker-lost event closed the open interval as Lost.
	if len(r.Intervals) != 1 || !r.Intervals[0].Lost || r.Intervals[0].EndNS != 20 {
		t.Fatalf("intervals = %+v, want one Lost interval ending at 20", r.Intervals)
	}
	// The tracker dropped the lost worker from the live set.
	tr := NewTracker()
	for _, e := range evs {
		tr.Observe(e)
	}
	if len(tr.Workers) != 0 {
		t.Fatalf("tracker still lists workers %v after worker_lost", tr.Workers)
	}
	if tr.Quarantined != 1 {
		t.Fatalf("tracker Quarantined = %d, want 1", tr.Quarantined)
	}
}
