package events

import (
	"reflect"
	"testing"
)

// stream stamps a hand-written event sequence the way a Hub would, so
// replay tests read as scheduler scenarios.
func stream(evs ...Event) []Event {
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
	return evs
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Event{Type: WorkerJoin, Worker: "w1", TimeNS: 1})
	tr.Observe(Event{Type: TaskReceived, Task: "a", TimeNS: 2})
	tr.Observe(Event{Type: TaskQueued, Task: "a", TimeNS: 2})
	if tr.QueueDepth != 1 || tr.Received != 1 {
		t.Fatalf("after queue: depth=%d received=%d", tr.QueueDepth, tr.Received)
	}
	tr.Observe(Event{Type: TaskAssigned, Task: "a", Worker: "w1", TimeNS: 3})
	tr.Observe(Event{Type: TaskRunning, Task: "a", Worker: "w1", TimeNS: 3})
	if tr.QueueDepth != 0 || tr.Busy() != 1 || tr.InFlight["a"] != "w1" {
		t.Fatalf("after assign: depth=%d busy=%d inflight=%v", tr.QueueDepth, tr.Busy(), tr.InFlight)
	}
	tr.Observe(Event{Type: TaskDone, Task: "a", Worker: "w1", TimeNS: 9})
	if tr.Done != 1 || tr.Busy() != 0 || tr.LastNS != 9 {
		t.Fatalf("after done: done=%d busy=%d last=%d", tr.Done, tr.Busy(), tr.LastNS)
	}
	tr.Observe(Event{Type: WorkerLeave, Worker: "w1", TimeNS: 10})
	if len(tr.Workers) != 0 {
		t.Fatalf("worker set after leave: %v", tr.Workers)
	}
}

func TestTrackerRequeueAndDrop(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Event{Type: TaskQueued, Task: "a"})
	tr.Observe(Event{Type: TaskAssigned, Task: "a", Worker: "w1"})
	// Worker dies: the scheduler requeues the in-flight task.
	tr.Observe(Event{Type: WorkerLeave, Worker: "w1"})
	tr.Observe(Event{Type: TaskQueued, Task: "a"})
	if tr.QueueDepth != 1 || tr.Busy() != 0 {
		t.Fatalf("after requeue: depth=%d busy=%d", tr.QueueDepth, tr.Busy())
	}
	tr.Observe(Event{Type: TaskDropped, Task: "a"})
	if tr.QueueDepth != 0 || tr.Dropped != 1 {
		t.Fatalf("after drop: depth=%d dropped=%d", tr.QueueDepth, tr.Dropped)
	}
	// Defensive: depth never goes negative on a malformed stream.
	tr.Observe(Event{Type: TaskDropped, Task: "b"})
	tr.Observe(Event{Type: TaskAssigned, Task: "c", Worker: "w2"})
	if tr.QueueDepth != 0 {
		t.Fatalf("depth went negative: %d", tr.QueueDepth)
	}
}

// TestReplayReconstructsRun is the core offline-reconstruction contract:
// a log alone yields the per-worker busy intervals and the queue-depth
// series of the campaign.
func TestReplayReconstructsRun(t *testing.T) {
	evs := stream(
		Event{TimeNS: 0, Type: WorkerJoin, Worker: "w1"},
		Event{TimeNS: 1, Type: WorkerJoin, Worker: "w2"},
		Event{TimeNS: 10, Type: TaskReceived, Task: "a"},
		Event{TimeNS: 10, Type: TaskQueued, Task: "a"},
		Event{TimeNS: 10, Type: TaskReceived, Task: "b"},
		Event{TimeNS: 10, Type: TaskQueued, Task: "b"},
		Event{TimeNS: 11, Type: TaskAssigned, Task: "a", Worker: "w1"},
		Event{TimeNS: 12, Type: TaskRunning, Task: "a", Worker: "w1"},
		Event{TimeNS: 13, Type: TaskAssigned, Task: "b", Worker: "w2"},
		Event{TimeNS: 13, Type: TaskRunning, Task: "b", Worker: "w2"},
		Event{TimeNS: 50, Type: TaskDone, Task: "a", Worker: "w1"},
		Event{TimeNS: 60, Type: TaskFailed, Task: "b", Worker: "w2", Err: "boom"},
	)
	r, err := ReplayEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != len(evs) || r.SpanNS != 60 {
		t.Fatalf("events=%d span=%d", r.Events, r.SpanNS)
	}
	if !reflect.DeepEqual(r.Tasks, []string{"a", "b"}) {
		t.Fatalf("tasks = %v", r.Tasks)
	}
	if !reflect.DeepEqual(r.Workers, []string{"w1", "w2"}) {
		t.Fatalf("workers = %v", r.Workers)
	}
	wantIntervals := []Interval{
		{Task: "a", Worker: "w1", StartNS: 12, EndNS: 50},
		{Task: "b", Worker: "w2", StartNS: 13, EndNS: 60, Failed: true},
	}
	if !reflect.DeepEqual(r.Intervals, wantIntervals) {
		t.Fatalf("intervals = %+v", r.Intervals)
	}
	wantDepth := []DepthPoint{
		{TimeNS: 10, Depth: 2},
		{TimeNS: 11, Depth: 1},
		{TimeNS: 13, Depth: 0},
	}
	if !reflect.DeepEqual(r.Depth, wantDepth) {
		t.Fatalf("depth = %+v", r.Depth)
	}
	if r.Done != 1 || r.Failed != 1 || r.MaxDepth() != 2 {
		t.Fatalf("done=%d failed=%d maxdepth=%d", r.Done, r.Failed, r.MaxDepth())
	}
	busy := r.WorkerBusyNS()
	if busy["w1"] != 38 || busy["w2"] != 47 {
		t.Fatalf("busy = %v", busy)
	}
	s, e := r.Intervals[0].Seconds()
	if s != 12e-9 || e != 50e-9 {
		t.Fatalf("Seconds() = %v, %v", s, e)
	}
}

// TestReplayWorkerDeath: a worker dying mid-task closes its interval at
// the leave stamp (Lost) and the requeued task runs again elsewhere.
func TestReplayWorkerDeath(t *testing.T) {
	evs := stream(
		Event{TimeNS: 0, Type: WorkerJoin, Worker: "w1"},
		Event{TimeNS: 0, Type: WorkerJoin, Worker: "w2"},
		Event{TimeNS: 5, Type: TaskReceived, Task: "a"},
		Event{TimeNS: 5, Type: TaskQueued, Task: "a"},
		Event{TimeNS: 6, Type: TaskAssigned, Task: "a", Worker: "w1"},
		Event{TimeNS: 6, Type: TaskRunning, Task: "a", Worker: "w1"},
		Event{TimeNS: 20, Type: WorkerLeave, Worker: "w1"},
		Event{TimeNS: 20, Type: TaskQueued, Task: "a"},
		Event{TimeNS: 21, Type: TaskAssigned, Task: "a", Worker: "w2"},
		Event{TimeNS: 21, Type: TaskRunning, Task: "a", Worker: "w2"},
		Event{TimeNS: 40, Type: TaskDone, Task: "a", Worker: "w2"},
	)
	r, err := ReplayEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	wantIntervals := []Interval{
		{Task: "a", Worker: "w1", StartNS: 6, EndNS: 20, Lost: true},
		{Task: "a", Worker: "w2", StartNS: 21, EndNS: 40},
	}
	if !reflect.DeepEqual(r.Intervals, wantIntervals) {
		t.Fatalf("intervals = %+v", r.Intervals)
	}
	// Depth: queued(1) → assigned(0) → requeue(1) → assigned(0).
	wantDepth := []DepthPoint{
		{TimeNS: 5, Depth: 1},
		{TimeNS: 6, Depth: 0},
		{TimeNS: 20, Depth: 1},
		{TimeNS: 21, Depth: 0},
	}
	if !reflect.DeepEqual(r.Depth, wantDepth) {
		t.Fatalf("depth = %+v", r.Depth)
	}
	if r.Done != 1 {
		t.Fatalf("done = %d", r.Done)
	}
}

func TestReplayRejectsBadStreams(t *testing.T) {
	// Non-increasing sequence numbers.
	bad := []Event{
		{Seq: 1, Type: TaskQueued, Task: "a"},
		{Seq: 1, Type: TaskAssigned, Task: "a", Worker: "w"},
	}
	if _, err := ReplayEvents(bad); err == nil {
		t.Error("replay accepted a repeated sequence number")
	}
	// Invalid event inside the stream.
	bad = []Event{
		{Seq: 1, Type: TaskQueued, Task: "a"},
		{Seq: 2, Type: TaskDone},
	}
	if _, err := ReplayEvents(bad); err == nil {
		t.Error("replay accepted an invalid event")
	}
	// An empty stream replays to an empty result.
	r, err := ReplayEvents(nil)
	if err != nil || r.Events != 0 || len(r.Intervals) != 0 {
		t.Errorf("empty replay: %+v, %v", r, err)
	}
}

// TestReplayDoneForUnknownTask: completions the replay never saw
// assigned still count, but produce no interval.
func TestReplayDoneForUnknownTask(t *testing.T) {
	r, err := ReplayEvents(stream(
		Event{TimeNS: 1, Type: TaskDone, Task: "ghost", Worker: "w1"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if r.Done != 1 || len(r.Intervals) != 0 {
		t.Fatalf("done=%d intervals=%d", r.Done, len(r.Intervals))
	}
}
