package events

import (
	"fmt"
	"io"

	"encoding/json"
)

// ReadLog decodes a JSONL event log (the LogSink format): one JSON event
// per line, in stream order. Every record is validated structurally; a
// malformed or invalid record fails with its 1-based position. The
// events decoded before the failure are returned alongside the error, so
// a log truncated by a killed scheduler still replays its intact prefix.
func ReadLog(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("events: decoding log record %d: %w", len(out)+1, err)
		}
		if err := e.Validate(); err != nil {
			return out, fmt.Errorf("events: log record %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}
