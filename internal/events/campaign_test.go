package events

import (
	"reflect"
	"testing"
)

func TestCampaignViewTallies(t *testing.T) {
	v := NewCampaignView()
	obs := func(typ Type, task, campaign string, attempt int) {
		v.Observe(Event{Type: typ, Task: task, Campaign: campaign, Attempt: attempt})
	}
	// Campaign "dvu": one task completes normally, one is mid-flight.
	obs(TaskReceived, "a", "dvu", 0)
	obs(TaskQueued, "a", "dvu", 0)
	obs(TaskAssigned, "a", "dvu", 0)
	obs(TaskRunning, "a", "dvu", 0)
	obs(TaskDone, "a", "dvu", 0)
	obs(TaskReceived, "b", "dvu", 0)
	obs(TaskQueued, "b", "dvu", 0)
	obs(TaskAssigned, "b", "dvu", 0)
	// Unnamed campaign: requeue after a worker death, then quarantine.
	obs(TaskReceived, "x", "", 0)
	obs(TaskQueued, "x", "", 0)
	obs(TaskAssigned, "x", "", 0)
	obs(TaskQueued, "x", "", 1) // requeue: running -> queued
	obs(TaskAssigned, "x", "", 0)
	obs(TaskFailed, "x", "", 2)
	obs(TaskQuarantined, "x", "", 2)
	// Worker events are fleet-scoped and must not disturb tallies.
	v.Observe(Event{Type: WorkerJoin, Worker: "w1"})
	v.Observe(Event{Type: WorkerLost, Worker: "w1"})

	if got, want := v.Campaigns(), []string{"", "dvu"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Campaigns() = %v, want %v", got, want)
	}
	if got, want := v.Tally("dvu"), (CampaignTally{Received: 2, Done: 1, Running: 1}); got != want {
		t.Errorf("dvu tally = %+v, want %+v", got, want)
	}
	if got, want := v.Tally(""), (CampaignTally{Received: 1, Failed: 1, Quarantined: 1}); got != want {
		t.Errorf("unnamed tally = %+v, want %+v", got, want)
	}
	if got := v.Tally("dvu").Finished(); got != 1 {
		t.Errorf("dvu Finished() = %d, want 1", got)
	}
	if got := v.Tally("never-seen"); got != (CampaignTally{}) {
		t.Errorf("unseen tally = %+v, want zero", got)
	}
}

func TestCampaignViewDropRetiresQueued(t *testing.T) {
	v := NewCampaignView()
	v.Observe(Event{Type: TaskReceived, Task: "a", Campaign: "c"})
	v.Observe(Event{Type: TaskQueued, Task: "a", Campaign: "c"})
	v.Observe(Event{Type: TaskDropped, Task: "a", Campaign: "c"})
	got := v.Tally("c")
	if got.Queued != 0 || got.Dropped != 1 {
		t.Fatalf("tally after drop = %+v, want queued 0 dropped 1", got)
	}
}
