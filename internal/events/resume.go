package events

import (
	"fmt"
	"io"
)

// CompletedSet is the skip-set a resumed campaign consults: the trace
// identities of tasks a previous (interrupted) run already completed.
// Because every stage value is a pure function of (seed, species, task),
// a resumed run recomputes a completed task locally instead of
// re-dispatching it to the cluster — the report stays byte-identical to
// an uninterrupted run while the cluster only sees the missing tasks.
type CompletedSet struct {
	done map[string]bool
}

// NewCompletedSet returns an empty set.
func NewCompletedSet() *CompletedSet {
	return &CompletedSet{done: make(map[string]bool)}
}

// Add marks one task identity as completed.
func (s *CompletedSet) Add(task string) {
	if task != "" {
		s.done[task] = true
	}
}

// AddAll marks every task identity in tasks as completed.
func (s *CompletedSet) AddAll(tasks []string) {
	for _, t := range tasks {
		s.Add(t)
	}
}

// Merge adds every task of other into s (combining `-resume` and
// `-resume-stats` sources).
func (s *CompletedSet) Merge(other *CompletedSet) {
	for t := range other.done {
		s.done[t] = true
	}
}

// Done reports whether the task was completed by the prior run. It is
// the func a resumed core.Config.Resume threads into stage dispatch.
func (s *CompletedSet) Done(task string) bool { return s.done[task] }

// Len reports the number of completed tasks recorded.
func (s *CompletedSet) Len() int { return len(s.done) }

// CompletedFromEvents collects every task with a done event. Failed,
// dropped, or quarantined tasks are not completed — a resumed run
// re-dispatches them.
func CompletedFromEvents(evs []Event) *CompletedSet {
	s := NewCompletedSet()
	for i := range evs {
		if evs[i].Type == TaskDone {
			s.Add(evs[i].Task)
		}
	}
	return s
}

// CompletedFromLog reads a JSONL event log (`sched -event-log`) and
// collects the completed tasks. A log truncated mid-record by a killed
// scheduler is expected: the intact prefix is used and the torn tail
// ignored. Only a log yielding no events at all fails, so a wrong path
// or a non-log file is caught loudly instead of silently resuming from
// nothing.
func CompletedFromLog(r io.Reader) (*CompletedSet, error) {
	evs, err := ReadLog(r)
	if err != nil && len(evs) == 0 {
		return nil, fmt.Errorf("events: resume log unreadable: %w", err)
	}
	return CompletedFromEvents(evs), nil
}
