package geom

import (
	"fmt"
	"math"
)

// Superposition is the result of an optimal rigid-body superposition of a
// mobile point set onto a target point set: apply as
//
//	x' = R·(x - MobileCenter) + TargetCenter
type Superposition struct {
	R            Mat3
	MobileCenter Vec3
	TargetCenter Vec3
	RMSD         float64
}

// Apply maps a point through the superposition.
func (s *Superposition) Apply(p Vec3) Vec3 {
	return s.R.MulVec(p.Sub(s.MobileCenter)).Add(s.TargetCenter)
}

// ApplyAll returns a new slice with every point mapped.
func (s *Superposition) ApplyAll(pts []Vec3) []Vec3 {
	out := make([]Vec3, len(pts))
	for i, p := range pts {
		out[i] = s.Apply(p)
	}
	return out
}

// Superpose computes the least-squares optimal rigid superposition of mobile
// onto target (Kabsch problem) using Horn's quaternion method, which always
// yields a proper rotation (no reflections). The two slices must have equal,
// non-zero length.
func Superpose(mobile, target []Vec3) (*Superposition, error) {
	if len(mobile) != len(target) {
		return nil, fmt.Errorf("geom: superpose length mismatch %d vs %d", len(mobile), len(target))
	}
	if len(mobile) == 0 {
		return nil, fmt.Errorf("geom: superpose of empty point sets")
	}
	cm := Centroid(mobile)
	ct := Centroid(target)

	// Covariance S[a][b] = sum_i p_a q_b over centered coordinates,
	// p = mobile, q = target.
	var s Mat3
	for i := range mobile {
		p := mobile[i].Sub(cm)
		q := target[i].Sub(ct)
		s[0][0] += p.X * q.X
		s[0][1] += p.X * q.Y
		s[0][2] += p.X * q.Z
		s[1][0] += p.Y * q.X
		s[1][1] += p.Y * q.Y
		s[1][2] += p.Y * q.Z
		s[2][0] += p.Z * q.X
		s[2][1] += p.Z * q.Y
		s[2][2] += p.Z * q.Z
	}

	// Horn's 4x4 key matrix; its top eigenvector is the unit quaternion of
	// the optimal rotation.
	n := [4][4]float64{
		{s[0][0] + s[1][1] + s[2][2], s[1][2] - s[2][1], s[2][0] - s[0][2], s[0][1] - s[1][0]},
		{s[1][2] - s[2][1], s[0][0] - s[1][1] - s[2][2], s[0][1] + s[1][0], s[2][0] + s[0][2]},
		{s[2][0] - s[0][2], s[0][1] + s[1][0], -s[0][0] + s[1][1] - s[2][2], s[1][2] + s[2][1]},
		{s[0][1] - s[1][0], s[2][0] + s[0][2], s[1][2] + s[2][1], -s[0][0] - s[1][1] + s[2][2]},
	}
	q := topEigenvector4(n)
	r := quatToRot(q)

	sp := &Superposition{R: r, MobileCenter: cm, TargetCenter: ct}
	var sum float64
	for i := range mobile {
		sum += sp.Apply(mobile[i]).Dist2(target[i])
	}
	sp.RMSD = math.Sqrt(sum / float64(len(mobile)))
	return sp, nil
}

// quatToRot converts a unit quaternion (w, x, y, z) to a rotation matrix.
func quatToRot(q [4]float64) Mat3 {
	w, x, y, z := q[0], q[1], q[2], q[3]
	return Mat3{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}

// topEigenvector4 returns the unit eigenvector of the largest eigenvalue of
// a symmetric 4x4 matrix, via cyclic Jacobi.
func topEigenvector4(a [4][4]float64) [4]float64 {
	var v [4][4]float64
	for i := 0; i < 4; i++ {
		v[i][i] = 1
	}
	for sweep := 0; sweep < 64; sweep++ {
		var off float64
		for p := 0; p < 3; p++ {
			for q := p + 1; q < 4; q++ {
				off += a[p][q] * a[p][q]
			}
		}
		if off < 1e-28 {
			break
		}
		for p := 0; p < 3; p++ {
			for q := p + 1; q < 4; q++ {
				if math.Abs(a[p][q]) < 1e-300 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				app, aqq, apq := a[p][p], a[q][q], a[p][q]
				a[p][p] = c*c*app - 2*s*c*apq + s*s*aqq
				a[q][q] = s*s*app + 2*s*c*apq + c*c*aqq
				a[p][q], a[q][p] = 0, 0
				for k := 0; k < 4; k++ {
					if k != p && k != q {
						akp, akq := a[k][p], a[k][q]
						a[k][p] = c*akp - s*akq
						a[p][k] = a[k][p]
						a[k][q] = s*akp + c*akq
						a[q][k] = a[k][q]
					}
				}
				for k := 0; k < 4; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	best := 0
	for i := 1; i < 4; i++ {
		if a[i][i] > a[best][best] {
			best = i
		}
	}
	var q [4]float64
	var norm float64
	for k := 0; k < 4; k++ {
		q[k] = v[k][best]
		norm += q[k] * q[k]
	}
	norm = math.Sqrt(norm)
	for k := 0; k < 4; k++ {
		q[k] /= norm
	}
	return q
}

// RMSD returns the root-mean-square deviation between two equal-length point
// sets without superposing them.
func RMSD(a, b []Vec3) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("geom: rmsd length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("geom: rmsd of empty point sets")
	}
	var sum float64
	for i := range a {
		sum += a[i].Dist2(b[i])
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// SuperposedRMSD superposes mobile onto target and returns the minimal RMSD.
func SuperposedRMSD(mobile, target []Vec3) (float64, error) {
	sp, err := Superpose(mobile, target)
	if err != nil {
		return 0, err
	}
	return sp.RMSD, nil
}
