package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomPoints(r *rng.Source, n int, spread float64) []Vec3 {
	pts := make([]Vec3, n)
	for i := range pts {
		pts[i] = Vec3{
			r.NormFloat64() * spread,
			r.NormFloat64() * spread,
			r.NormFloat64() * spread,
		}
	}
	return pts
}

func TestVecBasics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec3{0, 0, 0}).Unit(); got != (Vec3{}) {
		t.Errorf("Unit of zero = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Vec3{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}}
	c := Centroid(pts)
	want := Vec3{0.5, 0.5, 0.5}
	if c.Dist(want) > 1e-12 {
		t.Errorf("Centroid = %v, want %v", c, want)
	}
	if Centroid(nil) != (Vec3{}) {
		t.Error("Centroid(nil) != zero")
	}
}

func TestDihedral(t *testing.T) {
	// Four points forming a known torsion: trans (180 degrees).
	a := Vec3{-1, 1, 0}
	b := Vec3{-1, 0, 0}
	c := Vec3{1, 0, 0}
	d := Vec3{1, -1, 0}
	if got := Dihedral(a, b, c, d); !approxEq(math.Abs(got), math.Pi, 1e-9) {
		t.Errorf("trans dihedral = %v, want ±pi", got)
	}
	// Cis: 0 degrees.
	d2 := Vec3{1, 1, 0}
	if got := Dihedral(a, b, c, d2); !approxEq(got, 0, 1e-9) {
		t.Errorf("cis dihedral = %v, want 0", got)
	}
	// +90 degrees.
	d3 := Vec3{1, 0, 1}
	got := Dihedral(a, b, c, d3)
	if !approxEq(math.Abs(got), math.Pi/2, 1e-9) {
		t.Errorf("perpendicular dihedral = %v, want ±pi/2", got)
	}
}

func TestAngle(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 0, 0}
	c := Vec3{0, 1, 0}
	if got := Angle(a, b, c); !approxEq(got, math.Pi/2, 1e-12) {
		t.Errorf("right angle = %v", got)
	}
}

func TestMat3MulVecIdentity(t *testing.T) {
	m := Identity3()
	v := Vec3{1, 2, 3}
	if m.MulVec(v) != v {
		t.Error("identity times v != v")
	}
}

func TestRotationAboutAxis(t *testing.T) {
	r := RotationAboutAxis(Vec3{0, 0, 1}, math.Pi/2)
	got := r.MulVec(Vec3{1, 0, 0})
	want := Vec3{0, 1, 0}
	if got.Dist(want) > 1e-12 {
		t.Errorf("rotation = %v, want %v", got, want)
	}
	if !approxEq(r.Det(), 1, 1e-12) {
		t.Errorf("rotation det = %v", r.Det())
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := Mat3{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	w, _ := jacobiEigen(a)
	if !approxEq(w[0], 3, 1e-12) || !approxEq(w[1], 2, 1e-12) || !approxEq(w[2], 1, 1e-12) {
		t.Errorf("eigenvalues = %v", w)
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		var a Mat3
		for i := 0; i < 3; i++ {
			for j := i; j < 3; j++ {
				v := r.NormFloat64()
				a[i][j] = v
				a[j][i] = v
			}
		}
		w, v := jacobiEigen(a)
		// Check A·v_k = w_k·v_k for each eigenpair.
		for k := 0; k < 3; k++ {
			col := Vec3{v[0][k], v[1][k], v[2][k]}
			av := a.MulVec(col)
			wv := col.Scale(w[k])
			if av.Dist(wv) > 1e-8 {
				t.Fatalf("trial %d eigenpair %d: A·v=%v, w·v=%v", trial, k, av, wv)
			}
		}
	}
}

func TestSuperposeRecoversKnownTransform(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 25; trial++ {
		target := randomPoints(r, 30, 10)
		rot := RotationAboutAxis(
			Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()},
			r.Float64()*2*math.Pi,
		)
		trans := Vec3{r.NormFloat64() * 5, r.NormFloat64() * 5, r.NormFloat64() * 5}
		mobile := make([]Vec3, len(target))
		for i, p := range target {
			mobile[i] = rot.MulVec(p).Add(trans)
		}
		sp, err := Superpose(mobile, target)
		if err != nil {
			t.Fatal(err)
		}
		if sp.RMSD > 1e-8 {
			t.Fatalf("trial %d: RMSD after exact-transform superposition = %v", trial, sp.RMSD)
		}
		if !approxEq(sp.R.Det(), 1, 1e-9) {
			t.Fatalf("trial %d: rotation det = %v", trial, sp.R.Det())
		}
	}
}

func TestSuperposeIsProperRotationUnderReflection(t *testing.T) {
	// Reflected point clouds must still produce a proper rotation
	// (det +1), not a reflection, even though the fit is then imperfect.
	r := rng.New(5)
	target := randomPoints(r, 40, 8)
	mobile := make([]Vec3, len(target))
	for i, p := range target {
		mobile[i] = Vec3{-p.X, p.Y, p.Z} // mirror
	}
	sp, err := Superpose(mobile, target)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(sp.R.Det(), 1, 1e-9) {
		t.Fatalf("det = %v, want +1 (proper rotation)", sp.R.Det())
	}
	if sp.RMSD < 1e-6 {
		t.Fatal("mirror image superposed exactly; reflection must not be allowed")
	}
}

func TestSuperposeErrors(t *testing.T) {
	if _, err := Superpose([]Vec3{{1, 0, 0}}, []Vec3{}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Superpose(nil, nil); err == nil {
		t.Error("empty input not rejected")
	}
}

func TestRMSDZeroForIdentical(t *testing.T) {
	r := rng.New(9)
	pts := randomPoints(r, 20, 5)
	v, err := RMSD(pts, pts)
	if err != nil || v != 0 {
		t.Errorf("RMSD identical = %v, %v", v, err)
	}
}

func TestD0(t *testing.T) {
	if D0(10) != 0.5 {
		t.Errorf("D0(10) = %v, want clamp at 0.5", D0(10))
	}
	// L=100: 1.24*(85)^(1/3)-1.8 ≈ 3.65
	if got := D0(100); !approxEq(got, 1.24*math.Cbrt(85)-1.8, 1e-12) {
		t.Errorf("D0(100) = %v", got)
	}
	if D0(22) <= 0 {
		t.Error("D0 must stay positive")
	}
}

func TestTMScorePerfectMatch(t *testing.T) {
	r := rng.New(11)
	ref := randomPoints(r, 80, 12)
	rot := RotationAboutAxis(Vec3{1, 2, 3}, 1.1)
	model := make([]Vec3, len(ref))
	for i, p := range ref {
		model[i] = rot.MulVec(p).Add(Vec3{4, 5, 6})
	}
	tm, err := TMScore(model, ref)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 0.999 {
		t.Errorf("TM of rigidly moved copy = %v, want ~1", tm)
	}
}

func TestTMScoreDecreasesWithNoise(t *testing.T) {
	r := rng.New(13)
	ref := chainLike(r, 120)
	prev := 1.0
	for _, noise := range []float64{0.5, 2.0, 6.0} {
		model := make([]Vec3, len(ref))
		for i, p := range ref {
			model[i] = p.Add(Vec3{
				r.NormFloat64() * noise,
				r.NormFloat64() * noise,
				r.NormFloat64() * noise,
			})
		}
		tm, err := TMScore(model, ref)
		if err != nil {
			t.Fatal(err)
		}
		if tm >= prev {
			t.Errorf("TM did not decrease with noise %v: %v >= %v", noise, tm, prev)
		}
		if tm <= 0 || tm > 1 {
			t.Errorf("TM out of range: %v", tm)
		}
		prev = tm
	}
}

func TestTMScoreRandomStructuresLow(t *testing.T) {
	r := rng.New(17)
	a := chainLike(r, 150)
	b := chainLike(r.Split(), 150)
	tm, err := TMScore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tm > 0.35 {
		t.Errorf("TM of unrelated random chains = %v, expected low (<0.35)", tm)
	}
}

func TestTMScorePartialMatch(t *testing.T) {
	// First half identical, second half scrambled: the fragment-seeded
	// search must find the matching half, giving a score near 0.5.
	r := rng.New(19)
	ref := chainLike(r, 100)
	model := Clone(ref)
	for i := 50; i < 100; i++ {
		model[i] = model[i].Add(Vec3{
			r.NormFloat64() * 25,
			r.NormFloat64() * 25,
			r.NormFloat64() * 25,
		})
	}
	tm, err := TMScore(model, ref)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 0.42 || tm > 0.75 {
		t.Errorf("TM with half match = %v, want roughly 0.5", tm)
	}
}

func TestGDTTSPerfectAndNoisy(t *testing.T) {
	r := rng.New(23)
	ref := chainLike(r, 60)
	g, err := GDTTS(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.999 {
		t.Errorf("GDT-TS of identical = %v", g)
	}
	noisy := make([]Vec3, len(ref))
	for i, p := range ref {
		noisy[i] = p.Add(Vec3{r.NormFloat64() * 3, r.NormFloat64() * 3, r.NormFloat64() * 3})
	}
	g2, err := GDTTS(noisy, ref)
	if err != nil {
		t.Fatal(err)
	}
	if g2 >= g || g2 <= 0 {
		t.Errorf("GDT-TS noisy = %v", g2)
	}
}

func TestSPECSPerfectMatch(t *testing.T) {
	r := rng.New(29)
	ref := posesFromChain(chainLike(r, 50), r)
	s, err := SPECSScore(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.999 {
		t.Errorf("SPECS of identical poses = %v", s)
	}
}

func TestSPECSPenalizesSidechainError(t *testing.T) {
	// Same backbone, perturbed side chains: SPECS must drop while staying
	// above a backbone-destroyed comparison.
	r := rng.New(31)
	chain := chainLike(r, 60)
	ref := posesFromChain(chain, r)
	scPerturbed := make([]ResiduePose, len(ref))
	copy(scPerturbed, ref)
	for i := range scPerturbed {
		scPerturbed[i].SC = scPerturbed[i].SC.Add(Vec3{
			r.NormFloat64() * 2, r.NormFloat64() * 2, r.NormFloat64() * 2,
		})
	}
	s1, err := SPECSScore(scPerturbed, ref)
	if err != nil {
		t.Fatal(err)
	}
	if s1 >= 0.999 {
		t.Errorf("SPECS ignored side-chain error: %v", s1)
	}
	if s1 < 0.6 {
		t.Errorf("SPECS overpenalized side-chain-only error: %v", s1)
	}

	bothPerturbed := make([]ResiduePose, len(ref))
	for i := range bothPerturbed {
		d := Vec3{r.NormFloat64() * 6, r.NormFloat64() * 6, r.NormFloat64() * 6}
		bothPerturbed[i] = ResiduePose{CA: ref[i].CA.Add(d), SC: ref[i].SC.Add(d)}
	}
	s2, err := SPECSScore(bothPerturbed, ref)
	if err != nil {
		t.Fatal(err)
	}
	if s2 >= s1 {
		t.Errorf("backbone destruction (%v) should score below side-chain noise (%v)", s2, s1)
	}
}

// chainLike makes a self-avoiding-ish random walk with ~3.8 Å steps, which
// resembles a protein Cα trace closely enough for metric tests.
func chainLike(r *rng.Source, n int) []Vec3 {
	pts := make([]Vec3, n)
	cur := Vec3{}
	dir := Vec3{1, 0, 0}
	for i := 0; i < n; i++ {
		pts[i] = cur
		dir = dir.Add(Vec3{
			r.NormFloat64() * 0.6,
			r.NormFloat64() * 0.6,
			r.NormFloat64() * 0.6,
		}).Unit()
		cur = cur.Add(dir.Scale(3.8))
	}
	return pts
}

func posesFromChain(chain []Vec3, r *rng.Source) []ResiduePose {
	poses := make([]ResiduePose, len(chain))
	for i, ca := range chain {
		sc := ca.Add(Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}.Unit().Scale(2.4))
		poses[i] = ResiduePose{CA: ca, SC: sc}
	}
	return poses
}

// Property: superposition RMSD is invariant under any additional rigid
// motion applied to the mobile set.
func TestQuickSuperposeRigidInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		target := randomPoints(r, 15, 6)
		mobile := randomPoints(r, 15, 6)
		sp1, err := Superpose(mobile, target)
		if err != nil {
			return false
		}
		rot := RotationAboutAxis(Vec3{1, 1, 1}, r.Float64()*math.Pi)
		moved := make([]Vec3, len(mobile))
		for i, p := range mobile {
			moved[i] = rot.MulVec(p).Add(Vec3{3, -2, 9})
		}
		sp2, err := Superpose(moved, target)
		if err != nil {
			return false
		}
		return math.Abs(sp1.RMSD-sp2.RMSD) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: TM-score is symmetric in the degenerate sense that score of a
// structure against itself is 1 for any chain.
func TestQuickTMSelfIdentity(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 5
		r := rng.New(seed)
		c := chainLike(r, n)
		tm, err := TMScore(c, c)
		return err == nil && tm > 0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSuperpose100(b *testing.B) {
	r := rng.New(1)
	target := randomPoints(r, 100, 10)
	mobile := randomPoints(r, 100, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Superpose(mobile, target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTMScore150(b *testing.B) {
	r := rng.New(2)
	ref := chainLike(r, 150)
	model := make([]Vec3, len(ref))
	for i, p := range ref {
		model[i] = p.Add(Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TMScore(model, ref); err != nil {
			b.Fatal(err)
		}
	}
}
