package geom

import (
	"fmt"
	"math"
)

// D0 returns the TM-score normalization length d0(L) of Zhang & Skolnick
// (2004): d0 = 1.24·(L-15)^(1/3) − 1.8, clamped below at 0.5 Å, which is the
// convention used by the reference TM-score program for short chains.
func D0(l int) float64 {
	if l <= 21 {
		return 0.5
	}
	d := 1.24*math.Cbrt(float64(l-15)) - 1.8
	if d < 0.5 {
		return 0.5
	}
	return d
}

// TMScore computes the TM-score of a model against a reference structure
// over a fixed residue correspondence (model[i] ↔ ref[i], the standard case
// for comparing a predicted and an experimental structure of the same
// sequence). It follows the published heuristic: superpositions seeded from
// contiguous fragments of decreasing length, each refined by iteratively
// re-superposing on the subset of residues within a distance cutoff, taking
// the maximum score over all seeds. The score is normalized by len(ref).
func TMScore(model, ref []Vec3) (float64, error) {
	if len(model) != len(ref) {
		return 0, fmt.Errorf("geom: tmscore length mismatch %d vs %d", len(model), len(ref))
	}
	n := len(ref)
	if n == 0 {
		return 0, fmt.Errorf("geom: tmscore of empty structures")
	}
	if n < 3 {
		// Degenerate: fall back to a single global superposition.
		sp, err := Superpose(model, ref)
		if err != nil {
			return 0, err
		}
		return scoreUnder(sp, model, ref, D0(n)), nil
	}

	d0 := D0(n)
	best := 0.0

	// Seed fragment lengths: n, n/2, n/4, ..., down to 4.
	for fragLen := n; fragLen >= 4; fragLen /= 2 {
		step := fragLen / 2
		if step < 1 {
			step = 1
		}
		for start := 0; start+fragLen <= n; start += step {
			idx := make([]int, fragLen)
			for i := range idx {
				idx[i] = start + i
			}
			score := refineAlignment(model, ref, idx, d0)
			if score > best {
				best = score
			}
		}
	}
	return best, nil
}

// refineAlignment runs the TM-score iterative refinement from an initial
// residue subset: superpose on the subset, rescore all residues, rebuild the
// subset from residues within a shrinking distance cutoff, and iterate to
// convergence. Returns the best full-length score seen.
func refineAlignment(model, ref []Vec3, seed []int, d0 float64) float64 {
	n := len(ref)
	idx := seed
	best := 0.0

	// The reference implementation tries several distance cutoffs; d8 caps
	// the largest one.
	cutoffs := []float64{d0 + 2.5, d0 + 1.5, d0 + 0.5}
	for _, dCut := range cutoffs {
		cur := idx
		for iter := 0; iter < 20; iter++ {
			if len(cur) < 3 {
				break
			}
			mSub := make([]Vec3, len(cur))
			rSub := make([]Vec3, len(cur))
			for i, k := range cur {
				mSub[i] = model[k]
				rSub[i] = ref[k]
			}
			sp, err := Superpose(mSub, rSub)
			if err != nil {
				break
			}
			if s := scoreUnder(sp, model, ref, d0); s > best {
				best = s
			}
			next := make([]int, 0, n)
			for k := 0; k < n; k++ {
				if sp.Apply(model[k]).Dist(ref[k]) < dCut {
					next = append(next, k)
				}
			}
			if equalInts(next, cur) {
				break
			}
			if len(next) < 3 {
				break
			}
			cur = next
		}
	}
	return best
}

// scoreUnder evaluates the TM-score sum for the whole chain under a given
// superposition.
func scoreUnder(sp *Superposition, model, ref []Vec3, d0 float64) float64 {
	var sum float64
	for i := range ref {
		d := sp.Apply(model[i]).Dist(ref[i])
		sum += 1 / (1 + (d/d0)*(d/d0))
	}
	return sum / float64(len(ref))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GDTTS computes the GDT-TS score: the mean fraction of residues within 1,
// 2, 4 and 8 Å of the reference after a global superposition refined the
// same way TM-score is. Values are in [0, 1].
func GDTTS(model, ref []Vec3) (float64, error) {
	if len(model) != len(ref) {
		return 0, fmt.Errorf("geom: gdtts length mismatch %d vs %d", len(model), len(ref))
	}
	if len(ref) == 0 {
		return 0, fmt.Errorf("geom: gdtts of empty structures")
	}
	n := len(ref)
	best := [4]float64{}
	thresholds := [4]float64{1, 2, 4, 8}

	eval := func(sp *Superposition) {
		var count [4]int
		for i := range ref {
			d := sp.Apply(model[i]).Dist(ref[i])
			for t, th := range thresholds {
				if d <= th {
					count[t]++
				}
			}
		}
		for t := range thresholds {
			if f := float64(count[t]) / float64(n); f > best[t] {
				best[t] = f
			}
		}
	}

	// Global superposition plus fragment-seeded refinements, mirroring the
	// TM-score search so GDT is not hostage to a bad global fit.
	sp, err := Superpose(model, ref)
	if err != nil {
		return 0, err
	}
	eval(sp)
	for fragLen := n; fragLen >= 4; fragLen /= 2 {
		step := fragLen / 2
		if step < 1 {
			step = 1
		}
		for start := 0; start+fragLen <= n; start += step {
			mSub := model[start : start+fragLen]
			rSub := ref[start : start+fragLen]
			spf, err := Superpose(mSub, rSub)
			if err != nil {
				continue
			}
			eval(spf)
		}
	}
	return (best[0] + best[1] + best[2] + best[3]) / 4, nil
}
