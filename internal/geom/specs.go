package geom

import (
	"fmt"
	"math"
)

// ResiduePose is the per-residue geometry SPECS needs: the Cα position and a
// side-chain representative (centroid of side-chain heavy atoms; for glycine
// the Cα itself, mirroring the convention of side-chain scoring functions).
type ResiduePose struct {
	CA Vec3
	SC Vec3
}

// SPECSScore computes a SPECS-like model quality score (after Alapati,
// Shuvo & Bhattacharya, PLoS ONE 2020). SPECS integrates a backbone,
// GDT-like component with side-chain position and orientation agreement.
// This implementation keeps the published structure of the score:
//
//	SPECS = w1·GDC_CA + w2·SC_dist + w3·SC_orient, w = (0.5, 0.3, 0.2)
//
// where GDC_CA is a multi-threshold Cα agreement under the TM-style refined
// superposition, SC_dist scores side-chain centroid distances with the
// TM-score kernel, and SC_orient scores the agreement of the Cα→side-chain
// unit vectors. All components are in [0, 1], so the score is too.
//
// It is "SPECS-like" rather than bit-exact SPECS: the reference program uses
// all side-chain atoms, while our structures carry a single side-chain
// centroid pseudo-atom. The behaviours relevant to Fig. 3 of the paper —
// sensitivity to side-chain placement on top of backbone agreement, and
// small gains when side chains move toward native positions — are preserved.
func SPECSScore(model, ref []ResiduePose) (float64, error) {
	if len(model) != len(ref) {
		return 0, fmt.Errorf("geom: specs length mismatch %d vs %d", len(model), len(ref))
	}
	n := len(ref)
	if n == 0 {
		return 0, fmt.Errorf("geom: specs of empty structures")
	}

	mCA := make([]Vec3, n)
	rCA := make([]Vec3, n)
	for i := range ref {
		mCA[i] = model[i].CA
		rCA[i] = ref[i].CA
	}

	sp, err := bestSuperposition(mCA, rCA)
	if err != nil {
		return 0, err
	}

	// Backbone multi-threshold component (GDC-like over 1,2,4,8 Å).
	thresholds := [4]float64{1, 2, 4, 8}
	var count [4]int
	for i := range ref {
		d := sp.Apply(mCA[i]).Dist(rCA[i])
		for t, th := range thresholds {
			if d <= th {
				count[t]++
			}
		}
	}
	var gdc float64
	for t := range thresholds {
		gdc += float64(count[t]) / float64(n)
	}
	gdc /= 4

	// Side-chain distance component under the backbone superposition.
	d0 := D0(n)
	var scDist float64
	for i := range ref {
		d := sp.Apply(model[i].SC).Dist(ref[i].SC)
		scDist += 1 / (1 + (d/d0)*(d/d0))
	}
	scDist /= float64(n)

	// Side-chain orientation component: cosine agreement of Cα→SC vectors
	// (rotation applied to the model's vector), mapped from [-1,1] to [0,1].
	var scOrient float64
	var orientCount int
	for i := range ref {
		mv := model[i].SC.Sub(model[i].CA)
		rv := ref[i].SC.Sub(ref[i].CA)
		if mv.Norm() < 1e-9 || rv.Norm() < 1e-9 {
			continue // glycine-like residue: no orientation defined
		}
		cos := sp.R.MulVec(mv).Unit().Dot(rv.Unit())
		scOrient += (cos + 1) / 2
		orientCount++
	}
	if orientCount > 0 {
		scOrient /= float64(orientCount)
	} else {
		scOrient = 1 // no side chains at all: orientation is vacuously perfect
	}

	return 0.5*gdc + 0.3*scDist + 0.2*scOrient, nil
}

// bestSuperposition runs the TM-style fragment-seeded superposition search
// and returns the superposition that maximizes the TM-score sum.
func bestSuperposition(model, ref []Vec3) (*Superposition, error) {
	n := len(ref)
	d0 := D0(n)
	global, err := Superpose(model, ref)
	if err != nil {
		return nil, err
	}
	best := global
	bestScore := scoreUnder(global, model, ref, d0)
	if n < 8 {
		return best, nil
	}
	for fragLen := n / 2; fragLen >= 4; fragLen /= 2 {
		step := fragLen / 2
		if step < 1 {
			step = 1
		}
		for start := 0; start+fragLen <= n; start += step {
			idx := make([]int, fragLen)
			for i := range idx {
				idx[i] = start + i
			}
			sp := refineToSuperposition(model, ref, idx, d0)
			if sp == nil {
				continue
			}
			if s := scoreUnder(sp, model, ref, d0); s > bestScore {
				bestScore = s
				best = sp
			}
		}
	}
	return best, nil
}

// refineToSuperposition mirrors refineAlignment but returns the best
// superposition rather than the score.
func refineToSuperposition(model, ref []Vec3, seed []int, d0 float64) *Superposition {
	n := len(ref)
	var best *Superposition
	bestScore := math.Inf(-1)
	cur := seed
	dCut := d0 + 1.5
	for iter := 0; iter < 20; iter++ {
		if len(cur) < 3 {
			break
		}
		mSub := make([]Vec3, len(cur))
		rSub := make([]Vec3, len(cur))
		for i, k := range cur {
			mSub[i] = model[k]
			rSub[i] = ref[k]
		}
		sp, err := Superpose(mSub, rSub)
		if err != nil {
			break
		}
		if s := scoreUnder(sp, model, ref, d0); s > bestScore {
			bestScore = s
			best = sp
		}
		next := make([]int, 0, n)
		for k := 0; k < n; k++ {
			if sp.Apply(model[k]).Dist(ref[k]) < dCut {
				next = append(next, k)
			}
		}
		if equalInts(next, cur) || len(next) < 3 {
			break
		}
		cur = next
	}
	return best
}
