package geom

import "math"

// Mat3 is a 3x3 matrix in row-major order: m[row][col].
type Mat3 [3][3]float64

// Identity3 returns the identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// MulVec returns m·v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += m[i][k] * n[k][j]
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[j][i]
		}
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// RotationAboutAxis returns the rotation matrix for a rotation of theta
// radians about the given (not necessarily unit) axis, via Rodrigues'
// formula.
func RotationAboutAxis(axis Vec3, theta float64) Mat3 {
	u := axis.Unit()
	c := math.Cos(theta)
	s := math.Sin(theta)
	t := 1 - c
	return Mat3{
		{c + u.X*u.X*t, u.X*u.Y*t - u.Z*s, u.X*u.Z*t + u.Y*s},
		{u.Y*u.X*t + u.Z*s, c + u.Y*u.Y*t, u.Y*u.Z*t - u.X*s},
		{u.Z*u.X*t - u.Y*s, u.Z*u.Y*t + u.X*s, c + u.Z*u.Z*t},
	}
}

// jacobiEigen computes the eigendecomposition of a symmetric 3x3 matrix
// using cyclic Jacobi rotations. It returns the eigenvalues (unordered on
// entry to sorting, then sorted descending) and the matrix of column
// eigenvectors, so a = v·diag(w)·vᵀ.
func jacobiEigen(a Mat3) (w [3]float64, v Mat3) {
	v = Identity3()
	for sweep := 0; sweep < 64; sweep++ {
		off := a[0][1]*a[0][1] + a[0][2]*a[0][2] + a[1][2]*a[1][2]
		if off < 1e-30 {
			break
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				if math.Abs(a[p][q]) < 1e-300 {
					continue
				}
				// Compute the Jacobi rotation that annihilates a[p][q].
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Apply rotation: a = Jᵀ a J (J rotates in the (p,q) plane).
				app := a[p][p]
				aqq := a[q][q]
				apq := a[p][q]
				a[p][p] = c*c*app - 2*s*c*apq + s*s*aqq
				a[q][q] = s*s*app + 2*s*c*apq + c*c*aqq
				a[p][q] = 0
				a[q][p] = 0
				for k := 0; k < 3; k++ {
					if k != p && k != q {
						akp := a[k][p]
						akq := a[k][q]
						a[k][p] = c*akp - s*akq
						a[p][k] = a[k][p]
						a[k][q] = s*akp + c*akq
						a[q][k] = a[k][q]
					}
				}
				for k := 0; k < 3; k++ {
					vkp := v[k][p]
					vkq := v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	w = [3]float64{a[0][0], a[1][1], a[2][2]}

	// Sort eigenpairs descending by eigenvalue.
	order := [3]int{0, 1, 2}
	for i := 0; i < 2; i++ {
		for j := i + 1; j < 3; j++ {
			if w[order[j]] > w[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	var ws [3]float64
	var vs Mat3
	for i, o := range order {
		ws[i] = w[o]
		for k := 0; k < 3; k++ {
			vs[k][i] = v[k][o]
		}
	}
	return ws, vs
}
