// Package geom implements the geometric and structural-comparison machinery
// used by the reproduction: 3-vectors, 3x3 symmetric eigendecomposition,
// Kabsch optimal superposition, RMSD, the TM-score of Zhang & Skolnick
// (Proteins 2004), a GDT-TS variant, and a SPECS-like score that also
// rewards side-chain placement (Alapati et al., PLoS ONE 2020).
//
// These are real implementations, not stubs: Fig. 3 of the paper compares
// relaxation protocols using TM-score and SPECS-score, and Section 4.6 uses
// TM-score alignments for functional annotation, so the metrics must behave
// like the published ones (monotone under perturbation, correct d0 scaling,
// invariance to rigid motion).
package geom

import "math"

// Vec3 is a point or direction in 3-space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|^2.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Unit returns v/|v|. It returns the zero vector if |v| == 0.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Dist returns |v - w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns |v - w|^2.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Centroid returns the mean of the points. It returns the zero vector for an
// empty slice.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// Translate adds t to every point in place.
func Translate(pts []Vec3, t Vec3) {
	for i := range pts {
		pts[i] = pts[i].Add(t)
	}
}

// Dihedral returns the torsion angle (radians, in (-pi, pi]) defined by four
// points a-b-c-d around the b-c axis.
func Dihedral(a, b, c, d Vec3) float64 {
	b1 := b.Sub(a)
	b2 := c.Sub(b)
	b3 := d.Sub(c)
	n1 := b1.Cross(b2)
	n2 := b2.Cross(b3)
	m := n1.Cross(b2.Unit())
	x := n1.Dot(n2)
	y := m.Dot(n2)
	return math.Atan2(y, x)
}

// Angle returns the angle (radians) at vertex b in the triangle a-b-c.
func Angle(a, b, c Vec3) float64 {
	u := a.Sub(b).Unit()
	v := c.Sub(b).Unit()
	d := u.Dot(v)
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return math.Acos(d)
}

// Clone returns a deep copy of the point slice.
func Clone(pts []Vec3) []Vec3 {
	out := make([]Vec3, len(pts))
	copy(out, pts)
	return out
}
