// Package casp provides the CASP14-like benchmark set used by the
// relaxation experiments (Sections 4.4 and 4.5, Figs. 3 and 4). The real
// CASP14 targets and crystal structures are not available here, so the
// package generates a deterministic stand-in with the same measured
// properties:
//
//   - 32 targets, 19 of which have "crystal" (ground-truth) structures, for
//     160 predicted models in total (5 per target), matching the counts in
//     the paper;
//   - unrelaxed models carrying planted clashes and bumps whose
//     distribution matches the paper's measurements (clashes 0.22 ± 1.09
//     with max 8; bumps 3.76 ± 12.74 with max 148);
//   - a T1080 stand-in: the large target whose original-AlphaFold
//     relaxation took ~4.5 hours.
package casp

import (
	"fmt"
	"math"

	"repro/internal/fold"
	"repro/internal/geom"
	"repro/internal/relax"
	"repro/internal/rng"
)

// Target is one CASP-like prediction target.
type Target struct {
	ID         string
	Length     int
	HasCrystal bool
	Crystal    *fold.Native // nil unless HasCrystal
}

// Model is one predicted (unrelaxed) structure for a target.
type Model struct {
	TargetID   string
	ModelNum   int // 1..5
	CA, SC     []geom.Vec3
	HeavyAtoms int
}

// Set is the full benchmark.
type Set struct {
	Targets []Target
	Models  []Model
}

// NumWithCrystal returns how many targets have ground truth (19 in the
// paper's subset).
func (s *Set) NumWithCrystal() int {
	n := 0
	for _, t := range s.Targets {
		if t.HasCrystal {
			n++
		}
	}
	return n
}

// TargetByID returns a target.
func (s *Set) TargetByID(id string) (*Target, error) {
	for i := range s.Targets {
		if s.Targets[i].ID == id {
			return &s.Targets[i], nil
		}
	}
	return nil, fmt.Errorf("casp: no target %q", id)
}

// ModelsOf returns the models of one target.
func (s *Set) ModelsOf(id string) []Model {
	var out []Model
	for _, m := range s.Models {
		if m.TargetID == id {
			out = append(out, m)
		}
	}
	return out
}

// NewSet generates the benchmark deterministically.
func NewSet(seed uint64) *Set {
	r := rng.New(seed).SplitNamed("casp14")
	s := &Set{}

	// 32 targets; lengths span the CASP14 range, with T1080 as the large
	// outlier target (~1400 residues ≈ 11k heavy atoms).
	for i := 0; i < 32; i++ {
		var length int
		id := fmt.Sprintf("T%04d", 1024+i)
		switch {
		case i == 14:
			id = "T1080"
			length = 1400
		case i%4 == 0:
			length = 80 + r.Intn(120)
		case i%4 == 1:
			length = 200 + r.Intn(200)
		case i%4 == 2:
			length = 350 + r.Intn(250)
		default:
			length = 500 + r.Intn(400)
		}
		target := Target{ID: id, Length: length}
		// 19 of 32 have public crystals, deterministically the first 19
		// after shuffling by index parity mix.
		if (i*7+3)%32 < 19 {
			target.HasCrystal = true
			target.Crystal = fold.GenerateTopology(seed^uint64(i*2654435761+1), length)
		}
		s.Targets = append(s.Targets, target)
	}

	// Five models per target: the crystal (or a hidden native for
	// crystal-less targets) perturbed by model error, plus planted
	// violations with the paper's distribution.
	for i := range s.Targets {
		t := &s.Targets[i]
		native := t.Crystal
		if native == nil {
			native = fold.GenerateTopology(seed^uint64(i*2654435761+1), t.Length)
		}
		for m := 1; m <= 5; m++ {
			mr := r.SplitNamed(fmt.Sprintf("%s-m%d", t.ID, m))
			ca := geom.Clone(native.CA)
			sc := geom.Clone(native.SC)

			// Model error: smooth displacement, better models for lower m.
			errScale := 0.6 + 0.5*float64(m-1) + 0.4*mr.Float64()
			field := smoothNoise(mr, t.Length)
			for k := range ca {
				d := field[k].Scale(errScale)
				ca[k] = ca[k].Add(d)
				sc[k] = sc[k].Add(d)
			}

			// Planted violations. Counts follow the paper's heavy-tailed
			// distribution across the 160 models; one designated model
			// carries the extreme tail (the paper's max was 148 bumps in a
			// single structure).
			clashes, bumps := sampleViolationCounts(mr)
			if i == 14 && m == 3 { // T1080: the paper's pathological model
				clashes, bumps = 2, 130
			}
			plantViolations(mr, ca, sc, clashes, bumps)

			s.Models = append(s.Models, Model{
				TargetID:   t.ID,
				ModelNum:   m,
				CA:         ca,
				SC:         sc,
				HeavyAtoms: int(7.8 * float64(t.Length)),
			})
		}
	}
	return s
}

// sampleViolationCounts draws (clashes, bumps) with the paper's marginal
// statistics: most models clean, a few with severe violations.
func sampleViolationCounts(r *rng.Source) (int, int) {
	// These are *planted pull counts*; each pull typically yields one
	// violation of its class plus a fraction of collateral bumps, so the
	// planted counts sit slightly below the measured targets.
	u := r.Float64()
	clashes := 0
	switch {
	case u > 0.985: // ~1.5%: severe (up to 8 measured)
		clashes = 3 + r.Intn(5)
	case u > 0.90: // ~8.5%: mild
		clashes = 1 + r.Intn(2)
	}
	v := r.Float64()
	bumps := 0
	switch {
	case v > 0.92:
		bumps = 5 + r.Intn(8)
	case v > 0.55:
		bumps = 1 + r.Intn(2)
	}
	return clashes, bumps
}

// plantViolations pulls spatially-adjacent segments together with a smooth
// along-chain falloff until the model's *measured* violation counts reach
// the requested values (plants can partially undo each other, so counts are
// verified rather than assumed).
func plantViolations(r *rng.Source, ca, sc []geom.Vec3, clashes, bumps int) {
	n := len(ca)
	if n < 12 {
		return
	}
	plant := func(targetD float64, noNewClash bool) {
		for tries := 0; tries < 300; tries++ {
			i := r.Intn(n)
			j := r.Intn(n)
			if j < i {
				i, j = j, i
			}
			if j-i < 5 {
				continue
			}
			d := ca[i].Dist(ca[j])
			if d < 4.0 || d > 6.5 {
				continue
			}
			var caSnap, scSnap []geom.Vec3
			var clashesBefore int
			if noNewClash {
				caSnap = geom.Clone(ca)
				scSnap = geom.Clone(sc)
				clashesBefore = relax.CountViolations(ca).Clashes
			}
			dir := ca[i].Sub(ca[j]).Unit()
			pull := d - targetD
			for k := 0; k < n; k++ {
				w := math.Exp(-float64((k-j)*(k-j)) / 6.0)
				shift := dir.Scale(pull * w)
				ca[k] = ca[k].Add(shift)
				sc[k] = sc[k].Add(shift)
			}
			if noNewClash && relax.CountViolations(ca).Clashes > clashesBefore {
				copy(ca, caSnap)
				copy(sc, scSnap)
				continue // collateral clash: revert and try another pair
			}
			return
		}
	}
	for attempt := 0; attempt < clashes*8+8; attempt++ {
		if relax.CountViolations(ca).Clashes >= clashes {
			break
		}
		plant(1.0+0.7*r.Float64(), false)
	}
	wantBumps := bumps + clashes // bump counts include clash pairs
	for attempt := 0; attempt < bumps*8+8; attempt++ {
		if relax.CountViolations(ca).Bumps >= wantBumps {
			break
		}
		plant(2.2+1.2*r.Float64(), true)
	}
}

func smoothNoise(r *rng.Source, n int) []geom.Vec3 {
	raw := make([]geom.Vec3, n)
	for i := range raw {
		raw[i] = geom.Vec3{X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()}
	}
	out := make([]geom.Vec3, n)
	const w = 4
	for i := range out {
		var acc geom.Vec3
		cnt := 0
		for j := i - w; j <= i+w; j++ {
			if j >= 0 && j < n {
				acc = acc.Add(raw[j])
				cnt++
			}
		}
		out[i] = acc.Scale(1 / float64(cnt))
	}
	return out
}
