package casp

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/relax"
)

func TestSetShape(t *testing.T) {
	s := NewSet(1)
	if len(s.Targets) != 32 {
		t.Errorf("targets = %d, want 32", len(s.Targets))
	}
	if len(s.Models) != 160 {
		t.Errorf("models = %d, paper analyses 160", len(s.Models))
	}
	if got := s.NumWithCrystal(); got != 19 {
		t.Errorf("crystal targets = %d, paper uses 19", got)
	}
	for _, m := range s.Models {
		if len(m.CA) == 0 || len(m.CA) != len(m.SC) {
			t.Fatalf("model %s-%d malformed", m.TargetID, m.ModelNum)
		}
		if m.HeavyAtoms <= 0 {
			t.Errorf("model %s-%d heavy atoms = %d", m.TargetID, m.ModelNum, m.HeavyAtoms)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewSet(5)
	b := NewSet(5)
	for i := range a.Models {
		if a.Models[i].CA[0] != b.Models[i].CA[0] {
			t.Fatal("same-seed sets differ")
		}
	}
}

func TestT1080Exists(t *testing.T) {
	s := NewSet(1)
	tg, err := s.TargetByID("T1080")
	if err != nil {
		t.Fatal(err)
	}
	if tg.Length < 1000 {
		t.Errorf("T1080 length = %d; must be the large outlier", tg.Length)
	}
	if len(s.ModelsOf("T1080")) != 5 {
		t.Errorf("T1080 models = %d", len(s.ModelsOf("T1080")))
	}
	if _, err := s.TargetByID("T9999"); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestViolationStatisticsMatchPaper(t *testing.T) {
	// Paper (Section 4.4): unrelaxed models had 0.22 ± 1.09 clashes (max 8)
	// and 3.76 ± 12.74 bumps (max 148).
	s := NewSet(1)
	var clashes, bumps []float64
	for _, m := range s.Models {
		v := relax.CountViolations(m.CA)
		clashes = append(clashes, float64(v.Clashes))
		bumps = append(bumps, float64(v.Bumps))
	}
	cs := metrics.Summarize(clashes)
	bs := metrics.Summarize(bumps)

	if cs.Mean < 0.05 || cs.Mean > 0.8 {
		t.Errorf("mean clashes = %v, paper 0.22", cs.Mean)
	}
	if cs.Max > 12 {
		t.Errorf("max clashes = %v, paper max 8", cs.Max)
	}
	if bs.Mean < 1.0 || bs.Mean > 9 {
		t.Errorf("mean bumps = %v, paper 3.76", bs.Mean)
	}
	if bs.Max < 30 || bs.Max > 200 {
		t.Errorf("max bumps = %v, paper max 148", bs.Max)
	}
	// Heavy tail: std must exceed the mean for both.
	if cs.Std < cs.Mean {
		t.Errorf("clash distribution not heavy-tailed: %v ± %v", cs.Mean, cs.Std)
	}
	if bs.Std < bs.Mean {
		t.Errorf("bump distribution not heavy-tailed: %v ± %v", bs.Mean, bs.Std)
	}
}

func TestModelsStayNearCrystal(t *testing.T) {
	// Models are predictions of their targets, not random chains: a model
	// must have bounded RMSD field against its crystal (the planted
	// violations are local).
	s := NewSet(1)
	for _, tg := range s.Targets {
		if !tg.HasCrystal || tg.Length > 500 {
			continue
		}
		for _, m := range s.ModelsOf(tg.ID) {
			var worst, sum float64
			for i := range m.CA {
				d := m.CA[i].Dist(tg.Crystal.CA[i])
				sum += d
				if d > worst {
					worst = d
				}
			}
			if worst > 30 {
				t.Errorf("%s model %d deviates %v Å at worst; too far from crystal",
					tg.ID, m.ModelNum, worst)
			}
			if mean := sum / float64(len(m.CA)); mean > 6 {
				t.Errorf("%s model %d mean deviation %v Å; models must track the crystal",
					tg.ID, m.ModelNum, mean)
			}
		}
	}
}
