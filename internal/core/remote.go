package core

import (
	"repro/internal/fold"
	"repro/internal/fsim"
	"repro/internal/msa"
)

// The three workflow stages register their remote bodies under these
// kernel names (see internal/experiments.RegisterCampaignKernels). A
// standalone worker process serves them through flow.SpecHandler; the
// stages build the matching argument blocks below when the configured
// executor dispatches specs instead of closures.
const (
	// KernelFeature derives one protein's folding features and its
	// contended filesystem search time.
	KernelFeature = "campaign/feature"
	// KernelInfer runs one (target, model) inference task; an OOM outcome
	// is encoded as a null prediction, exactly as the in-process closure
	// reports it.
	KernelInfer = "campaign/infer"
	// KernelRelax computes one structure's modeled relaxation time.
	KernelRelax = "campaign/relax"
)

// RemoteCampaign identifies the deterministic campaign world to remote
// workers. Every generated artifact — proteome, features, engine
// randomness — is a pure function of (Seed, Species), so a worker in
// another process reconstructs the exact world from these two values and
// the per-task fields of each spec; nothing else crosses the wire.
type RemoteCampaign struct {
	Seed    uint64 `json:"seed"`
	Species string `json:"species"`
}

// FeatureSpec is the argument block of KernelFeature.
type FeatureSpec struct {
	Seed        uint64          `json:"seed"`
	Species     string          `json:"species"`
	ID          string          `json:"id"`
	Accel       float64         `json:"accel,omitempty"`
	JobsPerCopy int             `json:"jobs_per_copy"`
	FS          fsim.Filesystem `json:"fs"`
	DB          fsim.Database   `json:"db"`
	// Summary selects the summary-only result mode: the kernel returns a
	// FeatureDigest instead of the full per-protein msa.Features payload.
	// The digest carries everything the printed campaign report needs,
	// at a fraction of the wire bytes; callers that consume the features
	// themselves (the default) leave it false.
	Summary bool `json:"summary,omitempty"`
}

// FeatureOut is the per-protein result of the feature stage: the derived
// features plus the contended search walltime. It is the JSON unit a
// remote feature kernel returns; the in-process closure produces the same
// value directly. In summary mode Features is nil and Digest summarises
// it instead.
type FeatureOut struct {
	Features *msa.Features  `json:"features,omitempty"`
	Digest   *FeatureDigest `json:"digest,omitempty"`
	Seconds  float64        `json:"seconds"`
}

// FeatureDigest is the summary-only stand-in for a full msa.Features
// payload: the MSA summary statistics the report and load-balance
// analyses consume, without the per-protein feature arrays. DigestFeatures
// derives it, so the remote kernel and any local verification agree.
type FeatureDigest struct {
	Length    int     `json:"length"`
	Depth     int     `json:"depth"`
	Neff      float64 `json:"neff"`
	Templates int     `json:"templates"`
}

// DigestFeatures summarises full features into the wire digest.
func DigestFeatures(f *msa.Features) *FeatureDigest {
	return &FeatureDigest{
		Length:    f.Query.Len(),
		Depth:     f.Depth,
		Neff:      f.Neff,
		Templates: len(f.Templates),
	}
}

// InferSpec is the argument block of KernelInfer. The preset travels as a
// full value (not a name) so customized presets survive the trip.
type InferSpec struct {
	Seed      uint64      `json:"seed"`
	Species   string      `json:"species"`
	ID        string      `json:"id"`
	Model     int         `json:"model"`
	Preset    fold.Preset `json:"preset"`
	NodeMemGB float64     `json:"node_mem_gb"`
	// Summary selects the summary-only result mode: the kernel returns a
	// PredictionDigest instead of the full fold.Prediction payload. The
	// digest carries every scalar the campaign consumes (ranking,
	// coverage fractions, cost accounting), at a fraction of the wire
	// bytes; only the per-residue arrays — which campaign inference never
	// materializes anyway — and the identity fields the client already
	// knows are omitted.
	Summary bool `json:"summary,omitempty"`
}

// PredictionDigest is the summary-only stand-in for a full
// fold.Prediction payload: the pTMS/pLDDT summary the report, ranking,
// and cluster simulation consume, under short JSON keys. ID and Length
// do not travel — the submitting client reconstructs them from the task
// it dispatched (see Prediction).
type PredictionDigest struct {
	Model       int     `json:"m"`
	Recycles    int     `json:"rec,omitempty"`
	Converged   bool    `json:"conv,omitempty"`
	MeanPLDDT   float64 `json:"plddt"`
	PTMS        float64 `json:"ptms"`
	FracAbove70 float64 `json:"f70,omitempty"`
	FracAbove90 float64 `json:"f90,omitempty"`
	GPUSeconds  float64 `json:"gpu_s"`
	PeakMemGB   float64 `json:"mem_gb,omitempty"`
}

// DigestPrediction summarises a full prediction into the wire digest.
func DigestPrediction(p *fold.Prediction) *PredictionDigest {
	return &PredictionDigest{
		Model:       p.Model,
		Recycles:    p.Recycles,
		Converged:   p.Converged,
		MeanPLDDT:   p.MeanPLDDT,
		PTMS:        p.PTMS,
		FracAbove70: p.FracAbove70,
		FracAbove90: p.FracAbove90,
		GPUSeconds:  p.GPUSeconds,
		PeakMemGB:   p.PeakMemGB,
	}
}

// Prediction reconstructs the campaign view of the prediction from the
// digest plus the task identity the client dispatched. Per-residue
// arrays stay nil — exactly as in a full-mode campaign, which never sets
// fold.Task.WantCoords — so every reported number is byte-identical to
// full mode.
func (d *PredictionDigest) Prediction(id string, length int) *fold.Prediction {
	return &fold.Prediction{
		ID:          id,
		Model:       d.Model,
		Length:      length,
		Recycles:    d.Recycles,
		Converged:   d.Converged,
		MeanPLDDT:   d.MeanPLDDT,
		PTMS:        d.PTMS,
		FracAbove70: d.FracAbove70,
		FracAbove90: d.FracAbove90,
		GPUSeconds:  d.GPUSeconds,
		PeakMemGB:   d.PeakMemGB,
	}
}

// RelaxSpec is the argument block of KernelRelax. It is self-contained:
// the relaxation cost model needs no campaign world.
type RelaxSpec struct {
	Length   int `json:"length"`
	Platform int `json:"platform"`
}

// RelaxHeavyAtoms is the heavy-atom count of the relax cost model for a
// chain length (~7.8 heavy atoms per residue), shared by the in-process
// relax stage and its remote kernel.
func RelaxHeavyAtoms(length int) int { return int(7.8 * float64(length)) }
