package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fold"
	"repro/internal/fsim"
	"repro/internal/geom"
	"repro/internal/msa"
	"repro/internal/proteome"
	"repro/internal/relax"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

const universeSeed = 77

func smallSpecies(n int) proteome.Species {
	return proteome.Species{
		Name: "test species", Code: "TST", Kingdom: proteome.Prokaryote,
		NumProteins: n, LenShape: 2.2, LenScale: 100,
		MinLen: 30, MaxLen: 1500, HypotheticalFrac: 0.2,
	}
}

func testSetup(t *testing.T, n int) (*proteome.Universe, *proteome.Proteome, *GroundTruth, *fold.Engine) {
	t.Helper()
	u := proteome.NewUniverse(universeSeed, 32, 60, 160)
	p := proteome.Generate(smallSpecies(n), u, 5)
	gt := NewGroundTruth(universeSeed)
	gt.Register(p)
	engine := fold.NewEngine(gt, 99)
	return u, p, gt, engine
}

func TestGroundTruthNativeShape(t *testing.T) {
	_, p, gt, _ := testSetup(t, 30)
	for _, pr := range p.Proteins[:10] {
		nat := gt.NativeOf(pr.Seq.ID, pr.Seq.Len())
		if nat.Len() != pr.Seq.Len() {
			t.Fatalf("%s native length %d, want %d", pr.Seq.ID, nat.Len(), pr.Seq.Len())
		}
	}
	// Unknown IDs still produce a structure (fallback path).
	if gt.NativeOf("UNKNOWN_1", 80).Len() != 80 {
		t.Error("fallback native wrong length")
	}
}

func TestGroundTruthFamilyConservation(t *testing.T) {
	// Two single-domain proteins of the same family must share their fold;
	// different families must not. This is the property the Section 4.6
	// analysis rests on.
	u, _, _, _ := testSetup(t, 5)
	gt := NewGroundTruth(universeSeed)
	mk := func(id string, fam int, l int) proteome.Protein {
		r := rng.New(uint64(l))
		return proteome.Protein{
			Seq:      seq.Sequence{ID: id, Residues: backgroundSeq(r, l)},
			Families: []int{fam},
		}
	}
	a := mk("A_1", 3, 100)
	b := mk("B_1", 3, 105)
	c := mk("C_1", 9, 100)
	gt.RegisterProtein(a)
	gt.RegisterProtein(b)
	gt.RegisterProtein(c)
	_ = u

	natA := gt.NativeOf("A_1", 100)
	natB := gt.NativeOf("B_1", 105)
	natC := gt.NativeOf("C_1", 100)
	tmSame, err := geom.TMScore(natB.CA[:100], natA.CA)
	if err != nil {
		t.Fatal(err)
	}
	tmDiff, err := geom.TMScore(natC.CA, natA.CA)
	if err != nil {
		t.Fatal(err)
	}
	if tmSame < 0.6 {
		t.Errorf("same-family folds TM = %v, want ≥ 0.6", tmSame)
	}
	if tmDiff > 0.45 {
		t.Errorf("different-family folds TM = %v, want < 0.45", tmDiff)
	}
}

func TestFastFeatureGenBehaviour(t *testing.T) {
	_, p, _, _ := testSetup(t, 120)
	gen := DefaultFastFeatureGen(1)
	var lowDivNeff, highDivNeff []float64
	for _, pr := range p.Proteins {
		f, err := gen.Features(pr)
		if err != nil {
			t.Fatal(err)
		}
		if f.Depth < 1 || f.Neff < 1 {
			t.Fatalf("%s: depth %d neff %v", pr.Seq.ID, f.Depth, f.Neff)
		}
		if pr.Divergence < 0.25 {
			lowDivNeff = append(lowDivNeff, f.Neff)
		}
		if pr.Divergence > 0.6 {
			highDivNeff = append(highDivNeff, f.Neff)
		}
	}
	if len(lowDivNeff) == 0 || len(highDivNeff) == 0 {
		t.Fatal("test proteome lacks divergence spread")
	}
	if mean(lowDivNeff) <= mean(highDivNeff) {
		t.Errorf("low-divergence Neff %v not above high-divergence %v",
			mean(lowDivNeff), mean(highDivNeff))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFastMatchesRealFeatureGen(t *testing.T) {
	// Validation of the campaign-scale surrogate: on a shared sample, the
	// fast generator's Neff must correlate with the real search pipeline's
	// Neff (rank behaviour preserved: close homolog families rich, diverged
	// hypotheticals poor).
	u, p, _, _ := testSetup(t, 40)
	libs := map[string]*seqdb.Library{
		"uniref90": seqdb.Build(u, seqdb.BuildSpec{
			Name: "uniref90", EntriesPerFamily: 20,
			MinDivergence: 0.05, MaxDivergence: 0.6, DuplicateFrac: 0.1,
		}, universeSeed),
		"mgnify": seqdb.Build(u, seqdb.BuildSpec{
			Name: "mgnify", EntriesPerFamily: 30,
			MinDivergence: 0.1, MaxDivergence: 0.8, DuplicateFrac: 0.5,
		}, universeSeed+2),
	}
	real := NewRealFeatureGen(libs, msa.DefaultSearchConfig())
	fast := DefaultFastFeatureGen(universeSeed)

	var realN, fastN []float64
	for _, pr := range p.Proteins {
		if pr.Seq.Len() > 400 {
			continue // keep the real search affordable in tests
		}
		rf, err := real.Features(pr)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := fast.Features(pr)
		if err != nil {
			t.Fatal(err)
		}
		realN = append(realN, rf.Neff)
		fastN = append(fastN, ff.Neff)
	}
	if len(realN) < 10 {
		t.Fatal("too few comparable proteins")
	}
	corr := pearson(realN, fastN)
	if corr < 0.4 {
		t.Errorf("fast-vs-real Neff correlation = %v; surrogate drifted from the real pipeline", corr)
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func TestFeatureStage(t *testing.T) {
	_, p, _, _ := testSetup(t, 60)
	cfg := DefaultConfig()
	rep, err := FeatureStage(p.Proteins, DefaultFastFeatureGen(1), fsim.DefaultFilesystem(), ReducedDatabase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 60 || len(rep.Features) != 60 {
		t.Errorf("jobs %d features %d", rep.Jobs, len(rep.Features))
	}
	if rep.WalltimeSec <= 0 || rep.NodeHours <= 0 {
		t.Errorf("walltime %v node-hours %v", rep.WalltimeSec, rep.NodeHours)
	}
}

func TestInferenceStageCompletes(t *testing.T) {
	_, p, _, engine := testSetup(t, 50)
	cfg := DefaultConfig()
	feat, err := FeatureStage(p.Proteins, DefaultFastFeatureGen(1), fsim.DefaultFilesystem(), ReducedDatabase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := InferenceStage(engine, p.Proteins, feat.Features, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 50 || rep.OOMDropped != 0 {
		t.Errorf("completed %d dropped %d", rep.Completed, rep.OOMDropped)
	}
	for _, tr := range rep.Targets {
		if tr.Best == nil {
			t.Fatalf("%s has no best model", tr.ID)
		}
		if len(tr.All) != fold.NumModels {
			t.Errorf("%s has %d models", tr.ID, len(tr.All))
		}
		// Best must have the max pTMS.
		for _, pr := range tr.All {
			if pr.PTMS > tr.Best.PTMS {
				t.Errorf("%s: ranking violated", tr.ID)
			}
		}
	}
	if rep.NodeHours <= 0 {
		t.Error("no node hours charged")
	}
}

func TestInferenceOOMRouting(t *testing.T) {
	// casp14 on long sequences: without high-mem nodes targets drop; with
	// them, they complete on the high-memory wave.
	u := proteome.NewUniverse(universeSeed, 8, 60, 160)
	gt := NewGroundTruth(universeSeed)
	var longProts []proteome.Protein
	r := rng.New(4)
	for i := 0; i < 6; i++ {
		pr := proteome.Protein{
			Seq:        seq.Sequence{ID: "LONG_" + string(rune('A'+i)), Residues: backgroundSeq(r, 900+40*i)},
			Families:   []int{i % u.NumFamilies()},
			Divergence: 0.3,
		}
		longProts = append(longProts, pr)
		gt.RegisterProtein(pr)
	}
	engine := fold.NewEngine(gt, 99)
	gen := DefaultFastFeatureGen(1)
	cfg := DefaultConfig()
	cfg.Preset = fold.CASP14
	feat, err := FeatureStage(longProts, gen, fsim.DefaultFilesystem(), ReducedDatabase(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.HighMemNodes = 0
	rep, err := InferenceStage(engine, longProts, feat.Features, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOMDropped != 6 {
		t.Errorf("without high-mem: dropped %d of 6 long casp14 targets", rep.OOMDropped)
	}

	cfg.HighMemNodes = 2
	rep2, err := InferenceStage(engine, longProts, feat.Features, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Completed != 6 {
		t.Errorf("with high-mem: completed %d of 6", rep2.Completed)
	}
	for _, tr := range rep2.Targets {
		if !tr.OnHighMem {
			t.Errorf("%s not marked as high-mem", tr.ID)
		}
	}
	if rep2.HighMemSim == nil {
		t.Error("high-mem wave missing from report")
	}
}

func TestRelaxStage(t *testing.T) {
	_, p, _, engine := testSetup(t, 40)
	cfg := DefaultConfig()
	feat, err := FeatureStage(p.Proteins, DefaultFastFeatureGen(1), fsim.DefaultFilesystem(), ReducedDatabase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := InferenceStage(engine, p.Proteins, feat.Features, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := RelaxStage(inf.Targets, cfg, relax.PlatformGPU)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Structures != 40 {
		t.Errorf("relaxed %d structures", rel.Structures)
	}
	relCPU, err := RelaxStage(inf.Targets, cfg, relax.PlatformCPU)
	if err != nil {
		t.Fatal(err)
	}
	if relCPU.WalltimeSec <= rel.WalltimeSec {
		t.Errorf("CPU relax walltime %v not above GPU %v", relCPU.WalltimeSec, rel.WalltimeSec)
	}
}

func TestRunCampaign(t *testing.T) {
	_, p, _, engine := testSetup(t, 40)
	cfg := DefaultConfig()
	rep, err := RunCampaign(engine, DefaultFastFeatureGen(1), p.Proteins, fsim.DefaultFilesystem(), ReducedDatabase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ledger.Total("summit") <= 0 || rep.Ledger.Total("andes") <= 0 {
		t.Error("ledger not charged")
	}
	if rep.Inference.Completed != 40 {
		t.Errorf("campaign completed %d", rep.Inference.Completed)
	}
	if rep.Relax.Structures != 40 {
		t.Errorf("campaign relaxed %d", rep.Relax.Structures)
	}
}

func TestConfigValidationPaths(t *testing.T) {
	_, p, _, engine := testSetup(t, 5)
	cfg := DefaultConfig()
	cfg.AndesNodes = 0
	if _, err := FeatureStage(p.Proteins, DefaultFastFeatureGen(1), fsim.DefaultFilesystem(), ReducedDatabase(), cfg); err == nil {
		t.Error("zero Andes nodes accepted")
	}
	cfg = DefaultConfig()
	cfg.SummitNodes = 0
	if _, err := InferenceStage(engine, p.Proteins, nil, cfg); err == nil {
		t.Error("zero Summit nodes accepted")
	}
	cfg = DefaultConfig()
	cfg.RelaxNodes = 0
	if _, err := RelaxStage(nil, cfg, relax.PlatformGPU); err == nil {
		t.Error("zero relax nodes accepted")
	}
}

func TestLongestFirstImprovesInferenceWalltime(t *testing.T) {
	_, p, _, engine := testSetup(t, 200)
	gen := DefaultFastFeatureGen(1)
	cfg := DefaultConfig()
	cfg.SummitNodes = 8
	feat, err := FeatureStage(p.Proteins, gen, fsim.DefaultFilesystem(), ReducedDatabase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := InferenceStage(engine, p.Proteins, feat.Features, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Order = cluster.ShortestFirst
	reversed, err := InferenceStage(engine, p.Proteins, feat.Features, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.WalltimeSec > reversed.WalltimeSec {
		t.Errorf("longest-first walltime %v worse than shortest-first %v",
			sorted.WalltimeSec, reversed.WalltimeSec)
	}
	if sorted.Sim.FinishSpread() > reversed.Sim.FinishSpread() {
		t.Errorf("longest-first spread %v worse than shortest-first %v",
			sorted.Sim.FinishSpread(), reversed.Sim.FinishSpread())
	}
}
