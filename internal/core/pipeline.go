package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/fold"
	"repro/internal/fsim"
	"repro/internal/msa"
	"repro/internal/proteome"
	"repro/internal/relax"
)

// Config holds the deployment parameters of a pipeline run.
type Config struct {
	Preset fold.Preset
	// SummitNodes is the standard-node allocation for inference (32 for
	// the Table 1 benchmark, up to 1000 in the paper's largest runs).
	SummitNodes int
	// HighMemNodes is the high-memory allocation used to re-run tasks that
	// OOM on standard nodes (0 disables the retry, as in the casp14 row of
	// Table 1 where the 8 longest sequences are simply missing).
	HighMemNodes int
	// AndesNodes is the CPU allocation for feature generation.
	AndesNodes int
	// RelaxNodes is the Summit allocation for geometry optimization
	// (8 nodes / 48 workers in Section 4.5).
	RelaxNodes int
	// Replicas is the sequence-library replication layout.
	Replicas fsim.ReplicaLayout
	// DispatchOverhead and StartupDelay parameterize the dataflow engine
	// (seconds). The ~16%-of-walltime overhead in Table 1 comes from these.
	DispatchOverhead float64
	StartupDelay     float64
	// Order is the task submission policy (LongestFirst in the paper).
	Order cluster.OrderPolicy
	// SearchAccel divides the compute portion of feature-generation cost
	// (1 = plain CPU search; 38 models the GPU-HMMER kernel discussed in
	// the paper's conclusion).
	SearchAccel float64
	// Parallelism bounds the host-side worker pool that executes the real
	// compute of each stage (feature generation, the (target x model)
	// inference fan-out, the high-memory retry wave). It controls only how
	// fast the pipeline runs on the host, never the simulated cluster
	// width or any reported number: results are collected in submission
	// order and are byte-identical for every value. <= 0 selects
	// GOMAXPROCS; 1 forces the serial reference path.
	Parallelism int
	// Executor, when set, overrides the default in-process pool: every
	// stage fans its compute out through it (e.g. exec.NewFlow serializes
	// the campaign through the flow scheduler/worker/client protocol).
	// Results are byte-identical across executors and worker counts; nil
	// selects the pool bounded at Parallelism.
	Executor exec.Executor
	// Remote identifies the campaign world to remote workers when Executor
	// dispatches registered job specs across process boundaries
	// (exec.Connect). Required in that case — closures cannot cross
	// processes, so the stages ship (Seed, Species)-keyed specs instead —
	// and ignored for in-process executors.
	Remote *RemoteCampaign
	// SummaryOnly opts into the summary-only result mode for remote spec
	// dispatch: feature kernels return a FeatureDigest instead of the
	// full per-protein msa.Features payload, and inference kernels a
	// PredictionDigest instead of the full fold.Prediction, cutting the
	// wire bytes when the caller only needs the printed report. The
	// printed report is byte-identical either way; only executors that
	// ship specs across processes are affected (in-process closures
	// return nothing over a wire to begin with).
	SummaryOnly bool
	// Resume, when set, reports tasks a previous interrupted run already
	// completed (keyed by trace identity: protein ID, "target/mN",
	// relax target ID — typically an events.CompletedSet replayed from a
	// scheduler event log via `submit -resume`). Stages recompute those
	// tasks locally instead of re-dispatching them, so the report stays
	// byte-identical to an uninterrupted run while the cluster only sees
	// the missing tasks. Only spec-dispatching (remote) executors are
	// affected; nil resumes nothing. Note the feature and relax stages
	// share trace identities (the target ID), so a completed feature task
	// also short-circuits that target's relax dispatch — both recompute
	// to identical values either way.
	Resume func(task string) bool
}

// remoteGuard rejects a spec-only executor without the campaign identity
// the stage kernels need to rebuild the world remotely.
func (c *Config) remoteGuard(x exec.Executor) error {
	if exec.SpecsOnly(x) && c.Remote == nil {
		return fmt.Errorf("core: executor %q dispatches remote specs; Config.Remote must identify the campaign (seed, species)", x.Name())
	}
	return nil
}

// DefaultConfig mirrors the Table 1 benchmark deployment.
func DefaultConfig() Config {
	return Config{
		Preset:           fold.Genome,
		SummitNodes:      32,
		HighMemNodes:     2,
		AndesNodes:       24,
		RelaxNodes:       8,
		Replicas:         fsim.ReplicaLayout{Copies: 24, JobsPerCopy: 4},
		DispatchOverhead: 1.5,
		StartupDelay:     300,
		Order:            cluster.LongestFirst,
	}
}

// gpuWorkersPerNode is the paper's one-Dask-worker-per-GPU layout.
const gpuWorkersPerNode = 6

// standardNodeGPUMemGB is the V100 HBM available to one inference task.
const standardNodeGPUMemGB = 16

// highMemNodeGPUMemGB models the relaxed memory ceiling of the 2 TB
// high-memory nodes (host memory backs the oversized activations).
const highMemNodeGPUMemGB = 64

// FeatureReport is the outcome of the feature-generation stage.
type FeatureReport struct {
	Features map[string]*msa.Features
	// Digests holds the per-protein feature digests of a summary-only
	// remote run (Config.SummaryOnly): the full features stayed on the
	// workers, so Features maps to nil and this carries the MSA summary
	// statistics instead. Empty in full mode.
	Digests     map[string]*FeatureDigest
	WalltimeSec float64
	NodeHours   float64
	Jobs        int
}

// FeatureStage runs feature generation for all proteins on the CPU
// cluster: per-protein search cost from the feature generator, inflated by
// filesystem metadata contention at the replica layout's per-copy
// concurrency, executed in dataflow over min(nodes, layout concurrency)
// workers (one search job per node, as on Andes).
func FeatureStage(proteins []proteome.Protein, gen FeatureGen, fs fsim.Filesystem, db fsim.Database, cfg Config) (*FeatureReport, error) {
	if cfg.AndesNodes <= 0 {
		return nil, fmt.Errorf("core: feature stage needs nodes")
	}
	if err := cfg.Replicas.Validate(); err != nil {
		return nil, err
	}
	// The per-protein searches are independent, so they fan out over the
	// configured executor; results are collected by submission index so the
	// report is identical to the serial loop's. A spec-only executor ships
	// each protein as a KernelFeature spec instead of the closure; the
	// registered kernel recomputes the identical FeatureOut remotely.
	x := exec.Resolve(cfg.Executor, cfg.Parallelism)
	if err := cfg.remoteGuard(x); err != nil {
		return nil, err
	}
	outs, err := exec.MapSpecResume(x, KernelFeature, proteins,
		func(_ int, p proteome.Protein) string { return p.Seq.ID },
		func(_ int, p proteome.Protein) any {
			return FeatureSpec{
				Seed: cfg.Remote.Seed, Species: cfg.Remote.Species, ID: p.Seq.ID,
				Accel: cfg.SearchAccel, JobsPerCopy: cfg.Replicas.JobsPerCopy,
				FS: fs, DB: db, Summary: cfg.SummaryOnly,
			}
		},
		func(_ int, p proteome.Protein) (FeatureOut, error) {
			f, err := gen.Features(p)
			if err != nil {
				return FeatureOut{}, err
			}
			// FeatureCostAccel owns the accel < 1 clamp; the remote kernel
			// relies on the same single owner, keeping both paths identical.
			base := FeatureCostAccel(f, cfg.SearchAccel)
			dur, err := fs.SearchTime(db, base, cfg.Replicas.JobsPerCopy)
			if err != nil {
				return FeatureOut{}, err
			}
			return FeatureOut{Features: f, Seconds: dur}, nil
		},
		cfg.Resume)
	if err != nil {
		return nil, err
	}
	rep := &FeatureReport{Features: make(map[string]*msa.Features, len(proteins))}
	tasks := make([]cluster.SimTask, 0, len(proteins))
	for i, p := range proteins {
		rep.Features[p.Seq.ID] = outs[i].Features
		if outs[i].Digest != nil {
			if rep.Digests == nil {
				rep.Digests = make(map[string]*FeatureDigest, len(proteins))
			}
			rep.Digests[p.Seq.ID] = outs[i].Digest
		}
		tasks = append(tasks, cluster.SimTask{
			ID:       p.Seq.ID,
			Weight:   float64(p.Seq.Len()),
			Duration: outs[i].Seconds,
		})
	}
	cluster.ApplyOrder(tasks, cfg.Order)
	workers := cfg.AndesNodes
	if mc := cfg.Replicas.MaxConcurrency(); workers > mc {
		workers = mc
	}
	sim, err := cluster.SimulateDataflow(tasks, cluster.DataflowOptions{
		Workers:          workers,
		DispatchOverhead: cfg.DispatchOverhead,
		StartupDelay:     cfg.StartupDelay,
	})
	if err != nil {
		return nil, err
	}
	rep.Jobs = len(tasks)
	rep.WalltimeSec = sim.Makespan
	rep.NodeHours = float64(workers) * sim.Makespan / 3600
	return rep, nil
}

// TargetResult is the per-protein outcome of the inference stage.
type TargetResult struct {
	ID     string
	Length int
	// Best is the top-ranked prediction by pTMS (nil if every model OOMed
	// and no high-memory retry was available).
	Best *fold.Prediction
	// All holds the successful model predictions (≤ 5).
	All []*fold.Prediction
	// OnHighMem marks targets that needed the high-memory partition.
	OnHighMem bool
}

// InferenceReport is the outcome of the inference stage.
type InferenceReport struct {
	Targets []TargetResult
	// Completed counts targets with at least one successful model;
	// OOMDropped counts targets lost to out-of-memory with no retry (the
	// missing count in Table 1's casp14 row).
	Completed  int
	OOMDropped int
	// Sim is the dataflow simulation of the standard-node wave.
	Sim *cluster.SimResult
	// HighMemSim is the (possibly nil) high-memory wave.
	HighMemSim  *cluster.SimResult
	WalltimeSec float64
	NodeHours   float64
}

// InferenceStage runs (target × model) inference tasks under the dataflow
// model on the Summit allocation: tasks are sorted by the configured
// policy, OOM failures are retried on the high-memory partition when
// configured, and per-target predictions are ranked by pTMS.
func InferenceStage(engine *fold.Engine, proteins []proteome.Protein, features map[string]*msa.Features, cfg Config) (*InferenceReport, error) {
	if cfg.SummitNodes <= 0 {
		return nil, fmt.Errorf("core: inference stage needs nodes")
	}
	type taskKey struct {
		target string
		model  int
	}
	preds := make(map[taskKey]*fold.Prediction, len(proteins)*fold.NumModels)
	byID := make(map[string]proteome.Protein, len(proteins))

	// Flatten the (target x model) fan-out — the task granularity the
	// paper's Dask deployment uses — and execute it over the executor.
	// The engine is concurrency-safe (per-(seed, target, model) randomness),
	// and the OOM outcomes are data, not control flow, so each slot records
	// either a prediction or its OOM task and the serial assembly below
	// reconstructs the exact serial-order stdTasks and oomTasks slices.
	allTasks := make([]fold.Task, 0, len(proteins)*fold.NumModels)
	for _, p := range proteins {
		byID[p.Seq.ID] = p
		f := features[p.Seq.ID]
		for m := 0; m < fold.NumModels; m++ {
			allTasks = append(allTasks, fold.Task{
				ID:        p.Seq.ID,
				Length:    p.Seq.Len(),
				Features:  f,
				Model:     m,
				Preset:    cfg.Preset,
				NodeMemGB: standardNodeGPUMemGB,
			})
		}
	}
	x := exec.Resolve(cfg.Executor, cfg.Parallelism)
	if err := cfg.remoteGuard(x); err != nil {
		return nil, err
	}
	// inferTaskID is the trace identity of one (target, model) slot — the
	// task granularity of the paper's processing-times file.
	inferTaskID := func(_ int, task fold.Task) string {
		return fmt.Sprintf("%s/m%d", task.ID, task.Model)
	}
	inferSpec := func(memGB float64) func(int, fold.Task) any {
		return func(_ int, task fold.Task) any {
			return InferSpec{
				Seed: cfg.Remote.Seed, Species: cfg.Remote.Species, ID: task.ID,
				Model: task.Model, Preset: cfg.Preset, NodeMemGB: memGB,
				Summary: cfg.SummaryOnly,
			}
		}
	}
	// inferLocal is the in-process body of one inference slot; an OOM
	// outcome is data (a nil prediction routes to the retry wave), not
	// failure.
	inferLocal := func(task fold.Task, memGB float64) (*fold.Prediction, error) {
		task.NodeMemGB = memGB
		pred, err := engine.Infer(task)
		if err != nil {
			if errors.Is(err, fold.ErrOutOfMemory) {
				return nil, nil
			}
			return nil, err
		}
		return pred, nil
	}
	// inferWave fans one wave of tasks out over the executor. In summary
	// mode the wire unit is a PredictionDigest (the pTMS/pLDDT summary)
	// instead of the full fold.Prediction payload; the digest carries
	// every scalar the campaign consumes, so the reconstructed
	// predictions — and every reported number — are identical to full
	// mode at strictly fewer wire bytes.
	inferWave := func(tasks []fold.Task, memGB float64) ([]*fold.Prediction, error) {
		if cfg.SummaryOnly {
			digs, err := exec.MapSpecResume(x, KernelInfer, tasks,
				inferTaskID,
				inferSpec(memGB),
				func(_ int, task fold.Task) (*PredictionDigest, error) {
					pred, err := inferLocal(task, memGB)
					if err != nil || pred == nil {
						return nil, err
					}
					return DigestPrediction(pred), nil
				},
				cfg.Resume)
			if err != nil {
				return nil, err
			}
			preds := make([]*fold.Prediction, len(tasks))
			for i, d := range digs {
				if d != nil {
					preds[i] = d.Prediction(tasks[i].ID, tasks[i].Length)
				}
			}
			return preds, nil
		}
		return exec.MapSpecResume(x, KernelInfer, tasks,
			inferTaskID,
			inferSpec(memGB),
			func(_ int, task fold.Task) (*fold.Prediction, error) {
				return inferLocal(task, memGB)
			},
			cfg.Resume)
	}
	infOuts, err := inferWave(allTasks, standardNodeGPUMemGB)
	if err != nil {
		return nil, err
	}

	stdTasks := make([]cluster.SimTask, 0, len(allTasks))
	var oomTasks []fold.Task
	onHighMem := make(map[string]bool)
	for i, task := range allTasks {
		pred := infOuts[i]
		if pred == nil {
			oomTasks = append(oomTasks, task)
			continue
		}
		preds[taskKey{task.ID, task.Model}] = pred
		stdTasks = append(stdTasks, cluster.SimTask{
			ID:       fmt.Sprintf("%s/m%d", task.ID, task.Model),
			Weight:   float64(task.Length),
			Duration: pred.GPUSeconds,
		})
	}

	cluster.ApplyOrder(stdTasks, cfg.Order)
	sim, err := cluster.SimulateDataflow(stdTasks, cluster.DataflowOptions{
		Workers:          cfg.SummitNodes * gpuWorkersPerNode,
		DispatchOverhead: cfg.DispatchOverhead,
		StartupDelay:     cfg.StartupDelay,
	})
	if err != nil {
		return nil, err
	}
	rep := &InferenceReport{Sim: sim}
	rep.WalltimeSec = sim.Makespan
	rep.NodeHours = float64(cfg.SummitNodes) * sim.Makespan / 3600

	// High-memory retry wave for OOM tasks, fanned out the same way (a
	// task that OOMs even there is dropped).
	if len(oomTasks) > 0 && cfg.HighMemNodes > 0 {
		hmOuts, err := inferWave(oomTasks, highMemNodeGPUMemGB)
		if err != nil {
			return nil, err
		}
		hmTasks := make([]cluster.SimTask, 0, len(oomTasks))
		for i, t := range oomTasks {
			pred := hmOuts[i]
			if pred == nil {
				continue
			}
			preds[taskKey{t.ID, t.Model}] = pred
			onHighMem[t.ID] = true
			hmTasks = append(hmTasks, cluster.SimTask{
				ID:       fmt.Sprintf("%s/m%d", t.ID, t.Model),
				Weight:   float64(t.Length),
				Duration: pred.GPUSeconds,
			})
		}
		if len(hmTasks) > 0 {
			cluster.ApplyOrder(hmTasks, cfg.Order)
			hmSim, err := cluster.SimulateDataflow(hmTasks, cluster.DataflowOptions{
				Workers:          cfg.HighMemNodes * gpuWorkersPerNode,
				DispatchOverhead: cfg.DispatchOverhead,
				StartupDelay:     cfg.StartupDelay,
			})
			if err != nil {
				return nil, err
			}
			rep.HighMemSim = hmSim
			rep.NodeHours += float64(cfg.HighMemNodes) * hmSim.Makespan / 3600
			if hmSim.Makespan > rep.WalltimeSec {
				rep.WalltimeSec = hmSim.Makespan
			}
		}
	}

	// Assemble per-target results, ranked by pTMS as in the paper.
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rep.Targets = make([]TargetResult, 0, len(ids))
	for _, id := range ids {
		p := byID[id]
		tr := TargetResult{ID: id, Length: p.Seq.Len(), OnHighMem: onHighMem[id]}
		for m := 0; m < fold.NumModels; m++ {
			if pred, ok := preds[taskKey{id, m}]; ok {
				tr.All = append(tr.All, pred)
			}
		}
		if best := fold.RankByPTMS(tr.All); best >= 0 {
			tr.Best = tr.All[best]
			rep.Completed++
		} else {
			rep.OOMDropped++
		}
		rep.Targets = append(rep.Targets, tr)
	}
	return rep, nil
}

// RelaxReport is the outcome of the geometry-optimization stage.
type RelaxReport struct {
	Structures  int
	Sim         *cluster.SimResult
	WalltimeSec float64
	NodeHours   float64
}

// RelaxStage relaxes the top model of every completed target on the Summit
// allocation using the optimized single-pass GPU protocol (one worker per
// GPU, 6 per node — the Section 4.5 deployment).
func RelaxStage(targets []TargetResult, cfg Config, platform relax.Platform) (*RelaxReport, error) {
	if cfg.RelaxNodes <= 0 {
		return nil, fmt.Errorf("core: relax stage needs nodes")
	}
	type relaxIn struct {
		id     string
		length int
	}
	ins := make([]relaxIn, 0, len(targets))
	for _, t := range targets {
		if t.Best == nil {
			continue
		}
		ins = append(ins, relaxIn{id: t.ID, length: t.Length})
	}
	// The per-structure cost model fans out like the other stages so a
	// remote deployment runs all three workflow stages on its workers; the
	// RelaxSpec is self-contained (no campaign world needed).
	x := exec.Resolve(cfg.Executor, cfg.Parallelism)
	durs, err := exec.MapSpecResume(x, KernelRelax, ins,
		func(_ int, it relaxIn) string { return it.id },
		func(_ int, it relaxIn) any {
			return RelaxSpec{Length: it.length, Platform: int(platform)}
		},
		func(_ int, it relaxIn) (float64, error) {
			return relax.ModelTime(platform, RelaxHeavyAtoms(it.length), 1), nil
		},
		cfg.Resume)
	if err != nil {
		return nil, err
	}
	tasks := make([]cluster.SimTask, 0, len(ins))
	for i, it := range ins {
		tasks = append(tasks, cluster.SimTask{
			ID:       it.id,
			Weight:   float64(RelaxHeavyAtoms(it.length)),
			Duration: durs[i],
		})
	}
	cluster.ApplyOrder(tasks, cfg.Order)
	workers := cfg.RelaxNodes * gpuWorkersPerNode
	if platform == relax.PlatformCPU {
		workers = cfg.RelaxNodes // full node per CPU relaxation
	}
	sim, err := cluster.SimulateDataflow(tasks, cluster.DataflowOptions{
		Workers:          workers,
		DispatchOverhead: cfg.DispatchOverhead,
		StartupDelay:     60,
	})
	if err != nil {
		return nil, err
	}
	return &RelaxReport{
		Structures:  len(tasks),
		Sim:         sim,
		WalltimeSec: sim.Makespan,
		NodeHours:   float64(cfg.RelaxNodes) * sim.Makespan / 3600,
	}, nil
}

// CampaignReport aggregates a full three-stage run.
type CampaignReport struct {
	Feature   *FeatureReport
	Inference *InferenceReport
	Relax     *RelaxReport
	Ledger    *cluster.Ledger
}

// RunCampaign executes the full pipeline for one proteome and returns the
// combined report with node-hour accounting per machine.
func RunCampaign(engine *fold.Engine, gen FeatureGen, proteins []proteome.Protein, fs fsim.Filesystem, db fsim.Database, cfg Config) (*CampaignReport, error) {
	feat, err := FeatureStage(proteins, gen, fs, db, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: feature stage: %w", err)
	}
	inf, err := InferenceStage(engine, proteins, feat.Features, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: inference stage: %w", err)
	}
	rel, err := RelaxStage(inf.Targets, cfg, relax.PlatformGPU)
	if err != nil {
		return nil, fmt.Errorf("core: relax stage: %w", err)
	}
	ledger := cluster.NewLedger()
	ledger.Charge("andes", feat.NodeHours)
	ledger.Charge("summit", inf.NodeHours)
	ledger.Charge("summit", rel.NodeHours)
	return &CampaignReport{Feature: feat, Inference: inf, Relax: rel, Ledger: ledger}, nil
}

// ReducedDatabase returns the fsim description of the reduced sequence
// dataset (420 GB), and FullDatabase the full one (2.1 TB), with metadata
// op counts reflecting their relative search footprints.
func ReducedDatabase() fsim.Database {
	return fsim.Database{Name: "reduced", SizeBytes: 420e9, MetaOpsPerSearch: 50000}
}

// FullDatabase is the full 2.1 TB dataset.
func FullDatabase() fsim.Database {
	return fsim.Database{Name: "full", SizeBytes: 2100e9, MetaOpsPerSearch: 250000}
}
