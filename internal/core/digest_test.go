package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/fold"
)

// TestPredictionDigestRoundTrip: the digest must preserve every scalar a
// campaign consumes, so a summary-mode remote run reconstructs
// predictions — and every reported number — identical to full mode.
func TestPredictionDigestRoundTrip(t *testing.T) {
	full := &fold.Prediction{
		ID: "DVU_00042", Model: 3, Length: 517,
		Recycles: 7, Converged: true,
		MeanPLDDT: 83.25, PTMS: 0.7921,
		FracAbove70: 0.8125, FracAbove90: 0.3175,
		GPUSeconds: 412.375, PeakMemGB: 9.5,
	}
	d := DigestPrediction(full)

	// The digest survives its wire trip exactly (float64 JSON encoding
	// round-trips by construction).
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var decoded PredictionDigest
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded != *d {
		t.Fatalf("digest changed across JSON round trip: %+v != %+v", decoded, *d)
	}

	got := decoded.Prediction(full.ID, full.Length)
	if !reflect.DeepEqual(got, full) {
		t.Fatalf("reconstructed prediction differs:\ngot  %+v\nwant %+v", got, full)
	}

	// The digest is strictly smaller on the wire than the prediction it
	// summarises — the whole point of the summary mode.
	fullRaw, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) >= len(fullRaw) {
		t.Errorf("digest is %d bytes, full prediction %d — no saving", len(raw), len(fullRaw))
	}
}

// TestPredictionDigestNull: the OOM encoding (a JSON null) decodes to a
// nil digest, routing to the high-memory retry wave exactly as a nil
// full prediction does.
func TestPredictionDigestNull(t *testing.T) {
	var d *PredictionDigest
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "null" {
		t.Fatalf("nil digest encodes as %s", raw)
	}
	var decoded *PredictionDigest
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded != nil {
		t.Fatalf("null decoded to %+v", decoded)
	}
}
