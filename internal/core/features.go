package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/msa"
	"repro/internal/proteome"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// FeatureGen produces folding features for a protein — the stage the paper
// runs on Andes against the replicated sequence libraries.
type FeatureGen interface {
	Features(p proteome.Protein) (*msa.Features, error)
}

// RealFeatureGen runs the actual search pipeline of internal/msa: k-mer
// prefilter, Smith-Waterman alignment, MSA assembly, feature extraction.
// It is the reference implementation; campaign-scale runs use
// FastFeatureGen, which is validated against this one.
type RealFeatureGen struct {
	Searcher *msa.Searcher
}

// NewRealFeatureGen indexes the libraries.
func NewRealFeatureGen(libs map[string]*seqdb.Library, cfg msa.SearchConfig) *RealFeatureGen {
	return &RealFeatureGen{Searcher: msa.NewSearcher(libs, cfg)}
}

// Features implements FeatureGen.
func (g *RealFeatureGen) Features(p proteome.Protein) (*msa.Features, error) {
	res, err := g.Searcher.Search(p.Seq)
	if err != nil {
		return nil, fmt.Errorf("core: feature search for %s: %w", p.Seq.ID, err)
	}
	return msa.ExtractFeatures(res), nil
}

// FastFeatureGen is the statistical surrogate for campaign-scale runs: it
// predicts the MSA summary statistics (depth, Neff, templates) from the
// protein's ground-truth divergence and the library depth, without running
// alignments. Its response is calibrated against RealFeatureGen (see
// TestFastMatchesRealFeatureGen); the folding engine consumes only these
// summary statistics, so the substitution is behaviour-preserving.
type FastFeatureGen struct {
	// EntriesPerFamily mirrors the generating spec of the searched
	// libraries (uniref90-like + mgnify-like depth combined).
	EntriesPerFamily int
	// TemplatesPerFamily mirrors the pdb_seqres depth.
	TemplatesPerFamily int
	// DetectScale controls how fast detectability decays with divergence.
	DetectScale float64
	// EukaryoteDepth scales the effective library depth for eukaryotic
	// queries: public sequence databases are dominated by prokaryotic and
	// metagenomic sequences, so plant proteins find far fewer homologs —
	// the reason the S. divinum proteome is the hard workload in the paper
	// (and its sequences were not yet publicly released at all).
	EukaryoteDepth float64
	// MetagenomicFrac is the fraction of proteins whose families are
	// abundant in the metagenomic libraries (BFD/MGnify) even when they
	// are unannotated: these get deep MSAs despite having no annotated or
	// structural relatives. This is how the paper's hypothetical proteins
	// can be predicted at high confidence (even pLDDT > 90) while matching
	// nothing by sequence.
	MetagenomicFrac  float64
	MetagenomicBoost float64
	Seed             uint64
}

// DefaultFastFeatureGen returns the surrogate calibrated for the standard
// libraries of seqdb.StandardLibraries.
func DefaultFastFeatureGen(seed uint64) *FastFeatureGen {
	return &FastFeatureGen{
		EntriesPerFamily:   50, // uniref90 (20) + mgnify (30)
		TemplatesPerFamily: 2,
		DetectScale:        3.35,
		EukaryoteDepth:     0.12,
		MetagenomicFrac:    0.12,
		MetagenomicBoost:   5,
		Seed:               seed,
	}
}

// Features implements FeatureGen.
func (g *FastFeatureGen) Features(p proteome.Protein) (*msa.Features, error) {
	if err := p.Seq.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(g.Seed).SplitNamed("fastfeat:" + p.Seq.ID)

	// Detectability: a homolog at divergence d_e is found if the combined
	// query+entry divergence leaves enough shared k-mers for the prefilter
	// and enough identity for acceptance. With entry divergences uniform
	// over a range, the expected hit fraction decays ~exponentially in the
	// query divergence.
	detect := math.Exp(-g.DetectScale * p.Divergence * p.Divergence)
	famCount := float64(len(p.Families))
	if famCount == 0 {
		famCount = 1
	}
	depthFactor := 1.0
	if p.Kingdom == proteome.Eukaryote {
		depthFactor = g.EukaryoteDepth
	}
	if r.Float64() < g.MetagenomicFrac {
		detect *= g.MetagenomicBoost
		if detect > 0.95 {
			detect = 0.95
		}
	}
	expHits := float64(g.EntriesPerFamily) * famCount * detect * depthFactor
	depth := 1 // the query row
	if expHits > 0 {
		depth += r.Poisson(expHits)
	}
	// Diversity: found homologs cluster; Neff grows sublinearly with depth.
	neff := 1 + 0.55*float64(depth-1)
	if neff > 1 {
		neff *= 0.9 + 0.2*r.Float64()
	}

	f := &msa.Features{
		Query: p.Seq,
		Depth: depth,
		Neff:  neff,
	}
	// Templates: only near relatives produce usable template hits.
	tDetect := math.Exp(-7 * p.Divergence * p.Divergence)
	nTemp := r.Poisson(float64(g.TemplatesPerFamily) * famCount * tDetect)
	for i := 0; i < nTemp; i++ {
		f.Templates = append(f.Templates, msa.TemplateHit{
			ID:       fmt.Sprintf("fast-template-%d", i),
			Identity: math.Max(0.15, 1-p.Divergence) * (0.8 + 0.2*r.Float64()),
			Coverage: 0.5 + 0.5*r.Float64(),
		})
	}
	if f.Depth > 1 {
		f.MeanRowID = math.Max(0.18, (1-p.Divergence)*(0.85+0.1*r.Float64()))
	}
	// Search cost proxy: alignments against accepted + rejected candidates.
	f.SearchUnits = int64(p.Seq.Len()) * int64(200*(1+expHits))
	return f, nil
}

// FeatureCost converts a feature-generation job into Andes CPU seconds.
// The real cost is dominated by scanning the (reduced) sequence libraries —
// roughly constant per query — with a secondary query-length term and the
// alignment work itself. Constants are calibrated to Section 4.1/4.3.1:
// ~240 Andes node-hours for the 3205-protein D. vulgaris proteome and
// ~2000 for the 25,134-protein S. divinum proteome.
func FeatureCost(f *msa.Features) float64 {
	return FeatureCostAccel(f, 1)
}

// FeatureCostAccel is FeatureCost with the compute portion (library scan
// and alignment, not I/O) divided by an acceleration factor — the model
// behind the conclusion's GPU-HMMER discussion (a 38x kernel was reported
// in 2009). accel must be >= 1.
func FeatureCostAccel(f *msa.Features, accel float64) float64 {
	const (
		ioSeconds      = 12   // fixed per-query I/O, unaffected by compute speed
		dbScanSeconds  = 188  // per-query compute pass over the reduced libraries
		perResidue     = 0.14 // profile width cost
		cellsPerSecond = 4e7  // explicit alignment work
	)
	if accel < 1 {
		accel = 1
	}
	compute := dbScanSeconds + perResidue*float64(f.Query.Len()) +
		float64(f.SearchUnits)/cellsPerSecond
	return ioSeconds + compute/accel
}

// CachedFeatureGen memoizes another FeatureGen per protein ID. Both
// generators in this package are pure functions of (seed, protein), so for
// a fixed underlying generator the memo is behaviour-preserving: repeated
// experiments over the same proteome (Table 1 re-derives features for the
// same 559 proteins under every preset) stop recomputing them. It is safe
// for concurrent use by the parallel execution layer.
type CachedFeatureGen struct {
	Gen FeatureGen

	mu    sync.RWMutex
	cache map[string]*msa.Features
}

// NewCachedFeatureGen wraps gen with a per-protein-ID memo.
func NewCachedFeatureGen(gen FeatureGen) *CachedFeatureGen {
	return &CachedFeatureGen{Gen: gen, cache: make(map[string]*msa.Features)}
}

// Features implements FeatureGen. Cached values are shared pointers;
// callers treat Features as immutable after generation (the engine only
// reads them), so sharing is safe.
func (g *CachedFeatureGen) Features(p proteome.Protein) (*msa.Features, error) {
	g.mu.RLock()
	f, ok := g.cache[p.Seq.ID]
	g.mu.RUnlock()
	if ok {
		return f, nil
	}
	f, err := g.Gen.Features(p)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	// A concurrent worker may have filled the slot; keep the existing
	// value so every caller sees one canonical pointer.
	if prev, ok := g.cache[p.Seq.ID]; ok {
		f = prev
	} else {
		g.cache[p.Seq.ID] = f
	}
	g.mu.Unlock()
	return f, nil
}

var (
	_ FeatureGen = (*RealFeatureGen)(nil)
	_ FeatureGen = (*FastFeatureGen)(nil)
	_ FeatureGen = (*CachedFeatureGen)(nil)
)

// backgroundSeq is used by tests needing arbitrary valid sequences.
func backgroundSeq(r *rng.Source, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = seq.Alphabet[r.Intn(seq.NumAminoAcids)]
	}
	return string(b)
}
