// Package core wires the substrates into the paper's three-stage pipeline:
// CPU feature generation (Andes), GPU model inference under the dataflow
// workflow (Summit), and GPU geometry optimization (Summit), with node-hour
// accounting and the scheduling policies of Section 3.3. It also implements
// the simulation's ground truth: the mapping from proteome proteins to
// their native structures, which the folding surrogate approaches and the
// structural analyses compare against.
package core

import (
	"sync"

	"repro/internal/fold"
	"repro/internal/proteome"
)

// GroundTruth implements fold.NativeProvider for registered proteomes: a
// protein's native structure is the composition of its domain-family folds
// (one topology per family, shared by every family member), fitted to the
// protein's exact length. Multi-domain proteins get multi-domain natives,
// which is what makes "novel arrangements of known domains" discoverable in
// the Section 4.6 analysis.
type GroundTruth struct {
	UniverseSeed uint64

	mu   sync.RWMutex
	byID map[string]proteome.Protein
}

// NewGroundTruth creates an empty provider. The universe seed must match
// the seed used to build the domain universe and the structural database.
func NewGroundTruth(universeSeed uint64) *GroundTruth {
	return &GroundTruth{UniverseSeed: universeSeed, byID: make(map[string]proteome.Protein)}
}

// Register adds every protein of a proteome to the provider.
func (g *GroundTruth) Register(p *proteome.Proteome) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, pr := range p.Proteins {
		g.byID[pr.Seq.ID] = pr
	}
}

// RegisterProtein adds one protein.
func (g *GroundTruth) RegisterProtein(pr proteome.Protein) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.byID[pr.Seq.ID] = pr
}

// Protein returns the registered ground truth for an ID.
func (g *GroundTruth) Protein(id string) (proteome.Protein, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	pr, ok := g.byID[id]
	return pr, ok
}

// NativeOf implements fold.NativeProvider. Unknown IDs fall back to a
// hash-seeded single-domain topology so standalone use keeps working.
func (g *GroundTruth) NativeOf(id string, length int) *fold.Native {
	g.mu.RLock()
	pr, ok := g.byID[id]
	g.mu.RUnlock()
	if !ok || len(pr.Families) == 0 {
		h := g.UniverseSeed
		for i := 0; i < len(id); i++ {
			h ^= uint64(id[i])
			h *= 1099511628211
		}
		return fold.GenerateTopology(h, length)
	}

	// One domain fold per family, sized as an equal share of the chain.
	nDom := len(pr.Families)
	domLen := length / nDom
	if domLen < 10 {
		nDom = 1
		domLen = length
	}
	domains := make([]*fold.Native, 0, nDom)
	for d := 0; d < nDom; d++ {
		f := pr.Families[d%len(pr.Families)]
		l := domLen
		if d == nDom-1 {
			l = length - domLen*(nDom-1)
		}
		seed := fold.FamilyTopologySeed(g.UniverseSeed, f)
		domains = append(domains, fold.GenerateTopology(seed, l))
	}
	composeSeed := g.UniverseSeed ^ uint64(len(id))*0x9e3779b97f4a7c15
	nat := fold.ComposeDomains(domains, composeSeed)
	return fold.FitLength(nat, length, composeSeed^0x5851f42d4c957f2d)
}

var _ fold.NativeProvider = (*GroundTruth)(nil)
