package relax

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// benchSystem builds a deterministic ~300-residue perturbed helix, the
// size class that dominates the genome-scale relaxation workload.
func benchSystem(b *testing.B, n int) *System {
	b.Helper()
	r := rng.New(0xbe7c)
	ca := make([]geom.Vec3, n)
	sc := make([]geom.Vec3, n)
	for i := 0; i < n; i++ {
		t := float64(i)
		ca[i] = geom.Vec3{
			X: 2.3*math.Cos(t) + 0.4*r.NormFloat64(),
			Y: 2.3*math.Sin(t) + 0.4*r.NormFloat64(),
			Z: 1.5*t + 0.4*r.NormFloat64(),
		}
		sc[i] = ca[i].Add(geom.Vec3{X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()}.Unit().Scale(2.4))
	}
	s, err := NewSystem(ca, sc, DefaultForceField())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkEnergyForces measures the inner-loop kernel of the minimizer:
// one full energy + gradient evaluation (bonds, restraints, and the
// grid-accelerated non-bonded pass).
func BenchmarkEnergyForces(b *testing.B) {
	s := benchSystem(b, 300)
	forces := make([]geom.Vec3, len(s.Pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EnergyForces(forces)
	}
}

// BenchmarkMinimize measures a full FIRE minimization of a fresh system,
// the per-structure unit of work of the relaxation stage.
func BenchmarkMinimize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchSystem(b, 300)
		b.StartTimer()
		Minimize(s, DefaultMinimizeOptions())
	}
}
