// Package relax implements the geometry-optimization ("relaxation") stage
// of the pipeline (Sections 3.2.3, 4.4 and 4.5 of the paper): a molecular-
// mechanics energy minimization that removes non-physical clashes and bumps
// from predicted models while perturbing the structure as little as
// possible.
//
// The protocol constants mirror the paper exactly: a harmonic positional
// restraint on every heavy atom with force constant 10 kcal·mol⁻¹·Å⁻², and
// minimization until the energy change between steps falls below
// 2.39 kcal·mol⁻¹. Two protocols are provided: the original AlphaFold one
// (minimize, count violations, repeat while violations remain) and the
// paper's optimized one (a single minimization, no violation loop).
//
// Structures are represented at the Cα + side-chain-centroid level; the
// CASP violation definitions the paper uses (clash: Cα–Cα < 1.9 Å, bump:
// Cα–Cα < 3.6 Å) are defined on Cα distances, so this resolution carries
// the full behaviour of the experiment.
package relax

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
)

// ForceField holds the energy parameters (kcal/mol, Å).
type ForceField struct {
	BondK      float64 // CA(i)-CA(i+1) and CA-SC bond strength
	CABond     float64 // equilibrium consecutive Cα distance
	SCBond     float64 // equilibrium Cα–side-chain distance
	RepK       float64 // soft-sphere repulsion strength
	CARepDist  float64 // Cα–Cα repulsion onset distance
	SCRepDist  float64 // repulsion onset for pairs involving side chains
	RestraintK float64 // positional restraint (10 in the paper)
}

// DefaultForceField returns the parameters used for the reproduction.
func DefaultForceField() ForceField {
	return ForceField{
		BondK:      100,
		CABond:     3.8,
		SCBond:     2.4,
		RepK:       60,
		CARepDist:  4.0,
		SCRepDist:  3.0,
		RestraintK: 10,
	}
}

// System is a minimizable structure: n residues, each with a Cα atom and a
// side-chain centroid pseudo-atom. Atom layout: index 2i = Cα of residue i,
// 2i+1 = side-chain of residue i.
type System struct {
	FF  ForceField
	N   int         // residues
	Pos []geom.Vec3 // 2N atoms
	Ref []geom.Vec3 // restraint reference (the unrelaxed input), 2N atoms

	// Reusable per-system scratch: the neighbor grid rebuilt by every
	// EnergyForces call and the minimizer's force/velocity buffers. The
	// energy kernel runs thousands of times per relaxation, so these are
	// allocated once per system, not once per call. A System is therefore
	// not safe for concurrent use — the parallel execution layer gives
	// each worker its own System, which is the natural unit anyway.
	nb     *grid
	forces []geom.Vec3
	vel    []geom.Vec3
	ca     []geom.Vec3
}

// NewSystem builds a system from Cα and side-chain traces.
func NewSystem(ca, sc []geom.Vec3, ff ForceField) (*System, error) {
	if len(ca) == 0 {
		return nil, fmt.Errorf("relax: empty structure")
	}
	if len(ca) != len(sc) {
		return nil, fmt.Errorf("relax: %d CA vs %d SC atoms", len(ca), len(sc))
	}
	n := len(ca)
	s := &System{FF: ff, N: n, Pos: make([]geom.Vec3, 2*n), Ref: make([]geom.Vec3, 2*n)}
	for i := 0; i < n; i++ {
		s.Pos[2*i] = ca[i]
		s.Pos[2*i+1] = sc[i]
	}
	copy(s.Ref, s.Pos)
	return s, nil
}

// CA returns the current Cα trace.
func (s *System) CA() []geom.Vec3 {
	return s.CAInto(nil)
}

// CAInto writes the current Cα trace into dst (grown as needed) and
// returns it, letting protocol loops reuse one buffer across rounds.
func (s *System) CAInto(dst []geom.Vec3) []geom.Vec3 {
	if cap(dst) < s.N {
		dst = make([]geom.Vec3, s.N)
	}
	dst = dst[:s.N]
	for i := range dst {
		dst[i] = s.Pos[2*i]
	}
	return dst
}

// SC returns the current side-chain centroids.
func (s *System) SC() []geom.Vec3 {
	out := make([]geom.Vec3, s.N)
	for i := range out {
		out[i] = s.Pos[2*i+1]
	}
	return out
}

// grid is a uniform spatial hash for neighbor search. Grids are reusable:
// rebind bumps a generation counter instead of sweeping the map, so
// steady-state rebuilds (every energy evaluation as atoms move) allocate
// nothing and cost only the atoms actually present — cells left over from
// earlier generations read as empty without being visited.
type grid struct {
	cell  float64
	gen   uint64
	cells map[[3]int]*gridCell
}

// gridCell is one occupancy list; it is live only when its gen matches
// the grid's current generation.
type gridCell struct {
	atoms []int
	gen   uint64
}

// rebind repopulates the grid for a new position set, reusing the cell
// map and its occupancy slices. Neighbor iteration order (cell ring
// order, then insertion order by atom index) is unchanged, so results
// stay bitwise identical to a freshly built grid.
func (g *grid) rebind(pos []geom.Vec3, cell float64) {
	g.cell = cell
	if g.cells == nil {
		g.cells = make(map[[3]int]*gridCell, len(pos))
	}
	g.gen++
	for i, p := range pos {
		k := g.key(p)
		c := g.cells[k]
		if c == nil {
			c = &gridCell{}
			g.cells[k] = c
		}
		if c.gen != g.gen {
			c.atoms = c.atoms[:0]
			c.gen = g.gen
		}
		c.atoms = append(c.atoms, i)
	}
}

// at returns the occupancy list of one cell for the current generation.
func (g *grid) at(k [3]int) []int {
	if c := g.cells[k]; c != nil && c.gen == g.gen {
		return c.atoms
	}
	return nil
}

// gridPool recycles grids for the package-level entry points
// (CountViolations) that have no System to hang scratch off.
var gridPool = sync.Pool{New: func() any { return new(grid) }}

func buildGrid(pos []geom.Vec3, cell float64) *grid {
	g := gridPool.Get().(*grid)
	g.rebind(pos, cell)
	return g
}

func (g *grid) key(p geom.Vec3) [3]int {
	return [3]int{
		int(math.Floor(p.X / g.cell)),
		int(math.Floor(p.Y / g.cell)),
		int(math.Floor(p.Z / g.cell)),
	}
}

// neighbors calls fn for every atom index within one cell ring of p.
func (g *grid) neighbors(p geom.Vec3, fn func(j int)) {
	k := g.key(p)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				for _, j := range g.at([3]int{k[0] + dx, k[1] + dy, k[2] + dz}) {
					fn(j)
				}
			}
		}
	}
}

// addBond accumulates one harmonic bond term into forces, returning its
// energy contribution (hoisted out of EnergyForces so the hot loop carries
// no per-call closure).
func (s *System) addBond(forces []geom.Vec3, a, b int, r0, k float64) float64 {
	d := s.Pos[a].Sub(s.Pos[b])
	r := d.Norm()
	if r < 1e-9 {
		return 0
	}
	dr := r - r0
	f := d.Scale(-2 * k * dr / r)
	forces[a] = forces[a].Add(f)
	forces[b] = forces[b].Sub(f)
	return k * dr * dr
}

// EnergyForces computes the total potential energy and per-atom forces
// (negative gradient).
func (s *System) EnergyForces(forces []geom.Vec3) float64 {
	for i := range forces {
		forces[i] = geom.Vec3{}
	}
	var e float64
	ff := &s.FF

	// Bonded terms.
	for i := 0; i < s.N; i++ {
		if i+1 < s.N {
			e += s.addBond(forces, 2*i, 2*(i+1), ff.CABond, ff.BondK)
		}
		e += s.addBond(forces, 2*i, 2*i+1, ff.SCBond, ff.BondK)
	}

	// Positional restraints (every atom, k = 10 as in the paper).
	for i := range s.Pos {
		d := s.Pos[i].Sub(s.Ref[i])
		e += ff.RestraintK * d.Norm2()
		forces[i] = forces[i].Sub(d.Scale(2 * ff.RestraintK))
	}

	// Non-bonded soft-sphere repulsion via spatial hashing. The grid cell
	// equals the largest onset distance so one ring covers all pairs; the
	// grid itself is system-owned scratch, rebound (not reallocated) each
	// call, and the cell ring is iterated inline — no per-atom closure.
	cut := ff.CARepDist
	if ff.SCRepDist > cut {
		cut = ff.SCRepDist
	}
	if s.nb == nil {
		s.nb = new(grid)
	}
	g := s.nb
	g.rebind(s.Pos, cut)
	for a := range s.Pos {
		pa := s.Pos[a]
		k := g.key(pa)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					for _, b := range g.at([3]int{k[0] + dx, k[1] + dy, k[2] + dz}) {
						if b <= a || s.excluded(a, b) {
							continue
						}
						r0 := ff.SCRepDist
						if a%2 == 0 && b%2 == 0 {
							r0 = ff.CARepDist
						}
						d := pa.Sub(s.Pos[b])
						r := d.Norm()
						if r >= r0 || r < 1e-9 {
							continue
						}
						dr := r0 - r
						e += ff.RepK * dr * dr
						f := d.Scale(2 * ff.RepK * dr / r)
						forces[a] = forces[a].Add(f)
						forces[b] = forces[b].Sub(f)
					}
				}
			}
		}
	}
	return e
}

// excluded reports whether the non-bonded term is skipped for an atom pair:
// atoms of the same residue and bonded/adjacent backbone pairs.
func (s *System) excluded(a, b int) bool {
	ra, rb := a/2, b/2
	if ra == rb {
		return true
	}
	diff := ra - rb
	if diff < 0 {
		diff = -diff
	}
	// Consecutive residues: their CA-CA is a bond and the SC positions are
	// geometrically constrained by it; exclude to avoid fighting the bond
	// terms.
	return diff == 1
}

// Violations are the CASP-style structural flaw counts of Section 3.2.3.
type Violations struct {
	Clashes int // Cα–Cα pairs closer than 1.9 Å
	Bumps   int // Cα–Cα pairs closer than 3.6 Å (including clashes)
}

// Clashed reports the paper's "clashed model" criterion: more than 4
// clashes or more than 50 bumps.
func (v Violations) Clashed() bool { return v.Clashes > 4 || v.Bumps > 50 }

// CountViolations counts clashes and bumps over Cα pairs with sequence
// separation of at least 2.
func CountViolations(ca []geom.Vec3) Violations {
	var v Violations
	g := buildGrid(ca, 3.6)
	defer gridPool.Put(g)
	for i := range ca {
		g.neighbors(ca[i], func(j int) {
			if j <= i || j-i < 2 {
				return
			}
			d := ca[i].Dist(ca[j])
			if d < 1.9 {
				v.Clashes++
			}
			if d < 3.6 {
				v.Bumps++
			}
		})
	}
	return v
}
