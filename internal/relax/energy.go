// Package relax implements the geometry-optimization ("relaxation") stage
// of the pipeline (Sections 3.2.3, 4.4 and 4.5 of the paper): a molecular-
// mechanics energy minimization that removes non-physical clashes and bumps
// from predicted models while perturbing the structure as little as
// possible.
//
// The protocol constants mirror the paper exactly: a harmonic positional
// restraint on every heavy atom with force constant 10 kcal·mol⁻¹·Å⁻², and
// minimization until the energy change between steps falls below
// 2.39 kcal·mol⁻¹. Two protocols are provided: the original AlphaFold one
// (minimize, count violations, repeat while violations remain) and the
// paper's optimized one (a single minimization, no violation loop).
//
// Structures are represented at the Cα + side-chain-centroid level; the
// CASP violation definitions the paper uses (clash: Cα–Cα < 1.9 Å, bump:
// Cα–Cα < 3.6 Å) are defined on Cα distances, so this resolution carries
// the full behaviour of the experiment.
package relax

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
)

// ForceField holds the energy parameters (kcal/mol, Å).
type ForceField struct {
	BondK      float64 // CA(i)-CA(i+1) and CA-SC bond strength
	CABond     float64 // equilibrium consecutive Cα distance
	SCBond     float64 // equilibrium Cα–side-chain distance
	RepK       float64 // soft-sphere repulsion strength
	CARepDist  float64 // Cα–Cα repulsion onset distance
	SCRepDist  float64 // repulsion onset for pairs involving side chains
	RestraintK float64 // positional restraint (10 in the paper)
}

// DefaultForceField returns the parameters used for the reproduction.
func DefaultForceField() ForceField {
	return ForceField{
		BondK:      100,
		CABond:     3.8,
		SCBond:     2.4,
		RepK:       60,
		CARepDist:  4.0,
		SCRepDist:  3.0,
		RestraintK: 10,
	}
}

// System is a minimizable structure: n residues, each with a Cα atom and a
// side-chain centroid pseudo-atom. Atom layout: index 2i = Cα of residue i,
// 2i+1 = side-chain of residue i.
type System struct {
	FF  ForceField
	N   int         // residues
	Pos []geom.Vec3 // 2N atoms
	Ref []geom.Vec3 // restraint reference (the unrelaxed input), 2N atoms

	// Reusable per-system scratch: the neighbor grid rebuilt by every
	// EnergyForces call and the minimizer's force/velocity buffers. The
	// energy kernel runs thousands of times per relaxation, so these are
	// allocated once per system, not once per call. A System is therefore
	// not safe for concurrent use — the parallel execution layer gives
	// each worker its own System, which is the natural unit anyway.
	nb     *grid
	forces []geom.Vec3
	vel    []geom.Vec3
	ca     []geom.Vec3
}

// NewSystem builds a system from Cα and side-chain traces.
func NewSystem(ca, sc []geom.Vec3, ff ForceField) (*System, error) {
	if len(ca) == 0 {
		return nil, fmt.Errorf("relax: empty structure")
	}
	if len(ca) != len(sc) {
		return nil, fmt.Errorf("relax: %d CA vs %d SC atoms", len(ca), len(sc))
	}
	n := len(ca)
	s := &System{FF: ff, N: n, Pos: make([]geom.Vec3, 2*n), Ref: make([]geom.Vec3, 2*n)}
	for i := 0; i < n; i++ {
		s.Pos[2*i] = ca[i]
		s.Pos[2*i+1] = sc[i]
	}
	copy(s.Ref, s.Pos)
	return s, nil
}

// CA returns the current Cα trace.
func (s *System) CA() []geom.Vec3 {
	return s.CAInto(nil)
}

// CAInto writes the current Cα trace into dst (grown as needed) and
// returns it, letting protocol loops reuse one buffer across rounds.
func (s *System) CAInto(dst []geom.Vec3) []geom.Vec3 {
	if cap(dst) < s.N {
		dst = make([]geom.Vec3, s.N)
	}
	dst = dst[:s.N]
	for i := range dst {
		dst[i] = s.Pos[2*i]
	}
	return dst
}

// SC returns the current side-chain centroids.
func (s *System) SC() []geom.Vec3 {
	out := make([]geom.Vec3, s.N)
	for i := range out {
		out[i] = s.Pos[2*i+1]
	}
	return out
}

// grid is a uniform neighbor grid backed by an array cell list rather
// than a map-based spatial hash: atoms are bucketed by integer cell
// coordinate into one flat counting-sort layout (cellStart/cellAtoms), so
// the per-evaluation rebuild is two linear passes with no hashing and no
// per-cell pointers — the map lookups were the dominant cost of
// EnergyForces after the allocation diet.
//
// Binning uses the same floor(p/cell) keys as the original hash (the box
// origin only offsets the array index, never the cell assignment), and
// atoms within a cell stay in ascending index order, so pair iteration
// order — and therefore every floating-point accumulation — is bitwise
// identical to the map version. Buffers are grow-only: steady-state
// rebinds allocate nothing.
//
// The dense layout costs memory proportional to the bounding-box volume,
// which for a physical structure is small (a folded or even fully
// extended chain spans few cells in at least two axes). A pathologically
// spread geometry — coordinates flung far apart — would make the box
// volume outgrow the atom count without bound, so rebind falls back to
// the map-based hash beyond maxDenseCells; both paths bin and order
// identically, keeping results bitwise equal either way.
type grid struct {
	cell float64
	// minX/minY/minZ are the integer cell coordinates of the box origin;
	// nx/ny/nz the box dimensions in cells (dense layout only).
	minX, minY, minZ int
	nx, ny, nz       int
	// keys caches each atom's packed cell index between the two passes.
	keys []int32
	// cellStart has nx*ny*nz+1 entries: the atoms of cell c are
	// cellAtoms[cellStart[c]:cellStart[c+1]], ascending by atom index.
	cellStart []int32
	cellAtoms []int32
	cursorBuf []int32

	// Sparse fallback (box volume > maxDenseCells): the original
	// generation-counted spatial hash, O(occupied cells) for any
	// geometry.
	sparse bool
	gen    uint64
	cells  map[[3]int]*gridCell
}

// gridCell is one sparse-path occupancy list; it is live only when its
// gen matches the grid's current generation.
type gridCell struct {
	atoms []int32
	gen   uint64
}

// maxDenseCells bounds the dense layout's bounding-box volume (4M cells
// = 16 MB of int32 — far beyond any physical structure; a 2500-residue
// chain occupies a few hundred thousand cells even fully extended).
const maxDenseCells = 1 << 22

// rebind repopulates the grid for a new position set, reusing all
// buffers.
func (g *grid) rebind(pos []geom.Vec3, cell float64) {
	g.cell = cell
	n := len(pos)
	if cap(g.keys) < n {
		g.keys = make([]int32, n)
	}
	g.keys = g.keys[:n]

	// Pass 1: integer cell coordinates (the hash's floor(p/cell) keys)
	// and the bounding box.
	minX, minY, minZ := math.MaxInt, math.MaxInt, math.MaxInt
	maxX, maxY, maxZ := math.MinInt, math.MinInt, math.MinInt
	for _, p := range pos {
		ix := int(math.Floor(p.X / cell))
		iy := int(math.Floor(p.Y / cell))
		iz := int(math.Floor(p.Z / cell))
		if ix < minX {
			minX = ix
		}
		if ix > maxX {
			maxX = ix
		}
		if iy < minY {
			minY = iy
		}
		if iy > maxY {
			maxY = iy
		}
		if iz < minZ {
			minZ = iz
		}
		if iz > maxZ {
			maxZ = iz
		}
	}
	g.minX, g.minY, g.minZ = minX, minY, minZ

	// Guard the volume computation against overflow: bail to the sparse
	// path the moment any partial product exceeds the cap.
	spanX := int64(maxX) - int64(minX) + 1
	spanY := int64(maxY) - int64(minY) + 1
	spanZ := int64(maxZ) - int64(minZ) + 1
	vol := spanX * spanY
	if n == 0 || spanX > maxDenseCells || spanY > maxDenseCells || spanZ > maxDenseCells ||
		vol > maxDenseCells || vol*spanZ > maxDenseCells {
		g.rebindSparse(pos)
		return
	}
	g.sparse = false
	g.nx, g.ny, g.nz = int(spanX), int(spanY), int(spanZ)

	ncells := g.nx * g.ny * g.nz
	if cap(g.cellStart) < ncells+1 {
		g.cellStart = make([]int32, ncells+1)
	}
	g.cellStart = g.cellStart[:ncells+1]
	for i := range g.cellStart {
		g.cellStart[i] = 0
	}

	// Pass 2: count occupancy per cell (offset by +1 for the running
	// prefix below) and cache each atom's cell.
	for i, p := range pos {
		ix := int(math.Floor(p.X/cell)) - minX
		iy := int(math.Floor(p.Y/cell)) - minY
		iz := int(math.Floor(p.Z/cell)) - minZ
		c := int32((ix*g.ny+iy)*g.nz + iz)
		g.keys[i] = c
		g.cellStart[c+1]++
	}
	for c := 0; c < ncells; c++ {
		g.cellStart[c+1] += g.cellStart[c]
	}

	// Pass 3: place atoms. Iterating i ascending keeps each cell's
	// occupancy list in ascending atom order — the map version's append
	// order, which the bitwise-identity contract depends on.
	if cap(g.cellAtoms) < n {
		g.cellAtoms = make([]int32, n)
	}
	g.cellAtoms = g.cellAtoms[:n]
	cursor := g.cursor(ncells)
	copy(cursor, g.cellStart[:ncells])
	for i := 0; i < n; i++ {
		c := g.keys[i]
		g.cellAtoms[cursor[c]] = int32(i)
		cursor[c]++
	}
}

// rebindSparse is the original spatial hash: generation-counted map
// cells, O(occupied cells) memory for any spread of coordinates.
func (g *grid) rebindSparse(pos []geom.Vec3) {
	g.sparse = true
	if g.cells == nil {
		g.cells = make(map[[3]int]*gridCell, len(pos))
	}
	g.gen++
	for i, p := range pos {
		k := g.key(p)
		c := g.cells[k]
		if c == nil {
			c = &gridCell{}
			g.cells[k] = c
		}
		if c.gen != g.gen {
			c.atoms = c.atoms[:0]
			c.gen = g.gen
		}
		c.atoms = append(c.atoms, int32(i))
	}
}

// cursor is the fill-pass scratch, grown alongside cellStart.
func (g *grid) cursor(ncells int) []int32 {
	if cap(g.cursorBuf) < ncells {
		g.cursorBuf = make([]int32, ncells)
	}
	g.cursorBuf = g.cursorBuf[:ncells]
	return g.cursorBuf
}

// at returns the occupancy list of the cell with integer coordinates k
// (the same floor(p/cell) coordinates the map keys used); cells outside
// the bounding box are empty.
func (g *grid) at(k [3]int) []int32 {
	if g.sparse {
		if c := g.cells[k]; c != nil && c.gen == g.gen {
			return c.atoms
		}
		return nil
	}
	ix, iy, iz := k[0]-g.minX, k[1]-g.minY, k[2]-g.minZ
	if ix < 0 || ix >= g.nx || iy < 0 || iy >= g.ny || iz < 0 || iz >= g.nz {
		return nil
	}
	c := (ix*g.ny+iy)*g.nz + iz
	return g.cellAtoms[g.cellStart[c]:g.cellStart[c+1]]
}

// gridPool recycles grids for the package-level entry points
// (CountViolations) that have no System to hang scratch off.
var gridPool = sync.Pool{New: func() any { return new(grid) }}

func buildGrid(pos []geom.Vec3, cell float64) *grid {
	g := gridPool.Get().(*grid)
	g.rebind(pos, cell)
	return g
}

func (g *grid) key(p geom.Vec3) [3]int {
	return [3]int{
		int(math.Floor(p.X / g.cell)),
		int(math.Floor(p.Y / g.cell)),
		int(math.Floor(p.Z / g.cell)),
	}
}

// neighbors calls fn for every atom index within one cell ring of p.
func (g *grid) neighbors(p geom.Vec3, fn func(j int)) {
	k := g.key(p)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				for _, j := range g.at([3]int{k[0] + dx, k[1] + dy, k[2] + dz}) {
					fn(int(j))
				}
			}
		}
	}
}

// addBond accumulates one harmonic bond term into forces, returning its
// energy contribution (hoisted out of EnergyForces so the hot loop carries
// no per-call closure).
func (s *System) addBond(forces []geom.Vec3, a, b int, r0, k float64) float64 {
	d := s.Pos[a].Sub(s.Pos[b])
	r := d.Norm()
	if r < 1e-9 {
		return 0
	}
	dr := r - r0
	f := d.Scale(-2 * k * dr / r)
	forces[a] = forces[a].Add(f)
	forces[b] = forces[b].Sub(f)
	return k * dr * dr
}

// EnergyForces computes the total potential energy and per-atom forces
// (negative gradient).
func (s *System) EnergyForces(forces []geom.Vec3) float64 {
	for i := range forces {
		forces[i] = geom.Vec3{}
	}
	var e float64
	ff := &s.FF

	// Bonded terms.
	for i := 0; i < s.N; i++ {
		if i+1 < s.N {
			e += s.addBond(forces, 2*i, 2*(i+1), ff.CABond, ff.BondK)
		}
		e += s.addBond(forces, 2*i, 2*i+1, ff.SCBond, ff.BondK)
	}

	// Positional restraints (every atom, k = 10 as in the paper).
	for i := range s.Pos {
		d := s.Pos[i].Sub(s.Ref[i])
		e += ff.RestraintK * d.Norm2()
		forces[i] = forces[i].Sub(d.Scale(2 * ff.RestraintK))
	}

	// Non-bonded soft-sphere repulsion via spatial hashing. The grid cell
	// equals the largest onset distance so one ring covers all pairs; the
	// grid itself is system-owned scratch, rebound (not reallocated) each
	// call, and the cell ring is iterated inline — no per-atom closure.
	cut := ff.CARepDist
	if ff.SCRepDist > cut {
		cut = ff.SCRepDist
	}
	if s.nb == nil {
		s.nb = new(grid)
	}
	g := s.nb
	g.rebind(s.Pos, cut)
	for a := range s.Pos {
		pa := s.Pos[a]
		k := g.key(pa)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					for _, b32 := range g.at([3]int{k[0] + dx, k[1] + dy, k[2] + dz}) {
						b := int(b32)
						if b <= a || s.excluded(a, b) {
							continue
						}
						r0 := ff.SCRepDist
						if a%2 == 0 && b%2 == 0 {
							r0 = ff.CARepDist
						}
						d := pa.Sub(s.Pos[b])
						r := d.Norm()
						if r >= r0 || r < 1e-9 {
							continue
						}
						dr := r0 - r
						e += ff.RepK * dr * dr
						f := d.Scale(2 * ff.RepK * dr / r)
						forces[a] = forces[a].Add(f)
						forces[b] = forces[b].Sub(f)
					}
				}
			}
		}
	}
	return e
}

// excluded reports whether the non-bonded term is skipped for an atom pair:
// atoms of the same residue and bonded/adjacent backbone pairs.
func (s *System) excluded(a, b int) bool {
	ra, rb := a/2, b/2
	if ra == rb {
		return true
	}
	diff := ra - rb
	if diff < 0 {
		diff = -diff
	}
	// Consecutive residues: their CA-CA is a bond and the SC positions are
	// geometrically constrained by it; exclude to avoid fighting the bond
	// terms.
	return diff == 1
}

// Violations are the CASP-style structural flaw counts of Section 3.2.3.
type Violations struct {
	Clashes int // Cα–Cα pairs closer than 1.9 Å
	Bumps   int // Cα–Cα pairs closer than 3.6 Å (including clashes)
}

// Clashed reports the paper's "clashed model" criterion: more than 4
// clashes or more than 50 bumps.
func (v Violations) Clashed() bool { return v.Clashes > 4 || v.Bumps > 50 }

// CountViolations counts clashes and bumps over Cα pairs with sequence
// separation of at least 2.
func CountViolations(ca []geom.Vec3) Violations {
	var v Violations
	g := buildGrid(ca, 3.6)
	defer gridPool.Put(g)
	for i := range ca {
		g.neighbors(ca[i], func(j int) {
			if j <= i || j-i < 2 {
				return
			}
			d := ca[i].Dist(ca[j])
			if d < 1.9 {
				v.Clashes++
			}
			if d < 3.6 {
				v.Bumps++
			}
		})
	}
	return v
}
