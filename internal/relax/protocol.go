package relax

import (
	"fmt"

	"repro/internal/geom"
)

// Platform is where a relaxation runs; it selects the execution-time model
// of Fig. 4.
type Platform int

const (
	// PlatformAF2 is the original AlphaFold relaxation: OpenMM on CPU with
	// the violation-check/retry loop, as run on the PACE cluster.
	PlatformAF2 Platform = iota
	// PlatformCPU is the paper's optimized single-pass protocol on an
	// Andes CPU node (2× EPYC 7302, OpenMM default threading).
	PlatformCPU
	// PlatformGPU is the optimized protocol on a Summit V100 (1 core +
	// 1 GPU per task), the production configuration.
	PlatformGPU
)

func (p Platform) String() string {
	switch p {
	case PlatformAF2:
		return "af2-original"
	case PlatformCPU:
		return "openmm-cpu"
	case PlatformGPU:
		return "openmm-gpu"
	}
	return "unknown"
}

// Result is the outcome of relaxing one structure.
type Result struct {
	CA, SC []geom.Vec3
	Before Violations
	After  Violations
	Rounds int // minimization rounds (1 for the optimized protocol)
	Steps  int // total minimizer steps
	Energy float64
	// Seconds is the modeled wall time on the chosen platform, the
	// quantity Fig. 4 plots against heavy-atom count.
	Seconds float64
}

// Options configure a relaxation run.
type Options struct {
	FF       ForceField
	Min      MinimizeOptions
	Platform Platform
	// HeavyAtoms is the all-atom size of the system for the time model; if
	// zero it is estimated as 7.8 atoms per residue.
	HeavyAtoms int
	// MaxRounds bounds the AF2 violation-retry loop.
	MaxRounds int
}

// DefaultOptions returns the paper-faithful configuration for a platform.
func DefaultOptions(p Platform) Options {
	return Options{
		FF:        DefaultForceField(),
		Min:       DefaultMinimizeOptions(),
		Platform:  p,
		MaxRounds: 10,
	}
}

// Relax runs the appropriate protocol for the platform: the AF2 original
// (minimize; while violations remain, minimize again) on PlatformAF2, and
// the optimized single-minimization protocol otherwise.
func Relax(ca, sc []geom.Vec3, opt Options) (*Result, error) {
	sys, err := NewSystem(ca, sc, opt.FF)
	if err != nil {
		return nil, err
	}
	heavy := opt.HeavyAtoms
	if heavy == 0 {
		heavy = int(7.8 * float64(len(ca)))
	}

	res := &Result{Before: CountViolations(ca)}
	rounds := 0
	totalSteps := 0
	for {
		rounds++
		mr := Minimize(sys, opt.Min)
		totalSteps += mr.Steps
		res.Energy = mr.FinalEnergy
		if opt.Platform != PlatformAF2 {
			break // optimized protocol: exactly one minimization
		}
		// AF2 original protocol: re-minimize while any violation remains.
		// The Cα trace is extracted into system-owned scratch, not a fresh
		// copy per round.
		sys.ca = sys.CAInto(sys.ca)
		v := CountViolations(sys.ca)
		if (v.Clashes == 0 && v.Bumps == 0) || rounds >= opt.MaxRounds {
			break
		}
		// AF2 restarts minimization from the current coordinates with the
		// same restraints; with a deterministic minimizer extra rounds add
		// time but converge quickly.
		if rounds > 1 && mr.Steps <= 1 {
			break // fully converged; more rounds cannot help
		}
	}

	res.CA = sys.CA()
	res.SC = sys.SC()
	res.After = CountViolations(res.CA)
	res.Rounds = rounds
	res.Steps = totalSteps
	res.Seconds = ModelTime(opt.Platform, heavy, rounds)
	return res, nil
}

// ModelTime returns the modeled wall-clock seconds for relaxing a system of
// the given heavy-atom count on a platform, calibrated to the paper:
//
//   - PlatformGPU: ~20 s for a 2,500-atom system, so the 3,205 D. vulgaris
//     structures finish in ~23 minutes on 48 workers (Section 4.5);
//   - PlatformAF2: ~14× the GPU time at genome-typical sizes (Fig. 4), and
//     it multiplies with the violation-retry rounds, which is what produces
//     outliers like T1080's 4.5 hours;
//   - PlatformCPU: in between (a full Andes node per task).
func ModelTime(p Platform, heavyAtoms, rounds int) float64 {
	n := float64(heavyAtoms)
	if rounds < 1 {
		rounds = 1
	}
	switch p {
	case PlatformGPU:
		// GPU launch overhead dominates small systems; scaling is mild.
		return 4.5 + 0.0062*n
	case PlatformCPU:
		return 9.0 + 0.030*n
	default:
		// AF2 original: CPU-bound with violation bookkeeping per round.
		return float64(rounds) * (18.0 + 0.092*n)
	}
}

// Speedup returns t(AF2)/t(p) for a system size, the quantity Fig. 4(B)
// plots.
func Speedup(p Platform, heavyAtoms int) float64 {
	return ModelTime(PlatformAF2, heavyAtoms, 1) / ModelTime(p, heavyAtoms, 1)
}

// Validate sanity-checks an Options value.
func (o *Options) Validate() error {
	if o.Min.MaxSteps <= 0 {
		return fmt.Errorf("relax: MaxSteps must be positive")
	}
	if o.Min.ConvergeDE <= 0 {
		return fmt.Errorf("relax: ConvergeDE must be positive")
	}
	if o.MaxRounds <= 0 {
		return fmt.Errorf("relax: MaxRounds must be positive")
	}
	return nil
}
