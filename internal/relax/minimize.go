package relax

import (
	"math"

	"repro/internal/geom"
)

// MinimizeOptions control the optimizer.
type MinimizeOptions struct {
	// ConvergeDE stops when the energy decrease between consecutive
	// accepted steps falls below this (2.39 kcal/mol in the paper, i.e.
	// 10 kJ/mol).
	ConvergeDE float64
	// MaxSteps bounds the run ("unlimited" in the paper; a large default
	// keeps tests finite).
	MaxSteps int
}

// DefaultMinimizeOptions mirror the paper's protocol.
func DefaultMinimizeOptions() MinimizeOptions {
	return MinimizeOptions{ConvergeDE: 2.39, MaxSteps: 5000}
}

// MinimizeResult summarizes one energy minimization.
type MinimizeResult struct {
	InitialEnergy float64
	FinalEnergy   float64
	Steps         int
	Converged     bool
}

// Minimize runs a FIRE (fast inertial relaxation engine) minimization of
// the system in place. FIRE is the standard choice for removing bad
// contacts: steepest-descent-like robustness with adaptive acceleration.
func Minimize(s *System, opt MinimizeOptions) MinimizeResult {
	n := len(s.Pos)
	// Force/velocity buffers are system-owned scratch, reused across the
	// protocol's minimization rounds. Velocities start at zero each round,
	// matching the fresh-allocation behaviour.
	if cap(s.forces) < n {
		s.forces = make([]geom.Vec3, n)
		s.vel = make([]geom.Vec3, n)
	}
	forces := s.forces[:n]
	vel := s.vel[:n]
	for i := range vel {
		vel[i] = geom.Vec3{}
	}

	const (
		dtInit = 0.002
		dtMax  = 0.02
		alpha0 = 0.1
		fInc   = 1.1
		fDec   = 0.5
		fAlpha = 0.99
		nMinUp = 5
	)
	dt := dtInit
	alpha := alpha0
	upCount := 0

	e := s.EnergyForces(forces)
	res := MinimizeResult{InitialEnergy: e, FinalEnergy: e}
	prevAccepted := e

	for step := 1; step <= opt.MaxSteps; step++ {
		// Velocity Verlet half-kick + drift with force mixing (FIRE).
		var p float64
		for i := 0; i < n; i++ {
			vel[i] = vel[i].Add(forces[i].Scale(dt))
			p += forces[i].Dot(vel[i])
		}
		if p > 0 {
			// Mix velocity toward the force direction.
			var vNorm, fNorm float64
			for i := 0; i < n; i++ {
				vNorm += vel[i].Norm2()
				fNorm += forces[i].Norm2()
			}
			vNorm = math.Sqrt(vNorm)
			fNorm = math.Sqrt(fNorm)
			if fNorm > 1e-12 {
				scale := alpha * vNorm / fNorm
				for i := 0; i < n; i++ {
					vel[i] = vel[i].Scale(1 - alpha).Add(forces[i].Scale(scale))
				}
			}
			upCount++
			if upCount > nMinUp {
				dt = math.Min(dt*fInc, dtMax)
				alpha *= fAlpha
			}
		} else {
			// Uphill: freeze and restart descent.
			for i := 0; i < n; i++ {
				vel[i] = geom.Vec3{}
			}
			dt *= fDec
			alpha = alpha0
			upCount = 0
		}
		for i := 0; i < n; i++ {
			s.Pos[i] = s.Pos[i].Add(vel[i].Scale(dt))
		}

		e = s.EnergyForces(forces)
		res.Steps = step
		res.FinalEnergy = e

		// Convergence: energy change between accepted steps below
		// threshold, checked only while descending so the first uphill
		// fluctuation does not end the run prematurely.
		if p > 0 && prevAccepted-e >= 0 && prevAccepted-e < opt.ConvergeDE {
			res.Converged = true
			break
		}
		if p > 0 {
			prevAccepted = e
		}
	}
	return res
}
