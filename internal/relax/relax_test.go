package relax

import (
	"math"
	"testing"

	"repro/internal/fold"
	"repro/internal/geom"
	"repro/internal/rng"
)

// cleanChain returns a violation-free native-like structure.
func cleanChain(seed uint64, n int) *fold.Native {
	return fold.GenerateTopology(seed, n)
}

// clashedChain plants clashes and bumps the way real model flaws occur:
// residue pairs that are already spatially close are pulled together with a
// smooth along-chain falloff, so chain connectivity stays intact and the
// perturbation is local.
func clashedChain(seed uint64, n, clashes, bumps int) ([]geom.Vec3, []geom.Vec3) {
	nat := cleanChain(seed, n)
	ca := geom.Clone(nat.CA)
	sc := geom.Clone(nat.SC)
	r := rng.New(seed).SplitNamed("plant")
	plant := func(targetD float64) {
		for tries := 0; tries < 500; tries++ {
			i := r.Intn(n)
			j := r.Intn(n)
			if j < i {
				i, j = j, i
			}
			if j-i < 5 {
				continue
			}
			d := ca[i].Dist(ca[j])
			if d < 4.0 || d > 8.0 {
				continue
			}
			// Pull the segment around j toward i with Gaussian falloff.
			dir := ca[i].Sub(ca[j]).Unit()
			pull := d - targetD
			for k := 0; k < n; k++ {
				w := math.Exp(-float64((k-j)*(k-j)) / 8.0)
				shift := dir.Scale(pull * w)
				ca[k] = ca[k].Add(shift)
				sc[k] = sc[k].Add(shift)
			}
			return
		}
	}
	// Verify counts: plants can partially undo each other.
	for attempt := 0; attempt < clashes*8+8; attempt++ {
		if CountViolations(ca).Clashes >= clashes {
			break
		}
		plant(1.2 + 0.5*r.Float64())
	}
	for attempt := 0; attempt < bumps*8+8; attempt++ {
		if CountViolations(ca).Bumps >= bumps+clashes {
			break
		}
		plant(2.2 + 1.0*r.Float64())
	}
	return ca, sc
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, nil, DefaultForceField()); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := NewSystem(make([]geom.Vec3, 3), make([]geom.Vec3, 2), DefaultForceField()); err == nil {
		t.Error("mismatched CA/SC accepted")
	}
}

func TestEnergyForcesFiniteDifference(t *testing.T) {
	// The analytic gradient must match numerical differentiation; this is
	// the make-or-break correctness test for the force field.
	nat := cleanChain(3, 12)
	ca, sc := clashedChain(3, 12, 1, 1)
	_ = nat
	sys, err := NewSystem(ca, sc, DefaultForceField())
	if err != nil {
		t.Fatal(err)
	}
	forces := make([]geom.Vec3, len(sys.Pos))
	e0 := sys.EnergyForces(forces)
	const h = 1e-6
	for a := 0; a < len(sys.Pos); a += 5 { // spot-check a subset of atoms
		for dim := 0; dim < 3; dim++ {
			orig := sys.Pos[a]
			bump := orig
			switch dim {
			case 0:
				bump.X += h
			case 1:
				bump.Y += h
			case 2:
				bump.Z += h
			}
			sys.Pos[a] = bump
			scratch := make([]geom.Vec3, len(sys.Pos))
			e1 := sys.EnergyForces(scratch)
			sys.Pos[a] = orig
			numGrad := (e1 - e0) / h
			var analytic float64
			switch dim {
			case 0:
				analytic = -forces[a].X
			case 1:
				analytic = -forces[a].Y
			case 2:
				analytic = -forces[a].Z
			}
			if math.Abs(numGrad-analytic) > 1e-2*(1+math.Abs(analytic)) {
				t.Fatalf("atom %d dim %d: numerical grad %v vs analytic %v", a, dim, numGrad, analytic)
			}
		}
	}
}

func TestCountViolations(t *testing.T) {
	nat := cleanChain(11, 80)
	v := CountViolations(nat.CA)
	if v.Clashes != 0 {
		t.Errorf("clean chain has %d clashes", v.Clashes)
	}
	ca, _ := clashedChain(11, 80, 3, 5)
	v2 := CountViolations(ca)
	if v2.Clashes < 2 {
		t.Errorf("planted 3 clashes, counted %d", v2.Clashes)
	}
	if v2.Bumps <= v2.Clashes {
		t.Errorf("bumps (%d) must include clashes (%d) plus planted bumps", v2.Bumps, v2.Clashes)
	}
}

func TestViolationsClashed(t *testing.T) {
	if (Violations{Clashes: 4, Bumps: 10}).Clashed() {
		t.Error("4 clashes is not clashed (threshold is >4)")
	}
	if !(Violations{Clashes: 5}).Clashed() {
		t.Error("5 clashes is clashed")
	}
	if !(Violations{Bumps: 51}).Clashed() {
		t.Error("51 bumps is clashed")
	}
}

func TestMinimizeReducesEnergy(t *testing.T) {
	ca, sc := clashedChain(7, 60, 3, 6)
	sys, err := NewSystem(ca, sc, DefaultForceField())
	if err != nil {
		t.Fatal(err)
	}
	res := Minimize(sys, DefaultMinimizeOptions())
	if res.FinalEnergy >= res.InitialEnergy {
		t.Errorf("energy did not decrease: %v -> %v", res.InitialEnergy, res.FinalEnergy)
	}
	if !res.Converged {
		t.Error("minimization did not converge")
	}
}

func TestRelaxRemovesClashes(t *testing.T) {
	// The core Section 4.4 result: all protocols remove every clash.
	for _, p := range []Platform{PlatformAF2, PlatformCPU, PlatformGPU} {
		ca, sc := clashedChain(13, 100, 4, 8)
		res, err := Relax(ca, sc, DefaultOptions(p))
		if err != nil {
			t.Fatal(err)
		}
		if res.Before.Clashes == 0 {
			t.Fatal("test setup failed to plant clashes")
		}
		if res.After.Clashes != 0 {
			t.Errorf("%v: %d clashes remain after relaxation", p, res.After.Clashes)
		}
		if res.After.Bumps > res.Before.Bumps {
			t.Errorf("%v: bumps increased %d -> %d", p, res.Before.Bumps, res.After.Bumps)
		}
	}
}

func TestRelaxPreservesStructure(t *testing.T) {
	// Fig. 3: relaxation must not change the global structure. TM-score of
	// relaxed vs unrelaxed must stay near 1.
	ca, sc := clashedChain(17, 120, 2, 4)
	res, err := Relax(ca, sc, DefaultOptions(PlatformGPU))
	if err != nil {
		t.Fatal(err)
	}
	tm, err := geom.TMScore(res.CA, ca)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 0.9 {
		t.Errorf("relaxation changed structure: TM = %v", tm)
	}
	rmsd, err := geom.SuperposedRMSD(res.CA, ca)
	if err != nil {
		t.Fatal(err)
	}
	if rmsd > 1.5 {
		t.Errorf("relaxation moved atoms by %v Å RMSD", rmsd)
	}
}

func TestOptimizedProtocolSingleRound(t *testing.T) {
	ca, sc := clashedChain(19, 90, 3, 5)
	res, err := Relax(ca, sc, DefaultOptions(PlatformGPU))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("optimized protocol ran %d rounds, want exactly 1", res.Rounds)
	}
}

func TestAF2ProtocolMayRetry(t *testing.T) {
	ca, sc := clashedChain(23, 90, 5, 30)
	res, err := Relax(ca, sc, DefaultOptions(PlatformAF2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 {
		t.Error("AF2 protocol must run at least one round")
	}
	if res.After.Clashes != 0 {
		t.Errorf("AF2 protocol left %d clashes", res.After.Clashes)
	}
}

func TestEquivalentQualityAcrossProtocols(t *testing.T) {
	// Section 4.4: the optimized single-pass protocol recovers the same
	// model quality as the AF2 retry loop.
	ca, sc := clashedChain(29, 110, 3, 6)
	af2, err := Relax(geom.Clone(ca), geom.Clone(sc), DefaultOptions(PlatformAF2))
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := Relax(geom.Clone(ca), geom.Clone(sc), DefaultOptions(PlatformGPU))
	if err != nil {
		t.Fatal(err)
	}
	tmAF2, err := geom.TMScore(af2.CA, ca)
	if err != nil {
		t.Fatal(err)
	}
	tmGPU, err := geom.TMScore(gpu.CA, ca)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tmAF2-tmGPU) > 0.05 {
		t.Errorf("protocol quality differs: AF2 TM %v vs GPU TM %v", tmAF2, tmGPU)
	}
	if af2.After.Clashes != gpu.After.Clashes {
		t.Errorf("clash removal differs: %d vs %d", af2.After.Clashes, gpu.After.Clashes)
	}
}

func TestModelTimeOrdering(t *testing.T) {
	// GPU < CPU < AF2 at every genome-relevant size.
	for _, atoms := range []int{500, 2500, 10000, 30000} {
		g := ModelTime(PlatformGPU, atoms, 1)
		c := ModelTime(PlatformCPU, atoms, 1)
		a := ModelTime(PlatformAF2, atoms, 1)
		if !(g < c && c < a) {
			t.Errorf("atoms=%d: time ordering violated g=%v c=%v a=%v", atoms, g, c, a)
		}
	}
}

func TestSpeedupApproaches14x(t *testing.T) {
	// Fig. 4: up to ~14x GPU speedup at large sizes.
	s := Speedup(PlatformGPU, 30000)
	if s < 10 || s > 20 {
		t.Errorf("large-system GPU speedup = %v, paper reports up to 14x", s)
	}
	// Small systems see less speedup (overhead-dominated).
	if small := Speedup(PlatformGPU, 500); small >= s {
		t.Errorf("small-system speedup %v should be below large-system %v", small, s)
	}
}

func TestAF2RoundsMultiplyTime(t *testing.T) {
	one := ModelTime(PlatformAF2, 2000, 1)
	three := ModelTime(PlatformAF2, 2000, 3)
	if three < 2.9*one {
		t.Errorf("3 rounds = %v, want ~3x single round %v", three, one)
	}
}

func TestGenomeRelaxCalibration(t *testing.T) {
	// Section 4.5: 3205 structures (mean 328 AA ≈ 2560 heavy atoms) in
	// 22.89 min on 48 workers → ~20.6 GPU-seconds per structure.
	sec := ModelTime(PlatformGPU, 2560, 1)
	if sec < 12 || sec > 30 {
		t.Errorf("GPU relax of mean-size structure = %v s, want ~20 s", sec)
	}
}

func TestOptionsValidate(t *testing.T) {
	o := DefaultOptions(PlatformGPU)
	if err := o.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	bad := o
	bad.Min.MaxSteps = 0
	if err := bad.Validate(); err == nil {
		t.Error("MaxSteps=0 accepted")
	}
	bad = o
	bad.Min.ConvergeDE = 0
	if err := bad.Validate(); err == nil {
		t.Error("ConvergeDE=0 accepted")
	}
	bad = o
	bad.MaxRounds = 0
	if err := bad.Validate(); err == nil {
		t.Error("MaxRounds=0 accepted")
	}
}

func BenchmarkRelax100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ca, sc := clashedChain(uint64(i), 100, 2, 4)
		if _, err := Relax(ca, sc, DefaultOptions(PlatformGPU)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnergyForces300(b *testing.B) {
	ca, sc := clashedChain(1, 300, 3, 6)
	sys, err := NewSystem(ca, sc, DefaultForceField())
	if err != nil {
		b.Fatal(err)
	}
	forces := make([]geom.Vec3, len(sys.Pos))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.EnergyForces(forces)
	}
}

// TestGridSparseFallback: a pathologically spread geometry (box volume
// far beyond maxDenseCells) must route the neighbor grid onto the sparse
// map path and still find exactly the close pairs — same binning, same
// within-cell order, bounded memory.
func TestGridSparseFallback(t *testing.T) {
	// Two tight pairs separated by an astronomical offset: the dense
	// bounding box would need ~(2.6e7)^3 cells.
	pos := []geom.Vec3{
		{X: 0, Y: 0, Z: 0},
		{X: 1, Y: 0, Z: 0},
		{X: 1e8, Y: 1e8, Z: 1e8},
		{X: 1e8 + 1, Y: 1e8, Z: 1e8},
	}
	g := buildGrid(pos, 3.6)
	defer gridPool.Put(g)
	if !g.sparse {
		t.Fatal("spread geometry did not trigger the sparse fallback")
	}
	neighborsOf := func(i int) []int {
		var got []int
		g.neighbors(pos[i], func(j int) {
			if j != i {
				got = append(got, j)
			}
		})
		return got
	}
	for i, want := range [][]int{{1}, {0}, {3}, {2}} {
		if got := neighborsOf(i); len(got) != 1 || got[0] != want[0] {
			t.Errorf("neighbors(%d) = %v, want %v", i, got, want)
		}
	}

	// A compact rebind of the same grid switches back to the dense path
	// with identical neighbor semantics.
	compact := []geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 1}, {X: 50, Y: 0, Z: 0}}
	g.rebind(compact, 3.6)
	if g.sparse {
		t.Fatal("compact geometry stayed on the sparse path")
	}
	var got []int
	g.neighbors(compact[0], func(j int) {
		if j != 0 {
			got = append(got, j)
		}
	})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("dense neighbors(0) = %v, want [1]", got)
	}
}
