package experiments

import (
	"repro/internal/fold"
	"repro/internal/msa"
	"repro/internal/proteome"
	"repro/internal/rng"
)

// foldTask builds the standard genome-preset inference task for a protein.
func foldTask(p proteome.Protein, f *msa.Features, model int) fold.Task {
	return fold.Task{
		ID:        p.Seq.ID,
		Length:    p.Seq.Len(),
		Features:  f,
		Model:     model,
		Preset:    fold.Genome,
		NodeMemGB: 16,
	}
}

// newShuffleSource returns a deterministic source for task shuffling.
func newShuffleSource(seed uint64) *rng.Source {
	return rng.New(seed).SplitNamed("shuffle")
}
