package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/fold"
	"repro/internal/proteome"
	"repro/internal/relax"
)

// RegisterCampaignKernels registers the remote bodies of the three
// workflow stages (feature generation, inference, relaxation) in the
// process-wide flow kernel registry, under the names the core stages
// dispatch (core.KernelFeature/KernelInfer/KernelRelax). A standalone
// `proteomectl worker` calls this at startup and then serves the kernels
// through flow.SpecHandler.
//
// Each kernel is the same pure function of its arguments as the in-process
// closure of its stage: the campaign world is rebuilt deterministically
// from (seed, species), so a multi-process run is byte-identical to the
// pool executor at any worker count (TestCampaignMultiProcess).
// Registration is idempotent.
func RegisterCampaignKernels() {
	registerKernelsOnce.Do(func() {
		mustRegister(core.KernelFeature, featureKernel)
		mustRegister(core.KernelInfer, inferKernel)
		mustRegister(core.KernelRelax, relaxKernel)
	})
}

var registerKernelsOnce sync.Once

func mustRegister(name string, fn flow.KernelFunc) {
	if err := flow.Register(name, fn); err != nil {
		panic(err)
	}
}

// kernelWorld caches the reconstructed campaign world of one seed: the Env
// plus per-species protein indices. Worlds are shared by every kernel
// invocation in the process; the Env's feature generator and engine are
// concurrency-safe, and the lazily-built indices are guarded by mu.
type kernelWorld struct {
	env *Env

	mu   sync.Mutex
	byID map[string]map[string]proteome.Protein
}

// maxKernelWorlds bounds the per-process world cache: a long-lived worker
// serving many campaign seeds (parameter sweeps) must not pin every world
// it ever saw — each holds a full proteome plus memoized features. Worlds
// are cheap to rebuild deterministically, so eviction is just memory
// reclamation; in-flight kernels keep their evicted world alive through
// their own reference.
const maxKernelWorlds = 4

var (
	kernelWorldsMu    sync.Mutex
	kernelWorlds      = make(map[uint64]*kernelWorld)
	kernelWorldsOrder []uint64 // insertion order, oldest first
)

func worldFor(seed uint64) *kernelWorld {
	kernelWorldsMu.Lock()
	defer kernelWorldsMu.Unlock()
	w, ok := kernelWorlds[seed]
	if !ok {
		for len(kernelWorlds) >= maxKernelWorlds {
			delete(kernelWorlds, kernelWorldsOrder[0])
			kernelWorldsOrder = kernelWorldsOrder[1:]
		}
		w = &kernelWorld{env: NewEnv(seed), byID: make(map[string]map[string]proteome.Protein)}
		kernelWorlds[seed] = w
		kernelWorldsOrder = append(kernelWorldsOrder, seed)
	}
	return w
}

// protein resolves a (species code, protein ID) pair, generating and
// indexing the species proteome on first use.
func (w *kernelWorld) protein(species, id string) (proteome.Protein, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	idx, ok := w.byID[species]
	if !ok {
		var sp proteome.Species
		found := false
		for _, s := range proteome.PaperSpecies() {
			if s.Code == species {
				sp, found = s, true
				break
			}
		}
		if !found {
			return proteome.Protein{}, fmt.Errorf("experiments: unknown species %q in job spec", species)
		}
		p := w.env.Proteome(sp)
		idx = make(map[string]proteome.Protein, len(p.Proteins))
		for _, pr := range p.Proteins {
			idx[pr.Seq.ID] = pr
		}
		w.byID[species] = idx
	}
	pr, ok := idx[id]
	if !ok {
		return proteome.Protein{}, fmt.Errorf("experiments: no protein %q in species %q", id, species)
	}
	return pr, nil
}

// featureKernel is the remote body of the feature stage: derive one
// protein's features and its contended filesystem search time. In summary
// mode the full feature arrays stay on the worker and only a digest
// crosses the wire — same compute, strictly fewer payload bytes.
func featureKernel(args json.RawMessage) (json.RawMessage, error) {
	var s core.FeatureSpec
	if err := json.Unmarshal(args, &s); err != nil {
		return nil, fmt.Errorf("experiments: decoding feature spec: %w", err)
	}
	w := worldFor(s.Seed)
	pr, err := w.protein(s.Species, s.ID)
	if err != nil {
		return nil, err
	}
	f, err := w.env.FeatureGen().Features(pr)
	if err != nil {
		return nil, err
	}
	base := core.FeatureCostAccel(f, s.Accel)
	dur, err := s.FS.SearchTime(s.DB, base, s.JobsPerCopy)
	if err != nil {
		return nil, err
	}
	if s.Summary {
		return json.Marshal(core.FeatureOut{Digest: core.DigestFeatures(f), Seconds: dur})
	}
	return json.Marshal(core.FeatureOut{Features: f, Seconds: dur})
}

// inferKernel is the remote body of the inference stage: one (target,
// model) task. An OOM outcome is data, not failure — it returns a null
// prediction, which the stage routes to the high-memory retry wave
// exactly as the in-process closure does.
func inferKernel(args json.RawMessage) (json.RawMessage, error) {
	var s core.InferSpec
	if err := json.Unmarshal(args, &s); err != nil {
		return nil, fmt.Errorf("experiments: decoding infer spec: %w", err)
	}
	w := worldFor(s.Seed)
	pr, err := w.protein(s.Species, s.ID)
	if err != nil {
		return nil, err
	}
	f, err := w.env.FeatureGen().Features(pr)
	if err != nil {
		return nil, err
	}
	pred, err := w.env.Engine.Infer(fold.Task{
		ID: s.ID, Length: pr.Seq.Len(), Features: f,
		Model: s.Model, Preset: s.Preset, NodeMemGB: s.NodeMemGB,
	})
	if err != nil {
		if errors.Is(err, fold.ErrOutOfMemory) {
			// Null either way: summary and full mode agree on the OOM
			// encoding, so the retry wave routes identically.
			return json.Marshal((*fold.Prediction)(nil))
		}
		return nil, err
	}
	if s.Summary {
		// Summary mode keeps the full prediction on the worker and ships
		// the pTMS/pLDDT digest — same compute, strictly fewer bytes.
		return json.Marshal(core.DigestPrediction(pred))
	}
	return json.Marshal(pred)
}

// relaxKernel is the remote body of the relax stage: the modeled
// relaxation walltime of one structure.
func relaxKernel(args json.RawMessage) (json.RawMessage, error) {
	var s core.RelaxSpec
	if err := json.Unmarshal(args, &s); err != nil {
		return nil, fmt.Errorf("experiments: decoding relax spec: %w", err)
	}
	dur := relax.ModelTime(relax.Platform(s.Platform), core.RelaxHeavyAtoms(s.Length), 1)
	return json.Marshal(dur)
}
