package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/casp"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fold"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/proteome"
	"repro/internal/relax"
)

// FeatureGenResult reproduces Section 4.1: feature generation for the
// D. vulgaris proteome on Andes versus inference on Summit, and the
// reduced-versus-full dataset trade.
type FeatureGenResult struct {
	Proteins            int
	MeanLen             float64
	AndesNodeHours      float64 // paper: ~240
	SummitNodeHours     float64 // paper: ~400
	AndesWallHours      float64
	SummitWallHours     float64
	FullDBNodeHours     float64 // same workload against the 2.1 TB dataset
	ReplicationHoursRed float64 // one-time cost of creating the 24 copies
	ReplicationHoursFul float64
}

// FeatureGen runs the Section 4.1 comparison.
func FeatureGenExperiment(env *Env) (*FeatureGenResult, error) {
	dvu := env.Proteome(proteome.DVulgaris)
	proteins := dvu.FilterMaxLen(2500)
	cfg := env.config()
	cfg.AndesNodes = 96 // 24 copies x 4 jobs

	feat, err := core.FeatureStage(proteins, env.FeatureGen(), env.FS, core.ReducedDatabase(), cfg)
	if err != nil {
		return nil, err
	}
	inf, err := core.InferenceStage(env.Engine, proteins, feat.Features, cfg)
	if err != nil {
		return nil, err
	}

	res := &FeatureGenResult{
		Proteins:        len(proteins),
		MeanLen:         dvu.MeanLength(),
		AndesNodeHours:  feat.NodeHours,
		SummitNodeHours: inf.NodeHours,
		AndesWallHours:  feat.WalltimeSec / 3600,
		SummitWallHours: inf.WalltimeSec / 3600,
	}

	// Same search workload against the full dataset: the metadata cost per
	// search is ~5x, which is the I/O argument for the reduction.
	fullCfg := cfg
	featFull, err := core.FeatureStage(proteins, env.FeatureGen(), env.FS, core.FullDatabase(), fullCfg)
	if err != nil {
		return nil, err
	}
	res.FullDBNodeHours = featFull.NodeHours

	layout := cfg.Replicas
	repRed, err := env.FS.ReplicationTime(core.ReducedDatabase(), layout)
	if err != nil {
		return nil, err
	}
	repFull, err := env.FS.ReplicationTime(core.FullDatabase(), layout)
	if err != nil {
		return nil, err
	}
	res.ReplicationHoursRed = repRed / 3600
	res.ReplicationHoursFul = repFull / 3600
	return res, nil
}

// Render writes the Section 4.1 report.
func (r *FeatureGenResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Sec 4.1: D. vulgaris feature generation vs inference (%d proteins, mean %.0f AA)\n", r.Proteins, r.MeanLen)
	fmt.Fprintf(w, "  Andes feature gen    %.0f node-hours (paper ~240), wall %.1f h\n", r.AndesNodeHours, r.AndesWallHours)
	fmt.Fprintf(w, "  Summit inference     %.0f node-hours (paper ~400), wall %.1f h\n", r.SummitNodeHours, r.SummitWallHours)
	fmt.Fprintf(w, "  full 2.1TB dataset   %.0f node-hours for the same searches (reduced wins)\n", r.FullDBNodeHours)
	fmt.Fprintf(w, "  replication (24x)    reduced %.2f h vs full %.2f h one-time cost\n", r.ReplicationHoursRed, r.ReplicationHoursFul)
	return nil
}

// RecycleGainsResult reproduces the Section 4.2 analysis: the super-preset
// improvement over reduced_dbs is concentrated in a few hard targets that
// recycle to the cap.
type RecycleGainsResult struct {
	Targets int
	// TotalGain is the summed positive pTMS improvement.
	TotalGain float64
	// FracGainFromBig is the fraction of TotalGain contributed by targets
	// with Δ ≥ 0.1 (paper: ~45% from ~5% of targets).
	FracGainFromBig   float64
	FracTargetsBig    float64
	FracGainFromMed   float64 // Δ ≥ 0.05 (paper: 74% from 12%)
	FracTargetsMed    float64
	MeanRecyclesOfBig float64 // paper: ~19 (close to the cap of 20)
}

// RecycleGains runs the improvement-distribution analysis on the
// 559-sequence benchmark.
func RecycleGains(env *Env) (*RecycleGainsResult, error) {
	bench := env.Benchmark559()
	feats, err := env.FeaturesFor(bench)
	if err != nil {
		return nil, err
	}
	res := &RecycleGainsResult{Targets: len(bench)}
	type gain struct {
		delta    float64
		recycles int
		ok       bool
	}
	// Each protein runs its 2x5 preset-pair inferences on the worker pool;
	// the gain statistics fold serially in submission order below.
	perTarget, err := exec.Map(env.executor(), bench, func(_ int, p proteome.Protein) (gain, error) {
		f := feats[p.Seq.ID]
		var shortBest, longBest *fold.Prediction
		for m := 0; m < fold.NumModels; m++ {
			ts := foldTask(p, f, m)
			ts.Preset = fold.ReducedDBs
			ps, err := env.Engine.Infer(ts)
			if err != nil {
				continue
			}
			tl := foldTask(p, f, m)
			tl.Preset = fold.Super
			pl, err := env.Engine.Infer(tl)
			if err != nil {
				continue
			}
			if shortBest == nil || ps.PTMS > shortBest.PTMS {
				shortBest = ps
			}
			if longBest == nil || pl.PTMS > longBest.PTMS {
				longBest = pl
			}
		}
		if shortBest == nil || longBest == nil {
			return gain{}, nil
		}
		if d := longBest.PTMS - shortBest.PTMS; d > 0 {
			return gain{delta: d, recycles: longBest.Recycles, ok: true}, nil
		}
		return gain{}, nil
	})
	if err != nil {
		return nil, err
	}
	var gains []gain
	for _, g := range perTarget {
		if g.ok {
			gains = append(gains, g)
			res.TotalGain += g.delta
		}
	}
	var bigGain, medGain, bigRecycles float64
	var nBig, nMed int
	for _, g := range gains {
		if g.delta >= 0.1 {
			bigGain += g.delta
			bigRecycles += float64(g.recycles)
			nBig++
		}
		if g.delta >= 0.05 {
			medGain += g.delta
			nMed++
		}
	}
	if res.TotalGain > 0 {
		res.FracGainFromBig = bigGain / res.TotalGain
		res.FracGainFromMed = medGain / res.TotalGain
	}
	res.FracTargetsBig = float64(nBig) / float64(res.Targets)
	res.FracTargetsMed = float64(nMed) / float64(res.Targets)
	if nBig > 0 {
		res.MeanRecyclesOfBig = bigRecycles / float64(nBig)
	}
	return res, nil
}

// Render writes the Section 4.2 report.
func (r *RecycleGainsResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Sec 4.2: recycle-improvement distribution (super vs reduced_dbs, %d targets)\n", r.Targets)
	fmt.Fprintf(w, "  Δ≥0.10: %.0f%% of gain from %.0f%% of targets (paper: 45%% from 5%%)\n",
		100*r.FracGainFromBig, 100*r.FracTargetsBig)
	fmt.Fprintf(w, "  Δ≥0.05: %.0f%% of gain from %.0f%% of targets (paper: 74%% from 12%%)\n",
		100*r.FracGainFromMed, 100*r.FracTargetsMed)
	fmt.Fprintf(w, "  mean recycles of Δ≥0.1 targets: %.1f (paper: ~19, cap 20)\n", r.MeanRecyclesOfBig)
	return nil
}

// SDivinumResult reproduces Section 4.3.1: the plant-proteome run.
type SDivinumResult struct {
	Proteins          int
	Completed         int
	FracPLDDTAbove70  float64 // paper: ~57% of top models
	ResidueCoverage70 float64 // paper: 58% of residues at pLDDT > 70
	ResidueCoverage90 float64 // paper: ~36% at pLDDT > 90
	FracPTMSAbove06   float64 // paper: ~53%
	MeanRecycles      float64 // paper: 12
	AndesNodeHours    float64 // paper: ~2000
	SummitNodeHours   float64 // paper: ~3000 (inference incl. overheads)
}

// SDivinum runs the full plant proteome.
func SDivinum(env *Env) (*SDivinumResult, error) {
	sd := env.Proteome(proteome.SDivinum)
	proteins := sd.FilterMaxLen(2500)
	cfg := env.config()
	cfg.AndesNodes = 96
	cfg.SummitNodes = 200
	cfg.HighMemNodes = 4

	feat, err := core.FeatureStage(proteins, env.FeatureGen(), env.FS, core.ReducedDatabase(), cfg)
	if err != nil {
		return nil, err
	}
	inf, err := core.InferenceStage(env.Engine, proteins, feat.Features, cfg)
	if err != nil {
		return nil, err
	}
	res := &SDivinumResult{
		Proteins:        len(proteins),
		Completed:       inf.Completed,
		AndesNodeHours:  feat.NodeHours,
		SummitNodeHours: inf.NodeHours,
	}
	var nPL, nTM int
	var recycles float64
	var totalRes, res70, res90 float64
	for _, t := range inf.Targets {
		if t.Best == nil {
			continue
		}
		if t.Best.MeanPLDDT > 70 {
			nPL++
		}
		if t.Best.PTMS > 0.6 {
			nTM++
		}
		recycles += float64(t.Best.Recycles)
		l := float64(t.Length)
		totalRes += l
		res70 += l * t.Best.FracAbove70
		res90 += l * t.Best.FracAbove90
	}
	if inf.Completed > 0 {
		res.FracPLDDTAbove70 = float64(nPL) / float64(inf.Completed)
		res.FracPTMSAbove06 = float64(nTM) / float64(inf.Completed)
		res.MeanRecycles = recycles / float64(inf.Completed)
	}
	if totalRes > 0 {
		res.ResidueCoverage70 = res70 / totalRes
		res.ResidueCoverage90 = res90 / totalRes
	}
	return res, nil
}

// Render writes the Section 4.3.1 report.
func (r *SDivinumResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Sec 4.3.1: S. divinum proteome (%d proteins, %d completed)\n", r.Proteins, r.Completed)
	fmt.Fprintf(w, "  top models pLDDT>70   %.0f%% (paper ~57%%)\n", 100*r.FracPLDDTAbove70)
	fmt.Fprintf(w, "  residue coverage >70  %.0f%% (paper 58%%)\n", 100*r.ResidueCoverage70)
	fmt.Fprintf(w, "  residue coverage >90  %.0f%% (paper ~36%%)\n", 100*r.ResidueCoverage90)
	fmt.Fprintf(w, "  top models pTMS>0.6   %.0f%% (paper ~53%%)\n", 100*r.FracPTMSAbove06)
	fmt.Fprintf(w, "  mean recycles         %.1f (paper 12)\n", r.MeanRecycles)
	fmt.Fprintf(w, "  Andes node-hours      %.0f (paper ~2000)\n", r.AndesNodeHours)
	fmt.Fprintf(w, "  Summit node-hours     %.0f (paper ~3000)\n", r.SummitNodeHours)
	return nil
}

// ViolationsResult reproduces Section 4.4: violation statistics before and
// after relaxation with each method over the 160-model CASP set.
type ViolationsResult struct {
	Models        int
	ClashesBefore metrics.Summary // paper: 0.22 ± 1.09, max 8
	BumpsBefore   metrics.Summary // paper: 3.76 ± 12.74, max 148
	// After per platform.
	ClashesAfter map[relax.Platform]metrics.Summary // paper: 0 for all methods
	BumpsAfter   map[relax.Platform]metrics.Summary // paper: 2.12/2.71/2.59 means
}

// Violations runs the full 160-model relaxation comparison.
func Violations(env *Env) (*ViolationsResult, error) {
	set := casp.NewSet(env.Seed ^ 0xCA5B)
	res := &ViolationsResult{
		Models:       len(set.Models),
		ClashesAfter: map[relax.Platform]metrics.Summary{},
		BumpsAfter:   map[relax.Platform]metrics.Summary{},
	}
	var cb, bb []float64
	after := map[relax.Platform]*[2][]float64{}
	for _, p := range fig3Platforms {
		after[p] = &[2][]float64{}
	}
	// One item per model: its three relax-protocol runs execute on the
	// worker pool; counts are folded serially in submission order.
	type violOut struct {
		before  relax.Violations
		clashes [3]int
		bumps   [3]int
	}
	models := make([]*casp.Model, len(set.Models))
	for mi := range set.Models {
		models[mi] = &set.Models[mi]
	}
	outs, err := exec.Map(env.executor(), models, func(_ int, m *casp.Model) (violOut, error) {
		var out violOut
		out.before = relax.CountViolations(m.CA)
		for pi, platform := range fig3Platforms {
			opt := relax.DefaultOptions(platform)
			opt.HeavyAtoms = m.HeavyAtoms
			rr, err := relax.Relax(geom.Clone(m.CA), geom.Clone(m.SC), opt)
			if err != nil {
				return violOut{}, err
			}
			out.clashes[pi] = rr.After.Clashes
			out.bumps[pi] = rr.After.Bumps
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		cb = append(cb, float64(out.before.Clashes))
		bb = append(bb, float64(out.before.Bumps))
		for pi, platform := range fig3Platforms {
			after[platform][0] = append(after[platform][0], float64(out.clashes[pi]))
			after[platform][1] = append(after[platform][1], float64(out.bumps[pi]))
		}
	}
	res.ClashesBefore = metrics.Summarize(cb)
	res.BumpsBefore = metrics.Summarize(bb)
	for _, platform := range fig3Platforms {
		res.ClashesAfter[platform] = metrics.Summarize(after[platform][0])
		res.BumpsAfter[platform] = metrics.Summarize(after[platform][1])
	}
	return res, nil
}

// Render writes the Section 4.4 report.
func (r *ViolationsResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Sec 4.4: violation reduction over %d CASP14-like models\n", r.Models)
	fmt.Fprintf(w, "  before: clashes %.2f ± %.2f (max %.0f; paper 0.22 ± 1.09 max 8)\n",
		r.ClashesBefore.Mean, r.ClashesBefore.Std, r.ClashesBefore.Max)
	fmt.Fprintf(w, "          bumps   %.2f ± %.2f (max %.0f; paper 3.76 ± 12.74 max 148)\n",
		r.BumpsBefore.Mean, r.BumpsBefore.Std, r.BumpsBefore.Max)
	for _, p := range fig3Platforms {
		fmt.Fprintf(w, "  after %-12s clashes %.2f (paper 0), bumps %.2f ± %.2f (max %.0f)\n",
			p.String()+":", r.ClashesAfter[p].Mean, r.BumpsAfter[p].Mean, r.BumpsAfter[p].Std, r.BumpsAfter[p].Max)
	}
	fmt.Fprintln(w, "  paper after-bumps: 2.12 ± 3.70 (AF2), 2.59 ± 5.34 (CPU), 2.71 ± 5.90 (GPU)")
	return nil
}

// GenomeRelaxResult reproduces Section 4.5: relaxing the 3205 top
// D. vulgaris models on 8 Summit nodes (48 workers) — 22.89 minutes in the
// paper.
type GenomeRelaxResult struct {
	Structures  int
	Workers     int
	WallMinutes float64
	NodeHours   float64
}

// GenomeRelax runs the genome-scale relaxation workflow.
func GenomeRelax(env *Env) (*GenomeRelaxResult, error) {
	dvu := env.Proteome(proteome.DVulgaris)
	proteins := dvu.FilterMaxLen(2500)
	cfg := env.config()
	feat, err := core.FeatureStage(proteins, env.FeatureGen(), env.FS, core.ReducedDatabase(), cfg)
	if err != nil {
		return nil, err
	}
	inf, err := core.InferenceStage(env.Engine, proteins, feat.Features, cfg)
	if err != nil {
		return nil, err
	}
	cfg.RelaxNodes = 8
	rel, err := core.RelaxStage(inf.Targets, cfg, relax.PlatformGPU)
	if err != nil {
		return nil, err
	}
	return &GenomeRelaxResult{
		Structures:  rel.Structures,
		Workers:     cfg.RelaxNodes * 6,
		WallMinutes: rel.WalltimeSec / 60,
		NodeHours:   rel.NodeHours,
	}, nil
}

// Render writes the Section 4.5 report.
func (r *GenomeRelaxResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Sec 4.5: genome-scale relaxation of %d structures on %d workers\n", r.Structures, r.Workers)
	fmt.Fprintf(w, "  wall time  %.2f min (paper 22.89 min)\n", r.WallMinutes)
	fmt.Fprintf(w, "  node-hours %.1f\n", r.NodeHours)
	return nil
}

// AnnotationResult reproduces Section 4.6: structural annotation of the
// 559 hypothetical D. vulgaris proteins.
type AnnotationResult struct {
	Report analysis.Report
	// NovelExample is the best high-confidence/no-match case found (the
	// paper's homocysteine-synthesis example: pLDDT > 90, top TM 0.358).
	NovelExampleID string
	NovelExampleTM float64
}

// Annotation runs the hypothetical-protein analysis: predict structures for
// the 559 hypotheticals, search them against the pdb70 stand-in (85% family
// coverage), and aggregate the annotation-transfer statistics.
func Annotation(env *Env) (*AnnotationResult, error) {
	hypos := env.Benchmark559()
	feats, err := env.FeaturesFor(hypos)
	if err != nil {
		return nil, err
	}

	// pdb70 covers 85% of families; the rest are novel-fold territory.
	var covered []int
	for f := 0; f < env.Universe.NumFamilies(); f++ {
		if f%7 != 3 { // deterministic ~86% coverage
			covered = append(covered, f)
		}
	}
	db := analysis.BuildPDB70(env.Universe, covered, env.Seed)

	// Each protein's model ranking, coordinate materialization, and
	// structure search run as one work item; annotations come back in
	// submission order so the aggregate and the novel-example tie-breaks
	// match the serial loop exactly.
	res := &AnnotationResult{}
	perProtein, err := exec.Map(env.executor(), hypos, func(_ int, p proteome.Protein) (*analysis.Annotation, error) {
		// Rank the five models by pTMS and analyse the top one, as the
		// paper's pipeline does.
		bestModel, bestPTMS := 0, -1.0
		for m := 0; m < fold.NumModels; m++ {
			summary, err := env.Engine.Infer(foldTask(p, feats[p.Seq.ID], m))
			if err != nil {
				continue
			}
			if summary.PTMS > bestPTMS {
				bestPTMS = summary.PTMS
				bestModel = m
			}
		}
		task := foldTask(p, feats[p.Seq.ID], bestModel)
		task.WantCoords = true
		pred, err := env.Engine.Infer(task)
		if err != nil {
			return nil, nil // e.g. OOM: the target is skipped, as serially
		}
		return analysis.Annotate(db, p.Seq.ID, pred.CA, p.Seq.Residues, pred.MeanPLDDT)
	})
	if err != nil {
		return nil, err
	}
	anns := make([]*analysis.Annotation, 0, len(perProtein))
	for _, ann := range perProtein {
		if ann == nil {
			continue
		}
		anns = append(anns, ann)
		if ann.NovelFoldCandidate && (res.NovelExampleID == "" || ann.Top.TM < res.NovelExampleTM) {
			res.NovelExampleID = ann.ID
			res.NovelExampleTM = ann.Top.TM
		}
	}
	res.Report = analysis.Aggregate(anns)
	return res, nil
}

// Render writes the Section 4.6 report.
func (r *AnnotationResult) Render(w io.Writer) error {
	rep := r.Report
	fmt.Fprintf(w, "Sec 4.6: structural annotation of %d hypothetical proteins\n", rep.Total)
	fmt.Fprintf(w, "  TM ≥ 0.6 structural match  %d (paper 239)\n", rep.StructuralMatch)
	fmt.Fprintf(w, "  ... with seq id < 20%%      %d (paper 215)\n", rep.MatchSeqIDBelow20)
	fmt.Fprintf(w, "  ... with seq id < 10%%      %d (paper 112)\n", rep.MatchSeqIDBelow10)
	fmt.Fprintf(w, "  novel-fold candidates      %d\n", rep.NovelFolds)
	if r.NovelExampleID != "" {
		fmt.Fprintf(w, "  example: %s top TM %.3f at pLDDT>90 (paper example: TM 0.358)\n",
			r.NovelExampleID, r.NovelExampleTM)
	}
	return nil
}

// CampaignResult reproduces the headline scale numbers: all four proteomes
// (35,634 targets) within the node-hour budget of the abstract.
type CampaignResult struct {
	Species         []string
	Targets         int
	Completed       int
	SummitNodeHours float64 // paper: < 4000 total
	AndesNodeHours  float64
}

// Campaign runs the full four-species campaign end to end.
func Campaign(env *Env) (*CampaignResult, error) {
	res := &CampaignResult{}
	for _, sp := range proteome.PaperSpecies() {
		p := env.Proteome(sp)
		proteins := p.FilterMaxLen(2500)
		cfg := env.config()
		cfg.AndesNodes = 96
		cfg.SummitNodes = 200
		cfg.HighMemNodes = 4
		rep, err := core.RunCampaign(env.Engine, env.FeatureGen(), proteins, env.FS, core.ReducedDatabase(), cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: campaign %s: %w", sp.Code, err)
		}
		res.Species = append(res.Species, sp.Name)
		res.Targets += len(proteins)
		res.Completed += rep.Inference.Completed
		res.SummitNodeHours += rep.Ledger.Total("summit")
		res.AndesNodeHours += rep.Ledger.Total("andes")
	}
	sort.Strings(res.Species)
	return res, nil
}

// Render writes the campaign report.
func (r *CampaignResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Campaign: %d species, %d targets, %d completed\n", len(r.Species), r.Targets, r.Completed)
	fmt.Fprintf(w, "  Summit node-hours %.0f (paper: <4000 for 35,634 targets)\n", r.SummitNodeHours)
	fmt.Fprintf(w, "  Andes node-hours  %.0f\n", r.AndesNodeHours)
	return nil
}
