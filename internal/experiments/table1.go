package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fold"
	"repro/internal/metrics"
)

// Table1Row is one preset row of Table 1.
type Table1Row struct {
	Preset      string
	MeanPLDDT   float64 // mean over top models ranked by pLDDT
	MeanPTMS    float64 // mean over top models ranked by pTMS
	Count       int     // completed sequences (casp14 loses the longest to OOM)
	WalltimeMin float64 // simulated wall time including overhead
	Nodes       int
	// Quality-threshold fractions discussed in Section 4.2.
	FracPLDDTAbove70 float64
	FracPTMSAbove06  float64
	// OverheadFrac is (makespan·workers − work)/(makespan·workers).
	OverheadFrac float64
}

// Table1Result reproduces Table 1: the four presets benchmarked on the
// 559-sequence D. vulgaris set (29–1266 AA), on 32 Summit nodes (91 for
// casp14), with no high-memory retry (the paper reports the OOM losses).
type Table1Result struct {
	Rows      []Table1Row
	Benchmark int // benchmark size (559)
}

// PaperTable1 holds the published values for the report.
var PaperTable1 = map[string]struct {
	PLDDT, PTMS float64
	Count       int
	Walltime    string
}{
	"reduced_dbs": {78.4, 0.631, 559, "44"},
	"genome":      {79.5, 0.644, 559, "50"},
	"super":       {80.7, 0.650, 559, "58"},
	"casp14":      {78.6, 0.631, 551, ">150"},
}

// Table1 runs the preset benchmark.
func Table1(env *Env) (*Table1Result, error) {
	bench := env.Benchmark559()
	feats, err := env.FeaturesFor(bench)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Benchmark: len(bench)}

	for _, preset := range fold.AllPresets() {
		cfg := env.config()
		cfg.Preset = preset
		cfg.SummitNodes = 32
		cfg.HighMemNodes = 0 // Table 1 reports the OOM losses directly
		if preset.Name == "casp14" {
			cfg.SummitNodes = 91
		}
		rep, err := core.InferenceStage(env.Engine, bench, feats, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 %s: %w", preset.Name, err)
		}
		row := Table1Row{Preset: preset.Name, Nodes: cfg.SummitNodes}
		var plddts, ptmss []float64
		for _, t := range rep.Targets {
			if len(t.All) == 0 {
				continue
			}
			row.Count++
			// Means across top structures ranked by either metric, exactly
			// as the Table 1 footnote specifies.
			bestPL := fold.RankByPLDDT(t.All)
			bestTM := fold.RankByPTMS(t.All)
			plddts = append(plddts, t.All[bestPL].MeanPLDDT)
			ptmss = append(ptmss, t.All[bestTM].PTMS)
		}
		row.MeanPLDDT = metrics.Summarize(plddts).Mean
		row.MeanPTMS = metrics.Summarize(ptmss).Mean
		row.FracPLDDTAbove70 = metrics.FractionAbove(plddts, 70)
		row.FracPTMSAbove06 = metrics.FractionAbove(ptmss, 0.60)
		row.WalltimeMin = rep.WalltimeSec / 60
		if rep.Sim != nil {
			row.OverheadFrac = 1 - rep.Sim.Utilization()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the paper-versus-measured table.
func (r *Table1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table 1: preset benchmark on %d D. vulgaris sequences\n", r.Benchmark)
	tab := metrics.Table{Header: []string{
		"Preset", "pLDDT", "(paper)", "pTMS", "(paper)", "Count", "(paper)", "Wall min", "(paper)", "Nodes", ">70 pLDDT", ">0.6 pTMS",
	}}
	for _, row := range r.Rows {
		p := PaperTable1[row.Preset]
		tab.AddRow(row.Preset,
			fmt.Sprintf("%.1f", row.MeanPLDDT), fmt.Sprintf("%.1f", p.PLDDT),
			fmt.Sprintf("%.3f", row.MeanPTMS), fmt.Sprintf("%.3f", p.PTMS),
			row.Count, p.Count,
			fmt.Sprintf("%.0f", row.WalltimeMin), p.Walltime,
			row.Nodes,
			fmt.Sprintf("%.0f%%", 100*row.FracPLDDTAbove70),
			fmt.Sprintf("%.0f%%", 100*row.FracPTMSAbove06),
		)
	}
	return tab.Render(w)
}

// Row returns a row by preset name.
func (r *Table1Result) Row(preset string) (Table1Row, error) {
	for _, row := range r.Rows {
		if row.Preset == preset {
			return row, nil
		}
	}
	return Table1Row{}, fmt.Errorf("experiments: no table1 row %q", preset)
}
