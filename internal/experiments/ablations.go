package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fold"
	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/proteome"
)

// AblationResult covers the design choices DESIGN.md calls out, each run
// as a controlled comparison on the D. vulgaris workload.
type AblationResult struct {
	// Task ordering (Section 3.3's greedy load balance).
	OrderWallHours map[string]float64
	OrderSpreadMin map[string]float64
	// Task granularity: (model,target) pairs versus whole-target tasks.
	PairWallHours        float64
	WholeTargetWallHours float64
	// Workers per node (the paper runs 6, one per GPU).
	WorkersPerNodeWall map[int]float64
	// Replica count under metadata contention (1, 4, 8, 24 copies).
	ReplicaWallHours map[int]float64
	// Dynamic versus fixed recycles: quality gained per extra compute.
	FixedPTMS, DynamicPTMS         float64
	FixedNodeHours, DynamicNodeHrs float64
	// Reduced vs full library (cost side; accuracy parity is established
	// by the seqdb reduction preserving family coverage).
	ReducedFeatureNH, FullFeatureNH float64
}

// Ablations runs all ablation comparisons.
func Ablations(env *Env) (*AblationResult, error) {
	dvu := env.Proteome(proteome.DVulgaris)
	proteins := dvu.FilterMaxLen(2500)
	gen := env.FeatureGen()
	feats := map[string]*taskFeat{}
	res := &AblationResult{
		OrderWallHours:     map[string]float64{},
		OrderSpreadMin:     map[string]float64{},
		WorkersPerNodeWall: map[int]float64{},
		ReplicaWallHours:   map[int]float64{},
	}

	// Precompute per-(target,model) predictions once, fanned out over the
	// worker pool (one item per protein, collected in submission order).
	type pred struct {
		dur  float64
		ptms float64
	}
	rows, err := exec.Map(env.executor(), proteins, func(_ int, p proteome.Protein) ([fold.NumModels]pred, error) {
		var row [fold.NumModels]pred
		f, err := gen.Features(p)
		if err != nil {
			return row, err
		}
		for m := 0; m < fold.NumModels; m++ {
			pr, err := env.Engine.Infer(foldTask(p, f, m))
			if err != nil {
				return row, err
			}
			row[m] = pred{dur: pr.GPUSeconds, ptms: pr.PTMS}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	perTask := make(map[string][fold.NumModels]pred, len(proteins))
	for i, p := range proteins {
		feats[p.Seq.ID] = &taskFeat{length: p.Seq.Len()}
		perTask[p.Seq.ID] = rows[i]
	}

	// --- Ordering ablation on (model,target) tasks, 32 nodes.
	// Iterate the protein slice (not the map) so submission order is
	// deterministic.
	pairTasks := make([]cluster.SimTask, 0, len(proteins)*fold.NumModels)
	for _, p := range proteins {
		row := perTask[p.Seq.ID]
		for m := 0; m < fold.NumModels; m++ {
			pairTasks = append(pairTasks, cluster.SimTask{
				ID:       fmt.Sprintf("%s/m%d", p.Seq.ID, m),
				Weight:   float64(p.Seq.Len()),
				Duration: row[m].dur,
			})
		}
	}
	opt := cluster.DataflowOptions{Workers: 32 * 6, DispatchOverhead: 1.5, StartupDelay: 300}
	orders := []cluster.OrderPolicy{cluster.LongestFirst, cluster.ShortestFirst, cluster.SubmissionOrder}
	orderWaves := make([]cluster.Wave, 0, len(orders))
	for _, order := range orders {
		tasks := append([]cluster.SimTask(nil), pairTasks...)
		if order == cluster.SubmissionOrder {
			r := newShuffleSource(env.Seed + 1)
			r.Shuffle(len(tasks), func(i, j int) { tasks[i], tasks[j] = tasks[j], tasks[i] })
		} else {
			cluster.ApplyOrder(tasks, order)
		}
		orderWaves = append(orderWaves, cluster.Wave{Tasks: tasks, Opt: opt})
	}
	// The per-policy runs are independent, so they fan out as waves.
	orderSims, err := cluster.SimulateWaves(env.executor(), orderWaves)
	if err != nil {
		return nil, err
	}
	for i, order := range orders {
		res.OrderWallHours[order.String()] = orderSims[i].Makespan / 3600
		res.OrderSpreadMin[order.String()] = orderSims[i].FinishSpread() / 60
	}

	// --- Granularity: whole-target tasks bundle all five models into one
	// task, removing the paper's decomposition.
	sorted := append([]cluster.SimTask(nil), pairTasks...)
	cluster.ApplyOrder(sorted, cluster.LongestFirst)
	simPair, err := cluster.SimulateDataflow(sorted, opt)
	if err != nil {
		return nil, err
	}
	res.PairWallHours = simPair.Makespan / 3600
	wholeTasks := make([]cluster.SimTask, 0, len(proteins))
	for _, p := range proteins {
		row := perTask[p.Seq.ID]
		var total float64
		for m := 0; m < fold.NumModels; m++ {
			total += row[m].dur
		}
		wholeTasks = append(wholeTasks, cluster.SimTask{
			ID: p.Seq.ID, Weight: float64(p.Seq.Len()), Duration: total,
		})
	}
	cluster.ApplyOrder(wholeTasks, cluster.LongestFirst)
	simWhole, err := cluster.SimulateDataflow(wholeTasks, opt)
	if err != nil {
		return nil, err
	}
	res.WholeTargetWallHours = simWhole.Makespan / 3600

	// --- Workers per node: fewer workers per node means idle GPUs. The
	// three widths are independent waves over the same sorted tasks.
	perNodes := []int{1, 3, 6}
	nodeWaves := make([]cluster.Wave, 0, len(perNodes))
	for _, perNode := range perNodes {
		nodeWaves = append(nodeWaves, cluster.Wave{
			Tasks: append([]cluster.SimTask(nil), sorted...),
			Opt: cluster.DataflowOptions{
				Workers: 32 * perNode, DispatchOverhead: 1.5, StartupDelay: 300,
			},
		})
	}
	nodeSims, err := cluster.SimulateWaves(env.executor(), nodeWaves)
	if err != nil {
		return nil, err
	}
	for i, perNode := range perNodes {
		res.WorkersPerNodeWall[perNode] = nodeSims[i].Makespan / 3600
	}

	// --- Replica sweep: wall hours of the feature stage per copy count.
	for _, copies := range []int{1, 4, 8, 24} {
		cfg := env.config()
		cfg.AndesNodes = 96
		cfg.Replicas = fsim.ReplicaLayout{Copies: copies, JobsPerCopy: 96 / copies}
		if copies == 24 {
			cfg.Replicas.JobsPerCopy = 4
		}
		feat, err := core.FeatureStage(proteins, gen, env.FS, core.ReducedDatabase(), cfg)
		if err != nil {
			return nil, err
		}
		res.ReplicaWallHours[copies] = feat.WalltimeSec / 3600
	}

	// --- Dynamic vs fixed recycles: quality and node-hour cost on the
	// benchmark subset.
	bench := env.Benchmark559()
	bfeats, err := env.FeaturesFor(bench)
	if err != nil {
		return nil, err
	}
	for _, preset := range []fold.Preset{fold.ReducedDBs, fold.Genome} {
		cfg := env.config()
		cfg.Preset = preset
		rep, err := core.InferenceStage(env.Engine, bench, bfeats, cfg)
		if err != nil {
			return nil, err
		}
		var ptms []float64
		for _, t := range rep.Targets {
			if t.Best != nil {
				ptms = append(ptms, t.Best.PTMS)
			}
		}
		mean := metrics.Summarize(ptms).Mean
		if preset.Dynamic {
			res.DynamicPTMS = mean
			res.DynamicNodeHrs = rep.NodeHours
		} else {
			res.FixedPTMS = mean
			res.FixedNodeHours = rep.NodeHours
		}
	}

	// --- Reduced vs full library feature cost.
	cfg := env.config()
	cfg.AndesNodes = 96
	fr, err := core.FeatureStage(proteins, gen, env.FS, core.ReducedDatabase(), cfg)
	if err != nil {
		return nil, err
	}
	ff, err := core.FeatureStage(proteins, gen, env.FS, core.FullDatabase(), cfg)
	if err != nil {
		return nil, err
	}
	res.ReducedFeatureNH = fr.NodeHours
	res.FullFeatureNH = ff.NodeHours
	return res, nil
}

type taskFeat struct{ length int }

// Render writes the ablation report.
func (r *AblationResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Ablations (D. vulgaris workload unless noted)")
	fmt.Fprintln(w, "task ordering (32 nodes, (model,target) tasks):")
	for _, name := range []string{"longest-first", "shortest-first", "submission-order"} {
		fmt.Fprintf(w, "  %-18s wall %5.2f h, finish spread %6.1f min\n",
			name, r.OrderWallHours[name], r.OrderSpreadMin[name])
	}
	fmt.Fprintf(w, "task granularity: (model,target) %.2f h vs whole-target %.2f h\n",
		r.PairWallHours, r.WholeTargetWallHours)
	fmt.Fprintln(w, "workers per node (paper: 6, one per GPU):")
	for _, n := range []int{1, 3, 6} {
		fmt.Fprintf(w, "  %d/node: wall %5.2f h\n", n, r.WorkersPerNodeWall[n])
	}
	fmt.Fprintln(w, "library replicas (feature stage wall hours):")
	for _, c := range []int{1, 4, 8, 24} {
		fmt.Fprintf(w, "  %2d copies: %5.2f h\n", c, r.ReplicaWallHours[c])
	}
	fmt.Fprintf(w, "recycles: fixed-3 pTMS %.3f @ %.0f node-hours vs dynamic pTMS %.3f @ %.0f node-hours\n",
		r.FixedPTMS, r.FixedNodeHours, r.DynamicPTMS, r.DynamicNodeHrs)
	fmt.Fprintf(w, "library: reduced %.0f vs full %.0f feature node-hours\n",
		r.ReducedFeatureNH, r.FullFeatureNH)
	return nil
}

// GPUSearchResult models the conclusion's discussion: what a GPU-
// accelerated HMMER (the 38x speedup reported in 2009) would do to the
// feature-generation stage.
type GPUSearchResult struct {
	CPUWallHours  float64
	GPUWallHours  float64
	CPUNodeHours  float64
	GPUNodeHours  float64
	SpeedupFactor float64
}

// GPUSearch reruns the Section 4.1 feature stage with a 38x-accelerated
// search kernel (I/O costs unchanged — acceleration does not help the
// metadata bottleneck, which is the point of the replica design).
func GPUSearch(env *Env) (*GPUSearchResult, error) {
	dvu := env.Proteome(proteome.DVulgaris)
	proteins := dvu.FilterMaxLen(2500)
	cfg := env.config()
	cfg.AndesNodes = 96

	cpu, err := core.FeatureStage(proteins, env.FeatureGen(), env.FS, core.ReducedDatabase(), cfg)
	if err != nil {
		return nil, err
	}
	gcfg := cfg
	gcfg.SearchAccel = 38
	gpu, err := core.FeatureStage(proteins, env.FeatureGen(), env.FS, core.ReducedDatabase(), gcfg)
	if err != nil {
		return nil, err
	}
	return &GPUSearchResult{
		CPUWallHours:  cpu.WalltimeSec / 3600,
		GPUWallHours:  gpu.WalltimeSec / 3600,
		CPUNodeHours:  cpu.NodeHours,
		GPUNodeHours:  gpu.NodeHours,
		SpeedupFactor: 38,
	}, nil
}

// Render writes the GPU-search report.
func (r *GPUSearchResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "GPU-accelerated MSA search (conclusion's discussion; %gx kernel)\n", r.SpeedupFactor)
	fmt.Fprintf(w, "  CPU search: wall %.2f h, %.0f node-hours\n", r.CPUWallHours, r.CPUNodeHours)
	fmt.Fprintf(w, "  GPU search: wall %.2f h, %.0f node-hours\n", r.GPUWallHours, r.GPUNodeHours)
	fmt.Fprintln(w, "  note: fixed I/O and metadata costs dominate after acceleration,")
	fmt.Fprintln(w, "  which is why the paper's replica layout matters either way")
	return nil
}
