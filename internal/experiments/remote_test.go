package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/flow"
	"repro/internal/proteome"
)

// remoteExecutor builds the multi-process topology inside the test
// process: standalone scheduler, spec-serving workers, client-only remote
// executor. The campaign kernels resolve against the process-wide
// registry, exactly as in a `proteomectl worker` process.
func remoteExecutor(t *testing.T, workers int) *exec.Flow {
	t.Helper()
	RegisterCampaignKernels()
	sched := flow.NewScheduler()
	addr, err := sched.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	for i := 0; i < workers; i++ {
		w := flow.NewWorker(fmt.Sprintf("remote-w%d", i), flow.SpecHandler())
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	f, err := exec.Connect(flow.DialOptions{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestCampaignRemoteSpecDispatch runs the full three-stage campaign
// through remote spec dispatch — no closure crosses the executor — and
// requires the report to be deeply identical to the pool executor's,
// including every decoded feature and prediction, at two worker counts.
func TestCampaignRemoteSpecDispatch(t *testing.T) {
	env := NewEnv(DefaultSeed)
	proteins := env.Proteome(proteome.DVulgaris).FilterMaxLen(2500)[:90]

	poolCfg := core.DefaultConfig()
	want, err := core.RunCampaign(env.Engine, env.FeatureGen(), proteins, env.FS, core.ReducedDatabase(), poolCfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rf := remoteExecutor(t, workers)
			cfg := core.DefaultConfig()
			cfg.Executor = rf
			cfg.Remote = &core.RemoteCampaign{Seed: DefaultSeed, Species: proteome.DVulgaris.Code}
			got, err := core.RunCampaign(env.Engine, env.FeatureGen(), proteins, env.FS, core.ReducedDatabase(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Feature, want.Feature) {
				t.Error("remote feature report differs from pool")
			}
			if !reflect.DeepEqual(got.Inference, want.Inference) {
				t.Error("remote inference report differs from pool")
			}
			if !reflect.DeepEqual(got.Relax, want.Relax) {
				t.Error("remote relax report differs from pool")
			}
			if !reflect.DeepEqual(got.Ledger, want.Ledger) {
				t.Error("remote ledger differs from pool")
			}
		})
	}
}

// TestCampaignSummaryMode is the wire-cost contract of the summary-only
// result mode: with Config.SummaryOnly the campaign's numbers (inference,
// relax, ledger, feature timings) are identical to full mode, the feature
// payloads stay off the wire (digests replace them), and the measured
// wire bytes in the trace are strictly fewer.
func TestCampaignSummaryMode(t *testing.T) {
	env := NewEnv(DefaultSeed)
	proteins := env.Proteome(proteome.DVulgaris).FilterMaxLen(2500)[:60]

	run := func(summary bool) (*core.CampaignReport, *exec.Trace) {
		rf := remoteExecutor(t, 2)
		trace := &exec.Trace{}
		rf.SetTrace(trace)
		cfg := core.DefaultConfig()
		cfg.Executor = rf
		cfg.Remote = &core.RemoteCampaign{Seed: DefaultSeed, Species: proteome.DVulgaris.Code}
		cfg.SummaryOnly = summary
		rep, err := core.RunCampaign(env.Engine, env.FeatureGen(), proteins, env.FS, core.ReducedDatabase(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep, trace
	}
	full, fullTrace := run(false)
	sum, sumTrace := run(true)

	// Every reported number is unchanged; only the feature payload
	// representation differs.
	if !reflect.DeepEqual(sum.Inference, full.Inference) {
		t.Error("summary-mode inference report differs from full mode")
	}
	if !reflect.DeepEqual(sum.Relax, full.Relax) {
		t.Error("summary-mode relax report differs from full mode")
	}
	if !reflect.DeepEqual(sum.Ledger, full.Ledger) {
		t.Error("summary-mode ledger differs from full mode")
	}
	if sum.Feature.WalltimeSec != full.Feature.WalltimeSec ||
		sum.Feature.NodeHours != full.Feature.NodeHours ||
		sum.Feature.Jobs != full.Feature.Jobs {
		t.Error("summary-mode feature timings differ from full mode")
	}

	// Full payloads stayed on the workers; digests summarise them.
	for id, f := range sum.Feature.Features {
		if f != nil {
			t.Fatalf("summary mode shipped full features for %s", id)
		}
	}
	if len(sum.Feature.Digests) != len(proteins) {
		t.Fatalf("digests = %d, want %d", len(sum.Feature.Digests), len(proteins))
	}
	gen := env.FeatureGen()
	for _, p := range proteins[:5] {
		f, err := gen.Features(p)
		if err != nil {
			t.Fatal(err)
		}
		want := core.DigestFeatures(f)
		if got := sum.Feature.Digests[p.Seq.ID]; !reflect.DeepEqual(got, want) {
			t.Errorf("digest for %s = %+v, want %+v", p.Seq.ID, got, want)
		}
	}

	// The reduction is observable in the recorded trace: strictly fewer
	// wire bytes overall, and specifically on the feature batch and — now
	// that predictions travel as pTMS/pLDDT digests — the inference
	// batch, the next-largest wire item.
	if sumTrace.WireBytes() >= fullTrace.WireBytes() {
		t.Errorf("summary wire bytes = %d, want < full %d", sumTrace.WireBytes(), fullTrace.WireBytes())
	}
	kernelBytes := func(tr *exec.Trace, kernel string) int {
		n := 0
		for _, r := range tr.Rows() {
			if r.Kernel == kernel {
				n += r.PayloadBytes
			}
		}
		return n
	}
	for _, kernel := range []string{core.KernelFeature, core.KernelInfer} {
		if kernelBytes(sumTrace, kernel) >= kernelBytes(fullTrace, kernel) {
			t.Errorf("summary %s bytes = %d, want < full %d",
				kernel, kernelBytes(sumTrace, kernel), kernelBytes(fullTrace, kernel))
		}
	}
}

// TestKernelWorldCacheBounded: a worker serving many distinct seeds must
// not pin every campaign world it ever built.
func TestKernelWorldCacheBounded(t *testing.T) {
	for seed := uint64(9000); seed < 9000+2*maxKernelWorlds; seed++ {
		worldFor(seed)
	}
	kernelWorldsMu.Lock()
	defer kernelWorldsMu.Unlock()
	if len(kernelWorlds) > maxKernelWorlds {
		t.Fatalf("kernel world cache holds %d worlds, cap is %d", len(kernelWorlds), maxKernelWorlds)
	}
	if len(kernelWorldsOrder) != len(kernelWorlds) {
		t.Fatalf("eviction order list (%d) out of sync with cache (%d)", len(kernelWorldsOrder), len(kernelWorlds))
	}
}

// TestRemoteGuardRequiresCampaignIdentity: a spec-only executor without
// Config.Remote must fail loudly, not fall back to closures.
func TestRemoteGuardRequiresCampaignIdentity(t *testing.T) {
	env := NewEnv(DefaultSeed)
	proteins := env.Proteome(proteome.DVulgaris).FilterMaxLen(2500)[:3]
	rf := remoteExecutor(t, 1)
	cfg := core.DefaultConfig()
	cfg.Executor = rf // Remote left nil
	_, err := core.RunCampaign(env.Engine, env.FeatureGen(), proteins, env.FS, core.ReducedDatabase(), cfg)
	if err == nil {
		t.Fatal("campaign with spec-only executor and nil Remote succeeded")
	}
}

// TestRemoteKernelUnknownWorld: specs naming an unknown species fail with
// a task error surfaced through the batch.
func TestRemoteKernelUnknownWorld(t *testing.T) {
	env := NewEnv(DefaultSeed)
	proteins := env.Proteome(proteome.DVulgaris).FilterMaxLen(2500)[:2]
	rf := remoteExecutor(t, 1)
	cfg := core.DefaultConfig()
	cfg.Executor = rf
	cfg.Remote = &core.RemoteCampaign{Seed: DefaultSeed, Species: "NOPE"}
	_, err := core.RunCampaign(env.Engine, env.FeatureGen(), proteins, env.FS, core.ReducedDatabase(), cfg)
	if err == nil {
		t.Fatal("campaign with unknown species in specs succeeded")
	}
}
