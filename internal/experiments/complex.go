package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/fold"
	"repro/internal/proteome"
)

// ComplexScreenResult exercises the paper's stated extension (AF2Complex):
// an all-vs-all interaction screen over a proteome subset, demonstrating
// the quadratic cost scaling that makes leadership-scale deployment
// necessary for complex prediction.
type ComplexScreenResult struct {
	Proteins     int
	Pairs        int
	Interactions int
	// GPUHours for the screen versus the monomer predictions of the same
	// subset — the quadratic-vs-linear comparison.
	ScreenGPUHours  float64
	MonomerGPUHours float64
	// WallHours on a 32-node allocation.
	WallHours float64
	// ProjectedPairs/ProjectedGPUHours extrapolate to the full proteome.
	ProjectedPairs    int
	ProjectedGPUYears float64
}

// ComplexScreen runs the all-vs-all screen on the first 60 D. vulgaris
// proteins under 500 residues.
func ComplexScreen(env *Env) (*ComplexScreenResult, error) {
	dvu := env.Proteome(proteome.DVulgaris)
	gen := env.FeatureGen()

	var subset []proteome.Protein
	for _, p := range dvu.Proteins {
		if p.Seq.Len() < 500 {
			subset = append(subset, p)
		}
		if len(subset) == 60 {
			break
		}
	}
	res := &ComplexScreenResult{Proteins: len(subset)}

	type chain struct {
		id   string
		l    int
		feat *fold.Prediction
		neff float64
		tmpl bool
	}
	// Monomer baselines fan out over the worker pool (one item per chain).
	chains, err := exec.Map(env.executor(), subset, func(_ int, p proteome.Protein) (chain, error) {
		f, err := gen.Features(p)
		if err != nil {
			return chain{}, err
		}
		pred, err := env.Engine.Infer(foldTask(p, f, 0))
		if err != nil {
			return chain{}, err
		}
		return chain{id: p.Seq.ID, l: p.Seq.Len(), feat: pred, neff: f.Neff, tmpl: len(f.Templates) > 0}, nil
	})
	if err != nil {
		return nil, err
	}
	var monomerGPU float64
	for _, c := range chains {
		monomerGPU += c.feat.GPUSeconds
	}
	res.MonomerGPUHours = monomerGPU / 3600

	// The quadratic all-vs-all screen is the heaviest loop in the package:
	// flatten the i<j pair triangle and fan it out. Pair order (and so
	// every accumulated statistic) is the serial loop's.
	type pairIdx struct{ i, j int }
	pairs := make([]pairIdx, 0, len(chains)*(len(chains)-1)/2)
	for i := 0; i < len(chains); i++ {
		for j := i + 1; j < len(chains); j++ {
			pairs = append(pairs, pairIdx{i, j})
		}
	}
	preds, err := exec.Map(env.executor(), pairs, func(_ int, pr pairIdx) (*fold.ComplexPrediction, error) {
		a, b := chains[pr.i], chains[pr.j]
		return env.Engine.InferComplex(fold.ComplexTask{
			IDs:     []string{a.id, b.id},
			Lengths: []int{a.l, b.l},
			Features: []*fold.FeaturesRef{
				fold.ComplexFeatures(a.neff, a.tmpl),
				fold.ComplexFeatures(b.neff, b.tmpl),
			},
			Model: 0, Preset: fold.Genome, NodeMemGB: 64,
		}, nil)
	})
	if err != nil {
		return nil, err
	}
	tasks := make([]cluster.SimTask, 0, len(pairs))
	var screenGPU float64
	for _, cp := range preds {
		res.Pairs++
		screenGPU += cp.GPUSeconds
		if cp.Interacting {
			res.Interactions++
		}
		tasks = append(tasks, cluster.SimTask{
			ID: cp.ID, Weight: float64(cp.TotalLength), Duration: cp.GPUSeconds,
		})
	}
	res.ScreenGPUHours = screenGPU / 3600

	cluster.ApplyOrder(tasks, cluster.LongestFirst)
	sim, err := cluster.SimulateDataflow(tasks, cluster.DataflowOptions{
		Workers: 32 * 6, DispatchOverhead: 1.5, StartupDelay: 300,
	})
	if err != nil {
		return nil, err
	}
	res.WallHours = sim.Makespan / 3600

	// Extrapolation to the full 3205-protein proteome: quadratic pairs at
	// the measured mean pair cost.
	n := 3205
	res.ProjectedPairs = n * (n - 1) / 2
	meanPairGPU := screenGPU / float64(res.Pairs)
	res.ProjectedGPUYears = meanPairGPU * float64(res.ProjectedPairs) / 3600 / 24 / 365
	return res, nil
}

// Render writes the complex-screen report.
func (r *ComplexScreenResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "AF2Complex extension: all-vs-all screen of %d proteins\n", r.Proteins)
	fmt.Fprintf(w, "  pairs screened        %d\n", r.Pairs)
	fmt.Fprintf(w, "  predicted interactions %d (%.1f%%)\n", r.Interactions,
		100*float64(r.Interactions)/float64(r.Pairs))
	fmt.Fprintf(w, "  screen cost           %.1f GPU-hours vs %.2f for the monomers (%.0fx)\n",
		r.ScreenGPUHours, r.MonomerGPUHours, r.ScreenGPUHours/r.MonomerGPUHours)
	fmt.Fprintf(w, "  wall on 32 nodes      %.2f h\n", r.WallHours)
	fmt.Fprintf(w, "  full-proteome projection: %d pairs, %.1f GPU-years —\n",
		r.ProjectedPairs, r.ProjectedGPUYears)
	fmt.Fprintln(w, "  the quadratic scaling that makes HPC deployment essential (paper's conclusion)")
	return nil
}
