package experiments

import (
	"fmt"
	"io"

	"repro/internal/casp"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/relax"
)

// Fig3Point is one model's quality before and after relaxation.
type Fig3Point struct {
	TargetID   string
	ModelNum   int
	TMBefore   float64
	SPECBefore float64
	// Per-method after-relaxation scores, indexed by platform.
	TMAfter   map[relax.Platform]float64
	SPECAfter map[relax.Platform]float64
}

// Fig3Result reproduces Fig. 3: TM-score and SPECS-score of relaxed versus
// unrelaxed models for the CASP14 targets with crystal structures, for all
// three relaxation methods. The paper's findings: strong correlation, no
// decreases, slight SPECS gains for already-good models, all three methods
// equivalent.
type Fig3Result struct {
	Points []Fig3Point
	// Correlations of after-vs-before per method.
	TMCorr   map[relax.Platform]float64
	SPECCorr map[relax.Platform]float64
	// MaxTMDrop is the largest TM decrease observed across methods (the
	// paper observes none beyond noise).
	MaxTMDrop float64
	// MeanSPECDelta per method (positive = improvement).
	MeanSPECDelta map[relax.Platform]float64
}

var fig3Platforms = []relax.Platform{relax.PlatformAF2, relax.PlatformCPU, relax.PlatformGPU}

// Fig3 runs the relax-quality comparison on the crystal subset.
func Fig3(env *Env) (*Fig3Result, error) {
	set := casp.NewSet(env.Seed ^ 0xCA5B)
	res := &Fig3Result{
		TMCorr:        map[relax.Platform]float64{},
		SPECCorr:      map[relax.Platform]float64{},
		MeanSPECDelta: map[relax.Platform]float64{},
	}

	type series struct{ before, after []float64 }
	tmSeries := map[relax.Platform]*series{}
	specSeries := map[relax.Platform]*series{}
	for _, p := range fig3Platforms {
		tmSeries[p] = &series{}
		specSeries[p] = &series{}
	}

	// One work item per (crystal target, model): the item runs all three
	// relax protocols — the expensive minimizations — on the worker pool,
	// and the statistics are folded serially in submission order so every
	// floating-point accumulation matches the serial run bit for bit.
	type fig3Item struct {
		target       *casp.Target
		model        *casp.Model
		crystalPoses []geom.ResiduePose // hoisted: shared by the target's items
	}
	var items []fig3Item
	for ti := range set.Targets {
		tg := &set.Targets[ti]
		if !tg.HasCrystal {
			continue
		}
		crystalPoses := posesOf(tg.Crystal.CA, tg.Crystal.SC)
		models := set.ModelsOf(tg.ID)
		for mi := range models {
			if models[mi].ModelNum > 2 {
				continue // two models per target keep the run affordable
			}
			items = append(items, fig3Item{target: tg, model: &models[mi], crystalPoses: crystalPoses})
		}
	}
	points, err := exec.Map(env.executor(), items, func(_ int, it fig3Item) (Fig3Point, error) {
		tg, m := it.target, it.model
		crystalPoses := it.crystalPoses
		tmB, err := geom.TMScore(m.CA, tg.Crystal.CA)
		if err != nil {
			return Fig3Point{}, err
		}
		specB, err := geom.SPECSScore(posesOf(m.CA, m.SC), crystalPoses)
		if err != nil {
			return Fig3Point{}, err
		}
		pt := Fig3Point{
			TargetID: tg.ID, ModelNum: m.ModelNum,
			TMBefore: tmB, SPECBefore: specB,
			TMAfter:   map[relax.Platform]float64{},
			SPECAfter: map[relax.Platform]float64{},
		}
		for _, platform := range fig3Platforms {
			opt := relax.DefaultOptions(platform)
			opt.HeavyAtoms = m.HeavyAtoms
			rr, err := relax.Relax(geom.Clone(m.CA), geom.Clone(m.SC), opt)
			if err != nil {
				return Fig3Point{}, err
			}
			tmA, err := geom.TMScore(rr.CA, tg.Crystal.CA)
			if err != nil {
				return Fig3Point{}, err
			}
			specA, err := geom.SPECSScore(posesOf(rr.CA, rr.SC), crystalPoses)
			if err != nil {
				return Fig3Point{}, err
			}
			pt.TMAfter[platform] = tmA
			pt.SPECAfter[platform] = specA
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		for _, platform := range fig3Platforms {
			tmA, specA := pt.TMAfter[platform], pt.SPECAfter[platform]
			tmSeries[platform].before = append(tmSeries[platform].before, pt.TMBefore)
			tmSeries[platform].after = append(tmSeries[platform].after, tmA)
			specSeries[platform].before = append(specSeries[platform].before, pt.SPECBefore)
			specSeries[platform].after = append(specSeries[platform].after, specA)
			if drop := pt.TMBefore - tmA; drop > res.MaxTMDrop {
				res.MaxTMDrop = drop
			}
			res.MeanSPECDelta[platform] += specA - pt.SPECBefore
		}
		res.Points = append(res.Points, pt)
	}
	for _, platform := range fig3Platforms {
		n := float64(len(tmSeries[platform].before))
		if n > 0 {
			res.MeanSPECDelta[platform] /= n
		}
		if c, err := metrics.Pearson(tmSeries[platform].before, tmSeries[platform].after); err == nil {
			res.TMCorr[platform] = c
		}
		if c, err := metrics.Pearson(specSeries[platform].before, specSeries[platform].after); err == nil {
			res.SPECCorr[platform] = c
		}
	}
	return res, nil
}

func posesOf(ca, sc []geom.Vec3) []geom.ResiduePose {
	out := make([]geom.ResiduePose, len(ca))
	for i := range ca {
		out[i] = geom.ResiduePose{CA: ca[i], SC: sc[i]}
	}
	return out
}

// Render writes the figure report.
func (r *Fig3Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig 3: relaxed vs unrelaxed model quality (%d models, 19 crystal targets)\n", len(r.Points))
	tab := metrics.Table{Header: []string{"Method", "TM corr", "SPECS corr", "mean ΔSPECS", "max TM drop"}}
	for _, p := range fig3Platforms {
		tab.AddRow(p.String(),
			fmt.Sprintf("%.4f", r.TMCorr[p]),
			fmt.Sprintf("%.4f", r.SPECCorr[p]),
			fmt.Sprintf("%+.4f", r.MeanSPECDelta[p]),
			fmt.Sprintf("%.4f", r.MaxTMDrop))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "paper: strong before/after correlation, no decreases, slight SPECS gains; all methods equivalent")
	return nil
}

// Fig4Point is one model's relaxation time per method.
type Fig4Point struct {
	TargetID   string
	HeavyAtoms int
	Seconds    map[relax.Platform]float64
	AF2Rounds  int
}

// Fig4Result reproduces Fig. 4: relaxation time-to-solution versus system
// size for the three methods, and the speedups relative to the AF2
// original (up to ~14x for the GPU method); T1080's pathological AF2 run is
// reported separately, as in the paper (excluded from the timing plot).
type Fig4Result struct {
	Points []Fig4Point
	// MaxGPUSpeedup across sizes and T1080's AF2 time.
	MaxGPUSpeedup   float64
	MeanGPUSpeedup  float64
	MeanCPUSpeedup  float64
	T1080AF2Hours   float64
	T1080GPUMinutes float64
}

// Fig4 measures the timing curves on the full 160-model set. The AF2
// method's violation-retry rounds come from actually running its protocol;
// the per-round times come from the calibrated platform models.
func Fig4(env *Env) (*Fig4Result, error) {
	set := casp.NewSet(env.Seed ^ 0xCA5B)
	res := &Fig4Result{}
	var gpuSpeedups, cpuSpeedups []float64

	// The AF2-protocol relaxations (the expensive part: violation-retry
	// rounds of real minimization) fan out over the worker pool; the
	// speedup statistics fold serially in submission order.
	var models []*casp.Model
	for mi := range set.Models {
		m := &set.Models[mi]
		if m.ModelNum != 1 && m.TargetID != "T1080" {
			continue // one model per target for the curve; all five for T1080
		}
		models = append(models, m)
	}
	points, err := exec.Map(env.executor(), models, func(_ int, m *casp.Model) (Fig4Point, error) {
		opt := relax.DefaultOptions(relax.PlatformAF2)
		opt.HeavyAtoms = m.HeavyAtoms
		rr, err := relax.Relax(geom.Clone(m.CA), geom.Clone(m.SC), opt)
		if err != nil {
			return Fig4Point{}, err
		}
		return Fig4Point{
			TargetID:   m.TargetID,
			HeavyAtoms: m.HeavyAtoms,
			AF2Rounds:  rr.Rounds,
			Seconds: map[relax.Platform]float64{
				relax.PlatformAF2: rr.Seconds,
				relax.PlatformCPU: relax.ModelTime(relax.PlatformCPU, m.HeavyAtoms, 1),
				relax.PlatformGPU: relax.ModelTime(relax.PlatformGPU, m.HeavyAtoms, 1),
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		res.Points = append(res.Points, pt)

		gpuS := pt.Seconds[relax.PlatformAF2] / pt.Seconds[relax.PlatformGPU]
		cpuS := pt.Seconds[relax.PlatformAF2] / pt.Seconds[relax.PlatformCPU]
		if pt.TargetID == "T1080" {
			if h := pt.Seconds[relax.PlatformAF2] / 3600; h > res.T1080AF2Hours {
				res.T1080AF2Hours = h
				res.T1080GPUMinutes = pt.Seconds[relax.PlatformGPU] / 60
			}
			continue // the outlier is excluded from the speedup stats
		}
		gpuSpeedups = append(gpuSpeedups, gpuS)
		cpuSpeedups = append(cpuSpeedups, cpuS)
		if gpuS > res.MaxGPUSpeedup {
			res.MaxGPUSpeedup = gpuS
		}
	}
	res.MeanGPUSpeedup = metrics.Summarize(gpuSpeedups).Mean
	res.MeanCPUSpeedup = metrics.Summarize(cpuSpeedups).Mean
	return res, nil
}

// Render writes the figure report.
func (r *Fig4Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig 4: relaxation time vs heavy atoms (%d points)\n", len(r.Points))
	fmt.Fprintf(w, "  GPU speedup   mean %.1fx, max %.1fx (paper: up to 14x)\n", r.MeanGPUSpeedup, r.MaxGPUSpeedup)
	fmt.Fprintf(w, "  CPU speedup   mean %.1fx\n", r.MeanCPUSpeedup)
	fmt.Fprintf(w, "  T1080 (AF2)   %.1f h (paper: ~4.5 h); GPU method %.1f min\n", r.T1080AF2Hours, r.T1080GPUMinutes)
	tab := metrics.Table{Header: []string{"Target", "HeavyAtoms", "AF2 s", "CPU s", "GPU s", "AF2 rounds"}}
	for _, p := range r.Points {
		if p.HeavyAtoms < 4000 && p.TargetID != "T1080" {
			continue // print the informative large-system tail only
		}
		tab.AddRow(p.TargetID, p.HeavyAtoms,
			fmt.Sprintf("%.0f", p.Seconds[relax.PlatformAF2]),
			fmt.Sprintf("%.0f", p.Seconds[relax.PlatformCPU]),
			fmt.Sprintf("%.0f", p.Seconds[relax.PlatformGPU]),
			p.AF2Rounds)
	}
	return tab.Render(w)
}
