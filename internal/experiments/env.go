// Package experiments implements the reproduction of every table and
// figure in the paper's evaluation section. Each experiment is a pure
// function of a deterministic Env, returns a structured result, and can
// render itself as a paper-versus-measured report. The root-level Go
// benchmarks and the cmd/afbench tool are thin wrappers over this package.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fold"
	"repro/internal/fsim"
	"repro/internal/msa"
	"repro/internal/proteome"
)

// Env is the shared deterministic world of all experiments: the domain
// universe, the four proteomes, ground truth, and the inference engine.
type Env struct {
	Seed     uint64
	Universe *proteome.Universe
	GT       *core.GroundTruth
	Engine   *fold.Engine
	FS       fsim.Filesystem
	// Parallelism bounds the host-side worker pool every experiment's
	// compute fans out over (see internal/parallel). It never changes a
	// reported number: results are collected in submission order, so runs
	// at any value are byte-identical. <= 0 selects GOMAXPROCS; 1 forces
	// the serial reference path the determinism tests compare against.
	Parallelism int
	// Executor, when set, replaces the default in-process pool with an
	// alternative back end (exec.NewFlow drives every experiment through
	// the flow scheduler/worker/client protocol). Results are
	// byte-identical across executors and worker counts; nil selects the
	// pool bounded at Parallelism. The Env does not own the executor — the
	// caller closes it.
	Executor exec.Executor
	// SummaryOnly opts the campaign stages into summary-only remote
	// results (core.Config.SummaryOnly): feature kernels return a digest
	// instead of full per-protein feature payloads. It only has an effect
	// when Executor dispatches specs across process boundaries; every
	// reported number is identical either way.
	SummaryOnly bool

	proteomes map[string]*proteome.Proteome
	featGen   *core.CachedFeatureGen
}

// DefaultSeed is the campaign seed used by all published numbers in
// EXPERIMENTS.md.
const DefaultSeed = 20220125 // the paper's arXiv date

// NewEnv builds the experiment world.
func NewEnv(seed uint64) *Env {
	u := proteome.NewUniverse(seed, 96, 60, 240)
	gt := core.NewGroundTruth(seed)
	return &Env{
		Seed:      seed,
		Universe:  u,
		GT:        gt,
		Engine:    fold.NewEngine(gt, seed^0xabcdef),
		FS:        fsim.DefaultFilesystem(),
		proteomes: make(map[string]*proteome.Proteome),
		featGen:   core.NewCachedFeatureGen(core.DefaultFastFeatureGen(seed ^ 0x5eed)),
	}
}

// Proteome returns (generating and registering on first use) the proteome
// of one of the paper's species.
func (e *Env) Proteome(sp proteome.Species) *proteome.Proteome {
	if p, ok := e.proteomes[sp.Code]; ok {
		return p
	}
	p := proteome.Generate(sp, e.Universe, e.Seed+uint64(len(sp.Code)))
	e.GT.Register(p)
	e.proteomes[sp.Code] = p
	return p
}

// Benchmark559 returns the paper's 559-sequence D. vulgaris benchmark set:
// the proteome's hypothetical proteins (29–1266 AA, mean ~202).
func (e *Env) Benchmark559() []proteome.Protein {
	return e.Proteome(proteome.DVulgaris).Hypotheticals()
}

// FeatureGen returns the campaign-scale feature generator. The returned
// generator memoizes per-protein results for the lifetime of the Env, so
// experiments that revisit a proteome (all of them do) derive each
// protein's features exactly once per seed.
func (e *Env) FeatureGen() core.FeatureGen {
	return e.featGen
}

// executor resolves the Env's execution back end: the configured Executor,
// or the default pool bounded at Parallelism.
func (e *Env) executor() exec.Executor {
	return exec.Resolve(e.Executor, e.Parallelism)
}

// FeaturesFor computes features for a protein set, keyed by ID. Proteins
// fan out over the Env's executor; results are identical at any
// parallelism and on any back end.
func (e *Env) FeaturesFor(proteins []proteome.Protein) (map[string]*msa.Features, error) {
	gen := e.FeatureGen()
	feats, err := exec.Map(e.executor(), proteins, func(_ int, p proteome.Protein) (*msa.Features, error) {
		f, err := gen.Features(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: features for %s: %w", p.Seq.ID, err)
		}
		return f, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*msa.Features, len(proteins))
	for i, p := range proteins {
		out[p.Seq.ID] = feats[i]
	}
	return out, nil
}

// config returns the standard deployment config with the Env's host-side
// parallelism and executor threaded through.
func (e *Env) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Parallelism = e.Parallelism
	cfg.Executor = e.Executor
	cfg.SummaryOnly = e.SummaryOnly
	return cfg
}
