// Package experiments implements the reproduction of every table and
// figure in the paper's evaluation section. Each experiment is a pure
// function of a deterministic Env, returns a structured result, and can
// render itself as a paper-versus-measured report. The root-level Go
// benchmarks and the cmd/afbench tool are thin wrappers over this package.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fold"
	"repro/internal/fsim"
	"repro/internal/msa"
	"repro/internal/proteome"
)

// Env is the shared deterministic world of all experiments: the domain
// universe, the four proteomes, ground truth, and the inference engine.
type Env struct {
	Seed     uint64
	Universe *proteome.Universe
	GT       *core.GroundTruth
	Engine   *fold.Engine
	FS       fsim.Filesystem

	proteomes map[string]*proteome.Proteome
}

// DefaultSeed is the campaign seed used by all published numbers in
// EXPERIMENTS.md.
const DefaultSeed = 20220125 // the paper's arXiv date

// NewEnv builds the experiment world.
func NewEnv(seed uint64) *Env {
	u := proteome.NewUniverse(seed, 96, 60, 240)
	gt := core.NewGroundTruth(seed)
	return &Env{
		Seed:      seed,
		Universe:  u,
		GT:        gt,
		Engine:    fold.NewEngine(gt, seed^0xabcdef),
		FS:        fsim.DefaultFilesystem(),
		proteomes: make(map[string]*proteome.Proteome),
	}
}

// Proteome returns (generating and registering on first use) the proteome
// of one of the paper's species.
func (e *Env) Proteome(sp proteome.Species) *proteome.Proteome {
	if p, ok := e.proteomes[sp.Code]; ok {
		return p
	}
	p := proteome.Generate(sp, e.Universe, e.Seed+uint64(len(sp.Code)))
	e.GT.Register(p)
	e.proteomes[sp.Code] = p
	return p
}

// Benchmark559 returns the paper's 559-sequence D. vulgaris benchmark set:
// the proteome's hypothetical proteins (29–1266 AA, mean ~202).
func (e *Env) Benchmark559() []proteome.Protein {
	return e.Proteome(proteome.DVulgaris).Hypotheticals()
}

// FeatureGen returns the campaign-scale feature generator.
func (e *Env) FeatureGen() core.FeatureGen {
	return core.DefaultFastFeatureGen(e.Seed ^ 0x5eed)
}

// FeaturesFor computes features for a protein set, keyed by ID.
func (e *Env) FeaturesFor(proteins []proteome.Protein) (map[string]*msa.Features, error) {
	gen := e.FeatureGen()
	out := make(map[string]*msa.Features, len(proteins))
	for _, p := range proteins {
		f, err := gen.Features(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: features for %s: %w", p.Seq.ID, err)
		}
		out[p.Seq.ID] = f
	}
	return out, nil
}
