package experiments

import (
	"bytes"
	"testing"

	"repro/internal/proteome"
	"repro/internal/relax"
)

// The experiment tests assert the *shape* of each paper result — who wins,
// by roughly what factor, where thresholds fall — with bands wide enough to
// survive recalibration but tight enough to catch regressions.

func testEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(DefaultSeed)
}

func TestTable1Shape(t *testing.T) {
	env := testEnv(t)
	res, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != 559 {
		t.Fatalf("benchmark size = %d, want 559", res.Benchmark)
	}
	reduced, err := res.Row("reduced_dbs")
	if err != nil {
		t.Fatal(err)
	}
	genome, err := res.Row("genome")
	if err != nil {
		t.Fatal(err)
	}
	super, err := res.Row("super")
	if err != nil {
		t.Fatal(err)
	}
	casp, err := res.Row("casp14")
	if err != nil {
		t.Fatal(err)
	}

	// Quality ordering: super ≥ genome ≥ reduced; casp14 ≈ reduced.
	if !(super.MeanPLDDT > genome.MeanPLDDT && genome.MeanPLDDT > reduced.MeanPLDDT) {
		t.Errorf("pLDDT ordering broken: %v / %v / %v",
			reduced.MeanPLDDT, genome.MeanPLDDT, super.MeanPLDDT)
	}
	if !(super.MeanPTMS > genome.MeanPTMS && genome.MeanPTMS > reduced.MeanPTMS) {
		t.Errorf("pTMS ordering broken")
	}
	if d := casp.MeanPLDDT - reduced.MeanPLDDT; d < -1 || d > 1.5 {
		t.Errorf("casp14 pLDDT should track reduced_dbs: Δ=%v", d)
	}
	// Absolute levels near the paper.
	for _, row := range res.Rows {
		if row.MeanPLDDT < 75 || row.MeanPLDDT > 84 {
			t.Errorf("%s pLDDT %v outside paper band", row.Preset, row.MeanPLDDT)
		}
		if row.MeanPTMS < 0.58 || row.MeanPTMS > 0.70 {
			t.Errorf("%s pTMS %v outside paper band", row.Preset, row.MeanPTMS)
		}
	}
	// Completion: only casp14 loses targets (OOM on the longest).
	if reduced.Count != 559 || genome.Count != 559 || super.Count != 559 {
		t.Error("single-ensemble presets must complete all 559")
	}
	if casp.Count >= 559 || casp.Count < 540 {
		t.Errorf("casp14 completed %d, paper lost 8 (551)", casp.Count)
	}
	// Cost ordering: reduced ≤ genome ≤ super; casp14 most expensive by far.
	if !(reduced.WalltimeMin <= genome.WalltimeMin && genome.WalltimeMin <= super.WalltimeMin) {
		t.Errorf("walltime ordering broken: %v / %v / %v",
			reduced.WalltimeMin, genome.WalltimeMin, super.WalltimeMin)
	}
	if casp.WalltimeMin < 2*reduced.WalltimeMin {
		t.Errorf("casp14 walltime %v not clearly dominant (even on 91 nodes)", casp.WalltimeMin)
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty render")
	}
	if _, err := res.Row("nope"); err == nil {
		t.Error("unknown row accepted")
	}
}

func TestFig2LoadBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 runs the full plant proteome")
	}
	env := testEnv(t)
	res, err := Fig2(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1200 {
		t.Errorf("workers = %d", res.Workers)
	}
	// The headline claim: sorted finish spread is minutes; random is much
	// worse.
	if res.FinishSpreadMin > 10 {
		t.Errorf("sorted finish spread %v min; paper says minutes", res.FinishSpreadMin)
	}
	if res.RandomFinishSpreadMin < 5*res.FinishSpreadMin {
		t.Errorf("random spread %v not clearly worse than sorted %v",
			res.RandomFinishSpreadMin, res.FinishSpreadMin)
	}
	if res.Utilization < 0.9 {
		t.Errorf("utilization %v below 90%%", res.Utilization)
	}
	if len(res.SampleRows) != 10 {
		t.Errorf("expected 10 sample worker rows, got %d", len(res.SampleRows))
	}
}

func TestFig3NoQualityLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 minimizes 38 structures three times")
	}
	env := testEnv(t)
	res, err := Fig3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range fig3Platforms {
		if res.TMCorr[p] < 0.95 {
			t.Errorf("%v TM correlation %v; paper shows strong correlation", p, res.TMCorr[p])
		}
		if res.SPECCorr[p] < 0.95 {
			t.Errorf("%v SPECS correlation %v", p, res.SPECCorr[p])
		}
	}
	if res.MaxTMDrop > 0.02 {
		t.Errorf("max TM drop %v; paper observes no decreases", res.MaxTMDrop)
	}
	// All three methods must agree (equivalent quality).
	af2 := res.MeanSPECDelta[relax.PlatformAF2]
	gpu := res.MeanSPECDelta[relax.PlatformGPU]
	if d := af2 - gpu; d < -0.01 || d > 0.01 {
		t.Errorf("methods disagree on SPECS delta: %v vs %v", af2, gpu)
	}
}

func TestFig4SpeedupShape(t *testing.T) {
	env := testEnv(t)
	res, err := Fig4(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanGPUSpeedup < 8 || res.MeanGPUSpeedup > 20 {
		t.Errorf("mean GPU speedup %v; paper reports up to 14x", res.MeanGPUSpeedup)
	}
	if res.MeanCPUSpeedup <= 1 || res.MeanCPUSpeedup >= res.MeanGPUSpeedup {
		t.Errorf("CPU speedup %v must sit between 1x and the GPU's", res.MeanCPUSpeedup)
	}
	if res.T1080AF2Hours <= 0 {
		t.Error("T1080 outlier missing")
	}
	if res.T1080GPUMinutes > 5 {
		t.Errorf("T1080 on GPU should be minutes, got %v", res.T1080GPUMinutes)
	}
}

func TestFeatureGenBudget(t *testing.T) {
	env := testEnv(t)
	res, err := FeatureGenExperiment(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proteins != 3205 {
		t.Errorf("proteins = %d", res.Proteins)
	}
	// Paper: ~240 Andes node-hours, roughly half the Summit inference cost.
	if res.AndesNodeHours < 180 || res.AndesNodeHours > 320 {
		t.Errorf("Andes node-hours %v, paper ~240", res.AndesNodeHours)
	}
	if res.SummitNodeHours < res.AndesNodeHours*0.6 {
		t.Errorf("Summit inference (%v) should not be cheaper than feature gen (%v)",
			res.SummitNodeHours, res.AndesNodeHours)
	}
	if res.FullDBNodeHours <= res.AndesNodeHours {
		t.Error("full 2.1TB dataset must cost more than the reduced one")
	}
	if res.ReplicationHoursFul <= res.ReplicationHoursRed {
		t.Error("full dataset replication must cost more")
	}
}

func TestRecycleGainsTail(t *testing.T) {
	env := testEnv(t)
	res, err := RecycleGains(env)
	if err != nil {
		t.Fatal(err)
	}
	// The gain must be concentrated: a small fraction of targets supplies
	// the majority of the improvement (paper: 45% from 5%).
	if res.FracTargetsBig > 0.15 {
		t.Errorf("%v of targets have Δ≥0.1; paper says ~5%%", res.FracTargetsBig)
	}
	if res.FracGainFromBig < 0.3 {
		t.Errorf("big-improvement targets supply only %v of the gain", res.FracGainFromBig)
	}
	if res.FracGainFromMed <= res.FracGainFromBig {
		t.Error("Δ≥0.05 class must contain the Δ≥0.1 class")
	}
	// Improved targets recycle far beyond the fixed 3.
	if res.MeanRecyclesOfBig < 8 {
		t.Errorf("improved targets recycle %v on average; paper ~19", res.MeanRecyclesOfBig)
	}
}

func TestSDivinumHarderThanProkaryotes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full plant proteome")
	}
	env := testEnv(t)
	sd, err := SDivinum(env)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	genome, err := t1.Row("genome")
	if err != nil {
		t.Fatal(err)
	}
	// The plant proteome must be the harder workload (lower pTMS fraction
	// than even the hardest prokaryote subset under the same preset).
	if sd.FracPTMSAbove06 >= genome.FracPTMSAbove06+0.05 {
		t.Errorf("S. divinum pTMS>0.6 %v not below prokaryote benchmark %v",
			sd.FracPTMSAbove06, genome.FracPTMSAbove06)
	}
	if sd.FracPTMSAbove06 < 0.35 || sd.FracPTMSAbove06 > 0.70 {
		t.Errorf("pTMS>0.6 fraction %v outside paper band (~53%%)", sd.FracPTMSAbove06)
	}
	if sd.AndesNodeHours < 1200 || sd.AndesNodeHours > 2800 {
		t.Errorf("Andes node-hours %v, paper ~2000", sd.AndesNodeHours)
	}
	if sd.SummitNodeHours < 1800 || sd.SummitNodeHours > 4200 {
		t.Errorf("Summit node-hours %v, paper ~3000", sd.SummitNodeHours)
	}
}

func TestGenomeRelaxMinutes(t *testing.T) {
	env := testEnv(t)
	res, err := GenomeRelax(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Structures != 3205 {
		t.Errorf("structures = %d", res.Structures)
	}
	if res.Workers != 48 {
		t.Errorf("workers = %d, paper used 48", res.Workers)
	}
	// Paper: 22.89 minutes.
	if res.WallMinutes < 15 || res.WallMinutes > 35 {
		t.Errorf("wall %v min, paper 22.89", res.WallMinutes)
	}
}

func TestCampaignBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four proteomes")
	}
	env := testEnv(t)
	res, err := Campaign(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets < 34000 || res.Targets > 35634 {
		t.Errorf("targets = %d, abstract says 35,634 (minus >2500 AA)", res.Targets)
	}
	// The headline: under 4,000 Summit node-hours.
	if res.SummitNodeHours >= 4000 {
		t.Errorf("Summit node-hours %v exceeds the paper's <4000 budget", res.SummitNodeHours)
	}
	if res.SummitNodeHours < 1500 {
		t.Errorf("Summit node-hours %v implausibly cheap", res.SummitNodeHours)
	}
}

func TestProteomeCaching(t *testing.T) {
	env := testEnv(t)
	a := env.Proteome(proteome.DVulgaris)
	b := env.Proteome(proteome.DVulgaris)
	if a != b {
		t.Error("proteome not cached")
	}
}
