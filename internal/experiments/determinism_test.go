package experiments

import (
	"reflect"
	"testing"

	"repro/internal/exec"
)

// TestTable1ParallelMatchesSerial is the contract the parallel execution
// layer rests on: a run fanned out over the worker pool must report
// byte-identical results to the serial reference path. Table 1 exercises
// the full feature-generation + inference pipeline over all four presets,
// so agreement here covers the memoized feature generator, the inference
// fan-out, and the dataflow accounting.
func TestTable1ParallelMatchesSerial(t *testing.T) {
	serialEnv := NewEnv(DefaultSeed)
	serialEnv.Parallelism = 1
	serial, err := Table1(serialEnv)
	if err != nil {
		t.Fatal(err)
	}

	parEnv := NewEnv(DefaultSeed)
	parEnv.Parallelism = 8
	par, err := Table1(parEnv)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row count: serial %d vs parallel %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i] != par.Rows[i] {
			t.Errorf("preset %s: serial %+v != parallel %+v",
				serial.Rows[i].Preset, serial.Rows[i], par.Rows[i])
		}
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("Table1 results differ between parallelism 1 and 8")
	}
}

// TestFeaturesForParallelMatchesSerial pins the feature stage alone:
// identical maps at any parallelism, and the Env-level memo must hand back
// the same canonical feature pointers on a second pass.
func TestFeaturesForParallelMatchesSerial(t *testing.T) {
	serialEnv := NewEnv(DefaultSeed)
	serialEnv.Parallelism = 1
	bench := serialEnv.Benchmark559()
	serial, err := serialEnv.FeaturesFor(bench)
	if err != nil {
		t.Fatal(err)
	}

	parEnv := NewEnv(DefaultSeed)
	parEnv.Parallelism = 8
	par, err := parEnv.FeaturesFor(parEnv.Benchmark559())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("feature count: serial %d vs parallel %d", len(serial), len(par))
	}
	for id, sf := range serial {
		pf, ok := par[id]
		if !ok {
			t.Fatalf("parallel run missing features for %s", id)
		}
		if !reflect.DeepEqual(sf, pf) {
			t.Errorf("features for %s differ between serial and parallel runs", id)
		}
	}

	// Memoization: a second request must return the cached pointers.
	again, err := parEnv.FeaturesFor(parEnv.Benchmark559())
	if err != nil {
		t.Fatal(err)
	}
	for id := range par {
		if par[id] != again[id] {
			t.Errorf("feature memo returned a different pointer for %s", id)
		}
	}
}

// TestTable1CrossExecutor is the cross-executor equivalence suite: the
// same Table 1 workload driven through the serial reference path, the
// in-process pool, and flow executors at two worker counts must report
// byte-identical results. This is the contract that lets a campaign move
// between the host pool and the scheduler/worker/client protocol freely.
func TestTable1CrossExecutor(t *testing.T) {
	run := func(ex exec.Executor, par int) *Table1Result {
		t.Helper()
		env := NewEnv(DefaultSeed)
		env.Parallelism = par
		env.Executor = ex
		res, err := Table1(env)
		if err != nil {
			name := "pool"
			if ex != nil {
				name = ex.Name()
			}
			t.Fatalf("%s/%d: %v", name, par, err)
		}
		return res
	}

	serial := run(nil, 1)

	flow2, err := exec.NewFlow(2)
	if err != nil {
		t.Fatal(err)
	}
	defer flow2.Close()
	flow8, err := exec.NewFlow(8)
	if err != nil {
		t.Fatal(err)
	}
	defer flow8.Close()

	// Tracing is observation only: executors with a TraceSink attached
	// must stay byte-identical to untraced runs on every back end.
	tracedPool := exec.NewPool(8)
	poolTrace := &exec.Trace{}
	tracedPool.SetTrace(poolTrace)
	tracedFlow, err := exec.NewFlow(4)
	if err != nil {
		t.Fatal(err)
	}
	defer tracedFlow.Close()
	flowTrace := &exec.Trace{}
	tracedFlow.SetTrace(flowTrace)

	variants := []struct {
		name string
		res  *Table1Result
	}{
		{"pool-8", run(nil, 8)},
		{"flow-2", run(flow2, 0)},
		{"flow-8", run(flow8, 0)},
		{"pool-8-traced", run(tracedPool, 0)},
		{"flow-4-traced", run(tracedFlow, 0)},
	}
	for name, tr := range map[string]*exec.Trace{"pool": poolTrace, "flow": flowTrace} {
		if tr.Len() == 0 {
			t.Errorf("%s executor recorded no task stats", name)
		}
	}
	for _, v := range variants {
		if !reflect.DeepEqual(serial, v.res) {
			t.Errorf("Table1 under %s differs from the serial reference", v.name)
		}
	}
}

// TestCampaignParallelMatchesSerial runs one full species campaign (the
// smallest proteome) at both parallelism settings and compares the
// inference fan-out, high-memory retry wave, and relax accounting.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline equivalence is not a -short test")
	}
	run := func(workers int) (*SDivinumResult, error) {
		env := NewEnv(DefaultSeed)
		env.Parallelism = workers
		return SDivinum(env)
	}
	serial, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("SDivinum results differ:\nserial   %+v\nparallel %+v", serial, par)
	}
}

// TestCampaignCrossExecutor drives the full three-stage campaign (feature
// generation, inference + high-memory retry, relaxation) through the flow
// executor and compares it against the pool, at two worker counts — the
// acceptance gate for the executor abstraction: campaign output under
// -executor=flow is byte-identical to -executor=pool at any worker count.
func TestCampaignCrossExecutor(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline equivalence is not a -short test")
	}
	run := func(ex exec.Executor) (*SDivinumResult, error) {
		env := NewEnv(DefaultSeed)
		env.Parallelism = 4
		env.Executor = ex
		return SDivinum(env)
	}
	pool, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 6} {
		fl, err := exec.NewFlow(workers)
		if err != nil {
			t.Fatal(err)
		}
		res, ferr := run(fl)
		fl.Close()
		if ferr != nil {
			t.Fatalf("flow-%d: %v", workers, ferr)
		}
		if !reflect.DeepEqual(pool, res) {
			t.Errorf("campaign under flow-%d differs from pool", workers)
		}
	}
}
