package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/proteome"
)

// Fig2Result reproduces Fig. 2: the distribution of inference work across
// Dask workers over a large run (the paper shows 10 of 1200 workers on a
// ~5-hour S. divinum wave), plus the load-balance ablation the figure's
// discussion rests on (length-sorted versus random task order).
type Fig2Result struct {
	Workers       int
	Tasks         int
	MakespanHours float64
	// FinishSpreadMin is the gap between first and last worker completion
	// ("all workers finished within minutes of one another").
	FinishSpreadMin float64
	Utilization     float64
	// Random-order baseline for the same tasks.
	RandomMakespanHours   float64
	RandomFinishSpreadMin float64
	// SampleRows are ASCII Gantt strips for a few representative workers.
	SampleRows []string
	SampleIDs  []int
}

// Fig2 simulates the S. divinum inference wave on 200 nodes (1200 GPU
// workers) under the genome preset, with tasks submitted longest-first, and
// contrasts it with random submission order.
func Fig2(env *Env) (*Fig2Result, error) {
	sd := env.Proteome(proteome.SDivinum)
	proteins := sd.FilterMaxLen(2500)
	gen := env.FeatureGen()

	// One work item per protein (its five model inferences); per-protein
	// task groups come back in submission order, so the flattened task list
	// is identical to the serial loop's.
	perProtein, err := exec.Map(env.executor(), proteins, func(_ int, p proteome.Protein) ([]cluster.SimTask, error) {
		f, err := gen.Features(p)
		if err != nil {
			return nil, err
		}
		group := make([]cluster.SimTask, 0, 5)
		for m := 0; m < 5; m++ {
			pred, err := env.Engine.Infer(foldTask(p, f, m))
			if err != nil {
				continue // long-tail OOM handled elsewhere; skip here
			}
			group = append(group, cluster.SimTask{
				ID:       fmt.Sprintf("%s/m%d", p.Seq.ID, m),
				Weight:   float64(p.Seq.Len()),
				Duration: pred.GPUSeconds,
			})
		}
		return group, nil
	})
	if err != nil {
		return nil, err
	}
	tasks := make([]cluster.SimTask, 0, len(proteins)*5)
	for _, group := range perProtein {
		tasks = append(tasks, group...)
	}

	const workers = 1200
	opt := cluster.DataflowOptions{Workers: workers, DispatchOverhead: 1.5, StartupDelay: 300}

	sorted := make([]cluster.SimTask, len(tasks))
	copy(sorted, tasks)
	cluster.ApplyOrder(sorted, cluster.LongestFirst)

	random := make([]cluster.SimTask, len(tasks))
	copy(random, tasks)
	// Deterministic shuffle via the env seed.
	r := newShuffleSource(env.Seed)
	r.Shuffle(len(random), func(i, j int) { random[i], random[j] = random[j], random[i] })

	// The sorted and random waves are independent simulations of the same
	// workload, so they run concurrently on the executor.
	sims, err := cluster.SimulateWaves(env.executor(), []cluster.Wave{
		{Tasks: sorted, Opt: opt},
		{Tasks: random, Opt: opt},
	})
	if err != nil {
		return nil, err
	}
	simSorted, simRandom := sims[0], sims[1]

	res := &Fig2Result{
		Workers:               workers,
		Tasks:                 len(tasks),
		MakespanHours:         simSorted.Makespan / 3600,
		FinishSpreadMin:       simSorted.FinishSpread() / 60,
		Utilization:           simSorted.Utilization(),
		RandomMakespanHours:   simRandom.Makespan / 3600,
		RandomFinishSpreadMin: simRandom.FinishSpread() / 60,
	}

	// Ten representative workers, evenly spaced, as ASCII Gantt rows.
	for k := 0; k < 10; k++ {
		w := k * workers / 10
		tl := simSorted.WorkerTimeline(w)
		ivs := make([][2]float64, len(tl))
		for i, iv := range tl {
			ivs[i] = [2]float64{iv.Start, iv.End}
		}
		res.SampleRows = append(res.SampleRows, metrics.GantRow(ivs, simSorted.Makespan, 100))
		res.SampleIDs = append(res.SampleIDs, w)
	}
	return res, nil
}

// Render writes the figure report.
func (r *Fig2Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig 2: inference distribution across %d Dask workers (%d tasks)\n", r.Workers, r.Tasks)
	fmt.Fprintf(w, "  makespan            %.2f h (paper: ~5 h run shown)\n", r.MakespanHours)
	fmt.Fprintf(w, "  finish spread       %.1f min sorted vs %.1f min random (paper: \"within minutes of one another\")\n",
		r.FinishSpreadMin, r.RandomFinishSpreadMin)
	fmt.Fprintf(w, "  utilization         %.1f%%\n", 100*r.Utilization)
	fmt.Fprintf(w, "  random-order cost   %.2f h makespan\n", r.RandomMakespanHours)
	fmt.Fprintln(w, "  worker timelines ('#' busy, '.' idle):")
	for i, row := range r.SampleRows {
		fmt.Fprintf(w, "  w%04d %s\n", r.SampleIDs[i], row)
	}
	return nil
}
