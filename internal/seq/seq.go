// Package seq provides the protein sequence model used throughout the
// reproduction: the 20-letter amino-acid alphabet with physicochemical
// annotations, sequence records, and FASTA I/O.
package seq

import (
	"fmt"
	"strings"
)

// Alphabet is the canonical 20 amino acids, indexed 0..19 in this order.
const Alphabet = "ACDEFGHIKLMNPQRSTVWY"

// NumAminoAcids is the alphabet size.
const NumAminoAcids = len(Alphabet)

// aaIndex maps an amino-acid letter (upper case) to its alphabet index, or
// -1 if invalid.
var aaIndex [256]int8

func init() {
	for i := range aaIndex {
		aaIndex[i] = -1
	}
	for i := 0; i < len(Alphabet); i++ {
		aaIndex[Alphabet[i]] = int8(i)
		aaIndex[Alphabet[i]+('a'-'A')] = int8(i)
	}
}

// Index returns the alphabet index of an amino-acid letter, or -1 for any
// non-canonical character (including gaps and ambiguity codes).
func Index(c byte) int { return int(aaIndex[c]) }

// Letter returns the amino-acid letter for an alphabet index.
func Letter(i int) byte {
	if i < 0 || i >= NumAminoAcids {
		return 'X'
	}
	return Alphabet[i]
}

// ThreeLetter maps one-letter codes to PDB-style three-letter residue names.
var ThreeLetter = map[byte]string{
	'A': "ALA", 'C': "CYS", 'D': "ASP", 'E': "GLU", 'F': "PHE",
	'G': "GLY", 'H': "HIS", 'I': "ILE", 'K': "LYS", 'L': "LEU",
	'M': "MET", 'N': "ASN", 'P': "PRO", 'Q': "GLN", 'R': "ARG",
	'S': "SER", 'T': "THR", 'V': "VAL", 'W': "TRP", 'Y': "TYR",
}

// HeavyAtoms gives the number of non-hydrogen atoms per residue type,
// including the four backbone heavy atoms (N, CA, C, O). Used to size
// molecular-mechanics systems the way Fig. 4 of the paper does (time vs
// total heavy atoms).
var HeavyAtoms = map[byte]int{
	'G': 4, 'A': 5, 'S': 6, 'C': 6, 'T': 7, 'P': 7, 'V': 7,
	'D': 8, 'N': 8, 'I': 8, 'L': 8, 'M': 8, 'E': 9, 'Q': 9,
	'K': 9, 'H': 10, 'F': 11, 'R': 11, 'Y': 12, 'W': 14,
}

// Hydrophobicity is the Kyte-Doolittle scale, used by the folding surrogate
// to derive burial propensities from sequence.
var Hydrophobicity = map[byte]float64{
	'A': 1.8, 'C': 2.5, 'D': -3.5, 'E': -3.5, 'F': 2.8,
	'G': -0.4, 'H': -3.2, 'I': 4.5, 'K': -3.9, 'L': 3.8,
	'M': 1.9, 'N': -3.5, 'P': -1.6, 'Q': -3.5, 'R': -4.5,
	'S': -0.8, 'T': -0.7, 'V': 4.2, 'W': -0.9, 'Y': -1.3,
}

// HelixPropensity and SheetPropensity are Chou-Fasman-like conformational
// preferences (values near 1 are neutral) used by the folding surrogate's
// secondary-structure head.
var HelixPropensity = map[byte]float64{
	'A': 1.42, 'C': 0.70, 'D': 1.01, 'E': 1.51, 'F': 1.13,
	'G': 0.57, 'H': 1.00, 'I': 1.08, 'K': 1.16, 'L': 1.21,
	'M': 1.45, 'N': 0.67, 'P': 0.57, 'Q': 1.11, 'R': 0.98,
	'S': 0.77, 'T': 0.83, 'V': 1.06, 'W': 1.08, 'Y': 0.69,
}

var SheetPropensity = map[byte]float64{
	'A': 0.83, 'C': 1.19, 'D': 0.54, 'E': 0.37, 'F': 1.38,
	'G': 0.75, 'H': 0.87, 'I': 1.60, 'K': 0.74, 'L': 1.30,
	'M': 1.05, 'N': 0.89, 'P': 0.55, 'Q': 1.10, 'R': 0.93,
	'S': 0.75, 'T': 1.19, 'V': 1.70, 'W': 1.37, 'Y': 1.47,
}

// BackgroundFreq is the approximate background frequency of each amino acid
// in UniProt-like databases, indexed by alphabet index. It sums to 1.
var BackgroundFreq = [NumAminoAcids]float64{
	// A      C      D      E      F      G      H      I      K      L
	0.0826, 0.0137, 0.0546, 0.0672, 0.0386, 0.0708, 0.0227, 0.0593, 0.0581, 0.0965,
	// M      N      P      Q      R      S      T      V      W      Y
	0.0241, 0.0406, 0.0475, 0.0393, 0.0553, 0.0660, 0.0535, 0.0687, 0.0110, 0.0292,
}

// Sequence is a named protein sequence.
type Sequence struct {
	ID          string // accession-like identifier
	Description string // free-text description (e.g. "hypothetical protein")
	Residues    string // one-letter amino-acid string, upper case
}

// Len returns the sequence length in residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// Validate reports an error if the sequence contains non-canonical residues
// or is empty.
func (s *Sequence) Validate() error {
	if len(s.Residues) == 0 {
		return fmt.Errorf("seq: %s: empty sequence", s.ID)
	}
	for i := 0; i < len(s.Residues); i++ {
		if Index(s.Residues[i]) < 0 {
			return fmt.Errorf("seq: %s: invalid residue %q at position %d", s.ID, s.Residues[i], i)
		}
	}
	return nil
}

// Indices returns the alphabet-index encoding of the sequence. Invalid
// characters map to -1; call Validate first if that matters.
func (s *Sequence) Indices() []int8 {
	out := make([]int8, len(s.Residues))
	for i := 0; i < len(s.Residues); i++ {
		out[i] = int8(Index(s.Residues[i]))
	}
	return out
}

// Composition returns per-amino-acid frequencies of the sequence.
func (s *Sequence) Composition() [NumAminoAcids]float64 {
	var freq [NumAminoAcids]float64
	n := 0
	for i := 0; i < len(s.Residues); i++ {
		if k := Index(s.Residues[i]); k >= 0 {
			freq[k]++
			n++
		}
	}
	if n > 0 {
		for k := range freq {
			freq[k] /= float64(n)
		}
	}
	return freq
}

// TotalHeavyAtoms returns the heavy-atom count of the full chain, the size
// metric used by the relaxation benchmarks (Fig. 4).
func (s *Sequence) TotalHeavyAtoms() int {
	total := 0
	for i := 0; i < len(s.Residues); i++ {
		if n, ok := HeavyAtoms[s.Residues[i]]; ok {
			total += n
		} else {
			total += 8 // mean-ish fallback for non-canonical letters
		}
	}
	return total
}

// Identity returns the fraction of identical positions between two
// equal-length residue strings; it returns an error on length mismatch.
func Identity(a, b string) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("seq: identity length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("seq: identity of empty sequences")
	}
	same := 0
	for i := 0; i < len(a); i++ {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a)), nil
}

// IsHypothetical reports whether the sequence is annotated as a hypothetical
// protein, the class Section 4.6 of the paper analyses.
func (s *Sequence) IsHypothetical() bool {
	return strings.Contains(strings.ToLower(s.Description), "hypothetical")
}
