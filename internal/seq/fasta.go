package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadFASTA parses FASTA-format records from r. Header lines are split into
// an ID (first whitespace-delimited token after '>') and a Description (the
// remainder). Sequence lines are concatenated and upper-cased; interior
// whitespace is removed. A record with no sequence lines is an error.
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	var out []Sequence
	var cur *Sequence
	var body strings.Builder

	flush := func() error {
		if cur == nil {
			return nil
		}
		cur.Residues = body.String()
		if cur.Residues == "" {
			return fmt.Errorf("seq: fasta record %q has no sequence", cur.ID)
		}
		out = append(out, *cur)
		cur = nil
		body.Reset()
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("seq: empty fasta header at line %d", lineNo)
			}
			id := header
			desc := ""
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				id = header[:i]
				desc = strings.TrimSpace(header[i+1:])
			}
			cur = &Sequence{ID: id, Description: desc}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seq: sequence data before first header at line %d", lineNo)
		}
		body.WriteString(strings.ToUpper(strings.Join(strings.Fields(line), "")))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading fasta: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFASTA writes records to w in FASTA format with 60-column wrapping.
func WriteFASTA(w io.Writer, seqs []Sequence) error {
	bw := bufio.NewWriter(w)
	for i := range seqs {
		s := &seqs[i]
		if s.Description != "" {
			if _, err := fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Description); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(bw, ">%s\n", s.ID); err != nil {
				return err
			}
		}
		for off := 0; off < len(s.Residues); off += 60 {
			end := off + 60
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			if _, err := fmt.Fprintln(bw, s.Residues[off:end]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
