package seq

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAlphabetRoundTrip(t *testing.T) {
	for i := 0; i < NumAminoAcids; i++ {
		c := Letter(i)
		if Index(c) != i {
			t.Errorf("Index(Letter(%d)) = %d", i, Index(c))
		}
	}
	if Index('X') != -1 || Index('-') != -1 || Index('*') != -1 {
		t.Error("non-canonical characters must map to -1")
	}
	if Index('a') != Index('A') {
		t.Error("lower-case must map like upper-case")
	}
	if Letter(-1) != 'X' || Letter(20) != 'X' {
		t.Error("out-of-range Letter must return X")
	}
}

func TestTablesCoverAlphabet(t *testing.T) {
	for i := 0; i < NumAminoAcids; i++ {
		c := Alphabet[i]
		if _, ok := ThreeLetter[c]; !ok {
			t.Errorf("ThreeLetter missing %c", c)
		}
		if _, ok := HeavyAtoms[c]; !ok {
			t.Errorf("HeavyAtoms missing %c", c)
		}
		if _, ok := Hydrophobicity[c]; !ok {
			t.Errorf("Hydrophobicity missing %c", c)
		}
		if _, ok := HelixPropensity[c]; !ok {
			t.Errorf("HelixPropensity missing %c", c)
		}
		if _, ok := SheetPropensity[c]; !ok {
			t.Errorf("SheetPropensity missing %c", c)
		}
	}
}

func TestBackgroundFreqSumsToOne(t *testing.T) {
	var sum float64
	for _, f := range BackgroundFreq {
		if f <= 0 {
			t.Fatal("background frequency must be positive")
		}
		sum += f
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("background frequencies sum to %v", sum)
	}
}

func TestValidate(t *testing.T) {
	good := Sequence{ID: "a", Residues: "ACDEFGHIKLMNPQRSTVWY"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	bad := Sequence{ID: "b", Residues: "ACDEFZ"}
	if err := bad.Validate(); err == nil {
		t.Error("invalid residue accepted")
	}
	empty := Sequence{ID: "c"}
	if err := empty.Validate(); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestIndices(t *testing.T) {
	s := Sequence{Residues: "AC-"}
	idx := s.Indices()
	if idx[0] != 0 || idx[1] != 1 || idx[2] != -1 {
		t.Errorf("Indices = %v", idx)
	}
}

func TestComposition(t *testing.T) {
	s := Sequence{Residues: "AACC"}
	c := s.Composition()
	if c[Index('A')] != 0.5 || c[Index('C')] != 0.5 {
		t.Errorf("composition = %v", c)
	}
	var sum float64
	for _, f := range c {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("composition sums to %v", sum)
	}
}

func TestTotalHeavyAtoms(t *testing.T) {
	s := Sequence{Residues: "GA"} // 4 + 5
	if got := s.TotalHeavyAtoms(); got != 9 {
		t.Errorf("heavy atoms = %d, want 9", got)
	}
	trp := Sequence{Residues: "W"}
	if got := trp.TotalHeavyAtoms(); got != 14 {
		t.Errorf("TRP heavy atoms = %d, want 14", got)
	}
}

func TestIdentity(t *testing.T) {
	got, err := Identity("AAAA", "AACA")
	if err != nil || got != 0.75 {
		t.Errorf("Identity = %v, %v", got, err)
	}
	if _, err := Identity("AA", "AAA"); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Identity("", ""); err == nil {
		t.Error("empty sequences accepted")
	}
}

func TestIsHypothetical(t *testing.T) {
	h := Sequence{Description: "Hypothetical protein DVU_0042"}
	if !h.IsHypothetical() {
		t.Error("hypothetical not detected")
	}
	n := Sequence{Description: "sulfate adenylyltransferase"}
	if n.IsHypothetical() {
		t.Error("annotated protein flagged hypothetical")
	}
}

func TestReadFASTABasic(t *testing.T) {
	in := ">p1 hypothetical protein\nACDE\nFGHI\n>p2\nklmn\n"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records", len(seqs))
	}
	if seqs[0].ID != "p1" || seqs[0].Description != "hypothetical protein" {
		t.Errorf("record 0 header = %q %q", seqs[0].ID, seqs[0].Description)
	}
	if seqs[0].Residues != "ACDEFGHI" {
		t.Errorf("record 0 seq = %q", seqs[0].Residues)
	}
	if seqs[1].Residues != "KLMN" {
		t.Errorf("record 1 seq = %q (case folding)", seqs[1].Residues)
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []string{
		"ACDE\n",           // data before header
		">\nACDE\n",        // empty header
		">p1\n>p2\nACDE",   // first record empty
		">p1\nAC\n>last\n", // trailing empty record
	}
	for _, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in)); err == nil {
			t.Errorf("malformed input accepted: %q", in)
		}
	}
}

func TestFASTARoundTrip(t *testing.T) {
	seqs := []Sequence{
		{ID: "a", Description: "first", Residues: strings.Repeat("ACDEFGHIKL", 13)},
		{ID: "b", Residues: "MNPQRSTVWY"},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seqs) {
		t.Fatalf("round trip count %d", len(got))
	}
	for i := range seqs {
		if got[i].ID != seqs[i].ID || got[i].Residues != seqs[i].Residues || got[i].Description != seqs[i].Description {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], seqs[i])
		}
	}
}

func TestFASTAWrapsAt60(t *testing.T) {
	s := []Sequence{{ID: "x", Residues: strings.Repeat("A", 125)}}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 60 + 60 + 5
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if len(lines[1]) != 60 || len(lines[3]) != 5 {
		t.Errorf("wrap widths: %d, %d", len(lines[1]), len(lines[3]))
	}
}

// Property: any sequence over the canonical alphabet round-trips through
// FASTA unchanged.
func TestQuickFASTARoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		var b strings.Builder
		for _, c := range raw {
			b.WriteByte(Alphabet[int(c)%NumAminoAcids])
		}
		res := b.String()
		if res == "" {
			res = "A"
		}
		in := []Sequence{{ID: "q", Residues: res}}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, in); err != nil {
			return false
		}
		out, err := ReadFASTA(&buf)
		return err == nil && len(out) == 1 && out[0].Residues == res
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
