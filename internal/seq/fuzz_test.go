package seq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA hardens the FASTA parser against arbitrary input and
// checks the parse→write→parse fixed point: whatever ReadFASTA accepts,
// WriteFASTA must emit in a form that parses back to the identical
// records (parsing normalizes case and whitespace, so one round trip
// reaches the canonical form).
func FuzzReadFASTA(f *testing.F) {
	f.Add(">id desc\nMKV\n")
	f.Add(">a\nmkv\nlip\n>b second record\nACDEFGHIKLMNPQRSTVWY\n")
	f.Add(">only-header\n")
	f.Add("no header\n")
	f.Add("")
	f.Add(">spaces in seq\nMK V\n\tL\n")
	f.Add(">60col\n" + strings.Repeat("M", 61) + "\n")
	f.Add(">x\n>y\nMK\n")
	f.Fuzz(func(t *testing.T, data string) {
		seqs, err := ReadFASTA(strings.NewReader(data))
		if err != nil {
			return
		}
		valid := true
		for i := range seqs {
			if seqs[i].Residues == "" {
				t.Fatalf("record %d accepted with empty residues", i)
			}
			if seqs[i].ID == "" {
				t.Fatalf("record %d accepted with empty ID", i)
			}
			if strings.ContainsAny(seqs[i].Residues, " \t\r\n") {
				t.Fatalf("record %d residues contain whitespace: %q", i, seqs[i].Residues)
			}
			if seqs[i].Validate() != nil {
				valid = false
			}
		}
		// The write→parse fixed point is guaranteed only for canonical
		// sequences: ReadFASTA tolerates junk residues (even '>') inside a
		// line, which column wrapping could re-emit at line start.
		if !valid {
			return
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, seqs); err != nil {
			t.Fatalf("WriteFASTA(parsed records): %v", err)
		}
		again, err := ReadFASTA(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing written FASTA: %v\n%s", err, buf.Bytes())
		}
		if len(again) != len(seqs) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(seqs))
		}
		for i := range seqs {
			if again[i].ID != seqs[i].ID || again[i].Residues != seqs[i].Residues {
				t.Fatalf("record %d changed across round trip:\n%+v\n%+v", i, again[i], seqs[i])
			}
		}
	})
}
