// Package cluster models the OLCF execution environment of the paper:
// the Summit supercomputer (IBM AC922 nodes, 2 POWER9 + 6 V100 each, plus
// high-memory nodes), the Andes commodity CPU cluster, an LSF-like batch
// queue with each machine's scheduling policy, jsrun-style resource sets,
// and a discrete-event simulation of dataflow task execution in virtual
// time. All the paper's scheduling-level results (Table 1 walltimes, Fig. 2
// worker timelines, node-hour budgets) are reproduced on this simulator.
package cluster

import "fmt"

// NodeType describes one hardware partition of a machine.
type NodeType struct {
	Name     string
	Count    int
	Cores    int
	MemGB    float64 // host memory
	GPUs     int
	GPUMemGB float64 // per-GPU memory
	// Speed is a relative execution-speed multiplier for task cost models
	// (1.0 = Summit V100 / paper-calibrated baseline).
	Speed float64
}

// Machine is a named collection of node types.
type Machine struct {
	Name  string
	Types []NodeType
}

// Summit returns the Summit machine model: ~4,600 AC922 nodes with
// 2 POWER9 CPUs (42 usable cores) and 6 NVIDIA V100 GPUs (16 GB HBM each),
// plus the high-memory partition (2 TB DDR4, 192 GB HBM2) the paper used
// for proteins too large for standard nodes.
func Summit() *Machine {
	return &Machine{
		Name: "summit",
		Types: []NodeType{
			{Name: "ac922", Count: 4554, Cores: 42, MemGB: 512, GPUs: 6, GPUMemGB: 16, Speed: 1.0},
			{Name: "ac922-highmem", Count: 54, Cores: 42, MemGB: 2048, GPUs: 6, GPUMemGB: 64, Speed: 1.0},
		},
	}
}

// Andes returns the Andes analysis-cluster model: 704 nodes with two
// 16-core AMD EPYC 7302 processors and 256 GB of memory, no GPUs.
func Andes() *Machine {
	return &Machine{
		Name: "andes",
		Types: []NodeType{
			{Name: "epyc", Count: 704, Cores: 32, MemGB: 256, GPUs: 0, GPUMemGB: 0, Speed: 0.9},
		},
	}
}

// TotalNodes returns the machine's node count.
func (m *Machine) TotalNodes() int {
	n := 0
	for _, t := range m.Types {
		n += t.Count
	}
	return n
}

// TypeByName returns a node type by name.
func (m *Machine) TypeByName(name string) (NodeType, error) {
	for _, t := range m.Types {
		if t.Name == name {
			return t, nil
		}
	}
	return NodeType{}, fmt.Errorf("cluster: machine %s has no node type %q", m.Name, name)
}

// ResourceSet is a jsrun-style resource request within a node: the paper's
// deployment used three jsrun statements (scheduler: 2 cores; workers: one
// core + one GPU each; client: 1 core).
type ResourceSet struct {
	Name  string
	Cores int
	GPUs  int
	Tasks int // number of identical instances
}

// LayoutError explains why a set of resource sets does not fit.
type LayoutError struct{ Reason string }

func (e *LayoutError) Error() string { return "cluster: layout does not fit: " + e.Reason }

// FitsNode verifies that the resource sets fit on a single node of type t.
func FitsNode(t NodeType, sets []ResourceSet) error {
	cores, gpus := 0, 0
	for _, rs := range sets {
		if rs.Tasks <= 0 {
			return &LayoutError{Reason: fmt.Sprintf("resource set %q has no tasks", rs.Name)}
		}
		cores += rs.Cores * rs.Tasks
		gpus += rs.GPUs * rs.Tasks
	}
	if cores > t.Cores {
		return &LayoutError{Reason: fmt.Sprintf("%d cores requested, %d available", cores, t.Cores)}
	}
	if gpus > t.GPUs {
		return &LayoutError{Reason: fmt.Sprintf("%d GPUs requested, %d available", gpus, t.GPUs)}
	}
	return nil
}

// PaperInferenceLayout returns the per-node layout of the Summit inference
// workflow: 6 Dask workers (1 core + 1 GPU each). The scheduler (2 cores)
// and client (1 core) run once per job, not per node.
func PaperInferenceLayout() []ResourceSet {
	return []ResourceSet{{Name: "dask-worker", Cores: 1, GPUs: 1, Tasks: 6}}
}

// WorkersFor returns the number of dataflow workers a job gets on a given
// node type and node count with the paper's one-worker-per-GPU layout (or
// one per node on CPU machines).
func WorkersFor(t NodeType, nodes int) int {
	if t.GPUs == 0 {
		return nodes
	}
	return nodes * t.GPUs
}
