package cluster

import (
	"container/heap"
	"fmt"
	"sort"
)

// SimTask is one task for the dataflow simulator: an identifier, the
// scheduling weight (sequence length in the paper's policy), and the task's
// execution time in seconds of virtual time.
type SimTask struct {
	ID       string
	Weight   float64
	Duration float64
}

// Interval is one task execution on one worker, the unit Fig. 2 plots.
type Interval struct {
	TaskID string
	Worker int
	Start  float64
	End    float64
}

// SimResult is the outcome of a simulated dataflow run.
type SimResult struct {
	Intervals []Interval
	// Makespan is the virtual wall-clock time until the last task ends.
	Makespan float64
	// WorkerBusy[w] is the total busy time of worker w.
	WorkerBusy []float64
	// WorkerLastEnd[w] is when worker w finished its final task.
	WorkerLastEnd []float64
	// TotalWork is the summed task durations.
	TotalWork float64
	// Overhead is makespan·workers − TotalWork (idle + dispatch cost).
	Overhead float64
}

// Utilization is TotalWork / (Makespan × workers).
func (r *SimResult) Utilization() float64 {
	if r.Makespan <= 0 || len(r.WorkerBusy) == 0 {
		return 0
	}
	return r.TotalWork / (r.Makespan * float64(len(r.WorkerBusy)))
}

// FinishSpread is the gap between the first and last worker's final task
// completion — the paper's load-balance observation is that with
// length-sorted submission all 1200 workers finish "within minutes of one
// another".
func (r *SimResult) FinishSpread() float64 {
	if len(r.WorkerLastEnd) == 0 {
		return 0
	}
	min, max := r.WorkerLastEnd[0], r.WorkerLastEnd[0]
	for _, e := range r.WorkerLastEnd[1:] {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return max - min
}

// workerHeap orders workers by next-free time (ties by index for
// determinism).
type workerItem struct {
	index    int
	freeTime float64
}

type workerHeap []workerItem

func (h workerHeap) Len() int { return len(h) }
func (h workerHeap) Less(i, j int) bool {
	if h[i].freeTime != h[j].freeTime {
		return h[i].freeTime < h[j].freeTime
	}
	return h[i].index < h[j].index
}
func (h workerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)   { *h = append(*h, x.(workerItem)) }
func (h *workerHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// DataflowOptions configure the simulation.
type DataflowOptions struct {
	Workers int
	// DispatchOverhead is the per-task scheduler overhead in seconds (the
	// white gaps between blue blocks in Fig. 2).
	DispatchOverhead float64
	// StartupDelay is paid once before any task starts (container launch,
	// model-weight load, worker registration).
	StartupDelay float64
}

// SimulateDataflow runs the dataflow execution model in virtual time:
// tasks are taken from the queue in submission order and each is assigned
// to the earliest-free worker, exactly the policy of the scheduler in
// package flow. Task order is the caller's submission order — sort first
// to apply the paper's longest-first policy.
func SimulateDataflow(tasks []SimTask, opt DataflowOptions) (*SimResult, error) {
	if opt.Workers <= 0 {
		return nil, fmt.Errorf("cluster: dataflow needs at least one worker")
	}
	if opt.DispatchOverhead < 0 || opt.StartupDelay < 0 {
		return nil, fmt.Errorf("cluster: negative overhead")
	}
	res := &SimResult{
		Intervals:     make([]Interval, 0, len(tasks)),
		WorkerBusy:    make([]float64, opt.Workers),
		WorkerLastEnd: make([]float64, opt.Workers),
	}
	h := make(workerHeap, opt.Workers)
	for i := range h {
		h[i] = workerItem{index: i, freeTime: opt.StartupDelay}
	}
	heap.Init(&h)

	for _, t := range tasks {
		if t.Duration < 0 {
			return nil, fmt.Errorf("cluster: task %s has negative duration", t.ID)
		}
		w := heap.Pop(&h).(workerItem)
		start := w.freeTime + opt.DispatchOverhead
		end := start + t.Duration
		res.Intervals = append(res.Intervals, Interval{
			TaskID: t.ID, Worker: w.index, Start: start, End: end,
		})
		res.WorkerBusy[w.index] += t.Duration
		res.WorkerLastEnd[w.index] = end
		res.TotalWork += t.Duration
		if end > res.Makespan {
			res.Makespan = end
		}
		w.freeTime = end
		heap.Push(&h, w)
	}
	res.Overhead = res.Makespan*float64(opt.Workers) - res.TotalWork
	return res, nil
}

// OrderPolicy is a task submission-order policy, the ablation axis of the
// paper's greedy load-balancing discussion (Section 3.3).
type OrderPolicy int

const (
	// LongestFirst sorts descending by weight — the paper's choice.
	LongestFirst OrderPolicy = iota
	// ShortestFirst sorts ascending by weight.
	ShortestFirst
	// SubmissionOrder keeps the caller's order (the "random order" baseline
	// when the caller shuffles).
	SubmissionOrder
)

func (p OrderPolicy) String() string {
	switch p {
	case LongestFirst:
		return "longest-first"
	case ShortestFirst:
		return "shortest-first"
	default:
		return "submission-order"
	}
}

// ApplyOrder sorts tasks in place per the policy (stable, ties by ID).
func ApplyOrder(tasks []SimTask, p OrderPolicy) {
	switch p {
	case LongestFirst:
		sort.SliceStable(tasks, func(i, j int) bool {
			if tasks[i].Weight != tasks[j].Weight {
				return tasks[i].Weight > tasks[j].Weight
			}
			return tasks[i].ID < tasks[j].ID
		})
	case ShortestFirst:
		sort.SliceStable(tasks, func(i, j int) bool {
			if tasks[i].Weight != tasks[j].Weight {
				return tasks[i].Weight < tasks[j].Weight
			}
			return tasks[i].ID < tasks[j].ID
		})
	}
}

// WorkerTimeline returns the intervals of one worker in start order,
// the row data of Fig. 2.
func (r *SimResult) WorkerTimeline(worker int) []Interval {
	var out []Interval
	for _, iv := range r.Intervals {
		if iv.Worker == worker {
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
