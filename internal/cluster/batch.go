package cluster

import (
	"fmt"
	"sort"
)

// Job is one batch submission (an LSF bsub).
type Job struct {
	Name     string
	Nodes    int
	Walltime float64 // requested/actual run time, seconds
	Submit   float64 // submission time, seconds
}

// JobResult records when a job ran.
type JobResult struct {
	Job   Job
	Start float64
	End   float64
}

// QueueWait returns how long the job waited in the queue.
func (r JobResult) QueueWait() float64 { return r.Start - r.Job.Submit }

// NodeHours returns the node-hours the job consumed, the currency of the
// paper's cost accounting ("under 4,000 total Summit node hours").
func (r JobResult) NodeHours() float64 { return float64(r.Job.Nodes) * (r.End - r.Start) / 3600 }

// QueuePolicy is a machine's batch scheduling policy. The paper notes that
// Summit's policy favors large short jobs while Andes favors small long
// jobs, which is why feature generation had higher wall time despite fewer
// node-hours.
type QueuePolicy int

const (
	// FavorLarge boosts priority with job size (Summit-like).
	FavorLarge QueuePolicy = iota
	// FavorSmall boosts priority of small jobs (Andes-like).
	FavorSmall
	// FCFS is plain first-come first-served.
	FCFS
)

// BatchQueue simulates a space-shared batch system with a fixed node pool.
type BatchQueue struct {
	Nodes  int
	Policy QueuePolicy
}

// NewBatchQueue returns a queue over a node pool.
func NewBatchQueue(nodes int, policy QueuePolicy) *BatchQueue {
	return &BatchQueue{Nodes: nodes, Policy: policy}
}

// Run schedules jobs and returns their results sorted by start time. The
// model is conservative space sharing: a job starts at the earliest time at
// which enough nodes are simultaneously free, considering jobs in priority
// order. It is deterministic.
func (q *BatchQueue) Run(jobs []Job) ([]JobResult, error) {
	for _, j := range jobs {
		if j.Nodes <= 0 {
			return nil, fmt.Errorf("cluster: job %q requests %d nodes", j.Name, j.Nodes)
		}
		if j.Nodes > q.Nodes {
			return nil, fmt.Errorf("cluster: job %q requests %d nodes, machine has %d", j.Name, j.Nodes, q.Nodes)
		}
		if j.Walltime <= 0 {
			return nil, fmt.Errorf("cluster: job %q has non-positive walltime", j.Name)
		}
	}

	ordered := make([]Job, len(jobs))
	copy(ordered, jobs)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		switch q.Policy {
		case FavorLarge:
			if a.Nodes != b.Nodes {
				return a.Nodes > b.Nodes
			}
		case FavorSmall:
			if a.Nodes != b.Nodes {
				return a.Nodes < b.Nodes
			}
		}
		return a.Name < b.Name
	})

	// Running set: (end time, nodes). A job starts when enough capacity is
	// free at or after its submit time.
	type running struct {
		start, end float64
		nodes      int
	}
	var active []running
	var results []JobResult

	// freeDuring reports the minimum free node count over [t, t+dur): the
	// job must fit for its whole duration (conservative backfill).
	freeDuring := func(t, dur float64) int {
		// Evaluate at t and at every start/end boundary inside the window.
		minFree := q.Nodes
		check := func(at float64) {
			used := 0
			for _, r := range active {
				if r.start <= at && at < r.end {
					used += r.nodes
				}
			}
			if free := q.Nodes - used; free < minFree {
				minFree = free
			}
		}
		check(t)
		for _, r := range active {
			if r.start > t && r.start < t+dur {
				check(r.start)
			}
		}
		return minFree
	}

	for _, j := range ordered {
		// Candidate start times: submit time and every boundary after it.
		t := j.Submit
		for {
			if freeDuring(t, j.Walltime) >= j.Nodes {
				break
			}
			// Advance to the next boundary after t.
			next := -1.0
			for _, r := range active {
				for _, b := range [2]float64{r.start, r.end} {
					if b > t && (next < 0 || b < next) {
						next = b
					}
				}
			}
			if next < 0 {
				return nil, fmt.Errorf("cluster: scheduler stuck for job %q", j.Name)
			}
			t = next
		}
		active = append(active, running{start: t, end: t + j.Walltime, nodes: j.Nodes})
		results = append(results, JobResult{Job: j, Start: t, End: t + j.Walltime})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Start != results[j].Start {
			return results[i].Start < results[j].Start
		}
		return results[i].Job.Name < results[j].Job.Name
	})
	return results, nil
}

// Ledger accumulates node-hour spending per machine, mirroring the paper's
// cost reporting.
type Ledger struct {
	entries map[string]float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{entries: make(map[string]float64)} }

// Charge adds node-hours to a machine's account.
func (l *Ledger) Charge(machine string, nodeHours float64) {
	l.entries[machine] += nodeHours
}

// ChargeJob charges a completed job.
func (l *Ledger) ChargeJob(machine string, r JobResult) {
	l.Charge(machine, r.NodeHours())
}

// Total returns the node-hours charged to a machine.
func (l *Ledger) Total(machine string) float64 { return l.entries[machine] }

// Machines returns the charged machine names in sorted order.
func (l *Ledger) Machines() []string {
	out := make([]string, 0, len(l.entries))
	for m := range l.entries {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
