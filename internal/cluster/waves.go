package cluster

import "repro/internal/exec"

// Wave is one independent dataflow simulation: a task list (already in
// submission order) plus the cluster options to run it under. Multi-wave
// campaigns — ordering ablations, per-policy contrasts, workers-per-node
// sweeps — build a Wave per variant.
type Wave struct {
	Tasks []SimTask
	Opt   DataflowOptions
}

// SimulateWaves runs independent waves through the executor and returns
// their results indexed by wave. Each wave's heap inner loop is still
// serial (it is a sequential discrete-event simulation), but independent
// waves now run concurrently; results are collected by submission index,
// so the output is byte-identical to looping over SimulateDataflow.
func SimulateWaves(ex exec.Executor, waves []Wave) ([]*SimResult, error) {
	return exec.Map(ex, waves, func(_ int, w Wave) (*SimResult, error) {
		return SimulateDataflow(w.Tasks, w.Opt)
	})
}
