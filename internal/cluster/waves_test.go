package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/exec"
)

func wavesFixture() []Wave {
	waves := make([]Wave, 6)
	for w := range waves {
		tasks := make([]SimTask, 200)
		for i := range tasks {
			tasks[i] = SimTask{
				ID:       fmt.Sprintf("w%d-t%03d", w, i),
				Weight:   float64((i * 37) % 91),
				Duration: float64(1 + (i*13+w)%50),
			}
		}
		ApplyOrder(tasks, LongestFirst)
		waves[w] = Wave{Tasks: tasks, Opt: DataflowOptions{
			Workers: 8 + w, DispatchOverhead: 1.5, StartupDelay: 30,
		}}
	}
	return waves
}

// TestSimulateWavesMatchesSequential pins the multi-wave fan-out to the
// serial loop over SimulateDataflow, on both executor back ends.
func TestSimulateWavesMatchesSequential(t *testing.T) {
	waves := wavesFixture()
	want := make([]*SimResult, len(waves))
	for i, w := range waves {
		r, err := SimulateDataflow(w.Tasks, w.Opt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	fl, err := exec.NewFlow(3)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for _, ex := range []exec.Executor{exec.NewPool(4), fl} {
		got, err := SimulateWaves(ex, waves)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: wave results differ from sequential reference", ex.Name())
		}
	}
}

func TestSimulateWavesPropagatesError(t *testing.T) {
	waves := wavesFixture()
	waves[2].Opt.Workers = 0 // invalid: lowest failing index must surface
	waves[4].Opt.Workers = -1
	_, err := SimulateWaves(exec.NewPool(4), waves)
	if err == nil {
		t.Fatal("invalid wave must fail")
	}
}
