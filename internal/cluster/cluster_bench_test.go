package cluster

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// BenchmarkSimulateDataflow measures the virtual-time dataflow simulator on
// a campaign-scale task set (25k tasks on 1200 workers, the paper's largest
// wave).
func BenchmarkSimulateDataflow(b *testing.B) {
	r := rng.New(0xdf01)
	tasks := make([]SimTask, 25000)
	for i := range tasks {
		l := 30 + r.Intn(1200)
		tasks[i] = SimTask{
			ID:       fmt.Sprintf("t%05d", i),
			Weight:   float64(l),
			Duration: 10 + 0.5*float64(l),
		}
	}
	ApplyOrder(tasks, LongestFirst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDataflow(tasks, DataflowOptions{
			Workers: 1200, DispatchOverhead: 1.5, StartupDelay: 300,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
