package cluster

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMachineInventories(t *testing.T) {
	s := Summit()
	if got := s.TotalNodes(); got != 4608 {
		t.Errorf("Summit nodes = %d, want 4608 (~4,600 per the paper)", got)
	}
	std, err := s.TypeByName("ac922")
	if err != nil {
		t.Fatal(err)
	}
	if std.GPUs != 6 || std.GPUMemGB != 16 {
		t.Errorf("Summit node = %+v, want 6 V100s with 16 GB", std)
	}
	hm, err := s.TypeByName("ac922-highmem")
	if err != nil {
		t.Fatal(err)
	}
	if hm.MemGB != 2048 {
		t.Errorf("high-mem node memory = %v, want 2 TB", hm.MemGB)
	}
	a := Andes()
	if a.TotalNodes() != 704 {
		t.Errorf("Andes nodes = %d, want 704", a.TotalNodes())
	}
	ae, err := a.TypeByName("epyc")
	if err != nil {
		t.Fatal(err)
	}
	if ae.Cores != 32 || ae.GPUs != 0 {
		t.Errorf("Andes node = %+v, want 32 cores, no GPUs", ae)
	}
	if _, err := s.TypeByName("nope"); err == nil {
		t.Error("unknown node type accepted")
	}
}

func TestPaperLayoutFits(t *testing.T) {
	std, _ := Summit().TypeByName("ac922")
	if err := FitsNode(std, PaperInferenceLayout()); err != nil {
		t.Errorf("paper layout does not fit a Summit node: %v", err)
	}
	// Oversubscription must be rejected.
	if err := FitsNode(std, []ResourceSet{{Name: "w", Cores: 1, GPUs: 1, Tasks: 7}}); err == nil {
		t.Error("7 GPU workers accepted on a 6-GPU node")
	}
	if err := FitsNode(std, []ResourceSet{{Name: "w", Cores: 43, GPUs: 0, Tasks: 1}}); err == nil {
		t.Error("43 cores accepted on a 42-core node")
	}
	if err := FitsNode(std, []ResourceSet{{Name: "w", Cores: 1, GPUs: 0, Tasks: 0}}); err == nil {
		t.Error("zero-task resource set accepted")
	}
}

func TestWorkersFor(t *testing.T) {
	std, _ := Summit().TypeByName("ac922")
	if got := WorkersFor(std, 32); got != 192 {
		t.Errorf("32 Summit nodes = %d workers, want 192", got)
	}
	if got := WorkersFor(std, 200); got != 1200 {
		t.Errorf("200 Summit nodes = %d workers, want 1200 (Fig. 2)", got)
	}
	andes, _ := Andes().TypeByName("epyc")
	if got := WorkersFor(andes, 10); got != 10 {
		t.Errorf("CPU machine workers = %d, want one per node", got)
	}
}

func makeSimTasks(r *rng.Source, n int) []SimTask {
	tasks := make([]SimTask, n)
	for i := range tasks {
		l := r.Gamma(2.0, 150)
		tasks[i] = SimTask{
			ID:       fmt.Sprintf("t%04d", i),
			Weight:   l,
			Duration: 5 + l*0.8,
		}
	}
	return tasks
}

func TestSimulateDataflowConservation(t *testing.T) {
	r := rng.New(1)
	tasks := makeSimTasks(r, 500)
	res, err := SimulateDataflow(tasks, DataflowOptions{Workers: 16, DispatchOverhead: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 500 {
		t.Fatalf("intervals = %d", len(res.Intervals))
	}
	var want float64
	for _, task := range tasks {
		want += task.Duration
	}
	if math.Abs(res.TotalWork-want) > 1e-9 {
		t.Errorf("total work %v, want %v", res.TotalWork, want)
	}
	// No worker may run two tasks at once.
	for w := 0; w < 16; w++ {
		tl := res.WorkerTimeline(w)
		for i := 1; i < len(tl); i++ {
			if tl[i].Start < tl[i-1].End-1e-9 {
				t.Fatalf("worker %d overlaps: %+v then %+v", w, tl[i-1], tl[i])
			}
		}
	}
	if res.Utilization() <= 0 || res.Utilization() > 1 {
		t.Errorf("utilization = %v", res.Utilization())
	}
}

func TestSimulateDataflowValidation(t *testing.T) {
	if _, err := SimulateDataflow(nil, DataflowOptions{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := SimulateDataflow([]SimTask{{ID: "x", Duration: -1}}, DataflowOptions{Workers: 1}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := SimulateDataflow(nil, DataflowOptions{Workers: 1, DispatchOverhead: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestLongestFirstBeatsRandomTail(t *testing.T) {
	// The paper's central load-balance claim: sorting descending by length
	// shrinks the finish-time spread versus random order.
	r := rng.New(7)
	base := makeSimTasks(r, 2000)

	randOrder := make([]SimTask, len(base))
	copy(randOrder, base)
	r.Shuffle(len(randOrder), func(i, j int) { randOrder[i], randOrder[j] = randOrder[j], randOrder[i] })
	sorted := make([]SimTask, len(base))
	copy(sorted, base)
	ApplyOrder(sorted, LongestFirst)

	opt := DataflowOptions{Workers: 96, DispatchOverhead: 0.2}
	resRand, err := SimulateDataflow(randOrder, opt)
	if err != nil {
		t.Fatal(err)
	}
	resSorted, err := SimulateDataflow(sorted, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resSorted.Makespan > resRand.Makespan {
		t.Errorf("longest-first makespan %v worse than random %v", resSorted.Makespan, resRand.Makespan)
	}
	if resSorted.FinishSpread() >= resRand.FinishSpread() {
		t.Errorf("longest-first spread %v not tighter than random %v",
			resSorted.FinishSpread(), resRand.FinishSpread())
	}
	// With sorting, the spread must be small relative to the makespan
	// ("all workers finished within minutes of one another").
	if resSorted.FinishSpread() > 0.1*resSorted.Makespan {
		t.Errorf("sorted spread %v vs makespan %v; load balance broken",
			resSorted.FinishSpread(), resSorted.Makespan)
	}
	if resSorted.Utilization() < 0.9 {
		t.Errorf("sorted utilization = %v, want ≥0.9", resSorted.Utilization())
	}
}

func TestApplyOrderPolicies(t *testing.T) {
	tasks := []SimTask{{ID: "a", Weight: 2}, {ID: "b", Weight: 9}, {ID: "c", Weight: 5}}
	lf := append([]SimTask(nil), tasks...)
	ApplyOrder(lf, LongestFirst)
	if lf[0].ID != "b" || lf[2].ID != "a" {
		t.Errorf("longest-first order: %v", lf)
	}
	sf := append([]SimTask(nil), tasks...)
	ApplyOrder(sf, ShortestFirst)
	if sf[0].ID != "a" || sf[2].ID != "b" {
		t.Errorf("shortest-first order: %v", sf)
	}
	so := append([]SimTask(nil), tasks...)
	ApplyOrder(so, SubmissionOrder)
	for i := range tasks {
		if so[i].ID != tasks[i].ID {
			t.Error("submission order must not reorder")
		}
	}
}

func TestStartupDelayShiftsEverything(t *testing.T) {
	tasks := []SimTask{{ID: "a", Duration: 10}}
	res, err := SimulateDataflow(tasks, DataflowOptions{Workers: 2, StartupDelay: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals[0].Start < 100 {
		t.Errorf("task started at %v before startup finished", res.Intervals[0].Start)
	}
}

func TestBatchQueueBasic(t *testing.T) {
	q := NewBatchQueue(100, FCFS)
	jobs := []Job{
		{Name: "a", Nodes: 60, Walltime: 100, Submit: 0},
		{Name: "b", Nodes: 60, Walltime: 100, Submit: 0},
		{Name: "c", Nodes: 30, Walltime: 50, Submit: 0},
	}
	res, err := q.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]JobResult{}
	for _, r := range res {
		byName[r.Job.Name] = r
	}
	// a and c fit together (90 nodes); b must wait for a.
	if byName["a"].Start != 0 {
		t.Errorf("a start = %v", byName["a"].Start)
	}
	if byName["c"].Start != 0 {
		t.Errorf("c start = %v (should backfill alongside a)", byName["c"].Start)
	}
	if byName["b"].Start != 100 {
		t.Errorf("b start = %v, want 100", byName["b"].Start)
	}
	if byName["b"].QueueWait() != 100 {
		t.Errorf("b queue wait = %v", byName["b"].QueueWait())
	}
}

func TestBatchQueueValidation(t *testing.T) {
	q := NewBatchQueue(10, FCFS)
	if _, err := q.Run([]Job{{Name: "x", Nodes: 11, Walltime: 1}}); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := q.Run([]Job{{Name: "x", Nodes: 0, Walltime: 1}}); err == nil {
		t.Error("zero-node job accepted")
	}
	if _, err := q.Run([]Job{{Name: "x", Nodes: 1, Walltime: 0}}); err == nil {
		t.Error("zero-walltime job accepted")
	}
}

func TestQueuePolicyTieBreaks(t *testing.T) {
	// Same submit time, capacity for only one at a time: FavorLarge runs
	// the big job first, FavorSmall the small one.
	jobs := []Job{
		{Name: "small", Nodes: 2, Walltime: 10, Submit: 0},
		{Name: "large", Nodes: 9, Walltime: 10, Submit: 0},
	}
	resL, err := NewBatchQueue(10, FavorLarge).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if resL[0].Job.Name != "large" {
		t.Errorf("FavorLarge ran %s first", resL[0].Job.Name)
	}
	resS, err := NewBatchQueue(10, FavorSmall).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if resS[0].Job.Name != "small" {
		t.Errorf("FavorSmall ran %s first", resS[0].Job.Name)
	}
}

func TestNodeHoursAndLedger(t *testing.T) {
	r := JobResult{Job: Job{Name: "j", Nodes: 32, Walltime: 3600}, Start: 0, End: 3600}
	if got := r.NodeHours(); math.Abs(got-32) > 1e-9 {
		t.Errorf("node-hours = %v, want 32", got)
	}
	l := NewLedger()
	l.ChargeJob("summit", r)
	l.Charge("summit", 8)
	l.Charge("andes", 240)
	if got := l.Total("summit"); math.Abs(got-40) > 1e-9 {
		t.Errorf("summit total = %v", got)
	}
	if got := l.Total("andes"); got != 240 {
		t.Errorf("andes total = %v", got)
	}
	ms := l.Machines()
	if len(ms) != 2 || ms[0] != "andes" || ms[1] != "summit" {
		t.Errorf("machines = %v", ms)
	}
	if l.Total("frontier") != 0 {
		t.Error("uncharged machine must read 0")
	}
}

// Property: makespan is never below total work / workers (work bound) and
// never below the longest single task.
func TestQuickMakespanLowerBounds(t *testing.T) {
	f := func(seed uint64, wRaw uint8) bool {
		workers := int(wRaw%31) + 1
		r := rng.New(seed)
		tasks := makeSimTasks(r, 200)
		res, err := SimulateDataflow(tasks, DataflowOptions{Workers: workers})
		if err != nil {
			return false
		}
		var total, longest float64
		for _, task := range tasks {
			total += task.Duration
			if task.Duration > longest {
				longest = task.Duration
			}
		}
		lb := total / float64(workers)
		return res.Makespan >= lb-1e-9 && res.Makespan >= longest-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimulateDataflow10k(b *testing.B) {
	r := rng.New(1)
	tasks := makeSimTasks(r, 10000)
	ApplyOrder(tasks, LongestFirst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDataflow(tasks, DataflowOptions{Workers: 1200, DispatchOverhead: 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}
