package flow

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// DefaultResultTimeout is the per-result progress deadline a new Client
// starts with: Map fails if no message arrives for this long. It exists so
// a wedged scheduler fails fast instead of hanging a CI -race job until
// the suite times out; it is generous enough that any live cluster —
// including one whose workers are still warming up — keeps renewing it
// with results.
const DefaultResultTimeout = 2 * time.Minute

// dialTimeout bounds connection establishment for clients and workers.
const dialTimeout = 10 * time.Second

// resultWriteTimeout bounds a worker's result send to the scheduler.
const resultWriteTimeout = 30 * time.Second

// Client is the driving script of the workflow (Section 3.3 step 3): it
// submits the full batch of tasks with a single Map call and streams back
// completion records, optionally appending per-task statistics to a CSV.
type Client struct {
	conn  net.Conn
	codec Codec

	// ResultTimeout is the progress deadline of Map: the longest Map waits
	// between consecutive scheduler messages before failing. Zero disables
	// the deadline. Set it before calling Map.
	ResultTimeout time.Duration

	// Campaign, when set before Map, names the multi-tenant namespace the
	// submission belongs to: it travels on the submit frame, the scheduler
	// stamps it onto every task that does not carry its own, and the
	// fair-share policy and admission quotas key on it. Empty (the
	// default) keeps the submit frame byte-identical to earlier releases.
	Campaign string

	mu     sync.Mutex
	closed bool
}

// DialClient connects a submitting client to the scheduler: the one dial
// path, covering plain addresses, scheduler files, retry budgets, and
// wire-codec selection. The returned client must be closed.
func DialClient(opts DialOptions) (*Client, error) {
	conn, err := Dial(opts)
	if err != nil {
		return nil, fmt.Errorf("flow: client dial: %w", err)
	}
	codec, err := dialCodec(conn, opts.Codec)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{conn: conn, codec: codec, ResultTimeout: DefaultResultTimeout}, nil
}

// ConnectClient dials the scheduler at addr (bounded by dialTimeout, JSON
// wire). The returned client must be closed.
func ConnectClient(addr string) (*Client, error) {
	return DialClient(DialOptions{Addr: addr})
}

// ConnectClientFile dials via a scheduler file.
func ConnectClientFile(path string) (*Client, error) {
	return DialClient(DialOptions{SchedulerFile: path})
}

// Map submits all tasks in one batch and blocks until every result has
// arrived, returning results in completion order (the dataflow order, not
// submission order). If observe is non-nil it is called once per result as
// completion records stream in — the hook the per-task processing-times
// telemetry (exec.TaskStats) is recorded through. observe runs on Map's
// goroutine and must not block.
func (c *Client) Map(tasks []Task, observe func(*Result)) ([]Result, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	ids := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if t.ID == "" {
			return nil, fmt.Errorf("flow: task with empty ID")
		}
		if ids[t.ID] {
			return nil, fmt.Errorf("flow: duplicate task ID %q", t.ID)
		}
		ids[t.ID] = true
	}

	if c.ResultTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.ResultTimeout))
	}
	err := c.codec.Encode(&message{Type: msgSubmit, Tasks: tasks, Campaign: c.Campaign})
	if err == nil {
		err = c.codec.Flush()
	}
	if err != nil {
		return nil, fmt.Errorf("flow: submit: %w", err)
	}
	_ = c.conn.SetWriteDeadline(time.Time{})

	results := make([]Result, 0, len(tasks))
	// settled dedupes by TaskID: a duplicate or stray result frame (a
	// retried task whose first worker's ack raced its death, a buggy peer)
	// must not count toward completion — without this, one duplicate lets
	// Map return "complete" while another task's result never arrived. The
	// first record per task wins and is the one observed and returned.
	settled := make(map[string]bool, len(tasks))
	accepted := false
	for len(settled) < len(tasks) {
		// Renew the progress deadline before every read: any message from
		// the scheduler counts as progress, but a wedged scheduler (or a
		// dead cluster) surfaces as a timeout error instead of a hang.
		if c.ResultTimeout > 0 {
			_ = c.conn.SetReadDeadline(time.Now().Add(c.ResultTimeout))
		}
		var m message
		if err := c.codec.Decode(&m); err != nil {
			return results, fmt.Errorf("flow: awaiting results (%d/%d done): %w",
				len(settled), len(tasks), err)
		}
		switch m.Type {
		case msgAccepted:
			accepted = true
		case msgResult:
			// The scheduler forwards one singular frame per result today;
			// accepting the batched form too keeps the client compatible
			// with a future scheduler that coalesces harder.
			for _, r := range resultsOf(&m) {
				if !ids[r.TaskID] || settled[r.TaskID] {
					continue
				}
				settled[r.TaskID] = true
				results = append(results, r)
				if observe != nil {
					observe(&results[len(results)-1])
				}
			}
		}
	}
	_ = accepted
	_ = c.conn.SetReadDeadline(time.Time{})
	return results, nil
}

// resultsOf normalizes a result frame: the singular field and the batched
// field carry the same records, and a frame may use either.
func resultsOf(m *message) []Result {
	if m.Result != nil {
		if len(m.Results) == 0 {
			return []Result{*m.Result}
		}
		return append([]Result{*m.Result}, m.Results...)
	}
	return m.Results
}

// Close disconnects the client.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.conn.Close()
}

// SortByWeightDescending orders tasks heaviest-first — the paper's greedy
// load-balance policy (targets sorted by descending sequence length so the
// long tasks start early and short tasks fill the tail). Ties break by ID
// for determinism.
func SortByWeightDescending(tasks []Task) {
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].Weight != tasks[j].Weight {
			return tasks[i].Weight > tasks[j].Weight
		}
		return tasks[i].ID < tasks[j].ID
	})
}
