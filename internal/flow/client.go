package flow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"
)

// DefaultResultTimeout is the per-result progress deadline a new Client
// starts with: Map fails if no message arrives for this long. It exists so
// a wedged scheduler fails fast instead of hanging a CI -race job until
// the suite times out; it is generous enough that any live cluster —
// including one whose workers are still warming up — keeps renewing it
// with results.
const DefaultResultTimeout = 2 * time.Minute

// dialTimeout bounds connection establishment for clients and workers.
const dialTimeout = 10 * time.Second

// resultWriteTimeout bounds a worker's result send to the scheduler.
const resultWriteTimeout = 30 * time.Second

// Client is the driving script of the workflow (Section 3.3 step 3): it
// submits the full batch of tasks with a single Map call and streams back
// completion records, optionally appending per-task statistics to a CSV.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	// ResultTimeout is the progress deadline of Map: the longest Map waits
	// between consecutive scheduler messages before failing. Zero disables
	// the deadline. Set it before calling Map.
	ResultTimeout time.Duration

	mu     sync.Mutex
	closed bool
}

// ConnectClient dials the scheduler (bounded by dialTimeout). The returned
// client must be closed.
func ConnectClient(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("flow: client dial: %w", err)
	}
	return &Client{
		conn:          conn,
		enc:           json.NewEncoder(conn),
		dec:           json.NewDecoder(bufio.NewReader(conn)),
		ResultTimeout: DefaultResultTimeout,
	}, nil
}

// ConnectClientFile dials via a scheduler file.
func ConnectClientFile(path string) (*Client, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flow: reading scheduler file: %w", err)
	}
	sf, err := ParseSchedulerFile(data)
	if err != nil {
		return nil, err
	}
	return ConnectClient(sf.Address)
}

// Map submits all tasks in one batch and blocks until every result has
// arrived, returning results in completion order (the dataflow order, not
// submission order). If observe is non-nil it is called once per result as
// completion records stream in — the hook the per-task processing-times
// telemetry (exec.TaskStats) is recorded through. observe runs on Map's
// goroutine and must not block.
func (c *Client) Map(tasks []Task, observe func(*Result)) ([]Result, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	ids := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if t.ID == "" {
			return nil, fmt.Errorf("flow: task with empty ID")
		}
		if ids[t.ID] {
			return nil, fmt.Errorf("flow: duplicate task ID %q", t.ID)
		}
		ids[t.ID] = true
	}

	if c.ResultTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.ResultTimeout))
	}
	if err := c.enc.Encode(message{Type: msgSubmit, Tasks: tasks}); err != nil {
		return nil, fmt.Errorf("flow: submit: %w", err)
	}
	_ = c.conn.SetWriteDeadline(time.Time{})

	results := make([]Result, 0, len(tasks))
	accepted := false
	for len(results) < len(tasks) {
		// Renew the progress deadline before every read: any message from
		// the scheduler counts as progress, but a wedged scheduler (or a
		// dead cluster) surfaces as a timeout error instead of a hang.
		if c.ResultTimeout > 0 {
			_ = c.conn.SetReadDeadline(time.Now().Add(c.ResultTimeout))
		}
		var m message
		if err := c.dec.Decode(&m); err != nil {
			return results, fmt.Errorf("flow: awaiting results (%d/%d done): %w",
				len(results), len(tasks), err)
		}
		switch m.Type {
		case msgAccepted:
			accepted = true
		case msgResult:
			if m.Result == nil {
				continue
			}
			results = append(results, *m.Result)
			if observe != nil {
				observe(&results[len(results)-1])
			}
		}
	}
	_ = accepted
	_ = c.conn.SetReadDeadline(time.Time{})
	return results, nil
}

// Close disconnects the client.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.conn.Close()
}

// SortByWeightDescending orders tasks heaviest-first — the paper's greedy
// load-balance policy (targets sorted by descending sequence length so the
// long tasks start early and short tasks fill the tail). Ties break by ID
// for determinism.
func SortByWeightDescending(tasks []Task) {
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].Weight != tasks[j].Weight {
			return tasks[i].Weight > tasks[j].Weight
		}
		return tasks[i].ID < tasks[j].ID
	})
}
