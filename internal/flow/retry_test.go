package flow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/events"
)

// rawWorker is a hand-rolled worker connection for fault injection: it
// registers and hands control to the test, bypassing the real Worker's
// lifecycle (no heartbeats, no result sends unless the test says so).
type rawWorker struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialRawWorker(t *testing.T, addr, id string) *rawWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw worker dial: %v", err)
	}
	rw := &rawWorker{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
	if err := rw.enc.Encode(message{Type: msgRegister, WorkerID: id, Slots: 1, MaxBatch: workerMaxBatch}); err != nil {
		t.Fatalf("raw worker register: %v", err)
	}
	return rw
}

// awaitTask blocks until the scheduler assigns a task.
func (rw *rawWorker) awaitTask(t *testing.T) Task {
	t.Helper()
	_ = rw.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		var m message
		if err := rw.dec.Decode(&m); err != nil {
			t.Fatalf("raw worker awaiting task: %v", err)
		}
		if m.Type == msgTask && m.Task != nil {
			return *m.Task
		}
	}
}

// waitForEvent polls the scheduler's stream until an event of the given
// type appears.
func waitForEvent(t *testing.T, s *Scheduler, typ events.Type, timeout time.Duration) events.Event {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, e := range s.Events().Snapshot() {
			if e.Type == typ {
				return e
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no %s event within %s", typ, timeout)
	return events.Event{}
}

func TestRetryBudgetQuarantinesPoisonTask(t *testing.T) {
	s := NewScheduler()
	s.MaxRetries = 2
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	type mapOut struct {
		results []Result
		err     error
	}
	done := make(chan mapOut, 1)
	go func() {
		res, err := c.Map([]Task{{ID: "poison", Label: "poison"}}, nil)
		done <- mapOut{res, err}
	}()

	// Three workers in sequence each receive the task and die mid-task.
	// With MaxRetries=2 the first two deaths requeue; the third (attempt
	// 3) quarantines instead of looping forever.
	for i := 0; i < 3; i++ {
		rw := dialRawWorker(t, addr, fmt.Sprintf("dying-w%d", i))
		rw.awaitTask(t)
		rw.conn.Close()
		// The death must be processed before the next worker joins, or
		// the join order could outrun the requeue.
		for s.Events().Len() == 0 || countEvents(s, events.WorkerLeave) < i+1 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	var out mapOut
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return after quarantine")
	}
	if out.err != nil {
		t.Fatalf("Map: %v", out.err)
	}
	if len(out.results) != 1 {
		t.Fatalf("got %d results, want 1", len(out.results))
	}
	if !strings.Contains(out.results[0].Err, "quarantined") {
		t.Fatalf("result error %q, want quarantine message", out.results[0].Err)
	}

	byType := eventsByType(s.Events().Snapshot())
	if n := len(byType[events.TaskQueued]); n != 3 {
		t.Errorf("TaskQueued ×%d, want 3 (submit + 2 requeues)", n)
	}
	if n := len(byType[events.WorkerLeave]); n != 3 {
		t.Errorf("WorkerLeave ×%d, want 3", n)
	}
	failed := byType[events.TaskFailed]
	if len(failed) != 1 || failed[0].Attempt != 3 || !strings.Contains(failed[0].Err, "retry budget 2") {
		t.Errorf("TaskFailed = %+v, want one terminal failure with Attempt=3 and budget in message", failed)
	}
	quarantined := byType[events.TaskQuarantined]
	if len(quarantined) != 1 || quarantined[0].Task != "poison" || quarantined[0].Attempt != 3 {
		t.Errorf("TaskQuarantined = %+v, want one for task poison with Attempt=3", quarantined)
	}
	// The requeue events carry the attempt counter (0 on first queue).
	attempts := []int{}
	for _, e := range byType[events.TaskQueued] {
		attempts = append(attempts, e.Attempt)
	}
	if fmt.Sprint(attempts) != "[0 1 2]" {
		t.Errorf("TaskQueued attempts = %v, want [0 1 2]", attempts)
	}
}

func countEvents(s *Scheduler, typ events.Type) int {
	n := 0
	for _, e := range s.Events().Snapshot() {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func TestEscalatePayloadOnRetry(t *testing.T) {
	s := NewScheduler()
	s.MaxRetries = 3
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	task := Task{
		ID:              "oom",
		Payload:         json.RawMessage(`{"mem":16}`),
		EscalatePayload: json.RawMessage(`{"mem":512}`),
	}
	done := make(chan []Result, 1)
	go func() {
		res, _ := c.Map([]Task{task}, nil)
		done <- res
	}()

	// First delivery kills its worker (the OOM).
	rw := dialRawWorker(t, addr, "small-mem")
	got := rw.awaitTask(t)
	if string(got.Payload) != `{"mem":16}` || got.Attempt != 0 {
		t.Fatalf("first delivery payload=%s attempt=%d, want original payload attempt 0", got.Payload, got.Attempt)
	}
	rw.conn.Close()
	waitForEvent(t, s, events.WorkerLeave, 5*time.Second)

	// The retry lands on a healthy worker with the escalated payload and
	// the attempt counter visible worker-side.
	var seenAttempt atomic.Int64
	w := NewWorker("big-mem", func(tk Task) (json.RawMessage, error) {
		seenAttempt.Store(int64(tk.Attempt))
		return tk.Payload, nil
	})
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	select {
	case res := <-done:
		if len(res) != 1 || res[0].Err != "" {
			t.Fatalf("results = %+v, want one success", res)
		}
		if string(res[0].Payload) != `{"mem":512}` {
			t.Fatalf("retry ran with payload %s, want escalated {\"mem\":512}", res[0].Payload)
		}
		if res[0].WorkerID != "big-mem" {
			t.Fatalf("retry ran on %s, want big-mem", res[0].WorkerID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return")
	}
	if seenAttempt.Load() != 1 {
		t.Fatalf("worker saw Attempt=%d, want 1", seenAttempt.Load())
	}
}

func TestHeartbeatTimeoutRequeuesToSurvivor(t *testing.T) {
	s := NewScheduler()
	s.HeartbeatTimeout = 300 * time.Millisecond
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// The wedged worker registers, takes the task, and goes silent — the
	// connection stays open, so only the heartbeat deadline can catch it.
	rw := dialRawWorker(t, addr, "wedged")
	t.Cleanup(func() { rw.conn.Close() })

	done := make(chan []Result, 1)
	go func() {
		res, _ := c.Map([]Task{{ID: "t0", Label: "t0"}}, nil)
		done <- res
	}()
	rw.awaitTask(t)

	// A healthy survivor joins, heartbeating well under the deadline.
	w := NewWorker("survivor", echoHandler)
	w.HeartbeatInterval = 50 * time.Millisecond
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	lost := waitForEvent(t, s, events.WorkerLost, 5*time.Second)
	if lost.Worker != "wedged" || !strings.Contains(lost.Err, "silent") {
		t.Fatalf("worker_lost = %+v, want wedged with silence message", lost)
	}
	select {
	case res := <-done:
		if len(res) != 1 || res[0].Err != "" {
			t.Fatalf("results = %+v, want one success", res)
		}
		if res[0].WorkerID != "survivor" {
			t.Fatalf("task completed on %s, want survivor", res[0].WorkerID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("task never completed on the survivor")
	}
}

// TestHeartbeatKeepsSlowWorkerAlive pins the design decision that
// heartbeats ride a dedicated goroutine: a handler legitimately busy for
// longer than the deadline must NOT be declared dead — the deadline
// catches frozen processes and dead network paths, not long tasks.
func TestHeartbeatKeepsSlowWorkerAlive(t *testing.T) {
	s := NewScheduler()
	s.HeartbeatTimeout = 300 * time.Millisecond
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	w := NewWorker("slow", func(tk Task) (json.RawMessage, error) {
		time.Sleep(600 * time.Millisecond) // twice the deadline
		return tk.Payload, nil
	})
	w.HeartbeatInterval = 50 * time.Millisecond
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	res, err := c.Map([]Task{{ID: "t0", Payload: json.RawMessage(`1`)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Err != "" || res[0].WorkerID != "slow" {
		t.Fatalf("results = %+v, want one success on the slow worker", res)
	}
	for _, e := range s.Events().Snapshot() {
		if e.Type == events.WorkerLost {
			t.Fatalf("slow-but-beating worker was declared lost: %+v", e)
		}
	}
}

func TestDialRetryExhaustsBudget(t *testing.T) {
	// A listener bound then closed gives an address that refuses fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	_, err = Dial(DialOptions{Addr: addr, Retry: 250 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial succeeded against a closed port")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("error %q does not mention the retry budget", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Dial took %s for a 250ms budget", elapsed)
	}
	// Zero budget: exactly one attempt, no budget language.
	if _, err := Dial(DialOptions{Addr: addr}); err == nil || strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("zero-budget error = %v, want plain dial failure", err)
	}
	// The options must name exactly one locator, and a codec typo fails
	// up front instead of producing a half-negotiated connection.
	if _, err := Dial(DialOptions{}); err == nil {
		t.Fatal("Dial accepted empty options")
	}
	if _, err := Dial(DialOptions{Addr: addr, SchedulerFile: "x"}); err == nil {
		t.Fatal("Dial accepted both Addr and SchedulerFile")
	}
	if _, err := Dial(DialOptions{Addr: addr, Codec: "msgpack"}); err == nil {
		t.Fatal("Dial accepted an unknown codec")
	}
}

// TestWorkerStartsBeforeScheduler is the start-order footgun: worker and
// client start first, pointing at a scheduler file that does not exist
// yet; both converge once the scheduler appears within their budget.
func TestWorkerStartsBeforeScheduler(t *testing.T) {
	path := t.TempDir() + "/sched.json"

	type connected struct {
		w   *Worker
		err error
	}
	workerDone := make(chan connected, 1)
	go func() {
		w := NewWorker("early", echoHandler)
		w.DialBudget = 10 * time.Second
		err := w.ConnectFile(path)
		workerDone <- connected{w, err}
	}()
	clientDone := make(chan error, 1)
	var client *Client
	go func() {
		c, err := DialClient(DialOptions{SchedulerFile: path, Retry: 10 * time.Second})
		client = c
		clientDone <- err
	}()

	// The scheduler shows up fashionably late.
	time.Sleep(150 * time.Millisecond)
	s := NewScheduler()
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.WriteSchedulerFile(path); err != nil {
		t.Fatal(err)
	}

	wc := <-workerDone
	if wc.err != nil {
		t.Fatalf("early worker failed to converge: %v", wc.err)
	}
	t.Cleanup(wc.w.Close)
	if err := <-clientDone; err != nil {
		t.Fatalf("early client failed to converge: %v", err)
	}
	t.Cleanup(client.Close)

	res, err := client.Map([]Task{{ID: "t0", Payload: json.RawMessage(`"hi"`)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Err != "" {
		t.Fatalf("results = %+v, want one success through the late scheduler", res)
	}
}
