package flow

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryRegisterAndRun(t *testing.T) {
	r := NewRegistry()
	echo := func(args json.RawMessage) (json.RawMessage, error) { return args, nil }
	if err := r.Register("echo", echo); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("", echo); err == nil {
		t.Error("empty name registered")
	}
	if err := r.Register("nilfn", nil); err == nil {
		t.Error("nil func registered")
	}
	if err := r.Register("echo", echo); err == nil {
		t.Error("duplicate name registered")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "echo" {
		t.Errorf("Names() = %v", got)
	}
	if _, ok := r.Lookup("echo"); !ok {
		t.Error("Lookup(echo) missed")
	}
	if _, ok := r.Lookup("ghost"); ok {
		t.Error("Lookup(ghost) hit")
	}

	payload, err := EncodeSpec(JobSpec{Kernel: "echo", Args: json.RawMessage(`{"x":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"x":1}` {
		t.Errorf("Run = %s", out)
	}
}

func TestRegistryRunErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Run(nil); err == nil {
		t.Error("Run(nil payload) succeeded")
	}
	if _, err := r.Run(json.RawMessage(`{"kernel":"ghost"}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown kernel") {
		t.Errorf("Run(unknown kernel) err = %v", err)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	_ = r.Register("double", func(args json.RawMessage) (json.RawMessage, error) {
		var n int
		if err := json.Unmarshal(args, &n); err != nil {
			return nil, err
		}
		return json.Marshal(2 * n)
	})
	task, err := NewSpecTask("t1", 0, "double", 21)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Handler()(task)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "42" {
		t.Errorf("handler = %s", out)
	}
	// A task without a spec payload is an error for a spec-serving worker.
	if _, err := r.Handler()(Task{ID: "t2"}); err == nil {
		t.Error("handler accepted payload-less task")
	}
}

func TestDecodeSpec(t *testing.T) {
	tests := []struct {
		name    string
		payload string
		wantErr bool
		kernel  string
	}{
		{name: "ok", payload: `{"kernel":"k","args":[1,2]}`, kernel: "k"},
		{name: "no args", payload: `{"kernel":"k"}`, kernel: "k"},
		{name: "empty payload", payload: "", wantErr: true},
		{name: "not json", payload: `{kernel}`, wantErr: true},
		{name: "wrong type", payload: `42`, wantErr: true},
		{name: "missing kernel", payload: `{"args":{}}`, wantErr: true},
		{name: "empty kernel", payload: `{"kernel":""}`, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec, err := DecodeSpec(json.RawMessage(tt.payload))
			if (err != nil) != tt.wantErr {
				t.Fatalf("DecodeSpec(%q) error = %v, wantErr %v", tt.payload, err, tt.wantErr)
			}
			if err == nil && spec.Kernel != tt.kernel {
				t.Errorf("kernel = %q, want %q", spec.Kernel, tt.kernel)
			}
		})
	}
}

func TestEncodeSpecRejectsEmptyKernel(t *testing.T) {
	if _, err := EncodeSpec(JobSpec{}); err == nil {
		t.Error("EncodeSpec with empty kernel succeeded")
	}
}

func TestNewSpecTaskRoundTrip(t *testing.T) {
	type args struct {
		ID string `json:"id"`
		N  int    `json:"n"`
	}
	task, err := NewSpecTask("job-7", 3.5, "stage/kernel", args{ID: "p1", N: 9})
	if err != nil {
		t.Fatal(err)
	}
	if task.ID != "job-7" || task.Weight != 3.5 {
		t.Errorf("task = %+v", task)
	}
	spec, err := DecodeSpec(task.Payload)
	if err != nil {
		t.Fatal(err)
	}
	var got args
	if err := json.Unmarshal(spec.Args, &got); err != nil {
		t.Fatal(err)
	}
	if got != (args{ID: "p1", N: 9}) {
		t.Errorf("args = %+v", got)
	}
	// Unmarshalable args fail loudly.
	if _, err := NewSpecTask("bad", 0, "k", func() {}); err == nil {
		t.Error("NewSpecTask with func arg succeeded")
	}
}

func TestParseSchedulerFile(t *testing.T) {
	tests := []struct {
		name    string
		data    string
		wantErr bool
		addr    string
	}{
		{name: "ok", data: `{"address":"127.0.0.1:8786","started_at":"2022-01-25T00:00:00Z"}`, addr: "127.0.0.1:8786"},
		{name: "no address", data: `{"started_at":"2022-01-25T00:00:00Z"}`, wantErr: true},
		{name: "empty", data: ``, wantErr: true},
		{name: "not json", data: `address=127.0.0.1`, wantErr: true},
		{name: "wrong type", data: `["127.0.0.1:8786"]`, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sf, err := ParseSchedulerFile([]byte(tt.data))
			if (err != nil) != tt.wantErr {
				t.Fatalf("error = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && sf.Address != tt.addr {
				t.Errorf("address = %q, want %q", sf.Address, tt.addr)
			}
		})
	}
}

// TestSpecTasksThroughCluster drives spec tasks through a real
// scheduler/worker/client round trip with a local registry handler.
func TestSpecTasksThroughCluster(t *testing.T) {
	r := NewRegistry()
	_ = r.Register("inc", func(args json.RawMessage) (json.RawMessage, error) {
		var n int
		if err := json.Unmarshal(args, &n); err != nil {
			return nil, err
		}
		return json.Marshal(n + 1)
	})

	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := NewWorker("spec-worker", r.Handler())
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i], err = NewSpecTask(string(rune('a'+i)), 0, "inc", i)
		if err != nil {
			t.Fatal(err)
		}
	}
	results, err := c.Map(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results", len(results))
	}
	for _, res := range results {
		if res.Failed() {
			t.Fatalf("task %s failed: %s", res.TaskID, res.Err)
		}
		var n int
		if err := json.Unmarshal(res.Payload, &n); err != nil {
			t.Fatal(err)
		}
		if want := int(res.TaskID[0]-'a') + 1; n != want {
			t.Errorf("task %s = %d, want %d", res.TaskID, n, want)
		}
	}
}
