package flow

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startCluster spins up a scheduler plus n workers running handler, and a
// connected client. Everything is cleaned up at test end.
func startCluster(t *testing.T, n int, handler Handler) (*Scheduler, []*Worker, *Client) {
	t.Helper()
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	workers := make([]*Worker, n)
	for i := range workers {
		w := NewWorker(fmt.Sprintf("w%02d", i), handler)
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		workers[i] = w
	}
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return s, workers, c
}

func echoHandler(task Task) (json.RawMessage, error) {
	return task.Payload, nil
}

func makeTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			ID:      fmt.Sprintf("t%03d", i),
			Weight:  float64(i),
			Payload: json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)),
		}
	}
	return tasks
}

func TestMapCompletesAllTasks(t *testing.T) {
	_, _, c := startCluster(t, 4, echoHandler)
	tasks := makeTasks(50)
	results, err := c.Map(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 50 {
		t.Fatalf("got %d results", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.Failed() {
			t.Errorf("task %s failed: %s", r.TaskID, r.Err)
		}
		if seen[r.TaskID] {
			t.Errorf("duplicate result %s", r.TaskID)
		}
		seen[r.TaskID] = true
		if r.End.Before(r.Start) {
			t.Errorf("task %s ends before it starts", r.TaskID)
		}
	}
	for _, task := range tasks {
		if !seen[task.ID] {
			t.Errorf("task %s never completed", task.ID)
		}
	}
}

func TestWorkISpreadAcrossWorkers(t *testing.T) {
	// With a slow-ish handler and many tasks, every worker must process a
	// share — the dataflow execution model of Fig. 1.
	slow := func(task Task) (json.RawMessage, error) {
		time.Sleep(2 * time.Millisecond)
		return nil, nil
	}
	_, workers, c := startCluster(t, 5, slow)
	if _, err := c.Map(makeTasks(60), nil); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if w.Processed() == 0 {
			t.Errorf("worker %s processed nothing; scheduler not distributing", w.ID)
		}
	}
}

func TestHandlerErrorsAreReported(t *testing.T) {
	h := func(task Task) (json.RawMessage, error) {
		if strings.HasSuffix(task.ID, "3") {
			return nil, fmt.Errorf("boom on %s", task.ID)
		}
		return nil, nil
	}
	_, _, c := startCluster(t, 2, h)
	results, err := c.Map(makeTasks(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, r := range results {
		if r.Failed() {
			failed++
			if !strings.Contains(r.Err, "boom") {
				t.Errorf("unexpected error text: %s", r.Err)
			}
		}
	}
	if failed != 2 { // t003, t013
		t.Errorf("failed = %d, want 2", failed)
	}
}

func TestMapObserverStreamsResults(t *testing.T) {
	_, _, c := startCluster(t, 3, echoHandler)
	seen := map[string]int{}
	results, err := c.Map(makeTasks(10), func(r *Result) {
		seen[r.TaskID]++
		if r.WorkerID == "" {
			t.Errorf("observer saw %s with no worker identity", r.TaskID)
		}
		if r.EnqueuedNS == 0 {
			t.Errorf("observer saw %s with no scheduler enqueue stamp", r.TaskID)
		}
		if r.Start.Before(r.EnqueuedAt()) {
			t.Errorf("task %s started before it was enqueued", r.TaskID)
		}
		if r.QueueDuration() < 0 {
			t.Errorf("task %s has negative queue time", r.TaskID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 || len(seen) != 10 {
		t.Fatalf("results = %d, observed = %d, want 10", len(results), len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("observer saw %s %d times", id, n)
		}
	}
}

func TestResultQueueDurationZeroWithoutStamp(t *testing.T) {
	// Results from a pre-telemetry peer carry no enqueue stamp; queue time
	// must degrade to zero, never negative.
	r := Result{Start: time.Now(), End: time.Now()}
	if d := r.QueueDuration(); d != 0 {
		t.Fatalf("QueueDuration without stamp = %v, want 0", d)
	}
}

func TestSchedulerFileRegistration(t *testing.T) {
	s := NewScheduler()
	if err := s.WriteSchedulerFile("/tmp/never"); err == nil {
		t.Error("writing scheduler file before Start must fail")
	}
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	path := filepath.Join(t.TempDir(), "scheduler.json")
	if err := s.WriteSchedulerFile(path); err != nil {
		t.Fatal(err)
	}

	var calls int64
	w := NewWorker("wfile", func(task Task) (json.RawMessage, error) {
		atomic.AddInt64(&calls, 1)
		return nil, nil
	})
	if err := w.ConnectFile(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	c, err := ConnectClientFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	if _, err := c.Map(makeTasks(5), nil); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&calls) != 5 {
		t.Errorf("worker executed %d tasks, want 5", calls)
	}
}

func TestWorkerJoinsMidBatch(t *testing.T) {
	// Dataflow property: a worker registering after submission still gets
	// work from the queue.
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	slow := func(task Task) (json.RawMessage, error) {
		time.Sleep(3 * time.Millisecond)
		return nil, nil
	}
	w1 := NewWorker("early", slow)
	if err := w1.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w1.Close)

	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	done := make(chan error, 1)
	go func() {
		_, err := c.Map(makeTasks(40), nil)
		done <- err
	}()

	time.Sleep(10 * time.Millisecond)
	w2 := NewWorker("late", slow)
	if err := w2.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w2.Close)

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if w2.Processed() == 0 {
		t.Error("late-joining worker never received tasks")
	}
}

func TestWorkerCrashRequeuesTask(t *testing.T) {
	// A worker that dies mid-task must not lose the task: the scheduler
	// requeues it onto a surviving worker.
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var crasher *Worker
	crashed := make(chan struct{})
	var once int64
	crashHandler := func(task Task) (json.RawMessage, error) {
		if task.ID == "t000" && atomic.CompareAndSwapInt64(&once, 0, 1) {
			// Simulate a crash: close our own connection without replying.
			go crasher.Close()
			close(crashed)
			time.Sleep(50 * time.Millisecond)
			return nil, fmt.Errorf("connection lost")
		}
		return nil, nil
	}
	crasher = NewWorker("crashy", crashHandler)
	if err := crasher.Connect(addr); err != nil {
		t.Fatal(err)
	}

	survivor := NewWorker("survivor", func(task Task) (json.RawMessage, error) {
		return nil, nil
	})

	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	done := make(chan struct{})
	var results []Result
	var mapErr error
	go func() {
		results, mapErr = c.Map(makeTasks(8), nil)
		close(done)
	}()

	<-crashed
	if err := survivor.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(survivor.Close)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("map did not complete after worker crash")
	}
	if mapErr != nil {
		t.Fatal(mapErr)
	}
	if len(results) != 8 {
		t.Fatalf("results = %d, want 8 (requeue failed)", len(results))
	}
	for _, r := range results {
		if r.TaskID == "t000" && r.WorkerID != "survivor" {
			t.Errorf("t000 completed by %s, expected requeue to survivor", r.WorkerID)
		}
	}
}

func TestMapValidation(t *testing.T) {
	_, _, c := startCluster(t, 1, echoHandler)
	if _, err := c.Map([]Task{{ID: ""}}, nil); err == nil {
		t.Error("empty task ID accepted")
	}
	if _, err := c.Map([]Task{{ID: "a"}, {ID: "a"}}, nil); err == nil {
		t.Error("duplicate task IDs accepted")
	}
	res, err := c.Map(nil, nil)
	if err != nil || res != nil {
		t.Error("empty map should be a no-op")
	}
}

func TestSortByWeightDescending(t *testing.T) {
	tasks := []Task{
		{ID: "b", Weight: 5},
		{ID: "a", Weight: 5},
		{ID: "c", Weight: 100},
		{ID: "d", Weight: 1},
	}
	SortByWeightDescending(tasks)
	got := []string{tasks[0].ID, tasks[1].ID, tasks[2].ID, tasks[3].ID}
	want := []string{"c", "a", "b", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTwoSequentialBatches(t *testing.T) {
	// The paper runs inference and relaxation as separate workflows on the
	// same pattern; a client must be able to Map twice.
	_, _, c := startCluster(t, 3, echoHandler)
	r1, err := c.Map(makeTasks(10), nil)
	if err != nil {
		t.Fatal(err)
	}
	tasks2 := makeTasks(7)
	for i := range tasks2 {
		tasks2[i].ID = "second-" + tasks2[i].ID
	}
	r2, err := c.Map(tasks2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 10 || len(r2) != 7 {
		t.Errorf("batch sizes: %d, %d", len(r1), len(r2))
	}
}

func BenchmarkMapThroughput(b *testing.B) {
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		w := NewWorker(fmt.Sprintf("w%d", i), echoHandler)
		if err := w.Connect(addr); err != nil {
			b.Fatal(err)
		}
		defer w.Close()
	}
	c, err := ConnectClient(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks := make([]Task, 100)
		for j := range tasks {
			tasks[j] = Task{ID: fmt.Sprintf("b%d-%d", i, j)}
		}
		if _, err := c.Map(tasks, nil); err != nil {
			b.Fatal(err)
		}
	}
}
