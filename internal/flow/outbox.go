package flow

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Tuning defaults for the per-connection outbox (`sched -outbox-depth`,
// `sched -write-timeout`).
const (
	// DefaultOutboxDepth is the outbound frame queue bound per peer
	// connection when Scheduler.OutboxDepth is zero. At the default batch
	// sizes this absorbs several full handout waves of backlog before a
	// non-draining peer is declared dead by overflow.
	DefaultOutboxDepth = 1024
	// DefaultWriteTimeout is the per-write deadline applied by each
	// outbox writer when Scheduler.WriteTimeout is zero — the same bound
	// the monitor pump has always used for a wedged subscriber.
	DefaultWriteTimeout = 30 * time.Second
)

// errOutboxStopped reports an enqueue on an outbox whose writer has
// already been stopped (peer gone, scheduler closing).
var errOutboxStopped = errors.New("flow: outbox stopped")

// outbox is one connection's bounded outbound frame queue, drained by a
// dedicated writer goroutine. The event loop enqueues frames without
// blocking and without touching the socket; the writer coalesces every
// frame queued at wake-up into a single Flush (many frames per syscall),
// brackets each batch with a write deadline, and on any write failure —
// or on queue overflow, the non-draining-peer signal — reports the peer
// dead so the event loop can requeue its work through the normal retry
// path. This is what keeps one wedged peer from stalling dispatch to the
// rest of the fleet: the event loop never performs peer I/O itself.
//
// Concurrency: the codec is shared with the connection's read pump, which
// is safe per the Codec contract (one reader + one writer goroutine). The
// writer is the only goroutine that encodes; `encoded` publishes its
// progress so the event loop can reuse per-connection encode scratch once
// every frame it handed over has been serialized (the atomic load/store
// pair is the required happens-before edge — there is no other
// synchronization between the loop and the writer).
type outbox struct {
	conn    net.Conn
	codec   Codec
	timeout time.Duration
	// onDead, when set, is called (from the writer goroutine, exactly
	// once) after a write failure so the owner can report the peer gone to
	// the event loop. Overflow detected at enqueue time does not call it:
	// the enqueueing event loop sees the error synchronously and must not
	// block sending itself an event.
	onDead func(error)

	ch       chan *message
	stop     chan struct{}
	stopOnce sync.Once

	// encoded counts frames the writer has finished encoding.
	encoded atomic.Uint64

	// onOverflow, when set, is called once per overflow detected at
	// enqueue time (on the enqueueing goroutine — an atomic counter
	// increment, nothing that can block the event loop). Overflows never
	// reach the event stream, so the metrics view counts them here.
	onOverflow func()

	mu     sync.Mutex
	failed error
}

// newOutbox creates the queue and starts its writer goroutine, tracked by
// the scheduler's WaitGroup and stopped by scheduler shutdown (parent).
func (s *Scheduler) newOutbox(conn net.Conn, codec Codec, onDead func(error)) *outbox {
	depth := s.OutboxDepth
	if depth <= 0 {
		depth = DefaultOutboxDepth
	}
	timeout := s.WriteTimeout
	if timeout <= 0 {
		timeout = DefaultWriteTimeout
	}
	o := &outbox{
		conn:    conn,
		codec:   codec,
		timeout: timeout,
		onDead:  onDead,
		ch:      make(chan *message, depth),
		stop:    make(chan struct{}),
	}
	if s.Metrics != nil {
		o.onOverflow = s.Metrics.outboxOverflows.Inc
	}
	s.wg.Add(1)
	go o.run(s.done, &s.wg)
	return o
}

func (o *outbox) run(parent <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-o.stop:
			return
		case <-parent:
			o.shutdown()
			return
		case m := <-o.ch:
			if err := o.writeBatch(m); err != nil {
				o.fail(err)
				if o.onDead != nil {
					o.onDead(err)
				}
				return
			}
		}
	}
}

// writeBatch encodes first plus every frame currently queued behind it,
// then flushes once — the coalescing that amortizes the write syscall
// across a burst. The deadline is set before encoding because bufio may
// hit the socket mid-Encode on large frames, not only at Flush.
func (o *outbox) writeBatch(first *message) error {
	if o.timeout > 0 {
		_ = o.conn.SetWriteDeadline(time.Now().Add(o.timeout))
	}
	m := first
	for {
		if err := o.codec.Encode(m); err != nil {
			return err
		}
		o.encoded.Add(1)
		select {
		case m = <-o.ch:
		default:
			if err := o.codec.Flush(); err != nil {
				return err
			}
			_ = o.conn.SetWriteDeadline(time.Time{})
			return nil
		}
	}
}

// enqueue hands one frame to the writer without ever blocking the event
// loop. A full queue means the peer has not drained an entire queue's
// worth of frames: the peer is declared dead on the spot (conn closed,
// writer stopped) and the error returned so the caller can clean up
// synchronously — onDead is deliberately not called from here.
func (o *outbox) enqueue(m *message) error {
	o.mu.Lock()
	failed := o.failed
	o.mu.Unlock()
	if failed != nil {
		return failed
	}
	select {
	case <-o.stop:
		return errOutboxStopped
	default:
	}
	select {
	case o.ch <- m:
		return nil
	default:
		if o.onOverflow != nil {
			o.onOverflow()
		}
		err := fmt.Errorf("flow: outbox overflow: peer not draining (%d frames queued)", cap(o.ch))
		o.fail(err)
		return err
	}
}

// enqueueWait hands one frame to the writer, blocking until there is
// room — the monitor pump's backpressure mode, where the pump goroutine
// (not the event loop) is the one that parks.
func (o *outbox) enqueueWait(m *message, parent <-chan struct{}) error {
	select {
	case o.ch <- m:
		return nil
	case <-o.stop:
		return errOutboxStopped
	case <-parent:
		return errOutboxStopped
	}
}

// fail records the first failure, stops the writer, and severs the
// connection so the peer's read pump unblocks too.
func (o *outbox) fail(err error) {
	o.mu.Lock()
	if o.failed == nil {
		o.failed = err
	}
	o.mu.Unlock()
	o.stopOnce.Do(func() { close(o.stop) })
	o.conn.Close()
}

// shutdown stops the writer without recording a failure — the peer is
// known gone (read pump failed, heartbeat sweep) and any frames still
// queued are discarded. Idempotent.
func (o *outbox) shutdown() {
	o.stopOnce.Do(func() { close(o.stop) })
	o.conn.Close()
}
