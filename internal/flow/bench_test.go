package flow

import (
	"encoding/json"
	"fmt"
	"testing"
)

// BenchmarkDispatchThroughput drives a fleet of in-process workers
// through the scheduler dispatch hot path — submit, batched handout,
// execute (no-op handler), batched ack, result forwarding — once per
// codec. The handler does no work, so the numbers isolate the framing
// and scheduling cost the paper's 6,000-worker deployments pay per task;
// tasks/s and allocs/op for both codecs are gated in CI by
// cmd/benchguard against BENCH_BASELINE.json.
func BenchmarkDispatchThroughput(b *testing.B) {
	for _, wire := range []string{WireJSON, WireBinary} {
		b.Run(wire, func(b *testing.B) {
			benchDispatch(b, wire)
		})
	}
}

func benchDispatch(b *testing.B, wire string) {
	const (
		numWorkers = 256
		tasksPerOp = 2048
	)
	s := NewScheduler()
	s.Batch = 16
	// Bound the event hub's in-memory history: the benchmark measures the
	// dispatch path, not unbounded backlog growth across iterations.
	s.Events().SetLimit(1024)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	noop := func(task Task) (json.RawMessage, error) { return nil, nil }
	for i := 0; i < numWorkers; i++ {
		w := NewWorker(fmt.Sprintf("w%03d", i), noop)
		w.HeartbeatInterval = 0
		if err := w.Dial(DialOptions{Addr: addr, Codec: wire}); err != nil {
			b.Fatal(err)
		}
		defer w.Close()
	}
	c, err := DialClient(DialOptions{Addr: addr, Codec: wire})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// A payload in the size range of a summary-mode campaign task, built
	// once: the benchmark measures framing, not payload construction.
	payload := json.RawMessage(`{"job":"fold","species":"DVU","protein":"DVU_0001","preset":"reduced","seed":42}`)
	tasks := make([]Task, tasksPerOp)
	for i := range tasks {
		tasks[i] = Task{ID: fmt.Sprintf("t%04d", i), Weight: float64(i % 97), Payload: payload}
	}

	// One untimed wave warms every connection's buffers and the
	// scheduler's maps, so b.N=1 runs measure steady state.
	if _, err := c.Map(tasks, nil); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Map(tasks, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(tasksPerOp)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}
