package flow

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/events"
)

// BenchmarkDispatchThroughput drives a fleet of in-process workers
// through the scheduler dispatch hot path — submit, batched handout,
// execute (no-op handler), batched ack, result forwarding — per codec
// and per fleet size. The handler does no work, so the numbers isolate
// the framing and scheduling cost the paper's 6,000-worker deployments
// pay per task. The w256 and w1024 rows for both codecs are gated in CI
// by cmd/benchguard against BENCH_BASELINE.json; w4096 approaches the
// paper's per-batch scale and is for manual runs (CI skips it).
func BenchmarkDispatchThroughput(b *testing.B) {
	for _, wire := range []string{WireJSON, WireBinary} {
		b.Run(wire, func(b *testing.B) {
			for _, workers := range []int{256, 1024, 4096} {
				b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
					benchDispatch(b, wire, workers, false)
				})
			}
		})
	}
}

// BenchmarkDispatchSlowPeer is the wedged-peer run: the same 256-worker
// fleet and task load as BenchmarkDispatchThroughput/*/w256, plus one
// registered worker that never reads its connection (reaped by the
// heartbeat sweep during warmup) and one monitor subscriber that never
// drains its event stream (wedged for the whole timed region). Gated
// against baselines set within a few percent of the all-healthy w256
// rows: proof that a non-draining peer costs its own connection, not the
// fleet's throughput. Healthy workers heartbeat so the sweep only reaps
// the wedge.
func BenchmarkDispatchSlowPeer(b *testing.B) {
	for _, wire := range []string{WireJSON, WireBinary} {
		b.Run(wire, func(b *testing.B) {
			benchDispatch(b, wire, 256, true)
		})
	}
}

func benchDispatch(b *testing.B, wire string, numWorkers int, slowPeer bool) {
	tasksPerOp := 8 * numWorkers
	s := NewScheduler()
	s.Batch = 16
	// Live metrics on: the baselines pin the dispatch path as deployed
	// (`sched -http` registers a SchedulerMetrics sink), so the per-event
	// fold into the Prometheus series is part of what every row measures.
	s.Metrics = NewSchedulerMetrics(nil)
	// The client awaits a whole wave, so a wave's worth of result frames
	// can be queued on its outbox before the writer goroutine runs. Size
	// the outbox for the wave — the tuning rule `sched -outbox-depth`
	// exists for (depth >= the largest in-flight wave per client);
	// the default depth is sized for campaign-scale waves, not this
	// synthetic all-results-at-once burst.
	s.OutboxDepth = 2 * tasksPerOp
	if slowPeer {
		// The only reap signal for a wedged-but-connected worker is its
		// heartbeat going quiet; healthy workers beat at a tenth of the
		// deadline, wide enough that a dispatch burst starving their
		// heartbeat goroutines (single-core CI runners) cannot cause a
		// false reap. The steady heartbeat traffic is part of what the
		// slow-peer rows measure.
		s.HeartbeatTimeout = 10 * time.Second
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	noop := func(task Task) (json.RawMessage, error) { return nil, nil }
	for i := 0; i < numWorkers; i++ {
		w := NewWorker(fmt.Sprintf("w%03d", i), noop)
		w.HeartbeatInterval = 0
		if slowPeer {
			w.HeartbeatInterval = time.Second
		}
		if err := w.Dial(DialOptions{Addr: addr, Codec: wire}); err != nil {
			b.Fatal(err)
		}
		defer w.Close()
	}
	if slowPeer {
		wedgeBenchPeer(b, addr, wire, msgRegister)
		wedgeBenchPeer(b, addr, wire, msgSubscribe)
	}
	c, err := DialClient(DialOptions{Addr: addr, Codec: wire})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// A payload in the size range of a summary-mode campaign task, built
	// once: the benchmark measures framing, not payload construction.
	payload := json.RawMessage(`{"job":"fold","species":"DVU","protein":"DVU_0001","preset":"reduced","seed":42}`)
	tasks := make([]Task, tasksPerOp)
	for i := range tasks {
		tasks[i] = Task{ID: fmt.Sprintf("t%04d", i), Weight: float64(i % 97), Payload: payload}
	}

	// One untimed wave warms every connection's buffers and the
	// scheduler's maps, so b.N=1 runs measure steady state.
	if _, err := c.Map(tasks, nil); err != nil {
		b.Fatal(err)
	}
	if slowPeer {
		// Keep running untimed waves until the free-list rotation hands
		// the wedged worker a batch, that wave stalls on its silent
		// conn, and the heartbeat sweep reaps it (requeueing the batch
		// to healthy workers). The timed region then starts with the
		// wedge's one-time damage fully paid — steady state with a dead
		// wedged worker and a still-attached, never-draining monitor.
		deadline := time.Now().Add(90 * time.Second)
		for countEvents(s, events.WorkerLost) == 0 {
			if time.Now().After(deadline) {
				b.Fatal("wedged worker never reaped during warmup")
			}
			if _, err := c.Map(tasks, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Bound the event hub's in-memory history for the timed region: the
	// benchmark measures the dispatch path, not unbounded backlog growth
	// across iterations. (Unbounded during warmup, so the WorkerLost
	// marker above cannot be evicted before it is observed.)
	s.Events().SetLimit(1024)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Map(tasks, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(tasksPerOp)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// wedgeBenchPeer connects a peer speaking the benchmark's codec that
// sends one hello frame (register or subscribe) and then never reads —
// the non-draining connection the slow-peer benchmark is about.
func wedgeBenchPeer(b *testing.B, addr, wire, kind string) {
	b.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10)
	}
	b.Cleanup(func() { conn.Close() })
	codec, err := dialCodec(conn, wire)
	if err != nil {
		b.Fatal(err)
	}
	m := message{Type: kind}
	if kind == msgRegister {
		m.WorkerID = "wedged"
		m.Slots = 1
		m.MaxBatch = workerMaxBatch
	}
	if err := codec.Encode(&m); err != nil {
		b.Fatal(err)
	}
	if err := codec.Flush(); err != nil {
		b.Fatal(err)
	}
}
