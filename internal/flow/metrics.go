package flow

import (
	"io"
	"sync"

	"repro/internal/events"
	"repro/internal/obs"
)

// taskSecondsBuckets spans the dispatch-bound microsecond regime through
// multi-minute inference tasks.
var taskSecondsBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10, 60, 300, 1800}

// SchedulerMetrics folds the scheduler's event stream into live Prometheus
// series — the scrapeable counterpart of events.Tracker. It is registered
// as a synchronous hub sink (Scheduler.Metrics), so Observe runs under the
// hub lock on the dispatch path and must stay allocation-free at steady
// state: per-campaign series are resolved once and cached, and every update
// is an atomic add. One instance serves one scheduler.
type SchedulerMetrics struct {
	reg *obs.Registry

	// Task lifecycle. tasks is the ground-truth counter family the e2e
	// contract checks against the persisted event log: one increment per
	// event, labeled by event type and campaign.
	tasks       *obs.CounterVec
	queueDepth  *obs.Gauge
	tasksBusy   *obs.Gauge
	campQueued  *obs.GaugeVec
	campRunning *obs.GaugeVec
	retries     *obs.Counter
	truncated   *obs.Counter
	taskSeconds *obs.Histogram

	// Fleet.
	workers      *obs.Gauge
	workerEvents *obs.CounterVec

	// Worker-side runtime gauges, carried by heartbeats.
	wGoroutines *obs.GaugeVec
	wHeapBytes  *obs.GaugeVec
	wTasks      *obs.GaugeVec
	wBusyNS     *obs.GaugeVec

	// I/O pressure.
	outboxOverflows *obs.Counter

	// campaigns caches the per-campaign series structs; Observe runs on
	// one goroutine (the hub lock serializes emitters), so the map needs
	// no lock of its own, but starts tracks the assigned→terminal bracket
	// for the duration histogram on the same single-writer terms.
	campaigns map[string]*campaignSeries
	starts    map[string]int64 // task label -> assigned TimeNS

	// dropFns reads AsyncSink drop totals at scrape time (satellite:
	// surface events.AsyncSink.Dropped as a queryable counter).
	dropMu  sync.Mutex
	dropFns []func() uint64
}

// campaignSeries is one campaign's resolved counters — a single map lookup
// plus atomic adds per event on the hot path.
type campaignSeries struct {
	received, queued, assigned, running *obs.Counter
	done, failed, dropped, quarantined  *obs.Counter
	qDepth, active                      *obs.Gauge
}

// NewSchedulerMetrics builds the full series set on reg (a fresh registry
// when nil). Set the result as Scheduler.Metrics before Start.
func NewSchedulerMetrics(reg *obs.Registry) *SchedulerMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &SchedulerMetrics{
		reg: reg,

		tasks: reg.CounterVec("flow_tasks_total",
			"Task lifecycle events observed by the scheduler, by event type and campaign.",
			"event", "campaign"),
		queueDepth: reg.Gauge("flow_queue_depth",
			"Tasks queued and waiting for a worker."),
		tasksBusy: reg.Gauge("flow_tasks_running",
			"Tasks assigned to a worker and not yet finished."),
		campQueued: reg.GaugeVec("flow_campaign_queued",
			"Queued tasks per campaign.", "campaign"),
		campRunning: reg.GaugeVec("flow_campaign_running",
			"In-flight tasks per campaign.", "campaign"),
		retries: reg.Counter("flow_retries_total",
			"Tasks requeued after their worker died mid-flight."),
		truncated: reg.Counter("flow_truncated_events_total",
			"Truncation markers observed on the event stream (bounded backlog evictions)."),
		taskSeconds: reg.Histogram("flow_task_seconds",
			"Assignment-to-completion duration per task, scheduler-side.",
			taskSecondsBuckets),

		workers: reg.Gauge("flow_workers_connected",
			"Workers currently registered."),
		workerEvents: reg.CounterVec("flow_worker_events_total",
			"Worker fleet transitions (worker_join, worker_leave, worker_lost).", "event"),

		wGoroutines: reg.GaugeVec("flow_worker_goroutines",
			"Goroutines on the worker process, from its last heartbeat.", "worker"),
		wHeapBytes: reg.GaugeVec("flow_worker_heap_bytes",
			"Live heap bytes on the worker process, from its last heartbeat.", "worker"),
		wTasks: reg.GaugeVec("flow_worker_tasks_executed",
			"Cumulative handler invocations on the worker, from its last heartbeat.", "worker"),
		wBusyNS: reg.GaugeVec("flow_worker_busy_ns",
			"Cumulative nanoseconds the worker spent inside task handlers, from its last heartbeat; rate over wall time is occupancy.", "worker"),

		outboxOverflows: reg.Counter("flow_outbox_overflows_total",
			"Peers declared dead because their outbound frame queue overflowed."),

		campaigns: make(map[string]*campaignSeries),
		starts:    make(map[string]int64),
	}
	reg.CounterFunc("flow_async_sink_dropped_total",
		"Events dropped by bounded async sinks (event log, placement log) under sustained overload.",
		m.asyncDropped)
	return m
}

// Registry returns the backing registry, for serving /metrics.
func (m *SchedulerMetrics) Registry() *obs.Registry { return m.reg }

// WritePrometheus renders one scrape of every series.
func (m *SchedulerMetrics) WritePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}

// AddDropSource registers a callback read at scrape time whose value joins
// flow_async_sink_dropped_total (typically an events.AsyncSink.Dropped).
func (m *SchedulerMetrics) AddDropSource(fn func() uint64) {
	m.dropMu.Lock()
	m.dropFns = append(m.dropFns, fn)
	m.dropMu.Unlock()
}

func (m *SchedulerMetrics) asyncDropped() float64 {
	m.dropMu.Lock()
	defer m.dropMu.Unlock()
	var n uint64
	for _, fn := range m.dropFns {
		n += fn()
	}
	return float64(n)
}

// campaign resolves the cached series struct for a campaign, creating it on
// first sight (the only allocating path; steady state is a map hit).
func (m *SchedulerMetrics) campaign(name string) *campaignSeries {
	if cs, ok := m.campaigns[name]; ok {
		return cs
	}
	cs := &campaignSeries{
		received:    m.tasks.With(string(events.TaskReceived), name),
		queued:      m.tasks.With(string(events.TaskQueued), name),
		assigned:    m.tasks.With(string(events.TaskAssigned), name),
		running:     m.tasks.With(string(events.TaskRunning), name),
		done:        m.tasks.With(string(events.TaskDone), name),
		failed:      m.tasks.With(string(events.TaskFailed), name),
		dropped:     m.tasks.With(string(events.TaskDropped), name),
		quarantined: m.tasks.With(string(events.TaskQuarantined), name),
		qDepth:      m.campQueued.With(name),
		active:      m.campRunning.With(name),
	}
	m.campaigns[name] = cs
	return cs
}

// decNonNeg guards gauge decrements: transitions are counted from the event
// stream alone, so a stream joined mid-flight (resume, monitor-fed metrics)
// can see a terminal event for work it never saw start.
func decNonNeg(g *obs.Gauge) {
	if g.Value() > 0 {
		g.Dec()
	}
}

// Observe folds one event into the live series. The counting rules mirror
// events.Tracker: a queued event with Attempt > 0 is a requeue pulling an
// in-flight task back, assigned moves queued→running, done/failed retire a
// running task, dropped retires a queued one, and quarantine's terminal
// failed arrives without a matching queued.
func (m *SchedulerMetrics) Observe(e events.Event) {
	switch e.Type {
	case events.TaskReceived:
		m.campaign(e.Campaign).received.Inc()
	case events.TaskQueued:
		cs := m.campaign(e.Campaign)
		cs.queued.Inc()
		m.queueDepth.Inc()
		cs.qDepth.Inc()
		if e.Attempt > 0 { // requeue: the task was in flight
			m.retries.Inc()
			decNonNeg(m.tasksBusy)
			decNonNeg(cs.active)
			delete(m.starts, e.Task)
		}
	case events.TaskAssigned:
		cs := m.campaign(e.Campaign)
		cs.assigned.Inc()
		decNonNeg(m.queueDepth)
		decNonNeg(cs.qDepth)
		m.tasksBusy.Inc()
		cs.active.Inc()
		m.starts[e.Task] = e.TimeNS
	case events.TaskRunning:
		m.campaign(e.Campaign).running.Inc()
	case events.TaskDone, events.TaskFailed:
		cs := m.campaign(e.Campaign)
		if e.Type == events.TaskDone {
			cs.done.Inc()
		} else {
			cs.failed.Inc()
		}
		decNonNeg(m.tasksBusy)
		decNonNeg(cs.active)
		if start, ok := m.starts[e.Task]; ok {
			m.taskSeconds.Observe(float64(e.TimeNS-start) / 1e9)
			delete(m.starts, e.Task)
		}
	case events.TaskDropped:
		cs := m.campaign(e.Campaign)
		cs.dropped.Inc()
		decNonNeg(m.queueDepth)
		decNonNeg(cs.qDepth)
		delete(m.starts, e.Task)
	case events.TaskQuarantined:
		m.campaign(e.Campaign).quarantined.Inc()
	case events.WorkerJoin:
		m.workers.Inc()
		m.workerEvents.With(string(e.Type)).Inc()
	case events.WorkerLeave, events.WorkerLost:
		decNonNeg(m.workers)
		m.workerEvents.With(string(e.Type)).Inc()
		m.forgetWorker(e.Worker)
	case events.Truncated:
		m.truncated.Inc()
	}
}

// SetWorkerGauges publishes a worker's heartbeat-carried runtime snapshot.
// Called from the scheduler's event loop; a legacy worker never reaches
// here, so its series simply do not exist (absent, not zero).
func (m *SchedulerMetrics) SetWorkerGauges(worker string, g *WorkerGauges) {
	if g == nil {
		return
	}
	m.wGoroutines.With(worker).Set(int64(g.Goroutines))
	m.wHeapBytes.With(worker).Set(int64(g.HeapBytes))
	m.wTasks.With(worker).Set(int64(g.TasksExecuted))
	m.wBusyNS.With(worker).Set(g.BusyNS)
}

// forgetWorker drops a departed worker's gauge series so the scrape stops
// advertising a stale snapshot.
func (m *SchedulerMetrics) forgetWorker(worker string) {
	m.wGoroutines.Delete(worker)
	m.wHeapBytes.Delete(worker)
	m.wTasks.Delete(worker)
	m.wBusyNS.Delete(worker)
}

// OutboxOverflows returns the overflow counter (exposed for tests).
func (m *SchedulerMetrics) OutboxOverflows() uint64 { return m.outboxOverflows.Value() }
