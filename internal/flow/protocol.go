// Package flow is the workflow-management engine of the reproduction: a
// from-scratch dataflow task system with the same architecture the paper
// deploys Dask in (Section 3.3):
//
//   - a Scheduler holding a task queue, started first, which writes a JSON
//     scheduler file advertising its address;
//   - Workers (the paper runs one per GPU across all Summit nodes) that
//     read the scheduler file, register over TCP, and then pull tasks in
//     dataflow fashion — each worker receives a new task the moment it
//     finishes the previous one, so the queue drains with no global
//     synchronization;
//   - a Client that submits the whole batch in one Map call and streams
//     completion records carrying per-task statistics (the scheduler's
//     enqueue stamp, start and end processing times, worker identity) to
//     an observer — the feed the paper's processing-times CSV is written
//     from (exec.TaskStats);
//   - read-only Monitors that subscribe to the scheduler's structured
//     event stream (internal/events): the full backlog first, then live
//     task transitions and worker membership changes, so a monitor
//     attaching mid-campaign reconstructs queue depth and per-worker
//     in-flight work with no cooperation from the submitting client.
//
// The wire protocol is pluggable per connection (Codec): the default is
// the original newline-delimited JSON over TCP, byte-identical to every
// earlier release; a length-prefixed binary framing (WireBinary) is
// negotiated by a one-line hello for dispatch-heavy fleets, and peers
// speaking different codecs interoperate freely on one scheduler. Only
// the standard library is used.
package flow

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/events"
)

// Task is one unit of work. Payload is opaque to the engine.
type Task struct {
	ID string `json:"id"`
	// Label is the stable, human-meaningful trace identity of the task (a
	// protein ID, a "target/m3" inference slot) — the same identity the
	// processing-times CSV keys its rows by. The engine schedules by ID
	// (unique per batch and client); the label only feeds the scheduler's
	// structured event stream, so a monitor and an event log name tasks
	// the way the submitting executor's trace does. Empty falls back to ID.
	Label string `json:"label,omitempty"`
	// Weight is used by scheduling policies (e.g. sequence length for the
	// paper's longest-first sort); the engine itself does not interpret it.
	Weight  float64         `json:"weight,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// EnqueuedNS is stamped by the scheduler (unix nanoseconds) when the
	// task enters its queue and travels with the assignment so the worker
	// can echo it in the Result — the queue-time half of the paper's
	// per-task processing-times telemetry. Unix nanos rather than
	// time.Time so an unstamped task (client submit, pre-telemetry peer)
	// really omits the field on the wire. Clients leave it zero.
	EnqueuedNS int64 `json:"enqueued_ns,omitempty"`
	// Attempt is stamped by the scheduler on redelivery: 0 on the first
	// assignment, then the number of times the task has been requeued
	// after a worker death. Workers may use it to adjust execution (the
	// paper reruns OOM-failed targets with more memory).
	Attempt int `json:"attempt,omitempty"`
	// EscalatePayload, when set by the submitter, replaces Payload the
	// first time the task is requeued after a worker death — the paper's
	// high-memory retry wave moved scheduler-side, so a task that killed
	// its worker is redelivered with escalated resources automatically.
	EscalatePayload json.RawMessage `json:"escalate_payload,omitempty"`
	// Campaign is the multi-tenant namespace of the task — the submitting
	// campaign it belongs to, as on the paper's shared Summit scheduler
	// where many submitters coexist on one worker fleet. The fair-share
	// queue policy round-robins handout across campaigns, and admission
	// quotas are charged per campaign. Usually inherited from the submit
	// frame's Campaign; a task-level value wins. Empty (the default)
	// keeps the wire byte-identical to earlier releases.
	Campaign string `json:"campaign,omitempty"`
}

// Result is the completion record of one task, including the timing fields
// the paper's CSV collects: worker identity, the scheduler's enqueue
// stamp, and the handler's start/end bracket.
type Result struct {
	TaskID     string          `json:"task_id"`
	WorkerID   string          `json:"worker_id"`
	EnqueuedNS int64           `json:"enqueued_ns,omitempty"`
	Start      time.Time       `json:"start"`
	End        time.Time       `json:"end"`
	Payload    json.RawMessage `json:"payload,omitempty"`
	Err        string          `json:"error,omitempty"`
}

// Duration returns the task processing time.
func (r *Result) Duration() time.Duration { return r.End.Sub(r.Start) }

// EnqueuedAt returns the scheduler's enqueue stamp as a time (zero when
// the stamp is absent — a pre-telemetry peer).
func (r *Result) EnqueuedAt() time.Time {
	if r.EnqueuedNS == 0 {
		return time.Time{}
	}
	return time.Unix(0, r.EnqueuedNS)
}

// QueueDuration returns the time the task waited between the scheduler's
// enqueue stamp and the worker picking it up (0 when the stamp is absent).
func (r *Result) QueueDuration() time.Duration {
	enq := r.EnqueuedAt()
	if enq.IsZero() || r.Start.Before(enq) {
		return 0
	}
	return r.Start.Sub(enq)
}

// Failed reports whether the task handler returned an error.
func (r *Result) Failed() bool { return r.Err != "" }

// message is the wire envelope.
type message struct {
	Type string `json:"type"`
	// register
	WorkerID string `json:"worker_id,omitempty"`
	Slots    int    `json:"slots,omitempty"`
	// MaxBatch, on a register frame, advertises the largest batched
	// handout (a msgTask frame carrying Tasks) the worker accepts. A
	// legacy peer omits it, and the scheduler falls back to the singular
	// single-task form for that worker regardless of its own -batch
	// setting — so an old worker in a batched fleet keeps draining tasks
	// instead of silently ignoring frames it cannot parse.
	MaxBatch int `json:"max_batch,omitempty"`
	// task assignment / submission
	Task  *Task  `json:"task,omitempty"`
	Tasks []Task `json:"tasks,omitempty"`
	// result: a single ack, or a batch when the worker received a batched
	// assignment (Scheduler.Batch > 1). The scheduler accepts either form;
	// results forwarded to clients always use the singular field, so a
	// batched fleet never changes what a submitting client reads.
	Result  *Result  `json:"result,omitempty"`
	Results []Result `json:"results,omitempty"`
	// event stream (scheduler → monitor)
	Event *events.Event `json:"event,omitempty"`
	// batch bookkeeping
	Count int `json:"count,omitempty"`
	// Campaign, on a submit frame, names the campaign every task in the
	// frame belongs to (tasks carrying their own Campaign win). Absent for
	// single-tenant submitters, keeping the classic wire byte-identical.
	Campaign string `json:"campaign,omitempty"`
	// Gauges, on a heartbeat frame, carries the worker's runtime snapshot
	// so the scheduler can expose per-worker occupancy. Introduced after
	// the frame layout froze, so it follows the append-last convention:
	// binary frames write it after Campaign, a legacy peer's frame simply
	// ends earlier, and the field decodes as nil — absent, never
	// zero-garbage (JSON gets the same via omitempty).
	Gauges *WorkerGauges `json:"gauges,omitempty"`
}

// WorkerGauges is the worker-side runtime snapshot a heartbeat carries:
// cheap process-level gauges sampled once per beat (runtime/metrics — no
// stop-the-world), plus the worker's cumulative task work, from which the
// scheduler derives per-worker occupancy the way the paper's Fig 2 plots it.
type WorkerGauges struct {
	// Goroutines is runtime.NumGoroutine at sampling time.
	Goroutines int `json:"goroutines"`
	// HeapBytes is the live heap (bytes of allocated, reachable objects).
	HeapBytes uint64 `json:"heap_bytes"`
	// TasksExecuted is the cumulative count of handler invocations.
	TasksExecuted uint64 `json:"tasks_executed"`
	// BusyNS is cumulative nanoseconds spent inside task handlers; the
	// delta between two beats over the beat interval is occupancy.
	BusyNS int64 `json:"busy_ns"`
}

const (
	msgRegister = "register"
	msgTask     = "task"
	msgResult   = "result"
	msgSubmit   = "submit"
	msgAccepted = "accepted"
	msgShutdown = "shutdown"
	// msgSubscribe turns a connection into a read-only monitor: the
	// scheduler replies with its full event backlog followed by the live
	// stream, one msgEvent frame per events.Event.
	msgSubscribe = "subscribe"
	msgEvent     = "event"
	// msgHeartbeat is a worker→scheduler liveness beacon carrying only
	// the worker ID, sent on an interval from a dedicated goroutine so a
	// long-running handler keeps the worker alive. A worker silent past
	// the scheduler's heartbeat deadline is declared dead (worker_lost)
	// and its in-flight task requeued.
	msgHeartbeat = "heartbeat"
)

// workerMaxBatch is the batched-handout capability this release's workers
// advertise at registration (message.MaxBatch). The task loop handles any
// frame size, so the value only has to exceed every plausible -batch
// setting; it is not a promise of per-frame memory.
const workerMaxBatch = 1 << 16

// SchedulerFile is the JSON document the scheduler writes so workers and
// clients can find it, mirroring Dask's scheduler-file mechanism on Summit.
type SchedulerFile struct {
	Address   string    `json:"address"`
	StartedAt time.Time `json:"started_at"`
	// HTTP is the admin endpoint (/metrics, /healthz, /debug/pprof/) when
	// the scheduler serves one (`sched -http`); empty otherwise. Legacy
	// readers ignore the extra key, and omitempty keeps the document
	// byte-identical when the endpoint is off.
	HTTP string `json:"http,omitempty"`
}

// ParseSchedulerFile decodes a scheduler-file document and validates that
// it advertises an address. Workers and clients use it to locate a
// standalone scheduler (`proteomectl sched -scheduler-file`).
func ParseSchedulerFile(data []byte) (SchedulerFile, error) {
	var sf SchedulerFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return SchedulerFile{}, fmt.Errorf("flow: parsing scheduler file: %w", err)
	}
	if sf.Address == "" {
		return SchedulerFile{}, fmt.Errorf("flow: scheduler file advertises no address")
	}
	return sf, nil
}
