package flow

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
)

// failOddHandler fails tasks whose payload carries an odd n.
func failOddHandler(task Task) (json.RawMessage, error) {
	var p struct{ N int }
	if err := json.Unmarshal(task.Payload, &p); err != nil {
		return nil, err
	}
	if p.N%2 == 1 {
		return nil, fmt.Errorf("odd task %d", p.N)
	}
	return task.Payload, nil
}

// eventsByType indexes a stream for assertions.
func eventsByType(evs []events.Event) map[events.Type][]events.Event {
	by := make(map[events.Type][]events.Event)
	for _, e := range evs {
		by[e.Type] = append(by[e.Type], e)
	}
	return by
}

// TestSchedulerEmitsTaskLifecycle: every task runs the full state
// machine — received, queued, assigned, running, done — with worker
// joins first, all stamped with non-decreasing monotonic times and
// consecutive sequence numbers.
func TestSchedulerEmitsTaskLifecycle(t *testing.T) {
	s, _, c := startCluster(t, 2, echoHandler)
	tasks := makeTasks(10)
	if _, err := c.Map(tasks, nil); err != nil {
		t.Fatal(err)
	}

	evs := s.Events().Snapshot()
	by := eventsByType(evs)
	if len(by[events.WorkerJoin]) != 2 {
		t.Errorf("worker_join events = %d, want 2", len(by[events.WorkerJoin]))
	}
	for _, ty := range []events.Type{events.TaskReceived, events.TaskQueued,
		events.TaskAssigned, events.TaskRunning, events.TaskDone} {
		if len(by[ty]) != len(tasks) {
			t.Errorf("%s events = %d, want %d", ty, len(by[ty]), len(tasks))
		}
	}
	if len(by[events.TaskFailed]) != 0 {
		t.Errorf("unexpected failed events: %+v", by[events.TaskFailed])
	}

	var lastSeq uint64
	var lastNS int64
	perTask := make(map[string]events.Type)
	order := map[events.Type]int{
		events.TaskReceived: 0, events.TaskQueued: 1, events.TaskAssigned: 2,
		events.TaskRunning: 3, events.TaskDone: 4,
	}
	for _, e := range evs {
		if e.Seq != lastSeq+1 {
			t.Fatalf("sequence gap: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.TimeNS < lastNS {
			t.Fatalf("monotonic stamp went backwards: %d after %d", e.TimeNS, lastNS)
		}
		lastNS = e.TimeNS
		if e.Type.TaskScoped() {
			if prev, seen := perTask[e.Task]; seen && order[e.Type] <= order[prev] {
				t.Fatalf("task %s transitioned %s after %s", e.Task, e.Type, prev)
			}
			perTask[e.Task] = e.Type
		}
	}
	for id, last := range perTask {
		if last != events.TaskDone {
			t.Errorf("task %s ended in state %s", id, last)
		}
	}

	// The stream replays offline: one busy interval per task, queue
	// drained, both workers observed.
	rep, err := events.ReplayEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Intervals) != len(tasks) || rep.Done != len(tasks) {
		t.Fatalf("replay: %d intervals, %d done, want %d", len(rep.Intervals), rep.Done, len(tasks))
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("replay workers = %v", rep.Workers)
	}
}

// TestSchedulerEventsUseLabels: the submitting executor's trace tags
// (Task.Label) name the tasks in the event stream; unlabeled tasks fall
// back to the wire ID.
func TestSchedulerEventsUseLabels(t *testing.T) {
	s, _, c := startCluster(t, 1, echoHandler)
	tasks := makeTasks(4)
	tasks[0].Label = "DVU_00001"
	tasks[1].Label = "DVU_00001/m3"
	if _, err := c.Map(tasks, nil); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range s.Events().Snapshot() {
		if e.Type == events.TaskDone {
			seen[e.Task] = true
		}
	}
	for _, want := range []string{"DVU_00001", "DVU_00001/m3", "t002", "t003"} {
		if !seen[want] {
			t.Errorf("done events missing task %q (saw %v)", want, seen)
		}
	}
	if seen["t000"] || seen["t001"] {
		t.Error("labeled tasks leaked their wire IDs into the event stream")
	}
}

// TestPlacementLogIncludesCompletions (the PlacementLog fix): the
// free-text log now records completion and failure too, so the log alone
// reconstructs busy intervals — not just placements.
func TestPlacementLogIncludesCompletions(t *testing.T) {
	var buf bytes.Buffer
	s := NewScheduler()
	s.PlacementLog = &buf
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	w := NewWorker("w00", failOddHandler)
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	if _, err := c.Map(makeTasks(4), nil); err != nil {
		t.Fatal(err)
	}
	// The placement log is written by an async sink; Close drains it
	// (idempotent — the cleanup's Close is a no-op after this).
	s.Close()
	log := buf.String()
	for _, want := range []string{
		"assign t000 -> w00",
		"done t000 <- w00",
		"assign t001 -> w00",
		"fail t001 <- w00: odd task 1",
		"done t002 <- w00",
		"fail t003 <- w00: odd task 3",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("placement log missing %q:\n%s", want, log)
		}
	}
	if strings.Count(log, "assign ") != 4 {
		t.Errorf("placement log has %d assign lines, want 4:\n%s", strings.Count(log, "assign "), log)
	}
}

// TestEventLogMatchesHub: the JSONL event log decodes to exactly the
// hub's history — the persisted artifact and the live stream are the
// same record.
func TestEventLogMatchesHub(t *testing.T) {
	var buf bytes.Buffer
	s := NewScheduler()
	s.EventLog = &buf
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	w := NewWorker("w00", echoHandler)
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.Map(makeTasks(6), nil); err != nil {
		t.Fatal(err)
	}
	// The event log is written by an async sink; a clean Close drains
	// every buffered event, which is exactly the guarantee under test:
	// the persisted log still matches the hub record byte for byte.
	s.Close()

	logged, err := events.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hist := s.Events().Snapshot()
	if len(logged) != len(hist) {
		t.Fatalf("log has %d events, hub has %d", len(logged), len(hist))
	}
	for i := range hist {
		if logged[i] != hist[i] {
			t.Fatalf("event %d differs: log %+v, hub %+v", i, logged[i], hist[i])
		}
	}
}

// TestMonitorBacklogThenLive: a monitor that attaches mid-campaign first
// observes the full backlog, then live events — the same sequence as the
// persisted record, with no client cooperation.
func TestMonitorBacklogThenLive(t *testing.T) {
	s, _, c := startCluster(t, 2, echoHandler)
	if _, err := c.Map(makeTasks(5), nil); err != nil {
		t.Fatal(err)
	}
	backlog := s.Events().Snapshot()

	m, err := ConnectMonitor(s.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.ReadTimeout = 10 * time.Second

	for i, want := range backlog {
		got, err := m.Next()
		if err != nil {
			t.Fatalf("backlog event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("backlog event %d = %+v, want %+v", i, got, want)
		}
	}

	// Live phase: a second batch streams to the attached monitor.
	late := makeTasks(3)
	for i := range late {
		late[i].ID = "late" + late[i].ID
	}
	if _, err := c.Map(late, nil); err != nil {
		t.Fatal(err)
	}
	liveDone := 0
	for liveDone < len(late) {
		e, err := m.Next()
		if err != nil {
			t.Fatalf("live stream: %v", err)
		}
		if e.Type == events.TaskDone && strings.HasPrefix(e.Task, "late") {
			liveDone++
		}
	}

	// Monitoring never perturbed the run: the full history still replays
	// cleanly and matches what the monitor saw so far.
	if _, err := events.ReplayEvents(s.Events().Snapshot()); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorDetachAndSchedulerClose: closing the monitor fails its
// Next; a second monitor outliving the scheduler gets an error once the
// backlog is drained.
func TestMonitorDetachAndSchedulerClose(t *testing.T) {
	s, _, c := startCluster(t, 1, echoHandler)
	if _, err := c.Map(makeTasks(2), nil); err != nil {
		t.Fatal(err)
	}
	addr := s.ln.Addr().String()

	m1, err := ConnectMonitor(addr)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()
	m1.Close() // idempotent
	if _, err := m1.Next(); err == nil {
		t.Fatal("Next on a closed monitor succeeded")
	}

	m2, err := ConnectMonitor(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.Close)
	m2.ReadTimeout = 10 * time.Second
	want := s.Events().Len()
	for i := 0; i < want; i++ {
		if _, err := m2.Next(); err != nil {
			t.Fatalf("draining backlog (%d/%d): %v", i, want, err)
		}
	}
	s.Close()
	if _, err := m2.Next(); err == nil {
		t.Fatal("Next after scheduler close succeeded")
	}
}

// TestMonitorDetachReleasesConn: a monitor that disconnects from an
// idle scheduler (no events flowing) must be reaped promptly — the
// peer-close watchdog cancels the cursor instead of leaking the pump
// goroutine and socket until the next event.
func TestMonitorDetachReleasesConn(t *testing.T) {
	s, _, c := startCluster(t, 1, echoHandler)
	if _, err := c.Map(makeTasks(2), nil); err != nil {
		t.Fatal(err)
	}
	connCount := func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.conns)
	}
	base := connCount()

	m, err := ConnectMonitor(s.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for connCount() != base+1 {
		if time.Now().After(deadline) {
			t.Fatalf("monitor conn never tracked: %d conns, base %d", connCount(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Detach with no further events: the scheduler must release the
	// connection without waiting for the next Emit.
	m.Close()
	for connCount() != base {
		if time.Now().After(deadline) {
			t.Fatalf("detached monitor conn still tracked: %d conns, base %d", connCount(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConnectMonitorFile mirrors the worker/client scheduler-file path.
func TestConnectMonitorFile(t *testing.T) {
	s, _, c := startCluster(t, 1, echoHandler)
	path := t.TempDir() + "/sched.json"
	if err := s.WriteSchedulerFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Map(makeTasks(1), nil); err != nil {
		t.Fatal(err)
	}
	m, err := ConnectMonitorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.ReadTimeout = 10 * time.Second
	e, err := m.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 1 {
		t.Fatalf("first event seq = %d, want 1", e.Seq)
	}
	if _, err := ConnectMonitorFile(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("ConnectMonitorFile with missing file succeeded")
	}
}
