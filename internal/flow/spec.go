package flow

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// JobSpec is the serializable form of one unit of work: the name of a
// registered stage kernel plus its JSON-encoded arguments. Closures cannot
// cross process boundaries, so a multi-process deployment ships specs — a
// worker in another OS process (or on another host) resolves the kernel
// name against its local Registry and runs it. A spec travels as the
// opaque Payload of a Task.
type JobSpec struct {
	Kernel string          `json:"kernel"`
	Args   json.RawMessage `json:"args,omitempty"`
}

// KernelFunc is the executable body of a named job: a pure function of its
// JSON arguments. Kernels run on worker goroutines and may be invoked
// concurrently, so they must be safe for concurrent use.
type KernelFunc func(args json.RawMessage) (json.RawMessage, error)

// Registry maps kernel names to their bodies. It is safe for concurrent
// use; registration normally happens once at worker startup.
type Registry struct {
	mu      sync.RWMutex
	kernels map[string]KernelFunc
}

// NewRegistry creates an empty kernel registry.
func NewRegistry() *Registry {
	return &Registry{kernels: make(map[string]KernelFunc)}
}

// Register adds a kernel under a name. Empty names, nil funcs, and
// duplicate registrations are errors.
func (r *Registry) Register(name string, fn KernelFunc) error {
	if name == "" {
		return fmt.Errorf("flow: kernel name must be non-empty")
	}
	if fn == nil {
		return fmt.Errorf("flow: kernel %q has nil func", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.kernels[name]; dup {
		return fmt.Errorf("flow: kernel %q already registered", name)
	}
	r.kernels[name] = fn
	return nil
}

// Lookup returns the kernel registered under name.
func (r *Registry) Lookup(name string) (KernelFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.kernels[name]
	return fn, ok
}

// Names returns the registered kernel names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.kernels))
	for n := range r.kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run decodes a task payload as a JobSpec and executes the named kernel.
func (r *Registry) Run(payload json.RawMessage) (json.RawMessage, error) {
	spec, err := DecodeSpec(payload)
	if err != nil {
		return nil, err
	}
	fn, ok := r.Lookup(spec.Kernel)
	if !ok {
		return nil, fmt.Errorf("flow: unknown kernel %q (registered: %v)", spec.Kernel, r.Names())
	}
	return fn(spec.Args)
}

// Handler adapts the registry to a worker Handler: every received task is
// expected to carry a JobSpec payload. This is the handler a standalone
// `proteomectl worker` process serves with.
func (r *Registry) Handler() Handler {
	return func(t Task) (json.RawMessage, error) {
		return r.Run(t.Payload)
	}
}

// defaultRegistry is the process-wide registry remote workers serve from.
var defaultRegistry = NewRegistry()

// Register adds a kernel to the process-wide default registry.
func Register(name string, fn KernelFunc) error {
	return defaultRegistry.Register(name, fn)
}

// DefaultRegistry returns the process-wide registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// SpecHandler returns a worker Handler dispatching against the default
// registry.
func SpecHandler() Handler { return defaultRegistry.Handler() }

// RunSpec executes a spec payload against the default registry.
func RunSpec(payload json.RawMessage) (json.RawMessage, error) {
	return defaultRegistry.Run(payload)
}

// EncodeSpec marshals a spec into a task payload.
func EncodeSpec(spec JobSpec) (json.RawMessage, error) {
	if spec.Kernel == "" {
		return nil, fmt.Errorf("flow: spec has empty kernel name")
	}
	return json.Marshal(spec)
}

// DecodeSpec parses a task payload as a JobSpec. Empty payloads, malformed
// JSON, and specs without a kernel name are errors.
func DecodeSpec(payload json.RawMessage) (JobSpec, error) {
	if len(payload) == 0 {
		return JobSpec{}, fmt.Errorf("flow: task has no spec payload")
	}
	var spec JobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		return JobSpec{}, fmt.Errorf("flow: decoding job spec: %w", err)
	}
	if spec.Kernel == "" {
		return JobSpec{}, fmt.Errorf("flow: job spec has empty kernel name")
	}
	return spec, nil
}

// NewSpecTask builds a Task carrying a named-job spec, marshaling args to
// JSON.
func NewSpecTask(id string, weight float64, kernel string, args any) (Task, error) {
	var raw json.RawMessage
	if args != nil {
		var err error
		raw, err = json.Marshal(args)
		if err != nil {
			return Task{}, fmt.Errorf("flow: marshaling args for kernel %q: %w", kernel, err)
		}
	}
	payload, err := EncodeSpec(JobSpec{Kernel: kernel, Args: raw})
	if err != nil {
		return Task{}, err
	}
	return Task{ID: id, Weight: weight, Payload: payload}, nil
}
