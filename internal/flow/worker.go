package flow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// Handler executes one task payload and returns a result payload. Handlers
// run on the worker's goroutine; the engine runs one task at a time per
// worker (one worker per GPU, as in the paper).
type Handler func(task Task) (json.RawMessage, error)

// Worker is one dataflow worker. The paper starts one per GPU on every
// Summit node used (6 per node, up to 6,000 total).
type Worker struct {
	ID      string
	handler Handler

	// ReadTimeout, when set before Connect, bounds how long the worker
	// waits for the next scheduler message. An idle worker legitimately
	// waits forever, so the default (zero) disables it; set it in tests or
	// supervised deployments where a wedged scheduler should fail the
	// worker fast instead of leaving it hanging.
	ReadTimeout time.Duration

	conn net.Conn
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// Processed counts completed tasks (for tests and stats).
	processed int
}

// NewWorker creates a worker with the given identity and task handler.
func NewWorker(id string, h Handler) *Worker {
	return &Worker{ID: id, handler: h}
}

// ConnectFile reads a scheduler file (written by
// Scheduler.WriteSchedulerFile) and connects to the advertised address —
// the registration mechanism of Section 3.3 step 2.
func (w *Worker) ConnectFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("flow: reading scheduler file: %w", err)
	}
	sf, err := ParseSchedulerFile(data)
	if err != nil {
		return err
	}
	return w.Connect(sf.Address)
}

// Connect registers with the scheduler (dial bounded by dialTimeout) and
// starts the task loop in the background.
func (w *Worker) Connect(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return fmt.Errorf("flow: worker dial: %w", err)
	}
	w.conn = conn
	enc := json.NewEncoder(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(dialTimeout))
	if err := enc.Encode(message{Type: msgRegister, WorkerID: w.ID, Slots: 1}); err != nil {
		conn.Close()
		return fmt.Errorf("flow: worker register: %w", err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	w.wg.Add(1)
	go w.loop(enc)
	return nil
}

func (w *Worker) loop(enc *json.Encoder) {
	defer w.wg.Done()
	// The loop can now exit on a healthy connection (read/write deadline
	// fired); close it so the scheduler observes workerGone and requeues
	// any in-flight task instead of assigning into a dead worker.
	defer w.conn.Close()
	dec := json.NewDecoder(bufio.NewReader(w.conn))
	for {
		if w.ReadTimeout > 0 {
			_ = w.conn.SetReadDeadline(time.Now().Add(w.ReadTimeout))
		}
		var m message
		if err := dec.Decode(&m); err != nil {
			return
		}
		if m.Type != msgTask || m.Task == nil {
			continue
		}
		start := time.Now()
		payload, err := w.handler(*m.Task)
		res := Result{
			TaskID:     m.Task.ID,
			WorkerID:   w.ID,
			EnqueuedNS: m.Task.EnqueuedNS,
			Start:      start,
			End:        time.Now(),
			Payload:    payload,
		}
		if err != nil {
			res.Err = err.Error()
		}
		w.mu.Lock()
		w.processed++
		w.mu.Unlock()
		// Bound the result send so a scheduler that stopped reading cannot
		// wedge the worker goroutine forever.
		_ = w.conn.SetWriteDeadline(time.Now().Add(resultWriteTimeout))
		if err := enc.Encode(message{Type: msgResult, Result: &res}); err != nil {
			return
		}
		_ = w.conn.SetWriteDeadline(time.Time{})
	}
}

// Wait blocks until the worker's task loop exits — that is, until the
// scheduler connection closes (scheduler shutdown, network failure, or
// Close). Standalone worker processes use it to terminate when their
// scheduler goes away.
func (w *Worker) Wait() { w.wg.Wait() }

// Processed returns the number of tasks this worker has completed.
func (w *Worker) Processed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.processed
}

// Close disconnects the worker. An in-flight task finishes but its result
// may be lost; the scheduler requeues it.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	if w.conn != nil {
		w.conn.Close()
	}
	w.wg.Wait()
}
