package flow

import (
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	rtmetrics "runtime/metrics"
	"sync"
	"time"
)

// Handler executes one task payload and returns a result payload. Handlers
// run on the worker's goroutine; the engine runs one task at a time per
// worker (one worker per GPU, as in the paper).
type Handler func(task Task) (json.RawMessage, error)

// Worker is one dataflow worker. The paper starts one per GPU on every
// Summit node used (6 per node, up to 6,000 total).
type Worker struct {
	ID      string
	handler Handler

	// ReadTimeout, when set before Connect, bounds how long the worker
	// waits for the next scheduler message. An idle worker legitimately
	// waits forever, so the default (zero) disables it; set it in tests or
	// supervised deployments where a wedged scheduler should fail the
	// worker fast instead of leaving it hanging.
	ReadTimeout time.Duration

	// DialBudget, when set before Connect/ConnectFile, keeps retrying the
	// scheduler (and, for ConnectFile, a missing scheduler file) with
	// backoff for this long — so a worker started before its scheduler
	// converges instead of exiting. Zero means one attempt. Worker.Dial
	// takes the budget from its DialOptions instead.
	DialBudget time.Duration

	// HeartbeatInterval, when set before Connect, sends a heartbeat frame
	// to the scheduler on this interval from a dedicated goroutine, so a
	// worker stays alive through a long-running handler but a wedged
	// process or dead network path is detected by the scheduler's
	// heartbeat deadline. Zero disables heartbeats.
	HeartbeatInterval time.Duration

	conn  net.Conn
	codec Codec
	wg    sync.WaitGroup

	// writeMu serializes frames on the connection: the task loop's result
	// sends and the heartbeat goroutine share one codec, whose encode half
	// is not safe for concurrent use.
	writeMu sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once

	mu     sync.Mutex
	closed bool

	// Processed counts completed tasks (for tests and stats).
	processed int
	// busyNS accumulates wall time spent inside the handler; heartbeats
	// carry the running total so the scheduler can derive occupancy.
	busyNS time.Duration
}

// NewWorker creates a worker with the given identity and task handler.
func NewWorker(id string, h Handler) *Worker {
	return &Worker{ID: id, handler: h}
}

// Dial registers with the scheduler through the unified dial options —
// address or scheduler file, retry budget, and wire codec — and starts
// the task loop in the background.
func (w *Worker) Dial(opts DialOptions) error {
	conn, err := Dial(opts)
	if err != nil {
		return fmt.Errorf("flow: worker dial: %w", err)
	}
	codec, err := dialCodec(conn, opts.Codec)
	if err != nil {
		conn.Close()
		return err
	}
	w.conn = conn
	w.codec = codec
	w.stop = make(chan struct{})
	// The codec hello (if any) and the registration travel in one flush.
	_ = conn.SetWriteDeadline(time.Now().Add(dialTimeout))
	err = codec.Encode(&message{Type: msgRegister, WorkerID: w.ID, Slots: 1, MaxBatch: workerMaxBatch})
	if err == nil {
		err = codec.Flush()
	}
	if err != nil {
		conn.Close()
		return fmt.Errorf("flow: worker register: %w", err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	if w.HeartbeatInterval > 0 {
		w.wg.Add(1)
		go w.heartbeatLoop()
	}
	w.wg.Add(1)
	go w.loop()
	return nil
}

// ConnectFile reads a scheduler file (written by
// Scheduler.WriteSchedulerFile) and connects to the advertised address —
// the registration mechanism of Section 3.3 step 2, on the default JSON
// wire. With a DialBudget set, a missing or mid-write file and an
// unreachable scheduler are both retried with backoff inside one shared
// budget, so the worker may be started before the scheduler exists at all.
func (w *Worker) ConnectFile(path string) error {
	return w.Dial(DialOptions{SchedulerFile: path, Retry: w.DialBudget})
}

// Connect registers with the scheduler (dial bounded by dialTimeout,
// retried within DialBudget when set) on the default JSON wire and starts
// the task loop in the background.
func (w *Worker) Connect(addr string) error {
	return w.Dial(DialOptions{Addr: addr, Retry: w.DialBudget})
}

// send writes one frame under the connection write lock with a bounded
// deadline, so heartbeats and results never interleave bytes and a
// scheduler that stopped reading cannot wedge the sender forever.
func (w *Worker) send(m *message) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	_ = w.conn.SetWriteDeadline(time.Now().Add(resultWriteTimeout))
	err := w.codec.Encode(m)
	if err == nil {
		err = w.codec.Flush()
	}
	_ = w.conn.SetWriteDeadline(time.Time{})
	return err
}

// heartbeatLoop sends liveness beacons on the configured interval. It
// runs on its own goroutine deliberately: a handler busy on a long task
// keeps beating (long tasks are healthy), while a frozen process or dead
// network path stops the beacons and trips the scheduler's deadline.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	tick := time.NewTicker(w.HeartbeatInterval)
	defer tick.Stop()
	// One runtime/metrics sample slot, reused every beat. Reading it is a
	// cheap atomic snapshot — unlike runtime.ReadMemStats there is no
	// stop-the-world, so beating every second from hundreds of in-process
	// bench workers costs nothing measurable.
	heap := []rtmetrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			if err := w.send(&message{Type: msgHeartbeat, WorkerID: w.ID, Gauges: w.collectGauges(heap)}); err != nil {
				return
			}
		}
	}
}

// collectGauges samples the runtime snapshot a heartbeat carries.
func (w *Worker) collectGauges(heap []rtmetrics.Sample) *WorkerGauges {
	rtmetrics.Read(heap)
	g := &WorkerGauges{Goroutines: runtime.NumGoroutine()}
	if heap[0].Value.Kind() == rtmetrics.KindUint64 {
		g.HeapBytes = heap[0].Value.Uint64()
	}
	w.mu.Lock()
	g.TasksExecuted = uint64(w.processed)
	g.BusyNS = int64(w.busyNS)
	w.mu.Unlock()
	return g
}

// stopHeartbeat signals the heartbeat goroutine to exit. Idempotent.
func (w *Worker) stopHeartbeat() {
	if w.stop != nil {
		w.stopOnce.Do(func() { close(w.stop) })
	}
}

func (w *Worker) loop() {
	defer w.wg.Done()
	// The loop can now exit on a healthy connection (read/write deadline
	// fired); close it so the scheduler observes workerGone and requeues
	// any in-flight task instead of assigning into a dead worker.
	defer w.conn.Close()
	defer w.stopHeartbeat()
	for {
		if w.ReadTimeout > 0 {
			_ = w.conn.SetReadDeadline(time.Now().Add(w.ReadTimeout))
		}
		var m message
		if err := w.codec.Decode(&m); err != nil {
			return
		}
		if m.Type != msgTask {
			continue
		}
		// A frame carries either one task (the singular legacy form) or a
		// batch (Scheduler.Batch > 1). The whole frame is acked the same
		// way it arrived: one Result, or one Results frame — so a batched
		// handout costs one write syscall per frame on both directions.
		single := m.Task != nil && len(m.Tasks) == 0
		var tasks []Task
		if single {
			tasks = []Task{*m.Task}
		} else {
			tasks = m.Tasks
		}
		if len(tasks) == 0 {
			continue
		}
		results := make([]Result, 0, len(tasks))
		var busy time.Duration
		for _, t := range tasks {
			start := time.Now()
			payload, err := w.handler(t)
			res := Result{
				TaskID:     t.ID,
				WorkerID:   w.ID,
				EnqueuedNS: t.EnqueuedNS,
				Start:      start,
				End:        time.Now(),
				Payload:    payload,
			}
			if err != nil {
				res.Err = err.Error()
			}
			busy += res.End.Sub(res.Start)
			results = append(results, res)
		}
		w.mu.Lock()
		w.processed += len(results)
		w.busyNS += busy
		w.mu.Unlock()
		var out message
		if single {
			out = message{Type: msgResult, Result: &results[0]}
		} else {
			out = message{Type: msgResult, Results: results}
		}
		if err := w.send(&out); err != nil {
			return
		}
	}
}

// Wait blocks until the worker's task loop exits — that is, until the
// scheduler connection closes (scheduler shutdown, network failure, or
// Close). Standalone worker processes use it to terminate when their
// scheduler goes away.
func (w *Worker) Wait() { w.wg.Wait() }

// Processed returns the number of tasks this worker has completed.
func (w *Worker) Processed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.processed
}

// Close disconnects the worker. An in-flight task finishes but its result
// may be lost; the scheduler requeues it.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.stopHeartbeat()
	if w.conn != nil {
		w.conn.Close()
	}
	w.wg.Wait()
}
