package flow

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
)

// scrape renders one /metrics-shaped snapshot of the scheduler's registry.
func scrape(t *testing.T, m *SchedulerMetrics) string {
	t.Helper()
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// metricValue extracts the value of an exact series line ("name{labels}")
// from a scrape, failing when the series is absent.
func metricValue(t *testing.T, scrape, series string) string {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest
		}
	}
	t.Fatalf("series %q not in scrape:\n%s", series, scrape)
	return ""
}

func TestSchedulerMetricsLiveCluster(t *testing.T) {
	s := NewScheduler()
	s.Metrics = NewSchedulerMetrics(nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var workers []*Worker
	for i := 0; i < 2; i++ {
		w := NewWorker(fmt.Sprintf("w%d", i), echoHandler)
		w.HeartbeatInterval = 20 * time.Millisecond
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		workers = append(workers, w)
	}

	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.Campaign = "dvu-pilot"

	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{ID: fmt.Sprintf("t%d", i), Label: fmt.Sprintf("t%d", i)}
	}
	if _, err := c.Map(tasks, nil); err != nil {
		t.Fatal(err)
	}

	out := scrape(t, s.Metrics)
	for series, want := range map[string]string{
		`flow_tasks_total{event="received",campaign="dvu-pilot"}`: "8",
		`flow_tasks_total{event="done",campaign="dvu-pilot"}`:     "8",
		`flow_tasks_total{event="failed",campaign="dvu-pilot"}`:   "0",
		`flow_worker_events_total{event="worker_join"}`:           "2",
		"flow_workers_connected":                                  "2",
		"flow_queue_depth":                                        "0",
		"flow_tasks_running":                                      "0",
		`flow_campaign_queued{campaign="dvu-pilot"}`:              "0",
		`flow_campaign_running{campaign="dvu-pilot"}`:             "0",
		"flow_task_seconds_count":                                 "8",
		"flow_async_sink_dropped_total":                           "0",
		"flow_outbox_overflows_total":                             "0",
	} {
		if got := metricValue(t, out, series); got != want {
			t.Errorf("%s = %s, want %s", series, got, want)
		}
	}

	// Heartbeats carry worker runtime gauges; wait for one beat per worker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out = scrape(t, s.Metrics)
		if strings.Contains(out, `flow_worker_goroutines{worker="w0"}`) &&
			strings.Contains(out, `flow_worker_goroutines{worker="w1"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker gauges never appeared:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Each worker ran tasks, so its cumulative busy time and task count
	// must be visible once a post-completion heartbeat lands.
	for {
		out = scrape(t, s.Metrics)
		total := 0
		for _, id := range []string{"w0", "w1"} {
			if !strings.Contains(out, `flow_worker_tasks_executed{worker="`+id+`"}`) {
				total = -1
				break
			}
			var n int
			fmt.Sscanf(metricValue(t, out, `flow_worker_tasks_executed{worker="`+id+`"}`), "%d", &n)
			total += n
		}
		if total == 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker task gauges never reached 8 (have %d):\n%s", total, out)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A departing worker's gauge series disappear rather than freeze.
	workers[0].Close()
	waitForEvent(t, s, events.WorkerLeave, 5*time.Second)
	for {
		out = scrape(t, s.Metrics)
		if !strings.Contains(out, `flow_worker_goroutines{worker="w0"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("departed worker's gauges still scraped:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := metricValue(t, out, "flow_workers_connected"); got != "1" {
		t.Errorf("flow_workers_connected = %s after leave, want 1", got)
	}
}

// TestMetricsMixedFleetLegacyHeartbeat pins the interop contract: a legacy
// worker that beats without gauges (the pre-extension frame, both codecs'
// JSON form here) must produce NO worker gauge series — absent, not zero —
// while a current worker's series appear alongside it.
func TestMetricsMixedFleetLegacyHeartbeat(t *testing.T) {
	s := NewScheduler()
	s.Metrics = NewSchedulerMetrics(nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Legacy worker: raw JSON frames with no gauges key at all.
	rw := dialRawWorker(t, addr, "w-legacy")
	t.Cleanup(func() { rw.conn.Close() })
	beat := func() {
		if err := rw.enc.Encode(message{Type: msgHeartbeat, WorkerID: "w-legacy"}); err != nil {
			t.Fatalf("legacy heartbeat: %v", err)
		}
	}
	beat()

	// Current worker beside it.
	w := NewWorker("w-new", echoHandler)
	w.HeartbeatInterval = 20 * time.Millisecond
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	deadline := time.Now().Add(5 * time.Second)
	var out string
	for {
		beat()
		out = scrape(t, s.Metrics)
		if strings.Contains(out, `flow_worker_goroutines{worker="w-new"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("modern worker's gauges never appeared:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if strings.Contains(out, `worker="w-legacy"`) {
		t.Fatalf("legacy worker grew gauge series from bare heartbeats:\n%s", out)
	}
	if got := metricValue(t, out, "flow_workers_connected"); got != "2" {
		t.Errorf("flow_workers_connected = %s, want 2 (legacy worker still counted)", got)
	}
}

// TestMetricsObserveLifecycleRules feeds the adapter a synthetic stream and
// checks the Tracker-mirroring counting rules that a live cluster cannot
// deterministically produce: requeues, drops, quarantines, truncation.
func TestMetricsObserveLifecycleRules(t *testing.T) {
	m := NewSchedulerMetrics(nil)
	obs := func(typ events.Type, task string, attempt int) {
		m.Observe(events.Event{Type: typ, Task: task, Campaign: "c", Attempt: attempt, Worker: "w1"})
	}
	obs(events.TaskReceived, "a", 0)
	obs(events.TaskQueued, "a", 0)
	obs(events.TaskAssigned, "a", 0)
	obs(events.TaskRunning, "a", 0)
	// Worker dies: requeue with attempt 1, reassign, then quarantine.
	obs(events.TaskQueued, "a", 1)
	obs(events.TaskAssigned, "a", 0)
	obs(events.TaskFailed, "a", 2)
	obs(events.TaskQuarantined, "a", 2)
	// A second task is received, queued, then dropped before assignment.
	obs(events.TaskReceived, "b", 0)
	obs(events.TaskQueued, "b", 0)
	obs(events.TaskDropped, "b", 0)
	m.Observe(events.Event{Type: events.Truncated, Err: "3 events evicted"})

	out := scrape(t, m)
	for series, want := range map[string]string{
		`flow_tasks_total{event="received",campaign="c"}`:    "2",
		`flow_tasks_total{event="queued",campaign="c"}`:      "3",
		`flow_tasks_total{event="assigned",campaign="c"}`:    "2",
		`flow_tasks_total{event="failed",campaign="c"}`:      "1",
		`flow_tasks_total{event="dropped",campaign="c"}`:     "1",
		`flow_tasks_total{event="quarantined",campaign="c"}`: "1",
		"flow_retries_total":                                 "1",
		"flow_truncated_events_total":                        "1",
		"flow_queue_depth":                                   "0",
		"flow_tasks_running":                                 "0",
		`flow_campaign_queued{campaign="c"}`:                 "0",
		`flow_campaign_running{campaign="c"}`:                "0",
		"flow_task_seconds_count":                            "1",
	} {
		if got := metricValue(t, out, series); got != want {
			t.Errorf("%s = %s, want %s", series, got, want)
		}
	}
}

// TestAsyncSinkDroppedCounter surfaces events.AsyncSink's drop count as a
// scrape-time counter (the satellite contract): a sink wedged past its
// buffer drops, and the metric reads the sink's own tally.
func TestAsyncSinkDroppedCounter(t *testing.T) {
	hub := events.NewHub()
	defer hub.Close()
	block := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	defer release()
	sink := hub.AddAsyncSink(func(events.Event) { <-block }, 2)

	m := NewSchedulerMetrics(nil)
	m.AddDropSource(sink.Dropped)

	if got := metricValue(t, scrape(t, m), "flow_async_sink_dropped_total"); got != "0" {
		t.Fatalf("drop counter = %s before overload, want 0", got)
	}
	// One event wedges the writer; the buffer holds 2; everything beyond
	// must drop.
	for i := 0; i < 10; i++ {
		hub.Emit(events.Event{Type: events.TaskReceived, Task: fmt.Sprintf("t%d", i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("async sink never dropped under overload")
		}
		time.Sleep(time.Millisecond)
	}
	want := fmt.Sprintf("%d", sink.Dropped())
	if got := metricValue(t, scrape(t, m), "flow_async_sink_dropped_total"); got != want {
		t.Fatalf("drop counter = %s, want %s (the sink's own tally)", got, want)
	}
	release()
}

func TestSchedulerHealthz(t *testing.T) {
	s := NewScheduler()
	if s.Healthy() {
		t.Fatal("unstarted scheduler reports healthy")
	}
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if !s.Healthy() {
		t.Fatal("started scheduler reports unhealthy")
	}
	s.Close()
	if s.Healthy() {
		t.Fatal("closed scheduler reports healthy")
	}
}

// TestOutboxOverflowCounter: a peer that never drains overflows its outbox;
// the overflow — which never reaches the event stream — must land on the
// counter.
func TestOutboxOverflowCounter(t *testing.T) {
	s := NewScheduler()
	s.Metrics = NewSchedulerMetrics(nil)
	s.OutboxDepth = 1
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// A net.Pipe peer never reads: the writer goroutine blocks in its
	// first write, the queue (depth 1) fills, and the next enqueue
	// overflows.
	us, them := net.Pipe()
	t.Cleanup(func() { us.Close(); them.Close() })
	ob := s.newOutbox(them, newJSONCodec(bufio.NewReader(them), bufio.NewWriter(them)), nil)
	defer ob.shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := ob.enqueue(&message{Type: msgEvent})
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("outbox never overflowed")
		}
		time.Sleep(time.Millisecond)
	}
	if n := s.Metrics.OutboxOverflows(); n != 1 {
		t.Fatalf("flow_outbox_overflows_total = %d, want 1", n)
	}
}
