package flow

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// wedgedListener accepts connections and then never reads or writes — the
// pathological scheduler the deadline hardening is for.
func wedgedListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Drain nothing, answer nothing: the peer's deadlines must fire.
		}
	}()
	return ln.Addr().String()
}

// TestClientMapFailsFastOnWedgedScheduler is the CI-flakiness guard: a
// scheduler that accepts the connection but never answers must surface as
// a timeout error within the progress deadline, not hang Map until the
// test binary times out.
func TestClientMapFailsFastOnWedgedScheduler(t *testing.T) {
	addr := wedgedListener(t)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ResultTimeout != DefaultResultTimeout {
		t.Fatalf("new client ResultTimeout = %v, want %v", c.ResultTimeout, DefaultResultTimeout)
	}
	c.ResultTimeout = 150 * time.Millisecond

	start := time.Now()
	_, err = c.Map(makeTasks(3), nil)
	if err == nil {
		t.Fatal("Map against a wedged scheduler must fail")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("error = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Map took %v to fail; deadline did not fire fast", elapsed)
	}
}

// TestWorkerReadTimeoutUnblocksLoop: a worker with a read deadline pointed
// at a scheduler that never assigns work exits its loop instead of
// blocking Close forever.
func TestWorkerReadTimeoutUnblocksLoop(t *testing.T) {
	addr := wedgedListener(t)
	w := NewWorker("deadlined", echoHandler)
	w.ReadTimeout = 100 * time.Millisecond
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		w.Close() // waits for the loop, which only exits via the deadline
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker loop did not exit on read timeout")
	}
}

func TestMapObserverSeesHandlerErrors(t *testing.T) {
	h := func(task Task) (json.RawMessage, error) {
		if task.ID == "t001" {
			return nil, fmt.Errorf("kaboom")
		}
		return nil, nil
	}
	_, _, c := startCluster(t, 2, h)
	errs := map[string]string{}
	if _, err := c.Map(makeTasks(4), func(r *Result) {
		errs[r.TaskID] = r.Err
	}); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 4 {
		t.Fatalf("observer saw %d results, want 4", len(errs))
	}
	for id, msg := range errs {
		if id == "t001" {
			if !strings.Contains(msg, "kaboom") {
				t.Errorf("observed error for t001 = %q, want the handler error", msg)
			}
		} else if msg != "" {
			t.Errorf("task %s has spurious error %q", id, msg)
		}
	}
}

// TestIdleWorkerDisconnectReschedules covers the scheduler's free-list
// removal and send-failure requeue branches: a worker that registers and
// dies while idle must not strand the queue — a later worker drains it.
func TestIdleWorkerDisconnectReschedules(t *testing.T) {
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	ghost := NewWorker("ghost", echoHandler)
	if err := ghost.Connect(addr); err != nil {
		t.Fatal(err)
	}
	ghost.Close() // dies idle: scheduler must drop it from the free list

	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	done := make(chan error, 1)
	var results []Result
	go func() {
		var mapErr error
		results, mapErr = c.Map(makeTasks(6), nil)
		done <- mapErr
	}()

	// Whether the scheduler saw the disconnect before or after assigning
	// to the ghost, the live worker must end up with every task.
	time.Sleep(20 * time.Millisecond)
	live := NewWorker("live", echoHandler)
	if err := live.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Close)

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch did not complete after idle-worker disconnect")
	}
	if len(results) != 6 {
		t.Fatalf("results = %d, want 6", len(results))
	}
	for _, r := range results {
		if r.WorkerID != "live" {
			t.Errorf("task %s ran on %q, want the live worker", r.TaskID, r.WorkerID)
		}
	}
}

// TestClientDisconnectOrphansItsTasks covers the clientGone branches: a
// client that vanishes mid-batch must have its queued tasks dropped and
// its in-flight tasks orphaned without wedging the scheduler for the next
// client.
func TestClientDisconnectOrphansItsTasks(t *testing.T) {
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	slow := func(task Task) (json.RawMessage, error) {
		time.Sleep(5 * time.Millisecond)
		return nil, nil
	}
	w := NewWorker("only", slow)
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	// The doomed client submits a long batch and disconnects while the
	// single slow worker is still chewing on it.
	doomed, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	go doomed.Map(makeTasks(50), nil) //nolint:errcheck // the disconnect error is the point
	time.Sleep(15 * time.Millisecond)
	doomed.Close()

	// A fresh client's batch must still complete: the orphaned queue was
	// dropped, the orphaned in-flight result discarded, the worker freed.
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.ResultTimeout = 10 * time.Second
	tasks := makeTasks(5)
	for i := range tasks {
		tasks[i].ID = "fresh-" + tasks[i].ID
	}
	results, err := c.Map(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("fresh batch results = %d, want 5", len(results))
	}
	// The orphaned batch must not have survived: the worker processed the
	// fresh tasks plus at most the few in flight before the disconnect.
	if p := w.Processed(); p >= 55 {
		t.Errorf("worker processed %d tasks; orphaned queue was not dropped", p)
	}
}
