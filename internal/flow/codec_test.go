package flow

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
)

// fullMessage builds an envelope with every field populated, so a
// round-trip exercises every branch of the binary layout. Times are
// constructed with time.Unix so the encoded and decoded representations
// compare equal with reflect.DeepEqual.
func fullMessage() *message {
	start := time.Unix(1700000000, 123456789)
	return &message{
		Type:     msgResult,
		WorkerID: "w1",
		Slots:    3,
		MaxBatch: 16,
		Task: &Task{
			ID: "t1", Label: "fold", Weight: 2.5,
			Payload: json.RawMessage(`{"a":1}`), EnqueuedNS: 42, Attempt: 1,
			EscalatePayload: json.RawMessage(`{"full":true}`),
			Campaign:        "dvu-full",
		},
		Tasks: []Task{
			{ID: "t2", Weight: -0.25, Campaign: "rru-pilot"},
			{ID: "t3", Label: "relax", Payload: json.RawMessage(`"x"`)},
		},
		Result: &Result{
			TaskID: "t1", WorkerID: "w1", EnqueuedNS: 42,
			Start: start, End: start.Add(time.Second),
			Payload: json.RawMessage(`"ok"`), Err: "boom",
		},
		Results: []Result{
			{TaskID: "t2", WorkerID: "w1", Start: start, End: start},
		},
		Event: &events.Event{
			Seq: 7, TimeNS: 99, Type: events.TaskDone,
			Task: "t1", Worker: "w1", Err: "e", Attempt: 2,
			Campaign: "dvu-full",
		},
		Count:    -5,
		Campaign: "dvu-full",
		Gauges: &WorkerGauges{
			Goroutines: 11, HeapBytes: 1 << 30,
			TasksExecuted: 512, BusyNS: 123456789012,
		},
	}
}

func TestBinaryMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	c := newBinaryCodec(bufio.NewReader(&buf), w)

	want := fullMessage()
	if err := c.Encode(want); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var got message
	if err := c.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &got, want)
	}

	// Decoded payloads must be copies, not views into the codec's scratch
	// buffer: a second Decode must not corrupt the first frame's payloads.
	if err := c.Encode(&message{Type: msgTask, Task: &Task{ID: "t9", Payload: json.RawMessage(`{"overwrite":9}`)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var second message
	if err := c.Decode(&second); err != nil {
		t.Fatal(err)
	}
	if string(got.Task.Payload) != `{"a":1}` {
		t.Errorf("first frame's payload corrupted by second Decode: %s", got.Task.Payload)
	}
}

func TestBinaryZeroTimeRoundTrip(t *testing.T) {
	// The engine stamps zero times on results from pre-telemetry peers;
	// IsZero must survive the wire (UnixNano would overflow here).
	var buf bytes.Buffer
	c := newBinaryCodec(bufio.NewReader(&buf), bufio.NewWriter(&buf))
	if err := c.Encode(&message{Type: msgResult, Result: &Result{TaskID: "t"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var got message
	if err := c.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Result.Start.IsZero() || !got.Result.End.IsZero() {
		t.Errorf("zero times did not round trip: start=%v end=%v", got.Result.Start, got.Result.End)
	}
}

func TestBinaryLegacyHeartbeatGaugesAbsent(t *testing.T) {
	// A pre-gauges peer's heartbeat body ends after Campaign — exactly the
	// current encoding minus the appended gauge section. The append-last
	// convention requires it to decode with Gauges absent (nil), never an
	// error and never zero-garbage; but once a presence byte claims
	// gauges, a frame torn inside them is corruption and must fail.
	body := appendMessage(nil, &message{Type: msgHeartbeat, WorkerID: "w-legacy"})
	legacy := body[:len(body)-1] // strip the gauge presence byte

	decode := func(body []byte) (message, error) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		data := append(hdr[:], body...)
		c := newBinaryCodec(bufio.NewReader(bytes.NewReader(data)), bufio.NewWriter(io.Discard))
		var m message
		err := c.Decode(&m)
		return m, err
	}

	m, err := decode(legacy)
	if err != nil {
		t.Fatalf("legacy heartbeat rejected: %v", err)
	}
	if m.Type != msgHeartbeat || m.WorkerID != "w-legacy" {
		t.Fatalf("legacy heartbeat mangled: %+v", m)
	}
	if m.Gauges != nil {
		t.Fatalf("legacy heartbeat grew gauges: %+v", m.Gauges)
	}

	gauged := appendMessage(nil, &message{Type: msgHeartbeat, WorkerID: "w-new",
		Gauges: &WorkerGauges{Goroutines: 7, HeapBytes: 1 << 22, TasksExecuted: 9, BusyNS: 12345}})
	if m, err := decode(gauged); err != nil || m.Gauges == nil || m.Gauges.Goroutines != 7 {
		t.Fatalf("gauged heartbeat: err=%v gauges=%+v", err, m.Gauges)
	}
	if _, err := decode(gauged[:len(gauged)-2]); err == nil {
		t.Fatal("frame torn inside the gauge section decoded without error")
	}
}

func TestBinaryEncodeDeterministic(t *testing.T) {
	// Same message ⇒ same bytes — the invariant the decoder fuzz target
	// leans on to prove decode(encode(x)) loses nothing.
	m := fullMessage()
	a := appendMessage(nil, m)
	b := appendMessage(nil, m)
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same message differ")
	}
}

func TestBinaryDecodeRejectsCorruptFrames(t *testing.T) {
	valid := appendMessage(nil, fullMessage())
	frame := func(body []byte) []byte {
		var hdr [4]byte
		hdr[0] = byte(len(body) >> 24)
		hdr[1] = byte(len(body) >> 16)
		hdr[2] = byte(len(body) >> 8)
		hdr[3] = byte(len(body))
		return append(hdr[:], body...)
	}
	// A frame whose task count claims ~2^30 elements in a near-empty body:
	// the count bound must reject it before it sizes an allocation.
	bloated := appendString(nil, msgSubmit)        // type
	bloated = appendString(bloated, "")            // worker_id
	bloated = binary.AppendVarint(bloated, 0)      // slots
	bloated = binary.AppendVarint(bloated, 0)      // max_batch
	bloated = append(bloated, 0)                   // no single task
	bloated = binary.AppendUvarint(bloated, 1<<30) // tasks count
	cases := map[string][]byte{
		"truncated body":      frame(valid)[:4+len(valid)/2],
		"trailing bytes":      frame(append(append([]byte{}, valid...), 0xFF)),
		"oversized length":    {0xFF, 0xFF, 0xFF, 0xFF},
		"empty body":          frame(nil),
		"count amplification": frame(bloated),
	}
	for name, data := range cases {
		c := newBinaryCodec(bufio.NewReader(bytes.NewReader(data)), bufio.NewWriter(io.Discard))
		var m message
		if err := c.Decode(&m); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

// TestBinaryCodecConcurrentHalves pins the Codec contract under -race:
// one writer and one reader goroutine may share a codec (a worker's
// heartbeat sends race its task loop's Decode; a monitor's event Encode
// races its disconnect-detect Decode), so the encode and decode halves
// must share no state.
func TestBinaryCodecConcurrentHalves(t *testing.T) {
	left, right := net.Pipe()
	defer left.Close()
	defer right.Close()
	cl := newBinaryCodec(bufio.NewReader(left), bufio.NewWriter(left))
	cr := newBinaryCodec(bufio.NewReader(right), bufio.NewWriter(right))

	const frames = 200
	var wg sync.WaitGroup
	send := func(c Codec, id string) {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			if err := c.Encode(&message{Type: msgHeartbeat, WorkerID: id}); err != nil {
				t.Errorf("%s encode: %v", id, err)
				return
			}
			if err := c.Flush(); err != nil {
				t.Errorf("%s flush: %v", id, err)
				return
			}
		}
	}
	recv := func(c Codec, want string) {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			var m message
			if err := c.Decode(&m); err != nil {
				t.Errorf("decoding frame %d from %s: %v", i, want, err)
				return
			}
			if m.Type != msgHeartbeat || m.WorkerID != want {
				t.Errorf("frame %d from %s decoded as %+v", i, want, m)
				return
			}
		}
	}
	wg.Add(4)
	go send(cl, "left")
	go recv(cl, "right")
	go send(cr, "right")
	go recv(cr, "left")
	wg.Wait()
}

// TestBinaryLargeBatchRoundTrip drives the decoder past its preallocation
// cap: a batch larger than maxSlicePrealloc must round-trip intact
// through the append-grow path.
func TestBinaryLargeBatchRoundTrip(t *testing.T) {
	tasks := make([]Task, maxSlicePrealloc+37)
	for i := range tasks {
		tasks[i] = Task{ID: fmt.Sprintf("t%05d", i)}
	}
	var buf bytes.Buffer
	c := newBinaryCodec(bufio.NewReader(&buf), bufio.NewWriter(&buf))
	if err := c.Encode(&message{Type: msgSubmit, Tasks: tasks}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var got message
	if err := c.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tasks, tasks) {
		t.Fatalf("large batch did not round trip: %d tasks decoded, want %d", len(got.Tasks), len(tasks))
	}
}

func TestAcceptCodecNegotiation(t *testing.T) {
	discard := bufio.NewWriter(io.Discard)

	// A JSON peer sends no hello: the first byte on the wire is the '{' of
	// a real frame, which acceptCodec must leave in place for the decoder.
	r := bufio.NewReader(strings.NewReader(`{"type":"heartbeat","worker_id":"w"}` + "\n"))
	c, err := acceptCodec(r, discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != WireJSON {
		t.Fatalf("JSON peer negotiated %q", c.Name())
	}
	var m message
	if err := c.Decode(&m); err != nil || m.Type != msgHeartbeat || m.WorkerID != "w" {
		t.Fatalf("first JSON frame lost in negotiation: %+v, %v", m, err)
	}

	// A binary peer announces itself with the hello line, then frames.
	var wire bytes.Buffer
	wire.WriteString(helloPrefix + WireBinary + "\n")
	enc := newBinaryCodec(nil, bufio.NewWriter(&wire))
	if err := enc.Encode(&message{Type: msgHeartbeat, WorkerID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	c, err = acceptCodec(bufio.NewReader(&wire), discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != WireBinary {
		t.Fatalf("binary peer negotiated %q", c.Name())
	}
	if err := c.Decode(&m); err != nil || m.Type != msgHeartbeat || m.WorkerID != "b" {
		t.Fatalf("first binary frame lost in negotiation: %+v, %v", m, err)
	}

	// Unknown codecs and malformed hellos are rejected before any frame is
	// decoded.
	for _, bad := range []string{
		helloPrefix + "msgpack\n",
		"GET / HTTP/1.1\n",
	} {
		if _, err := acceptCodec(bufio.NewReader(strings.NewReader(bad)), discard); err == nil {
			t.Errorf("acceptCodec(%q) succeeded", bad)
		}
	}
}

func TestDialCodecStagesHello(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	if _, err := dialCodec(client, "msgpack"); err == nil {
		t.Error("dialCodec accepted an unknown codec")
	}

	c, err := dialCodec(client, WireBinary)
	if err != nil {
		t.Fatal(err)
	}
	// The hello is staged, not flushed: it must travel with the first
	// frame, so negotiation costs no extra packet.
	go func() {
		_ = c.Encode(&message{Type: msgHeartbeat, WorkerID: "w"})
		_ = c.Flush()
	}()
	buf := make([]byte, len(helloPrefix+WireBinary)+1)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != helloPrefix+WireBinary+"\n" {
		t.Fatalf("hello on the wire = %q", buf)
	}
}

// TestCrossCodecCluster is the interop core of the wire redesign: binary
// and JSON workers, a JSON submitting client, and a binary monitor all
// share one scheduler, and the campaign behaves identically to a
// single-codec fleet.
func TestCrossCodecCluster(t *testing.T) {
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	slow := func(task Task) (json.RawMessage, error) {
		time.Sleep(2 * time.Millisecond)
		return task.Payload, nil
	}
	workers := make([]*Worker, 0, 3)
	for i, wire := range []string{WireBinary, WireBinary, WireJSON} {
		w := NewWorker(fmt.Sprintf("%s-%d", wire, i), slow)
		if err := w.Dial(DialOptions{Addr: addr, Codec: wire}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		workers = append(workers, w)
	}

	mon, err := DialMonitor(DialOptions{Addr: addr, Codec: WireBinary})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mon.Close)
	mon.ReadTimeout = 10 * time.Second

	c, err := DialClient(DialOptions{Addr: addr, Codec: WireJSON})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	tasks := makeTasks(30)
	results, err := c.Map(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 30 {
		t.Fatalf("got %d results, want 30", len(results))
	}
	for _, r := range results {
		if r.Failed() {
			t.Errorf("task %s failed: %s", r.TaskID, r.Err)
		}
	}
	for _, w := range workers {
		if w.Processed() == 0 {
			t.Errorf("worker %s processed nothing; codec fleet not interoperating", w.ID)
		}
	}

	// The binary monitor observes the same event stream a JSON monitor
	// would: every task reaches done.
	done := map[string]bool{}
	for len(done) < 30 {
		e, err := mon.Next()
		if err != nil {
			t.Fatalf("monitor stream ended early (%d/30 done): %v", len(done), err)
		}
		if e.Type == events.TaskDone {
			done[e.Task] = true
		}
	}
}

// batchWorker is a hand-rolled JSON worker that records the size of every
// handout frame, proving batched dispatch actually batches.
type batchWorker struct {
	rw *rawWorker
}

func (bw *batchWorker) serve(t *testing.T, n int) (frameSizes []int) {
	t.Helper()
	_ = bw.rw.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	served := 0
	for served < n {
		var m message
		if err := bw.rw.dec.Decode(&m); err != nil {
			t.Fatalf("batch worker decode: %v", err)
		}
		if m.Type != msgTask {
			continue
		}
		tasks := m.Tasks
		if m.Task != nil {
			tasks = append([]Task{*m.Task}, tasks...)
		}
		if len(tasks) == 0 {
			t.Fatal("task frame with no tasks")
		}
		frameSizes = append(frameSizes, len(tasks))
		results := make([]Result, len(tasks))
		for i, task := range tasks {
			results[i] = Result{TaskID: task.ID, WorkerID: "batcher", Start: time.Now(), End: time.Now()}
		}
		ack := message{Type: msgResult, Results: results}
		if len(results) == 1 {
			ack = message{Type: msgResult, Result: &results[0]}
		}
		if err := bw.rw.enc.Encode(ack); err != nil {
			t.Fatalf("batch worker ack: %v", err)
		}
		served += len(tasks)
	}
	return frameSizes
}

func TestBatchedHandout(t *testing.T) {
	s := NewScheduler()
	s.Batch = 8
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	done := make(chan error, 1)
	var results []Result
	go func() {
		var err error
		results, err = c.Map(makeTasks(20), nil)
		done <- err
	}()
	// Dial the worker after submission so the full queue is waiting and
	// the first handout can fill a whole batch.
	time.Sleep(20 * time.Millisecond)
	bw := &batchWorker{rw: dialRawWorker(t, addr, "batcher")}
	sizes := bw.serve(t, 20)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 {
		t.Fatalf("got %d results, want 20", len(results))
	}
	total, maxSize := 0, 0
	for _, n := range sizes {
		total += n
		if n > maxSize {
			maxSize = n
		}
	}
	if total != 20 {
		t.Errorf("frames carried %d tasks, want 20", total)
	}
	if maxSize < 2 {
		t.Errorf("no frame carried more than one task (sizes %v); batching inert", sizes)
	}
	if maxSize > 8 {
		t.Errorf("a frame carried %d tasks, above the batch limit 8", maxSize)
	}
	// Only the head of each handout frame is running on delivery — the
	// rest of a batch waits inside the worker, and this worker acks whole
	// frames, so the stream must carry exactly one running event per frame.
	running := 0
	for _, e := range s.Events().Snapshot() {
		if e.Type == events.TaskRunning {
			running++
		}
	}
	if running != len(sizes) {
		t.Errorf("running events = %d, want one per handout frame (%d)", running, len(sizes))
	}
}

// TestBatchLegacyWorkerFallback: a worker that never advertised the
// batching capability (a pre-batching release) must receive the singular
// one-task form even from a batching scheduler — and the campaign must
// drain through it rather than stranding a batch the worker would ignore.
func TestBatchLegacyWorkerFallback(t *testing.T) {
	s := NewScheduler()
	s.Batch = 8
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	done := make(chan error, 1)
	var results []Result
	go func() {
		var err error
		results, err = c.Map(makeTasks(6), nil)
		done <- err
	}()
	// Submit first so a full queue is waiting and a batch-capable worker
	// would be handed 6 tasks in one frame.
	time.Sleep(20 * time.Millisecond)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	rw := &rawWorker{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
	// The legacy register frame: no max_batch field.
	if err := rw.enc.Encode(message{Type: msgRegister, WorkerID: "legacy", Slots: 1}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for served := 0; served < 6; {
		var m message
		if err := rw.dec.Decode(&m); err != nil {
			t.Fatalf("legacy worker decode: %v", err)
		}
		if m.Type != msgTask {
			continue
		}
		if m.Task == nil || len(m.Tasks) != 0 {
			t.Fatalf("legacy worker handed a batched frame: %+v", m)
		}
		res := Result{TaskID: m.Task.ID, WorkerID: "legacy", Start: time.Now(), End: time.Now()}
		if err := rw.enc.Encode(message{Type: msgResult, Result: &res}); err != nil {
			t.Fatal(err)
		}
		served++
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
}

func TestBatchRequeueOnWorkerDeath(t *testing.T) {
	// A worker dies holding a batch with two of four tasks acked: the two
	// unacked tasks — and only those — must be requeued onto a survivor.
	s := NewScheduler()
	s.Batch = 4
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	done := make(chan error, 1)
	var results []Result
	go func() {
		var err error
		results, err = c.Map(makeTasks(4), nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)

	rw := dialRawWorker(t, addr, "doomed")
	_ = rw.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var m message
	for {
		if err := rw.dec.Decode(&m); err != nil {
			t.Fatalf("doomed worker decode: %v", err)
		}
		if m.Type == msgTask {
			break
		}
	}
	got := m.Tasks
	if m.Task != nil {
		got = append([]Task{*m.Task}, got...)
	}
	if len(got) != 4 {
		t.Fatalf("batch of %d tasks, want all 4", len(got))
	}
	// Ack the first two, then crash without releasing the rest.
	acked := []Result{
		{TaskID: got[0].ID, WorkerID: "doomed", Start: time.Now(), End: time.Now()},
		{TaskID: got[1].ID, WorkerID: "doomed", Start: time.Now(), End: time.Now()},
	}
	if err := rw.enc.Encode(message{Type: msgResult, Results: acked}); err != nil {
		t.Fatal(err)
	}
	// Give the scheduler a moment to settle the partial ack before the
	// crash, so the test exercises requeue of a half-finished batch.
	time.Sleep(20 * time.Millisecond)
	rw.conn.Close()

	survivor := NewWorker("survivor", echoHandler)
	if err := survivor.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(survivor.Close)

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("map did not complete after batch-holding worker died")
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	byWorker := map[string]string{}
	for _, r := range results {
		byWorker[r.TaskID] = r.WorkerID
	}
	for _, id := range []string{got[0].ID, got[1].ID} {
		if byWorker[id] != "doomed" {
			t.Errorf("acked task %s recorded from %q, want doomed", id, byWorker[id])
		}
	}
	for _, id := range []string{got[2].ID, got[3].ID} {
		if byWorker[id] != "survivor" {
			t.Errorf("unacked task %s recorded from %q, want requeue to survivor", id, byWorker[id])
		}
	}
	// The partial ack revealed the doomed worker had moved on to the third
	// task, so it was marked running there before the crash — and again on
	// the survivor after requeue.
	var runningOn []string
	for _, e := range s.Events().Snapshot() {
		if e.Type == events.TaskRunning && e.Task == got[2].ID {
			runningOn = append(runningOn, e.Worker)
		}
	}
	if !reflect.DeepEqual(runningOn, []string{"doomed", "survivor"}) {
		t.Errorf("task %s marked running on %v, want [doomed survivor]", got[2].ID, runningOn)
	}
}
