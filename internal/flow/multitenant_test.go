package flow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/events"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, desc string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", desc)
}

// fakeWorkerConn fabricates a worker connection for fault injection
// directly into the event loop: the scheduler side of a net.Pipe, its
// peer drained so assignments never block. Unlike dialRawWorker there is
// no read pump, so the test fully controls which schedEvents exist and in
// what order.
func fakeWorkerConn(t *testing.T, id string) *workerConn {
	t.Helper()
	sched, peer := net.Pipe()
	go io.Copy(io.Discard, peer) //nolint:errcheck
	t.Cleanup(func() { sched.Close(); peer.Close() })
	return &workerConn{
		id:       id,
		codec:    newJSONCodec(bufio.NewReader(sched), bufio.NewWriter(sched)),
		conn:     sched,
		maxBatch: 1,
	}
}

// TestLateResultFromDroppedWorkerIgnored is the late-result race: a
// result frame already sitting in the event channel when its worker is
// declared gone (read pump failed, or the heartbeat sweep swept it) must
// not settle the task — by then the task has been requeued and handed to
// another worker, and settling the stale delivery would forward a
// duplicate result to the client and attribute a done event to a dead
// worker, while the live worker's ack later finds nothing to settle.
func TestLateResultFromDroppedWorkerIgnored(t *testing.T) {
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	done := make(chan []Result, 1)
	go func() {
		res, _ := c.Map([]Task{{ID: "t0", Payload: json.RawMessage(`1`)}}, nil)
		done <- res
	}()

	nthAssignedTo := func(n int, worker string) func() bool {
		return func() bool {
			assigned := eventsByType(s.Events().Snapshot())[events.TaskAssigned]
			return len(assigned) >= n && assigned[n-1].Worker == worker
		}
	}

	// The ghost takes the task, then its connection is declared gone —
	// but a result frame from it is still in flight (injected below).
	ghost := fakeWorkerConn(t, "ghost")
	s.sendEvent(schedEvent{kind: "register", wc: ghost})
	waitUntil(t, 5*time.Second, nthAssignedTo(1, "ghost"), "assignment to ghost")
	s.sendEvent(schedEvent{kind: "workerGone", wc: ghost})

	// The requeued task lands on a second worker and is in flight there
	// when the ghost's late result arrives.
	holder := fakeWorkerConn(t, "holder")
	s.sendEvent(schedEvent{kind: "register", wc: holder})
	waitUntil(t, 5*time.Second, nthAssignedTo(2, "holder"), "reassignment to holder")

	// The late result must be dropped; the holder's genuine ack (queued
	// behind it, so ordering is exact) settles the task.
	s.sendEvent(schedEvent{kind: "result", wc: ghost,
		ress: []Result{{TaskID: "t0", WorkerID: "ghost", Payload: json.RawMessage(`"stale"`)}}})
	s.sendEvent(schedEvent{kind: "result", wc: holder,
		ress: []Result{{TaskID: "t0", WorkerID: "holder", Payload: json.RawMessage(`"fresh"`)}}})

	var res []Result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return")
	}
	if len(res) != 1 || res[0].WorkerID != "holder" || string(res[0].Payload) != `"fresh"` {
		t.Fatalf("results = %+v, want one result from holder", res)
	}
	byType := eventsByType(s.Events().Snapshot())
	if dones := byType[events.TaskDone]; len(dones) != 1 || dones[0].Worker != "holder" {
		t.Errorf("TaskDone = %+v, want exactly one, attributed to holder", dones)
	}
}

// TestSendFailureChargesRetryBudget: a worker dying exactly at handout
// time (the assignment send fails) is a worker death like any other — the
// redelivery must charge the retry budget, stamp the attempt counter, and
// escalate the payload, not splice the batch back as if never handed out.
func TestSendFailureChargesRetryBudget(t *testing.T) {
	s := NewScheduler()
	s.MaxRetries = 2
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	done := make(chan []Result, 1)
	go func() {
		res, _ := c.Map([]Task{{
			ID:              "frag",
			Payload:         json.RawMessage(`{"mem":16}`),
			EscalatePayload: json.RawMessage(`{"mem":512}`),
		}}, nil)
		done <- res
	}()
	waitUntil(t, 5*time.Second, func() bool { return countEvents(s, events.TaskQueued) >= 1 }, "submit")

	// The brittle worker's pipe peer is already closed, so the handout
	// flush fails and the send-failure path runs.
	sched, peer := net.Pipe()
	peer.Close()
	t.Cleanup(func() { sched.Close() })
	brittle := &workerConn{
		id:       "brittle",
		codec:    newJSONCodec(bufio.NewReader(sched), bufio.NewWriter(sched)),
		conn:     sched,
		maxBatch: 1,
	}
	s.sendEvent(schedEvent{kind: "register", wc: brittle})
	waitForEvent(t, s, events.WorkerLeave, 5*time.Second)

	// The retry lands on a healthy worker with the attempt counter and
	// the escalated payload — proof the redelivery went through the
	// budgeted requeue path.
	var seenAttempt atomic.Int64
	w := NewWorker("healer", func(tk Task) (json.RawMessage, error) {
		seenAttempt.Store(int64(tk.Attempt))
		return tk.Payload, nil
	})
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	var res []Result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return")
	}
	if len(res) != 1 || res[0].Err != "" || res[0].WorkerID != "healer" {
		t.Fatalf("results = %+v, want one success on healer", res)
	}
	if string(res[0].Payload) != `{"mem":512}` {
		t.Fatalf("retry ran with payload %s, want escalated {\"mem\":512}", res[0].Payload)
	}
	if seenAttempt.Load() != 1 {
		t.Errorf("worker saw Attempt=%d, want 1 (send failure must charge an attempt)", seenAttempt.Load())
	}
	attempts := []int{}
	for _, e := range eventsByType(s.Events().Snapshot())[events.TaskQueued] {
		attempts = append(attempts, e.Attempt)
	}
	if fmt.Sprint(attempts) != "[0 1]" {
		t.Errorf("TaskQueued attempts = %v, want [0 1]", attempts)
	}
}

// TestMapDedupesDuplicateResults: one duplicate result frame must not let
// Map return while another task's result is still outstanding, and the
// duplicate record must not appear in the returned slice. The scripted
// scheduler replays the buggy-peer wire sequence directly.
func TestMapDedupesDuplicateResults(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := json.NewDecoder(conn)
		enc := json.NewEncoder(conn)
		var m message
		if err := dec.Decode(&m); err != nil || m.Type != msgSubmit {
			return
		}
		enc.Encode(&message{Type: msgAccepted, Count: len(m.Tasks)})
		enc.Encode(&message{Type: msgResult, Result: &Result{TaskID: "a", Payload: json.RawMessage(`"first"`)}})
		// A duplicate ack for a, then a result for a task never submitted:
		// both must be ignored.
		enc.Encode(&message{Type: msgResult, Result: &Result{TaskID: "a", Err: "late duplicate"}})
		enc.Encode(&message{Type: msgResult, Result: &Result{TaskID: "stranger"}})
		enc.Encode(&message{Type: msgResult, Result: &Result{TaskID: "b", Payload: json.RawMessage(`"second"`)}})
		// Hold the connection open so a premature extra read blocks
		// instead of erroring.
		var hold message
		_ = dec.Decode(&hold)
	}()

	c, err := ConnectClient(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.ResultTimeout = 10 * time.Second
	observed := 0
	res, err := c.Map([]Task{{ID: "a"}, {ID: "b"}}, func(*Result) { observed++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || observed != 2 {
		t.Fatalf("got %d results (%d observed), want 2", len(res), observed)
	}
	if res[0].TaskID != "a" || res[0].Err != "" || string(res[0].Payload) != `"first"` {
		t.Errorf("res[0] = %+v, want the FIRST record for a", res[0])
	}
	if res[1].TaskID != "b" || string(res[1].Payload) != `"second"` {
		t.Errorf("res[1] = %+v, want b", res[1])
	}
}

// TestQuotaDefersAdmissionAndAck: with -quota 1, the second task of a
// two-task frame is deferred until the first settles, and the frame's
// accepted ack is withheld until the whole frame is admitted — the
// backpressure signal. The raw client observes the exact wire order:
// first result, then the (late) ack, then the second result.
func TestQuotaDefersAdmissionAndAck(t *testing.T) {
	s := NewScheduler()
	s.Quota = 1
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	enc := json.NewEncoder(conn)
	if err := enc.Encode(&message{Type: msgSubmit, Campaign: "solo", Tasks: []Task{
		{ID: "q0", Payload: json.RawMessage(`1`)},
		{ID: "q1", Payload: json.RawMessage(`2`)},
	}}); err != nil {
		t.Fatal(err)
	}

	// No workers yet and the frame is over quota: the ack must be
	// withheld. Nothing may arrive on the wire.
	_ = conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
	if n, err := conn.Read(make([]byte, 1)); err == nil || n > 0 {
		t.Fatal("scheduler acked a frame whose admission is still deferred")
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))

	w := NewWorker("drainer", echoHandler)
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	dec := json.NewDecoder(bufio.NewReader(conn))
	var frames []message
	for len(frames) < 3 {
		var m message
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("reading frame %d: %v", len(frames), err)
		}
		frames = append(frames, m)
	}
	if frames[0].Type != msgResult || frames[0].Result == nil || frames[0].Result.TaskID != "q0" {
		t.Fatalf("frame 0 = %+v, want result for q0", frames[0])
	}
	if frames[1].Type != msgAccepted || frames[1].Count != 2 {
		t.Fatalf("frame 1 = %+v, want the deferred accepted ack for the whole frame", frames[1])
	}
	if frames[2].Type != msgResult || frames[2].Result == nil || frames[2].Result.TaskID != "q1" {
		t.Fatalf("frame 2 = %+v, want result for q1", frames[2])
	}

	// The event stream shows the deferred admission: q1 enters the queue
	// only after q0 settles.
	snap := s.Events().Snapshot()
	pos := func(typ events.Type, task string) int {
		for i, e := range snap {
			if e.Type == typ && e.Task == task {
				return i
			}
		}
		t.Fatalf("no %s event for %s", typ, task)
		return -1
	}
	if pos(events.TaskQueued, "q1") < pos(events.TaskDone, "q0") {
		t.Error("q1 was admitted before q0 settled despite -quota 1")
	}
}

// TestFairShareInterleavesTwoCampaigns: with -policy fair, a campaign
// submitted entirely after another's backlog still gets every other
// handout — the no-starvation property — while each campaign's tasks keep
// their own submission order.
func TestFairShareInterleavesTwoCampaigns(t *testing.T) {
	s := NewScheduler()
	s.Policy = PolicyFair
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	ca, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)
	ca.Campaign = "alpha"
	cb, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cb.Close)
	cb.Campaign = "beta"

	tasksFor := func(prefix string, n int) []Task {
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{ID: fmt.Sprintf("%s%d", prefix, i), Payload: json.RawMessage(`0`)}
		}
		return tasks
	}
	doneA := make(chan []Result, 1)
	go func() {
		res, _ := ca.Map(tasksFor("a", 4), nil)
		doneA <- res
	}()
	// Alpha's whole backlog is queued before beta even submits — the
	// starvation setup a FIFO queue cannot escape.
	waitUntil(t, 5*time.Second, func() bool { return countEvents(s, events.TaskQueued) >= 4 }, "alpha queued")
	doneB := make(chan []Result, 1)
	go func() {
		res, _ := cb.Map(tasksFor("b", 4), nil)
		doneB <- res
	}()
	waitUntil(t, 5*time.Second, func() bool { return countEvents(s, events.TaskQueued) >= 8 }, "beta queued")

	w := NewWorker("lone", echoHandler)
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	for name, ch := range map[string]chan []Result{"alpha": doneA, "beta": doneB} {
		select {
		case res := <-ch:
			if len(res) != 4 {
				t.Fatalf("campaign %s: %d results, want 4", name, len(res))
			}
			for _, r := range res {
				if r.Err != "" {
					t.Errorf("campaign %s task %s failed: %s", name, r.TaskID, r.Err)
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("campaign %s never completed", name)
		}
	}

	var handout []string
	for _, e := range eventsByType(s.Events().Snapshot())[events.TaskAssigned] {
		handout = append(handout, e.Campaign+":"+e.Task)
	}
	want := "[alpha:a0 beta:b0 alpha:a1 beta:b1 alpha:a2 beta:b2 alpha:a3 beta:b3]"
	if got := fmt.Sprint(handout); got != want {
		t.Errorf("handout order = %v, want strict round-robin %v", got, want)
	}
}

// TestMonitorCampaignFilter: a monitor scoped to one campaign sees that
// campaign's task transitions and the fleet-wide events, but none of the
// other tenant's task traffic.
func TestMonitorCampaignFilter(t *testing.T) {
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker("shared", echoHandler)
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	m, err := DialMonitor(DialOptions{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.Campaign = "mine"

	for _, campaign := range []string{"mine", "theirs"} {
		c, err := ConnectClient(addr)
		if err != nil {
			t.Fatal(err)
		}
		c.Campaign = campaign
		if _, err := c.Map([]Task{{ID: campaign + "-0", Payload: json.RawMessage(`1`)}}, nil); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	s.Close() // ends the monitor stream cleanly

	sawMine, sawJoin := false, false
	for {
		e, err := m.Next()
		if err != nil {
			break
		}
		if e.Campaign == "theirs" || e.Task == "theirs-0" {
			t.Errorf("campaign-scoped monitor leaked foreign event %+v", e)
		}
		if e.Type == events.TaskDone && e.Campaign == "mine" {
			sawMine = true
		}
		if e.Type == events.WorkerJoin {
			sawJoin = true
		}
	}
	if !sawMine {
		t.Error("monitor never saw its own campaign's completion")
	}
	if !sawJoin {
		t.Error("fleet-wide worker join must pass the campaign filter")
	}
}
