package flow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"
)

// Dial retry backoff: first retry after dialBackoffMin, doubling up to
// dialBackoffMax until the budget is exhausted.
const (
	dialBackoffMin = 50 * time.Millisecond
	dialBackoffMax = 2 * time.Second
)

// DialRetry dials addr, retrying with exponential backoff (50ms doubling,
// capped at 2s) until the connection succeeds or the budget elapses. It
// removes the start-order footgun of the multi-terminal recipe: a worker
// or client started before the scheduler converges once the scheduler
// comes up instead of exiting. The first attempt is always made; a zero
// or negative budget means exactly one attempt (plain dial).
func DialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	backoff := dialBackoffMin
	for {
		timeout := dialTimeout
		if budget > 0 {
			if rem := time.Until(deadline); rem > 0 && rem < timeout {
				timeout = rem
			}
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if budget <= 0 {
			return nil, fmt.Errorf("flow: dial %s: %w", addr, err)
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("flow: dial %s: retry budget %s exhausted: %w", addr, budget, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// waitSchedulerFile reads and parses a scheduler file, retrying a missing
// or unparseable (mid-write) file with the same backoff as DialRetry
// until the deadline. A zero or negative budget means one attempt.
func waitSchedulerFile(path string, budget time.Duration) (SchedulerFile, error) {
	deadline := time.Now().Add(budget)
	backoff := dialBackoffMin
	for {
		sf, err := readSchedulerFile(path)
		if err == nil {
			return sf, nil
		}
		if budget <= 0 {
			return SchedulerFile{}, err
		}
		if time.Now().Add(backoff).After(deadline) {
			return SchedulerFile{}, fmt.Errorf("flow: scheduler file %s: retry budget %s exhausted: %w", path, budget, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

func readSchedulerFile(path string) (SchedulerFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SchedulerFile{}, fmt.Errorf("flow: reading scheduler file: %w", err)
	}
	return ParseSchedulerFile(data)
}

// ConnectClientRetry dials the scheduler like ConnectClient, but keeps
// retrying with backoff within the budget — for clients racing a
// scheduler that is still starting.
func ConnectClientRetry(addr string, budget time.Duration) (*Client, error) {
	conn, err := DialRetry(addr, budget)
	if err != nil {
		return nil, fmt.Errorf("flow: client dial: %w", err)
	}
	return &Client{
		conn:          conn,
		enc:           json.NewEncoder(conn),
		dec:           json.NewDecoder(bufio.NewReader(conn)),
		ResultTimeout: DefaultResultTimeout,
	}, nil
}

// ConnectClientFileRetry connects via a scheduler file, waiting for the
// file to appear and the scheduler to accept within one shared budget.
func ConnectClientFileRetry(path string, budget time.Duration) (*Client, error) {
	deadline := time.Now().Add(budget)
	sf, err := waitSchedulerFile(path, budget)
	if err != nil {
		return nil, err
	}
	rem := time.Duration(0)
	if budget > 0 {
		rem = time.Until(deadline)
	}
	return ConnectClientRetry(sf.Address, rem)
}
