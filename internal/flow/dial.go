package flow

import (
	"fmt"
	"net"
	"os"
	"time"
)

// Dial retry backoff: first retry after dialBackoffMin, doubling up to
// dialBackoffMax until the budget is exhausted.
const (
	dialBackoffMin = 50 * time.Millisecond
	dialBackoffMax = 2 * time.Second
)

// DialOptions is the one way to reach a scheduler. It replaces the
// accreted helper sprawl (DialRetry, ConnectClientRetry,
// ConnectClientFileRetry, exec.ConnectFlow*) with a single options
// struct consumed by Dial, DialClient, DialMonitor, Worker.Dial, and
// exec.Connect.
type DialOptions struct {
	// Addr is the scheduler address (host:port). Exactly one of Addr and
	// SchedulerFile must be set.
	Addr string

	// SchedulerFile resolves the address from a scheduler file written by
	// Scheduler.WriteSchedulerFile. With a Retry budget, a missing or
	// mid-write file is retried inside the same budget as the dial, so
	// the peer may start before the scheduler exists at all.
	SchedulerFile string

	// Retry keeps retrying the dial (and the scheduler file appearing)
	// with exponential backoff for this long. Zero or negative means
	// exactly one attempt.
	Retry time.Duration

	// Codec names the wire codec this connection will speak: "" or
	// WireJSON (the default, wire-identical to pre-codec releases), or
	// WireBinary. Dial itself only validates it; the connection-owning
	// dialers (DialClient, Worker.Dial, DialMonitor) send the negotiation
	// hello and frame accordingly.
	Codec string

	// Timeout bounds each individual dial attempt. Zero selects the
	// package default (10s).
	Timeout time.Duration
}

// attemptTimeout resolves the per-attempt dial timeout.
func (o DialOptions) attemptTimeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return dialTimeout
}

// Dial resolves the scheduler address (waiting on the scheduler file when
// asked) and dials it, retrying both within one shared budget. It is the
// single transport entry point every higher-level dialer goes through.
func Dial(opts DialOptions) (net.Conn, error) {
	if !ValidWire(opts.Codec) {
		return nil, fmt.Errorf("flow: unknown wire codec %q", opts.Codec)
	}
	if (opts.Addr == "") == (opts.SchedulerFile == "") {
		return nil, fmt.Errorf("flow: dial needs exactly one of Addr or SchedulerFile")
	}
	addr := opts.Addr
	budget := opts.Retry
	if opts.SchedulerFile != "" {
		deadline := time.Now().Add(budget)
		sf, err := waitSchedulerFile(opts.SchedulerFile, budget)
		if err != nil {
			return nil, err
		}
		addr = sf.Address
		if budget > 0 {
			budget = time.Until(deadline)
		}
	}
	return dialRetry(addr, budget, opts.attemptTimeout())
}

// dialRetry dials addr, retrying with exponential backoff (50ms doubling,
// capped at 2s) until the connection succeeds or the budget elapses. The
// first attempt is always made; a zero or negative budget means exactly
// one attempt (plain dial).
func dialRetry(addr string, budget, attempt time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	backoff := dialBackoffMin
	for {
		timeout := attempt
		if budget > 0 {
			if rem := time.Until(deadline); rem > 0 && rem < timeout {
				timeout = rem
			}
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if budget <= 0 {
			return nil, fmt.Errorf("flow: dial %s: %w", addr, err)
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("flow: dial %s: retry budget %s exhausted: %w", addr, budget, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// DialRetry dials addr with a retry budget.
//
// Deprecated: use Dial with DialOptions{Addr: addr, Retry: budget}.
func DialRetry(addr string, budget time.Duration) (net.Conn, error) {
	return dialRetry(addr, budget, dialTimeout)
}

// waitSchedulerFile reads and parses a scheduler file, retrying a missing
// or unparseable (mid-write) file with the same backoff as dialRetry
// until the deadline. A zero or negative budget means one attempt.
func waitSchedulerFile(path string, budget time.Duration) (SchedulerFile, error) {
	deadline := time.Now().Add(budget)
	backoff := dialBackoffMin
	for {
		sf, err := readSchedulerFile(path)
		if err == nil {
			return sf, nil
		}
		if budget <= 0 {
			return SchedulerFile{}, err
		}
		if time.Now().Add(backoff).After(deadline) {
			return SchedulerFile{}, fmt.Errorf("flow: scheduler file %s: retry budget %s exhausted: %w", path, budget, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

func readSchedulerFile(path string) (SchedulerFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SchedulerFile{}, fmt.Errorf("flow: reading scheduler file: %w", err)
	}
	return ParseSchedulerFile(data)
}

// ConnectClientRetry dials the scheduler like ConnectClient with a retry
// budget.
//
// Deprecated: use DialClient with DialOptions{Addr: addr, Retry: budget}.
func ConnectClientRetry(addr string, budget time.Duration) (*Client, error) {
	return DialClient(DialOptions{Addr: addr, Retry: budget})
}

// ConnectClientFileRetry connects via a scheduler file, waiting for the
// file to appear and the scheduler to accept within one shared budget.
//
// Deprecated: use DialClient with DialOptions{SchedulerFile: path,
// Retry: budget}.
func ConnectClientFileRetry(path string, budget time.Duration) (*Client, error) {
	return DialClient(DialOptions{SchedulerFile: path, Retry: budget})
}
