package flow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/events"
)

// Scheduler is the central dataflow coordinator. It owns the task queue and
// assigns tasks to registered workers as they become free. All state
// transitions happen on a single event loop goroutine; connection
// goroutines communicate with it over channels.
//
// Every transition is also emitted as a structured events.Event through
// the scheduler's Hub — the per-task state-machine record Dask's
// scheduler keeps (received → queued → assigned → running → done/failed,
// plus worker join/leave), stamped scheduler-side with monotonic times.
// The free-text PlacementLog and the JSONL EventLog are synchronous views
// over that stream, and read-only monitor connections (ConnectMonitor)
// subscribe to it live over the wire.
type Scheduler struct {
	// PlacementLog, when set before Start, receives one line per task
	// assignment ("assign <task> -> <worker>") and one per completion
	// ("done <task> <- <worker>" / "fail <task> <- <worker>: <err>"), so
	// the log alone is sufficient to reconstruct busy intervals. It is a
	// thin view over the structured event stream; write errors are
	// ignored (logging must never stall scheduling).
	PlacementLog io.Writer

	// EventLog, when set before Start, receives the full structured
	// stream as JSONL (`sched -event-log`): one events.Event per line,
	// decodable by events.ReadLog and replayable by events.ReplayEvents.
	// Write errors are ignored, as with PlacementLog.
	EventLog io.Writer

	// Metrics, when set before Start, folds the event stream into live
	// Prometheus series (served as GET /metrics by `sched -http`). It is
	// attached as a synchronous hub sink — atomic counter updates on the
	// same emit the dispatch path already pays — and additionally receives
	// heartbeat-carried worker runtime gauges and outbox overflow counts,
	// which never appear on the event stream.
	Metrics *SchedulerMetrics

	// AdminHTTP, when set before WriteSchedulerFile, is advertised as the
	// scheduler file's "http" field so tooling (`proteomectl top`,
	// curl /metrics, readiness probes) can find the admin endpoint without
	// extra configuration. The scheduler does not serve HTTP itself; the
	// owning process (cmd/proteomectl) binds the listener and reports the
	// address here.
	AdminHTTP string

	// MaxRetries, when positive, bounds how many times a task is requeued
	// after its worker died mid-task. A task whose worker dies a
	// (MaxRetries+1)-th time is quarantined: a terminal failed event with
	// the attempt history is emitted (and a failed Result returned to the
	// submitting client) instead of requeueing forever — the poison-task
	// guard. Zero keeps the legacy unlimited-requeue behavior.
	MaxRetries int

	// HeartbeatTimeout, when positive, declares a worker dead once it has
	// been silent (no heartbeat, result, or registration) for this long:
	// a worker_lost event is emitted, its in-flight task requeued under
	// the retry budget, and its connection closed. Catching
	// wedged-but-connected workers requires workers to send heartbeats
	// (Worker.HeartbeatInterval) at a few multiples below this deadline.
	// Zero disables the check.
	HeartbeatTimeout time.Duration

	// Batch, when > 1, hands a free worker up to this many queued tasks in
	// one frame (`sched -batch`); the worker runs them in order and acks
	// them all in one frame back. Amortizing the per-frame cost (encode,
	// write syscall, event-loop round trip) this way is what keeps a
	// 6,000-worker handout cheap. Batching is negotiated per worker: a
	// register frame advertises the largest handout the worker accepts
	// (message.MaxBatch), and a legacy peer that advertises nothing gets
	// the singular single-task form regardless of this setting — so mixed
	// fleets of old and new workers drain one queue safely.
	Batch int

	// Policy selects the queue discipline (`sched -policy`): PolicyFIFO
	// (or empty) keeps the classic global FIFO, byte-identical in handout
	// order and wire traffic; PolicyFair round-robins handout across
	// campaigns so concurrent campaigns share the fleet without
	// starvation. Set before Start, which validates the name.
	Policy string

	// Quota, when positive, bounds how many tasks per campaign (per
	// client connection for unnamed submissions) may be admitted —
	// queued plus in flight — at once (`sched -quota`). Tasks submitted
	// beyond the quota are deferred, and the submit's accepted ack is
	// withheld until every task of the frame has been admitted: the
	// backpressure signal for submitters that pace on the ack. Zero
	// disables quotas.
	Quota int

	// OutboxDepth bounds each peer connection's outbound frame queue
	// (`sched -outbox-depth`). The event loop never writes to a socket:
	// it enqueues frames on the peer's outbox and a per-connection writer
	// goroutine drains them, coalescing bursts into one flush. A peer
	// whose queue fills — it has stopped draining an entire queue's worth
	// of frames — is declared dead and its work requeued under the retry
	// budget. Zero selects DefaultOutboxDepth.
	OutboxDepth int

	// WriteTimeout bounds every peer write (`sched -write-timeout`):
	// handouts to workers, result/ack frames to clients, and event frames
	// to monitors. A write that cannot complete within the deadline marks
	// the peer dead, exactly like a disconnect. Zero selects
	// DefaultWriteTimeout.
	WriteTimeout time.Duration

	// policy is the queue built by Start from Policy; only the event
	// loop touches it afterwards.
	policy queuePolicy

	hub *events.Hub

	ln   net.Listener
	done chan struct{}
	wg   sync.WaitGroup

	events chan schedEvent

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

type schedEvent struct {
	kind string // "register", "result", "submit", "workerGone", "clientGone", "heartbeat"
	wc   *workerConn
	cc   *clientConn
	ress []Result
	tsk  []Task
	// campaign is the submit frame's campaign namespace; tasks carrying
	// their own Campaign win over it.
	campaign string
	// gauges is the runtime snapshot a heartbeat frame carried; nil for
	// legacy workers that beat without one.
	gauges *WorkerGauges
}

type workerConn struct {
	id    string
	codec Codec
	conn  net.Conn
	// maxBatch is the batched-handout capability the worker advertised at
	// registration; 0 marks a legacy single-task peer.
	maxBatch int
	// current holds the task IDs of the in-flight batch, for requeue on
	// disconnect. Only the event loop touches it.
	current []string
	busy    bool
	// lastBeat is the last time the worker proved liveness (register,
	// result, or heartbeat frame). Only the event loop touches it.
	lastBeat time.Time
	// ob is the connection's outbound frame queue, created by the event
	// loop at registration so every handout path — including test-
	// fabricated conns injected straight into the event channel — gets
	// one.
	ob *outbox
	// handouts counts frames the event loop enqueued on ob; comparing it
	// against ob.encoded tells the loop whether the writer has serialized
	// everything it was handed, and therefore whether the encode scratch
	// below may be reused for the next handout. Only the event loop
	// touches handouts, taskBuf, and outMsg.
	handouts uint64
	taskBuf  []Task
	outMsg   message
}

type clientConn struct {
	codec   Codec
	conn    net.Conn
	pending int // results still owed to this client
	// ob is the outbound frame queue, created by the event loop on the
	// client's first submit.
	ob *outbox
}

// send hands one frame (result, accepted ack) to the client's outbox;
// the writer goroutine coalesces whatever frames are queued into one
// flush. Conns fabricated without an outbox fall back to a synchronous
// write.
func (c *clientConn) send(m *message) error {
	if c.ob != nil {
		return c.ob.enqueue(m)
	}
	if err := c.codec.Encode(m); err != nil {
		return err
	}
	return c.codec.Flush()
}

// NewScheduler creates a scheduler (not yet listening).
func NewScheduler() *Scheduler {
	return &Scheduler{
		done:   make(chan struct{}),
		events: make(chan schedEvent, 256),
		hub:    events.NewHub(),
		conns:  make(map[net.Conn]bool),
	}
}

// Events returns the scheduler's event hub. Snapshot it for the full
// history, or Subscribe for backlog-then-live consumption; in another
// process, use ConnectMonitor instead.
func (s *Scheduler) Events() *events.Hub { return s.hub }

// RestoreEvents seeds the scheduler's event hub with a previously
// persisted stream before Start — how a restarted `sched -event-log`
// rebuilds its record from its own log, so sequence numbers and
// monotonic stamps continue where the crashed scheduler stopped and a
// monitor attaching after the restart still replays the full campaign
// backlog. Task payloads do not survive a restart (the log records
// transitions, not work): interrupted clients re-submit, skipping
// completed tasks via `submit -resume`.
func (s *Scheduler) RestoreEvents(evs []events.Event) error {
	if s.ln != nil {
		return fmt.Errorf("flow: RestoreEvents after Start")
	}
	return s.hub.Restore(evs)
}

// Start listens on addr (e.g. "127.0.0.1:0") and runs the scheduler loop in
// the background. It returns the bound address.
func (s *Scheduler) Start(addr string) (string, error) {
	policy, err := newQueuePolicy(s.Policy)
	if err != nil {
		return "", err
	}
	s.policy = policy
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("flow: scheduler listen: %w", err)
	}
	// The views attach before any event can flow. Both file-backed views
	// run behind async sinks so their writes happen off the dispatch
	// path: the event loop only enqueues, a per-sink writer goroutine
	// performs the I/O in stream order, and Hub.Close (called from
	// Scheduler.Close) drains whatever is buffered before returning — so
	// a cleanly shut down scheduler persists its complete log. Only a
	// crash, or a writer so slow the bounded buffer overflows, loses
	// events (see events.AsyncSink).
	if s.EventLog != nil {
		sink := s.hub.AddAsyncSink(events.LogSink(s.EventLog), 0)
		if s.Metrics != nil {
			s.Metrics.AddDropSource(sink.Dropped)
		}
	}
	if s.PlacementLog != nil {
		sink := s.hub.AddAsyncSink(placementView(s.PlacementLog), 0)
		if s.Metrics != nil {
			s.Metrics.AddDropSource(sink.Dropped)
		}
	}
	// The metrics view is synchronous — per-event work is a cached map hit
	// plus atomic adds, cheap enough to ride the emit the dispatch path
	// already performs, and a scrape always reflects every emitted event.
	if s.Metrics != nil {
		s.hub.AddSink(s.Metrics.Observe)
	}
	s.ln = ln
	s.wg.Add(2)
	go s.acceptLoop()
	go s.eventLoop()
	return ln.Addr().String(), nil
}

// placementView renders the structured stream as the scheduler's
// classic free-text placement log.
func placementView(w io.Writer) func(events.Event) {
	return func(e events.Event) {
		switch e.Type {
		case events.TaskAssigned:
			fmt.Fprintf(w, "assign %s -> %s\n", e.Task, e.Worker)
		case events.TaskDone:
			fmt.Fprintf(w, "done %s <- %s\n", e.Task, e.Worker)
		case events.TaskFailed:
			fmt.Fprintf(w, "fail %s <- %s: %s\n", e.Task, e.Worker, e.Err)
		}
	}
}

// WriteSchedulerFile writes the JSON scheduler file workers use to find the
// scheduler, as in the paper's Summit deployment (step 2 of Section 3.3).
func (s *Scheduler) WriteSchedulerFile(path string) error {
	if s.ln == nil {
		return fmt.Errorf("flow: scheduler not started")
	}
	doc := SchedulerFile{Address: s.ln.Addr().String(), StartedAt: time.Now(), HTTP: s.AdminHTTP}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	// Publish atomically (write + rename): workers and clients poll this
	// file the moment the scheduler starts and must never read a torn
	// document.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Healthy reports whether the scheduler is started and accepting work:
// false before Start and from the moment Close begins. Close flips the
// closed flag before draining connections, so a /healthz probe reads 503
// for the whole shutdown window, not just after it completes.
func (s *Scheduler) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ln != nil && !s.closed
}

// Close shuts down the scheduler and all its connections.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Snapshot open connections so blocked readers (worker/client pumps
	// waiting in Decode, monitor pumps waiting for events) unblock and
	// their goroutines exit before wg.Wait below.
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.done)
	if s.ln != nil {
		s.ln.Close()
	}
	s.hub.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// track registers a live connection for Close; it reports false when the
// scheduler is already closed (the caller should drop the conn).
func (s *Scheduler) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = true
	return true
}

func (s *Scheduler) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *Scheduler) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn negotiates the connection's wire codec, reads the first frame
// to classify the peer (worker, client, or monitor), then pumps its
// messages into the event loop — or, for a monitor, pumps the event
// stream out to it.
func (s *Scheduler) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	codec, err := acceptCodec(bufio.NewReader(conn), bufio.NewWriter(conn))
	if err != nil {
		return
	}

	var first message
	if err := codec.Decode(&first); err != nil {
		return
	}
	switch first.Type {
	case msgRegister:
		wc := &workerConn{id: first.WorkerID, codec: codec, conn: conn, maxBatch: first.MaxBatch}
		s.sendEvent(schedEvent{kind: "register", wc: wc})
		for {
			var m message
			if err := codec.Decode(&m); err != nil {
				s.sendEvent(schedEvent{kind: "workerGone", wc: wc})
				return
			}
			if m.Type == msgResult {
				if ress := resultsOf(&m); len(ress) > 0 {
					s.sendEvent(schedEvent{kind: "result", wc: wc, ress: ress})
				}
			} else if m.Type == msgHeartbeat {
				// m is fresh each iteration, so Gauges can ride the
				// schedEvent without copying; nil for legacy beats.
				s.sendEvent(schedEvent{kind: "heartbeat", wc: wc, gauges: m.Gauges})
			}
		}
	case msgSubmit:
		cc := &clientConn{codec: codec, conn: conn}
		s.sendEvent(schedEvent{kind: "submit", cc: cc, tsk: first.Tasks, campaign: first.Campaign})
		// Keep reading to detect disconnect and accept more submissions.
		for {
			var m message
			if err := codec.Decode(&m); err != nil {
				s.sendEvent(schedEvent{kind: "clientGone", cc: cc})
				return
			}
			if m.Type == msgSubmit {
				s.sendEvent(schedEvent{kind: "submit", cc: cc, tsk: m.Tasks, campaign: m.Campaign})
			}
		}
	case msgSubscribe:
		// A read-only monitor: replay the backlog, then follow the live
		// stream. The cursor reads from the hub's retained history, so a
		// slow monitor can never stall the scheduler — it only falls
		// behind on its own connection. Event frames route through an
		// outbox like every other peer write: bursts coalesce into one
		// flush, and a wedged monitor is cut off by the write deadline.
		// This pump blocks (enqueueWait) when the outbox fills — it is a
		// dedicated goroutine, so parking it costs the fleet nothing.
		cur := s.hub.Subscribe()
		ob := s.newOutbox(conn, codec, nil)
		// Peer-close watchdog: monitors never send after subscribing, so
		// any read result means the monitor went away. Cancelling the
		// cursor unblocks the pump below even when no events are flowing
		// (a detached monitor on an idle scheduler must not leak this
		// goroutine and socket until the next event).
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			var m message
			_ = codec.Decode(&m)
			cur.Cancel()
			ob.shutdown()
		}()
		defer ob.shutdown()
		for {
			e, ok := cur.Next()
			if !ok {
				return // scheduler closed or monitor detached
			}
			ev := e
			if err := ob.enqueueWait(&message{Type: msgEvent, Event: &ev}, s.done); err != nil {
				return // monitor went away or scheduler closed
			}
		}
	}
}

func (s *Scheduler) sendEvent(e schedEvent) {
	select {
	case s.events <- e:
	case <-s.done:
	}
}

// taskLabel is the event-stream identity of a task: the submitting
// executor's trace tag when present, else the wire ID.
func taskLabel(t *Task) string {
	if t.Label != "" {
		return t.Label
	}
	return t.ID
}

// emit records one structured event (Seq and TimeNS are stamped by the
// hub). Called only from the event loop goroutine, so views observe
// transitions in scheduling order.
func (s *Scheduler) emit(typ events.Type, task, worker, errMsg string) {
	s.hub.Emit(events.Event{Type: typ, Task: task, Worker: worker, Err: errMsg})
}

// emitTask records one task-scoped event, carrying the task's campaign
// namespace so monitors and the event log can attribute the transition.
func (s *Scheduler) emitTask(typ events.Type, t *Task, worker, errMsg string) {
	s.hub.Emit(events.Event{Type: typ, Task: taskLabel(t), Worker: worker, Err: errMsg, Campaign: t.Campaign})
}

// emitQ is emitTask for a queued entry, using the label cached at
// admission instead of re-deriving it — the emit path runs six times per
// task at steady state, so the hot loop never recomputes or reallocates
// the label string.
func (s *Scheduler) emitQ(typ events.Type, q *queued, worker, errMsg string) {
	s.hub.Emit(events.Event{Type: typ, Task: q.label, Worker: worker, Err: errMsg, Campaign: q.task.Campaign})
}

// eventLoop is the single-threaded heart of the scheduler: a policy-owned
// task queue plus a free-worker list, draining in dataflow fashion.
func (s *Scheduler) eventLoop() {
	defer s.wg.Done()

	queue := s.policy
	var free []*workerConn
	workers := map[*workerConn]bool{}
	inFlight := map[string]queued{} // task ID -> origin, for requeue

	// --- admission (quota) state ---
	//
	// A task is "admitted" from the moment it enters the queue until it
	// settles (result forwarded, quarantined, or dropped). Admission is
	// charged per campaign for named submissions (campAdmitted), and per
	// client connection otherwise — clientConn.pending is that counter.
	// Tasks submitted beyond the quota wait in deferred, in arrival
	// order, and their submit frame's accepted ack is withheld until the
	// whole frame has been admitted.

	// submission tracks one submit frame's deferred-ack bookkeeping.
	type submission struct {
		cc      *clientConn
		total   int
		waiting int // tasks of this frame still deferred
	}
	type deferredTask struct {
		q   queued
		sub *submission
	}
	campAdmitted := map[string]int{}      // campaign -> admitted tasks
	deferred := map[any][]*deferredTask{} // admission key -> waiting, FIFO

	// admissionKey mirrors fairLaneKey: the campaign when named, else the
	// submitting client connection.
	admissionKey := func(q *queued) any {
		if q.task.Campaign != "" {
			return q.task.Campaign
		}
		return q.client
	}

	// quotaOK reports whether the namespace behind key may admit one more
	// task.
	quotaOK := func(key any) bool {
		if s.Quota <= 0 {
			return true
		}
		switch k := key.(type) {
		case string:
			return campAdmitted[k] < s.Quota
		case *clientConn:
			return k != nil && k.pending < s.Quota
		}
		return true
	}

	// admit charges the task against its namespace, stamps the enqueue
	// time, and queues it.
	admit := func(q queued, now int64) {
		q.task.EnqueuedNS = now
		if q.task.Campaign != "" {
			campAdmitted[q.task.Campaign]++
		}
		if q.client != nil {
			q.client.pending++
		}
		s.emitQ(events.TaskQueued, &q, "", "")
		queue.Push(q)
	}

	// admitDeferred admits as many of key's deferred tasks as the quota
	// now allows, releasing each submit's accepted ack once its last task
	// is admitted.
	admitDeferred := func(key any) {
		list := deferred[key]
		if len(list) == 0 {
			return
		}
		for len(list) > 0 && quotaOK(key) {
			d := list[0]
			list = list[1:]
			admit(d.q, time.Now().UnixNano())
			d.sub.waiting--
			if d.sub.waiting == 0 {
				_ = d.sub.cc.send(&message{Type: msgAccepted, Count: d.sub.total})
			}
		}
		if len(list) == 0 {
			delete(deferred, key)
		} else {
			deferred[key] = list
		}
	}

	// settle releases an admitted task's quota charge (its result was
	// forwarded, or it was quarantined or dropped) and admits any work
	// that was waiting on the freed slot.
	settle := func(q *queued) {
		if q.task.Campaign != "" {
			if campAdmitted[q.task.Campaign]--; campAdmitted[q.task.Campaign] <= 0 {
				delete(campAdmitted, q.task.Campaign)
			}
		}
		if q.client != nil {
			q.client.pending--
		}
		admitDeferred(admissionKey(q))
	}

	// requeue returns a task whose worker died to the front of the queue,
	// charging one attempt against the retry budget. Over budget, the
	// task is quarantined: a terminal failed event (with the attempt
	// history) then a quarantined marker, and the submitting client gets
	// a failed Result so its Map completes instead of waiting forever.
	requeue := func(q queued) {
		label := q.label
		q.attempts++
		if s.MaxRetries > 0 && q.attempts > s.MaxRetries {
			errMsg := fmt.Sprintf("flow: task %s quarantined: worker died on all %d attempts (retry budget %d)",
				label, q.attempts, s.MaxRetries)
			s.hub.Emit(events.Event{Type: events.TaskFailed, Task: label, Err: errMsg, Attempt: q.attempts, Campaign: q.task.Campaign})
			s.hub.Emit(events.Event{Type: events.TaskQuarantined, Task: label, Attempt: q.attempts, Campaign: q.task.Campaign})
			if q.client != nil {
				_ = q.client.send(&message{Type: msgResult, Result: &Result{TaskID: q.task.ID, Err: errMsg}})
			}
			settle(&q)
			return
		}
		// Resource escalation on retry (the paper's high-memory wave,
		// scheduler-side): a task that killed its worker is redelivered
		// with its escalated payload.
		if len(q.task.EscalatePayload) > 0 {
			q.task.Payload = q.task.EscalatePayload
		}
		q.task.Attempt = q.attempts
		q.running = false
		queue.PushFront(q)
		s.hub.Emit(events.Event{Type: events.TaskQueued, Task: label, Attempt: q.attempts, Campaign: q.task.Campaign})
	}

	// requeueCurrent returns a dead worker's whole in-flight batch to the
	// queue, front first in original handout order.
	requeueCurrent := func(wc *workerConn) {
		for i := len(wc.current) - 1; i >= 0; i-- {
			if q, ok := inFlight[wc.current[i]]; ok {
				delete(inFlight, wc.current[i])
				requeue(q)
			}
		}
		wc.current = nil
	}

	// dropWorker removes a worker the event loop decided is gone (lost
	// heartbeat) — as opposed to workerGone, which reacts to its read
	// pump failing. Stopping the outbox closes the conn, which makes the
	// pump fail soon after; the workers map check there prevents a
	// duplicate leave event.
	dropWorker := func(wc *workerConn) {
		delete(workers, wc)
		for i, w := range free {
			if w == wc {
				free = append(free[:i], free[i+1:]...)
				break
			}
		}
		requeueCurrent(wc)
		if wc.ob != nil {
			wc.ob.shutdown()
		}
		wc.conn.Close()
	}

	// Sweep for heartbeat-silent workers at a fraction of the deadline,
	// so detection lags the deadline by at most a quarter of it.
	var beatCheck <-chan time.Time
	if s.HeartbeatTimeout > 0 {
		interval := s.HeartbeatTimeout / 4
		if interval <= 0 {
			interval = s.HeartbeatTimeout
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		beatCheck = ticker.C
	}

	batchSize := s.Batch
	if batchSize < 1 {
		batchSize = 1
	}

	// batchScratch stages one handout's popped tasks, reused across every
	// assign iteration: its contents are copied out (into inFlight and
	// the wire slice) before the next iteration overwrites it.
	var batchScratch []queued

	assign := func() {
		for queue.Len() > 0 && len(free) > 0 {
			w := free[0]
			free = free[1:]
			// Clamp to what the worker advertised at registration; a
			// legacy peer (no max_batch on its register frame) only
			// understands the singular form, so it gets one task per frame.
			n := batchSize
			if n > w.maxBatch {
				n = w.maxBatch
				if n < 1 {
					n = 1
				}
			}
			if n > queue.Len() {
				n = queue.Len()
			}
			batch := batchScratch[:0]
			for len(batch) < n {
				q, ok := queue.Pop()
				if !ok {
					break
				}
				batch = append(batch, q)
			}
			batchScratch = batch
			n = len(batch)
			w.busy = true
			w.current = w.current[:0]
			// The worker's encode scratch (taskBuf, outMsg) is handed to
			// its outbox writer by reference, so it may be reused only once
			// the writer has serialized every frame this loop enqueued —
			// the atomic counter pair is the happens-before edge. A worker
			// re-handed work before its writer caught up (possible under
			// partial acks) gets freshly allocated wire state instead.
			reuse := w.ob == nil || w.ob.encoded.Load() >= w.handouts
			var tasks []Task
			if reuse {
				tasks = w.taskBuf[:0]
			}
			for i := range batch {
				q := &batch[i]
				tasks = append(tasks, q.task)
				q.running = i == 0
				inFlight[q.task.ID] = *q
				w.current = append(w.current, q.task.ID)
				s.emitQ(events.TaskAssigned, q, w.id, "")
			}
			if reuse {
				w.taskBuf = tasks
			}
			// One frame per handout: the singular legacy form for a lone
			// task (wire-identical to pre-batch releases), the batched form
			// otherwise. The outbox writer coalesces bursts of handouts
			// into one flush.
			var m *message
			if reuse {
				m = &w.outMsg
			} else {
				m = new(message)
			}
			if n == 1 {
				*m = message{Type: msgTask, Task: &tasks[0]}
			} else {
				*m = message{Type: msgTask, Tasks: tasks}
			}
			var err error
			if w.ob != nil {
				err = w.ob.enqueue(m)
			} else {
				err = w.codec.Encode(m)
				if err == nil {
					err = w.codec.Flush()
				}
			}
			if err != nil {
				// Worker send failed — its outbox overflowed (peer not
				// draining) or already died on a write: drop the worker and
				// requeue the whole batch, back to front so the queue head
				// ends up in original handout order. Going through requeue
				// charges these deliveries against the retry budget like
				// any other worker death — a worker dying exactly at send
				// time must not grant its batch a free attempt, or a poison
				// task could cycle through send failures forever.
				for i := range batch {
					delete(inFlight, batch[i].task.ID)
				}
				w.current = w.current[:0]
				delete(workers, w)
				if w.ob != nil {
					w.ob.shutdown()
				}
				w.conn.Close()
				s.emit(events.WorkerLeave, "", w.id, "")
				for i := len(batch) - 1; i >= 0; i-- {
					requeue(batch[i])
				}
				continue
			}
			w.handouts++
			// Delivered: the worker starts the batch head on receipt and
			// runs the rest in order, so only the head is running now. The
			// others stay assigned until a partial ack reveals the worker
			// moved on; the exact per-task execution bracket is always the
			// Result's Start/End stamps, the event stream records when the
			// scheduler learned of each transition.
			s.emitQ(events.TaskRunning, &batch[0], w.id, "")
		}
	}

	for {
		select {
		case <-s.done:
			return
		case now := <-beatCheck:
			// Declare workers silent past the deadline dead: wedged-but-
			// connected processes never fail the read pump, so the only
			// signal is the heartbeat going quiet.
			for wc := range workers {
				silent := now.Sub(wc.lastBeat)
				if silent <= s.HeartbeatTimeout {
					continue
				}
				s.emit(events.WorkerLost, "", wc.id,
					fmt.Sprintf("flow: worker %s silent for %s (heartbeat deadline %s)",
						wc.id, silent.Round(time.Millisecond), s.HeartbeatTimeout))
				dropWorker(wc)
			}
			assign()
		case e := <-s.events:
			switch e.kind {
			case "register":
				// The event loop owns outbox creation so every delivery
				// path — real conns and test-fabricated ones alike — sends
				// through a writer goroutine. A write failure reports the
				// worker gone through the same channel a read failure does.
				if e.wc.ob == nil {
					wc := e.wc
					wc.ob = s.newOutbox(wc.conn, wc.codec, func(error) {
						s.sendEvent(schedEvent{kind: "workerGone", wc: wc})
					})
				}
				workers[e.wc] = true
				free = append(free, e.wc)
				e.wc.lastBeat = time.Now()
				s.emit(events.WorkerJoin, "", e.wc.id, "")
				assign()
			case "heartbeat":
				if workers[e.wc] {
					e.wc.lastBeat = time.Now()
					if s.Metrics != nil && e.gauges != nil {
						s.Metrics.SetWorkerGauges(e.wc.id, e.gauges)
					}
				}
			case "workerGone":
				if e.wc.ob != nil {
					e.wc.ob.shutdown()
				}
				if !workers[e.wc] {
					break
				}
				delete(workers, e.wc)
				s.emit(events.WorkerLeave, "", e.wc.id, "")
				// Requeue the in-flight batch so no work is lost (subject
				// to the retry budget).
				requeueCurrent(e.wc)
				// Remove from the free list if present.
				for i, w := range free {
					if w == e.wc {
						free = append(free[:i], free[i+1:]...)
						break
					}
				}
				assign()
			case "result":
				// A result from a worker no longer in the fleet — its read
				// pump failed, or the heartbeat sweep dropped it while this
				// frame sat in the channel — must not be settled: its batch
				// was already requeued (and possibly reassigned), so settling
				// here would duplicate the client's result and misattribute
				// a done event to a dead worker.
				if !workers[e.wc] {
					break
				}
				e.wc.lastBeat = time.Now()
				// One frame may ack a whole batch. Each record is settled
				// individually; client forwards land on each client's
				// outbox, whose writer coalesces everything queued into one
				// flush per drain.
				for i := range e.ress {
					res := &e.ress[i]
					// The record must ack a task this worker currently holds:
					// a duplicate reply, or a reply to a delivery that was
					// since requeued to another worker, is dropped. This is
					// the per-attempt identity check — inFlight alone would
					// settle the task against the wrong (live) delivery.
					delivered := false
					for j, id := range e.wc.current {
						if id == res.TaskID {
							e.wc.current = append(e.wc.current[:j], e.wc.current[j+1:]...)
							delivered = true
							break
						}
					}
					if !delivered {
						continue
					}
					q, ok := inFlight[res.TaskID]
					if !ok {
						continue
					}
					delete(inFlight, res.TaskID)
					if res.Err != "" {
						s.emitQ(events.TaskFailed, &q, e.wc.id, res.Err)
					} else {
						s.emitQ(events.TaskDone, &q, e.wc.id, "")
					}
					if q.client != nil {
						_ = q.client.send(&message{Type: msgResult, Result: res})
					}
					settle(&q)
				}
				// A partial ack reveals the worker moved on: the head of the
				// remaining batch is the task running now. Tasks deeper in
				// the batch stay assigned until their turn is observable.
				if len(e.wc.current) > 0 {
					head := e.wc.current[0]
					if q, ok := inFlight[head]; ok && !q.running {
						q.running = true
						inFlight[head] = q
						s.emitQ(events.TaskRunning, &q, e.wc.id, "")
					}
				}
				// Only a worker that was actually busy — and whose batch is
				// fully acked — returns to the free list: a stray result
				// (unknown task, duplicate reply) must not enlist the worker
				// twice, and a partial ack leaves it busy on the remainder.
				if len(e.wc.current) == 0 {
					wasBusy := e.wc.busy
					e.wc.busy = false
					if workers[e.wc] && wasBusy {
						free = append(free, e.wc)
					}
				}
				assign()
			case "submit":
				// The scheduler owns the enqueue stamp: it marks when the
				// task entered the queue, and travels with the assignment
				// so the worker can echo it back in the Result. Tasks beyond
				// the campaign quota are deferred instead of admitted, and
				// the accepted ack is withheld until the whole frame is in —
				// the backpressure signal.
				if e.cc != nil && e.cc.ob == nil {
					cc := e.cc
					cc.ob = s.newOutbox(cc.conn, cc.codec, func(error) {
						s.sendEvent(schedEvent{kind: "clientGone", cc: cc})
					})
				}
				sub := &submission{cc: e.cc, total: len(e.tsk)}
				now := time.Now().UnixNano()
				for _, t := range e.tsk {
					if t.Campaign == "" {
						t.Campaign = e.campaign
					}
					s.emitTask(events.TaskReceived, &t, "", "")
					q := queued{task: t, client: e.cc, label: taskLabel(&t)}
					key := admissionKey(&q)
					// Anything already deferred for this namespace keeps
					// arrival order: later tasks queue behind it even if a
					// slot happens to be free right now.
					if s.Quota > 0 && (!quotaOK(key) || len(deferred[key]) > 0) {
						sub.waiting++
						deferred[key] = append(deferred[key], &deferredTask{q: q, sub: sub})
						continue
					}
					admit(q, now)
				}
				if sub.waiting == 0 {
					_ = e.cc.send(&message{Type: msgAccepted, Count: sub.total})
				}
				assign()
			case "clientGone":
				if e.cc.ob != nil {
					e.cc.ob.shutdown()
				}
				// Purge this client's deferred submissions first: settling
				// its dropped queued tasks below re-admits deferred work in
				// the same namespace, and the gone client's own tasks must
				// not be the ones admitted.
				for key, list := range deferred {
					kept := list[:0]
					for _, d := range list {
						if d.sub.cc == e.cc {
							s.emitQ(events.TaskDropped, &d.q, "", "")
						} else {
							kept = append(kept, d)
						}
					}
					if len(kept) == 0 {
						delete(deferred, key)
					} else {
						deferred[key] = kept
					}
				}
				// Orphan this client's queued tasks: drop them, releasing
				// their admission slots to surviving campaign peers.
				for _, q := range queue.DropClient(e.cc) {
					s.emitQ(events.TaskDropped, &q, "", "")
					settle(&q)
				}
				for id, q := range inFlight {
					if q.client == e.cc {
						q.client = nil
						inFlight[id] = q
					}
				}
				// Releasing the gone client's admission slots may have
				// admitted deferred work from surviving clients.
				assign()
			}
		}
	}
}
