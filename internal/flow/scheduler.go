package flow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Scheduler is the central dataflow coordinator. It owns the task queue and
// assigns tasks to registered workers as they become free. All state
// transitions happen on a single event loop goroutine; connection
// goroutines communicate with it over channels.
type Scheduler struct {
	// PlacementLog, when set before Start, receives one line per
	// task-to-worker assignment ("assign <task> -> <worker>") — the
	// scheduler-side half of the per-task telemetry, mirroring the
	// transition log Dask's scheduler keeps. Written only from the event
	// loop goroutine; write errors are ignored (logging must never stall
	// scheduling).
	PlacementLog io.Writer

	ln   net.Listener
	done chan struct{}
	wg   sync.WaitGroup

	events chan schedEvent

	mu     sync.Mutex
	closed bool
}

type schedEvent struct {
	kind string // "register", "result", "submit", "workerGone", "clientGone"
	wc   *workerConn
	cc   *clientConn
	res  *Result
	tsk  []Task
}

type workerConn struct {
	id      string
	enc     *json.Encoder
	conn    net.Conn
	current *Task // task in flight, for requeue on disconnect
	busy    bool
}

type clientConn struct {
	enc     *json.Encoder
	conn    net.Conn
	pending int // results still owed to this client
}

// NewScheduler creates a scheduler (not yet listening).
func NewScheduler() *Scheduler {
	return &Scheduler{
		done:   make(chan struct{}),
		events: make(chan schedEvent, 256),
	}
}

// Start listens on addr (e.g. "127.0.0.1:0") and runs the scheduler loop in
// the background. It returns the bound address.
func (s *Scheduler) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("flow: scheduler listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(2)
	go s.acceptLoop()
	go s.eventLoop()
	return ln.Addr().String(), nil
}

// WriteSchedulerFile writes the JSON scheduler file workers use to find the
// scheduler, as in the paper's Summit deployment (step 2 of Section 3.3).
func (s *Scheduler) WriteSchedulerFile(path string) error {
	if s.ln == nil {
		return fmt.Errorf("flow: scheduler not started")
	}
	doc := SchedulerFile{Address: s.ln.Addr().String(), StartedAt: time.Now()}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	// Publish atomically (write + rename): workers and clients poll this
	// file the moment the scheduler starts and must never read a torn
	// document.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Close shuts down the scheduler and all its connections.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
}

func (s *Scheduler) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn reads the first message to classify the peer (worker or
// client), then pumps its messages into the event loop.
func (s *Scheduler) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)

	var first message
	if err := dec.Decode(&first); err != nil {
		return
	}
	switch first.Type {
	case msgRegister:
		wc := &workerConn{id: first.WorkerID, enc: enc, conn: conn}
		s.sendEvent(schedEvent{kind: "register", wc: wc})
		for {
			var m message
			if err := dec.Decode(&m); err != nil {
				s.sendEvent(schedEvent{kind: "workerGone", wc: wc})
				return
			}
			if m.Type == msgResult && m.Result != nil {
				s.sendEvent(schedEvent{kind: "result", wc: wc, res: m.Result})
			}
		}
	case msgSubmit:
		cc := &clientConn{enc: enc, conn: conn}
		s.sendEvent(schedEvent{kind: "submit", cc: cc, tsk: first.Tasks})
		// Keep reading to detect disconnect and accept more submissions.
		for {
			var m message
			if err := dec.Decode(&m); err != nil {
				s.sendEvent(schedEvent{kind: "clientGone", cc: cc})
				return
			}
			if m.Type == msgSubmit {
				s.sendEvent(schedEvent{kind: "submit", cc: cc, tsk: m.Tasks})
			}
		}
	}
}

func (s *Scheduler) sendEvent(e schedEvent) {
	select {
	case s.events <- e:
	case <-s.done:
	}
}

// eventLoop is the single-threaded heart of the scheduler: a FIFO task
// queue plus a free-worker list, draining in dataflow fashion.
func (s *Scheduler) eventLoop() {
	defer s.wg.Done()

	type queued struct {
		task   Task
		client *clientConn
	}
	var queue []queued
	var free []*workerConn
	workers := map[*workerConn]bool{}
	inFlight := map[string]queued{} // task ID -> origin, for requeue

	assign := func() {
		for len(queue) > 0 && len(free) > 0 {
			q := queue[0]
			queue = queue[1:]
			w := free[0]
			free = free[1:]
			w.busy = true
			t := q.task
			w.current = &t
			inFlight[t.ID] = q
			if s.PlacementLog != nil {
				fmt.Fprintf(s.PlacementLog, "assign %s -> %s\n", t.ID, w.id)
			}
			if err := w.enc.Encode(message{Type: msgTask, Task: &t}); err != nil {
				// Worker send failed: requeue and drop the worker.
				delete(inFlight, t.ID)
				queue = append([]queued{q}, queue...)
				delete(workers, w)
				w.conn.Close()
			}
		}
	}

	for {
		select {
		case <-s.done:
			return
		case e := <-s.events:
			switch e.kind {
			case "register":
				workers[e.wc] = true
				free = append(free, e.wc)
				assign()
			case "workerGone":
				if !workers[e.wc] {
					break
				}
				delete(workers, e.wc)
				// Requeue the in-flight task so no work is lost.
				if e.wc.current != nil {
					if q, ok := inFlight[e.wc.current.ID]; ok {
						delete(inFlight, e.wc.current.ID)
						queue = append([]queued{q}, queue...)
					}
				}
				// Remove from the free list if present.
				for i, w := range free {
					if w == e.wc {
						free = append(free[:i], free[i+1:]...)
						break
					}
				}
				assign()
			case "result":
				q, ok := inFlight[e.res.TaskID]
				if ok {
					delete(inFlight, e.res.TaskID)
					if q.client != nil {
						_ = q.client.enc.Encode(message{Type: msgResult, Result: e.res})
						q.client.pending--
					}
				}
				// Only a worker that was actually busy returns to the free
				// list: a stray result (unknown task, duplicate reply) must
				// not enlist the worker twice.
				wasBusy := e.wc.busy
				e.wc.current = nil
				e.wc.busy = false
				if workers[e.wc] && wasBusy {
					free = append(free, e.wc)
				}
				assign()
			case "submit":
				e.cc.pending += len(e.tsk)
				_ = e.cc.enc.Encode(message{Type: msgAccepted, Count: len(e.tsk)})
				// The scheduler owns the enqueue stamp: it marks when the
				// task entered the queue, and travels with the assignment
				// so the worker can echo it back in the Result.
				now := time.Now().UnixNano()
				for _, t := range e.tsk {
					t.EnqueuedNS = now
					queue = append(queue, queued{task: t, client: e.cc})
				}
				assign()
			case "clientGone":
				// Orphan this client's queued tasks: drop them.
				kept := queue[:0]
				for _, q := range queue {
					if q.client != e.cc {
						kept = append(kept, q)
					}
				}
				queue = kept
				for id, q := range inFlight {
					if q.client == e.cc {
						q.client = nil
						inFlight[id] = q
					}
				}
			}
		}
	}
}
