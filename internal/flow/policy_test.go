package flow

import (
	"strings"
	"testing"
)

func queuedTask(id, campaign string, cc *clientConn) queued {
	return queued{task: Task{ID: id, Campaign: campaign}, client: cc}
}

func popIDs(t *testing.T, p queuePolicy, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		q, ok := p.Pop()
		if !ok {
			t.Fatalf("Pop %d/%d: queue ran dry", i+1, n)
		}
		ids = append(ids, q.task.ID)
	}
	return ids
}

func TestNewQueuePolicyNames(t *testing.T) {
	for _, name := range []string{"", PolicyFIFO} {
		p, err := newQueuePolicy(name)
		if err != nil {
			t.Fatalf("newQueuePolicy(%q): %v", name, err)
		}
		if _, ok := p.(*fifoPolicy); !ok {
			t.Errorf("newQueuePolicy(%q) = %T, want *fifoPolicy", name, p)
		}
	}
	p, err := newQueuePolicy(PolicyFair)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*fairPolicy); !ok {
		t.Errorf("newQueuePolicy(fair) = %T, want *fairPolicy", p)
	}
	if _, err := newQueuePolicy("priority"); err == nil || !strings.Contains(err.Error(), PolicyFair) {
		t.Errorf("unknown policy error = %v, want mention of the valid names", err)
	}
}

// TestFIFOPolicyArrivalOrder pins the default discipline to the exact
// pre-policy slice semantics: strict arrival order, with PushFront
// (requeue) jumping the whole line.
func TestFIFOPolicyArrivalOrder(t *testing.T) {
	p, _ := newQueuePolicy("")
	for _, id := range []string{"t0", "t1", "t2"} {
		p.Push(queuedTask(id, "", nil))
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	if got := popIDs(t, p, 1); got[0] != "t0" {
		t.Fatalf("first pop = %s, want t0", got[0])
	}
	p.PushFront(queuedTask("t0r", "", nil))
	if got := strings.Join(popIDs(t, p, 3), ","); got != "t0r,t1,t2" {
		t.Errorf("pops = %s, want t0r,t1,t2 (requeue jumps the line)", got)
	}
	if _, ok := p.Pop(); ok || p.Len() != 0 {
		t.Error("drained queue still pops")
	}
}

func TestFIFOPolicyDropClient(t *testing.T) {
	p, _ := newQueuePolicy(PolicyFIFO)
	gone, stay := &clientConn{}, &clientConn{}
	p.Push(queuedTask("g0", "", gone))
	p.Push(queuedTask("s0", "", stay))
	p.Push(queuedTask("g1", "", gone))
	dropped := p.DropClient(gone)
	if len(dropped) != 2 || dropped[0].task.ID != "g0" || dropped[1].task.ID != "g1" {
		t.Fatalf("dropped = %+v, want g0,g1 in queue order", dropped)
	}
	if p.Len() != 1 {
		t.Fatalf("Len after drop = %d, want 1", p.Len())
	}
	if got := popIDs(t, p, 1); got[0] != "s0" {
		t.Errorf("survivor = %s, want s0", got[0])
	}
}

// TestFairPolicyRoundRobin: handout alternates across campaign lanes, so
// the second campaign's first task goes out ahead of the first campaign's
// backlog; within a lane, order is the FIFO default.
func TestFairPolicyRoundRobin(t *testing.T) {
	p, _ := newQueuePolicy(PolicyFair)
	for _, id := range []string{"a0", "a1", "a2"} {
		p.Push(queuedTask(id, "A", nil))
	}
	for _, id := range []string{"b0", "b1"} {
		p.Push(queuedTask(id, "B", nil))
	}
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	if got := strings.Join(popIDs(t, p, 5), ","); got != "a0,b0,a1,b1,a2" {
		t.Errorf("pops = %s, want a0,b0,a1,b1,a2 (round-robin across lanes)", got)
	}
	if _, ok := p.Pop(); ok || p.Len() != 0 {
		t.Error("drained queue still pops")
	}
}

// TestFairPolicyPushFrontStaysInLane: a requeued task jumps its own lane's
// line without disturbing the rotation across lanes.
func TestFairPolicyPushFrontStaysInLane(t *testing.T) {
	p, _ := newQueuePolicy(PolicyFair)
	p.Push(queuedTask("a0", "A", nil))
	p.Push(queuedTask("a1", "A", nil))
	p.Push(queuedTask("b0", "B", nil))
	if got := popIDs(t, p, 1); got[0] != "a0" {
		t.Fatalf("first pop = %s, want a0", got[0])
	}
	p.PushFront(queuedTask("a0r", "A", nil))
	if got := strings.Join(popIDs(t, p, 3), ","); got != "b0,a0r,a1" {
		t.Errorf("pops = %s, want b0,a0r,a1 (requeue heads its own lane)", got)
	}
}

// TestFairPolicyLanesUnnamedSubmittersByClient: tasks with no campaign
// identity still get fair treatment — one lane per client connection.
func TestFairPolicyLanesUnnamedSubmittersByClient(t *testing.T) {
	p, _ := newQueuePolicy(PolicyFair)
	c1, c2 := &clientConn{}, &clientConn{}
	p.Push(queuedTask("x0", "", c1))
	p.Push(queuedTask("x1", "", c1))
	p.Push(queuedTask("y0", "", c2))
	if got := strings.Join(popIDs(t, p, 3), ","); got != "x0,y0,x1" {
		t.Errorf("pops = %s, want x0,y0,x1 (per-client lanes)", got)
	}
}

// TestFairPolicyDropClientAcrossLanes: a disconnecting client's tasks
// vanish from every lane it touched, lanes it emptied stop costing a
// rotation turn, and other campaigns' tasks are untouched.
func TestFairPolicyDropClientAcrossLanes(t *testing.T) {
	p, _ := newQueuePolicy(PolicyFair)
	gone, stay := &clientConn{}, &clientConn{}
	p.Push(queuedTask("a0", "A", gone))
	p.Push(queuedTask("a1", "A", stay))
	p.Push(queuedTask("b0", "B", gone))
	p.Push(queuedTask("c0", "C", stay))
	dropped := p.DropClient(gone)
	if len(dropped) != 2 || dropped[0].task.ID != "a0" || dropped[1].task.ID != "b0" {
		t.Fatalf("dropped = %+v, want a0,b0", dropped)
	}
	if p.Len() != 2 {
		t.Fatalf("Len after drop = %d, want 2", p.Len())
	}
	// Lane B emptied and left the rotation: the survivors alternate A, C.
	if got := strings.Join(popIDs(t, p, 2), ","); got != "a1,c0" {
		t.Errorf("pops = %s, want a1,c0", got)
	}
}
