package flow

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/events"
)

// ErrStreamEnd marks the normal end of a monitor stream: the scheduler
// shut down cleanly or the monitor itself was closed. Any other error
// from Next — a malformed or invalid frame, an abrupt connection reset —
// is a real failure and should be surfaced, not swallowed.
var ErrStreamEnd = errors.New("flow: monitor stream ended")

// Monitor is a read-only subscriber to a scheduler's structured event
// stream — the `proteomectl monitor` client. It attaches without any
// cooperation from the submitting client: the scheduler first replays
// its full backlog (so a monitor attaching mid-campaign observes the
// same sequence as the persisted event log), then streams live events.
// Monitoring is observation only; attaching or detaching never perturbs
// scheduling or a campaign report.
type Monitor struct {
	conn  net.Conn
	codec Codec

	// ReadTimeout, when set before the first Next, bounds how long Next
	// waits for the next event. An idle campaign legitimately stays
	// silent, so the default (zero) disables it; set it in tests or
	// supervised deployments.
	ReadTimeout time.Duration

	// Campaign, when set before the first Next, filters the stream to one
	// campaign namespace (`monitor -campaign`): task-scoped events of
	// other campaigns are skipped client-side. Fleet-wide events (worker
	// membership, truncation markers) always pass, since they concern
	// every campaign sharing the scheduler.
	Campaign string

	mu     sync.Mutex
	closed bool
}

// DialMonitor connects a monitor through the unified dial options —
// address or scheduler file, retry budget, and wire codec — and
// subscribes to the scheduler's event stream. The returned monitor must
// be closed.
func DialMonitor(opts DialOptions) (*Monitor, error) {
	conn, err := Dial(opts)
	if err != nil {
		return nil, fmt.Errorf("flow: monitor dial: %w", err)
	}
	codec, err := dialCodec(conn, opts.Codec)
	if err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetWriteDeadline(time.Now().Add(dialTimeout))
	err = codec.Encode(&message{Type: msgSubscribe})
	if err == nil {
		err = codec.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("flow: monitor subscribe: %w", err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	return &Monitor{conn: conn, codec: codec}, nil
}

// ConnectMonitor dials the scheduler at addr (JSON wire) and subscribes
// to its event stream. The returned monitor must be closed.
func ConnectMonitor(addr string) (*Monitor, error) {
	return DialMonitor(DialOptions{Addr: addr})
}

// ConnectMonitorFile is ConnectMonitor via a scheduler file written by
// Scheduler.WriteSchedulerFile.
func ConnectMonitorFile(path string) (*Monitor, error) {
	return DialMonitor(DialOptions{SchedulerFile: path})
}

// Next blocks until the next event arrives and returns it. A clean end
// of the stream — the scheduler closed the connection, or Close was
// called on this monitor — returns an error wrapping ErrStreamEnd;
// anything else (a malformed or invalid frame, an abrupt reset) is a
// genuine failure, because a monitor trusts scheduler-controlled bytes
// no further than the decoder does.
func (m *Monitor) Next() (events.Event, error) {
	for {
		if m.ReadTimeout > 0 {
			_ = m.conn.SetReadDeadline(time.Now().Add(m.ReadTimeout))
		}
		var msg message
		if err := m.codec.Decode(&msg); err != nil {
			m.mu.Lock()
			closed := m.closed
			m.mu.Unlock()
			if closed || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return events.Event{}, fmt.Errorf("%w: %v", ErrStreamEnd, err)
			}
			return events.Event{}, fmt.Errorf("flow: monitor stream: %w", err)
		}
		if msg.Type != msgEvent || msg.Event == nil {
			continue
		}
		if err := msg.Event.Validate(); err != nil {
			return events.Event{}, fmt.Errorf("flow: monitor stream: %w", err)
		}
		if m.Campaign != "" && msg.Event.Type.TaskScoped() && msg.Event.Campaign != m.Campaign {
			continue
		}
		return *msg.Event, nil
	}
}

// Close detaches the monitor. Pending and future Next calls fail.
func (m *Monitor) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.conn.Close()
}
