package flow

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
)

// shrinkReadBuffer pins a test conn's kernel receive buffer to a few KB,
// so a peer that stops reading exerts backpressure after a bounded amount
// of buffered data instead of after the (auto-tuned, many-MB) default.
func shrinkReadBuffer(t *testing.T, conn net.Conn) {
	t.Helper()
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.SetReadBuffer(4 << 10); err != nil {
			t.Logf("SetReadBuffer: %v (continuing)", err)
		}
	}
}

// wedgeWorker registers a worker that never reads its connection again —
// the wedged-but-connected peer whose handout frame can never drain.
func wedgeWorker(t *testing.T, addr, id string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	shrinkReadBuffer(t, conn)
	t.Cleanup(func() { conn.Close() })
	if err := json.NewEncoder(conn).Encode(message{Type: msgRegister, WorkerID: id, Slots: 1, MaxBatch: workerMaxBatch}); err != nil {
		t.Fatal(err)
	}
	return conn
}

// bulkTasks builds n tasks whose payloads are size bytes each, so one
// batched handout frame overflows every kernel socket buffer in the path
// and a non-reading peer genuinely blocks the write.
func bulkTasks(n, size int) []Task {
	payload := json.RawMessage(`"` + strings.Repeat("A", size) + `"`)
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{ID: fmt.Sprintf("bulk%03d", i), Payload: payload}
	}
	return tasks
}

// TestWedgedWorkerDoesNotWedgeScheduler is the write-deadline guarantee
// on scheduler→worker handout: a registered worker that stops reading —
// kernel buffers full, handout frame undeliverable — must be declared
// dead within the write timeout and its batch requeued under the retry
// budget, with healthy workers finishing the campaign. Before the
// per-connection outbox landed, the event loop performed this write
// itself with no deadline, so this exact scenario wedged the scheduler
// forever and this test hung.
func TestWedgedWorkerDoesNotWedgeScheduler(t *testing.T) {
	s := NewScheduler()
	s.MaxRetries = 3
	s.WriteTimeout = 750 * time.Millisecond
	s.Batch = 48
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	wedgeWorker(t, addr, "wedged")
	waitForEvent(t, s, events.WorkerJoin, 5*time.Second)

	// 48 tasks x 256 KiB: a ~12 MiB handout frame, far beyond what the
	// kernel will buffer toward a 4 KiB receive window even with the
	// sender's tcp_wmem autotuned to its 4 MiB ceiling. Under the race
	// detector, half the bytes: the 6 MiB frame still overflows that
	// ceiling, and the detector-instrumented multi-MB encode/decodes
	// stay inside the timing budget.
	size := 256 << 10
	if raceEnabled {
		size = 128 << 10
	}
	tasks := bulkTasks(48, size)
	start := time.Now()
	done := make(chan error, 1)
	var res []Result
	go func() {
		var mapErr error
		res, mapErr = c.Map(tasks, nil)
		done <- mapErr
	}()

	// The wedged worker takes the whole batch, the write times out, and
	// the send-failure path charges the retry budget.
	waitForEvent(t, s, events.WorkerLeave, 15*time.Second)

	// A healthy worker joining afterwards receives the requeued batch.
	w := NewWorker("healthy", echoHandler)
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Map did not return: wedged worker blocked the scheduler")
	}
	if elapsed := time.Since(start); elapsed > 45*time.Second {
		t.Fatalf("campaign took %s despite one wedged worker", elapsed)
	}
	if len(res) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(res), len(tasks))
	}
	for _, r := range res {
		if r.Err != "" || r.WorkerID != "healthy" {
			t.Fatalf("result %+v, want success on healthy", r)
		}
	}
	// The failed delivery went through the budgeted requeue: second-wave
	// queued events carry Attempt=1.
	retried := 0
	for _, e := range eventsByType(s.Events().Snapshot())[events.TaskQueued] {
		if e.Attempt == 1 {
			retried++
		}
	}
	if retried != len(tasks) {
		t.Errorf("requeued-with-attempt events = %d, want %d (send failure must charge the retry budget)", retried, len(tasks))
	}
}

// TestWedgedClientDoesNotStallScheduler is the write-deadline/overflow
// guarantee on scheduler→client result sends: a submitter that stops
// reading its results must be cut off (bounded outbox overflowing, or
// the write deadline firing) while a concurrent healthy campaign drains
// at full speed — and the scheduler keeps serving new clients after.
func TestWedgedClientDoesNotStallScheduler(t *testing.T) {
	s := NewScheduler()
	s.OutboxDepth = 16
	s.WriteTimeout = 2 * time.Second
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	for i := 0; i < 2; i++ {
		w := NewWorker(fmt.Sprintf("w%d", i), echoHandler)
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}

	// The wedged client submits 150 tasks with 64 KiB payloads and never
	// reads a byte back: ~10 MiB of results pile up against a 4 KiB
	// receive window and a 16-frame outbox (a quarter of the bytes under
	// the race detector — see race_off_test.go — which still overflows
	// both limits).
	size := 64 << 10
	if raceEnabled {
		size = 16 << 10
	}
	wedged, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	shrinkReadBuffer(t, wedged)
	t.Cleanup(func() { wedged.Close() })
	if err := json.NewEncoder(wedged).Encode(message{Type: msgSubmit, Tasks: bulkTasks(150, size)}); err != nil {
		t.Fatal(err)
	}

	// A healthy campaign runs concurrently and must complete promptly.
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	start := time.Now()
	res, err := c.Map(makeTasks(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 100 {
		t.Fatalf("healthy campaign got %d results, want 100", len(res))
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("healthy campaign took %s alongside a wedged client", elapsed)
	}

	// The fleet is still fully serviceable for a fresh client.
	c2, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	if res, err := c2.Map(makeTasks(10), nil); err != nil || len(res) != 10 {
		t.Fatalf("post-wedge campaign: %d results, err %v", len(res), err)
	}
}

// TestStalledMonitorDoesNotStallCampaign: a subscriber that never reads
// its event stream parks its own pump goroutine, nothing else — a
// campaign run with the stalled monitor attached must complete in the
// same order of time as one without it.
func TestStalledMonitorDoesNotStallCampaign(t *testing.T) {
	s := NewScheduler()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	for i := 0; i < 3; i++ {
		w := NewWorker(fmt.Sprintf("w%d", i), echoHandler)
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// Baseline wave, no monitor.
	start := time.Now()
	if _, err := c.Map(makeTasks(120), nil); err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(start)

	// Attach a monitor that subscribes and then never reads: the backlog
	// wave above guarantees its outbox wedges immediately.
	mon, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	shrinkReadBuffer(t, mon)
	t.Cleanup(func() { mon.Close() })
	if err := json.NewEncoder(mon).Encode(message{Type: msgSubscribe}); err != nil {
		t.Fatal(err)
	}

	start = time.Now()
	if _, err := c.Map(makeTasks(120), nil); err != nil {
		t.Fatal(err)
	}
	stalled := time.Since(start)

	// Bounded slowdown: generous for CI noise, far below any I/O stall.
	if limit := 10*baseline + 2*time.Second; stalled > limit {
		t.Fatalf("campaign with stalled monitor took %s (baseline %s, limit %s)", stalled, baseline, limit)
	}
}

// slowWriter simulates an event-log file on a pathologically slow disk.
type slowWriter struct {
	w     io.Writer
	delay time.Duration
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.w.Write(p)
}

// TestSlowEventLogDoesNotStallDispatch: `sched -event-log` writes run
// behind an async sink, so a throttled log writer must not reduce
// dispatch throughput — and a clean Close still drains the complete
// stream to the file.
func TestSlowEventLogDoesNotStallDispatch(t *testing.T) {
	var buf bytes.Buffer
	s := NewScheduler()
	s.EventLog = &slowWriter{w: &buf, delay: 8 * time.Millisecond}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	for i := 0; i < 2; i++ {
		w := NewWorker(fmt.Sprintf("w%d", i), echoHandler)
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	c, err := ConnectClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// 30 tasks emit ~180 events; written synchronously at 8 ms each the
	// campaign could not finish under ~1.4 s. Off the dispatch path it
	// finishes in a fraction of that.
	start := time.Now()
	if _, err := c.Map(makeTasks(30), nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("campaign took %s behind a throttled event log (sync writes would gate dispatch)", elapsed)
	}

	// Close drains: the persisted log matches the hub record exactly.
	s.Close()
	logged, err := events.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hist := s.Events().Snapshot()
	if len(logged) != len(hist) {
		t.Fatalf("throttled log has %d events, hub has %d (drain-on-close lost events)", len(logged), len(hist))
	}
}

// TestOutboxEnqueueAfterFailure: once an outbox died (overflow or write
// failure) every further enqueue reports the recorded error instead of
// silently dropping frames.
func TestOutboxEnqueueAfterFailure(t *testing.T) {
	s := NewScheduler()
	s.OutboxDepth = 1
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// A pipe with an unread peer: the writer blocks on the first frame,
	// the second fills the queue, the third overflows.
	sched, peer := net.Pipe()
	t.Cleanup(func() { sched.Close(); peer.Close() })
	ob := s.newOutbox(sched, newJSONCodec(bufio.NewReader(sched), bufio.NewWriter(sched)), nil)
	m := &message{Type: msgHeartbeat}
	var overflowed error
	for i := 0; i < 10 && overflowed == nil; i++ {
		overflowed = ob.enqueue(m)
		time.Sleep(time.Millisecond)
	}
	if overflowed == nil {
		t.Fatal("outbox never overflowed against a non-draining pipe")
	}
	if err := ob.enqueue(m); err == nil {
		t.Fatal("enqueue after failure succeeded")
	}
}
