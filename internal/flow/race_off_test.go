//go:build !race

package flow

// raceEnabled reports whether the test harness was built with the race
// detector. The wedged-peer tests push multi-MB frames through repeated
// JSON encode/decode cycles; under the detector's slowdown they keep
// the same blocking physics (frames far beyond the 4 KiB receive
// window) at a fraction of the byte count, so the timing assertions
// hold on race CI runners too.
const raceEnabled = false
