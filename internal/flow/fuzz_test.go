package flow

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeSpec hardens the job-spec decoder: arbitrary payloads must
// yield either a valid spec (non-empty kernel) or an error — never a
// panic, and never a spec that re-encodes unfaithfully.
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{"kernel":"campaign/feature","args":{"seed":1,"species":"DVU","id":"DVU_00001"}}`))
	f.Add([]byte(`{"kernel":"campaign/feature","args":{"seed":1,"species":"DVU","id":"DVU_00001","summary":true}}`))
	f.Add([]byte(`{"kernel":"campaign/infer","args":{"model":4,"preset":{"Name":"genome"}}}`))
	f.Add([]byte(`{"kernel":"k"}`))
	f.Add([]byte(`{"args":[1,2,3]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`"kernel"`))
	f.Add([]byte(`{"kernel":" "}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		if spec.Kernel == "" {
			t.Fatal("DecodeSpec accepted a spec with empty kernel")
		}
		// A decoded spec must re-encode and decode to the same spec.
		payload, err := EncodeSpec(spec)
		if err != nil {
			t.Fatalf("EncodeSpec(decoded spec): %v", err)
		}
		again, err := DecodeSpec(payload)
		if err != nil {
			t.Fatalf("DecodeSpec(re-encoded spec): %v", err)
		}
		if again.Kernel != spec.Kernel {
			t.Fatalf("kernel changed across round trip: %q != %q", again.Kernel, spec.Kernel)
		}
	})
}

// FuzzParseSchedulerFile hardens the scheduler-file parser workers and
// clients trust to locate the cluster.
func FuzzParseSchedulerFile(f *testing.F) {
	f.Add([]byte(`{"address":"127.0.0.1:8786","started_at":"2022-01-25T00:00:00Z"}`))
	f.Add([]byte(`{"address":""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"address":"host:port","extra":{"nested":[1,2,{}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := ParseSchedulerFile(data)
		if err != nil {
			return
		}
		if sf.Address == "" {
			t.Fatal("ParseSchedulerFile accepted a file with no address")
		}
	})
}

// FuzzDecodeMessage hardens the wire-protocol decoder: the scheduler
// classifies peers and routes tasks from attacker-controllable TCP bytes,
// so any byte stream must decode to either an error or a message that
// re-encodes losslessly (modulo JSON field order, which the re-decode
// absorbs).
func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte(`{"type":"register","worker_id":"w1","slots":1}`))
	f.Add([]byte(`{"type":"task","task":{"id":"t1","weight":2.5,"payload":{"kernel":"k"}}}`))
	f.Add([]byte(`{"type":"task","task":{"id":"t1","enqueued_ns":1643068800000000000,"payload":{"kernel":"campaign/feature","args":{"summary":true}}}}`))
	f.Add([]byte(`{"type":"result","result":{"task_id":"t1","worker_id":"w1","start":"2022-01-25T00:00:00Z","end":"2022-01-25T00:00:01Z","error":"boom"}}`))
	f.Add([]byte(`{"type":"result","result":{"task_id":"t1","worker_id":"w1","enqueued_ns":1643068800000000000,"start":"2022-01-25T00:00:01Z","end":"2022-01-25T00:00:02Z","payload":{"digest":{"length":120,"depth":14,"neff":6.5,"templates":2}}}}`))
	f.Add([]byte(`{"type":"submit","tasks":[{"id":"a"},{"id":"b"}]}`))
	f.Add([]byte(`{"type":"submit","tasks":[{"id":"0","label":"DVU_00001/m2","payload":{"kernel":"campaign/infer"}}]}`))
	f.Add([]byte(`{"type":"accepted","count":2}`))
	f.Add([]byte(`{"type":"subscribe"}`))
	f.Add([]byte(`{"type":"event","event":{"seq":7,"t_ns":1500,"type":"assigned","task":"DVU_00001","worker":"w1"}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":8,"t_ns":1501,"type":"failed","task":"a/m3","worker":"w2","error":"boom"}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":1,"t_ns":0,"type":"worker_join","worker":"w1"}}`))
	f.Add([]byte(`{"type":"heartbeat","worker_id":"w1"}`))
	f.Add([]byte(`{"type":"task","task":{"id":"t1","attempt":2,"payload":{"mem":16},"escalate_payload":{"mem":512}}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":3,"t_ns":9,"type":"queued","task":"a","attempt":1}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":4,"t_ns":10,"type":"quarantined","task":"a","attempt":3}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":5,"t_ns":11,"type":"worker_lost","worker":"w1","error":"silent"}}`))
	f.Add([]byte(`{"type":"shutdown"}`))
	f.Add([]byte(`{"type":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m message
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		// Whatever decoded must survive an encode/decode round trip — the
		// exact path every scheduler/worker/client hop takes.
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(m); err != nil {
			t.Fatalf("re-encoding decoded message: %v", err)
		}
		var again message
		if err := json.NewDecoder(&buf).Decode(&again); err != nil {
			t.Fatalf("re-decoding encoded message: %v", err)
		}
		if again.Type != m.Type || again.WorkerID != m.WorkerID || again.Count != m.Count ||
			len(again.Tasks) != len(m.Tasks) {
			t.Fatalf("message changed across round trip: %+v != %+v", again, m)
		}
		if (again.Task == nil) != (m.Task == nil) || (again.Result == nil) != (m.Result == nil) {
			t.Fatalf("message pointers changed across round trip")
		}
		if m.Task != nil && again.Task.ID != m.Task.ID {
			t.Fatalf("task ID changed: %q != %q", again.Task.ID, m.Task.ID)
		}
		if m.Task != nil && again.Task.Label != m.Task.Label {
			t.Fatalf("task label changed: %q != %q", again.Task.Label, m.Task.Label)
		}
		if (again.Event == nil) != (m.Event == nil) {
			t.Fatalf("event pointer changed across round trip")
		}
		if m.Event != nil && *again.Event != *m.Event {
			t.Fatalf("event changed across round trip: %+v != %+v", *again.Event, *m.Event)
		}
		if m.Task != nil && again.Task.EnqueuedNS != m.Task.EnqueuedNS {
			t.Fatalf("task enqueue stamp changed across round trip")
		}
		if m.Result != nil && (again.Result.TaskID != m.Result.TaskID || again.Result.Err != m.Result.Err) {
			t.Fatalf("result changed across round trip")
		}
		if m.Result != nil && again.Result.EnqueuedNS != m.Result.EnqueuedNS {
			t.Fatalf("result enqueue stamp changed across round trip")
		}
		// The retry fields ride the same frame: the attempt counter and
		// the escalation payload must survive redelivery intact.
		if m.Task != nil && again.Task.Attempt != m.Task.Attempt {
			t.Fatalf("task attempt changed across round trip: %d != %d", again.Task.Attempt, m.Task.Attempt)
		}
		if m.Task != nil && compactJSON(m.Task.EscalatePayload) != compactJSON(again.Task.EscalatePayload) {
			t.Fatalf("escalate payload changed across round trip: %s != %s",
				m.Task.EscalatePayload, again.Task.EscalatePayload)
		}
	})
}

// compactJSON normalises a raw payload for comparison: the encoder
// compacts RawMessage whitespace, so only the compact form is stable
// across a round trip.
func compactJSON(raw json.RawMessage) string {
	if len(raw) == 0 {
		return ""
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}
