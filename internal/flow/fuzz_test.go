package flow

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the checked-in fuzz corpora for the binary frame
// decoder; review the diff before committing.
var updateCorpus = flag.Bool("update", false, "rewrite the checked-in binary-frame fuzz corpora")

// FuzzDecodeSpec hardens the job-spec decoder: arbitrary payloads must
// yield either a valid spec (non-empty kernel) or an error — never a
// panic, and never a spec that re-encodes unfaithfully.
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{"kernel":"campaign/feature","args":{"seed":1,"species":"DVU","id":"DVU_00001"}}`))
	f.Add([]byte(`{"kernel":"campaign/feature","args":{"seed":1,"species":"DVU","id":"DVU_00001","summary":true}}`))
	f.Add([]byte(`{"kernel":"campaign/infer","args":{"model":4,"preset":{"Name":"genome"}}}`))
	f.Add([]byte(`{"kernel":"k"}`))
	f.Add([]byte(`{"args":[1,2,3]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`"kernel"`))
	f.Add([]byte(`{"kernel":" "}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		if spec.Kernel == "" {
			t.Fatal("DecodeSpec accepted a spec with empty kernel")
		}
		// A decoded spec must re-encode and decode to the same spec.
		payload, err := EncodeSpec(spec)
		if err != nil {
			t.Fatalf("EncodeSpec(decoded spec): %v", err)
		}
		again, err := DecodeSpec(payload)
		if err != nil {
			t.Fatalf("DecodeSpec(re-encoded spec): %v", err)
		}
		if again.Kernel != spec.Kernel {
			t.Fatalf("kernel changed across round trip: %q != %q", again.Kernel, spec.Kernel)
		}
	})
}

// FuzzParseSchedulerFile hardens the scheduler-file parser workers and
// clients trust to locate the cluster.
func FuzzParseSchedulerFile(f *testing.F) {
	f.Add([]byte(`{"address":"127.0.0.1:8786","started_at":"2022-01-25T00:00:00Z"}`))
	f.Add([]byte(`{"address":""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"address":"host:port","extra":{"nested":[1,2,{}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := ParseSchedulerFile(data)
		if err != nil {
			return
		}
		if sf.Address == "" {
			t.Fatal("ParseSchedulerFile accepted a file with no address")
		}
	})
}

// FuzzDecodeMessage hardens the wire-protocol decoder: the scheduler
// classifies peers and routes tasks from attacker-controllable TCP bytes,
// so any byte stream must decode to either an error or a message that
// re-encodes losslessly (modulo JSON field order, which the re-decode
// absorbs).
func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte(`{"type":"register","worker_id":"w1","slots":1}`))
	f.Add([]byte(`{"type":"task","task":{"id":"t1","weight":2.5,"payload":{"kernel":"k"}}}`))
	f.Add([]byte(`{"type":"task","task":{"id":"t1","enqueued_ns":1643068800000000000,"payload":{"kernel":"campaign/feature","args":{"summary":true}}}}`))
	f.Add([]byte(`{"type":"result","result":{"task_id":"t1","worker_id":"w1","start":"2022-01-25T00:00:00Z","end":"2022-01-25T00:00:01Z","error":"boom"}}`))
	f.Add([]byte(`{"type":"result","result":{"task_id":"t1","worker_id":"w1","enqueued_ns":1643068800000000000,"start":"2022-01-25T00:00:01Z","end":"2022-01-25T00:00:02Z","payload":{"digest":{"length":120,"depth":14,"neff":6.5,"templates":2}}}}`))
	f.Add([]byte(`{"type":"submit","tasks":[{"id":"a"},{"id":"b"}]}`))
	f.Add([]byte(`{"type":"submit","tasks":[{"id":"0","label":"DVU_00001/m2","payload":{"kernel":"campaign/infer"}}]}`))
	f.Add([]byte(`{"type":"accepted","count":2}`))
	f.Add([]byte(`{"type":"subscribe"}`))
	f.Add([]byte(`{"type":"event","event":{"seq":7,"t_ns":1500,"type":"assigned","task":"DVU_00001","worker":"w1"}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":8,"t_ns":1501,"type":"failed","task":"a/m3","worker":"w2","error":"boom"}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":1,"t_ns":0,"type":"worker_join","worker":"w1"}}`))
	f.Add([]byte(`{"type":"heartbeat","worker_id":"w1"}`))
	f.Add([]byte(`{"type":"heartbeat","worker_id":"w1","gauges":{"goroutines":9,"heap_bytes":1048576,"tasks_executed":42,"busy_ns":1500000000}}`))
	f.Add([]byte(`{"type":"heartbeat","worker_id":"w1","gauges":{}}`))
	f.Add([]byte(`{"type":"task","task":{"id":"t1","attempt":2,"payload":{"mem":16},"escalate_payload":{"mem":512}}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":3,"t_ns":9,"type":"queued","task":"a","attempt":1}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":4,"t_ns":10,"type":"quarantined","task":"a","attempt":3}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":5,"t_ns":11,"type":"worker_lost","worker":"w1","error":"silent"}}`))
	f.Add([]byte(`{"type":"submit","campaign":"dvu-full","tasks":[{"id":"a"},{"id":"b","campaign":"rru-pilot"}]}`))
	f.Add([]byte(`{"type":"task","task":{"id":"t1","campaign":"dvu-full","payload":{"kernel":"k"}}}`))
	f.Add([]byte(`{"type":"event","event":{"seq":9,"t_ns":12,"type":"done","task":"a","worker":"w1","campaign":"dvu-full"}}`))
	f.Add([]byte(`{"type":"shutdown"}`))
	f.Add([]byte(`{"type":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m message
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		// Whatever decoded must survive an encode/decode round trip — the
		// exact path every scheduler/worker/client hop takes.
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(m); err != nil {
			t.Fatalf("re-encoding decoded message: %v", err)
		}
		var again message
		if err := json.NewDecoder(&buf).Decode(&again); err != nil {
			t.Fatalf("re-decoding encoded message: %v", err)
		}
		if again.Type != m.Type || again.WorkerID != m.WorkerID || again.Count != m.Count ||
			len(again.Tasks) != len(m.Tasks) {
			t.Fatalf("message changed across round trip: %+v != %+v", again, m)
		}
		if (again.Task == nil) != (m.Task == nil) || (again.Result == nil) != (m.Result == nil) {
			t.Fatalf("message pointers changed across round trip")
		}
		if m.Task != nil && again.Task.ID != m.Task.ID {
			t.Fatalf("task ID changed: %q != %q", again.Task.ID, m.Task.ID)
		}
		if m.Task != nil && again.Task.Label != m.Task.Label {
			t.Fatalf("task label changed: %q != %q", again.Task.Label, m.Task.Label)
		}
		if (again.Event == nil) != (m.Event == nil) {
			t.Fatalf("event pointer changed across round trip")
		}
		if m.Event != nil && *again.Event != *m.Event {
			t.Fatalf("event changed across round trip: %+v != %+v", *again.Event, *m.Event)
		}
		if m.Task != nil && again.Task.EnqueuedNS != m.Task.EnqueuedNS {
			t.Fatalf("task enqueue stamp changed across round trip")
		}
		if m.Result != nil && (again.Result.TaskID != m.Result.TaskID || again.Result.Err != m.Result.Err) {
			t.Fatalf("result changed across round trip")
		}
		if m.Result != nil && again.Result.EnqueuedNS != m.Result.EnqueuedNS {
			t.Fatalf("result enqueue stamp changed across round trip")
		}
		// The retry fields ride the same frame: the attempt counter and
		// the escalation payload must survive redelivery intact.
		if m.Task != nil && again.Task.Attempt != m.Task.Attempt {
			t.Fatalf("task attempt changed across round trip: %d != %d", again.Task.Attempt, m.Task.Attempt)
		}
		if m.Task != nil && compactJSON(m.Task.EscalatePayload) != compactJSON(again.Task.EscalatePayload) {
			t.Fatalf("escalate payload changed across round trip: %s != %s",
				m.Task.EscalatePayload, again.Task.EscalatePayload)
		}
		// The multi-tenant identity rides the same frames: the submit
		// frame's campaign namespace and each task's own campaign must
		// survive every hop.
		if again.Campaign != m.Campaign {
			t.Fatalf("submit campaign changed across round trip: %q != %q", again.Campaign, m.Campaign)
		}
		if m.Task != nil && again.Task.Campaign != m.Task.Campaign {
			t.Fatalf("task campaign changed across round trip: %q != %q", again.Task.Campaign, m.Task.Campaign)
		}
		// Heartbeat-carried worker gauges: presence (absent stays absent —
		// the mixed-fleet contract) and values must survive the round trip.
		if (again.Gauges == nil) != (m.Gauges == nil) {
			t.Fatalf("gauges presence changed across round trip")
		}
		if m.Gauges != nil && *again.Gauges != *m.Gauges {
			t.Fatalf("gauges changed across round trip: %+v != %+v", *again.Gauges, *m.Gauges)
		}
	})
}

// binFrame wraps a frame body in the binary wire's 4-byte big-endian
// length prefix.
func binFrame(body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	return append(hdr[:], body...)
}

// binaryCorpus names the hostile shapes the binary decoder must survive;
// the entries are also checked in under testdata/fuzz so the CI
// fuzz-smoke job replays them without regenerating.
func binaryCorpus() map[string][]byte {
	full := appendMessage(nil, fullMessage())
	legacyBeat := appendMessage(nil, &message{Type: msgHeartbeat, WorkerID: "w1"})
	gaugedBeat := appendMessage(nil, &message{Type: msgHeartbeat, WorkerID: "w1",
		Gauges: &WorkerGauges{Goroutines: 9, HeapBytes: 1 << 20, TasksExecuted: 42, BusyNS: 1500000000}})
	batch := appendMessage(nil, &message{Type: msgTask, Tasks: []Task{
		{ID: "t1", Payload: json.RawMessage(`{"kernel":"k"}`)},
		{ID: "t2", Payload: json.RawMessage(`{"kernel":"k"}`)},
		{ID: "t3", Payload: json.RawMessage(`{"kernel":"k"}`)},
	}})
	return map[string][]byte{
		// A frame whose header promises more body than arrives.
		"truncated_frame": binFrame(full)[:4+len(full)/2],
		// A length prefix far past maxBinaryFrame: must be rejected before
		// it sizes an allocation.
		"oversized_length_prefix": {0xFF, 0xFF, 0xFF, 0xFF},
		// A batched handout torn mid-task: the count field promises three
		// tasks but the body ends inside the third.
		"torn_batch": binFrame(batch[:len(batch)-12]),
		// A pre-gauges heartbeat, byte-exact as a legacy worker emits it:
		// the body ends after Campaign, before the appended gauge presence
		// byte. Must decode with Gauges absent, not error or zero-garbage.
		"legacy_heartbeat_no_gauges": binFrame(legacyBeat[:len(legacyBeat)-1]),
		// A gauge-carrying heartbeat torn inside the appended extension:
		// once the presence byte claims gauges, truncation is corruption.
		"torn_gauges": binFrame(gaugedBeat[:len(gaugedBeat)-3]),
	}
}

// FuzzDecodeBinaryFrame hardens the binary wire decoder the same way
// FuzzDecodeMessage hardens the JSON one: the scheduler decodes frames
// from attacker-controllable TCP bytes, so any input must produce either
// an error or a message whose canonical encoding is a fixed point —
// encode(decode(data)) must decode again and re-encode to the same
// bytes. (The input itself need not re-encode byte-identically: varints
// have redundant non-minimal encodings the decoder accepts.)
func FuzzDecodeBinaryFrame(f *testing.F) {
	f.Add(binFrame(appendMessage(nil, fullMessage())))
	f.Add(binFrame(appendMessage(nil, &message{Type: msgRegister, WorkerID: "w1", Slots: 1})))
	f.Add(binFrame(appendMessage(nil, &message{Type: msgHeartbeat, WorkerID: "w1"})))
	f.Add(binFrame(appendMessage(nil, &message{Type: msgHeartbeat, WorkerID: "w1",
		Gauges: &WorkerGauges{Goroutines: 9, HeapBytes: 1 << 20, TasksExecuted: 42, BusyNS: 1500000000}})))
	f.Add(binFrame(appendMessage(nil, &message{Type: msgSubmit, Tasks: makeTasks(3)})))
	f.Add(binFrame(appendMessage(nil, &message{Type: msgAccepted, Count: 3})))
	f.Add(binFrame(nil))
	f.Add([]byte{0, 0, 0})
	for _, body := range binaryCorpus() {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := newBinaryCodec(bufio.NewReader(bytes.NewReader(data)), bufio.NewWriter(io.Discard))
		var m message
		if err := c.Decode(&m); err != nil {
			return
		}
		b1 := appendMessage(nil, &m)
		var again message
		r := binReader{b: b1}
		readMessage(&r, &again)
		if r.err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", r.err)
		}
		if len(r.b) != 0 {
			t.Fatalf("canonical re-encoding leaves %d trailing bytes", len(r.b))
		}
		if b2 := appendMessage(nil, &again); !bytes.Equal(b1, b2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// TestBinaryFuzzCorpusUpToDate pins the checked-in corpus files to the
// shapes binaryCorpus describes, so editing the wire layout forces a
// corpus refresh (`go test -update ./internal/flow`) instead of letting
// the seeds silently drift from the format they are meant to tear.
func TestBinaryFuzzCorpusUpToDate(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeBinaryFrame")
	for name, data := range binaryCorpus() {
		path := filepath.Join(dir, name)
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", string(data))
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading corpus entry (run `go test -update ./internal/flow` to create it): %v", err)
		}
		if string(got) != entry {
			t.Errorf("corpus entry %s is stale; run `go test -update ./internal/flow` and review", name)
		}
	}
}

// compactJSON normalises a raw payload for comparison: the encoder
// compacts RawMessage whitespace, so only the compact form is stable
// across a round trip.
func compactJSON(raw json.RawMessage) string {
	if len(raw) == 0 {
		return ""
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}
