//go:build race

package flow

// raceEnabled mirrors the harness's -race flag; see race_off_test.go.
const raceEnabled = true
