package flow

import "fmt"

// Queue policy names accepted by Scheduler.Policy (`sched -policy`).
const (
	// PolicyFIFO is the default: one global first-in-first-out queue,
	// byte-identical in handout order, wire frames, and event stream to
	// every release before the policy interface existed.
	PolicyFIFO = "fifo"
	// PolicyFair round-robins handout across campaigns, so a second
	// campaign submitted mid-run starts completing tasks immediately
	// instead of starving behind the first — the shared-scheduler
	// discipline of the paper's Summit deployment, where many submitters
	// coexist on one worker fleet.
	PolicyFair = "fair"
)

// queued is one task waiting in (or in flight from) the scheduler's
// queue, together with its submitting client and retry history. Only the
// event loop goroutine touches it.
type queued struct {
	task     Task
	client   *clientConn
	attempts int // deliveries that ended with the worker dying
	// running records that a TaskRunning event was emitted for the
	// current delivery: only the head of a batch runs at handout, the
	// rest wait in the worker and are marked running on a partial ack.
	running bool
	// label caches taskLabel(&task) from admission time, so the emit
	// path (six events per task at steady state) never recomputes it.
	label string
}

// queuePolicy is the pluggable queue discipline of the scheduler: it owns
// the order in which queued tasks are handed to free workers. Implementors
// are called only from the event loop goroutine, so they need no locking.
type queuePolicy interface {
	// Push appends a newly admitted task.
	Push(q queued)
	// PushFront returns a requeued task (its worker died) to the head of
	// its queue, ahead of every waiting task of the same origin.
	PushFront(q queued)
	// Pop removes and returns the next task to hand out.
	Pop() (queued, bool)
	// Len reports how many tasks are waiting.
	Len() int
	// DropClient removes every queued task submitted by cc, returning
	// them in queue order (for drop events and admission release).
	DropClient(cc *clientConn) []queued
}

// newQueuePolicy maps a policy name to an implementation. The empty name
// selects the FIFO default.
func newQueuePolicy(name string) (queuePolicy, error) {
	switch name {
	case "", PolicyFIFO:
		return &fifoPolicy{}, nil
	case PolicyFair:
		return newFairPolicy(), nil
	}
	return nil, fmt.Errorf("flow: unknown queue policy %q (want %q or %q)", name, PolicyFIFO, PolicyFair)
}

// fifoPolicy is one global first-in-first-out queue — exactly the
// pre-policy scheduler's []queued, so the default handout order is
// unchanged task for task.
type fifoPolicy struct {
	q []queued
}

func (p *fifoPolicy) Push(q queued)      { p.q = append(p.q, q) }
func (p *fifoPolicy) PushFront(q queued) { p.q = append([]queued{q}, p.q...) }

func (p *fifoPolicy) Pop() (queued, bool) {
	if len(p.q) == 0 {
		return queued{}, false
	}
	q := p.q[0]
	p.q = p.q[1:]
	return q, true
}

func (p *fifoPolicy) Len() int { return len(p.q) }

func (p *fifoPolicy) DropClient(cc *clientConn) []queued {
	var dropped []queued
	kept := p.q[:0]
	for _, q := range p.q {
		if q.client == cc {
			dropped = append(dropped, q)
		} else {
			kept = append(kept, q)
		}
	}
	p.q = kept
	return dropped
}

// fairLaneKey is the fair-share lane identity of a task: its campaign
// when named, else the submitting client connection — so unnamed
// submitters are still isolated from each other, and tasks orphaned by a
// client disconnect (nil client) share one leftover lane.
func fairLaneKey(q *queued) any {
	if q.task.Campaign != "" {
		return q.task.Campaign
	}
	return q.client
}

// fairPolicy keeps one FIFO lane per campaign and round-robins Pop across
// the lanes, so every campaign sharing the fleet drains at the same
// per-handout rate regardless of how many tasks each has queued. Within a
// lane, order is exactly the FIFO default.
type fairPolicy struct {
	lanes map[any]*fifoPolicy
	// order lists live lanes in first-seen order; next is the round-robin
	// cursor into it. Emptied lanes are removed so a finished campaign
	// stops costing a turn, and re-join at the tail when it submits again.
	order []any
	next  int
	n     int
}

func newFairPolicy() *fairPolicy {
	return &fairPolicy{lanes: map[any]*fifoPolicy{}}
}

func (p *fairPolicy) lane(key any) *fifoPolicy {
	l, ok := p.lanes[key]
	if !ok {
		l = &fifoPolicy{}
		p.lanes[key] = l
		p.order = append(p.order, key)
	}
	return l
}

func (p *fairPolicy) Push(q queued) {
	p.lane(fairLaneKey(&q)).Push(q)
	p.n++
}

func (p *fairPolicy) PushFront(q queued) {
	p.lane(fairLaneKey(&q)).PushFront(q)
	p.n++
}

// removeLane drops the lane at position i in the rotation. The lane that
// shifts into i is the next to serve, so the cursor stays put (mod the
// shrunken rotation).
func (p *fairPolicy) removeLane(i int) {
	delete(p.lanes, p.order[i])
	p.order = append(p.order[:i], p.order[i+1:]...)
	if i < p.next {
		p.next--
	}
	if len(p.order) == 0 || p.next >= len(p.order) {
		p.next = 0
	}
}

func (p *fairPolicy) Pop() (queued, bool) {
	for len(p.order) > 0 {
		if p.next >= len(p.order) {
			p.next = 0
		}
		l := p.lanes[p.order[p.next]]
		q, ok := l.Pop()
		if !ok {
			p.removeLane(p.next)
			continue
		}
		p.n--
		if l.Len() == 0 {
			p.removeLane(p.next)
		} else {
			p.next = (p.next + 1) % len(p.order)
		}
		return q, true
	}
	return queued{}, false
}

func (p *fairPolicy) Len() int { return p.n }

func (p *fairPolicy) DropClient(cc *clientConn) []queued {
	var dropped []queued
	for i := 0; i < len(p.order); {
		l := p.lanes[p.order[i]]
		d := l.DropClient(cc)
		dropped = append(dropped, d...)
		p.n -= len(d)
		if l.Len() == 0 {
			p.removeLane(i)
		} else {
			i++
		}
	}
	return dropped
}
