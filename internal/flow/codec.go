package flow

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
)

// Wire codec names, as accepted by DialOptions.Codec and the proteomectl
// -wire flag.
const (
	// WireJSON is the legacy newline-delimited JSON wire — the default.
	// JSON peers send no hello, so the framing a fleet that never asks
	// for another codec puts on the wire is unchanged from every earlier
	// release (registration now carries the max_batch capability field,
	// which legacy schedulers parse and ignore).
	WireJSON = "json"
	// WireBinary is the length-prefixed binary wire: 4-byte big-endian
	// frame length followed by a positional encoding of the envelope, with
	// per-connection reusable encode/decode buffers. Cheaper to encode and
	// decode than JSON on the dispatch hot path; negotiated per connection,
	// so binary workers and JSON monitors interoperate on one scheduler.
	WireBinary = "binary"
)

// helloPrefix starts the one-line codec hello a non-JSON peer sends
// immediately after connecting: "flow-wire <name>\n". JSON peers send
// nothing — their first byte is the '{' of a JSON frame, which is how the
// scheduler tells the two apart (no JSON frame can start with 'f').
const helloPrefix = "flow-wire "

// Codec frames the wire envelope over one connection. Encode buffers
// frames (call Flush to hit the wire — write coalescing is the point:
// one flush per ready-queue drain, not one syscall per message); Decode
// blocks for the next frame and overwrites *m entirely. A Codec is not
// safe for concurrent use of the same half, but the encode and decode
// halves are independent, so one reader goroutine and one writer
// goroutine may share it.
type Codec interface {
	// Name reports the wire name ("json", "binary").
	Name() string
	// Encode appends one frame to the connection's write buffer.
	Encode(m *message) error
	// Decode reads the next frame into *m, replacing its contents.
	Decode(m *message) error
	// Flush writes the buffered frames to the connection.
	Flush() error
}

// ValidWire reports whether name selects a known wire codec ("" selects
// the JSON default).
func ValidWire(name string) bool {
	switch name {
	case "", WireJSON, WireBinary:
		return true
	}
	return false
}

// newCodec instantiates the named codec over a buffered connection pair.
func newCodec(name string, r *bufio.Reader, w *bufio.Writer) (Codec, error) {
	switch name {
	case "", WireJSON:
		return newJSONCodec(r, w), nil
	case WireBinary:
		return newBinaryCodec(r, w), nil
	}
	return nil, fmt.Errorf("flow: unknown wire codec %q", name)
}

// dialCodec is the dialer half of codec negotiation: it wraps conn in
// buffered I/O and, for a non-JSON codec, stages the hello line in the
// write buffer so it travels in the same packet as the first frame
// (register, submit, subscribe). JSON dials stage nothing — the wire is
// indistinguishable from a pre-codec peer.
func dialCodec(conn net.Conn, name string) (Codec, error) {
	if !ValidWire(name) {
		return nil, fmt.Errorf("flow: unknown wire codec %q", name)
	}
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	if name != "" && name != WireJSON {
		if _, err := w.WriteString(helloPrefix + name + "\n"); err != nil {
			return nil, err
		}
	}
	return newCodec(name, r, w)
}

// acceptCodec is the scheduler half of codec negotiation: it peeks at the
// first byte of the connection. '{' means a JSON frame is already in
// flight (a legacy or default peer — no hello on the wire); anything else
// must be the hello line naming the codec the peer will speak.
func acceptCodec(r *bufio.Reader, w *bufio.Writer) (Codec, error) {
	first, err := r.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] == '{' {
		return newJSONCodec(r, w), nil
	}
	// ReadSlice bounds the hello by the reader's buffer, so a peer
	// streaming garbage without a newline is cut off instead of growing a
	// line without limit.
	line, err := r.ReadSlice('\n')
	if err != nil {
		return nil, fmt.Errorf("flow: reading codec hello: %w", err)
	}
	name, ok := strings.CutPrefix(string(bytes.TrimSuffix(line, []byte("\n"))), helloPrefix)
	if !ok {
		return nil, fmt.Errorf("flow: malformed codec hello %q", line)
	}
	return newCodec(name, r, w)
}

// jsonCodec is the default codec: the newline-delimited JSON protocol
// every release has spoken, now written through a bufio.Writer so frames
// coalesce into one syscall per Flush. The bytes on the wire are
// unchanged — only when they are written moves.
type jsonCodec struct {
	enc *json.Encoder
	dec *json.Decoder
	w   *bufio.Writer
}

func newJSONCodec(r *bufio.Reader, w *bufio.Writer) *jsonCodec {
	return &jsonCodec{enc: json.NewEncoder(w), dec: json.NewDecoder(r), w: w}
}

func (c *jsonCodec) Name() string { return WireJSON }

func (c *jsonCodec) Encode(m *message) error { return c.enc.Encode(m) }

func (c *jsonCodec) Decode(m *message) error {
	*m = message{}
	return c.dec.Decode(m)
}

func (c *jsonCodec) Flush() error { return c.w.Flush() }
