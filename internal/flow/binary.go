package flow

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/events"
)

// maxBinaryFrame bounds the length prefix of a binary frame. A submit
// frame carries an entire campaign batch (every task payload in one
// frame), so the bound is generous — but it must exist, because the
// 4-byte prefix arrives from the network and a hostile or corrupt value
// must not drive a multi-gigabyte allocation.
const maxBinaryFrame = 64 << 20

// binaryCodec is the length-prefixed binary wire: each frame is a 4-byte
// big-endian body length followed by a positional encoding of the message
// envelope (varints for integers, length-prefixed strings and payloads,
// raw IEEE-754 for floats, Unix seconds + nanoseconds for times). Both
// directions reuse per-connection scratch buffers, so steady-state encode
// and decode allocate only what must outlive the call (strings and
// payload copies handed to the engine).
type binaryCodec struct {
	r *bufio.Reader
	w *bufio.Writer

	// encBuf accumulates one frame body per Encode; decBuf holds one
	// frame body per Decode. Reused across calls — decoded strings and
	// byte payloads are copied out, never aliased into decBuf. The two
	// halves share no state at all — including the header scratch, which
	// is split into encHdr/decHdr — because the Codec contract lets one
	// reader and one writer goroutine use Encode and Decode concurrently
	// (worker heartbeats race the task loop's Decode). The headers live
	// on the codec rather than the stack so the interface-taking I/O
	// calls below do not force a per-frame heap allocation.
	encBuf []byte
	decBuf []byte
	encHdr [4]byte
	decHdr [4]byte
}

func newBinaryCodec(r *bufio.Reader, w *bufio.Writer) *binaryCodec {
	return &binaryCodec{r: r, w: w}
}

func (c *binaryCodec) Name() string { return WireBinary }

func (c *binaryCodec) Encode(m *message) error {
	b := appendMessage(c.encBuf[:0], m)
	c.encBuf = b
	if len(b) > maxBinaryFrame {
		return fmt.Errorf("flow: binary frame of %d bytes exceeds the %d-byte limit", len(b), maxBinaryFrame)
	}
	binary.BigEndian.PutUint32(c.encHdr[:], uint32(len(b)))
	if _, err := c.w.Write(c.encHdr[:]); err != nil {
		return err
	}
	_, err := c.w.Write(b)
	return err
}

func (c *binaryCodec) Decode(m *message) error {
	if _, err := io.ReadFull(c.r, c.decHdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(c.decHdr[:])
	if n > maxBinaryFrame {
		return fmt.Errorf("flow: binary frame length %d exceeds the %d-byte limit", n, maxBinaryFrame)
	}
	if cap(c.decBuf) < int(n) {
		c.decBuf = make([]byte, n)
	}
	body := c.decBuf[:n]
	if _, err := io.ReadFull(c.r, body); err != nil {
		return err
	}
	*m = message{}
	r := binReader{b: body}
	readMessage(&r, m)
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("flow: binary frame has %d trailing bytes", len(r.b))
	}
	return nil
}

func (c *binaryCodec) Flush() error { return c.w.Flush() }

// --- frame body encoding ---
//
// The layout is positional and versionless: every field of the envelope
// is written in a fixed order, present or not. Optional pointers are a
// presence byte; slices are a count. That keeps the decoder branch-free
// enough to stay cheap and makes "same message ⇒ same bytes" hold, which
// the fuzz round-trip exploits.

func appendMessage(b []byte, m *message) []byte {
	b = appendString(b, m.Type)
	b = appendString(b, m.WorkerID)
	b = binary.AppendVarint(b, int64(m.Slots))
	b = binary.AppendVarint(b, int64(m.MaxBatch))
	if m.Task != nil {
		b = append(b, 1)
		b = appendTask(b, m.Task)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Tasks)))
	for i := range m.Tasks {
		b = appendTask(b, &m.Tasks[i])
	}
	if m.Result != nil {
		b = append(b, 1)
		b = appendResult(b, m.Result)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Results)))
	for i := range m.Results {
		b = appendResult(b, &m.Results[i])
	}
	if m.Event != nil {
		b = append(b, 1)
		b = appendEvent(b, m.Event)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, int64(m.Count))
	b = appendString(b, m.Campaign)
	// Append-last extension (heartbeat gauges). The presence byte is
	// written even when nil so encoding stays canonical: decode(encode(m))
	// re-encodes to the same bytes, which the fuzz round-trip requires.
	if m.Gauges != nil {
		b = append(b, 1)
		b = binary.AppendVarint(b, int64(m.Gauges.Goroutines))
		b = binary.AppendUvarint(b, m.Gauges.HeapBytes)
		b = binary.AppendUvarint(b, m.Gauges.TasksExecuted)
		b = binary.AppendVarint(b, m.Gauges.BusyNS)
	} else {
		b = append(b, 0)
	}
	return b
}

func appendTask(b []byte, t *Task) []byte {
	b = appendString(b, t.ID)
	b = appendString(b, t.Label)
	b = binary.AppendUvarint(b, math.Float64bits(t.Weight))
	b = appendBytes(b, t.Payload)
	b = binary.AppendVarint(b, t.EnqueuedNS)
	b = binary.AppendVarint(b, int64(t.Attempt))
	b = appendBytes(b, t.EscalatePayload)
	b = appendString(b, t.Campaign)
	return b
}

func appendResult(b []byte, r *Result) []byte {
	b = appendString(b, r.TaskID)
	b = appendString(b, r.WorkerID)
	b = binary.AppendVarint(b, r.EnqueuedNS)
	b = appendTime(b, r.Start)
	b = appendTime(b, r.End)
	b = appendBytes(b, r.Payload)
	b = appendString(b, r.Err)
	return b
}

func appendEvent(b []byte, e *events.Event) []byte {
	b = binary.AppendUvarint(b, e.Seq)
	b = binary.AppendVarint(b, e.TimeNS)
	b = appendString(b, string(e.Type))
	b = appendString(b, e.Task)
	b = appendString(b, e.Worker)
	b = appendString(b, e.Err)
	b = binary.AppendVarint(b, int64(e.Attempt))
	b = appendString(b, e.Campaign)
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// appendTime writes Unix seconds (varint) plus nanoseconds (uvarint).
// This form is lossless for every time the engine stamps — including the
// zero time, whose Unix seconds round-trip exactly where UnixNano would
// overflow — and drops only the monotonic reading, as JSON does.
func appendTime(b []byte, t time.Time) []byte {
	b = binary.AppendVarint(b, t.Unix())
	return binary.AppendUvarint(b, uint64(t.Nanosecond()))
}

// --- frame body decoding ---

// binReader consumes a frame body, latching the first error: after a
// failure every read returns zero values and the caller checks err once.
type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("flow: binary frame: truncated or invalid %s", what)
	}
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// bytes returns a copy of a length-prefixed payload (nil when empty), so
// the engine may hold it past the next Decode reusing the scratch buffer.
func (r *binReader) bytes(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[:n])
	r.b = r.b[n:]
	return p
}

func (r *binReader) presence(what string) bool {
	if r.err != nil {
		return false
	}
	if len(r.b) == 0 {
		r.fail(what)
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	if v > 1 {
		r.fail(what)
		return false
	}
	return v == 1
}

// Smallest possible wire footprint of one slice element: every field
// costs at least its one-byte length prefix or varint, times cost two
// bytes. A claimed count whose elements cannot fit in the remaining
// body is corrupt and must be rejected before it sizes an allocation.
const (
	minTaskWire   = 8 // id, label, weight, payload, enqueued_ns, attempt, escalate_payload, campaign
	minResultWire = 9 // task_id, worker_id, enqueued_ns, 2×time (2 bytes each), payload, error
)

// maxSlicePrealloc caps the capacity a decoded slice reserves up front.
// The element count alone must never drive a large allocation — in-memory
// elements are ~15× their minimum wire size, so even a count that passes
// the minElem bound could demand hundreds of bytes per body byte. Larger
// (legitimate) batches grow by append as each element proves itself
// against the remaining bytes.
const maxSlicePrealloc = 4096

// count reads a slice length, bounded by the bytes remaining divided by
// the smallest encoding of one element.
func (r *binReader) count(what string, minElem int) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b))/uint64(minElem) {
		r.fail(what)
		return 0
	}
	return int(n)
}

func (r *binReader) time(what string) time.Time {
	sec := r.varint(what)
	nsec := r.uvarint(what)
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec))
}

func readMessage(r *binReader, m *message) {
	m.Type = r.str("type")
	m.WorkerID = r.str("worker_id")
	m.Slots = int(r.varint("slots"))
	m.MaxBatch = int(r.varint("max_batch"))
	if r.presence("task") {
		m.Task = new(Task)
		readTask(r, m.Task)
	}
	if n := r.count("tasks", minTaskWire); n > 0 {
		m.Tasks = make([]Task, 0, min(n, maxSlicePrealloc))
		for i := 0; i < n && r.err == nil; i++ {
			var t Task
			readTask(r, &t)
			m.Tasks = append(m.Tasks, t)
		}
	}
	if r.presence("result") {
		m.Result = new(Result)
		readResult(r, m.Result)
	}
	if n := r.count("results", minResultWire); n > 0 {
		m.Results = make([]Result, 0, min(n, maxSlicePrealloc))
		for i := 0; i < n && r.err == nil; i++ {
			var res Result
			readResult(r, &res)
			m.Results = append(m.Results, res)
		}
	}
	if r.presence("event") {
		m.Event = new(events.Event)
		readEvent(r, m.Event)
	}
	m.Count = int(r.varint("count"))
	m.Campaign = r.str("campaign")
	// Fields introduced after the layout froze are appended last; a frame
	// that ends here came from a legacy peer and the extension decodes as
	// absent. The reader is otherwise strict, so this is the one point
	// where running out of bytes is interop, not corruption.
	if r.err != nil || len(r.b) == 0 {
		return
	}
	if r.presence("gauges") {
		m.Gauges = &WorkerGauges{
			Goroutines:    int(r.varint("gauges goroutines")),
			HeapBytes:     r.uvarint("gauges heap_bytes"),
			TasksExecuted: r.uvarint("gauges tasks_executed"),
			BusyNS:        r.varint("gauges busy_ns"),
		}
	}
}

func readTask(r *binReader, t *Task) {
	t.ID = r.str("task id")
	t.Label = r.str("task label")
	t.Weight = math.Float64frombits(r.uvarint("task weight"))
	t.Payload = r.bytes("task payload")
	t.EnqueuedNS = r.varint("task enqueued_ns")
	t.Attempt = int(r.varint("task attempt"))
	t.EscalatePayload = r.bytes("task escalate_payload")
	t.Campaign = r.str("task campaign")
}

func readResult(r *binReader, res *Result) {
	res.TaskID = r.str("result task_id")
	res.WorkerID = r.str("result worker_id")
	res.EnqueuedNS = r.varint("result enqueued_ns")
	res.Start = r.time("result start")
	res.End = r.time("result end")
	res.Payload = r.bytes("result payload")
	res.Err = r.str("result error")
}

func readEvent(r *binReader, e *events.Event) {
	e.Seq = r.uvarint("event seq")
	e.TimeNS = r.varint("event t_ns")
	e.Type = events.Type(r.str("event type"))
	e.Task = r.str("event task")
	e.Worker = r.str("event worker")
	e.Err = r.str("event error")
	e.Attempt = int(r.varint("event attempt"))
	e.Campaign = r.str("event campaign")
}
