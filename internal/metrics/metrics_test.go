package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if q := Quantile(sorted, 0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 40 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.5); q != 25 {
		t.Errorf("median = %v", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{60, 70, 80, 90}
	if f := FractionAbove(xs, 70); f != 0.5 {
		t.Errorf("fraction = %v", f)
	}
	if FractionAbove(nil, 1) != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v, %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v, %v", r, err)
	}
	if _, err := Pearson(xs, ys[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1, 5, 9.99, 10, 15} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	var buf bytes.Buffer
	if err := h.Render(&buf, 20); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Errorf("rendered %d lines", lines)
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("hi<=lo accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Header: []string{"Preset", "pLDDT", "Count"}}
	tab.AddRow("reduced_db", 78.4, 559)
	tab.AddRow("genome", 79.5, 559)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "reduced_db") || !strings.Contains(out, "78.400") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Errorf("table lines = %d", len(lines))
	}
}

func TestGantRow(t *testing.T) {
	row := GantRow([][2]float64{{0, 50}, {75, 100}}, 100, 20)
	if len(row) != 20 {
		t.Fatalf("row length %d", len(row))
	}
	if row[0] != '#' || row[5] != '#' {
		t.Errorf("busy start missing: %s", row)
	}
	if row[12] != '.' {
		t.Errorf("idle gap missing: %s", row)
	}
	if row[19] != '#' {
		t.Errorf("busy end missing: %s", row)
	}
	if GantRow(nil, 0, 10) != ".........." {
		t.Error("degenerate horizon")
	}
}
