// Package metrics provides the summary statistics, histograms and table
// rendering the benchmark harness uses to report paper-versus-measured
// results.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	Median, P90, P99 float64
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumsq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionAbove returns the fraction of the sample strictly greater than
// the threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples; it returns an error on mismatch or degenerate variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: pearson length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("metrics: pearson needs at least 2 points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0, fmt.Errorf("metrics: pearson with zero variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram makes a histogram over [lo, hi) with the given bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("metrics: bins must be positive")
	}
	if hi <= lo {
		return nil, fmt.Errorf("metrics: hi must exceed lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of recorded samples, including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Render writes an ASCII bar chart of the histogram.
func (h *Histogram) Render(w io.Writer, width int) error {
	if width <= 0 {
		width = 40
	}
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/max)
		if _, err := fmt.Fprintf(w, "%10.2f-%-10.2f %6d %s\n",
			h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW, c, bar); err != nil {
			return err
		}
	}
	return nil
}

// Table renders aligned text tables for the bench reports.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with column alignment.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(row []string) error {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[i]+2, cell))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
		var rule []string
		for i := 0; i < cols; i++ {
			rule = append(rule, strings.Repeat("-", widths[i]))
		}
		if err := writeRow(rule); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// GantRow renders one worker's timeline as an ASCII strip (the Fig. 2
// visual): '#' for busy, '.' for idle, over [0, horizon].
func GantRow(intervals [][2]float64, horizon float64, width int) string {
	if width <= 0 {
		width = 80
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = '.'
	}
	if horizon <= 0 {
		return string(row)
	}
	for _, iv := range intervals {
		lo := int(iv[0] / horizon * float64(width))
		hi := int(iv[1] / horizon * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			if i >= 0 {
				row[i] = '#'
			}
		}
	}
	return string(row)
}
