// Package analysis implements the proteome-scale data analyses of
// Section 4.6 of the paper: structural alignment of predicted models
// against an experimental-structure database (the role APoc + pdb70 play)
// to annotate "hypothetical" proteins whose sequences match nothing, and
// the detection of candidate novel folds — high-confidence predictions with
// no strong structural match.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/fold"
	"repro/internal/geom"
	"repro/internal/proteome"
	"repro/internal/rng"
)

// StructEntry is one experimental structure in the database: coordinates
// plus the sequence of the solved protein (for the sequence-identity
// analysis) and its ground-truth family (tests only).
type StructEntry struct {
	ID       string
	Family   int
	CA       []geom.Vec3
	Sequence string
	desc     []float64 // shape descriptor for prefiltering
}

// StructDB is the searchable structural database (the pdb70 stand-in).
type StructDB struct {
	Entries []StructEntry
}

// BuildPDB70 creates the structural database covering the given subset of
// universe families. Families outside the subset have no experimental
// structure — predictions of their members are the candidate novel folds.
//
// Each entry is a *distant subfamily relative* of its family (sequence
// diverged ~80% from the ancestor, same fold). This reflects how the real
// PDB relates to microbial proteomes: the solved structure of a fold is
// usually from a distant organism, so a confident structural match can
// coexist with single-digit sequence identity — the phenomenon Section 4.6
// exploits for annotation transfer.
func BuildPDB70(u *proteome.Universe, families []int, universeSeed uint64) *StructDB {
	db := &StructDB{}
	r := rng.New(universeSeed).SplitNamed("pdb70")
	for _, f := range families {
		if f < 0 || f >= u.NumFamilies() {
			continue
		}
		seqRes := u.Mutate(f, 0.8, r)
		nat := fold.GenerateTopology(fold.FamilyTopologySeed(universeSeed, f), len(seqRes))
		e := StructEntry{
			ID:       fmt.Sprintf("pdb70|fam%04d", f),
			Family:   f,
			CA:       nat.CA,
			Sequence: seqRes,
		}
		e.desc = Descriptor(e.CA)
		db.Entries = append(db.Entries, e)
	}
	return db
}

// Descriptor computes a superposition-free shape fingerprint: the
// normalized histogram of all pairwise Cα distances (20 bins over 0–40 Å)
// plus the chain length. Similar folds have similar distance spectra, so
// the descriptor serves as a cheap prefilter before exact TM-scoring —
// the same two-stage design structure-search tools use at scale.
func Descriptor(ca []geom.Vec3) []float64 {
	const bins = 20
	const maxD = 40.0
	d := make([]float64, bins+1)
	n := len(ca)
	if n < 2 {
		d[bins] = float64(n)
		return d
	}
	// Sample pairs on a stride so the descriptor is O(n) for long chains.
	stride := 1
	if n > 200 {
		stride = n / 200
	}
	count := 0
	for i := 0; i < n; i += stride {
		for j := i + 3; j < n; j += stride {
			dist := ca[i].Dist(ca[j])
			b := int(dist / maxD * bins)
			if b >= bins {
				b = bins - 1
			}
			d[b]++
			count++
		}
	}
	if count > 0 {
		for b := 0; b < bins; b++ {
			d[b] /= float64(count)
		}
	}
	d[bins] = float64(n) / 500.0 // length term, scaled to histogram magnitude
	return d
}

func descL1(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		s += diff
	}
	return s
}

// Hit is one structural search result.
type Hit struct {
	ID     string
	Family int
	// TM is the TM-score over the aligned region (domain-level annotation
	// transfer, as in the paper's APoc alignments: a single-domain database
	// entry can annotate one domain of a multi-domain query).
	TM float64
	// Coverage is the aligned fraction of the query.
	Coverage float64
}

// Search returns the best topK structural matches of a query Cα trace,
// using the descriptor prefilter followed by exact TM-scoring of the top
// candidates. Alignment between different-length chains uses the leading
// min(lenQ, lenE) residues of both (domain folds in this corpus share
// N-terminal topology), with the score normalized by the full query length.
func (db *StructDB) Search(queryCA []geom.Vec3, topK int) ([]Hit, error) {
	if len(queryCA) == 0 {
		return nil, fmt.Errorf("analysis: empty query structure")
	}
	if topK <= 0 {
		topK = 1
	}
	qDesc := Descriptor(queryCA)

	// Stage 1: descriptor ranking.
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, len(db.Entries))
	for i := range db.Entries {
		cands[i] = cand{idx: i, dist: descL1(qDesc, db.Entries[i].desc)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].idx < cands[j].idx
	})
	nExact := 16
	if topK > nExact {
		nExact = topK
	}
	if nExact > len(cands) {
		nExact = len(cands)
	}

	// Stage 2: exact TM on the shortlisted candidates.
	hits := make([]Hit, 0, nExact)
	for _, c := range cands[:nExact] {
		e := &db.Entries[c.idx]
		l := len(queryCA)
		if len(e.CA) < l {
			l = len(e.CA)
		}
		if l < 5 {
			continue
		}
		cov := float64(l) / float64(len(queryCA))
		if cov < 0.25 && l < 60 {
			continue // too small an overlap to transfer annotation
		}
		tm, err := geom.TMScore(e.CA[:l], queryCA[:l])
		if err != nil {
			return nil, err
		}
		hits = append(hits, Hit{ID: e.ID, Family: e.Family, TM: tm, Coverage: cov})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].TM != hits[j].TM {
			return hits[i].TM > hits[j].TM
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > topK {
		hits = hits[:topK]
	}
	return hits, nil
}

// Annotation is the outcome of analysing one hypothetical protein.
type Annotation struct {
	ID string
	// Top structural hit (zero Hit if the database is empty).
	Top Hit
	// SeqIdentity is the sequence identity over the structurally aligned
	// residue pairs (the APoc convention the paper reports). For remote
	// homologs this sits near the random background, which is how matches
	// with <10% identity arise.
	SeqIdentity float64
	// StructuralMatch is true when Top.TM ≥ 0.6 (the paper's threshold for
	// a useful annotation transfer).
	StructuralMatch bool
	// NovelFoldCandidate flags high-confidence predictions with no strong
	// structural match — the Section 4.6 discovery class (the paper's
	// example: >98% of residues with pLDDT > 90 yet top TM 0.358).
	NovelFoldCandidate bool
}

// Annotate runs the Section 4.6 analysis for one predicted structure.
// meanPLDDT is the prediction confidence used for novel-fold calling.
func Annotate(db *StructDB, id string, queryCA []geom.Vec3, querySeq string, meanPLDDT float64) (*Annotation, error) {
	hits, err := db.Search(queryCA, 1)
	if err != nil {
		return nil, err
	}
	a := &Annotation{ID: id}
	if len(hits) > 0 {
		a.Top = hits[0]
		a.StructuralMatch = a.Top.TM >= 0.6
		for i := range db.Entries {
			if db.Entries[i].ID == a.Top.ID {
				// Identity over the structural correspondence (here the
				// aligned prefix), not a sequence-optimized alignment.
				entrySeq := db.Entries[i].Sequence
				l := len(querySeq)
				if len(entrySeq) < l {
					l = len(entrySeq)
				}
				same := 0
				for k := 0; k < l; k++ {
					if querySeq[k] == entrySeq[k] {
						same++
					}
				}
				if l > 0 {
					a.SeqIdentity = float64(same) / float64(l)
				}
				break
			}
		}
	}
	a.NovelFoldCandidate = meanPLDDT > 90 && a.Top.TM < 0.45
	return a, nil
}

// Report aggregates annotations the way Section 4.6 reports them.
type Report struct {
	Total             int
	StructuralMatch   int // top TM ≥ 0.6
	MatchSeqIDBelow20 int
	MatchSeqIDBelow10 int
	NovelFolds        int
}

// Aggregate builds a report from annotations.
func Aggregate(anns []*Annotation) Report {
	var r Report
	for _, a := range anns {
		r.Total++
		if a.StructuralMatch {
			r.StructuralMatch++
			if a.SeqIdentity < 0.20 {
				r.MatchSeqIDBelow20++
			}
			if a.SeqIdentity < 0.10 {
				r.MatchSeqIDBelow10++
			}
		}
		if a.NovelFoldCandidate {
			r.NovelFolds++
		}
	}
	return r
}
