package analysis

import (
	"math"
	"testing"

	"repro/internal/events"
)

func TestReplayOccupancy(t *testing.T) {
	// w1 is busy 6s of the 10s span across two tasks; w2 runs one task for
	// 2s and is lost mid-second-task at 10s (interval closed by the loss).
	evs := []events.Event{
		{Seq: 1, TimeNS: 0, Type: events.WorkerJoin, Worker: "w1"},
		{Seq: 2, TimeNS: 0, Type: events.WorkerJoin, Worker: "w2"},
		{Seq: 3, TimeNS: 0, Type: events.TaskReceived, Task: "a"},
		{Seq: 4, TimeNS: 0, Type: events.TaskQueued, Task: "a"},
		{Seq: 5, TimeNS: 1e9, Type: events.TaskAssigned, Task: "a", Worker: "w1"},
		{Seq: 6, TimeNS: 5e9, Type: events.TaskDone, Task: "a", Worker: "w1"},
		{Seq: 7, TimeNS: 5e9, Type: events.TaskReceived, Task: "b"},
		{Seq: 8, TimeNS: 5e9, Type: events.TaskQueued, Task: "b"},
		{Seq: 9, TimeNS: 6e9, Type: events.TaskAssigned, Task: "b", Worker: "w1"},
		{Seq: 10, TimeNS: 8e9, Type: events.TaskDone, Task: "b", Worker: "w1"},
		{Seq: 11, TimeNS: 0, Type: events.TaskReceived, Task: "c"},
		{Seq: 12, TimeNS: 0, Type: events.TaskQueued, Task: "c"},
		{Seq: 13, TimeNS: 2e9, Type: events.TaskAssigned, Task: "c", Worker: "w2"},
		{Seq: 14, TimeNS: 4e9, Type: events.TaskDone, Task: "c", Worker: "w2"},
		{Seq: 15, TimeNS: 8e9, Type: events.TaskReceived, Task: "d"},
		{Seq: 16, TimeNS: 8e9, Type: events.TaskQueued, Task: "d"},
		{Seq: 17, TimeNS: 9e9, Type: events.TaskAssigned, Task: "d", Worker: "w2"},
		{Seq: 18, TimeNS: 10e9, Type: events.WorkerLost, Worker: "w2", Err: "silent"},
	}
	rep, err := events.ReplayEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	occ := ReplayOccupancy(rep)
	if len(occ) != 2 {
		t.Fatalf("got %d workers, want 2: %+v", len(occ), occ)
	}
	w1, w2 := occ[0], occ[1]
	if w1.Worker != "w1" || w2.Worker != "w2" {
		t.Fatalf("order = %q,%q, want w1,w2", w1.Worker, w2.Worker)
	}
	if w1.BusyNS != 6e9 || w1.Tasks != 2 {
		t.Errorf("w1 = %+v, want busy 6e9 over 2 tasks", w1)
	}
	if math.Abs(w1.Fraction-0.6) > 1e-12 {
		t.Errorf("w1 fraction = %v, want 0.6", w1.Fraction)
	}
	// w2: task c 2s + task d cut at the 10s loss stamp = 3s busy.
	if w2.BusyNS != 3e9 || w2.Tasks != 2 {
		t.Errorf("w2 = %+v, want busy 3e9 over 2 tasks", w2)
	}
	if math.Abs(w2.Fraction-0.3) > 1e-12 {
		t.Errorf("w2 fraction = %v, want 0.3", w2.Fraction)
	}
}

func TestReplayOccupancyEmpty(t *testing.T) {
	rep, err := events.ReplayEvents(nil)
	if err != nil {
		t.Fatal(err)
	}
	if occ := ReplayOccupancy(rep); len(occ) != 0 {
		t.Fatalf("empty replay yielded %+v", occ)
	}
}
