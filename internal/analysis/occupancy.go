package analysis

import (
	"sort"

	"repro/internal/events"
)

// WorkerOccupancy is one worker's share of the campaign span spent busy —
// the per-worker utilisation number behind the paper's Fig-2 timeline and
// the live `proteomectl top` view, computed offline from an event log.
type WorkerOccupancy struct {
	Worker string
	// BusyNS is the summed busy-interval time reconstructed from the
	// stream (events.Replay.WorkerBusyNS).
	BusyNS int64
	// Fraction is BusyNS over the replay span, in [0, 1] for a
	// well-formed log.
	Fraction float64
	// Tasks counts the busy intervals (task executions, including ones
	// cut short by a worker death).
	Tasks int
}

// ReplayOccupancy computes each worker's busy fraction over the replayed
// span, sorted by worker name. A replay with no span (zero or one event)
// yields zero fractions.
func ReplayOccupancy(rep *events.Replay) []WorkerOccupancy {
	busy := rep.WorkerBusyNS()
	tasks := make(map[string]int, len(rep.Workers))
	for i := range rep.Intervals {
		tasks[rep.Intervals[i].Worker]++
	}
	out := make([]WorkerOccupancy, 0, len(rep.Workers))
	for _, w := range rep.Workers {
		o := WorkerOccupancy{Worker: w, BusyNS: busy[w], Tasks: tasks[w]}
		if rep.SpanNS > 0 {
			o.Fraction = float64(o.BusyNS) / float64(rep.SpanNS)
		}
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}
