package analysis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
)

// traceRows builds a synthetic two-worker trace: w1 runs 3 tasks of 2 s,
// w2 runs 1 task of 6 s, over a 10 s span (2 s of trailing idle).
func traceRows() []exec.TaskStats {
	base := time.Unix(1000, 0)
	mk := func(id, worker string, startOff, runSec float64, payload int, errMsg string) exec.TaskStats {
		start := base.Add(time.Duration(startOff * float64(time.Second)))
		return exec.TaskStats{
			TaskID: id, Kernel: "campaign/infer", WorkerID: worker,
			Enqueue: base, Start: start,
			Finish:       start.Add(time.Duration(runSec * float64(time.Second))),
			PayloadBytes: payload, Err: errMsg,
		}
	}
	return []exec.TaskStats{
		mk("a", "w1", 0, 2, 100, ""),
		mk("b", "w1", 2, 2, 100, ""),
		mk("c", "w1", 4, 2, 100, "boom"),
		mk("d", "w2", 4, 6, 100, ""),
	}
}

func TestLoadBalance(t *testing.T) {
	r := LoadBalance(traceRows(), 4)
	if r.Tasks != 4 || r.Failed != 1 {
		t.Fatalf("tasks = %d, failed = %d", r.Tasks, r.Failed)
	}
	if r.SpanSec != 10 {
		t.Errorf("span = %v, want 10", r.SpanSec)
	}
	if r.WireBytes != 400 {
		t.Errorf("wire bytes = %d, want 400", r.WireBytes)
	}
	if len(r.Workers) != 2 {
		t.Fatalf("workers = %d", len(r.Workers))
	}
	w1, w2 := r.Workers[0], r.Workers[1]
	if w1.WorkerID != "w1" || w2.WorkerID != "w2" {
		t.Fatalf("worker order = %s, %s (want sorted)", w1.WorkerID, w2.WorkerID)
	}
	if w1.Tasks != 3 || w1.BusySec != 6 || w1.BusyFrac != 0.6 {
		t.Errorf("w1 = %+v, want 3 tasks, 6 s busy, 0.6 frac", w1)
	}
	if w2.Tasks != 1 || w2.BusySec != 6 || w2.BusyFrac != 0.6 {
		t.Errorf("w2 = %+v", w2)
	}
	if r.MeanRunSec != 3 || r.MaxRunSec != 6 {
		t.Errorf("run stats: mean %v max %v, want 3 / 6", r.MeanRunSec, r.MaxRunSec)
	}
	// Histogram over [0, 6) in 4 bins of 1.5 s: three 2 s tasks in bin 1,
	// the 6 s task clamps into the last bin.
	counts := []int{0, 0, 0, 0}
	for i, b := range r.Hist {
		counts[i] = b.Count
	}
	if counts[1] != 3 || counts[3] != 1 || counts[0] != 0 || counts[2] != 0 {
		t.Errorf("histogram = %v, want [0 3 0 1]", counts)
	}

	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"4 tasks (1 failed)", "worker w1", "worker w2", "task-time histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestLoadBalanceEmpty(t *testing.T) {
	r := LoadBalance(nil, 0)
	if r.Tasks != 0 || len(r.Workers) != 0 {
		t.Fatalf("empty trace report = %+v", r)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
}
