package analysis

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/exec"
)

// fakeStats builds a two-worker trace: w0 runs a (0–2s) then c (3–4s),
// w1 runs b (0–3s). Everything was enqueued at t=0.
func fakeStats() []exec.TaskStats {
	t0 := time.Unix(1000, 0)
	at := func(s float64) time.Time { return t0.Add(time.Duration(s * float64(time.Second))) }
	return []exec.TaskStats{
		{TaskID: "a", Kernel: "k", WorkerID: "w0", Enqueue: at(0), Start: at(0.5), Finish: at(2)},
		{TaskID: "b", Kernel: "k", WorkerID: "w1", Enqueue: at(0), Start: at(0.5), Finish: at(3)},
		{TaskID: "c", Kernel: "k", WorkerID: "w0", Enqueue: at(0), Start: at(2.5), Finish: at(4)},
	}
}

func TestSimTasksFromStats(t *testing.T) {
	tasks := SimTasksFromStats(fakeStats())
	if len(tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(tasks))
	}
	// Enqueue order with task-ID tiebreak: a, b, c.
	if tasks[0].ID != "a" || tasks[1].ID != "b" || tasks[2].ID != "c" {
		t.Fatalf("order = %s, %s, %s", tasks[0].ID, tasks[1].ID, tasks[2].ID)
	}
	if tasks[0].Duration != 1.5 || tasks[1].Duration != 2.5 || tasks[2].Duration != 1.5 {
		t.Fatalf("durations = %v, %v, %v", tasks[0].Duration, tasks[1].Duration, tasks[2].Duration)
	}
}

func TestTimelineFromStats(t *testing.T) {
	fig, err := TimelineFromStats(fakeStats(), "test run")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 || fig.Rows[0] != "w0" || fig.Rows[1] != "w1" {
		t.Fatalf("rows = %v", fig.Rows)
	}
	if len(fig.Measured) != 3 {
		t.Fatalf("measured blocks = %d", len(fig.Measured))
	}
	// Block "a": row 0, 0.5–2s after the trace origin.
	found := false
	for _, iv := range fig.Measured {
		if iv.Label == "a" {
			found = true
			if iv.Row != 0 || iv.Start != 0.5 || iv.End != 2 {
				t.Errorf("block a = %+v", iv)
			}
		}
	}
	if !found {
		t.Fatal("no measured block for task a")
	}
	// The overlay simulates the same three tasks on two workers.
	if len(fig.Simulated) != 3 {
		t.Fatalf("simulated blocks = %d", len(fig.Simulated))
	}
	// Queue depth: 3 enqueued at 0, two starts at 0.5, one at 2.5.
	wantDepth := []struct {
		t float64
		d int
	}{{0, 3}, {0.5, 1}, {2.5, 0}}
	if len(fig.Depth) != len(wantDepth) {
		t.Fatalf("depth = %+v", fig.Depth)
	}
	for i, w := range wantDepth {
		if fig.Depth[i].T != w.t || fig.Depth[i].Depth != w.d {
			t.Fatalf("depth[%d] = %+v, want %+v", i, fig.Depth[i], w)
		}
	}

	if _, err := TimelineFromStats(nil, "empty"); err == nil {
		t.Fatal("empty trace produced a figure")
	}
}

func TestWriteTimelineSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimelineSVG(&buf, fakeStats(), "DVU campaign"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "DVU campaign", "w0", "w1", "queue depth", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Deterministic render.
	var again bytes.Buffer
	if err := WriteTimelineSVG(&again, fakeStats(), "DVU campaign"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same trace differ")
	}
}

// TestTimelineUnplacedRowsNotSimulated: rows with no worker identity
// render on a synthetic "(unplaced)" row but must not grant the
// simulated overlay phantom parallelism.
func TestTimelineUnplacedRowsNotSimulated(t *testing.T) {
	t0 := time.Unix(1000, 0)
	rows := []exec.TaskStats{
		{TaskID: "a", WorkerID: "w0", Enqueue: t0, Start: t0, Finish: t0.Add(2 * time.Second)},
		{TaskID: "b", WorkerID: "", Enqueue: t0, Start: t0, Finish: t0.Add(2 * time.Second)},
		{TaskID: "c", WorkerID: "w0", Enqueue: t0, Start: t0.Add(2 * time.Second), Finish: t0.Add(4 * time.Second)},
	}
	fig, err := TimelineFromStats(rows, "unplaced")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 { // "(unplaced)" + w0
		t.Fatalf("rows = %v", fig.Rows)
	}
	// One real worker: the 3 simulated tasks must run serially (total 6s
	// of work ⇒ last simulated end ≥ 6s), not in parallel on a phantom
	// second worker.
	maxEnd := 0.0
	for _, iv := range fig.Simulated {
		if iv.Row != 1 {
			t.Fatalf("simulated block on row %d, want only the real worker row: %+v", iv.Row, iv)
		}
		if iv.End > maxEnd {
			maxEnd = iv.End
		}
	}
	if maxEnd < 6 {
		t.Fatalf("simulated makespan %v implies phantom parallelism", maxEnd)
	}
}

func TestWriteTimelineFile(t *testing.T) {
	path := t.TempDir() + "/timeline.svg"
	if err := WriteTimelineFile(path, fakeStats(), "file test"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "</svg>") {
		t.Fatal("timeline file is not a complete SVG")
	}
	if err := WriteTimelineFile(t.TempDir()+"/no/such/dir.svg", fakeStats(), "t"); err == nil {
		t.Fatal("uncreatable path succeeded")
	}
	if err := WriteTimelineFile(t.TempDir()+"/empty.svg", nil, "t"); err == nil {
		t.Fatal("empty trace succeeded")
	}
}

// TestTimelineClockSkewClampsDepth: on a cross-host deployment the
// worker's Start stamp can precede the scheduler's Enqueue stamp; the
// depth series must clamp at zero instead of rendering negative.
func TestTimelineClockSkewClampsDepth(t *testing.T) {
	t0 := time.Unix(1000, 0)
	rows := []exec.TaskStats{
		// Worker clock 2s behind the scheduler: starts "before" enqueue.
		{TaskID: "a", WorkerID: "w0", Enqueue: t0.Add(2 * time.Second), Start: t0, Finish: t0.Add(time.Second)},
		{TaskID: "b", WorkerID: "w0", Enqueue: t0.Add(3 * time.Second), Start: t0.Add(4 * time.Second), Finish: t0.Add(5 * time.Second)},
	}
	fig, err := TimelineFromStats(rows, "skewed")
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range fig.Depth {
		if d.Depth < 0 {
			t.Fatalf("depth[%d] went negative: %+v", i, fig.Depth)
		}
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatalf("skewed figure failed to render: %v", err)
	}
}

func TestReplayTimeline(t *testing.T) {
	evs := []events.Event{
		{Seq: 1, TimeNS: 0, Type: events.WorkerJoin, Worker: "w0"},
		{Seq: 2, TimeNS: 0, Type: events.WorkerJoin, Worker: "w1"},
		{Seq: 3, TimeNS: 1e9, Type: events.TaskReceived, Task: "a"},
		{Seq: 4, TimeNS: 1e9, Type: events.TaskQueued, Task: "a"},
		{Seq: 5, TimeNS: 1e9, Type: events.TaskReceived, Task: "b"},
		{Seq: 6, TimeNS: 1e9, Type: events.TaskQueued, Task: "b"},
		{Seq: 7, TimeNS: 2e9, Type: events.TaskAssigned, Task: "a", Worker: "w0"},
		{Seq: 8, TimeNS: 2e9, Type: events.TaskRunning, Task: "a", Worker: "w0"},
		{Seq: 9, TimeNS: 2e9, Type: events.TaskAssigned, Task: "b", Worker: "w1"},
		{Seq: 10, TimeNS: 2e9, Type: events.TaskRunning, Task: "b", Worker: "w1"},
		{Seq: 11, TimeNS: 5e9, Type: events.TaskDone, Task: "a", Worker: "w0"},
		{Seq: 12, TimeNS: 7e9, Type: events.TaskDone, Task: "b", Worker: "w1"},
	}
	rep, err := events.ReplayEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := ReplayTimeline(rep, "replayed run")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 || len(fig.Measured) != 2 || len(fig.Simulated) != 2 {
		t.Fatalf("rows=%d measured=%d simulated=%d", len(fig.Rows), len(fig.Measured), len(fig.Simulated))
	}
	// Origin is the first queue activity (t=1s in scheduler time), so
	// block a runs 1–4s on the figure axis.
	for _, iv := range fig.Measured {
		if iv.Label == "a" && (iv.Row != 0 || iv.Start != 1 || iv.End != 4) {
			t.Errorf("block a = %+v", iv)
		}
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replayed") {
		t.Error("legend missing the replayed label")
	}

	if _, err := ReplayTimeline(&events.Replay{}, "empty"); err == nil {
		t.Fatal("empty replay produced a figure")
	}
}
