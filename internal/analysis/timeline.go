package analysis

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/svgplot"
)

// This file builds the paper's Fig-2-style worker-timeline figure from
// the two observability records the system keeps — the client-side
// per-task trace (exec.TaskStats) and the scheduler-side structured
// event log (events.Replay) — and overlays each recorded run on
// cluster.SimulateDataflow's prediction for the same task set: the
// measured-vs-simulated comparison the ROADMAP's load-balance figure
// asks for.

// statsOrder sorts rows chronologically (enqueue, start, task ID) — the
// submission order the simulator replays.
func statsOrder(rows []exec.TaskStats) []exec.TaskStats {
	sorted := append([]exec.TaskStats(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := &sorted[i], &sorted[j]
		if !a.Enqueue.Equal(b.Enqueue) {
			return a.Enqueue.Before(b.Enqueue)
		}
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return a.TaskID < b.TaskID
	})
	return sorted
}

// SimTasksFromStats converts a recorded trace into the simulator's task
// list: one SimTask per row in enqueue order, with the measured run time
// as both duration and weight. Feeding it to cluster.SimulateDataflow
// with the run's worker count predicts the timeline an ideal
// earliest-free-worker dataflow would have produced for the same tasks.
func SimTasksFromStats(rows []exec.TaskStats) []cluster.SimTask {
	sorted := statsOrder(rows)
	tasks := make([]cluster.SimTask, len(sorted))
	for i := range sorted {
		r := &sorted[i]
		tasks[i] = cluster.SimTask{
			ID:       r.TaskID,
			Weight:   r.RunSeconds(),
			Duration: r.RunSeconds(),
		}
	}
	return tasks
}

// TimelineFromStats builds the measured-vs-simulated timeline figure
// from a recorded trace: filled blocks are the run as measured (one row
// per worker, start→finish per task), outlined blocks are
// cluster.SimulateDataflow's prediction for the same tasks at the same
// worker count, and the depth strip counts enqueued-but-unstarted tasks
// over time.
func TimelineFromStats(rows []exec.TaskStats, title string) (*svgplot.Timeline, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("analysis: timeline needs a non-empty trace")
	}
	sorted := statsOrder(rows)

	// The time origin is the earliest stamp in the trace; rows without an
	// enqueue stamp (pre-telemetry peers) fall back to their start.
	var t0 time.Time
	for i := range sorted {
		begin := sorted[i].Enqueue
		if begin.IsZero() {
			begin = sorted[i].Start
		}
		if t0.IsZero() || begin.Before(t0) {
			t0 = begin
		}
	}
	secs := func(ts time.Time) float64 {
		if ts.IsZero() {
			return 0
		}
		return ts.Sub(t0).Seconds()
	}

	workers := make([]string, 0, 8)
	rowOf := make(map[string]int)
	for i := range sorted {
		id := sorted[i].WorkerID
		if id == "" {
			id = "(unplaced)"
		}
		if _, ok := rowOf[id]; !ok {
			rowOf[id] = 0
			workers = append(workers, id)
		}
	}
	sort.Strings(workers)
	for i, id := range workers {
		rowOf[id] = i
	}

	fig := &svgplot.Timeline{
		Title:          title,
		Rows:           workers,
		MeasuredLabel:  "measured",
		SimulatedLabel: "simulated",
	}

	// Multi-tenant traces get a campaign legend and per-campaign block
	// colors; a trace with no campaign identity anywhere renders
	// byte-identically to pre-campaign releases.
	campaignOf := make(map[string]int)
	for i := range sorted {
		if c := sorted[i].Campaign; c != "" {
			if _, ok := campaignOf[c]; !ok {
				campaignOf[c] = 0
				fig.CampaignLabels = append(fig.CampaignLabels, c)
			}
		}
	}
	sort.Strings(fig.CampaignLabels)
	for i, c := range fig.CampaignLabels {
		campaignOf[c] = i + 1
	}

	firstStart := -1.0
	for i := range sorted {
		r := &sorted[i]
		id := r.WorkerID
		if id == "" {
			id = "(unplaced)"
		}
		start := secs(r.Start)
		if firstStart < 0 || start < firstStart {
			firstStart = start
		}
		fig.Measured = append(fig.Measured, svgplot.Interval{
			Row: rowOf[id], Start: start, End: secs(r.Finish), Label: r.TaskID,
			Campaign: campaignOf[r.Campaign],
		})
	}

	// Queue depth: +1 at enqueue, -1 at start, replayed in time order.
	type step struct {
		t float64
		d int
	}
	var steps []step
	for i := range sorted {
		r := &sorted[i]
		if r.Enqueue.IsZero() {
			continue // no queue residency observable for this row
		}
		steps = append(steps, step{secs(r.Enqueue), +1}, step{secs(r.Start), -1})
	}
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].t != steps[j].t {
			return steps[i].t < steps[j].t
		}
		return steps[i].d > steps[j].d // enqueues before dequeues at a tie
	})
	depth := 0
	for _, st := range steps {
		depth += st.d
		// Enqueue is stamped by the scheduler's clock and Start by the
		// worker's; on a cross-host deployment skew can order a start
		// before its enqueue. Clamp rather than render a negative depth.
		if depth < 0 {
			depth = 0
		}
		if n := len(fig.Depth); n > 0 && fig.Depth[n-1].T == st.t {
			fig.Depth[n-1].Depth = depth
			continue
		}
		fig.Depth = append(fig.Depth, svgplot.DepthPoint{T: st.t, Depth: depth})
	}

	// The simulator's prediction for the same tasks: same worker count,
	// submission order as recorded, startup delay aligned to the first
	// measured start so the two timelines share an origin. The synthetic
	// "(unplaced)" row (rows with no worker identity) is not a worker —
	// counting it would grant the prediction phantom parallelism.
	var realRows []int
	for row, id := range workers {
		if id != "(unplaced)" {
			realRows = append(realRows, row)
		}
	}
	if len(realRows) == 0 {
		realRows = []int{0} // a fully unplaced trace still gets a 1-worker prediction
	}
	sim, err := cluster.SimulateDataflow(SimTasksFromStats(rows), cluster.DataflowOptions{
		Workers:      len(realRows),
		StartupDelay: firstStart,
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: simulating recorded tasks: %w", err)
	}
	fig.Simulated = simIntervals(sim, func(w int) int { return realRows[w] })
	return fig, nil
}

// simIntervals converts a simulation result into figure blocks; rowFor
// maps a simulated worker index onto its figure row.
func simIntervals(sim *cluster.SimResult, rowFor func(int) int) []svgplot.Interval {
	out := make([]svgplot.Interval, len(sim.Intervals))
	for i, iv := range sim.Intervals {
		out[i] = svgplot.Interval{Row: rowFor(iv.Worker), Start: iv.Start, End: iv.End, Label: iv.TaskID}
	}
	return out
}

// WriteTimelineSVG renders the measured-vs-simulated figure for a
// recorded trace — the artifact behind `proteomectl run/submit -timeline`
// and `afbench -timeline`.
func WriteTimelineSVG(w io.Writer, rows []exec.TaskStats, title string) error {
	fig, err := TimelineFromStats(rows, title)
	if err != nil {
		return err
	}
	return fig.Render(w)
}

// WriteTimelineFile is WriteTimelineSVG to a file path — the shared body
// of the CLI -timeline flags.
func WriteTimelineFile(path string, rows []exec.TaskStats, title string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTimelineSVG(f, rows, title); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReplayTimeline builds the same figure from a scheduler event-log
// replay instead of a client-side trace: busy intervals and queue depth
// come from the structured stream alone (no client cooperation), and the
// overlay simulates the reconstructed durations at the replay's worker
// count.
func ReplayTimeline(rep *events.Replay, title string) (*svgplot.Timeline, error) {
	if len(rep.Intervals) == 0 {
		return nil, fmt.Errorf("analysis: replay has no busy intervals")
	}
	rowOf := make(map[string]int, len(rep.Workers))
	for i, w := range rep.Workers {
		rowOf[w] = i
	}

	// Time origin: the first queue or interval activity in the log (the
	// scheduler may have idled long before the campaign).
	t0 := rep.Intervals[0].StartNS
	for i := range rep.Intervals {
		if rep.Intervals[i].StartNS < t0 {
			t0 = rep.Intervals[i].StartNS
		}
	}
	for _, d := range rep.Depth {
		if d.TimeNS < t0 {
			t0 = d.TimeNS
		}
	}
	secs := func(ns int64) float64 { return float64(ns-t0) / 1e9 }

	fig := &svgplot.Timeline{
		Title:          title,
		Rows:           rep.Workers,
		MeasuredLabel:  "replayed",
		SimulatedLabel: "simulated",
	}
	firstStart := -1.0
	ordered := append([]events.Interval(nil), rep.Intervals...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].StartNS != ordered[j].StartNS {
			return ordered[i].StartNS < ordered[j].StartNS
		}
		return ordered[i].Task < ordered[j].Task
	})
	simTasks := make([]cluster.SimTask, 0, len(ordered))
	for i := range ordered {
		iv := &ordered[i]
		row, ok := rowOf[iv.Worker]
		if !ok {
			continue // interval on a worker the log never saw join
		}
		start, end := secs(iv.StartNS), secs(iv.EndNS)
		if firstStart < 0 || start < firstStart {
			firstStart = start
		}
		fig.Measured = append(fig.Measured, svgplot.Interval{
			Row: row, Start: start, End: end, Label: iv.Task,
		})
		dur := end - start
		simTasks = append(simTasks, cluster.SimTask{ID: iv.Task, Weight: dur, Duration: dur})
	}
	for _, d := range rep.Depth {
		fig.Depth = append(fig.Depth, svgplot.DepthPoint{T: secs(d.TimeNS), Depth: d.Depth})
	}

	sim, err := cluster.SimulateDataflow(simTasks, cluster.DataflowOptions{
		Workers:      len(rep.Workers),
		StartupDelay: firstStart,
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: simulating replayed tasks: %w", err)
	}
	fig.Simulated = simIntervals(sim, func(w int) int { return w })
	return fig, nil
}
