package analysis

import (
	"testing"

	"repro/internal/fold"
	"repro/internal/geom"
	"repro/internal/proteome"
	"repro/internal/rng"
)

const universeSeed = 42

func testDB(t *testing.T, u *proteome.Universe, families []int) *StructDB {
	t.Helper()
	return BuildPDB70(u, families, universeSeed)
}

func TestBuildPDB70(t *testing.T) {
	u := proteome.NewUniverse(1, 16, 60, 150)
	db := testDB(t, u, []int{0, 1, 2, 5})
	if len(db.Entries) != 4 {
		t.Fatalf("entries = %d", len(db.Entries))
	}
	for _, e := range db.Entries {
		if len(e.CA) != len(e.Sequence) {
			t.Errorf("%s: %d CA for %d residues", e.ID, len(e.CA), len(e.Sequence))
		}
		if len(e.desc) == 0 {
			t.Errorf("%s: descriptor missing", e.ID)
		}
	}
	// Out-of-range families are skipped, not fatal.
	db2 := BuildPDB70(u, []int{-1, 999, 3}, universeSeed)
	if len(db2.Entries) != 1 {
		t.Errorf("out-of-range families not skipped: %d entries", len(db2.Entries))
	}
}

func TestDescriptorProperties(t *testing.T) {
	a := fold.GenerateTopology(fold.FamilyTopologySeed(universeSeed, 0), 120)
	b := fold.GenerateTopology(fold.FamilyTopologySeed(universeSeed, 1), 120)
	da := Descriptor(a.CA)
	db := Descriptor(b.CA)
	if descL1(da, da) != 0 {
		t.Error("self-descriptor distance nonzero")
	}
	if descL1(da, db) <= 0 {
		t.Error("different folds with zero descriptor distance")
	}
	// Tiny structures do not crash.
	_ = Descriptor([]geom.Vec3{{X: 1}})
	_ = Descriptor(nil)
}

func TestSearchFindsOwnFamily(t *testing.T) {
	u := proteome.NewUniverse(2, 24, 70, 160)
	families := make([]int, 24)
	for i := range families {
		families[i] = i
	}
	db := testDB(t, u, families)

	// Query: a noisy copy of family 7's fold (a good prediction of a
	// family-7 member).
	nat := fold.GenerateTopology(fold.FamilyTopologySeed(universeSeed, 7), len(u.Domains[7]))
	r := rng.New(3)
	query := geom.Clone(nat.CA)
	for i := range query {
		query[i] = query[i].Add(geom.Vec3{
			X: r.NormFloat64() * 0.8, Y: r.NormFloat64() * 0.8, Z: r.NormFloat64() * 0.8,
		})
	}
	hits, err := db.Search(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Family != 7 {
		t.Errorf("top hit family = %d, want 7 (TM %v)", hits[0].Family, hits[0].TM)
	}
	if hits[0].TM < 0.6 {
		t.Errorf("own-family TM = %v, want ≥ 0.6", hits[0].TM)
	}
}

func TestSearchMissingFamilyScoresLow(t *testing.T) {
	u := proteome.NewUniverse(2, 24, 70, 160)
	// Database covers families 0..11 only.
	families := make([]int, 12)
	for i := range families {
		families[i] = i
	}
	db := testDB(t, u, families)

	// Query from uncovered family 20: no strong match should exist.
	nat := fold.GenerateTopology(fold.FamilyTopologySeed(universeSeed, 20), len(u.Domains[20]))
	hits, err := db.Search(nat.CA, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 0 && hits[0].TM >= 0.6 {
		t.Errorf("uncovered family matched with TM %v", hits[0].TM)
	}
}

func TestSearchValidation(t *testing.T) {
	u := proteome.NewUniverse(1, 4, 60, 100)
	db := testDB(t, u, []int{0, 1})
	if _, err := db.Search(nil, 1); err == nil {
		t.Error("empty query accepted")
	}
	// topK larger than database is fine.
	nat := fold.GenerateTopology(1, 80)
	hits, err := db.Search(nat.CA, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 2 {
		t.Errorf("more hits than entries: %d", len(hits))
	}
}

func TestAnnotateRemoteHomolog(t *testing.T) {
	// The Section 4.6 scenario: a hypothetical protein whose sequence has
	// diverged beyond recognition but whose structure still matches its
	// family — annotation transfer via structure.
	u := proteome.NewUniverse(5, 16, 80, 140)
	families := make([]int, 16)
	for i := range families {
		families[i] = i
	}
	db := testDB(t, u, families)

	fam := 4
	r := rng.New(9)
	divergedSeq := u.Mutate(fam, 0.8, r) // far beyond sequence recognition
	nat := fold.GenerateTopology(fold.FamilyTopologySeed(universeSeed, fam), len(divergedSeq))

	ann, err := Annotate(db, "hypo1", nat.CA, divergedSeq, 85)
	if err != nil {
		t.Fatal(err)
	}
	if !ann.StructuralMatch {
		t.Errorf("remote homolog not matched structurally (TM %v)", ann.Top.TM)
	}
	if ann.Top.Family != fam {
		t.Errorf("matched family %d, want %d", ann.Top.Family, fam)
	}
	if ann.SeqIdentity > 0.45 {
		t.Errorf("sequence identity %v; expected low for an 80%%-diverged sequence", ann.SeqIdentity)
	}
	if ann.NovelFoldCandidate {
		t.Error("matched structure must not be a novel-fold candidate")
	}
}

func TestAnnotateNovelFold(t *testing.T) {
	// High-confidence prediction, family absent from the database: the
	// paper's novel-fold discovery case (top TM 0.358 at pLDDT > 90).
	u := proteome.NewUniverse(5, 16, 80, 140)
	db := testDB(t, u, []int{0, 1, 2, 3})

	nat := fold.GenerateTopology(fold.FamilyTopologySeed(universeSeed, 12), 110)
	ann, err := Annotate(db, "novel1", nat.CA, u.Domains[12][:110], 93)
	if err != nil {
		t.Fatal(err)
	}
	if ann.StructuralMatch {
		t.Errorf("uncovered family matched (TM %v)", ann.Top.TM)
	}
	if !ann.NovelFoldCandidate {
		t.Errorf("high-confidence unmatched fold not flagged novel (TM %v)", ann.Top.TM)
	}
	// Low-confidence unmatched prediction is NOT a novel-fold call.
	ann2, err := Annotate(db, "junk1", nat.CA, u.Domains[12][:110], 55)
	if err != nil {
		t.Fatal(err)
	}
	if ann2.NovelFoldCandidate {
		t.Error("low-confidence prediction flagged as novel fold")
	}
}

func TestAggregate(t *testing.T) {
	anns := []*Annotation{
		{StructuralMatch: true, SeqIdentity: 0.15},
		{StructuralMatch: true, SeqIdentity: 0.05},
		{StructuralMatch: true, SeqIdentity: 0.30},
		{StructuralMatch: false, NovelFoldCandidate: true},
		{StructuralMatch: false},
	}
	r := Aggregate(anns)
	if r.Total != 5 || r.StructuralMatch != 3 {
		t.Errorf("report = %+v", r)
	}
	if r.MatchSeqIDBelow20 != 2 || r.MatchSeqIDBelow10 != 1 {
		t.Errorf("identity tiers = %d/%d", r.MatchSeqIDBelow20, r.MatchSeqIDBelow10)
	}
	if r.NovelFolds != 1 {
		t.Errorf("novel folds = %d", r.NovelFolds)
	}
}

func BenchmarkSearch(b *testing.B) {
	u := proteome.NewUniverse(2, 64, 70, 160)
	families := make([]int, 64)
	for i := range families {
		families[i] = i
	}
	db := BuildPDB70(u, families, universeSeed)
	nat := fold.GenerateTopology(fold.FamilyTopologySeed(universeSeed, 30), len(u.Domains[30]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Search(nat.CA, 1); err != nil {
			b.Fatal(err)
		}
	}
}
