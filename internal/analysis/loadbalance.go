package analysis

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/exec"
)

// WorkerLoad summarises one worker's share of a recorded trace.
type WorkerLoad struct {
	WorkerID string
	// Tasks is the number of tasks the worker completed.
	Tasks int
	// BusySec is the summed handler time of those tasks.
	BusySec float64
	// BusyFrac is BusySec over the campaign span — the per-worker busy
	// fraction of the paper's Fig-2-style load-balance analysis. 0 when
	// the span is degenerate.
	BusyFrac float64
}

// CampaignLoad summarises one campaign's share of a multi-tenant trace.
type CampaignLoad struct {
	// Campaign is the namespace the tasks were submitted under; rows with
	// no campaign aggregate under "(none)".
	Campaign string
	Tasks    int
	Failed   int
	// BusySec is the summed handler time of the campaign's tasks.
	BusySec float64
	// SpanSec is the campaign's own span: its earliest enqueue (falling
	// back to start) to its latest finish.
	SpanSec float64
}

// DurationBin is one bucket of the task-time histogram.
type DurationBin struct {
	// Lo and Hi bound the bucket in seconds: [Lo, Hi).
	Lo, Hi float64
	Count  int
}

// LoadBalanceReport is the load-balance analysis of one recorded trace —
// the analysis the paper builds on the per-task processing-times file
// (task → worker placement, queue/run timings), here computed from a real
// run's exec.TaskStats rather than the discrete-event simulator.
type LoadBalanceReport struct {
	Tasks   int
	Failed  int
	Workers []WorkerLoad // sorted by WorkerID
	// SpanSec is the campaign span: earliest enqueue (falling back to
	// start) to latest finish.
	SpanSec float64
	// MeanRunSec / MaxRunSec / MeanQueueSec summarise the per-task
	// timings.
	MeanRunSec   float64
	MaxRunSec    float64
	MeanQueueSec float64
	// WireBytes is the summed result-payload bytes — the cost the
	// summary-only result mode shrinks.
	WireBytes int
	// Hist is the task-duration histogram over [0, MaxRunSec].
	Hist []DurationBin
	// Campaigns breaks the trace down per campaign namespace (sorted by
	// name, "(none)" last). Empty — and absent from Render — when every
	// row is single-tenant, so existing reports are byte-identical.
	Campaigns []CampaignLoad
}

// LoadBalance computes the load-balance summary of a trace with the given
// number of histogram bins (<= 0 selects 10). Rows with no worker identity
// are still counted as tasks but excluded from per-worker loads.
func LoadBalance(rows []exec.TaskStats, bins int) *LoadBalanceReport {
	if bins <= 0 {
		bins = 10
	}
	r := &LoadBalanceReport{Tasks: len(rows)}
	if len(rows) == 0 {
		return r
	}

	var first, last time.Time
	byWorker := make(map[string]*WorkerLoad)
	type campaignSpan struct {
		load        CampaignLoad
		first, last time.Time
	}
	byCampaign := make(map[string]*campaignSpan)
	multiTenant := false
	var sumRun, sumQueue float64
	for i := range rows {
		row := &rows[i]
		begin := row.Enqueue
		if begin.IsZero() {
			begin = row.Start
		}
		if first.IsZero() || begin.Before(first) {
			first = begin
		}
		if row.Finish.After(last) {
			last = row.Finish
		}
		run := row.RunSeconds()
		sumRun += run
		sumQueue += row.QueueSeconds()
		if run > r.MaxRunSec {
			r.MaxRunSec = run
		}
		r.WireBytes += row.PayloadBytes
		if row.Err != "" {
			r.Failed++
		}
		if row.Campaign != "" {
			multiTenant = true
		}
		c := byCampaign[row.Campaign]
		if c == nil {
			c = &campaignSpan{load: CampaignLoad{Campaign: row.Campaign}}
			byCampaign[row.Campaign] = c
		}
		c.load.Tasks++
		c.load.BusySec += run
		if row.Err != "" {
			c.load.Failed++
		}
		if c.first.IsZero() || begin.Before(c.first) {
			c.first = begin
		}
		if row.Finish.After(c.last) {
			c.last = row.Finish
		}
		if row.WorkerID == "" {
			continue
		}
		w := byWorker[row.WorkerID]
		if w == nil {
			w = &WorkerLoad{WorkerID: row.WorkerID}
			byWorker[row.WorkerID] = w
		}
		w.Tasks++
		w.BusySec += run
	}
	r.MeanRunSec = sumRun / float64(len(rows))
	r.MeanQueueSec = sumQueue / float64(len(rows))
	if last.After(first) {
		r.SpanSec = last.Sub(first).Seconds()
	}

	r.Workers = make([]WorkerLoad, 0, len(byWorker))
	for _, w := range byWorker {
		if r.SpanSec > 0 {
			w.BusyFrac = w.BusySec / r.SpanSec
		}
		r.Workers = append(r.Workers, *w)
	}
	sort.Slice(r.Workers, func(i, j int) bool { return r.Workers[i].WorkerID < r.Workers[j].WorkerID })

	// The per-campaign breakdown only exists when the trace is actually
	// multi-tenant: a trace with no campaign identity anywhere keeps its
	// report byte-identical to pre-campaign releases.
	if multiTenant {
		r.Campaigns = make([]CampaignLoad, 0, len(byCampaign))
		for _, c := range byCampaign {
			if c.last.After(c.first) {
				c.load.SpanSec = c.last.Sub(c.first).Seconds()
			}
			if c.load.Campaign == "" {
				c.load.Campaign = "(none)"
			}
			r.Campaigns = append(r.Campaigns, c.load)
		}
		sort.Slice(r.Campaigns, func(i, j int) bool {
			ci, cj := r.Campaigns[i].Campaign, r.Campaigns[j].Campaign
			if (ci == "(none)") != (cj == "(none)") {
				return cj == "(none)"
			}
			return ci < cj
		})
	}

	// Task-time histogram over [0, MaxRunSec]; a degenerate max puts
	// everything in the first bin.
	r.Hist = make([]DurationBin, bins)
	width := r.MaxRunSec / float64(bins)
	for b := range r.Hist {
		r.Hist[b].Lo = float64(b) * width
		r.Hist[b].Hi = float64(b+1) * width
	}
	for i := range rows {
		b := 0
		if width > 0 {
			b = int(rows[i].RunSeconds() / width)
			if b >= bins {
				b = bins - 1
			}
			if b < 0 {
				b = 0
			}
		}
		r.Hist[b].Count++
	}
	return r
}

// Render writes the load-balance summary as a human-readable report.
func (r *LoadBalanceReport) Render(w io.Writer) error {
	var err error
	printf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	printf("load balance: %d tasks (%d failed), span %.3f s, %d wire bytes\n",
		r.Tasks, r.Failed, r.SpanSec, r.WireBytes)
	printf("task time: mean %.3f s, max %.3f s; queue mean %.3f s\n",
		r.MeanRunSec, r.MaxRunSec, r.MeanQueueSec)
	for _, cl := range r.Campaigns {
		printf("  campaign %-14s %6d tasks (%d failed)  busy %8.3f s  span %8.3f s\n",
			cl.Campaign, cl.Tasks, cl.Failed, cl.BusySec, cl.SpanSec)
	}
	for _, wl := range r.Workers {
		printf("  worker %-16s %6d tasks  busy %8.3f s  (%.1f%%)\n",
			wl.WorkerID, wl.Tasks, wl.BusySec, 100*wl.BusyFrac)
	}
	if len(r.Hist) > 0 && r.Tasks > 0 {
		printf("task-time histogram:\n")
		for _, b := range r.Hist {
			printf("  [%8.3f, %8.3f) %6d\n", b.Lo, b.Hi, b.Count)
		}
	}
	return err
}
