package exec

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// executors returns one of each back end at the given worker count, with
// cleanup registered on t.
func executors(t *testing.T, workers int) []Executor {
	t.Helper()
	fl, err := NewFlow(workers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	return []Executor{NewPool(workers), fl}
}

func TestMapMatchesSerialAcrossExecutors(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	square := func(i int, v int) (int, error) { return v*v + i, nil }

	want, err := Map(NewPool(1), items, square) // serial reference path
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		for _, ex := range executors(t, workers) {
			got, err := Map(ex, items, square)
			if err != nil {
				t.Fatalf("%s/%d: %v", ex.Name(), workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%d: results differ from serial reference", ex.Name(), workers)
			}
		}
	}
}

func TestLowestIndexErrorAcrossExecutors(t *testing.T) {
	items := make([]int, 50)
	for _, ex := range executors(t, 4) {
		_, err := Map(ex, items, func(i int, _ int) (int, error) {
			if i%13 == 7 { // fails at 7, 20, 33, 46 — serial surfaces 7
				return 0, fmt.Errorf("boom at %d", i)
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "boom at 7") {
			t.Errorf("%s: error = %v, want lowest-index boom at 7", ex.Name(), err)
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	for _, ex := range executors(t, 3) {
		if err := ForEach(ex, 0, func(int) error { return errors.New("never") }); err != nil {
			t.Errorf("%s: empty ForEach: %v", ex.Name(), err)
		}
		var ran atomic.Int64
		if err := ForEach(ex, 1, func(i int) error { ran.Add(1); return nil }); err != nil {
			t.Errorf("%s: single ForEach: %v", ex.Name(), err)
		}
		if ran.Load() != 1 {
			t.Errorf("%s: single item ran %d times", ex.Name(), ran.Load())
		}
	}
}

func TestFlowRunsEveryIndexExactlyOnce(t *testing.T) {
	fl, err := NewFlow(5)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if fl.Name() != "flow" || fl.NumWorkers() != 5 {
		t.Fatalf("identity: name=%s workers=%d", fl.Name(), fl.NumWorkers())
	}
	const n = 200
	counts := make([]atomic.Int64, n)
	if err := ForEach(fl, n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestFlowSequentialBatches(t *testing.T) {
	fl, err := NewFlow(3)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for batch := 0; batch < 3; batch++ {
		got, err := Map(fl, []int{10, 20, 30}, func(i int, v int) (int, error) {
			return v + batch, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []int{10 + batch, 20 + batch, 30 + batch}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batch %d: got %v want %v", batch, got, want)
		}
	}
}

func TestFlowClosedExecutorErrors(t *testing.T) {
	fl, err := NewFlow(2)
	if err != nil {
		t.Fatal(err)
	}
	fl.Close()
	fl.Close() // idempotent
	if err := ForEach(fl, 3, func(int) error { return nil }); err == nil {
		t.Error("ForEach on closed flow executor must fail")
	}
}

func TestResolve(t *testing.T) {
	if ex := Resolve(nil, 4); ex.Name() != "pool" {
		t.Errorf("Resolve(nil) = %s, want pool", ex.Name())
	}
	fl, err := NewFlow(1)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if ex := Resolve(fl, 4); ex != Executor(fl) {
		t.Error("Resolve must pass through a configured executor")
	}
	if (&Pool{}).Close() != nil {
		t.Error("pool Close must be a no-op")
	}
}
