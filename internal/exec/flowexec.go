package exec

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flow"
)

// Flow is the dataflow-backed Executor: a private flow cluster (one
// Scheduler, W Workers, one Client) over loopback TCP. Every batch is
// serialized through the scheduler/worker/client protocol — each index
// becomes one flow.Task, workers pull tasks in dataflow fashion, and the
// closure runs in-process on the worker's goroutine, so campaign results
// are written into the caller's slices exactly as the pool executor would.
//
// Completion order is whatever the network delivers, but nothing
// observable depends on it: results are keyed by index and errors are
// reduced to the lowest index, so a flow run at any worker count is
// byte-identical to the pool and to the serial loop.
type Flow struct {
	sched   *flow.Scheduler
	workers []*flow.Worker
	client  *flow.Client

	// remote marks a client-only executor connected to a standalone
	// scheduler whose workers live in other OS processes. A remote
	// executor cannot run closures — work reaches it only as registered
	// named-job specs via DispatchSpecs.
	remote bool

	// specNonce makes this client's spec-task IDs globally unique on a
	// shared scheduler: several submit clients may drive one standalone
	// scheduler concurrently, and the scheduler tracks in-flight work by
	// task ID, so bare batch indices from two clients would collide.
	// specSeq distinguishes successive batches (guarded by mu).
	specNonce string
	specSeq   uint64

	// mu serializes batches: the worker handler resolves tasks against the
	// single current batch.
	mu    sync.Mutex
	batch atomic.Pointer[flowBatch]

	// trace, when set, receives one TaskStats per completed flow task:
	// worker identity and timings come back over the wire in each
	// flow.Result (the scheduler stamps the enqueue, the worker brackets
	// the handler), and PayloadBytes measures the encoded result payload.
	trace TraceSink

	// campaign is the multi-tenant namespace every submission travels
	// under (SetCampaign); it rides the submit frame and is echoed into
	// each TaskStats row.
	campaign string

	closeOnce sync.Once
}

// flowBatch is the state of one in-flight ForEach call. bmu orders every
// handler's bookkeeping before the caller's final read, which also makes
// the closure's writes (out[i] in Map) visible to the caller.
type flowBatch struct {
	fn  func(i int) error
	bmu sync.Mutex
	// ran guards against a task being delivered twice (the scheduler
	// requeues on worker disconnect); in-process workers never disconnect,
	// but the contract of fn is exactly-once per index.
	ran  []bool
	errs []error
}

// NewFlow starts a loopback flow cluster with the given number of workers
// (<= 0 selects GOMAXPROCS). The returned executor must be closed.
func NewFlow(workers int) (*Flow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := &Flow{sched: flow.NewScheduler(), specNonce: specBatchNonce()}
	addr, err := f.sched.Start("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("exec: flow scheduler: %w", err)
	}
	for i := 0; i < workers; i++ {
		w := flow.NewWorker(fmt.Sprintf("exec-w%03d", i), f.handle)
		if err := w.Connect(addr); err != nil {
			f.Close()
			return nil, fmt.Errorf("exec: flow worker %d: %w", i, err)
		}
		f.workers = append(f.workers, w)
	}
	c, err := flow.ConnectClient(addr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("exec: flow client: %w", err)
	}
	// The progress deadline exists to fail fast against a wedged remote
	// scheduler. Here scheduler, workers, and client share one process —
	// a wedge is a bug the flow tests catch — while a single work item
	// (a heavy stage under -race, a large simulated wave) can legitimately
	// outlast any fixed deadline, which would hard-fail a healthy run the
	// pool executor completes. Disable it for the in-process cluster.
	c.ResultTimeout = 0
	f.client = c
	return f, nil
}

// Connect returns a remote flow executor: a client dialed into a
// standalone scheduler (started with `proteomectl sched`) whose workers
// run in other processes, possibly on other hosts. The options carry the
// whole connection story — address or scheduler file, retry budget, and
// wire codec — so every deployment shape goes through this one door. The
// returned executor dispatches registered named-job specs only (see
// MapSpec); running a closure batch fails, because closures cannot cross
// process boundaries. The executor must be closed.
func Connect(opts flow.DialOptions) (*Flow, error) {
	c, err := flow.DialClient(opts)
	if err != nil {
		return nil, fmt.Errorf("exec: flow connect: %w", err)
	}
	return &Flow{client: c, remote: true, specNonce: specBatchNonce()}, nil
}

// ConnectFlow dials a standalone scheduler by address.
//
// Deprecated: use Connect with flow.DialOptions{Addr: addr}.
func ConnectFlow(addr string) (*Flow, error) {
	return Connect(flow.DialOptions{Addr: addr})
}

// ConnectFlowFile dials via a scheduler file.
//
// Deprecated: use Connect with flow.DialOptions{SchedulerFile: path}.
func ConnectFlowFile(path string) (*Flow, error) {
	return Connect(flow.DialOptions{SchedulerFile: path})
}

// ConnectFlowRetry dials by address with a retry budget.
//
// Deprecated: use Connect with flow.DialOptions{Addr: addr, Retry:
// budget}.
func ConnectFlowRetry(addr string, budget time.Duration) (*Flow, error) {
	return Connect(flow.DialOptions{Addr: addr, Retry: budget})
}

// ConnectFlowFileRetry dials via a scheduler file with one shared budget
// covering both the file appearing and the dial.
//
// Deprecated: use Connect with flow.DialOptions{SchedulerFile: path,
// Retry: budget}.
func ConnectFlowFileRetry(path string, budget time.Duration) (*Flow, error) {
	return Connect(flow.DialOptions{SchedulerFile: path, Retry: budget})
}

// SetResultTimeout adjusts the client's per-result progress deadline: the
// longest a spec batch waits between consecutive scheduler messages
// before failing. Zero disables it. Remote deployments whose individual
// kernels legitimately run long (heavy species, few workers,
// race-instrumented binaries) raise or disable it; the default is
// flow.DefaultResultTimeout.
func (f *Flow) SetResultTimeout(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.client != nil {
		f.client.ResultTimeout = d
	}
}

// SetCampaign names the multi-tenant namespace every subsequent batch is
// submitted under: it travels on the submit frame, the scheduler's
// fair-share policy and admission quotas key on it, and each TaskStats
// row records it. Empty (the default) keeps the wire byte-identical to a
// single-tenant client. Set it before the batches it should cover.
func (f *Flow) SetCampaign(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.campaign = name
	if f.client != nil {
		f.client.Campaign = name
	}
}

// specBatchNonce returns the per-client random prefix of spec-task IDs.
func specBatchNonce() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// Name implements Executor.
func (f *Flow) Name() string {
	if f.remote {
		return "flow-remote"
	}
	return "flow"
}

// SetTrace implements Traceable. Set it before the batches it should
// observe; the sink must be safe for concurrent use.
func (f *Flow) SetTrace(sink TraceSink) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trace = sink
}

// recordResult converts one flow completion record into a TaskStats row.
// id is the stable trace identity of the item (the wire task ID is a
// batch-internal index and never surfaces in the trace).
func recordResult(sink TraceSink, kernel, id, campaign string, r *flow.Result) {
	sink.Record(TaskStats{
		TaskID:       id,
		Kernel:       kernel,
		WorkerID:     r.WorkerID,
		Enqueue:      r.EnqueuedAt(),
		Start:        r.Start,
		Finish:       r.End,
		PayloadBytes: len(r.Payload),
		Err:          r.Err,
		Campaign:     campaign,
	})
}

// SpecsOnly implements SpecDispatcher: only the remote executor is
// restricted to specs; the in-process cluster still runs closures.
func (f *Flow) SpecsOnly() bool { return f.remote }

// DispatchSpecs implements SpecDispatcher: one flow task per argument
// block, each carrying a flow.JobSpec payload, submitted as a single batch
// through the client. Workers resolve the kernel name against their local
// registry (flow.Register). Results arrive in completion order and are
// re-keyed by task index, so the caller observes argument order; task
// failures reduce to the lowest-index error — the same contract as
// closure batches. With a trace attached, every completion record becomes
// a TaskStats row (named by ids[i] when given) as it streams in, wire
// bytes included — the statsCSV plumbing the paper's processing-times
// file needs, finally end-to-end across real processes.
func (f *Flow) DispatchSpecs(kernel string, args []json.RawMessage, ids []string) ([]json.RawMessage, error) {
	if len(args) == 0 {
		return nil, nil
	}
	if ids != nil && len(ids) != len(args) {
		return nil, fmt.Errorf("exec: %s batch has %d ids for %d args", kernel, len(ids), len(args))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.client == nil {
		return nil, fmt.Errorf("exec: flow executor is closed")
	}
	// Task IDs are namespaced per client and batch ("nonce.seq.index"):
	// several submit clients may share one standalone scheduler, which
	// tracks in-flight work by task ID, so bare indices would collide
	// across clients and cross-deliver results.
	f.specSeq++
	prefix := f.specNonce + "." + strconv.FormatUint(f.specSeq, 10) + "."
	tasks := make([]flow.Task, len(args))
	for i, a := range args {
		t, err := flow.NewSpecTask(prefix+strconv.Itoa(i), 0, kernel, a)
		if err != nil {
			return nil, fmt.Errorf("exec: encoding %s spec [%d]: %w", kernel, i, err)
		}
		tasks[i] = t
	}
	traceID := func(idx int) string {
		if ids != nil && ids[idx] != "" {
			return ids[idx]
		}
		return strconv.Itoa(idx)
	}
	// The trace tag travels as the wire task's label, so the scheduler's
	// structured event stream (and a live monitor) names tasks exactly as
	// the processing-times CSV does — the wire ID is batch bookkeeping.
	for i := range tasks {
		tasks[i].Label = traceID(i)
	}
	var observe func(*flow.Result)
	if sink := f.trace; sink != nil {
		campaign := f.campaign
		observe = func(r *flow.Result) {
			if suffix, ok := strings.CutPrefix(r.TaskID, prefix); ok {
				if idx, err := strconv.Atoi(suffix); err == nil && idx >= 0 && idx < len(args) {
					recordResult(sink, kernel, traceID(idx), campaign, r)
				}
			}
		}
	}
	results, err := f.client.Map(tasks, observe)
	if err != nil {
		return nil, fmt.Errorf("exec: dispatching %s batch: %w", kernel, err)
	}
	out := make([]json.RawMessage, len(args))
	errIdx, errMsg := -1, ""
	for i := range results {
		r := &results[i]
		suffix, ok := strings.CutPrefix(r.TaskID, prefix)
		if !ok {
			return nil, fmt.Errorf("exec: stray result %q in %s batch", r.TaskID, kernel)
		}
		idx, err := strconv.Atoi(suffix)
		if err != nil || idx < 0 || idx >= len(args) {
			return nil, fmt.Errorf("exec: stray result %q in %s batch", r.TaskID, kernel)
		}
		if r.Failed() {
			if errIdx == -1 || idx < errIdx {
				errIdx, errMsg = idx, r.Err
			}
			continue
		}
		out[idx] = r.Payload
	}
	if errIdx >= 0 {
		return nil, fmt.Errorf("exec: %s [%d]: %s", kernel, errIdx, errMsg)
	}
	return out, nil
}

// NumWorkers reports the size of the worker fleet (for flags and tests).
func (f *Flow) NumWorkers() int { return len(f.workers) }

// handle is the shared worker handler: spec-carrying tasks dispatch
// against the process-wide kernel registry (so the in-process cluster can
// also serve DispatchSpecs batches); plain tasks map the task ID back to
// the batch index and run the batch closure on the worker's goroutine.
func (f *Flow) handle(t flow.Task) (json.RawMessage, error) {
	if len(t.Payload) > 0 {
		return flow.RunSpec(t.Payload)
	}
	b := f.batch.Load()
	i, err := strconv.Atoi(t.ID)
	if b == nil || err != nil || i < 0 || i >= len(b.errs) {
		return nil, fmt.Errorf("exec: stray flow task %q", t.ID)
	}
	b.bmu.Lock()
	if b.ran[i] {
		b.bmu.Unlock()
		return nil, nil
	}
	b.ran[i] = true
	b.bmu.Unlock()

	ferr := b.fn(i)

	b.bmu.Lock()
	b.errs[i] = ferr
	b.bmu.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	return nil, nil
}

// Run implements Executor: one flow task per index, submitted as a
// single batch through the client's Map. Unlike the pool's cooperative
// cancellation, every index runs even after a failure — fn is pure, so the
// only observable effect is identical: the lowest-index error.
//
// Batches serialize on the executor: fn must not call back into the same
// executor (the pipeline's stages fan out one batch at a time, never
// nested, so all call sites satisfy this).
func (f *Flow) Run(batch Batch) error {
	n := batch.N
	if n == 0 {
		return nil
	}
	if f.remote {
		return fmt.Errorf("exec: remote flow executor cannot run closures across process boundaries; dispatch registered job specs instead (exec.MapSpec)")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.client == nil {
		return fmt.Errorf("exec: flow executor is closed")
	}

	b := &flowBatch{fn: batch.Fn, ran: make([]bool, n), errs: make([]error, n)}
	f.batch.Store(b)
	defer f.batch.Store(nil)

	tasks := make([]flow.Task, n)
	for i := range tasks {
		tasks[i] = flow.Task{ID: strconv.Itoa(i)}
		// Tag the wire task with its trace identity when the batch has
		// one; unlabeled batches fall back to the wire ID (the decimal
		// index), which is already the trace fallback.
		if batch.TaskID != nil {
			tasks[i].Label = batch.TaskID(i)
		}
	}
	var observe func(*flow.Result)
	if sink := f.trace; sink != nil {
		campaign := f.campaign
		observe = func(r *flow.Result) {
			if i, err := strconv.Atoi(r.TaskID); err == nil && i >= 0 && i < n {
				recordResult(sink, batch.Kernel, batch.taskID(i), campaign, r)
			}
		}
	}
	results, err := f.client.Map(tasks, observe)
	if err != nil {
		return fmt.Errorf("exec: flow batch: %w", err)
	}
	if len(results) != n {
		return fmt.Errorf("exec: flow batch returned %d/%d results", len(results), n)
	}

	// Client.Map returned only after every worker finished, and each
	// handler's errs write is ordered before this lock — so the batch (and
	// everything fn wrote) is fully visible here.
	b.bmu.Lock()
	defer b.bmu.Unlock()
	for _, e := range b.errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Close tears down the client, workers, and scheduler. It waits for any
// in-flight batch to drain first (batches and Close serialize on the same
// lock).
func (f *Flow) Close() error {
	f.closeOnce.Do(func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.client != nil {
			f.client.Close()
		}
		for _, w := range f.workers {
			w.Close()
		}
		if f.sched != nil {
			f.sched.Close()
		}
		f.client = nil
	})
	return nil
}
