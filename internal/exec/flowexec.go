package exec

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
)

// Flow is the dataflow-backed Executor: a private flow cluster (one
// Scheduler, W Workers, one Client) over loopback TCP. Every ForEach batch
// is serialized through the scheduler/worker/client protocol — each index
// becomes one flow.Task, workers pull tasks in dataflow fashion, and the
// closure runs in-process on the worker's goroutine, so campaign results
// are written into the caller's slices exactly as the pool executor would.
//
// Completion order is whatever the network delivers, but nothing
// observable depends on it: results are keyed by index and errors are
// reduced to the lowest index, so a flow run at any worker count is
// byte-identical to the pool and to the serial loop.
type Flow struct {
	sched   *flow.Scheduler
	workers []*flow.Worker
	client  *flow.Client

	// mu serializes batches: the worker handler resolves tasks against the
	// single current batch.
	mu    sync.Mutex
	batch atomic.Pointer[flowBatch]

	closeOnce sync.Once
}

// flowBatch is the state of one in-flight ForEach call. bmu orders every
// handler's bookkeeping before the caller's final read, which also makes
// the closure's writes (out[i] in Map) visible to the caller.
type flowBatch struct {
	fn  func(i int) error
	bmu sync.Mutex
	// ran guards against a task being delivered twice (the scheduler
	// requeues on worker disconnect); in-process workers never disconnect,
	// but the contract of fn is exactly-once per index.
	ran  []bool
	errs []error
}

// NewFlow starts a loopback flow cluster with the given number of workers
// (<= 0 selects GOMAXPROCS). The returned executor must be closed.
func NewFlow(workers int) (*Flow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := &Flow{sched: flow.NewScheduler()}
	addr, err := f.sched.Start("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("exec: flow scheduler: %w", err)
	}
	for i := 0; i < workers; i++ {
		w := flow.NewWorker(fmt.Sprintf("exec-w%03d", i), f.handle)
		if err := w.Connect(addr); err != nil {
			f.Close()
			return nil, fmt.Errorf("exec: flow worker %d: %w", i, err)
		}
		f.workers = append(f.workers, w)
	}
	c, err := flow.ConnectClient(addr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("exec: flow client: %w", err)
	}
	// The progress deadline exists to fail fast against a wedged remote
	// scheduler. Here scheduler, workers, and client share one process —
	// a wedge is a bug the flow tests catch — while a single work item
	// (a heavy stage under -race, a large simulated wave) can legitimately
	// outlast any fixed deadline, which would hard-fail a healthy run the
	// pool executor completes. Disable it for the in-process cluster.
	c.ResultTimeout = 0
	f.client = c
	return f, nil
}

// Name implements Executor.
func (f *Flow) Name() string { return "flow" }

// NumWorkers reports the size of the worker fleet (for flags and tests).
func (f *Flow) NumWorkers() int { return len(f.workers) }

// handle is the shared worker handler: it maps the task ID back to the
// batch index and runs the batch closure on the worker's goroutine.
func (f *Flow) handle(t flow.Task) (json.RawMessage, error) {
	b := f.batch.Load()
	i, err := strconv.Atoi(t.ID)
	if b == nil || err != nil || i < 0 || i >= len(b.errs) {
		return nil, fmt.Errorf("exec: stray flow task %q", t.ID)
	}
	b.bmu.Lock()
	if b.ran[i] {
		b.bmu.Unlock()
		return nil, nil
	}
	b.ran[i] = true
	b.bmu.Unlock()

	ferr := b.fn(i)

	b.bmu.Lock()
	b.errs[i] = ferr
	b.bmu.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	return nil, nil
}

// ForEach implements Executor: one flow task per index, submitted as a
// single batch through the client's Map. Unlike the pool's cooperative
// cancellation, every index runs even after a failure — fn is pure, so the
// only observable effect is identical: the lowest-index error.
//
// Batches serialize on the executor: fn must not call back into the same
// executor (the pipeline's stages fan out one batch at a time, never
// nested, so all call sites satisfy this).
func (f *Flow) ForEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.client == nil {
		return fmt.Errorf("exec: flow executor is closed")
	}

	b := &flowBatch{fn: fn, ran: make([]bool, n), errs: make([]error, n)}
	f.batch.Store(b)
	defer f.batch.Store(nil)

	tasks := make([]flow.Task, n)
	for i := range tasks {
		tasks[i] = flow.Task{ID: strconv.Itoa(i)}
	}
	results, err := f.client.Map(tasks, nil)
	if err != nil {
		return fmt.Errorf("exec: flow batch: %w", err)
	}
	if len(results) != n {
		return fmt.Errorf("exec: flow batch returned %d/%d results", len(results), n)
	}

	// Client.Map returned only after every worker finished, and each
	// handler's errs write is ordered before this lock — so the batch (and
	// everything fn wrote) is fully visible here.
	b.bmu.Lock()
	defer b.bmu.Unlock()
	for _, e := range b.errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Close tears down the client, workers, and scheduler. It waits for any
// in-flight batch to drain first (batches and Close serialize on the same
// lock).
func (f *Flow) Close() error {
	f.closeOnce.Do(func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.client != nil {
			f.client.Close()
		}
		for _, w := range f.workers {
			w.Close()
		}
		if f.sched != nil {
			f.sched.Close()
		}
		f.client = nil
	})
	return nil
}
