package exec

import "repro/internal/parallel"

// Pool is the in-process Executor: a thin adapter over the bounded,
// deterministic worker pool in internal/parallel. The zero value runs at
// GOMAXPROCS; Workers == 1 is the serial reference path the determinism
// tests compare every other executor against.
type Pool struct {
	// Workers bounds the pool (<= 0 selects GOMAXPROCS).
	Workers int
}

// NewPool returns a pool executor bounded at workers.
func NewPool(workers int) *Pool { return &Pool{Workers: workers} }

// Name implements Executor.
func (p *Pool) Name() string { return "pool" }

// ForEach implements Executor by delegating to parallel.ForEach, which
// collects by submission index and surfaces the lowest-index error.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return parallel.ForEach(p.Workers, n, fn)
}

// Close implements Executor; the pool holds no persistent resources.
func (p *Pool) Close() error { return nil }
