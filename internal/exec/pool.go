package exec

import (
	"fmt"
	"time"

	"repro/internal/parallel"
)

// Pool is the in-process Executor: a thin adapter over the bounded,
// deterministic worker pool in internal/parallel. The zero value runs at
// GOMAXPROCS; Workers == 1 is the serial reference path the determinism
// tests compare every other executor against.
type Pool struct {
	// Workers bounds the pool (<= 0 selects GOMAXPROCS).
	Workers int

	// trace, when set, receives one TaskStats per executed item: the pool
	// workers stamp enqueue (batch submission), start, and finish times
	// around the closure. PayloadBytes is always 0 — nothing crosses a
	// wire in-process.
	trace TraceSink
}

// NewPool returns a pool executor bounded at workers.
func NewPool(workers int) *Pool { return &Pool{Workers: workers} }

// Name implements Executor.
func (p *Pool) Name() string { return "pool" }

// SetTrace implements Traceable. Set it before the batches it should
// observe; the sink must be safe for concurrent use.
func (p *Pool) SetTrace(sink TraceSink) { p.trace = sink }

// Run implements Executor by delegating to the parallel pool, which
// collects by submission index and surfaces the lowest-index error. With a
// trace attached, each pool worker stamps its items' timings and identity.
func (p *Pool) Run(b Batch) error {
	if p.trace == nil {
		return parallel.ForEach(p.Workers, b.N, b.Fn)
	}
	sink := p.trace
	enqueue := time.Now()
	return parallel.ForEachWorker(p.Workers, b.N, func(worker, i int) error {
		start := time.Now()
		err := b.Fn(i)
		stats := TaskStats{
			TaskID:   b.taskID(i),
			Kernel:   b.Kernel,
			WorkerID: fmt.Sprintf("pool-w%03d", worker),
			Enqueue:  enqueue,
			Start:    start,
			Finish:   time.Now(),
		}
		if err != nil {
			stats.Err = err.Error()
		}
		sink.Record(stats)
		return err
	})
}

// Close implements Executor; the pool holds no persistent resources.
func (p *Pool) Close() error { return nil }
