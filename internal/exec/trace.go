package exec

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TaskStats is the per-task telemetry record of one executed work item —
// the row of the paper's processing-times file: which kernel ran, where it
// was placed, when it was enqueued, started, and finished, and how many
// payload bytes came back over the wire. Timings are wall-clock and vary
// run to run; nothing in a campaign report ever depends on them — the
// trace is an observation channel, never an input.
type TaskStats struct {
	// TaskID is the stable, human-meaningful identity of the work item
	// (a protein ID, a "target/m3" inference slot), not the wire task ID.
	TaskID string
	// Kernel names the batch ("campaign/feature", ...); empty for
	// untagged fan-outs (the experiment helpers).
	Kernel string
	// WorkerID identifies the placement: a pool worker ("pool-w003") or a
	// flow worker, possibly in another OS process.
	WorkerID string
	// Enqueue is when the task entered the queue (batch submission for
	// the pool, the scheduler's queue stamp for flow). Start and Finish
	// bracket the handler execution on the worker.
	Enqueue time.Time
	Start   time.Time
	Finish  time.Time
	// PayloadBytes measures the encoded result payload that crossed the
	// wire back to the client (0 for in-process closure batches, which
	// return nothing over the wire). This is what the summary-only result
	// mode shrinks.
	PayloadBytes int
	// Err is the task's failure message ("" on success).
	Err string
	// Campaign is the multi-tenant namespace the task was submitted under
	// (flow.Task.Campaign); empty for single-tenant runs. Per-campaign
	// analysis rows and the timeline legend group by it.
	Campaign string
}

// QueueSeconds is the time the task spent waiting for a worker.
func (s *TaskStats) QueueSeconds() float64 {
	if s.Enqueue.IsZero() || s.Start.Before(s.Enqueue) {
		return 0
	}
	return s.Start.Sub(s.Enqueue).Seconds()
}

// RunSeconds is the handler execution time.
func (s *TaskStats) RunSeconds() float64 { return s.Finish.Sub(s.Start).Seconds() }

// TraceSink receives one TaskStats record per executed task. Sinks must be
// safe for concurrent use: pool workers and the flow client record from
// their own goroutines. Executors treat the sink as fire-and-forget — a
// sink must never block on the caller.
type TraceSink interface {
	Record(TaskStats)
}

// Trace is the standard in-memory TraceSink: an append-only, concurrency-
// safe collector with CSV export in the paper's processing-times schema.
// The zero value is ready to use.
type Trace struct {
	mu   sync.Mutex
	rows []TaskStats
}

// Record implements TraceSink.
func (t *Trace) Record(s TaskStats) {
	t.mu.Lock()
	t.rows = append(t.rows, s)
	t.mu.Unlock()
}

// Len reports the number of recorded tasks.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}

// Rows returns a copy of the recorded stats in chronological order
// (enqueue, then start, with task ID as the deterministic tiebreaker).
func (t *Trace) Rows() []TaskStats {
	t.mu.Lock()
	rows := append([]TaskStats(nil), t.rows...)
	t.mu.Unlock()
	sort.SliceStable(rows, func(i, j int) bool {
		if !rows[i].Enqueue.Equal(rows[j].Enqueue) {
			return rows[i].Enqueue.Before(rows[j].Enqueue)
		}
		if !rows[i].Start.Equal(rows[j].Start) {
			return rows[i].Start.Before(rows[j].Start)
		}
		return rows[i].TaskID < rows[j].TaskID
	})
	return rows
}

// WireBytes sums the payload bytes of every recorded task — the measure
// the summary-only result mode is judged by.
func (t *Trace) WireBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.rows {
		n += t.rows[i].PayloadBytes
	}
	return n
}

// WriteCSV writes the trace as the paper's processing-times CSV.
func (t *Trace) WriteCSV(w io.Writer) error { return WriteStatsCSV(w, t.Rows()) }

// StatsHeader is the fixed column order of the processing-times CSV. Tests
// gate this header verbatim; changing it is a schema change.
var StatsHeader = []string{
	"task_id", "kernel", "worker_id",
	"enqueued_unix_ns", "start_unix_ns", "finish_unix_ns",
	"queue_s", "run_s", "payload_bytes", "error", "campaign",
}

// WriteStatsCSV writes TaskStats rows as CSV in the StatsHeader schema —
// one row per task, the artifact the paper's load-balance analysis (and
// internal/analysis.LoadBalance) is built on.
func WriteStatsCSV(w io.Writer, rows []TaskStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(StatsHeader); err != nil {
		return fmt.Errorf("exec: writing stats header: %w", err)
	}
	for i := range rows {
		r := &rows[i]
		// An absent enqueue stamp (pre-telemetry peer) prints as 0, not
		// as the zero time's nonsensical UnixNano.
		enqueueNS := int64(0)
		if !r.Enqueue.IsZero() {
			enqueueNS = r.Enqueue.UnixNano()
		}
		rec := []string{
			r.TaskID,
			r.Kernel,
			r.WorkerID,
			strconv.FormatInt(enqueueNS, 10),
			strconv.FormatInt(r.Start.UnixNano(), 10),
			strconv.FormatInt(r.Finish.UnixNano(), 10),
			strconv.FormatFloat(r.QueueSeconds(), 'f', 6, 64),
			strconv.FormatFloat(r.RunSeconds(), 'f', 6, 64),
			strconv.Itoa(r.PayloadBytes),
			r.Err,
			r.Campaign,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("exec: writing stats row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// CompletedFromStatsCSV reads a processing-times CSV (the StatsHeader
// schema WriteStatsCSV emits) and returns the task_id of every row that
// completed without error — the other resume source besides the event
// log (`submit -resume-stats`). The header row is validated so a wrong
// file fails loudly instead of silently resuming from nothing.
func CompletedFromStatsCSV(r io.Reader) ([]string, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("exec: reading stats header: %w", err)
	}
	// Accept both the current schema and the pre-campaign one (one column
	// shorter), locating the error column by name — a resume must keep
	// working against a stats file written by the previous release.
	if header[0] != StatsHeader[0] || len(header) < len(StatsHeader)-1 || len(header) > len(StatsHeader) {
		return nil, fmt.Errorf("exec: not a processing-times CSV (header %v)", header)
	}
	errCol := -1
	for i, name := range header {
		if name == "error" {
			errCol = i
			break
		}
	}
	if errCol < 0 {
		return nil, fmt.Errorf("exec: not a processing-times CSV (header %v)", header)
	}
	var done []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return done, nil
		}
		if err != nil {
			// A torn tail (killed writer) keeps the intact prefix, like
			// events.ReadLog.
			return done, nil
		}
		if rec[0] != "" && rec[errCol] == "" {
			done = append(done, rec[0])
		}
	}
}

// Traceable is the optional Executor extension for telemetry: both back
// ends implement it. SetTrace installs the sink every subsequent batch
// records into (nil disables tracing); it must be called before the
// batches it should observe.
type Traceable interface {
	SetTrace(TraceSink)
}

// AttachTrace installs sink on ex when the executor supports tracing,
// reporting whether it did.
func AttachTrace(ex Executor, sink TraceSink) bool {
	tr, ok := ex.(Traceable)
	if ok {
		tr.SetTrace(sink)
	}
	return ok
}
