package exec

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/events"
	"repro/internal/flow"
)

// doneLabels collects the task identities of the done events in a
// scheduler's history.
func doneLabels(hub *events.Hub) map[string]int {
	got := make(map[string]int)
	for _, e := range hub.Snapshot() {
		if e.Type == events.TaskDone {
			got[e.Task]++
		}
	}
	return got
}

// TestFlowRunFeedsEventLabels: a closure batch's trace tags (Batch.TaskID)
// become the task identities of the scheduler's structured event stream,
// so a monitor names work exactly as the processing-times CSV does.
func TestFlowRunFeedsEventLabels(t *testing.T) {
	f, err := NewFlow(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ids := []string{"DVU_00001", "DVU_00002", "DVU_00003"}
	err = f.Run(Batch{
		N:      len(ids),
		Fn:     func(int) error { return nil },
		Kernel: "campaign/feature",
		TaskID: func(i int) string { return ids[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	got := doneLabels(f.sched.Events())
	for _, id := range ids {
		if got[id] != 1 {
			t.Errorf("done events for %q = %d, want 1 (all: %v)", id, got[id], got)
		}
	}

	// An untagged batch falls back to the wire ID (the decimal index).
	if err := f.Run(Batch{N: 2, Fn: func(int) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	got = doneLabels(f.sched.Events())
	if got["0"] != 1 || got["1"] != 1 {
		t.Errorf("untagged batch labels: %v", got)
	}
}

// TestFlowDispatchSpecsFeedsEventLabels: the spec-dispatch path labels
// wire tasks with the caller's trace IDs; without IDs the label is the
// batch index — the same fallback the trace applies — never the opaque
// nonce-prefixed wire ID.
func TestFlowDispatchSpecsFeedsEventLabels(t *testing.T) {
	testKernels(t)
	sched := flow.NewScheduler()
	addr, err := sched.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	for i := 0; i < 2; i++ {
		w := flow.NewWorker(fmt.Sprintf("label-w%d", i), flow.SpecHandler())
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	f, err := Connect(flow.DialOptions{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	args := make([]json.RawMessage, 3)
	ids := make([]string, 3)
	for i := range args {
		args[i] = json.RawMessage(fmt.Sprintf("%d", i))
		ids[i] = fmt.Sprintf("PROT_%05d/m%d", i, i)
	}
	if _, err := f.DispatchSpecs("exectest/square", args, ids); err != nil {
		t.Fatal(err)
	}
	hub := sched.Events()
	got := doneLabels(hub)
	for _, id := range ids {
		if got[id] != 1 {
			t.Errorf("done events for %q = %d, want 1 (all: %v)", id, got[id], got)
		}
	}

	if _, err := f.DispatchSpecs("exectest/square", args[:2], nil); err != nil {
		t.Fatal(err)
	}
	got = doneLabels(hub)
	if got["0"] != 1 || got["1"] != 1 {
		t.Errorf("nil-ids batch labels: %v", got)
	}
	for label := range got {
		if len(label) > 20 {
			t.Errorf("opaque wire ID %q leaked into the event stream", label)
		}
	}
}
