package exec

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestStatsCSVGoldenSchema gates the processing-times CSV schema: header
// verbatim, column order, and row shape. Changing any of it is a schema
// change that must be made deliberately (downstream analyses parse this).
func TestStatsCSVGoldenSchema(t *testing.T) {
	base := time.Unix(1643068800, 0).UTC() // 2022-01-25, the paper's arXiv date
	rows := []TaskStats{
		{
			TaskID: "DVU_00001", Kernel: "campaign/feature", WorkerID: "w01",
			Enqueue: base, Start: base.Add(250 * time.Millisecond),
			Finish: base.Add(1250 * time.Millisecond), PayloadBytes: 512,
		},
		{
			TaskID: "DVU_00002/m3", Kernel: "campaign/infer", WorkerID: "w02",
			Enqueue: base.Add(time.Second), Start: base.Add(1500 * time.Millisecond),
			Finish: base.Add(2 * time.Second), PayloadBytes: 0, Err: "boom",
			Campaign: "dvu-full",
		},
	}
	var sb strings.Builder
	if err := WriteStatsCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	golden := "task_id,kernel,worker_id,enqueued_unix_ns,start_unix_ns,finish_unix_ns,queue_s,run_s,payload_bytes,error,campaign\n" +
		"DVU_00001,campaign/feature,w01,1643068800000000000,1643068800250000000,1643068801250000000,0.250000,1.000000,512,,\n" +
		"DVU_00002/m3,campaign/infer,w02,1643068801000000000,1643068801500000000,1643068802000000000,0.500000,0.500000,0,boom,dvu-full\n"
	if sb.String() != golden {
		t.Errorf("stats CSV schema changed:\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}
}

func TestTraceRowsChronological(t *testing.T) {
	base := time.Unix(100, 0)
	tr := &Trace{}
	tr.Record(TaskStats{TaskID: "late", Enqueue: base.Add(2 * time.Second)})
	tr.Record(TaskStats{TaskID: "b", Enqueue: base, Start: base})
	tr.Record(TaskStats{TaskID: "a", Enqueue: base, Start: base})
	rows := tr.Rows()
	if len(rows) != 3 || tr.Len() != 3 {
		t.Fatalf("rows = %d, len = %d", len(rows), tr.Len())
	}
	if rows[0].TaskID != "a" || rows[1].TaskID != "b" || rows[2].TaskID != "late" {
		t.Errorf("order = %s,%s,%s; want a,b,late (ties break by task ID)",
			rows[0].TaskID, rows[1].TaskID, rows[2].TaskID)
	}
}

func TestTaskStatsDurations(t *testing.T) {
	base := time.Unix(7, 0)
	s := TaskStats{Enqueue: base, Start: base.Add(time.Second), Finish: base.Add(3 * time.Second)}
	if q := s.QueueSeconds(); q != 1 {
		t.Errorf("QueueSeconds = %v, want 1", q)
	}
	if r := s.RunSeconds(); r != 2 {
		t.Errorf("RunSeconds = %v, want 2", r)
	}
	// No enqueue stamp (pre-telemetry peer): queue time degrades to 0.
	s2 := TaskStats{Start: base, Finish: base}
	if q := s2.QueueSeconds(); q != 0 {
		t.Errorf("QueueSeconds without stamp = %v, want 0", q)
	}
}

// TestPoolRecordsTrace: the pool back end stamps per-task timings, worker
// placement, and the batch tags — with results byte-identical to the
// untraced run.
func TestPoolRecordsTrace(t *testing.T) {
	pool := NewPool(3)
	trace := &Trace{}
	if !AttachTrace(pool, trace) {
		t.Fatal("pool must implement Traceable")
	}
	items := []int{10, 20, 30, 40}
	out, err := MapSpec(pool, "test/kernel", items,
		func(i int, v int) string { return fmt.Sprintf("item-%d", v) },
		func(_ int, v int) any { return v },
		func(_ int, v int) (int, error) { return v * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range items {
		if out[i] != v*2 {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
	rows := trace.Rows()
	if len(rows) != len(items) {
		t.Fatalf("trace rows = %d, want %d", len(rows), len(items))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.TaskID] = true
		if r.Kernel != "test/kernel" {
			t.Errorf("kernel = %q", r.Kernel)
		}
		if !strings.HasPrefix(r.WorkerID, "pool-w") {
			t.Errorf("worker = %q, want pool-w*", r.WorkerID)
		}
		if r.Enqueue.After(r.Start) || r.Start.After(r.Finish) {
			t.Errorf("task %s: timings out of order", r.TaskID)
		}
		if r.PayloadBytes != 0 {
			t.Errorf("task %s: in-process payload bytes = %d, want 0", r.TaskID, r.PayloadBytes)
		}
		if r.Err != "" {
			t.Errorf("task %s: unexpected error %q", r.TaskID, r.Err)
		}
	}
	for _, v := range items {
		if !seen[fmt.Sprintf("item-%d", v)] {
			t.Errorf("no trace row for item-%d", v)
		}
	}
}

func TestPoolTraceRecordsErrors(t *testing.T) {
	pool := NewPool(2)
	trace := &Trace{}
	pool.SetTrace(trace)
	err := ForEach(pool, 3, func(i int) error {
		if i == 1 {
			return fmt.Errorf("task %d exploded", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the task error")
	}
	found := false
	for _, r := range trace.Rows() {
		if r.Err != "" {
			found = true
			if r.TaskID != "1" {
				t.Errorf("error recorded for task %q, want 1 (untagged = index)", r.TaskID)
			}
		}
	}
	if !found {
		t.Error("no trace row carries the task error")
	}
}

// TestFlowRecordsTrace: the loopback flow back end records worker identity
// and the scheduler's enqueue stamp from the wire protocol.
func TestFlowRecordsTrace(t *testing.T) {
	fl, err := NewFlow(3)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	trace := &Trace{}
	if !AttachTrace(fl, trace) {
		t.Fatal("flow must implement Traceable")
	}
	const n = 20
	if err := ForEach(fl, n, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	rows := trace.Rows()
	if len(rows) != n {
		t.Fatalf("trace rows = %d, want %d", len(rows), n)
	}
	for _, r := range rows {
		if !strings.HasPrefix(r.WorkerID, "exec-w") {
			t.Errorf("worker = %q, want a flow worker", r.WorkerID)
		}
		if r.Enqueue.IsZero() {
			t.Errorf("task %s has no scheduler enqueue stamp", r.TaskID)
		}
		if r.Start.Before(r.Enqueue) || r.Finish.Before(r.Start) {
			t.Errorf("task %s: timings out of order", r.TaskID)
		}
	}
}

// TestRemoteDispatchRecordsTrace: spec dispatch across the scheduler
// records the caller's task IDs and the measured wire bytes of each
// result payload.
func TestRemoteDispatchRecordsTrace(t *testing.T) {
	f := remoteCluster(t, 2)
	trace := &Trace{}
	f.SetTrace(trace)
	items := []int{7, 8, 9}
	out, err := MapSpec(f, "exectest/square", items,
		func(_ int, v int) string { return "sq-" + strconv.Itoa(v) },
		func(_ int, v int) any { return v },
		func(_ int, v int) (int, error) { t.Fatal("closure must not run remotely"); return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range items {
		if out[i] != v*v {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
	rows := trace.Rows()
	if len(rows) != len(items) {
		t.Fatalf("trace rows = %d, want %d", len(rows), len(items))
	}
	wire := 0
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.TaskID] = true
		if r.Kernel != "exectest/square" {
			t.Errorf("kernel = %q", r.Kernel)
		}
		if !strings.HasPrefix(r.WorkerID, "spec-w") {
			t.Errorf("worker = %q", r.WorkerID)
		}
		if r.PayloadBytes <= 0 {
			t.Errorf("task %s: payload bytes = %d, want > 0 (results cross the wire)", r.TaskID, r.PayloadBytes)
		}
		wire += r.PayloadBytes
	}
	for _, v := range items {
		if !seen["sq-"+strconv.Itoa(v)] {
			t.Errorf("no trace row for sq-%d", v)
		}
	}
	if trace.WireBytes() != wire {
		t.Errorf("WireBytes = %d, want %d", trace.WireBytes(), wire)
	}
	// The CSV export of a real trace parses and keeps the schema width.
	var sb strings.Builder
	if err := trace.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(items)+1 {
		t.Fatalf("csv rows = %d", len(recs))
	}
	for _, rec := range recs {
		if len(rec) != len(StatsHeader) {
			t.Fatalf("csv width = %d, want %d", len(rec), len(StatsHeader))
		}
	}
}

func TestAttachTraceUnsupported(t *testing.T) {
	if AttachTrace(nopExecutor{}, &Trace{}) {
		t.Error("AttachTrace on a sink-less executor must report false")
	}
}

type nopExecutor struct{}

func (nopExecutor) Name() string      { return "nop" }
func (nopExecutor) Run(b Batch) error { return nil }
func (nopExecutor) Close() error      { return nil }
