package exec

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/flow"
)

// Test kernels registered once in the process-wide registry.
var registerTestKernels sync.Once

func testKernels(t *testing.T) {
	t.Helper()
	registerTestKernels.Do(func() {
		// square decodes an int and returns its square.
		err := flow.Register("exectest/square", func(args json.RawMessage) (json.RawMessage, error) {
			var n int
			if err := json.Unmarshal(args, &n); err != nil {
				return nil, err
			}
			return json.Marshal(n * n)
		})
		if err != nil {
			panic(err)
		}
		// failodd errors on odd inputs.
		err = flow.Register("exectest/failodd", func(args json.RawMessage) (json.RawMessage, error) {
			var n int
			if err := json.Unmarshal(args, &n); err != nil {
				return nil, err
			}
			if n%2 == 1 {
				return nil, fmt.Errorf("odd input %d", n)
			}
			return json.Marshal(n)
		})
		if err != nil {
			panic(err)
		}
	})
}

// remoteCluster builds the multi-process topology inside one test process:
// a standalone scheduler, spec-serving workers (the handler a
// `proteomectl worker` process uses), and a client-only remote executor.
func remoteCluster(t *testing.T, workers int) *Flow {
	t.Helper()
	testKernels(t)
	sched := flow.NewScheduler()
	addr, err := sched.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	for i := 0; i < workers; i++ {
		w := flow.NewWorker(fmt.Sprintf("spec-w%d", i), flow.SpecHandler())
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	f, err := Connect(flow.DialOptions{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRemoteFlowDispatchSpecs(t *testing.T) {
	f := remoteCluster(t, 3)
	if !SpecsOnly(f) {
		t.Fatal("remote flow executor should be specs-only")
	}
	if f.Name() != "flow-remote" {
		t.Fatalf("Name() = %q", f.Name())
	}

	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	out, err := MapSpec(f, "exectest/square", items, nil,
		func(_ int, n int) any { return n },
		func(_ int, n int) (int, error) { t.Fatal("closure must not run on a remote executor"); return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range items {
		if out[i] != n*n {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], n*n)
		}
	}
}

func TestRemoteFlowLowestIndexError(t *testing.T) {
	f := remoteCluster(t, 4)
	items := []int{0, 2, 5, 3, 8, 9}
	_, err := MapSpec(f, "exectest/failodd", items, nil,
		func(_ int, n int) any { return n },
		func(_ int, n int) (int, error) { return n, nil })
	if err == nil {
		t.Fatal("expected error from odd inputs")
	}
	// Lowest failing index is 2 (value 5), never index 3 or 5.
	if !strings.Contains(err.Error(), "[2]") || !strings.Contains(err.Error(), "odd input 5") {
		t.Fatalf("error %q does not surface the lowest-index failure", err)
	}
}

func TestRemoteFlowUnknownKernel(t *testing.T) {
	f := remoteCluster(t, 1)
	_, err := f.DispatchSpecs("exectest/unregistered", []json.RawMessage{json.RawMessage(`1`)}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("err = %v, want unknown kernel", err)
	}
}

func TestRemoteFlowRejectsClosures(t *testing.T) {
	f := remoteCluster(t, 1)
	err := ForEach(f, 3, func(i int) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "closures") {
		t.Fatalf("ForEach on remote executor: err = %v, want closure rejection", err)
	}
	// n == 0 short-circuits before the remote guard, like every executor.
	if err := ForEach(f, 0, nil); err != nil {
		t.Fatalf("ForEach(0) = %v", err)
	}
}

func TestRemoteFlowClosed(t *testing.T) {
	f := remoteCluster(t, 1)
	f.Close()
	if _, err := f.DispatchSpecs("exectest/square", []json.RawMessage{json.RawMessage(`1`)}, nil); err == nil {
		t.Fatal("DispatchSpecs on closed executor succeeded")
	}
}

func TestMapSpecFallsBackToClosures(t *testing.T) {
	// Non-spec executors (the pool) and the in-process flow cluster run
	// the closure; arg builders must not even be invoked for the pool.
	pool := &Pool{Workers: 4}
	items := []int{1, 2, 3}
	out, err := MapSpec(pool, "exectest/square", items, nil,
		func(_ int, n int) any { t.Fatal("arg builder must not run on the pool"); return nil },
		func(_ int, n int) (int, error) { return n + 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 11 || out[1] != 12 || out[2] != 13 {
		t.Fatalf("pool MapSpec = %v", out)
	}

	fl, err := NewFlow(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if SpecsOnly(fl) {
		t.Fatal("in-process flow executor must not be specs-only")
	}
	out, err = MapSpec(fl, "exectest/square", items, nil,
		func(_ int, n int) any { return n },
		func(_ int, n int) (int, error) { return n + 20, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 21 || out[1] != 22 || out[2] != 23 {
		t.Fatalf("in-process flow MapSpec = %v", out)
	}
}

func TestInProcessFlowServesSpecTasks(t *testing.T) {
	// The in-process cluster's workers also dispatch spec payloads, so
	// DispatchSpecs works on it too (even though MapSpec prefers the
	// closure path there).
	testKernels(t)
	fl, err := NewFlow(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	out, err := fl.DispatchSpecs("exectest/square", []json.RawMessage{
		json.RawMessage(`3`), json.RawMessage(`4`),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out[0]) != "9" || string(out[1]) != "16" {
		t.Fatalf("DispatchSpecs = %s, %s", out[0], out[1])
	}
}

// TestConcurrentClientsSharedScheduler drives two independent remote
// clients against ONE standalone scheduler at the same time. Task IDs are
// namespaced per client, so results must never cross-deliver between the
// two submitters — the shared-scheduler deployment `proteomectl sched`
// makes first class.
func TestConcurrentClientsSharedScheduler(t *testing.T) {
	testKernels(t)
	sched := flow.NewScheduler()
	addr, err := sched.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	for i := 0; i < 3; i++ {
		w := flow.NewWorker(fmt.Sprintf("shared-w%d", i), flow.SpecHandler())
		if err := w.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}

	const clients, rounds, n = 2, 5, 40
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			f, err := Connect(flow.DialOptions{Addr: addr})
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			// Each client squares a distinct value range; any
			// cross-delivered result would land in the wrong slot.
			base := 1000 * (c + 1)
			for r := 0; r < rounds; r++ {
				args := make([]json.RawMessage, n)
				for i := range args {
					args[i] = json.RawMessage(fmt.Sprintf("%d", base+i))
				}
				out, err := f.DispatchSpecs("exectest/square", args, nil)
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", c, r, err)
					return
				}
				for i := range out {
					want := fmt.Sprintf("%d", (base+i)*(base+i))
					if string(out[i]) != want {
						errs <- fmt.Errorf("client %d round %d: out[%d] = %s, want %s", c, r, i, out[i], want)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDispatchSpecsEmpty(t *testing.T) {
	f := remoteCluster(t, 1)
	out, err := f.DispatchSpecs("exectest/square", nil, nil)
	if err != nil || out != nil {
		t.Fatalf("empty dispatch = %v, %v", out, err)
	}
}
