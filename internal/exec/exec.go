// Package exec unifies the repository's two execution back ends behind one
// Executor abstraction: the bounded in-process worker pool of
// internal/parallel, and the flow dataflow engine (scheduler + workers +
// client over loopback TCP) of internal/flow.
//
// Every compute stage of the pipeline — feature generation, the
// (target x model) inference fan-out, the high-memory retry wave,
// relaxation, annotation, and the independent multi-wave dataflow
// simulations — fans out through an Executor, so the same campaign can run
// on the host pool or through the scheduler/worker/client protocol the
// paper deploys Dask in, with byte-identical results.
//
// The determinism contract is the one internal/parallel established:
//
//   - fn(i, item) must be a pure function of its arguments;
//   - results land in out[i] regardless of which worker finished first, so
//     any executor at any worker count is indistinguishable from the
//     serial loop;
//   - on failure the error of the lowest submission index is returned —
//     exactly what the serial loop would have surfaced.
//
// Alongside the results, every executor can record per-task telemetry: a
// TaskStats record ({task, kernel, worker placement, enqueue/start/finish,
// payload bytes}) per executed item, delivered to a pluggable TraceSink
// (see AttachTrace). The trace is the paper's processing-times file — an
// observation channel only, never an input: reports are byte-identical
// with tracing on or off, which TestTable1CrossExecutor and
// TestCampaignCrossExecutor in internal/experiments enforce end to end.
package exec

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Batch describes one fan-out: the item count and closure, plus the trace
// identity of the work. Kernel and TaskID only label the recorded
// TaskStats; they never influence execution.
type Batch struct {
	// N is the number of independent work items.
	N int
	// Fn runs item i. It must be safe for concurrent invocation on
	// distinct indices and a pure function of i.
	Fn func(i int) error
	// Kernel tags the batch in a recorded trace ("" = untagged).
	Kernel string
	// TaskID returns the stable trace identity of item i; nil falls back
	// to the decimal index.
	TaskID func(i int) string
}

// taskID resolves the trace identity of item i: the TaskID func's name,
// falling back to the decimal index when the func is nil or returns "" —
// the same fallback the spec-dispatch path applies, so every back end
// keys identical work identically in the trace.
func (b *Batch) taskID(i int) string {
	if b.TaskID != nil {
		if id := b.TaskID(i); id != "" {
			return id
		}
	}
	return strconv.Itoa(i)
}

// Executor runs batches of independent work items with the package-level
// determinism contract. Implementations decide where the work runs
// (in-process pool, flow workers); callers decide what runs.
type Executor interface {
	// Name identifies the back end ("pool", "flow") for flags and reports.
	Name() string
	// Run executes b.Fn(i) for i in [0, b.N). On failure the lowest-index
	// error is returned and the output of other indices must be
	// discarded. When a TraceSink is attached, Run records one TaskStats
	// per executed item.
	Run(b Batch) error
	// Close releases executor resources (workers, connections). Close is
	// idempotent; the zero-cost executors treat it as a no-op.
	Close() error
}

// ForEach runs fn(i) for i in [0, n) through the executor — the untagged
// convenience wrapper over Run.
func ForEach(ex Executor, n int, fn func(i int) error) error {
	return ex.Run(Batch{N: n, Fn: fn})
}

// Map applies fn to every element of items through the executor and
// returns the results in submission order — the generic entry point every
// compute stage uses, independent of the back end.
func Map[T, R any](ex Executor, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return mapBatch(ex, Batch{}, items, fn)
}

// mapBatch is Map with explicit trace tags; b.N and b.Fn are filled here.
func mapBatch[T, R any](ex Executor, b Batch, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	b.N = len(items)
	b.Fn = func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	}
	if err := ex.Run(b); err != nil {
		return nil, err
	}
	return out, nil
}

// SpecDispatcher is the optional Executor extension for multi-process
// deployments: back ends whose workers live in other OS processes cannot
// receive closures, so work is shipped as registered named-job specs
// (flow.JobSpec) instead — a kernel name resolved against the worker's
// registry plus JSON arguments.
type SpecDispatcher interface {
	Executor
	// SpecsOnly reports whether this executor can only dispatch specs
	// (true for a client connected to a standalone scheduler with remote
	// workers). When false, closures still work and MapSpec falls back to
	// the ordinary closure path.
	SpecsOnly() bool
	// DispatchSpecs runs the named kernel once per argument block and
	// returns the result payloads in argument order. On failure the error
	// of the lowest argument index is returned. ids, when non-nil, names
	// each argument block in the recorded trace (ids[i] for args[i]);
	// nil falls back to decimal indices.
	DispatchSpecs(kernel string, args []json.RawMessage, ids []string) ([]json.RawMessage, error)
}

// SpecsOnly reports whether ex requires named-job specs (its workers are
// in other processes and cannot run closures).
func SpecsOnly(ex Executor) bool {
	sd, ok := ex.(SpecDispatcher)
	return ok && sd.SpecsOnly()
}

// MapSpec is Map for stages that can also run remotely: each item carries
// both a closure (fn) and a serializable spec (the registered kernel plus
// per-item args built by arg). Executors whose workers share this process
// run fn exactly as Map does; spec-only executors marshal arg(i, item),
// dispatch the named kernel to remote workers, and decode each result
// payload into R. The registered kernel must be the same pure function of
// its arguments as fn, so both paths produce identical values — the
// cross-process determinism contract TestCampaignMultiProcess enforces
// end to end.
//
// id(i, item), when non-nil, names item i in the recorded trace on both
// paths — the task_id column of the processing-times CSV.
func MapSpec[T, R any](ex Executor, kernel string, items []T, id func(i int, item T) string, arg func(i int, item T) any, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapSpecResume(ex, kernel, items, id, arg, fn, nil)
}

// MapSpecResume is MapSpec with a resume skip-set: done(taskID) reports
// whether an interrupted prior run already completed that item (an
// events.CompletedSet replayed from a scheduler event log). Because the
// kernel is a pure function of its arguments, a skipped item is
// recomputed locally via fn instead of re-dispatched to the cluster —
// results (and the final report) stay byte-identical to an uninterrupted
// run, while the cluster and the recorded trace only see the missing
// items. The skip-set only matters on spec-only (remote) executors:
// in-process back ends run every item locally anyway, so done is
// ignored there (as is a nil done, which makes this exactly MapSpec).
//
// A local recompute failure surfaces immediately without dispatching:
// the skipped item completed before under the same pure function, so a
// failure means the resume log does not match this campaign's
// (seed, species) world.
func MapSpecResume[T, R any](ex Executor, kernel string, items []T, id func(i int, item T) string, arg func(i int, item T) any, fn func(i int, item T) (R, error), done func(task string) bool) ([]R, error) {
	taskID := func(int) string { return "" }
	if id != nil {
		taskID = func(i int) string { return id(i, items[i]) }
	}
	sd, ok := ex.(SpecDispatcher)
	if !ok || !sd.SpecsOnly() {
		b := Batch{Kernel: kernel}
		if id != nil {
			b.TaskID = taskID
		}
		return mapBatch(ex, b, items, fn)
	}
	out := make([]R, len(items))
	pending := make([]int, 0, len(items))
	for i, item := range items {
		if done != nil {
			if tid := taskID(i); tid != "" && done(tid) {
				r, err := fn(i, item)
				if err != nil {
					return nil, fmt.Errorf("exec: recomputing completed %s task %s [%d]: %w", kernel, tid, i, err)
				}
				out[i] = r
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return out, nil
	}
	args := make([]json.RawMessage, len(pending))
	var ids []string
	if id != nil {
		ids = make([]string, len(pending))
	}
	for k, i := range pending {
		raw, err := json.Marshal(arg(i, items[i]))
		if err != nil {
			return nil, fmt.Errorf("exec: marshaling %s args [%d]: %w", kernel, i, err)
		}
		args[k] = raw
		if ids != nil {
			ids[k] = taskID(i)
		}
	}
	payloads, err := sd.DispatchSpecs(kernel, args, ids)
	if err != nil {
		return nil, err
	}
	if len(payloads) != len(pending) {
		return nil, fmt.Errorf("exec: %s returned %d/%d results", kernel, len(payloads), len(pending))
	}
	for k, raw := range payloads {
		if len(raw) == 0 {
			continue // kernel returned no payload: zero value
		}
		i := pending[k]
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("exec: decoding %s result [%d]: %w", kernel, i, err)
		}
	}
	return out, nil
}

// Resolve returns ex when one was configured, else the default in-process
// pool bounded at `workers` (<= 0 selects GOMAXPROCS, 1 forces the serial
// reference path). Stages call this so an unset Executor preserves the
// pre-Executor Parallelism behaviour exactly.
func Resolve(ex Executor, workers int) Executor {
	if ex != nil {
		return ex
	}
	return &Pool{Workers: workers}
}
