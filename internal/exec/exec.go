// Package exec unifies the repository's two execution back ends behind one
// Executor abstraction: the bounded in-process worker pool of
// internal/parallel, and the flow dataflow engine (scheduler + workers +
// client over loopback TCP) of internal/flow.
//
// Every compute stage of the pipeline — feature generation, the
// (target x model) inference fan-out, the high-memory retry wave,
// relaxation, annotation, and the independent multi-wave dataflow
// simulations — fans out through an Executor, so the same campaign can run
// on the host pool or through the scheduler/worker/client protocol the
// paper deploys Dask in, with byte-identical results.
//
// The determinism contract is the one internal/parallel established:
//
//   - fn(i, item) must be a pure function of its arguments;
//   - results land in out[i] regardless of which worker finished first, so
//     any executor at any worker count is indistinguishable from the
//     serial loop;
//   - on failure the error of the lowest submission index is returned —
//     exactly what the serial loop would have surfaced.
//
// TestTable1CrossExecutor and TestCampaignCrossExecutor in
// internal/experiments enforce the contract end to end.
package exec

// Executor runs n independent work items, identified by index, with the
// package-level determinism contract. Implementations decide where the
// work runs (in-process pool, flow workers); callers decide what runs.
type Executor interface {
	// Name identifies the back end ("pool", "flow") for flags and reports.
	Name() string
	// ForEach runs fn(i) for i in [0, n). fn must be safe for concurrent
	// invocation on distinct indices. On failure the lowest-index error is
	// returned and the output of other indices must be discarded.
	ForEach(n int, fn func(i int) error) error
	// Close releases executor resources (workers, connections). Close is
	// idempotent; the zero-cost executors treat it as a no-op.
	Close() error
}

// Map applies fn to every element of items through the executor and
// returns the results in submission order — the generic entry point every
// compute stage uses, independent of the back end.
func Map[T, R any](ex Executor, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ex.ForEach(len(items), func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Resolve returns ex when one was configured, else the default in-process
// pool bounded at `workers` (<= 0 selects GOMAXPROCS, 1 forces the serial
// reference path). Stages call this so an unset Executor preserves the
// pre-Executor Parallelism behaviour exactly.
func Resolve(ex Executor, workers int) Executor {
	if ex != nil {
		return ex
	}
	return &Pool{Workers: workers}
}
