package exec

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestMapSpecResumeSkipsCompleted is the resume contract on a spec-only
// executor: completed tasks recompute locally (deterministic world), only
// the pending remainder crosses the wire, and the merged output is
// indistinguishable from a full run.
func TestMapSpecResumeSkipsCompleted(t *testing.T) {
	f := remoteCluster(t, 2)
	tr := &Trace{}
	if !AttachTrace(f, tr) {
		t.Fatal("remote flow executor should accept a trace")
	}

	items := []int{3, 4, 5, 6, 7, 8}
	id := func(_ int, n int) string { return fmt.Sprintf("item-%d", n) }
	completed := map[string]bool{"item-3": true, "item-5": true, "item-7": true}

	out, err := MapSpecResume(f, "exectest/square", items, id,
		func(_ int, n int) any { return n },
		func(_ int, n int) (int, error) { return n * n, nil }, // same pure function the kernel computes
		func(task string) bool { return completed[task] })
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range items {
		if out[i] != n*n {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], n*n)
		}
	}
	// The trace records only the dispatched remainder — this row-count
	// gap is how the e2e proves a resume re-ran strictly fewer tasks.
	if tr.Len() != 3 {
		t.Fatalf("trace has %d rows, want 3 dispatched tasks", tr.Len())
	}
	for _, row := range tr.Rows() {
		if completed[row.TaskID] {
			t.Fatalf("completed task %s was dispatched to the cluster", row.TaskID)
		}
	}
}

func TestMapSpecResumeAllCompleted(t *testing.T) {
	f := remoteCluster(t, 1)
	tr := &Trace{}
	AttachTrace(f, tr)
	items := []int{1, 2, 3}
	out, err := MapSpecResume(f, "exectest/square", items,
		func(_ int, n int) string { return fmt.Sprintf("item-%d", n) },
		func(_ int, n int) any { t.Fatal("arg builder ran with nothing to dispatch"); return nil },
		func(_ int, n int) (int, error) { return n * 100, nil },
		func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 100 || out[1] != 200 || out[2] != 300 {
		t.Fatalf("out = %v", out)
	}
	if tr.Len() != 0 {
		t.Fatalf("fully-resumed batch dispatched %d tasks", tr.Len())
	}
}

// TestMapSpecResumeRecomputeFailure: a completed task whose local
// recomputation errors means the resume log does not match this
// (seed, species) world — that must surface loudly, not resume quietly.
func TestMapSpecResumeRecomputeFailure(t *testing.T) {
	f := remoteCluster(t, 1)
	_, err := MapSpecResume(f, "exectest/square", []int{1, 2},
		func(_ int, n int) string { return fmt.Sprintf("item-%d", n) },
		func(_ int, n int) any { return n },
		func(_ int, n int) (int, error) {
			if n == 1 {
				return 0, fmt.Errorf("wrong world")
			}
			return n, nil
		},
		func(string) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "recomputing completed") {
		t.Fatalf("err = %v, want recompute failure", err)
	}
}

// TestMapSpecResumePoolIgnoresSkipSet: non-spec executors run the closure
// for every item anyway, so the skip-set is irrelevant there — resume
// against `-executor pool` is just a plain run.
func TestMapSpecResumePoolIgnoresSkipSet(t *testing.T) {
	pool := &Pool{Workers: 2}
	out, err := MapSpecResume(pool, "exectest/square", []int{1, 2, 3}, nil,
		func(_ int, n int) any { t.Fatal("arg builder must not run on the pool"); return nil },
		func(_ int, n int) (int, error) { return n + 10, nil },
		func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 11 || out[1] != 12 || out[2] != 13 {
		t.Fatalf("pool resume out = %v", out)
	}
}

func TestCompletedFromStatsCSV(t *testing.T) {
	base := time.Unix(1000, 0)
	rows := []TaskStats{
		{TaskID: "P001", Kernel: "campaign/feature", WorkerID: "w1", Enqueue: base, Start: base, Finish: base.Add(time.Second)},
		{TaskID: "P002", Kernel: "campaign/feature", WorkerID: "w2", Enqueue: base, Start: base, Finish: base.Add(time.Second), Err: "boom"},
		{TaskID: "P003", Kernel: "campaign/feature", WorkerID: "w1", Enqueue: base, Start: base, Finish: base.Add(2 * time.Second)},
	}
	var buf bytes.Buffer
	if err := WriteStatsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}

	done, err := CompletedFromStatsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Failed rows are not completed — a resume re-dispatches them.
	if len(done) != 2 || done[0] != "P001" || done[1] != "P003" {
		t.Fatalf("completed = %v, want [P001 P003]", done)
	}

	// A torn tail (kill mid-write) yields the intact prefix.
	torn := buf.String()
	torn = torn[:len(torn)-10] + "\"unclosed"
	done, err = CompletedFromStatsCSV(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn CSV: %v", err)
	}
	if len(done) == 0 || done[0] != "P001" {
		t.Fatalf("torn CSV completed = %v, want intact prefix starting with P001", done)
	}

	// The wrong file entirely is rejected loudly.
	if _, err := CompletedFromStatsCSV(strings.NewReader("species,proteins\nyeast,6000\n")); err == nil {
		t.Fatal("CompletedFromStatsCSV accepted a non-stats CSV")
	}
}
