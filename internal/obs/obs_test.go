package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	g := r.Gauge("depth", "Queue depth.")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(2)
	g.Dec()
	g.Inc()
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Value())
	}
	out := render(t, r)
	for _, want := range []string{
		"# HELP depth Queue depth.\n# TYPE depth gauge\ndepth 9\n",
		"# HELP jobs_total Jobs.\n# TYPE jobs_total counter\njobs_total 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "depth") > strings.Index(out, "jobs_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestVecsAndDelete(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("tasks_total", "Tasks.", "event", "campaign")
	gv := r.GaugeVec("worker_goroutines", "Goroutines.", "worker")
	cv.With("done", "dvu").Add(3)
	cv.With("failed", "dvu").Inc()
	cv.With("done", "").Inc() // empty label value is legal
	gv.With("w1").Set(12)
	gv.With("w2").Set(8)
	if got := cv.With("done", "dvu").Value(); got != 3 {
		t.Fatalf("With returned a fresh counter: %d", got)
	}
	out := render(t, r)
	for _, want := range []string{
		`tasks_total{event="done",campaign="dvu"} 3`,
		`tasks_total{event="failed",campaign="dvu"} 1`,
		`tasks_total{event="done",campaign=""} 1`,
		`worker_goroutines{worker="w1"} 12`,
		`worker_goroutines{worker="w2"} 8`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	gv.Delete("w1")
	out = render(t, r)
	if strings.Contains(out, `worker="w1"`) {
		t.Errorf("deleted series still rendered:\n%s", out)
	}
	if !strings.Contains(out, `worker="w2"`) {
		t.Errorf("surviving series vanished:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("task_seconds", "Durations.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE task_seconds histogram",
		`task_seconds_bucket{le="0.1"} 1`,
		`task_seconds_bucket{le="1"} 3`,
		`task_seconds_bucket{le="10"} 4`,
		`task_seconds_bucket{le="+Inf"} 5`,
		"task_seconds_sum 56.05",
		"task_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFuncs(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("dropped_total", "Drops.", func() float64 { n++; return n })
	r.GaugeFunc("temp", "Temp.", func() float64 { return 3.5 })
	out := render(t, r)
	if !strings.Contains(out, "dropped_total 42\n") {
		t.Errorf("counter func not read at scrape time:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE dropped_total counter") {
		t.Errorf("counter func typed wrong:\n%s", out)
	}
	if !strings.Contains(out, "temp 3.5\n") {
		t.Errorf("gauge func missing:\n%s", out)
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("weird", "Help with \\ backslash\nand newline.", "name")
	cv.With("a\"b\\c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `# HELP weird Help with \\ backslash\nand newline.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird{name="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestBadHistogramBucketsPanics(t *testing.T) {
	r := NewRegistry()
	for i, buckets := range [][]float64{nil, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad buckets did not panic", i)
				}
			}()
			r.Histogram("h", "", buckets)
		}()
	}
}

func TestWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("v", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label count did not panic")
		}
	}()
	cv.With("only-one")
}

func TestUnlabeledHistogramLe(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("plain", "", []float64{1})
	h.Observe(0.5)
	out := render(t, r)
	if !strings.Contains(out, `plain_bucket{le="1"} 1`) {
		t.Errorf("unlabeled histogram le missing:\n%s", out)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	cv := r.CounterVec("cv", "", "k")
	h := r.Histogram("h", "", []float64{1, 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				cv.With("a").Inc()
				cv.With("b").Inc()
				h.Observe(float64(j % 3))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			render(t, r)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if cv.With("a").Value() != 8000 || cv.With("b").Value() != 8000 {
		t.Fatalf("vec counters = %d/%d, want 8000 each", cv.With("a").Value(), cv.With("b").Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
