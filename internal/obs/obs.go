// Package obs is a dependency-free live-metrics registry rendered in the
// Prometheus text exposition format (version 0.0.4).
//
// It is the scrapeable counterpart of internal/metrics (which formats
// offline benchmark reports): a Registry holds named families of counters,
// gauges, and fixed-bucket histograms, optionally labeled, and WritePrometheus
// renders every live series sorted and escaped so `curl /metrics` output is
// deterministic for a given state. All value updates are lock-free atomics —
// safe to call from the scheduler's event-emit path — and series creation
// (the only allocating operation) happens once per distinct label value.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	upper  []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// kind is the Prometheus TYPE of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one named metric with zero or more labeled series.
type family struct {
	name   string
	help   string
	typ    kind
	labels []string

	mu     sync.RWMutex
	series map[string]any // joined label values -> *Counter | *Gauge | *Histogram

	single any            // unlabeled collector, nil for vecs and funcs
	fn     func() float64 // scrape-time callback, nil otherwise

	buckets []float64 // histogram upper bounds
}

// A Registry holds metric families and renders them.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate name: metric names are
// program constants, so a collision is a programming error, not input.
func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	r.fams[f.name] = f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: kindCounter, single: c})
	return c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: kindGauge, single: g})
	return g
}

// Histogram registers and returns an unlabeled histogram with the given
// upper bucket bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets))}
	r.register(&family{name: name, help: help, typ: kindHistogram, single: h, buckets: buckets})
	return h
}

// CounterFunc registers a counter whose value is read at scrape time.
// Used for counts owned elsewhere (e.g. an AsyncSink's drop total).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: kindCounter, fn: fn})
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: kindGauge, fn: fn})
}

// A CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	f *family
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, typ: kindCounter, labels: labels, series: make(map[string]any)}
	r.register(f)
	return &CounterVec{f: f}
}

// With returns the counter for the given label values, creating it on
// first use. The lookup is allocation-free once the series exists.
func (v *CounterVec) With(values ...string) *Counter {
	if c, ok := v.f.lookup(values); ok {
		return c.(*Counter)
	}
	return v.f.create(values, func() any { return &Counter{} }).(*Counter)
}

// A GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	f *family
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, typ: kindGauge, labels: labels, series: make(map[string]any)}
	r.register(f)
	return &GaugeVec{f: f}
}

// With returns the gauge for the given label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if g, ok := v.f.lookup(values); ok {
		return g.(*Gauge)
	}
	return v.f.create(values, func() any { return &Gauge{} }).(*Gauge)
}

// Delete drops the series for the given label values (a departed worker's
// gauges should disappear from the scrape, not freeze at their last value).
func (v *GaugeVec) Delete(values ...string) {
	v.f.mu.Lock()
	delete(v.f.series, seriesKey(values))
	v.f.mu.Unlock()
}

// seriesKey joins label values into a map key. The single-label case — the
// hot path (campaign, worker) — uses the value directly, no allocation.
func seriesKey(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, "\x1f")
}

func (f *family) lookup(values []string) (any, bool) {
	f.mu.RLock()
	c, ok := f.series[seriesKey(values)]
	f.mu.RUnlock()
	return c, ok
}

func (f *family) create(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := seriesKey(values)
	if c, ok := f.series[key]; ok {
		return c
	}
	c := mk()
	f.series[key] = c
	return c
}

// WritePrometheus renders every family in text exposition format, families
// and series sorted by name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	switch {
	case f.fn != nil:
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fn()))
	case f.series != nil:
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		collectors := make([]any, 0, len(keys))
		sort.Strings(keys)
		for _, k := range keys {
			collectors = append(collectors, f.series[k])
		}
		f.mu.RUnlock()
		for i, k := range keys {
			f.renderSeries(b, strings.Split(k, "\x1f"), collectors[i])
		}
	default:
		f.renderSeries(b, nil, f.single)
	}
}

func (f *family) renderSeries(b *strings.Builder, values []string, c any) {
	switch c := c.(type) {
	case *Counter:
		b.WriteString(f.name)
		writeLabels(b, f.labels, values, "", "")
		fmt.Fprintf(b, " %d\n", c.Value())
	case *Gauge:
		b.WriteString(f.name)
		writeLabels(b, f.labels, values, "", "")
		fmt.Fprintf(b, " %d\n", c.Value())
	case *Histogram:
		cum := uint64(0)
		for i, ub := range c.upper {
			cum += c.counts[i].Load()
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, values, "le", formatFloat(ub))
			fmt.Fprintf(b, " %d\n", cum)
		}
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, values, "le", "+Inf")
		fmt.Fprintf(b, " %d\n", c.Count())
		b.WriteString(f.name)
		b.WriteString("_sum")
		writeLabels(b, f.labels, values, "", "")
		fmt.Fprintf(b, " %s\n", formatFloat(c.Sum()))
		b.WriteString(f.name)
		b.WriteString("_count")
		writeLabels(b, f.labels, values, "", "")
		fmt.Fprintf(b, " %d\n", c.Count())
	}
}

// writeLabels renders {k="v",...}, appending the extra pair (a histogram's
// le) last. Nothing is written when there are no labels at all.
func writeLabels(b *strings.Builder, names, values []string, extraK, extraV string) {
	if len(names) == 0 && extraK == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
