// Package svgplot renders the paper's Fig-2-style figures — a per-worker
// task timeline (one row per worker, one block per task execution) with
// an optional queue-depth strip below — as dependency-free SVG using
// only the standard library.
//
// The package draws data it is handed and nothing else: callers build a
// Timeline from a recorded trace (internal/analysis), an event-log
// replay (internal/events), or a dataflow simulation (internal/cluster).
// The overlay mode draws a second, outlined interval set over the filled
// one — the measured-vs-simulated comparison the ROADMAP's load-balance
// figure asks for.
//
// Rendering is deterministic: identical input yields byte-identical SVG
// (numbers are formatted with fixed precision and map-free iteration), a
// property the golden-file test gates.
package svgplot

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Interval is one task execution block: a half-open time range [Start,
// End] in seconds on one row (worker) of the timeline.
type Interval struct {
	// Row indexes Timeline.Rows.
	Row int
	// Start and End bound the block in seconds on the shared time axis.
	Start, End float64
	// Label, when non-empty, becomes the block's hover tooltip (an SVG
	// <title> child) — typically the task identity.
	Label string
	// Campaign, when positive, is the 1-based index into
	// Timeline.CampaignLabels of the campaign this block belongs to: the
	// block is filled with the campaign's palette color and the legend
	// names it. Zero (the default) keeps the standard measured fill, so
	// single-tenant figures render byte-identically.
	Campaign int
}

// DepthPoint is one step of the queue-depth series.
type DepthPoint struct {
	// T is the time in seconds on the shared axis.
	T float64
	// Depth is the queue depth from T onward (a step function).
	Depth int
}

// Timeline is the full figure description.
type Timeline struct {
	// Title is drawn above the plot.
	Title string
	// Rows labels the worker rows, top to bottom.
	Rows []string
	// Measured intervals are drawn as filled blocks.
	Measured []Interval
	// Simulated intervals, when present, are drawn as outlined blocks
	// over the measured ones — the overlay mode comparing a recorded run
	// against the dataflow simulator's prediction for the same tasks.
	Simulated []Interval
	// Depth, when present, adds a queue-depth step chart below the
	// timeline on the same time axis.
	Depth []DepthPoint
	// MeasuredLabel and SimulatedLabel name the legend entries; empty
	// selects "measured" and "simulated".
	MeasuredLabel, SimulatedLabel string
	// CampaignLabels, when non-empty, names the campaigns of a
	// multi-tenant figure: a second legend row lists each label with its
	// palette swatch, and intervals reference them 1-based through
	// Interval.Campaign. Empty keeps the figure byte-identical to
	// single-tenant releases.
	CampaignLabels []string
	// LODThreshold bounds how many individual task blocks an interval set
	// may draw before the renderer switches that set to level-of-detail
	// binning: per worker row, blocks are merged into one rectangle per
	// contiguous run of covered pixel columns, so a 6,000-worker campaign
	// figure stays a few thousand elements instead of one per task.
	// Binned runs keep a tooltip with the number of tasks they cover;
	// per-task labels are below pixel resolution at that density anyway.
	// Zero selects the default (4096); negative disables binning.
	LODThreshold int
}

// defaultLODThreshold is the interval count past which Render bins a set
// when the caller leaves LODThreshold at zero. Small figures — everything
// the golden tests and the per-run campaign timelines draw — stay on the
// exact per-task path and render byte-identically to earlier releases.
const defaultLODThreshold = 4096

// Fixed layout and the brand-neutral palette. Colors pair a colorblind-
// safe blue (measured fill) with a high-contrast orange (simulated
// outline); the depth line reuses the measured hue darkened.
const (
	leftMargin  = 150
	rightMargin = 24
	topMargin   = 56
	plotWidth   = 720
	rowHeight   = 16
	rowGap      = 4
	depthHeight = 80
	depthGap    = 34
	axisHeight  = 30

	colorMeasured  = "#4477aa"
	colorSimulated = "#ee7733"
	colorDepth     = "#225588"
	colorGrid      = "#dddddd"
	colorText      = "#333333"
)

// campaignPalette colors multi-tenant campaign blocks (Tol bright scheme,
// colorblind-safe); campaigns beyond the palette wrap around.
var campaignPalette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
}

// ftoa formats a coordinate or data value with fixed precision so the
// output is deterministic and diff-friendly.
func ftoa(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// escape makes a string safe for SVG text and attribute content.
func escape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&#39;",
	)
	return r.Replace(s)
}

// validate rejects figures that cannot render sensibly.
func (f *Timeline) validate() error {
	if len(f.Rows) == 0 {
		return fmt.Errorf("svgplot: timeline has no rows")
	}
	check := func(kind string, ivs []Interval) error {
		for i := range ivs {
			iv := &ivs[i]
			if iv.Row < 0 || iv.Row >= len(f.Rows) {
				return fmt.Errorf("svgplot: %s interval %d row %d out of range [0,%d)", kind, i, iv.Row, len(f.Rows))
			}
			if math.IsNaN(iv.Start) || math.IsInf(iv.Start, 0) ||
				math.IsNaN(iv.End) || math.IsInf(iv.End, 0) {
				return fmt.Errorf("svgplot: %s interval %d has non-finite bounds", kind, i)
			}
			if iv.End < iv.Start {
				return fmt.Errorf("svgplot: %s interval %d ends (%g) before it starts (%g)", kind, i, iv.End, iv.Start)
			}
			if iv.Campaign < 0 || iv.Campaign > len(f.CampaignLabels) {
				return fmt.Errorf("svgplot: %s interval %d campaign %d out of range [0,%d]", kind, i, iv.Campaign, len(f.CampaignLabels))
			}
		}
		return nil
	}
	if err := check("measured", f.Measured); err != nil {
		return err
	}
	if err := check("simulated", f.Simulated); err != nil {
		return err
	}
	for i := range f.Depth {
		if math.IsNaN(f.Depth[i].T) || math.IsInf(f.Depth[i].T, 0) {
			return fmt.Errorf("svgplot: depth point %d has non-finite time", i)
		}
		if f.Depth[i].Depth < 0 {
			return fmt.Errorf("svgplot: depth point %d is negative (%d)", i, f.Depth[i].Depth)
		}
		if i > 0 && f.Depth[i].T < f.Depth[i-1].T {
			return fmt.Errorf("svgplot: depth points not in time order at %d", i)
		}
	}
	return nil
}

// colRun is one contiguous run of covered pixel columns on one worker
// row — the unit the level-of-detail path draws instead of task blocks.
type colRun struct {
	row        int
	start, end int // pixel columns within the plot, inclusive
	tasks      int // intervals whose block begins inside this run
}

// binColumns quantizes an interval set to the plot's pixel columns and
// merges each row's coverage into contiguous runs. A task narrower than
// a column still covers its starting column, matching the minimum-width
// tick the exact path draws. Runs come out in row-major, left-to-right
// order, so the output — and the SVG built from it — is deterministic.
func binColumns(ivs []Interval, span float64, rows int) []colRun {
	type rowBins struct {
		cov    []bool
		starts []int32
	}
	bins := make([]*rowBins, rows)
	clamp := func(c int) int {
		if c < 0 {
			return 0
		}
		if c > plotWidth-1 {
			return plotWidth - 1
		}
		return c
	}
	for i := range ivs {
		iv := &ivs[i]
		c0 := clamp(int(iv.Start / span * float64(plotWidth)))
		c1 := clamp(int(math.Ceil(iv.End/span*float64(plotWidth))) - 1)
		if c1 < c0 {
			c1 = c0
		}
		b := bins[iv.Row]
		if b == nil {
			b = &rowBins{cov: make([]bool, plotWidth), starts: make([]int32, plotWidth)}
			bins[iv.Row] = b
		}
		b.starts[c0]++
		for c := c0; c <= c1; c++ {
			b.cov[c] = true
		}
	}
	var runs []colRun
	for row, b := range bins {
		if b == nil {
			continue
		}
		for c := 0; c < plotWidth; {
			if !b.cov[c] {
				c++
				continue
			}
			run := colRun{row: row, start: c}
			for c < plotWidth && b.cov[c] {
				run.tasks += int(b.starts[c])
				c++
			}
			run.end = c - 1
			runs = append(runs, run)
		}
	}
	return runs
}

// span returns the extent of the time axis (always > 0).
func (f *Timeline) span() float64 {
	max := 0.0
	for _, ivs := range [][]Interval{f.Measured, f.Simulated} {
		for i := range ivs {
			if ivs[i].End > max {
				max = ivs[i].End
			}
		}
	}
	for i := range f.Depth {
		if f.Depth[i].T > max {
			max = f.Depth[i].T
		}
	}
	if max <= 0 {
		return 1
	}
	return max
}

// Render writes the figure as a standalone SVG document.
func (f *Timeline) Render(w io.Writer) error {
	if err := f.validate(); err != nil {
		return err
	}
	span := f.span()
	timelineH := len(f.Rows)*(rowHeight+rowGap) - rowGap
	height := topMargin + timelineH + axisHeight
	depthTop := 0
	if len(f.Depth) > 0 {
		depthTop = topMargin + timelineH + depthGap
		height = depthTop + depthHeight + axisHeight
	}
	width := leftMargin + plotWidth + rightMargin

	x := func(t float64) float64 { return leftMargin + t/span*plotWidth }
	rowY := func(row int) int { return topMargin + row*(rowHeight+rowGap) }

	bw := bufio.NewWriter(w)
	var err error
	printf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(bw, format, args...)
		}
	}

	printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="Helvetica,Arial,sans-serif">`+"\n",
		width, height, width, height)
	printf(`<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	if f.Title != "" {
		printf(`<text x="%d" y="22" font-size="15" fill="%s">%s</text>`+"\n", leftMargin, colorText, escape(f.Title))
	}

	// Legend, right-aligned on the title line.
	mLabel, sLabel := f.MeasuredLabel, f.SimulatedLabel
	if mLabel == "" {
		mLabel = "measured"
	}
	if sLabel == "" {
		sLabel = "simulated"
	}
	legendX := leftMargin + plotWidth - 240
	printf(`<rect x="%d" y="12" width="14" height="10" fill="%s" fill-opacity="0.85"/>`+"\n", legendX, colorMeasured)
	printf(`<text x="%d" y="21" font-size="11" fill="%s">%s</text>`+"\n", legendX+20, colorText, escape(mLabel))
	if len(f.Simulated) > 0 {
		printf(`<rect x="%d" y="12" width="14" height="10" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", legendX+120, colorSimulated)
		printf(`<text x="%d" y="21" font-size="11" fill="%s">%s</text>`+"\n", legendX+140, colorText, escape(sLabel))
	}
	// Campaign legend row, below the title — only on multi-tenant figures,
	// so single-tenant output is byte-identical to earlier releases.
	for i, label := range f.CampaignLabels {
		cx := leftMargin + i*150
		printf(`<rect x="%d" y="30" width="14" height="10" fill="%s" fill-opacity="0.85"/>`+"\n",
			cx, campaignPalette[i%len(campaignPalette)])
		printf(`<text x="%d" y="39" font-size="11" fill="%s">%s</text>`+"\n",
			cx+20, colorText, escape(label))
	}

	// Time gridlines + axis ticks, shared by both charts.
	ticks := 6
	axisY := height - axisHeight + 14
	for i := 0; i <= ticks; i++ {
		t := span * float64(i) / float64(ticks)
		gx := ftoa(x(t))
		printf(`<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			gx, topMargin, gx, height-axisHeight, colorGrid)
		printf(`<text x="%s" y="%d" font-size="10" text-anchor="middle" fill="%s">%s</text>`+"\n",
			gx, axisY, colorText, ftoa(t))
	}
	printf(`<text x="%d" y="%d" font-size="11" text-anchor="middle" fill="%s">seconds</text>`+"\n",
		leftMargin+plotWidth/2, axisY+14, colorText)

	// Worker rows: label + baseline + blocks.
	for row, label := range f.Rows {
		y := rowY(row)
		printf(`<text x="%d" y="%d" font-size="10" text-anchor="end" fill="%s">%s</text>`+"\n",
			leftMargin-8, y+rowHeight-4, colorText, escape(label))
		printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="0.5"/>`+"\n",
			leftMargin, y+rowHeight, leftMargin+plotWidth, y+rowHeight, colorGrid)
	}
	block := func(iv *Interval, style string, campaignFill bool) {
		if campaignFill && iv.Campaign > 0 {
			style = fmt.Sprintf(`fill="%s" fill-opacity="0.85"`,
				campaignPalette[(iv.Campaign-1)%len(campaignPalette)])
		}
		bx := x(iv.Start)
		wd := x(iv.End) - bx
		if wd < 0.5 {
			wd = 0.5 // a zero-width task still leaves a visible tick
		}
		printf(`<rect x="%s" y="%d" width="%s" height="%d" %s>`,
			ftoa(bx), rowY(iv.Row)+1, ftoa(wd), rowHeight-2, style)
		if iv.Label != "" {
			printf(`<title>%s</title>`, escape(iv.Label))
		}
		printf("</rect>\n")
	}
	threshold := f.LODThreshold
	if threshold == 0 {
		threshold = defaultLODThreshold
	}
	drawSet := func(ivs []Interval, style string, campaignFill bool) {
		if threshold > 0 && len(ivs) > threshold {
			for _, run := range binColumns(ivs, span, len(f.Rows)) {
				printf(`<rect x="%d" y="%d" width="%d" height="%d" %s>`,
					leftMargin+run.start, rowY(run.row)+1, run.end-run.start+1, rowHeight-2, style)
				printf(`<title>%d tasks (binned)</title>`, run.tasks)
				printf("</rect>\n")
			}
			return
		}
		for i := range ivs {
			block(&ivs[i], style, campaignFill)
		}
	}
	drawSet(f.Measured, fmt.Sprintf(`fill="%s" fill-opacity="0.85"`, colorMeasured), true)
	drawSet(f.Simulated, fmt.Sprintf(`fill="none" stroke="%s" stroke-width="1.5"`, colorSimulated), false)

	// Queue-depth strip: a step polyline on the shared time axis.
	if len(f.Depth) > 0 {
		maxDepth := 1
		for i := range f.Depth {
			if f.Depth[i].Depth > maxDepth {
				maxDepth = f.Depth[i].Depth
			}
		}
		dy := func(d int) float64 {
			return float64(depthTop+depthHeight) - float64(d)/float64(maxDepth)*depthHeight
		}
		printf(`<text x="%d" y="%d" font-size="10" text-anchor="end" fill="%s">queue depth</text>`+"\n",
			leftMargin-8, depthTop+depthHeight/2, colorText)
		printf(`<text x="%d" y="%d" font-size="9" text-anchor="end" fill="%s">max %d</text>`+"\n",
			leftMargin-8, depthTop+depthHeight/2+12, colorText, maxDepth)
		printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="0.5"/>`+"\n",
			leftMargin, depthTop+depthHeight, leftMargin+plotWidth, depthTop+depthHeight, colorGrid)
		var pts strings.Builder
		prev := 0
		add := func(t float64, d int) {
			fmt.Fprintf(&pts, "%s,%s ", ftoa(x(t)), ftoa(dy(d)))
		}
		first := f.Depth[0]
		add(first.T, 0)
		for i := range f.Depth {
			p := f.Depth[i]
			add(p.T, prev) // horizontal run at the previous depth
			add(p.T, p.Depth)
			prev = p.Depth
		}
		add(span, prev)
		printf(`<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimRight(pts.String(), " "), colorDepth)
	}

	printf("</svg>\n")
	if err != nil {
		return fmt.Errorf("svgplot: rendering timeline: %w", err)
	}
	if ferr := bw.Flush(); ferr != nil {
		return fmt.Errorf("svgplot: rendering timeline: %w", ferr)
	}
	return nil
}
