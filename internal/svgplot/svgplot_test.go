package svgplot

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden SVG; review the diff before committing.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenFigure is a small but complete figure: three workers, measured
// blocks, a simulated overlay, a queue-depth strip, and labels that need
// XML escaping.
func goldenFigure() *Timeline {
	return &Timeline{
		Title: `DVU campaign <measured & simulated>`,
		Rows:  []string{"worker-a", "worker-b", "w&<>\"'"},
		Measured: []Interval{
			{Row: 0, Start: 0.5, End: 3.25, Label: "DVU_00001"},
			{Row: 1, Start: 0.5, End: 2, Label: "DVU_00002/m3"},
			{Row: 2, Start: 0.75, End: 4, Label: `task "quoted" & <odd>`},
			{Row: 1, Start: 2.25, End: 2.25}, // zero-width tick
		},
		Simulated: []Interval{
			{Row: 0, Start: 0, End: 2.75},
			{Row: 1, Start: 0, End: 1.5},
			{Row: 2, Start: 0, End: 3.5},
		},
		Depth: []DepthPoint{
			{T: 0, Depth: 4},
			{T: 0.5, Depth: 2},
			{T: 0.75, Depth: 1},
			{T: 2.25, Depth: 0},
		},
		MeasuredLabel:  "recorded run",
		SimulatedLabel: "SimulateDataflow",
	}
}

// TestRenderGolden gates the renderer byte for byte: figures must stay
// deterministic so recorded campaigns diff cleanly across runs.
func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFigure().Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline_golden.svg")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -update ./internal/svgplot` to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered SVG differs from %s (run with -update after reviewing)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

func TestRenderDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenFigure().Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenFigure().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same figure differ")
	}
}

func TestRenderContent(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFigure().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg xmlns=\"http://www.w3.org/2000/svg\"",
		"DVU campaign &lt;measured &amp; simulated&gt;",
		"worker-a",
		"w&amp;&lt;&gt;&quot;&#39;",
		"<title>DVU_00001</title>",
		"recorded run",
		"SimulateDataflow",
		"queue depth",
		"max 4",
		"<polyline",
		"seconds",
		"</svg>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered SVG missing %q", want)
		}
	}
	// Raw unescaped metacharacters must never leak from labels.
	if strings.Contains(out, `task "quoted"`) {
		t.Error("unescaped label leaked into the SVG")
	}
}

func TestRenderWithoutOverlayOrDepth(t *testing.T) {
	f := &Timeline{
		Rows:     []string{"w0"},
		Measured: []Interval{{Row: 0, Start: 0, End: 1}},
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "simulated") {
		t.Error("legend shows a simulated entry with no overlay")
	}
	if strings.Contains(out, "queue depth") {
		t.Error("depth strip rendered with no depth data")
	}
}

func TestRenderRejectsBadFigures(t *testing.T) {
	bad := []*Timeline{
		{},
		{Rows: []string{"w"}, Measured: []Interval{{Row: 1, Start: 0, End: 1}}},
		{Rows: []string{"w"}, Measured: []Interval{{Row: -1, Start: 0, End: 1}}},
		{Rows: []string{"w"}, Measured: []Interval{{Row: 0, Start: 2, End: 1}}},
		{Rows: []string{"w"}, Measured: []Interval{{Row: 0, Start: math.NaN(), End: 1}}},
		{Rows: []string{"w"}, Simulated: []Interval{{Row: 0, Start: 0, End: math.Inf(1)}}},
		{Rows: []string{"w"}, Depth: []DepthPoint{{T: math.NaN()}}},
		{Rows: []string{"w"}, Depth: []DepthPoint{{T: 2}, {T: 1}}},
		{Rows: []string{"w"}, Depth: []DepthPoint{{T: 1, Depth: -1}}},
	}
	for i, f := range bad {
		var buf bytes.Buffer
		if err := f.Render(&buf); err == nil {
			t.Errorf("figure %d rendered without error", i)
		}
	}
}

// TestRenderEmptySpan: a figure whose only content sits at t=0 must not
// divide by zero.
func TestRenderEmptySpan(t *testing.T) {
	f := &Timeline{
		Rows:     []string{"w"},
		Measured: []Interval{{Row: 0, Start: 0, End: 0}},
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("degenerate figure did not render to completion")
	}
}

// lodFigure is a deterministic dense timeline: 8 workers each packed
// with back-to-back short tasks, enough to trip a forced LOD threshold.
func lodFigure() *Timeline {
	f := &Timeline{
		Title:        "dense campaign (level-of-detail)",
		LODThreshold: 16,
	}
	for row := 0; row < 8; row++ {
		f.Rows = append(f.Rows, "worker-"+string(rune('a'+row)))
		// 400 tasks of 25ms with 5ms gaps: at ~50 px/s the gaps are far
		// below one pixel column, so the whole stretch bins into one run.
		for i := 0; i < 400; i++ {
			start := float64(i)*0.03 + float64(row)*0.001
			f.Measured = append(f.Measured, Interval{
				Row: row, Start: start, End: start + 0.025, Label: "ignored at this density",
			})
		}
		// A two-second gap and an isolated block, so binning produces a
		// second run per row.
		f.Measured = append(f.Measured, Interval{Row: row, Start: 14, End: 14.4})
	}
	return f
}

// TestRenderLODGolden gates the binned rendering path byte for byte,
// like the exact path's golden.
func TestRenderLODGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := lodFigure().Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline_lod_golden.svg")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -update ./internal/svgplot` to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered SVG differs from %s (run with -update after reviewing)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

func TestLODBinsDenseTimelines(t *testing.T) {
	var binned bytes.Buffer
	if err := lodFigure().Render(&binned); err != nil {
		t.Fatal(err)
	}
	out := binned.String()
	if !strings.Contains(out, "(binned)") {
		t.Fatal("dense figure did not take the LOD path")
	}
	if strings.Contains(out, "ignored at this density") {
		t.Error("per-task labels leaked into binned output")
	}
	// The whole point: element count collapses. 3,208 tasks over 8 rows
	// with one gap each must bin to at most two runs per row (plus the
	// background and legend rects).
	if n := strings.Count(out, "<rect"); n > 2+2*len(lodFigure().Rows) {
		t.Errorf("binned output has %d rects for %d rows", n, len(lodFigure().Rows))
	}
	// Binned runs carry task counts: 400 contiguous + 1 isolated per row.
	if !strings.Contains(out, "<title>400 tasks (binned)</title>") ||
		!strings.Contains(out, "<title>1 tasks (binned)</title>") {
		t.Errorf("run tooltips missing expected task counts")
	}

	// Below the threshold the exact per-task path still runs.
	exact := lodFigure()
	exact.LODThreshold = -1
	var full bytes.Buffer
	if err := exact.Render(&full); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(full.String(), "(binned)") {
		t.Error("negative threshold did not disable binning")
	}
	if !strings.Contains(full.String(), "ignored at this density") {
		t.Error("exact path lost task labels")
	}
}

func TestFtoa(t *testing.T) {
	tests := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		2.25:    "2.25",
		3.999:   "4",
		100:     "100",
		0.10001: "0.1",
	}
	for in, want := range tests {
		if got := ftoa(in); got != want {
			t.Errorf("ftoa(%v) = %q, want %q", in, got, want)
		}
	}
}
