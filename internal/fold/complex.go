package fold

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
)

// This file implements the paper's stated extension: AF2Complex (Gao et
// al., bioRxiv 2021), which generalizes the inference stage to predict
// protein-protein complexes using the same models and the same deployment
// optimizations. The paper's conclusion highlights it because complex
// screening has quadratic (or higher) cost in the number of sequences,
// making the HPC workflow machinery even more important.

// ComplexTask is one multimer inference work unit: two or more chains,
// each with its own features, joined for a single forward pass.
type ComplexTask struct {
	IDs      []string
	Lengths  []int
	Features []*FeaturesRef
	Model    int
	Preset   Preset
	// NodeMemGB as in Task; multimer passes are more memory hungry because
	// the pair representation covers the combined length.
	NodeMemGB float64
}

// FeaturesRef carries the per-chain MSA summary the complex quality model
// consumes.
type FeaturesRef struct {
	Neff         float64
	HasTemplates bool
}

// ComplexFeatures builds a FeaturesRef from MSA summary statistics.
func ComplexFeatures(neff float64, hasTemplates bool) *FeaturesRef {
	return &FeaturesRef{Neff: neff, HasTemplates: hasTemplates}
}

// ComplexPrediction is the outcome of one multimer inference.
type ComplexPrediction struct {
	ID          string // joined chain IDs
	TotalLength int
	Model       int
	MeanPLDDT   float64
	PTMS        float64
	// InterfaceScore is the AF2Complex-style interface confidence: high
	// values indicate a predicted physical interaction between the chains.
	InterfaceScore float64
	// Interacting is the thresholded call (interface score ≥ 0.5).
	Interacting bool
	GPUSeconds  float64
	PeakMemGB   float64
}

// InteractionOracle decides ground-truth interaction for a chain set; the
// engine's interface score approaches the oracle's verdict as MSA quality
// grows. The default (nil) oracle derives a deterministic ~12% interaction
// rate from the chain IDs.
type InteractionOracle interface {
	Interacts(ids []string) bool
}

// hashOracle is the default deterministic oracle.
type hashOracle struct{ seed uint64 }

func (h hashOracle) Interacts(ids []string) bool {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	acc := h.seed ^ 0x1234abcd
	for _, id := range sorted {
		for i := 0; i < len(id); i++ {
			acc ^= uint64(id[i])
			acc *= 1099511628211
		}
	}
	return rng.New(acc).Float64() < 0.12
}

// InferComplex runs one multimer task. The cost model follows the paper's
// scaling argument: a multimer forward pass costs like a single chain of
// the combined length (so an all-vs-all screen is quadratic in the number
// of proteins and worse in residues).
func (e *Engine) InferComplex(t ComplexTask, oracle InteractionOracle) (*ComplexPrediction, error) {
	if len(t.IDs) < 2 {
		return nil, fmt.Errorf("fold: complex needs at least 2 chains, got %d", len(t.IDs))
	}
	if len(t.Lengths) != len(t.IDs) || len(t.Features) != len(t.IDs) {
		return nil, fmt.Errorf("fold: complex arity mismatch: %d ids, %d lengths, %d features",
			len(t.IDs), len(t.Lengths), len(t.Features))
	}
	total := 0
	for i, l := range t.Lengths {
		if l <= 0 {
			return nil, fmt.Errorf("fold: chain %s has no length", t.IDs[i])
		}
		total += l
	}
	if t.Model < 0 || t.Model >= NumModels {
		return nil, fmt.Errorf("fold: complex model %d out of range", t.Model)
	}
	mem := e.PeakMemGB(t.Preset, total) * 1.25 // pair representation overhead
	if t.NodeMemGB > 0 && mem > t.NodeMemGB {
		return nil, fmt.Errorf("%w: complex %s needs %.1f GB, node has %.1f GB",
			ErrOutOfMemory, strings.Join(t.IDs, "+"), mem, t.NodeMemGB)
	}

	id := strings.Join(t.IDs, "+")
	r := rng.New(e.Seed).SplitNamed("complex:" + id)
	modelR := r.SplitNamed(fmt.Sprintf("model:%d", t.Model))

	// Joint MSA quality: the paired MSA is only as good as the weaker
	// chain's alignment (interolog pairing loses depth).
	minNeff := math.Inf(1)
	hasTemplates := true
	for _, f := range t.Features {
		neff := 8.0
		ht := false
		if f != nil {
			neff = f.Neff
			ht = f.HasTemplates
		}
		if neff < minNeff {
			minNeff = neff
		}
		hasTemplates = hasTemplates && ht
	}
	jointNeff := minNeff * 0.6 // pairing loss

	if oracle == nil {
		oracle = hashOracle{seed: e.Seed}
	}
	truth := oracle.Interacts(t.IDs)

	// Interface score: centered on the truth, blurred by MSA quality. Deep
	// paired MSAs separate interacting from non-interacting pairs cleanly;
	// shallow ones are ambiguous — the operating regime AF2Complex reports.
	separation := 0.38 * (1 - math.Exp(-0.25*jointNeff))
	center := 0.5 - separation
	if truth {
		center = 0.5 + separation
	}
	score := center + 0.12*modelR.NormFloat64()
	if score < 0 {
		score = 0
	} else if score > 1 {
		score = 1
	}

	// Chain-level quality reuses the monomer machinery on the combined
	// length (the multimer models share weights with the monomer ones).
	recycles := t.Preset.RecycleCap(total)
	errInf := e.Cal.ErrBase + e.Cal.ErrNeff/(1+e.Cal.NeffScale*jointNeff) +
		e.Cal.ErrLen*float64(total)/1000
	mult := 1 + e.Cal.ModelJitter*modelR.NormFloat64()
	if mult < 0.8 {
		mult = 0.8
	}
	if TemplateModels(t.Model) && hasTemplates {
		mult *= e.Cal.TemplateGain
	}
	errInf *= mult
	plddt := 100 / (1 + math.Pow(errInf/e.Cal.PLDDTScale, e.Cal.PLDDTShape))
	d0 := 1.24*math.Cbrt(float64(total-15)) - 1.8
	if d0 < 0.5 {
		d0 = 0.5
	}
	ptms := 1 / (1 + (2.2*errInf/d0)*(2.2*errInf/d0))

	return &ComplexPrediction{
		ID:             id,
		TotalLength:    total,
		Model:          t.Model,
		MeanPLDDT:      plddt,
		PTMS:           ptms,
		InterfaceScore: score,
		Interacting:    score >= 0.5,
		GPUSeconds: e.Cal.CostBase + e.Cal.CostScale*
			float64(t.Preset.Ensembles)*float64(recycles+1)*math.Pow(float64(total), 1.5),
		PeakMemGB: mem,
	}, nil
}
