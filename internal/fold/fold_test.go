package fold

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/msa"
	"repro/internal/seq"
)

func TestPresetTable(t *testing.T) {
	if ReducedDBs.Ensembles != 1 || ReducedDBs.MaxRecycles != 3 || ReducedDBs.Dynamic {
		t.Error("reduced_dbs preset wrong")
	}
	if CASP14.Ensembles != 8 || CASP14.MaxRecycles != 3 {
		t.Error("casp14 preset wrong (8 ensembles, 3 recycles)")
	}
	if !Genome.Dynamic || Genome.Tol != 0.5 || Genome.MaxRecycles != 20 {
		t.Error("genome preset wrong (dynamic, tol 0.5, max 20)")
	}
	if !Super.Dynamic || Super.Tol != 0.1 {
		t.Error("super preset wrong (dynamic, tol 0.1)")
	}
	if len(AllPresets()) != 4 {
		t.Error("expected 4 presets")
	}
}

func TestRecycleCap(t *testing.T) {
	if Genome.RecycleCap(300) != 20 {
		t.Error("short sequences keep the full cap")
	}
	if got := Genome.RecycleCap(2400); got != 6 {
		t.Errorf("very long sequence cap = %d, want floor 6", got)
	}
	// Monotone non-increasing in length.
	prev := 21
	for _, l := range []int{100, 500, 700, 1000, 1500, 2000, 2499} {
		c := Genome.RecycleCap(l)
		if c > prev {
			t.Errorf("cap increased with length at %d", l)
		}
		if c < 6 {
			t.Errorf("cap %d below floor at length %d", c, l)
		}
		prev = c
	}
	// Fixed presets never reduce.
	if ReducedDBs.RecycleCap(2400) != 3 || CASP14.RecycleCap(2400) != 3 {
		t.Error("fixed presets must keep 3 recycles")
	}
}

func TestTemplateModels(t *testing.T) {
	n := 0
	for m := 0; m < NumModels; m++ {
		if TemplateModels(m) {
			n++
		}
	}
	if n != 2 {
		t.Errorf("%d template models, paper says 2 of 5", n)
	}
}

func TestGenerateTopologyDeterministicAndChainlike(t *testing.T) {
	a := GenerateTopology(5, 120)
	b := GenerateTopology(5, 120)
	if a.Len() != 120 || b.Len() != 120 {
		t.Fatal("wrong length")
	}
	for i := range a.CA {
		if a.CA[i] != b.CA[i] {
			t.Fatal("same-seed topologies differ")
		}
	}
	// Consecutive Cα ~3.8 Å apart.
	for i := 1; i < a.Len(); i++ {
		d := a.CA[i].Dist(a.CA[i-1])
		if d < 1.0 || d > 6.0 {
			t.Errorf("CA step %d = %v Å", i, d)
		}
	}
	// Side chains ~2.4 Å from their Cα.
	for i := range a.SC {
		d := a.SC[i].Dist(a.CA[i])
		if math.Abs(d-2.4) > 0.01 {
			t.Errorf("SC offset %d = %v", i, d)
		}
	}
}

func TestDifferentSeedsGiveDifferentFolds(t *testing.T) {
	a := GenerateTopology(1, 150)
	b := GenerateTopology(2, 150)
	tm, err := geom.TMScore(a.CA, b.CA)
	if err != nil {
		t.Fatal(err)
	}
	if tm > 0.5 {
		t.Errorf("different seeds gave TM=%v (folds too similar)", tm)
	}
	self, err := geom.TMScore(a.CA, a.CA)
	if err != nil {
		t.Fatal(err)
	}
	if self < 0.999 {
		t.Errorf("self TM = %v", self)
	}
}

func TestTopologyIsCompact(t *testing.T) {
	nat := GenerateTopology(9, 200)
	rg := radiusOfGyration(nat.CA)
	// Globular proteins: Rg ≈ 2.2·N^0.38 ≈ 16.6 Å for N=200. A fully
	// extended chain would be >200 Å. Accept a generous band.
	if rg > 60 {
		t.Errorf("Rg = %v Å for 200 residues; chain not compact", rg)
	}
	if rg < 5 {
		t.Errorf("Rg = %v Å; chain collapsed", rg)
	}
}

func TestComposeDomains(t *testing.T) {
	d1 := GenerateTopology(1, 80)
	d2 := GenerateTopology(2, 90)
	multi := ComposeDomains([]*Native{d1, d2}, 7)
	if multi.Len() != 170 {
		t.Fatalf("composed length = %d", multi.Len())
	}
	// Domain centroids must be separated (no interpenetration).
	c1 := geom.Centroid(multi.CA[:80])
	c2 := geom.Centroid(multi.CA[80:])
	if c1.Dist(c2) < 10 {
		t.Errorf("domain centroids %v Å apart; likely interpenetrating", c1.Dist(c2))
	}
	if ComposeDomains(nil, 1).Len() != 0 {
		t.Error("empty composition should be empty")
	}
}

func TestFitLength(t *testing.T) {
	nat := GenerateTopology(3, 100)
	if FitLength(nat, 100, 1).Len() != 100 {
		t.Error("identity fit changed length")
	}
	short := FitLength(nat, 60, 1)
	if short.Len() != 60 {
		t.Error("truncation failed")
	}
	long := FitLength(nat, 140, 1)
	if long.Len() != 140 {
		t.Error("extension failed")
	}
	for i := 101; i < 140; i++ {
		d := long.CA[i].Dist(long.CA[i-1])
		if d < 1 || d > 6 {
			t.Errorf("extended step %d = %v", i, d)
		}
	}
}

func testFeatures(l int, neff float64, templates int) *msa.Features {
	f := &msa.Features{
		Query: seq.Sequence{ID: "q", Residues: stringOfLen(l)},
		Neff:  neff,
		Depth: int(neff) + 1,
	}
	for i := 0; i < templates; i++ {
		f.Templates = append(f.Templates, msa.TemplateHit{ID: "t", Identity: 0.5, Coverage: 0.8})
	}
	return f
}

func stringOfLen(l int) string {
	b := make([]byte, l)
	for i := range b {
		b[i] = seq.Alphabet[i%seq.NumAminoAcids]
	}
	return string(b)
}

func testEngine() *Engine {
	return NewEngine(&SeededProvider{Seed: 99}, 1234)
}

func TestInferDeterministic(t *testing.T) {
	e := testEngine()
	task := Task{ID: "p1", Length: 150, Features: testFeatures(150, 15, 1), Model: 2, Preset: Genome, NodeMemGB: 16}
	a, err := e.Infer(task)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Infer(task)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanPLDDT != b.MeanPLDDT || a.PTMS != b.PTMS || a.Recycles != b.Recycles {
		t.Error("inference not deterministic")
	}
}

func TestInferValidation(t *testing.T) {
	e := testEngine()
	if _, err := e.Infer(Task{ID: "x", Length: 0, Model: 0, Preset: Genome}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := e.Infer(Task{ID: "x", Length: 10, Model: 7, Preset: Genome}); err == nil {
		t.Error("bad model index accepted")
	}
}

func TestOOMForLongCASP14(t *testing.T) {
	e := testEngine()
	_, err := e.Infer(Task{ID: "big", Length: 1200, Features: testFeatures(1200, 10, 0), Model: 0, Preset: CASP14, NodeMemGB: 16})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("1200-AA casp14 task should OOM on 16 GB, got %v", err)
	}
	// The same task fits with a single ensemble...
	if _, err := e.Infer(Task{ID: "big", Length: 1200, Features: testFeatures(1200, 10, 0), Model: 0, Preset: Genome, NodeMemGB: 16}); err != nil {
		t.Errorf("genome preset on 1200 AA should fit: %v", err)
	}
	// ...and on a high-memory node even with casp14.
	if _, err := e.Infer(Task{ID: "big", Length: 1200, Features: testFeatures(1200, 10, 0), Model: 0, Preset: CASP14, NodeMemGB: 64}); err != nil {
		t.Errorf("high-memory node should fit casp14: %v", err)
	}
}

func TestDeeperMSAImprovesQuality(t *testing.T) {
	e := testEngine()
	var deepSum, shallowSum float64
	n := 40
	for i := 0; i < n; i++ {
		id := "t" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		deep, err := e.Infer(Task{ID: id, Length: 200, Features: testFeatures(200, 40, 1), Model: 2, Preset: Genome, NodeMemGB: 16})
		if err != nil {
			t.Fatal(err)
		}
		shallow, err := e.Infer(Task{ID: id, Length: 200, Features: testFeatures(200, 1, 0), Model: 2, Preset: Genome, NodeMemGB: 16})
		if err != nil {
			t.Fatal(err)
		}
		deepSum += deep.MeanPLDDT
		shallowSum += shallow.MeanPLDDT
	}
	if deepSum/float64(n) <= shallowSum/float64(n)+5 {
		t.Errorf("deep MSA mean pLDDT %v not clearly above shallow %v",
			deepSum/float64(n), shallowSum/float64(n))
	}
}

func TestMoreRecyclesImproveHardTargets(t *testing.T) {
	e := testEngine()
	// Find a hard target (low Neff to boost the odds) and check that super
	// beats reduced_dbs on it while costing more recycles.
	improved := 0
	checked := 0
	for i := 0; i < 120 && checked < 40; i++ {
		id := "hard" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
		feat := testFeatures(180, 2, 0)
		short, err := e.Infer(Task{ID: id, Length: 180, Features: feat, Model: 3, Preset: ReducedDBs, NodeMemGB: 16})
		if err != nil {
			t.Fatal(err)
		}
		long, err := e.Infer(Task{ID: id, Length: 180, Features: feat, Model: 3, Preset: Super, NodeMemGB: 16})
		if err != nil {
			t.Fatal(err)
		}
		checked++
		if long.PTMS > short.PTMS+0.05 {
			improved++
			if long.Recycles <= 3 {
				t.Errorf("big improvement with only %d recycles?", long.Recycles)
			}
		}
		if long.PTMS < short.PTMS-0.08 {
			t.Errorf("super preset clearly worse than reduced_dbs on %s: %v vs %v",
				id, long.PTMS, short.PTMS)
		}
	}
	if improved == 0 {
		t.Error("no target improved by ≥0.05 pTMS with longer recycles; the Section 4.2 tail is missing")
	}
}

func TestDynamicConvergenceBounds(t *testing.T) {
	e := testEngine()
	for i := 0; i < 30; i++ {
		id := "c" + string(rune('a'+i))
		p, err := e.Infer(Task{ID: id, Length: 120, Features: testFeatures(120, 20, 0), Model: 1, Preset: Genome, NodeMemGB: 16})
		if err != nil {
			t.Fatal(err)
		}
		if p.Recycles < 1 || p.Recycles > 20 {
			t.Errorf("recycles = %d out of bounds", p.Recycles)
		}
	}
}

func TestSuperRecyclesAtLeastGenome(t *testing.T) {
	e := testEngine()
	for i := 0; i < 25; i++ {
		id := "s" + string(rune('a'+i))
		feat := testFeatures(150, 10, 0)
		g, err := e.Infer(Task{ID: id, Length: 150, Features: feat, Model: 0, Preset: Genome, NodeMemGB: 16})
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.Infer(Task{ID: id, Length: 150, Features: feat, Model: 0, Preset: Super, NodeMemGB: 16})
		if err != nil {
			t.Fatal(err)
		}
		if s.Recycles < g.Recycles {
			t.Errorf("%s: super used %d recycles < genome %d (tighter tolerance must recycle more)",
				id, s.Recycles, g.Recycles)
		}
	}
}

func TestCASP14CostsRoughly8x(t *testing.T) {
	e := testEngine()
	feat := testFeatures(200, 10, 0)
	r, err := e.Infer(Task{ID: "c8", Length: 200, Features: feat, Model: 2, Preset: ReducedDBs, NodeMemGB: 64})
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.Infer(Task{ID: "c8", Length: 200, Features: feat, Model: 2, Preset: CASP14, NodeMemGB: 64})
	if err != nil {
		t.Fatal(err)
	}
	ratio := c.GPUSeconds / r.GPUSeconds
	// The paper calls it "approximately eight times"; its own Table 1
	// implies >=10x end to end (>150 min on 91 nodes vs 44 min on 32).
	if ratio < 6 || ratio > 12 {
		t.Errorf("casp14/reduced cost ratio = %v, paper says ~8x (>=10x implied)", ratio)
	}
}

func TestCostGrowsWithLength(t *testing.T) {
	e := testEngine()
	prev := 0.0
	for _, l := range []int{100, 300, 900, 2000} {
		p, err := e.Infer(Task{ID: "len", Length: l, Features: testFeatures(l, 10, 0), Model: 0, Preset: ReducedDBs, NodeMemGB: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if p.GPUSeconds <= prev {
			t.Errorf("cost not increasing at length %d", l)
		}
		prev = p.GPUSeconds
	}
}

func TestInferWithCoords(t *testing.T) {
	e := testEngine()
	p, err := e.Infer(Task{
		ID: "xyz", Length: 90, Features: testFeatures(90, 25, 1),
		Model: 1, Preset: Genome, NodeMemGB: 16, WantCoords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CA) != 90 || len(p.SC) != 90 || len(p.PLDDT) != 90 {
		t.Fatalf("coordinate outputs missing: %d/%d/%d", len(p.CA), len(p.SC), len(p.PLDDT))
	}
	// Prediction must resemble the native for a well-constrained target.
	nat := e.Provider.NativeOf("xyz", 90)
	tm, err := geom.TMScore(p.CA, nat.CA)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 0.4 {
		t.Errorf("high-Neff prediction TM to native = %v; surrogate not tracking oracle", tm)
	}
	for _, pl := range p.PLDDT {
		if pl < 0 || pl > 100 {
			t.Errorf("pLDDT out of range: %v", pl)
		}
	}
}

func TestCoordsRequireProvider(t *testing.T) {
	e := NewEngine(nil, 1)
	_, err := e.Infer(Task{ID: "x", Length: 50, Model: 0, Preset: Genome, NodeMemGB: 16, WantCoords: true})
	if err == nil {
		t.Error("WantCoords without provider must fail")
	}
}

func TestRanking(t *testing.T) {
	preds := []*Prediction{
		{PTMS: 0.5, MeanPLDDT: 80},
		nil,
		{PTMS: 0.7, MeanPLDDT: 75},
		{PTMS: 0.6, MeanPLDDT: 90},
	}
	if RankByPTMS(preds) != 2 {
		t.Errorf("RankByPTMS = %d", RankByPTMS(preds))
	}
	if RankByPLDDT(preds) != 3 {
		t.Errorf("RankByPLDDT = %d", RankByPLDDT(preds))
	}
	if RankByPTMS(nil) != -1 {
		t.Error("empty ranking should be -1")
	}
}

func BenchmarkInferSummary(b *testing.B) {
	e := testEngine()
	feat := testFeatures(300, 15, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Infer(Task{ID: "bench", Length: 300, Features: feat, Model: i % 5, Preset: Genome, NodeMemGB: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferWithCoords(b *testing.B) {
	e := testEngine()
	feat := testFeatures(300, 15, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Infer(Task{ID: "bench", Length: 300, Features: feat, Model: i % 5, Preset: Genome, NodeMemGB: 16, WantCoords: true}); err != nil {
			b.Fatal(err)
		}
	}
}
