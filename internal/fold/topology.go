// Package fold implements the deep-learning inference surrogate that stands
// in for AlphaFold2 (Section 3.2.2 of the paper). The real network and its
// weights are unavailable here, so the engine simulates the *observable
// behaviour* of AlphaFold inference that the paper's experiments measure:
//
//   - five models per target, two of which consume structural templates;
//   - iterative recycling, with the ColabFold-style dynamic early stop on
//     distogram convergence (tolerance 0.5 for the genome preset, 0.1 for
//     super; up to 20 recycles, degraded toward 6 for long sequences);
//   - prediction quality that improves with MSA depth (Neff) and recycle
//     count, with a small population of "challenging" targets that only
//     converge near the recycle limit (Section 4.2's improvement tail);
//   - pLDDT and pTMS confidence estimates used for model ranking;
//   - compute cost scaling with ensembles × recycles × L^1.5 and an
//     out-of-memory failure mode for long sequences under the casp14
//     8-ensemble preset (Table 1's missing 8 longest sequences).
//
// Ground-truth geometry comes from a NativeProvider "physics oracle": the
// simulated native structure the network is assumed to have learned.
// Inference output approaches the oracle structure as effective compute
// grows; the pipeline itself never sees the oracle.
package fold

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Native is a ground-truth structure: Cα trace plus side-chain centroids.
type Native struct {
	CA []geom.Vec3
	SC []geom.Vec3
}

// Len returns the residue count.
func (n *Native) Len() int { return len(n.CA) }

// NativeProvider supplies the simulated ground-truth structure for a target
// (the role nature plays for the real AlphaFold). Implementations must be
// deterministic.
type NativeProvider interface {
	NativeOf(id string, length int) *Native
}

// SSKind is a secondary-structure state.
type SSKind byte

const (
	Helix SSKind = 'H'
	Sheet SSKind = 'E'
	Coil  SSKind = 'C'
)

// GenerateTopology builds a deterministic, compact, protein-like Cα trace
// of the given length from a topology seed. Equal seeds and lengths yield
// identical structures; different seeds yield structurally dissimilar folds
// (TM-score between random pairs is low). Chains are built from secondary-
// structure segments with ideal local geometry and a centroid-seeking bias
// that keeps the fold globular.
func GenerateTopology(seed uint64, length int) *Native {
	if length <= 0 {
		return &Native{}
	}
	base := rng.New(seed).SplitNamed("topology")
	// Independent streams per phase: the segment decomposition consumes a
	// length-dependent number of draws, so the geometry walk must NOT share
	// its stream — otherwise the same seed at two lengths would produce
	// unrelated folds, breaking the family-structure conservation the
	// Section 4.6 analysis depends on (same seed => identical chain prefix).
	ssR := base.SplitNamed("ss")
	geoR := base.SplitNamed("geo")
	scR := base.SplitNamed("sc")

	// Draw a segment decomposition: alternating SS segments.
	ss := make([]SSKind, length)
	pos := 0
	for pos < length {
		kind := Coil
		segLen := 2 + ssR.Intn(4)
		switch ssR.Intn(3) {
		case 0:
			kind = Helix
			segLen = 6 + ssR.Intn(12)
		case 1:
			kind = Sheet
			segLen = 4 + ssR.Intn(6)
		}
		for i := 0; i < segLen && pos < length; i++ {
			ss[pos] = kind
			pos++
		}
	}

	ca := make([]geom.Vec3, length)
	// Excluded volume: the chain is self-avoiding at the clearance radius,
	// so generated natives are free of clashes and bumps (the violations
	// the relaxation experiments plant are added on top, deliberately).
	const clearance = 4.4
	occupied := newOccupancyGrid(clearance)

	// Current frame: position plus direction.
	dir := geom.Vec3{X: 1}
	up := geom.Vec3{Z: 1}
	cur := geom.Vec3{}
	phase := 0.0

	// proposeStep returns the ideal next position per the SS rule.
	proposeStep := func(i int) geom.Vec3 {
		switch ss[i] {
		case Helix:
			// Advance along a coarse helix: 1.5 Å rise, ~5.4 Å circumradius
			// projected onto the Cα virtual-bond representation.
			phase += 100 * math.Pi / 180
			lateral := up.Cross(dir).Unit()
			step := dir.Scale(1.5).
				Add(lateral.Scale(2.3 * math.Cos(phase))).
				Add(up.Scale(2.3 * math.Sin(phase)))
			return cur.Add(step.Unit().Scale(3.8))
		case Sheet:
			// Extended: nearly straight with slight pleat.
			pleat := up.Scale(0.6 * math.Cos(phase))
			phase += math.Pi
			return cur.Add(dir.Add(pleat).Unit().Scale(3.8))
		default:
			// Coil: redirect; bias back toward the centroid of what is
			// built so far to stay globular.
			centroid := geom.Centroid(ca[:i+1])
			bias := centroid.Sub(cur).Unit().Scale(0.8)
			wobble := geom.Vec3{
				X: geoR.NormFloat64(), Y: geoR.NormFloat64(), Z: geoR.NormFloat64(),
			}.Unit()
			dir = dir.Add(wobble).Add(bias).Unit()
			return cur.Add(dir.Scale(3.8))
		}
	}

	for i := 0; i < length; i++ {
		ca[i] = cur
		occupied.add(cur)

		next := proposeStep(i)
		// Collision avoidance: if the proposal lands too close to the
		// existing chain (excluding the bonded predecessor), rotate the
		// step around the current position until clear, preferring the
		// most-clear candidate if nothing fully clears.
		best := next
		bestClear := occupied.clearance(next, cur)
		for try := 0; bestClear < clearance && try < 24; try++ {
			axis := geom.Vec3{X: geoR.NormFloat64(), Y: geoR.NormFloat64(), Z: geoR.NormFloat64() + 1e-3}
			rot := geom.RotationAboutAxis(axis, (0.3+geoR.Float64())*math.Pi)
			cand := cur.Add(rot.MulVec(next.Sub(cur)))
			if c := occupied.clearance(cand, cur); c > bestClear {
				bestClear = c
				best = cand
			}
		}
		if best != next {
			// The detour redirects the chain; update the frame to follow.
			dir = best.Sub(cur).Unit()
		}
		cur = best
		// Occasionally re-randomize the helical frame so helices do not all
		// share an axis.
		if i%17 == 16 {
			dir = dir.Add(geom.Vec3{
				X: geoR.NormFloat64() * 0.5, Y: geoR.NormFloat64() * 0.5, Z: geoR.NormFloat64() * 0.5,
			}).Unit()
			up = dir.Cross(geom.Vec3{X: geoR.NormFloat64(), Y: geoR.NormFloat64(), Z: 1}).Unit()
			if up.Norm() < 1e-9 {
				up = geom.Vec3{Z: 1}
			}
		}
	}

	// Side-chain centroids: 2.4 Å from Cα, pointing away from the local
	// backbone direction with a deterministic wobble.
	sc := make([]geom.Vec3, length)
	for i := range sc {
		var tangent geom.Vec3
		switch {
		case i == 0 && length > 1:
			tangent = ca[1].Sub(ca[0])
		case i == length-1 && length > 1:
			tangent = ca[i].Sub(ca[i-1])
		case length == 1:
			tangent = geom.Vec3{X: 1}
		default:
			tangent = ca[i+1].Sub(ca[i-1])
		}
		centroid := geom.Centroid(ca)
		out := ca[i].Sub(centroid).Unit()
		if out.Norm() < 1e-9 {
			out = geom.Vec3{Z: 1}
		}
		perp := out.Sub(tangent.Unit().Scale(out.Dot(tangent.Unit())))
		if perp.Norm() < 1e-9 {
			perp = geom.Vec3{Z: 1}
		}
		wob := geom.Vec3{X: scR.NormFloat64(), Y: scR.NormFloat64(), Z: scR.NormFloat64()}.Scale(0.25)
		sc[i] = ca[i].Add(perp.Unit().Add(wob).Unit().Scale(2.4))
	}
	return &Native{CA: ca, SC: sc}
}

// occupancyGrid is a spatial hash used for self-avoidance during chain
// growth.
type occupancyGrid struct {
	cell  float64
	cells map[[3]int][]geom.Vec3
}

func newOccupancyGrid(cell float64) *occupancyGrid {
	return &occupancyGrid{cell: cell, cells: make(map[[3]int][]geom.Vec3)}
}

func (g *occupancyGrid) key(p geom.Vec3) [3]int {
	return [3]int{
		int(math.Floor(p.X / g.cell)),
		int(math.Floor(p.Y / g.cell)),
		int(math.Floor(p.Z / g.cell)),
	}
}

func (g *occupancyGrid) add(p geom.Vec3) {
	k := g.key(p)
	g.cells[k] = append(g.cells[k], p)
}

// clearance returns the distance from p to the nearest occupied point,
// ignoring points within bond distance of `exclude` (the bonded
// predecessor), capped at one cell ring (anything farther counts as clear).
func (g *occupancyGrid) clearance(p, exclude geom.Vec3) float64 {
	k := g.key(p)
	best := 2 * g.cell
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				for _, q := range g.cells[[3]int{k[0] + dx, k[1] + dy, k[2] + dz}] {
					if q.Dist(exclude) < 1e-9 {
						continue
					}
					if d := p.Dist(q); d < best {
						best = d
					}
				}
			}
		}
	}
	return best
}

// ComposeDomains concatenates several domain folds into one multi-domain
// native structure, translating each successive domain so domains touch but
// do not interpenetrate. This models multi-domain architecture and the
// "novel arrangements of known domains" of Section 4.6.
func ComposeDomains(domains []*Native, seed uint64) *Native {
	out := &Native{}
	if len(domains) == 0 {
		return out
	}
	r := rng.New(seed).SplitNamed("compose")
	offset := geom.Vec3{}
	for d, dom := range domains {
		if dom.Len() == 0 {
			continue
		}
		// Center the domain, rotate it deterministically, then place it.
		center := geom.Centroid(dom.CA)
		rot := geom.RotationAboutAxis(geom.Vec3{
			X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64() + 1e-3,
		}, r.Float64()*2*math.Pi)
		radius := radiusOfGyration(dom.CA) + 4
		if d > 0 {
			dir := geom.Vec3{X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()}.Unit()
			offset = offset.Add(dir.Scale(radius * 1.8))
		}
		for i := range dom.CA {
			out.CA = append(out.CA, rot.MulVec(dom.CA[i].Sub(center)).Add(offset))
			out.SC = append(out.SC, rot.MulVec(dom.SC[i].Sub(center)).Add(offset))
		}
	}
	return out
}

// FitLength adapts a native structure to exactly n residues by truncating
// or by extending the terminus with a coil walk (deterministic in seed).
func FitLength(nat *Native, n int, seed uint64) *Native {
	if nat.Len() == n {
		return nat
	}
	if nat.Len() > n {
		return &Native{CA: nat.CA[:n], SC: nat.SC[:n]}
	}
	out := &Native{CA: geom.Clone(nat.CA), SC: geom.Clone(nat.SC)}
	r := rng.New(seed).SplitNamed("fitlength")
	cur := geom.Vec3{}
	dir := geom.Vec3{X: 1}
	if k := nat.Len(); k > 0 {
		cur = nat.CA[k-1]
		if k > 1 {
			dir = nat.CA[k-1].Sub(nat.CA[k-2]).Unit()
		}
	}
	for out.Len() < n {
		dir = dir.Add(geom.Vec3{
			X: r.NormFloat64() * 0.7, Y: r.NormFloat64() * 0.7, Z: r.NormFloat64() * 0.7,
		}).Unit()
		cur = cur.Add(dir.Scale(3.8))
		out.CA = append(out.CA, cur)
		out.SC = append(out.SC, cur.Add(dir.Cross(geom.Vec3{Z: 1}).Unit().Scale(2.4)))
	}
	return out
}

func radiusOfGyration(pts []geom.Vec3) float64 {
	if len(pts) == 0 {
		return 0
	}
	c := geom.Centroid(pts)
	var sum float64
	for _, p := range pts {
		sum += p.Dist2(c)
	}
	return math.Sqrt(sum / float64(len(pts)))
}

// FamilyTopologySeed maps a domain family of the shared universe to its
// fold topology seed. Both the pipeline's ground-truth provider and the
// structural database builder (the pdb70 stand-in) use this mapping, which
// is what makes "structure is more conserved than sequence" hold in the
// simulation: every member of a family folds to the same topology
// regardless of how far its sequence has diverged.
func FamilyTopologySeed(universeSeed uint64, family int) uint64 {
	h := universeSeed ^ 0x517cc1b727220a95
	h ^= uint64(family) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// SeededProvider is a simple NativeProvider that derives the topology seed
// from the target ID; useful for tests and standalone examples.
type SeededProvider struct {
	Seed uint64
}

// NativeOf generates the structure deterministically from the id hash.
func (p *SeededProvider) NativeOf(id string, length int) *Native {
	h := p.Seed
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return GenerateTopology(h, length)
}
