package fold

// Preset bundles the inference configuration knobs exactly as Section 3.2.2
// describes them: the two official AlphaFold presets (reduced_dbs and
// casp14, fixed 3 recycles, 1 and 8 ensembles respectively) and the paper's
// two custom presets (genome and super) that recycle dynamically until the
// inter-recycle distogram change falls below a tolerance (0.5 and 0.1), up
// to 20 recycles, with the cap progressively reduced to a floor of 6 for
// sequences longer than 500 residues.
type Preset struct {
	Name        string
	Ensembles   int
	MaxRecycles int
	// MinRecyclesLong is the floor the recycle cap shrinks to for very long
	// sequences (dynamic presets only).
	MinRecyclesLong int
	// Dynamic enables the ColabFold-style early stop on distogram
	// convergence with tolerance Tol (Å of mean pairwise-distance change).
	// MinRecycles is the floor before the convergence check applies, so a
	// dynamic preset never does less work than the official 3 recycles.
	Dynamic     bool
	Tol         float64
	MinRecycles int
}

// The four presets of Table 1.
var (
	ReducedDBs = Preset{Name: "reduced_dbs", Ensembles: 1, MaxRecycles: 3, MinRecyclesLong: 3}
	CASP14     = Preset{Name: "casp14", Ensembles: 8, MaxRecycles: 3, MinRecyclesLong: 3}
	Genome     = Preset{Name: "genome", Ensembles: 1, MaxRecycles: 20, MinRecyclesLong: 6, Dynamic: true, Tol: 0.5, MinRecycles: 3}
	Super      = Preset{Name: "super", Ensembles: 1, MaxRecycles: 20, MinRecyclesLong: 6, Dynamic: true, Tol: 0.1, MinRecycles: 3}
)

// AllPresets returns the four presets in Table 1 order.
func AllPresets() []Preset { return []Preset{ReducedDBs, Genome, Super, CASP14} }

// RecycleCap returns the maximum recycle count for a sequence of the given
// length: MaxRecycles up to 500 residues, then reduced by one per 130
// additional residues down to MinRecyclesLong (Section 3.2.2's progressive
// reduction "to a minimum of 6").
func (p Preset) RecycleCap(length int) int {
	if !p.Dynamic || length <= 500 {
		return p.MaxRecycles
	}
	cap := p.MaxRecycles - (length-500)/130
	if cap < p.MinRecyclesLong {
		cap = p.MinRecyclesLong
	}
	return cap
}

// NumModels is the number of AlphaFold model heads run per target; each
// produces one structure and the best is selected by confidence.
const NumModels = 5

// TemplateModels reports whether model index m consumes structural
// templates: per the paper, "the structural features are only used by two
// of the five DL models".
func TemplateModels(m int) bool { return m == 0 || m == 1 }
