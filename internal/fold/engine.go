package fold

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/msa"
	"repro/internal/rng"
)

// ErrOutOfMemory is returned when a task's estimated peak memory exceeds
// the memory available to its worker, the failure mode that cost the
// casp14 preset its 8 longest sequences in Table 1.
var ErrOutOfMemory = errors.New("fold: inference out of memory")

// Calibration holds the tunable constants of the quality/cost model. The
// defaults are calibrated so the Table 1 and Section 4.3.1 statistics land
// near the paper's values; they are exported so ablation benches can probe
// sensitivity.
type Calibration struct {
	// Quality model.
	ErrBase      float64 // irreducible mean displacement (Å)
	ErrNeff      float64 // MSA-depth-dependent error: ErrNeff/(1+NeffScale*Neff)
	NeffScale    float64
	ErrLen       float64 // per-residue length penalty (Å per 1000 AA)
	EnsembleGain float64 // error multiplier per extra ensemble batch (casp14)
	TemplateGain float64 // error multiplier for template models with hits
	ModelJitter  float64 // stddev of per-model error multiplier
	PLDDTScale   float64 // displacement (Å) at which pLDDT crosses 50
	PLDDTShape   float64 // kernel exponent
	PLDDTNoise   float64 // confidence-estimator noise (pLDDT points)
	PTMSNoise    float64 // pTMS estimator noise

	// Difficulty mixture (Section 4.2's improvement tail).
	FracMedium, FracHard float64

	// DistogramGain converts the error-schedule decrement into the
	// distogram-change units the presets' tolerances (0.5/0.1) compare
	// against.
	DistogramGain float64

	// Cost model: GPUSeconds = CostBase + CostScale·E·(R+1)·L^1.5.
	CostBase  float64
	CostScale float64

	// Memory model: PeakMemGB = MemBase + MemScale·E·(L/1000)².
	MemBase  float64
	MemScale float64
}

// DefaultCalibration returns the constants used for the paper
// reproduction benches.
func DefaultCalibration() Calibration {
	return Calibration{
		ErrBase:       0.85,
		ErrNeff:       4.6,
		NeffScale:     0.55,
		ErrLen:        0.45,
		EnsembleGain:  0.99,
		TemplateGain:  0.94,
		ModelJitter:   0.07,
		PLDDTScale:    5.0,
		PLDDTShape:    1.8,
		PLDDTNoise:    1.5,
		PTMSNoise:     0.012,
		FracMedium:    0.06,
		FracHard:      0.025,
		DistogramGain: 2.0,
		CostBase:      2.0,
		CostScale:     0.0115,
		MemBase:       0.7,
		MemScale:      4.6,
	}
}

// Engine runs surrogate AlphaFold inference. It is safe for concurrent use:
// all state is immutable after construction and per-task randomness is
// derived from (Seed, target ID, model).
type Engine struct {
	Provider NativeProvider
	Seed     uint64
	Cal      Calibration
}

// NewEngine builds an engine with default calibration.
func NewEngine(p NativeProvider, seed uint64) *Engine {
	return &Engine{Provider: p, Seed: seed, Cal: DefaultCalibration()}
}

// Task is one inference work unit: one (target, model) pair, the task
// granularity the paper's Dask deployment uses for load balance.
type Task struct {
	ID       string
	Length   int
	Features *msa.Features // may be nil (no-MSA fallback, heavily penalized)
	Model    int           // 0..NumModels-1
	Preset   Preset
	// NodeMemGB is the memory available to the worker (16 for a standard
	// Summit GPU's HBM slice; effectively unbounded on high-memory nodes).
	NodeMemGB float64
	// WantCoords materializes final coordinates and per-residue pLDDT.
	// Campaign-scale benches leave it false and use the summary statistics,
	// which are computed from the same deterministic model.
	WantCoords bool
}

// Prediction is the output of one inference task.
type Prediction struct {
	ID        string
	Model     int
	Length    int
	Recycles  int
	Converged bool // dynamic presets: stopped by tolerance rather than cap
	MeanPLDDT float64
	PTMS      float64
	// FracAbove70 and FracAbove90 are the fractions of (sampled) residues
	// with pLDDT above 70 and 90, the thresholds Section 4.3.1 reports
	// coverage against.
	FracAbove70 float64
	FracAbove90 float64
	// CA/SC/PLDDT are populated only when Task.WantCoords was set.
	CA    []geom.Vec3
	SC    []geom.Vec3
	PLDDT []float64
	// Cost accounting for the cluster simulator.
	GPUSeconds float64
	PeakMemGB  float64
}

// difficulty is the per-(target, model) latent quality model.
type difficulty struct {
	errInf float64   // asymptotic mean displacement
	gap    float64   // extra displacement at recycle 0
	tau    float64   // recycle decay constant
	domOff []float64 // per-domain global displacement multipliers
	domLen int       // residues per domain (last domain takes the rest)
}

// err returns the expected mean displacement after r recycles.
func (d *difficulty) err(r int) float64 {
	return d.errInf + d.gap*math.Exp(-float64(r)/d.tau)
}

// PeakMemGB estimates inference memory for a preset and length.
func (e *Engine) PeakMemGB(p Preset, length int) float64 {
	l := float64(length) / 1000
	return e.Cal.MemBase + e.Cal.MemScale*float64(p.Ensembles)*l*l
}

// Infer runs one task. The error is ErrOutOfMemory when the task cannot
// fit; callers reroute such tasks to high-memory nodes as the paper did.
func (e *Engine) Infer(t Task) (*Prediction, error) {
	if t.Length <= 0 {
		return nil, fmt.Errorf("fold: task %s has no length", t.ID)
	}
	if t.Model < 0 || t.Model >= NumModels {
		return nil, fmt.Errorf("fold: task %s model %d out of range", t.ID, t.Model)
	}
	mem := e.PeakMemGB(t.Preset, t.Length)
	if t.NodeMemGB > 0 && mem > t.NodeMemGB {
		return nil, fmt.Errorf("%w: %s needs %.1f GB, node has %.1f GB",
			ErrOutOfMemory, t.ID, mem, t.NodeMemGB)
	}

	r := rng.New(e.Seed).SplitNamed("infer:" + t.ID)
	modelR := r.SplitNamed(fmt.Sprintf("model:%d", t.Model))
	diff := e.difficultyOf(t, r.SplitNamed("difficulty"), modelR)

	// Recycling loop with distogram convergence, evaluated on a fixed
	// deterministic sample of residue pairs (the distogram proxy).
	pairR := r.SplitNamed("pairs")
	nPairs := 256
	type pair struct{ scale float64 } // sensitivity of this pair's distance to the error field
	pairs := make([]pair, nPairs)
	for i := range pairs {
		// Pair distance sensitivity: |Δ(d_ij)| ≈ |f_i - f_j| projected; the
		// realized magnitudes follow a folded normal around 1.
		pairs[i] = pair{scale: math.Abs(pairR.NormFloat64()*0.5 + 1)}
	}

	cap := t.Preset.RecycleCap(t.Length)
	recycles := cap
	converged := false
	if t.Preset.Dynamic {
		prevErr := diff.err(0)
		for rr := 1; rr <= cap; rr++ {
			curErr := diff.err(rr)
			// Mean absolute pairwise-distance change across the sampled
			// distogram between consecutive recycles.
			var change float64
			for _, p := range pairs {
				change += p.scale * (prevErr - curErr)
			}
			change = change / float64(nPairs) * e.Cal.DistogramGain
			prevErr = curErr
			if rr >= t.Preset.MinRecycles && change < t.Preset.Tol {
				recycles = rr
				converged = true
				break
			}
		}
	} else {
		recycles = t.Preset.MaxRecycles
	}

	finalErr := diff.err(recycles)

	pred := &Prediction{
		ID: t.ID, Model: t.Model, Length: t.Length,
		Recycles: recycles, Converged: converged,
		GPUSeconds: e.Cal.CostBase + e.Cal.CostScale*
			float64(t.Preset.Ensembles)*(1+0.05*float64(t.Preset.Ensembles-1))*
			float64(recycles+1)*math.Pow(float64(t.Length), 1.5),
		PeakMemGB: mem,
	}

	// Quality: sample (or fully materialize) the per-residue displacement
	// field. pLDDT sees only local displacement; pTMS additionally sees the
	// per-domain rigid offsets, which is what separates the local and
	// global metrics for multi-domain proteins, as the paper discusses.
	fieldR := r.SplitNamed("field")
	noiseR := r.SplitNamed("estimator")
	d0 := geom.D0(t.Length)

	sampleN := t.Length
	materialize := t.WantCoords
	if !materialize && sampleN > 256 {
		sampleN = 256
	}

	var sumPLDDT, sumTM float64
	var n70, n90 int
	var plddts []float64
	var field []geom.Vec3
	if materialize {
		field = smoothField(fieldR, t.Length)
		plddts = make([]float64, t.Length)
	}
	for i := 0; i < sampleN; i++ {
		var local float64
		var resIdx int
		if materialize {
			local = field[i].Norm() * finalErr
			resIdx = i
		} else {
			local = math.Abs(fieldR.NormFloat64()*0.45+1) * finalErr
			resIdx = i * t.Length / sampleN
		}
		dom := 0
		if diff.domLen > 0 {
			dom = resIdx / diff.domLen
			if dom >= len(diff.domOff) {
				dom = len(diff.domOff) - 1
			}
		}
		global := local + diff.domOff[dom]*finalErr

		pl := 100/(1+math.Pow(local/e.Cal.PLDDTScale, e.Cal.PLDDTShape)) +
			noiseR.NormFloat64()*e.Cal.PLDDTNoise
		if pl < 0 {
			pl = 0
		} else if pl > 100 {
			pl = 100
		}
		sumPLDDT += pl
		if pl > 70 {
			n70++
		}
		if pl > 90 {
			n90++
		}
		if materialize {
			plddts[i] = pl
		}
		sumTM += 1 / (1 + (global/d0)*(global/d0))
	}
	pred.MeanPLDDT = sumPLDDT / float64(sampleN)
	pred.FracAbove70 = float64(n70) / float64(sampleN)
	pred.FracAbove90 = float64(n90) / float64(sampleN)
	pred.PTMS = sumTM/float64(sampleN) + noiseR.NormFloat64()*e.Cal.PTMSNoise
	if pred.PTMS > 1 {
		pred.PTMS = 1
	} else if pred.PTMS < 0 {
		pred.PTMS = 0
	}

	if materialize {
		if e.Provider == nil {
			return nil, fmt.Errorf("fold: task %s wants coordinates but engine has no NativeProvider", t.ID)
		}
		nat := e.Provider.NativeOf(t.ID, t.Length)
		if nat.Len() != t.Length {
			return nil, fmt.Errorf("fold: provider returned %d residues for %s (want %d)",
				nat.Len(), t.ID, t.Length)
		}
		pred.CA = make([]geom.Vec3, t.Length)
		pred.SC = make([]geom.Vec3, t.Length)
		scR := r.SplitNamed("sc")
		for i := 0; i < t.Length; i++ {
			dom := 0
			if diff.domLen > 0 {
				dom = i / diff.domLen
				if dom >= len(diff.domOff) {
					dom = len(diff.domOff) - 1
				}
			}
			// Domain offset displaces the whole domain coherently along a
			// per-domain direction; local field displaces per residue.
			disp := field[i].Scale(finalErr).
				Add(diff.domDir(dom).Scale(diff.domOff[dom] * finalErr))
			pred.CA[i] = nat.CA[i].Add(disp)
			scNoise := geom.Vec3{
				X: scR.NormFloat64(), Y: scR.NormFloat64(), Z: scR.NormFloat64(),
			}.Scale(0.25 * finalErr)
			pred.SC[i] = nat.SC[i].Add(disp).Add(scNoise)
		}
		pred.PLDDT = plddts
	}
	return pred, nil
}

// domDir returns a deterministic unit direction for a domain's rigid
// offset.
func (d *difficulty) domDir(dom int) geom.Vec3 {
	r := rng.New(uint64(dom)*0x9e37 + 17)
	return geom.Vec3{X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()}.Unit()
}

// difficultyOf derives the latent difficulty of a (target, model) pair from
// the MSA features and deterministic per-target randomness.
func (e *Engine) difficultyOf(t Task, targetR, modelR *rng.Source) difficulty {
	neff := 8.0
	hasTemplates := false
	if t.Features != nil {
		neff = t.Features.Neff
		hasTemplates = len(t.Features.Templates) > 0
	}
	d := difficulty{}
	d.errInf = e.Cal.ErrBase +
		e.Cal.ErrNeff/(1+e.Cal.NeffScale*neff) +
		e.Cal.ErrLen*float64(t.Length)/1000

	// Difficulty class mixture: most targets converge quickly; a medium
	// class benefits from ~5-8 recycles; a small hard class keeps improving
	// to the 20-recycle cap (the Section 4.2 tail: ~5% of targets provide
	// ~45% of the super-preset improvement). Shallow MSAs shift mass toward
	// the harder classes, which is what makes the plant proteome both lower
	// quality and more recycle-hungry than the prokaryotes (Section 4.3.1).
	boost := 2.2 / (1 + 0.12*neff)
	if boost < 0.5 {
		boost = 0.5
	} else if boost > 2.8 {
		boost = 2.8
	}
	fracHard := e.Cal.FracHard * boost
	fracMedium := e.Cal.FracMedium * boost
	u := targetR.Float64()
	switch {
	case u < fracHard:
		d.tau = 5 + 5*targetR.Float64()
		d.gap = 3 + 4*targetR.Float64()
	case u < fracHard+fracMedium:
		d.tau = 2 + 2*targetR.Float64()
		d.gap = 2 + 2*targetR.Float64()
	default:
		d.tau = 0.5 + 0.5*targetR.Float64()
		d.gap = 1.0 + 1.2*targetR.Float64()
	}

	// Per-model variation plus the template advantage for models 0 and 1.
	mult := 1 + e.Cal.ModelJitter*modelR.NormFloat64()
	if mult < 0.8 {
		mult = 0.8
	}
	if TemplateModels(t.Model) && hasTemplates {
		mult *= e.Cal.TemplateGain
	}
	if t.Preset.Ensembles > 1 {
		mult *= e.Cal.EnsembleGain
	}
	d.errInf *= mult
	d.gap *= mult

	// Domain decomposition for the global-error model: one rigid offset per
	// ~220 residues.
	nDom := 1 + t.Length/200
	if nDom > 6 {
		nDom = 6
	}
	d.domLen = (t.Length + nDom - 1) / nDom
	d.domOff = make([]float64, nDom)
	for i := range d.domOff {
		if i == 0 {
			d.domOff[i] = 0 // anchor domain defines the frame
			continue
		}
		d.domOff[i] = 1.4 + 3.7*targetR.Float64()
	}
	return d
}

// smoothField generates a per-residue displacement field with unit mean
// magnitude, smoothed along the chain so displacement is spatially
// correlated the way real model error is.
func smoothField(r *rng.Source, n int) []geom.Vec3 {
	raw := make([]geom.Vec3, n)
	for i := range raw {
		raw[i] = geom.Vec3{X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()}
	}
	const w = 3 // smoothing half-window
	out := make([]geom.Vec3, n)
	var meanNorm float64
	for i := range out {
		var acc geom.Vec3
		cnt := 0
		for j := i - w; j <= i+w; j++ {
			if j >= 0 && j < n {
				acc = acc.Add(raw[j])
				cnt++
			}
		}
		out[i] = acc.Scale(1 / float64(cnt))
		meanNorm += out[i].Norm()
	}
	meanNorm /= float64(n)
	if meanNorm > 0 {
		for i := range out {
			out[i] = out[i].Scale(1 / meanNorm)
		}
	}
	return out
}

// RankByPTMS returns the index of the best prediction by pTMS, the ranking
// the paper uses to pick the top model.
func RankByPTMS(preds []*Prediction) int {
	best := -1
	for i, p := range preds {
		if p == nil {
			continue
		}
		if best < 0 || p.PTMS > preds[best].PTMS {
			best = i
		}
	}
	return best
}

// RankByPLDDT returns the index of the best prediction by mean pLDDT.
func RankByPLDDT(preds []*Prediction) int {
	best := -1
	for i, p := range preds {
		if p == nil {
			continue
		}
		if best < 0 || p.MeanPLDDT > preds[best].MeanPLDDT {
			best = i
		}
	}
	return best
}
