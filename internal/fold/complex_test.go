package fold

import (
	"errors"
	"fmt"
	"testing"
)

func complexTask(ids []string, lengths []int, neff float64) ComplexTask {
	feats := make([]*FeaturesRef, len(ids))
	for i := range feats {
		feats[i] = ComplexFeatures(neff, true)
	}
	return ComplexTask{
		IDs: ids, Lengths: lengths, Features: feats,
		Model: 0, Preset: Genome, NodeMemGB: 64,
	}
}

func TestInferComplexValidation(t *testing.T) {
	e := testEngine()
	if _, err := e.InferComplex(complexTask([]string{"a"}, []int{100}, 10), nil); err == nil {
		t.Error("single-chain complex accepted")
	}
	bad := complexTask([]string{"a", "b"}, []int{100}, 10)
	bad.Lengths = []int{100} // arity mismatch
	if _, err := e.InferComplex(bad, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	zero := complexTask([]string{"a", "b"}, []int{100, 0}, 10)
	if _, err := e.InferComplex(zero, nil); err == nil {
		t.Error("zero-length chain accepted")
	}
	badModel := complexTask([]string{"a", "b"}, []int{100, 100}, 10)
	badModel.Model = 9
	if _, err := e.InferComplex(badModel, nil); err == nil {
		t.Error("bad model accepted")
	}
}

func TestInferComplexDeterministic(t *testing.T) {
	e := testEngine()
	task := complexTask([]string{"p1", "p2"}, []int{150, 200}, 15)
	a, err := e.InferComplex(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.InferComplex(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.InterfaceScore != b.InterfaceScore || a.PTMS != b.PTMS {
		t.Error("complex inference not deterministic")
	}
	if a.TotalLength != 350 {
		t.Errorf("total length = %d", a.TotalLength)
	}
	if a.ID != "p1+p2" {
		t.Errorf("ID = %q", a.ID)
	}
}

func TestComplexOOM(t *testing.T) {
	e := testEngine()
	// Two long chains exceed a standard GPU even single-ensemble.
	task := complexTask([]string{"big1", "big2"}, []int{1200, 1200}, 10)
	task.NodeMemGB = 16
	_, err := e.InferComplex(task, nil)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("2400-residue complex should OOM on 16 GB, got %v", err)
	}
	task.NodeMemGB = 128
	if _, err := e.InferComplex(task, nil); err != nil {
		t.Errorf("high-memory node should fit: %v", err)
	}
}

// fixedOracle returns a preset truth for testing discrimination.
type fixedOracle bool

func (f fixedOracle) Interacts(ids []string) bool { return bool(f) }

func TestComplexDiscriminatesInteractions(t *testing.T) {
	e := testEngine()
	// With deep MSAs, interacting pairs score clearly above
	// non-interacting ones.
	var posHits, negHits int
	const n = 60
	for i := 0; i < n; i++ {
		ids := []string{fmt.Sprintf("x%02d", i), fmt.Sprintf("y%02d", i)}
		task := complexTask(ids, []int{120, 140}, 30)
		pos, err := e.InferComplex(task, fixedOracle(true))
		if err != nil {
			t.Fatal(err)
		}
		neg, err := e.InferComplex(task, fixedOracle(false))
		if err != nil {
			t.Fatal(err)
		}
		if pos.Interacting {
			posHits++
		}
		if neg.Interacting {
			negHits++
		}
		if pos.InterfaceScore <= neg.InterfaceScore {
			t.Errorf("pair %d: interacting score %v <= non-interacting %v",
				i, pos.InterfaceScore, neg.InterfaceScore)
		}
	}
	if posHits < n*9/10 {
		t.Errorf("recall %d/%d with deep MSAs; should be high", posHits, n)
	}
	if negHits > n/10 {
		t.Errorf("false positives %d/%d with deep MSAs; should be low", negHits, n)
	}
}

func TestComplexShallowMSAsAmbiguous(t *testing.T) {
	e := testEngine()
	// With Neff ~1 the interface score cannot separate the classes well:
	// the error rate must be clearly worse than the deep-MSA case.
	errors := 0
	const n = 80
	for i := 0; i < n; i++ {
		ids := []string{fmt.Sprintf("s%02d", i), fmt.Sprintf("t%02d", i)}
		task := complexTask(ids, []int{120, 140}, 1)
		pos, err := e.InferComplex(task, fixedOracle(true))
		if err != nil {
			t.Fatal(err)
		}
		neg, err := e.InferComplex(task, fixedOracle(false))
		if err != nil {
			t.Fatal(err)
		}
		if !pos.Interacting {
			errors++
		}
		if neg.Interacting {
			errors++
		}
	}
	if errors < n/8 {
		t.Errorf("only %d/%d errors with Neff 1; shallow MSAs should be ambiguous", errors, 2*n)
	}
}

func TestComplexCostSuperadditive(t *testing.T) {
	e := testEngine()
	// The complex pass must cost more than the two monomer passes combined
	// (L^1.5 superadditivity) — the quadratic-scaling argument of the
	// paper's conclusion.
	feats := testFeatures(200, 10, 0)
	m1, err := e.Infer(Task{ID: "a", Length: 200, Features: feats, Model: 0, Preset: Genome, NodeMemGB: 64})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.Infer(Task{ID: "b", Length: 300, Features: testFeatures(300, 10, 0), Model: 0, Preset: Genome, NodeMemGB: 64})
	if err != nil {
		t.Fatal(err)
	}
	cx, err := e.InferComplex(complexTask([]string{"a", "b"}, []int{200, 300}, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cx.GPUSeconds <= (m1.GPUSeconds+m2.GPUSeconds)*0.8 {
		t.Errorf("complex cost %v not superadditive vs %v + %v",
			cx.GPUSeconds, m1.GPUSeconds, m2.GPUSeconds)
	}
}

func TestDefaultOracleRate(t *testing.T) {
	e := testEngine()
	hits := 0
	const n = 500
	for i := 0; i < n; i++ {
		o := hashOracle{seed: e.Seed}
		if o.Interacts([]string{fmt.Sprintf("pa%03d", i), fmt.Sprintf("pb%03d", i)}) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.05 || frac > 0.25 {
		t.Errorf("default interaction rate %v, want ~0.12", frac)
	}
	// Order invariance.
	o := hashOracle{seed: 1}
	if o.Interacts([]string{"a", "b"}) != o.Interacts([]string{"b", "a"}) {
		t.Error("oracle not symmetric in chain order")
	}
}
