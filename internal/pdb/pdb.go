// Package pdb provides minimal PDB-format reading and writing for the
// predicted models: enough to round-trip the Cα/side-chain-centroid
// representation the pipeline uses, with pLDDT stored in the B-factor
// column the way AlphaFold and the AlphaFold Database do.
package pdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/seq"
)

// Atom is one ATOM record.
type Atom struct {
	Serial  int
	Name    string // e.g. "CA", "CB"
	ResName string // three-letter residue name
	Chain   byte
	ResSeq  int
	Pos     geom.Vec3
	BFactor float64 // carries per-residue pLDDT, AlphaFold-style
}

// Model is a single-chain structural model.
type Model struct {
	ID    string
	Atoms []Atom
}

// CACoords returns the Cα trace in residue order.
func (m *Model) CACoords() []geom.Vec3 {
	var out []geom.Vec3
	for _, a := range m.Atoms {
		if a.Name == "CA" {
			out = append(out, a.Pos)
		}
	}
	return out
}

// Poses returns per-residue Cα + side-chain-centroid poses for SPECS
// scoring. Residues without a CB record use the Cα as the side-chain
// representative (the glycine convention).
func (m *Model) Poses() []geom.ResiduePose {
	byRes := map[int]*geom.ResiduePose{}
	var order []int
	for _, a := range m.Atoms {
		p, ok := byRes[a.ResSeq]
		if !ok {
			p = &geom.ResiduePose{}
			byRes[a.ResSeq] = p
			order = append(order, a.ResSeq)
		}
		switch a.Name {
		case "CA":
			p.CA = a.Pos
			if p.SC == (geom.Vec3{}) {
				p.SC = a.Pos
			}
		case "CB":
			p.SC = a.Pos
		}
	}
	out := make([]geom.ResiduePose, 0, len(order))
	for _, r := range order {
		out = append(out, *byRes[r])
	}
	return out
}

// FromTrace builds a model from a sequence, a Cα trace and matching
// side-chain centroids (scs may be nil) with per-residue B-factors (bf may
// be nil).
func FromTrace(id string, residues string, cas, scs []geom.Vec3, bf []float64) (*Model, error) {
	if len(cas) != len(residues) {
		return nil, fmt.Errorf("pdb: %d CA atoms for %d residues", len(cas), len(residues))
	}
	if scs != nil && len(scs) != len(cas) {
		return nil, fmt.Errorf("pdb: %d side-chain centroids for %d residues", len(scs), len(cas))
	}
	if bf != nil && len(bf) != len(cas) {
		return nil, fmt.Errorf("pdb: %d b-factors for %d residues", len(bf), len(cas))
	}
	m := &Model{ID: id}
	serial := 1
	for i := range cas {
		res3, ok := seq.ThreeLetter[residues[i]]
		if !ok {
			res3 = "UNK"
		}
		var b float64
		if bf != nil {
			b = bf[i]
		}
		m.Atoms = append(m.Atoms, Atom{
			Serial: serial, Name: "CA", ResName: res3, Chain: 'A',
			ResSeq: i + 1, Pos: cas[i], BFactor: b,
		})
		serial++
		if scs != nil && residues[i] != 'G' {
			m.Atoms = append(m.Atoms, Atom{
				Serial: serial, Name: "CB", ResName: res3, Chain: 'A',
				ResSeq: i + 1, Pos: scs[i], BFactor: b,
			})
			serial++
		}
	}
	return m, nil
}

// Write emits the model in PDB format.
func Write(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "HEADER    PREDICTED MODEL%svia repro pipeline\nTITLE     %s\n",
		strings.Repeat(" ", 10), m.ID); err != nil {
		return err
	}
	for _, a := range m.Atoms {
		name := a.Name
		if len(name) < 4 {
			name = " " + name // standard column alignment for short names
		}
		if _, err := fmt.Fprintf(bw, "ATOM  %5d %-4s %3s %c%4d    %8.3f%8.3f%8.3f%6.2f%6.2f\n",
			a.Serial, name, a.ResName, a.Chain, a.ResSeq,
			a.Pos.X, a.Pos.Y, a.Pos.Z, 1.0, a.BFactor); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "TER\nEND"); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses ATOM records from a PDB stream; everything else is ignored.
func Read(r io.Reader) (*Model, error) {
	m := &Model{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "TITLE") {
			m.ID = strings.TrimSpace(line[6:])
			continue
		}
		if !strings.HasPrefix(line, "ATOM") {
			continue
		}
		if len(line) < 66 {
			return nil, fmt.Errorf("pdb: short ATOM record at line %d", lineNo)
		}
		serial, err := strconv.Atoi(strings.TrimSpace(line[6:11]))
		if err != nil {
			return nil, fmt.Errorf("pdb: bad serial at line %d: %w", lineNo, err)
		}
		resSeq, err := strconv.Atoi(strings.TrimSpace(line[22:26]))
		if err != nil {
			return nil, fmt.Errorf("pdb: bad resSeq at line %d: %w", lineNo, err)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(line[30:38]), 64)
		if err != nil {
			return nil, fmt.Errorf("pdb: bad x at line %d: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(line[38:46]), 64)
		if err != nil {
			return nil, fmt.Errorf("pdb: bad y at line %d: %w", lineNo, err)
		}
		z, err := strconv.ParseFloat(strings.TrimSpace(line[46:54]), 64)
		if err != nil {
			return nil, fmt.Errorf("pdb: bad z at line %d: %w", lineNo, err)
		}
		b, err := strconv.ParseFloat(strings.TrimSpace(line[60:66]), 64)
		if err != nil {
			return nil, fmt.Errorf("pdb: bad b-factor at line %d: %w", lineNo, err)
		}
		m.Atoms = append(m.Atoms, Atom{
			Serial:  serial,
			Name:    strings.TrimSpace(line[12:16]),
			ResName: strings.TrimSpace(line[17:20]),
			Chain:   line[21],
			ResSeq:  resSeq,
			Pos:     geom.Vec3{X: x, Y: y, Z: z},
			BFactor: b,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pdb: reading: %w", err)
	}
	return m, nil
}
