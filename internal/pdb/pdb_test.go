package pdb

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func makeTestModel(t *testing.T) *Model {
	t.Helper()
	r := rng.New(1)
	res := "ACGDEF"
	cas := make([]geom.Vec3, len(res))
	scs := make([]geom.Vec3, len(res))
	bf := make([]float64, len(res))
	for i := range cas {
		cas[i] = geom.Vec3{X: float64(i) * 3.8, Y: r.NormFloat64(), Z: r.NormFloat64()}
		scs[i] = cas[i].Add(geom.Vec3{X: 0.5, Y: 1.5, Z: 0.2})
		bf[i] = 50 + 5*float64(i)
	}
	m, err := FromTrace("test-model", res, cas, scs, bf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromTraceValidation(t *testing.T) {
	ca := []geom.Vec3{{X: 1}}
	if _, err := FromTrace("x", "AC", ca, nil, nil); err == nil {
		t.Error("CA/residue count mismatch accepted")
	}
	if _, err := FromTrace("x", "A", ca, []geom.Vec3{{X: 1}, {X: 2}}, nil); err == nil {
		t.Error("SC count mismatch accepted")
	}
	if _, err := FromTrace("x", "A", ca, nil, []float64{1, 2}); err == nil {
		t.Error("b-factor count mismatch accepted")
	}
}

func TestGlycineHasNoCB(t *testing.T) {
	m := makeTestModel(t)
	for _, a := range m.Atoms {
		if a.ResName == "GLY" && a.Name == "CB" {
			t.Error("glycine was given a CB atom")
		}
	}
	// Non-glycine residues must have both CA and CB: 6 residues, 1 GLY.
	if got, want := len(m.Atoms), 6+5; got != want {
		t.Errorf("atom count = %d, want %d", got, want)
	}
}

func TestCACoords(t *testing.T) {
	m := makeTestModel(t)
	cas := m.CACoords()
	if len(cas) != 6 {
		t.Fatalf("CA count = %d", len(cas))
	}
	if math.Abs(cas[1].X-3.8) > 1e-9 {
		t.Errorf("CA[1].X = %v", cas[1].X)
	}
}

func TestPoses(t *testing.T) {
	m := makeTestModel(t)
	poses := m.Poses()
	if len(poses) != 6 {
		t.Fatalf("pose count = %d", len(poses))
	}
	// Glycine (index 2) must use CA as its side-chain representative.
	if poses[2].SC != poses[2].CA {
		t.Error("glycine SC != CA")
	}
	// Others must differ.
	if poses[0].SC == poses[0].CA {
		t.Error("ALA SC == CA; CB lost")
	}
}

func TestRoundTrip(t *testing.T) {
	m := makeTestModel(t)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID {
		t.Errorf("ID = %q, want %q", got.ID, m.ID)
	}
	if len(got.Atoms) != len(m.Atoms) {
		t.Fatalf("atom count %d vs %d", len(got.Atoms), len(m.Atoms))
	}
	for i := range m.Atoms {
		a, b := m.Atoms[i], got.Atoms[i]
		if a.Name != b.Name || a.ResName != b.ResName || a.ResSeq != b.ResSeq {
			t.Errorf("atom %d metadata mismatch: %+v vs %+v", i, a, b)
		}
		if a.Pos.Dist(b.Pos) > 0.002 { // PDB stores 3 decimals
			t.Errorf("atom %d position drifted: %v vs %v", i, a.Pos, b.Pos)
		}
		if math.Abs(a.BFactor-b.BFactor) > 0.01 {
			t.Errorf("atom %d b-factor %v vs %v", i, a.BFactor, b.BFactor)
		}
	}
}

func TestReadIgnoresNonAtomRecords(t *testing.T) {
	in := "HEADER    X\nREMARK hello\nATOM      1  CA  ALA A   1       1.000   2.000   3.000  1.00 90.00\nEND\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Fatalf("atoms = %d", len(m.Atoms))
	}
	if m.Atoms[0].BFactor != 90 {
		t.Errorf("b-factor = %v", m.Atoms[0].BFactor)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"ATOM  x\n",
		"ATOM      1  CA  ALA A   1       X.000   2.000   3.000  1.00 90.00\n",
		"ATOM      1  CA  ALA A   X       1.000   2.000   3.000  1.00 90.00\n",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("malformed record accepted: %q", in)
		}
	}
}
