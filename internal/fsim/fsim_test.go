package fsim

import (
	"math"
	"testing"
)

var (
	fs = DefaultFilesystem()
	// The reduced dataset of the paper: 420 GB.
	reducedDB = Database{Name: "reduced", SizeBytes: 420e9, MetaOpsPerSearch: 50000}
	// The full dataset: 2.1 TB.
	fullDB = Database{Name: "full", SizeBytes: 2100e9, MetaOpsPerSearch: 250000}
)

func TestLayoutValidate(t *testing.T) {
	if err := (ReplicaLayout{Copies: 24, JobsPerCopy: 4}).Validate(); err != nil {
		t.Errorf("paper layout invalid: %v", err)
	}
	if err := (ReplicaLayout{Copies: 0, JobsPerCopy: 4}).Validate(); err == nil {
		t.Error("zero copies accepted")
	}
	if err := (ReplicaLayout{Copies: 1, JobsPerCopy: 0}).Validate(); err == nil {
		t.Error("zero jobs per copy accepted")
	}
}

func TestReplicationScalesWithSizeAndCopies(t *testing.T) {
	l := ReplicaLayout{Copies: 24, JobsPerCopy: 4}
	tr, err := fs.ReplicationTime(reducedDB, l)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := fs.ReplicationTime(fullDB, l)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := tf / tr; math.Abs(ratio-5) > 0.01 {
		t.Errorf("full/reduced replication ratio = %v, want 5 (2.1 TB / 420 GB)", ratio)
	}
	one, err := fs.ReplicationTime(reducedDB, ReplicaLayout{Copies: 1, JobsPerCopy: 4})
	if err != nil {
		t.Fatal(err)
	}
	if one != 0 {
		t.Errorf("single copy (the original) should be free, got %v", one)
	}
}

func TestSearchTimeContentions(t *testing.T) {
	// More concurrent readers on one copy → slower searches.
	t1, err := fs.SearchTime(reducedDB, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := fs.SearchTime(reducedDB, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	t96, err := fs.SearchTime(reducedDB, 60, 96)
	if err != nil {
		t.Fatal(err)
	}
	if !(t1 < t4 && t4 < t96) {
		t.Errorf("contention not monotone: %v, %v, %v", t1, t4, t96)
	}
	// At the paper's operating point (4 jobs/copy) metadata overhead must
	// be modest; with all 96 jobs on one copy it must dominate.
	if t4 > 1.5*t1 {
		t.Errorf("4-way contention %v too harsh vs %v", t4, t1)
	}
	if t96 < 3*t1 {
		t.Errorf("96-way contention %v too mild vs %v", t96, t1)
	}
}

func TestSearchTimeValidation(t *testing.T) {
	if _, err := fs.SearchTime(reducedDB, 60, 0); err == nil {
		t.Error("zero concurrency accepted")
	}
	if _, err := fs.SearchTime(reducedDB, -1, 1); err == nil {
		t.Error("negative base time accepted")
	}
}

func TestBatchSearchReplicationWins(t *testing.T) {
	// The paper's design point: spreading 96 concurrent jobs over 24 copies
	// beats cramming them onto fewer copies.
	n := 3205 // one bacterial proteome
	base := 60.0

	wall24, _, err := fs.BatchSearchTime(reducedDB, ReplicaLayout{Copies: 24, JobsPerCopy: 4}, n, base)
	if err != nil {
		t.Fatal(err)
	}
	wall1, _, err := fs.BatchSearchTime(reducedDB, ReplicaLayout{Copies: 1, JobsPerCopy: 96}, n, base)
	if err != nil {
		t.Fatal(err)
	}
	if wall24 >= wall1 {
		t.Errorf("24 copies (%v s) not faster than 1 copy at same concurrency (%v s)", wall24, wall1)
	}
}

func TestBatchSearchEdgeCases(t *testing.T) {
	w, j, err := fs.BatchSearchTime(reducedDB, ReplicaLayout{Copies: 2, JobsPerCopy: 2}, 0, 60)
	if err != nil || w != 0 || j != 0 {
		t.Errorf("zero jobs: %v %v %v", w, j, err)
	}
	if _, _, err := fs.BatchSearchTime(reducedDB, ReplicaLayout{Copies: 2, JobsPerCopy: 2}, -1, 60); err == nil {
		t.Error("negative job count accepted")
	}
}

func TestOptimalLayoutPrefersManyCopiesForBigBatches(t *testing.T) {
	small, _, err := fs.OptimalLayout(reducedDB, 50, 60, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := fs.OptimalLayout(reducedDB, 25134, 60, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if big.Copies <= small.Copies {
		t.Errorf("big batch chose %d copies, small chose %d; replication should pay off at scale",
			big.Copies, small.Copies)
	}
	if big.Copies < 12 {
		t.Errorf("proteome-scale batch chose only %d copies; paper used 24", big.Copies)
	}
}

func TestOptimalLayoutValidation(t *testing.T) {
	if _, _, err := fs.OptimalLayout(reducedDB, 10, 60, 0, 8); err == nil {
		t.Error("zero jobsPerCopy accepted")
	}
	if _, _, err := fs.OptimalLayout(reducedDB, 10, 60, 4, 0); err == nil {
		t.Error("zero maxCopies accepted")
	}
}

func TestNodeLocalCopyIsExpensive(t *testing.T) {
	// The rejected alternative: re-copying the database every allocation.
	// 50 allocations of the reduced DB at 5 GB/s node-local bandwidth.
	tLocal, err := fs.NodeLocalCopyTime(reducedDB, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Against: one-time 24-copy replication.
	tRep, err := fs.ReplicationTime(reducedDB, ReplicaLayout{Copies: 24, JobsPerCopy: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tLocal <= tRep {
		t.Errorf("node-local recopying (%v s) should exceed one-time replication (%v s)", tLocal, tRep)
	}
	if _, err := fs.NodeLocalCopyTime(reducedDB, -1, 5); err == nil {
		t.Error("negative allocations accepted")
	}
	if _, err := fs.NodeLocalCopyTime(reducedDB, 1, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestReducedVsFullSearchCost(t *testing.T) {
	// Full dataset issues ~5x the metadata ops; under contention the
	// reduced dataset's advantage compounds — the Section 4.1 rationale.
	rf, err := fs.SearchTime(fullDB, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := fs.SearchTime(reducedDB, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rf <= rr {
		t.Errorf("full-dataset search (%v) should cost more than reduced (%v)", rf, rr)
	}
}
