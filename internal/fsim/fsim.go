// Package fsim models the shared parallel filesystem behaviour that drove
// the paper's database-replication design (Section 3.2.1): HHblits-style
// searches issue many small reads, so metadata-server traffic — not
// bandwidth — becomes the bottleneck when many jobs hit one copy of the
// sequence libraries. The paper's mitigation is 24 identical copies of the
// reduced libraries with 4 concurrent jobs per copy, created with
// mpiFileUtils.
//
// The model is a queueing one: each database copy is served by a metadata
// path with a fixed operation rate; concurrent readers of the same copy
// share that rate, so per-job search time inflates with contention. Copying
// databases costs time proportional to bytes, which is why the *reduced*
// dataset (420 GB vs 2.1 TB) matters for replication cost too.
package fsim

import (
	"fmt"
	"math"
)

// Filesystem describes the shared parallel filesystem.
type Filesystem struct {
	// MetaOpsPerSec is the metadata-operation throughput of one database
	// copy's serving path.
	MetaOpsPerSec float64
	// CopyBandwidthGBps is the aggregate bandwidth available to replicate a
	// database (mpiFileUtils parallel copy).
	CopyBandwidthGBps float64
}

// DefaultFilesystem returns constants calibrated to Alpine/Spider-class
// behaviour: ~20k metadata ops/s per serving path and ~50 GB/s aggregate
// parallel-copy bandwidth.
func DefaultFilesystem() Filesystem {
	return Filesystem{MetaOpsPerSec: 20000, CopyBandwidthGBps: 50}
}

// Database is a replicated dataset on the filesystem.
type Database struct {
	Name      string
	SizeBytes int64
	// MetaOpsPerSearch is how many metadata operations one sequence search
	// issues against the database (file opens, stats, seeks); HH-suite-like
	// searches issue a lot of them.
	MetaOpsPerSearch float64
}

// ReplicaLayout is a replication decision: how many copies exist and how
// many concurrent jobs each copy serves.
type ReplicaLayout struct {
	Copies      int
	JobsPerCopy int
}

// Validate rejects nonsensical layouts.
func (l ReplicaLayout) Validate() error {
	if l.Copies <= 0 {
		return fmt.Errorf("fsim: layout needs at least one copy")
	}
	if l.JobsPerCopy <= 0 {
		return fmt.Errorf("fsim: layout needs at least one job per copy")
	}
	return nil
}

// MaxConcurrency is the number of search jobs the layout can serve at once.
func (l ReplicaLayout) MaxConcurrency() int { return l.Copies * l.JobsPerCopy }

// ReplicationTime returns the seconds needed to create the layout's copies
// with a parallel copy tool. The first copy is the original and is free;
// each additional copy moves SizeBytes.
func (fs Filesystem) ReplicationTime(db Database, l ReplicaLayout) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	extra := float64(l.Copies-1) * float64(db.SizeBytes)
	return extra / (fs.CopyBandwidthGBps * 1e9), nil
}

// SearchTime returns the wall seconds of one database search when
// `concurrent` jobs share the same copy. baseSeconds is the search's pure
// compute time. Metadata service is modeled as a processor-sharing queue:
// effective ops rate per job = MetaOpsPerSec / concurrent, and the search's
// metadata phase (MetaOpsPerSearch ops) stretches accordingly.
func (fs Filesystem) SearchTime(db Database, baseSeconds float64, concurrent int) (float64, error) {
	if concurrent <= 0 {
		return 0, fmt.Errorf("fsim: concurrency must be positive")
	}
	if baseSeconds < 0 {
		return 0, fmt.Errorf("fsim: negative base time")
	}
	metaTime := db.MetaOpsPerSearch * float64(concurrent) / fs.MetaOpsPerSec
	return baseSeconds + metaTime, nil
}

// BatchSearchTime returns the wall time to run n searches of baseSeconds
// each under a replica layout, assuming jobs are spread evenly over copies
// and each copy serves exactly JobsPerCopy concurrent jobs (the paper's
// operating point). Also returns the aggregate job-seconds consumed.
func (fs Filesystem) BatchSearchTime(db Database, l ReplicaLayout, n int, baseSeconds float64) (wall, jobSeconds float64, err error) {
	if err := l.Validate(); err != nil {
		return 0, 0, err
	}
	if n < 0 {
		return 0, 0, fmt.Errorf("fsim: negative job count")
	}
	if n == 0 {
		return 0, 0, nil
	}
	per, err := fs.SearchTime(db, baseSeconds, l.JobsPerCopy)
	if err != nil {
		return 0, 0, err
	}
	lanes := l.MaxConcurrency()
	waves := math.Ceil(float64(n) / float64(lanes))
	return waves * per, float64(n) * per, nil
}

// OptimalLayout sweeps copy counts from 1 to maxCopies and returns the
// layout minimizing total time (replication + batch search) for n searches,
// with the given per-copy concurrency. This is the trade the paper settled
// at 24 copies × 4 jobs.
func (fs Filesystem) OptimalLayout(db Database, n int, baseSeconds float64, jobsPerCopy, maxCopies int) (ReplicaLayout, float64, error) {
	if jobsPerCopy <= 0 || maxCopies <= 0 {
		return ReplicaLayout{}, 0, fmt.Errorf("fsim: invalid sweep bounds")
	}
	best := ReplicaLayout{}
	bestTime := math.Inf(1)
	for c := 1; c <= maxCopies; c++ {
		l := ReplicaLayout{Copies: c, JobsPerCopy: jobsPerCopy}
		rep, err := fs.ReplicationTime(db, l)
		if err != nil {
			return ReplicaLayout{}, 0, err
		}
		wall, _, err := fs.BatchSearchTime(db, l, n, baseSeconds)
		if err != nil {
			return ReplicaLayout{}, 0, err
		}
		if total := rep + wall; total < bestTime {
			bestTime = total
			best = l
		}
	}
	return best, bestTime, nil
}

// NodeLocalCopyTime models the alternative the paper rejects: copying the
// database to node-local NVMe/memory at the start of *every job allocation*
// (shared-facility policy forbids leaving data resident). nJobs allocations
// each pay the copy.
func (fs Filesystem) NodeLocalCopyTime(db Database, nAllocations int, perNodeBandwidthGBps float64) (float64, error) {
	if nAllocations < 0 {
		return 0, fmt.Errorf("fsim: negative allocation count")
	}
	if perNodeBandwidthGBps <= 0 {
		return 0, fmt.Errorf("fsim: bandwidth must be positive")
	}
	per := float64(db.SizeBytes) / (perNodeBandwidthGBps * 1e9)
	return per * float64(nAllocations), nil
}
