package main

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/events"
	"repro/internal/flow"
)

func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestStartAdmin: the -http listener binds synchronously, reports its
// bound address (port 0 resolved), and serves all three endpoint families.
func TestStartAdmin(t *testing.T) {
	m := flow.NewSchedulerMetrics(nil)
	m.Observe(events.Event{Type: events.TaskReceived, Task: "t1", Campaign: "dvu"})
	var healthy atomic.Bool
	healthy.Store(true)
	addr, err := startAdmin("127.0.0.1:0", m.Registry(), healthy.Load)
	if err != nil {
		t.Fatal(err)
	}

	code, body := adminGet(t, addr, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("GET /debug/pprof/ = %d, body %q", code, body)
	}

	code, body = adminGet(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if !strings.Contains(body, `flow_tasks_total{event="received",campaign="dvu"} 1`) {
		t.Fatalf("metrics scrape missing observed series:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE flow_tasks_total counter") {
		t.Fatalf("metrics scrape missing exposition metadata:\n%s", body)
	}

	// /healthz flips with the scheduler's health: 200 while serving, 503
	// from the moment shutdown begins.
	code, _ = adminGet(t, addr, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz while healthy = %d, want 200", code)
	}
	healthy.Store(false)
	code, _ = adminGet(t, addr, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz while shutting down = %d, want 503", code)
	}
}

// TestStartAdminBadAddr: an unbindable address fails the command at
// startup instead of dying later in a goroutine.
func TestStartAdminBadAddr(t *testing.T) {
	if _, err := startAdmin("256.0.0.1:0", nil, nil); err == nil {
		t.Fatal("startAdmin accepted an unbindable address")
	}
}

// TestAdminHealthzTracksScheduler wires /healthz to a real scheduler's
// Healthy: 200 while started, 503 after Close.
func TestAdminHealthzTracksScheduler(t *testing.T) {
	s := flow.NewScheduler()
	s.Metrics = flow.NewSchedulerMetrics(nil)
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr, err := startAdmin("127.0.0.1:0", s.Metrics.Registry(), s.Healthy)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := adminGet(t, addr, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz on a live scheduler = %d, want 200", code)
	}
	s.Close()
	if code, _ := adminGet(t, addr, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz on a closed scheduler = %d, want 503", code)
	}
}
