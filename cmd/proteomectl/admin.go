package main

import (
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// startAdmin serves the scheduler's admin HTTP endpoint — `sched -http
// localhost:6060` — on its own mux (nothing leaks onto DefaultServeMux):
//
//	GET /metrics       live cluster metrics, Prometheus text exposition
//	GET /healthz       200 while the scheduler accepts work, 503 once
//	                   shutdown begins (or before it starts) — the probe
//	                   external supervisors restart on
//	GET /debug/pprof/  the standard net/http/pprof profile endpoints
//
// The listen happens synchronously so a bad address fails the command
// instead of logging from a goroutine; serving is fire-and-forget for the
// process lifetime. The bound address is returned because addr may carry
// port 0.
func startAdmin(addr string, reg *obs.Registry, healthy func() bool) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && healthy() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("shutting down\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
