//go:build !race

package main

// raceEnabled reports whether the test harness was built with the race
// detector; the e2e suite then builds the subprocess binary with -race
// too, so the scheduler/worker/submit processes are race-checked, not
// just the harness.
const raceEnabled = false
